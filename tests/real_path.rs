//! End-to-end real-path integration test: a full TFI imaginary-time-evolution
//! sweep — Trotter gate application, every bond truncation (QR/SVD/Gram-QR),
//! renormalization, and the IBMPS energy measurement — must execute **zero**
//! complex multiply-adds. Every GEMM in the pipeline has to stay on the
//! real-only kernel, which requires the realness hint to survive every
//! factorization in between (the point of the realness-preserving QR / SVD /
//! eigh / rsvd paths in `koala-linalg`).
//!
//! The assertions read the global GEMM work counters, so everything
//! counter-sensitive lives in ONE `#[test]` (tests within a binary run in
//! parallel) and this file holds nothing else that multiplies matrices.

use koala::linalg::gemm::{flop_counter, real_mac_counter, reset_flop_counter};
use koala::peps::Peps;
use koala::sim::hamiltonian::{tfi_hamiltonian, TfiParams};
use koala::sim::{ite_peps, IteOptions, UpdateKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tfi_ite_sweep_performs_zero_complex_macs() {
    let mut rng = StdRng::seed_from_u64(0x17E);
    let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
    let peps = Peps::computational_zeros(2, 2);

    for update in [UpdateKind::QrSvd, UpdateKind::Direct, UpdateKind::GramQrSvd] {
        let mut options = IteOptions::new(0.05, 4, 2, 4);
        options.update = update;
        reset_flop_counter();
        let result = ite_peps(&peps, &h, options, &mut rng).expect("ITE run failed");
        let complex = flop_counter();
        let real = real_mac_counter();
        assert_eq!(
            complex, 0,
            "{update:?}: a full TFI ITE sweep executed {complex} complex MACs — \
             some factorization or contraction dropped the realness hint"
        );
        assert!(real > 0, "{update:?}: expected the real kernel to have done the work");
        // Sanity: the evolution still does its job (energy drops below the
        // product-state energy of -1 per site).
        assert!(
            result.final_energy() < -1.0,
            "{update:?}: ITE did not lower the energy, got {}",
            result.final_energy()
        );
    }
    reset_flop_counter();
}
