//! Workspace-level integration tests spanning several crates: the PEPS layer
//! against the state-vector simulator, the contraction methods against each
//! other, and the distributed kernels against the local reference.

use koala::cluster::{Cluster, CostModel};
use koala::peps::expectation::{expectation_normalized, ExpectationOptions};
use koala::peps::two_layer::{norm_sqr_two_layer, TwoLayerOptions};
use koala::peps::{
    amplitude, dist_tebd_layer, norm_sqr, ContractionMethod, DistEvolutionVariant, Peps,
    UpdateMethod,
};
use koala::sim::gates::{cnot, hadamard, iswap};
use koala::sim::{ite_peps, random_circuit, tfi_hamiltonian, IteOptions, StateVector, TfiParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small circuit applied to both a PEPS and the exact state vector gives the
/// same amplitudes, norm, and expectation values across the whole stack.
#[test]
fn circuit_peps_statevector_consistency() {
    let mut rng = StdRng::seed_from_u64(1);
    let (n, m) = (2, 3);
    let mut peps = Peps::computational_zeros(n, m);
    let mut sv = StateVector::computational_zeros(n, m);

    let ops: Vec<(koala::linalg::Matrix, (usize, usize), Option<(usize, usize)>)> = vec![
        (hadamard(), (0, 0), None),
        (hadamard(), (1, 2), None),
        (cnot(), (0, 0), Some((0, 1))),
        (iswap(), (0, 1), Some((1, 1))),
        (cnot(), (1, 2), Some((1, 1))),
    ];
    for (g, a, b) in &ops {
        match b {
            None => {
                koala::peps::apply_one_site(&mut peps, g, *a).unwrap();
                sv.apply_one_site(g, *a);
            }
            Some(b) => {
                koala::peps::apply_two_site(&mut peps, g, *a, *b, UpdateMethod::qr_svd(8)).unwrap();
                sv.apply_two_site(g, *a, *b);
            }
        }
    }

    // Amplitudes agree for a handful of basis states.
    for bits in [[0, 0, 0, 0, 0, 0], [1, 0, 1, 0, 0, 1], [0, 1, 1, 1, 0, 0]] {
        let a_peps = amplitude(&peps, &bits, ContractionMethod::bmps(16), &mut rng).unwrap();
        let a_sv = sv.amplitude(&bits);
        assert!(a_peps.approx_eq(a_sv, 1e-7), "amplitude mismatch at {bits:?}");
    }

    // Norms agree (the circuit is unitary so both are 1).
    let n_merged = norm_sqr(&peps, ContractionMethod::ibmps(16), &mut rng).unwrap();
    let n_two_layer = norm_sqr_two_layer(&peps, TwoLayerOptions::with_bond(16), &mut rng).unwrap();
    assert!((n_merged - 1.0).abs() < 1e-6);
    assert!((n_two_layer - 1.0).abs() < 1e-6);

    // Expectation values of a Hamiltonian agree.
    let h = tfi_hamiltonian(n, m, TfiParams { jz: -1.0, hx: -0.7 });
    let e_peps =
        expectation_normalized(&peps, &h, ExpectationOptions::ibmps_cached(16), &mut rng).unwrap();
    let e_sv = sv.expectation(&h);
    assert!((e_peps.re - e_sv).abs() < 1e-6, "{} vs {}", e_peps.re, e_sv);
}

/// The RQC workload: exact PEPS evolution reproduces the state-vector
/// amplitude, and truncated contraction converges to it as the bond grows.
#[test]
fn rqc_amplitude_error_decreases_with_contraction_bond() {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 3;
    let circuit = random_circuit(n, n, 4, 2, &mut rng);
    let mut peps = Peps::computational_zeros(n, n);
    circuit.apply_to_peps(&mut peps, UpdateMethod::qr_svd(1 << 12)).unwrap();
    let mut sv = StateVector::computational_zeros(n, n);
    circuit.apply_to_statevector(&mut sv);

    let bits = vec![0usize; n * n];
    let exact = sv.amplitude(&bits);
    let mut errors = Vec::new();
    for m in [2usize, 8, 32] {
        let approx = amplitude(&peps, &bits, ContractionMethod::ibmps(m), &mut rng).unwrap();
        errors.push((approx - exact).abs() / exact.abs());
    }
    assert!(errors[2] < 1e-6, "large bond should be essentially exact, got {:?}", errors);
    // On this small lattice every bond is near-exact, so compare up to the
    // float noise floor rather than demanding strict monotonicity there.
    assert!(
        errors[0] + 1e-12 >= errors[2],
        "error should not increase with bond dimension: {errors:?}"
    );
}

/// ITE on the PEPS reaches an energy close to the exact ground state of a
/// small transverse-field Ising model.
#[test]
fn ite_reaches_ground_state_on_small_lattice() {
    let mut rng = StdRng::seed_from_u64(3);
    let h = tfi_hamiltonian(2, 2, TfiParams { jz: -1.0, hx: -1.5 });
    let exact = StateVector::ground_state_energy(2, 2, &h, &mut rng).unwrap() / 4.0;
    let peps = Peps::computational_zeros(2, 2);
    let result = ite_peps(&peps, &h, IteOptions::new(0.05, 60, 2, 4), &mut rng).unwrap();
    assert!(
        (result.final_energy() - exact).abs() < 0.05,
        "ITE energy {} vs exact {exact}",
        result.final_energy()
    );
}

/// The distributed evolution kernel produces the same state as the local one
/// and the Gram variant moves less data, with a correspondingly lower
/// modelled execution time.
#[test]
fn distributed_evolution_consistency_and_cost_ordering() {
    let mut rng = StdRng::seed_from_u64(4);
    let gate = koala::sim::gates::zz_rotation(0.1);
    let base = Peps::random(3, 3, 2, 3, &mut rng);
    let model = CostModel::default();

    let cluster_gather = Cluster::new(8);
    let mut p1 = base.clone();
    dist_tebd_layer(&cluster_gather, &mut p1, &gate, 3, DistEvolutionVariant::CtfQrSvd).unwrap();

    let cluster_gram = Cluster::new(8);
    let mut p2 = base.clone();
    dist_tebd_layer(&cluster_gram, &mut p2, &gate, 3, DistEvolutionVariant::LocalGramQrSvd)
        .unwrap();

    // Same physics from both variants.
    let n1 = norm_sqr(&p1, ContractionMethod::bmps(12), &mut rng).unwrap();
    let n2 = norm_sqr(&p2, ContractionMethod::bmps(12), &mut rng).unwrap();
    assert!((n1 - n2).abs() / n1.abs().max(1e-12) < 1e-5);

    // The reshape-avoiding variant wins on communication and modelled time.
    let t_gather = model.modelled_time(&cluster_gather.stats());
    let t_gram = model.modelled_time(&cluster_gram.stats());
    assert!(cluster_gram.stats().bytes_communicated < cluster_gather.stats().bytes_communicated);
    assert!(t_gram < t_gather, "modelled time should favour the Gram variant");
}
