//! Acceptance test of the fault-tolerance layer (ARCHITECTURE.md, "Failure
//! model"): a seeded rank failure mid-SUMMA and a seeded corruption mid-ITE
//! must both recover, the recovered answers must match the fault-free runs to
//! 1e-10, and the process-wide [`koala::error::recovery`] counters must
//! record the recovery path taken.

use koala::cluster::{Cluster, DistMatrix, FaultKind, FaultPlan};
use koala::error::recovery;
use koala::linalg::Matrix;
use koala::peps::Peps;
use koala::sim::{ite_peps, tfi_hamiltonian, IteFault, IteOptions, TfiParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn rank_failure_mid_summa_recovers_and_matches_the_fault_free_product() {
    let mut rng = StdRng::seed_from_u64(31);
    let a = Matrix::random(29, 23, &mut rng);
    let b = Matrix::random(23, 17, &mut rng);

    let run = |plan: Option<FaultPlan>| {
        let cluster = Cluster::new(6);
        let grid = cluster.grid();
        let da = DistMatrix::scatter_block_cyclic(&cluster, &a, grid, 4, 5);
        let db = DistMatrix::scatter_block_cyclic(&cluster, &b, grid, 3, 4);
        if let Some(p) = plan {
            cluster.arm_faults(p);
        }
        let c = da.matmul_dist(&db).expect("a transient rank failure must be recovered");
        (c.gather_unaccounted(), cluster.disarm_faults())
    };

    let (fault_free, empty_log) = run(None);
    let before = recovery::snapshot();
    // Rank 3 drops out in SUMMA round 1: its deliveries that round are lost.
    let (recovered, log) = run(Some(FaultPlan::seeded(77).fail_rank(3, 1)));
    let after = recovery::snapshot();

    assert!(empty_log.is_empty());
    assert!(!log.is_empty(), "the rank failure must be logged");
    assert!(log.iter().all(|ev| ev.kind == FaultKind::RankFailure));
    assert!(
        recovered.approx_eq(&fault_free, 1e-10),
        "recovered SUMMA product diverged from the fault-free run"
    );
    assert!(
        after.summa_round_retries > before.summa_round_retries,
        "recovery must be recorded as SUMMA round retries"
    );
    assert!(after.faults_injected > before.faults_injected);
}

#[test]
fn corruption_mid_ite_recovers_and_matches_the_fault_free_trajectory() {
    let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
    let peps = Peps::computational_zeros(2, 2);
    let mut options = IteOptions::new(0.05, 9, 2, 4);
    options.checkpoint_every = 3;

    let mut rng = StdRng::seed_from_u64(13);
    let fault_free = ite_peps(&peps, &h, options, &mut rng).expect("fault-free ITE");

    let before = recovery::snapshot();
    let mut rng = StdRng::seed_from_u64(13);
    options.fault = Some(IteFault { step: 8, seed: 1234 });
    let recovered = ite_peps(&peps, &h, options, &mut rng).expect("ITE must recover");
    let after = recovery::snapshot();

    assert_eq!(fault_free.energies.len(), recovered.energies.len());
    for (&(sa, ea), &(sb, eb)) in fault_free.energies.iter().zip(recovered.energies.iter()) {
        assert_eq!(sa, sb);
        assert!(
            (ea - eb).abs() < 1e-10,
            "step {sa}: recovered energy {eb} diverged from fault-free {ea}"
        );
    }
    assert!(after.faults_injected > before.faults_injected, "the corruption must be injected");
    assert!(
        after.nonfinite_detections > before.nonfinite_detections,
        "the finite guard must detect the corruption"
    );
    assert!(
        after.checkpoints_restored > before.checkpoints_restored,
        "recovery must restore from a checkpoint"
    );
    assert!(after.checkpoints_saved > before.checkpoints_saved);
}
