//! End-to-end acceptance test for the serving layer (ISSUE PR 9; circuit
//! jobs added in PR 10).
//!
//! Ten concurrent jobs across four tenants must (a) return bit-identical
//! results to solo runs, (b) produce per-tenant receipts whose work ledgers
//! sum *exactly* to the process-global meter delta, and (c) record zero
//! einsum plan-cache misses when same-signature jobs re-run warm.
//!
//! Everything lives in ONE `#[test]` function: the global work meter and the
//! plan-cache statistics are process-wide, and Rust runs the tests of one
//! binary on concurrent threads — a sibling test doing tensor work would
//! perturb both deltas.

use koala::circuit::{Backend, BackendChoice, Circuit, Gate1, Gate2};
use koala::exec::WorkMeter;
use koala::serve::{
    AmplitudeJob, CircuitJob, IteJob, JobResult, JobSpec, JobStatus, Server, ServerConfig, VqeJob,
    WorkLedger,
};
use koala::sim::{Optimizer, VqeBackend};
use koala::tensor::{plan_stats, reset_plan_stats};
use koala_peps::ContractionMethod;

fn ite_a(jz: f64) -> JobSpec {
    JobSpec::Ite(IteJob { jz, steps: 6, measure_every: 2, seed: 3, ..IteJob::new(2, 2, 2) })
}

fn ite_b() -> JobSpec {
    JobSpec::Ite(IteJob { steps: 4, measure_every: 2, seed: 5, ..IteJob::new(2, 3, 1) })
}

fn vqe(backend: VqeBackend, seed: u64) -> JobSpec {
    let mut job = VqeJob::new(2, 2, backend);
    job.optimizer = Optimizer::NelderMead { scale: 0.4, max_iterations: 10 };
    job.seed = seed;
    JobSpec::Vqe(job)
}

fn amp(method: ContractionMethod, seed: u64) -> JobSpec {
    JobSpec::Amplitudes(AmplitudeJob {
        layers: 2,
        entangle_every: 2,
        bitstrings: vec![vec![0, 0, 0, 0], vec![0, 1, 1, 0]],
        seed,
        ..AmplitudeJob::new(2, 2, method)
    })
}

/// A gate-list circuit job through the `koala-circuit` front end, pinned to
/// the MPS backend (the statevector oracle bills no tensor work, and every
/// receipt below must be non-zero). Two jobs with different `theta` share a
/// signature: the gate *structure* is identical, only values differ. The
/// long-range CZ exercises SWAP routing inside the chain evolution.
fn circuit_job(theta: f64, seed: u64) -> JobSpec {
    let n = 5;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push_one(q, Gate1::H).expect("h");
    }
    for layer in 0..2 {
        for q in 0..n - 1 {
            if (q + layer) % 2 == 0 {
                c.push_two(q, q + 1, Gate2::Cnot).expect("cnot");
            }
        }
        for q in 0..n {
            c.push_one(q, Gate1::Ry(theta + 0.1 * q as f64)).expect("ry");
        }
    }
    c.push_two(0, n - 1, Gate2::Cz).expect("cz");
    JobSpec::Circuit(CircuitJob {
        backend: BackendChoice::Fixed(Backend::Mps { max_bond: 8 }),
        seed,
        ..CircuitJob::new(c, vec![vec![0; n], vec![1, 0, 1, 0, 1], vec![1; n]])
    })
}

/// The ten-job mixed-tenant batch: two same-signature ITE jobs for `alpha`,
/// two VQE backends plus an odd-shaped ITE for `beta`, three amplitude jobs
/// (two sharing a signature) for `gamma`, and two same-signature gate-list
/// circuit jobs for `delta`.
fn batch() -> Vec<(&'static str, JobSpec)> {
    vec![
        ("alpha", ite_a(-1.0)),
        ("alpha", ite_a(-0.9)),
        ("beta", vqe(VqeBackend::StateVector, 11)),
        ("beta", vqe(VqeBackend::Peps { bond: 1, contraction_bond: 2 }, 11)),
        ("beta", ite_b()),
        ("gamma", amp(ContractionMethod::bmps(8), 21)),
        ("gamma", amp(ContractionMethod::bmps(8), 22)),
        ("gamma", amp(ContractionMethod::ibmps(8), 21)),
        ("delta", circuit_job(0.35, 31)),
        ("delta", circuit_job(-0.8, 31)),
    ]
}

/// Bitwise equality of two job results — `==` on floats would also accept
/// `-0.0 == 0.0`, and the service promises *bit* identity.
fn assert_bits_equal(batched: &JobResult, solo: &JobResult, label: &str) {
    match (batched, solo) {
        (JobResult::Ite(a), JobResult::Ite(b)) => {
            assert_eq!(a.energies.len(), b.energies.len(), "{label}: energy trace length");
            for (&(sa, ea), &(sb, eb)) in a.energies.iter().zip(b.energies.iter()) {
                assert_eq!(sa, sb, "{label}: measured steps");
                assert_eq!(ea.to_bits(), eb.to_bits(), "{label}: energy at step {sa}");
            }
            assert_eq!(a.final_energy.to_bits(), b.final_energy.to_bits(), "{label}");
            assert_eq!(a.max_bond, b.max_bond, "{label}");
        }
        (JobResult::Vqe(a), JobResult::Vqe(b)) => {
            assert_eq!(a.best_energy.to_bits(), b.best_energy.to_bits(), "{label}");
            assert_eq!(a.evaluations, b.evaluations, "{label}");
            assert_eq!(a.energy_history.len(), b.energy_history.len(), "{label}");
            for (x, y) in a.energy_history.iter().zip(b.energy_history.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: energy history");
            }
            for (x, y) in a.best_params.iter().zip(b.best_params.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: best params");
            }
        }
        (JobResult::Amplitudes(a), JobResult::Amplitudes(b)) => {
            assert_eq!(a.amplitudes.len(), b.amplitudes.len(), "{label}");
            for (x, y) in a.amplitudes.iter().zip(b.amplitudes.iter()) {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "{label}: amplitude re");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "{label}: amplitude im");
            }
            assert_eq!(a.max_bond, b.max_bond, "{label}");
        }
        (JobResult::Circuit(a), JobResult::Circuit(b)) => {
            assert_eq!(a.amplitudes.len(), b.amplitudes.len(), "{label}");
            for (x, y) in a.amplitudes.iter().zip(b.amplitudes.iter()) {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "{label}: amplitude re");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "{label}: amplitude im");
            }
            assert_eq!(a.backend, b.backend, "{label}: dispatched backend");
            assert_eq!(a.max_bond, b.max_bond, "{label}");
            assert_eq!(a.gates_executed, b.gates_executed, "{label}: executed gate count");
        }
        _ => panic!("{label}: batched and solo runs returned different result kinds"),
    }
}

#[test]
fn ten_concurrent_jobs_bill_exactly_and_match_solo_runs_bit_for_bit() {
    // --- Solo reference runs: each job alone on a fresh server. ---
    let solo: Vec<JobResult> = batch()
        .into_iter()
        .map(|(tenant, spec)| {
            let mut server = Server::new(ServerConfig::default());
            let outcome = server.run_one(tenant, spec).expect("solo submit");
            assert_eq!(outcome.receipt.status, JobStatus::Ok, "solo run failed");
            outcome.result.expect("solo run produced no result")
        })
        .collect();

    // --- The concurrent batch, bracketed by global-meter snapshots. ---
    let mut server = Server::new(ServerConfig::default());
    for (tenant, spec) in batch() {
        server.submit(tenant, spec).expect("submit");
    }
    let before = WorkMeter::global().ledger();
    let outcomes = server.drain();
    let after = WorkMeter::global().ledger();
    let delta = after.minus(&before);

    assert_eq!(outcomes.len(), solo.len());
    let mut billed = WorkLedger::default();
    for (outcome, reference) in outcomes.iter().zip(solo.iter()) {
        let label = format!(
            "job {} (tenant {}, {})",
            outcome.receipt.job_id, outcome.receipt.tenant, outcome.receipt.signature
        );
        assert_eq!(outcome.receipt.status, JobStatus::Ok, "{label}");
        let result = outcome.result.as_ref().expect("completed job carries a result");
        assert_bits_equal(result, reference, &label);
        assert!(!outcome.receipt.work.is_zero(), "{label}: every job does billable work");
        billed = billed.plus(&outcome.receipt.work);
    }

    // Receipts must account for the batch's work *exactly*: same atomic adds,
    // different views, so not a single MAC or byte may leak either way.
    assert_eq!(billed.complex_macs, delta.complex_macs, "complex-MAC billing leak");
    assert_eq!(billed.real_macs, delta.real_macs, "real-MAC billing leak");
    assert_eq!(billed.bytes, delta.bytes, "byte billing leak");

    // Per-tenant subtotals are plain sums of the per-job ledgers; spot-check
    // that tenants partition the delta.
    let tenant_total = |name: &str| {
        outcomes
            .iter()
            .filter(|o| o.receipt.tenant == name)
            .fold(WorkLedger::default(), |acc, o| acc.plus(&o.receipt.work))
    };
    let partition = tenant_total("alpha")
        .plus(&tenant_total("beta"))
        .plus(&tenant_total("gamma"))
        .plus(&tenant_total("delta"));
    assert_eq!(partition, delta, "tenant subtotals must partition the global delta");

    // --- Warm plan cache: re-running the same-signature groups must plan
    // nothing new. Every shape in these jobs was planned above, so a warm
    // drain performs only cache hits. The circuit batch rides along: a warm
    // served gate-list circuit replays the cold run's contraction plans.
    let mut warm = Server::new(ServerConfig::default());
    warm.submit("alpha", ite_a(-1.0)).expect("submit");
    warm.submit("alpha", ite_a(-0.9)).expect("submit");
    warm.submit("gamma", amp(ContractionMethod::bmps(8), 21)).expect("submit");
    warm.submit("gamma", amp(ContractionMethod::bmps(8), 22)).expect("submit");
    warm.submit("delta", circuit_job(0.35, 31)).expect("submit");
    warm.submit("delta", circuit_job(-0.8, 31)).expect("submit");
    reset_plan_stats();
    let warm_before = WorkMeter::global().ledger();
    let warm_outcomes = warm.drain();
    let warm_delta = WorkMeter::global().ledger().minus(&warm_before);
    let stats = plan_stats();
    assert!(warm_outcomes.iter().all(|o| o.receipt.status == JobStatus::Ok));
    assert_eq!(stats.misses, 0, "warm same-signature jobs must not miss the plan cache");
    assert!(stats.hits > 0, "the warm batch must actually exercise the plan cache");

    // Warm receipts still bill exactly: caching changes planning, not work
    // accounting.
    let warm_billed =
        warm_outcomes.iter().fold(WorkLedger::default(), |acc, o| acc.plus(&o.receipt.work));
    assert_eq!(warm_billed, warm_delta, "warm receipts must sum exactly to the meter delta");
}
