//! Workspace acceptance test for the task-graph execution runtime: the full
//! physics stack must be schedule-independent. A warm TFI imaginary-time-
//! evolution sweep and a distributed SUMMA product are run at 1/2/4/8
//! executor threads; energies and gathered matrices must be bit-identical
//! and the MAC/communication billing exactly equal — the executor may only
//! change *when* work runs, never what it computes or what it bills.

use koala::cluster::{Cluster, DistMatrix, ProcGrid};
use koala::linalg::{flop_counter, matmul, real_mac_counter, Matrix};
use koala::peps::Peps;
use koala::sim::{ite_peps, tfi_hamiltonian, IteOptions, TfiParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// The executor pool and billing counters are process-wide; serialize the
/// tests in this binary.
static SERIAL: Mutex<()> = Mutex::new(());

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The ITE sweep drives einsum planning, the packed GEMM, QR/SVD truncation
/// and expectation contraction — end to end, the final energy and the exact
/// counter deltas must not depend on the thread count.
#[test]
fn warm_tfi_ite_sweep_is_bit_identical_across_threads() {
    let _guard = SERIAL.lock().unwrap();
    let h = tfi_hamiltonian(2, 2, TfiParams { jz: -1.0, hx: -1.2 });
    let peps = Peps::computational_zeros(2, 2);
    let opts = IteOptions::new(0.05, 12, 2, 4);

    // Warm the plan cache once so the sweep itself measures steady-state
    // execution, not first-touch planning.
    koala::exec::set_threads(1);
    let mut warm_rng = StdRng::seed_from_u64(321);
    ite_peps(&peps, &h, opts, &mut warm_rng).unwrap();

    let mut reference: Option<(u64, u64, u64)> = None;
    for &threads in &THREAD_SWEEP {
        koala::exec::set_threads(threads);
        let mut rng = StdRng::seed_from_u64(321);
        let (f0, r0) = (flop_counter(), real_mac_counter());
        let result = ite_peps(&peps, &h, opts, &mut rng).unwrap();
        let (df, dr) = (flop_counter() - f0, real_mac_counter() - r0);
        let bits = result.final_energy().to_bits();
        match reference {
            None => reference = Some((bits, df, dr)),
            Some((ebits, ef, er)) => {
                assert_eq!(
                    bits,
                    ebits,
                    "ITE final energy differs at {threads} threads: {} vs {}",
                    f64::from_bits(bits),
                    f64::from_bits(ebits)
                );
                assert_eq!(df, ef, "complex-MAC billing differs at {threads} threads");
                assert_eq!(dr, er, "real-MAC billing differs at {threads} threads");
            }
        }
    }
    koala::exec::set_threads(1);
}

/// Distributed SUMMA across the sweep: gathered product bit-identical, MAC
/// billing exactly `m * n * k`, and the communication ledger (bytes,
/// messages, per-round costs) equal at every thread count.
#[test]
fn summa_matmul_is_bit_identical_across_threads() {
    let _guard = SERIAL.lock().unwrap();
    let grid = ProcGrid::new(2, 2);
    let mut rng = StdRng::seed_from_u64(654);
    let (m, k, n) = (23usize, 110, 19);
    let a = Matrix::random(m, k, &mut rng);
    let b = Matrix::random(k, n, &mut rng);
    let local = matmul(&a, &b);

    let mut reference: Option<(Matrix, koala::cluster::CommStats)> = None;
    for &threads in &THREAD_SWEEP {
        koala::exec::set_threads(threads);
        let cluster = Cluster::new(grid.nranks());
        let da = DistMatrix::scatter_block_cyclic(&cluster, &a, grid, 3, 4);
        let db = DistMatrix::scatter_block_cyclic(&cluster, &b, grid, 5, 3);
        cluster.reset_stats();
        let c = da.matmul_dist(&db).unwrap().gather_unaccounted();
        let stats = cluster.stats();
        assert_eq!(
            stats.total_flops() + stats.total_real_macs(),
            (m * n * k) as u64,
            "MAC billing at {threads} threads must be exactly m*n*k"
        );
        assert!(c.max_diff(&local) < 1e-12 * k as f64, "SUMMA diverges from local GEMM");
        match &reference {
            None => reference = Some((c, stats)),
            Some((expected, estats)) => {
                for (i, (x, y)) in c.data().iter().zip(expected.data().iter()).enumerate() {
                    assert!(
                        x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                        "element {i} differs at {threads} threads"
                    );
                }
                assert_eq!(&stats, estats, "CommStats ledger differs at {threads} threads");
            }
        }
    }
    koala::exec::set_threads(1);
}
