//! Workspace-level property-based tests on end-to-end invariants.

use koala::peps::{amplitude, norm_sqr, ContractionMethod, Peps, UpdateMethod};
use koala::sim::gates::{cz, hadamard, iswap};
use koala::sim::StateVector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Unitary circuits preserve the norm of the PEPS no matter which gates
    /// are applied (as long as the bond dimension is large enough for exact
    /// evolution of this small lattice).
    #[test]
    fn unitary_circuits_preserve_norm(seed in 0u64..500, gates in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut peps = Peps::computational_zeros(2, 2);
        let pool = [hadamard(), cz(), iswap()];
        for g in 0..gates {
            let pick = (seed as usize + g) % 3;
            if pick == 0 {
                let site = ((g % 2), ((g + 1) % 2));
                koala::peps::apply_one_site(&mut peps, &pool[0], site).unwrap();
            } else {
                let pairs = [((0, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 0), (1, 1)), ((0, 0), (1, 0))];
                let (a, b) = pairs[g % pairs.len()];
                koala::peps::apply_two_site(&mut peps, &pool[pick], a, b, UpdateMethod::qr_svd(8)).unwrap();
            }
        }
        let n = norm_sqr(&peps, ContractionMethod::bmps(16), &mut rng).unwrap();
        prop_assert!((n - 1.0).abs() < 1e-6, "norm {n}");
    }

    /// Born rule sanity: amplitudes computed from the PEPS match the state
    /// vector after a random single layer of gates, and the probabilities of
    /// all basis states sum to one.
    #[test]
    fn amplitudes_match_statevector(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = koala::sim::random_circuit(2, 2, 2, 2, &mut rng);
        let mut peps = Peps::computational_zeros(2, 2);
        circuit.apply_to_peps(&mut peps, UpdateMethod::qr_svd(16)).unwrap();
        let mut sv = StateVector::computational_zeros(2, 2);
        circuit.apply_to_statevector(&mut sv);

        let mut total_prob = 0.0;
        for idx in 0..16usize {
            let bits: Vec<usize> = (0..4).map(|q| (idx >> (3 - q)) & 1).collect();
            let a_sv = sv.amplitude(&bits);
            total_prob += a_sv.norm_sqr();
            if idx % 5 == 0 {
                let a_peps = amplitude(&peps, &bits, ContractionMethod::bmps(16), &mut rng).unwrap();
                prop_assert!(a_peps.approx_eq(a_sv, 1e-6));
            }
        }
        prop_assert!((total_prob - 1.0).abs() < 1e-9);
    }

    /// Contraction methods agree with each other on random (positive) networks.
    #[test]
    fn contraction_methods_agree(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut peps = Peps::random_no_phys(3, 3, 2, &mut rng);
        // Make the entries positive so the contraction is well conditioned.
        for r in 0..3 {
            for c in 0..3 {
                let mut t = peps.tensor((r, c)).clone();
                for v in t.data_mut() {
                    *v = koala::linalg::c64(v.re.abs() + 0.1, 0.0);
                }
                peps.set_tensor((r, c), t);
            }
        }
        let exact = koala::peps::contract_no_phys(&peps, ContractionMethod::Exact, &mut rng).unwrap();
        let bmps = koala::peps::contract_no_phys(&peps, ContractionMethod::bmps(8), &mut rng).unwrap();
        let ibmps = koala::peps::contract_no_phys(&peps, ContractionMethod::ibmps(8), &mut rng).unwrap();
        let scale = exact.abs().max(1e-12);
        prop_assert!((bmps - exact).abs() / scale < 1e-2);
        prop_assert!((ibmps - exact).abs() / scale < 1e-2);
    }
}
