//! Random-quantum-circuit amplitude study (the Figure 10 workload at a
//! laptop-friendly size).
//!
//! Evolves a 3x3 PEPS exactly under a random circuit, then computes one
//! output amplitude with BMPS and IBMPS at increasing contraction bond
//! dimensions, showing the sharp error drop once the bond dimension crosses
//! the entanglement threshold.
//!
//! Run with: `cargo run --release --example rqc_amplitude`

use koala::peps::{amplitude, ContractionMethod, Peps, UpdateMethod};
use koala::sim::{random_circuit, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let n = 3;
    let circuit = random_circuit(n, n, 8, 4, &mut rng);
    println!(
        "generated an RQC with {} gates ({} entangling)",
        circuit.len(),
        circuit.two_qubit_count()
    );

    let mut peps = Peps::computational_zeros(n, n);
    circuit
        .apply_to_peps(&mut peps, UpdateMethod::qr_svd(1 << 16))
        .expect("exact evolution failed");
    let mut sv = StateVector::computational_zeros(n, n);
    circuit.apply_to_statevector(&mut sv);
    println!("PEPS bond dimension after exact evolution: {}", peps.max_bond());

    let bits = vec![0usize; n * n];
    let exact = sv.amplitude(&bits);
    println!("exact amplitude <0...0|C|0...0> = {exact}");

    println!("\n{:>6} | {:>12} | {:>12}", "m", "BMPS error", "IBMPS error");
    for m in [2usize, 4, 8, 16, 32, 64] {
        let a_bmps = amplitude(&peps, &bits, ContractionMethod::bmps(m), &mut rng).unwrap();
        let a_ibmps = amplitude(&peps, &bits, ContractionMethod::ibmps(m), &mut rng).unwrap();
        println!(
            "{:>6} | {:>12.3e} | {:>12.3e}",
            m,
            (a_bmps - exact).abs() / exact.abs(),
            (a_ibmps - exact).abs() / exact.abs()
        );
    }
    println!("\nOnce the contraction bond dimension exceeds the state's entanglement,");
    println!("the error drops to the level of round-off — the behaviour of Figure 10.");
}
