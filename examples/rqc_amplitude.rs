//! Random-quantum-circuit amplitude study (the Figure 10 workload at a
//! laptop-friendly size), submitted through the `koala-serve` front door
//! and the `koala-circuit` gate-list front end.
//!
//! The seed-21 lattice circuit is converted to the typed circuit IR and
//! dispatched with [`BackendChoice::Auto`]: at nine qubits the dispatcher
//! picks the exact statevector oracle, which doubles as the reference for
//! the bond sweep. The sweep itself computes the same amplitude with BMPS
//! and IBMPS at increasing contraction bond dimensions, showing the sharp
//! error drop once the bond dimension crosses the entanglement threshold.
//!
//! Run with: `cargo run --release --example rqc_amplitude`

use koala::circuit::Circuit;
use koala::peps::ContractionMethod;
use koala::serve::{AmplitudeJob, CircuitJob, JobResult, JobSpec, Server, ServerConfig};
use koala::sim::random_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 3;
    let mut rng = StdRng::seed_from_u64(21);
    let rqc = random_circuit(n, n, 8, 4, &mut rng);
    println!("generated an RQC with {} gates ({} entangling)", rqc.len(), rqc.two_qubit_count());

    // --- Front end: typed IR + auto dispatch for the exact reference. ---
    let circuit = Circuit::from_lattice_circuit(&rqc, n, n).expect("lattice circuit converts");
    let bits = vec![0usize; n * n];
    let mut server = Server::new(ServerConfig::default());
    server
        .submit("figure10", JobSpec::Circuit(CircuitJob::new(circuit, vec![bits])))
        .expect("submit");
    let outcome = server.drain().pop().expect("one outcome");
    let Some(JobResult::Circuit(front)) = outcome.result else {
        panic!("circuit job failed: {:?}", outcome.error)
    };
    let exact = front.amplitudes[0];
    println!(
        "dispatcher chose backend '{}': {} gates submitted, {} executed \
         (fusion + diagonal absorption + light-cone pruning)",
        front.backend, front.gates_submitted, front.gates_executed
    );
    println!(
        "receipt [{}]: {:.2e} hw flops ({} complex MACs, {} real MACs, {} bytes)",
        outcome.receipt.signature,
        outcome.receipt.work.hw_flops(),
        outcome.receipt.work.complex_macs,
        outcome.receipt.work.real_macs,
        outcome.receipt.work.bytes
    );
    println!("exact amplitude <0...0|C|0...0> = {exact}");

    // --- The Figure 10 bond sweep: each (method, bond) point is a typed
    // AmplitudeJob sharing the same circuit seed, so every job contracts
    // the same exactly-evolved state. ---
    let bonds = [2usize, 8, 32];
    let mut server = Server::new(ServerConfig::default());
    for m in bonds {
        for method in [ContractionMethod::bmps(m), ContractionMethod::ibmps(m)] {
            server
                .submit("figure10", JobSpec::Amplitudes(AmplitudeJob::new(n, n, method)))
                .expect("submit");
        }
    }
    let outcomes = server.drain();

    println!("\n{:>6} | {:>12} | {:>12}", "m", "BMPS error", "IBMPS error");
    for (i, m) in bonds.iter().enumerate() {
        let error = |outcome: &koala::serve::JobOutcome| {
            let Some(JobResult::Amplitudes(out)) = &outcome.result else {
                panic!("amplitude job failed: {:?}", outcome.error)
            };
            (out.amplitudes[0] - exact).abs() / exact.abs()
        };
        println!(
            "{:>6} | {:>12.3e} | {:>12.3e}",
            m,
            error(&outcomes[2 * i]),
            error(&outcomes[2 * i + 1])
        );
    }
    let flops: f64 = outcomes.iter().map(|o| o.receipt.work.hw_flops()).sum();
    println!("\ntotal billed across the batch: {flops:.2e} hardware flops");
    println!("Once the contraction bond dimension exceeds the state's entanglement,");
    println!("the error drops to the level of round-off — the behaviour of Figure 10.");
}
