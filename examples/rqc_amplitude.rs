//! Random-quantum-circuit amplitude study (the Figure 10 workload at a
//! laptop-friendly size), submitted through the `koala-serve` front door
//! instead of driving the engine directly.
//!
//! Computes one output amplitude of a 3x3 random circuit with BMPS and
//! IBMPS at increasing contraction bond dimensions, showing the sharp error
//! drop once the bond dimension crosses the entanglement threshold. Each
//! `(method, bond)` point is a typed [`AmplitudeJob`] sharing the same
//! circuit seed, so every job contracts the same exactly-evolved state.
//!
//! Run with: `cargo run --release --example rqc_amplitude`

use koala::peps::ContractionMethod;
use koala::serve::{AmplitudeJob, JobResult, JobSpec, Server, ServerConfig};
use koala::sim::{random_circuit, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 3;
    // The exact reference: the same seed-21 circuit AmplitudeJob::new
    // evolves, applied to a state vector.
    let mut rng = StdRng::seed_from_u64(21);
    let circuit = random_circuit(n, n, 8, 4, &mut rng);
    println!(
        "generated an RQC with {} gates ({} entangling)",
        circuit.len(),
        circuit.two_qubit_count()
    );
    let mut sv = StateVector::computational_zeros(n, n);
    circuit.apply_to_statevector(&mut sv);
    let bits = vec![0usize; n * n];
    let exact = sv.amplitude(&bits);
    println!("exact amplitude <0...0|C|0...0> = {exact}");

    // AmplitudeJob::new defaults mirror this workload: the 8-layer seed-21
    // circuit evolved exactly, asking for the all-zeros amplitude.
    let bonds = [2usize, 8, 32];
    let mut server = Server::new(ServerConfig::default());
    for m in bonds {
        for method in [ContractionMethod::bmps(m), ContractionMethod::ibmps(m)] {
            server
                .submit("figure10", JobSpec::Amplitudes(AmplitudeJob::new(n, n, method)))
                .expect("submit");
        }
    }
    let outcomes = server.drain();

    println!("\n{:>6} | {:>12} | {:>12}", "m", "BMPS error", "IBMPS error");
    for (i, m) in bonds.iter().enumerate() {
        let error = |outcome: &koala::serve::JobOutcome| {
            let Some(JobResult::Amplitudes(out)) = &outcome.result else {
                panic!("amplitude job failed: {:?}", outcome.error)
            };
            (out.amplitudes[0] - exact).abs() / exact.abs()
        };
        println!(
            "{:>6} | {:>12.3e} | {:>12.3e}",
            m,
            error(&outcomes[2 * i]),
            error(&outcomes[2 * i + 1])
        );
    }
    let flops: f64 = outcomes.iter().map(|o| o.receipt.work.hw_flops()).sum();
    println!("\ntotal billed across the batch: {flops:.2e} hardware flops");
    println!("Once the contraction bond dimension exceeds the state's entanglement,");
    println!("the error drops to the level of round-off — the behaviour of Figure 10.");
}
