//! Ground-state search with imaginary time evolution (the Figure 13 workload
//! at a laptop-friendly size).
//!
//! Evolves a 3x3 transverse-field Ising model towards its ground state with
//! PEPS-TEBD at two bond dimensions and compares against the exact
//! state-vector reference.
//!
//! Run with: `cargo run --release --example ite_ground_state`

use koala::peps::Peps;
use koala::sim::{ite_peps, tfi_hamiltonian, IteOptions, StateVector, TfiParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let (nrows, ncols) = (3, 3);
    let params = TfiParams { jz: -1.0, hx: -2.0 };
    let h = tfi_hamiltonian(nrows, ncols, params);

    let exact = StateVector::ground_state_energy(nrows, ncols, &h, &mut rng)
        .expect("Lanczos reference failed")
        / 9.0;
    println!("exact ground-state energy per site: {exact:.6}");

    for r in [1usize, 2] {
        let peps = Peps::computational_zeros(nrows, ncols);
        let mut options = IteOptions::new(0.05, 40, r, (r * r).max(2));
        options.measure_every = 5;
        let result = ite_peps(&peps, &h, options, &mut rng).expect("ITE failed");
        println!("\nPEPS ITE with bond dimension r = {r}:");
        for (step, e) in &result.energies {
            println!("  step {step:>3}: energy per site = {e:.6}");
        }
        println!(
            "  final = {:.6} (difference from exact: {:.4})",
            result.final_energy(),
            result.final_energy() - exact
        );
    }
    println!("\nLarger bond dimensions track the exact ground state more closely,");
    println!("which is the qualitative content of Figure 13 of the paper.");
}
