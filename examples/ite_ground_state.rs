//! Ground-state search with imaginary time evolution (the Figure 13 workload
//! at a laptop-friendly size), submitted through the `koala-serve` front
//! door instead of driving the engine directly.
//!
//! Evolves a 3x3 transverse-field Ising model towards its ground state with
//! PEPS-TEBD at two bond dimensions and compares against the exact
//! state-vector reference. Each bond dimension is a typed [`IteJob`]; the
//! returned receipts carry the exact per-job work accounting.
//!
//! Run with: `cargo run --release --example ite_ground_state`

use koala::serve::{IteJob, JobResult, JobSpec, Server, ServerConfig};
use koala::sim::{tfi_hamiltonian, StateVector, TfiParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (nrows, ncols) = (3, 3);
    let params = TfiParams { jz: -1.0, hx: -2.0 };
    let h = tfi_hamiltonian(nrows, ncols, params);

    let mut rng = StdRng::seed_from_u64(7);
    let exact = StateVector::ground_state_energy(nrows, ncols, &h, &mut rng)
        .expect("Lanczos reference failed")
        / 9.0;
    println!("exact ground-state energy per site: {exact:.6}");

    // IteJob::new defaults mirror this example's workload: Jz = -1, hx = -2,
    // tau = 0.05, 40 steps measured every 5, seed 7.
    let mut server = Server::new(ServerConfig::default());
    for r in [1usize, 2] {
        server.submit("figure13", JobSpec::Ite(IteJob::new(nrows, ncols, r))).expect("submit");
    }

    for outcome in server.drain() {
        let JobResult::Ite(out) = outcome.result.expect("ITE job failed") else {
            unreachable!("ITE jobs return ITE results")
        };
        println!("\n{} (bond dimension in the signature):", outcome.receipt.signature);
        for (step, e) in &out.energies {
            println!("  step {step:>3}: energy per site = {e:.6}");
        }
        println!(
            "  final = {:.6} (difference from exact: {:.4})",
            out.final_energy,
            out.final_energy - exact
        );
        println!(
            "  receipt: {:.2e} hardware flops, {:.2e} bytes moved, {:.1?} wall",
            outcome.receipt.work.hw_flops(),
            outcome.receipt.work.bytes as f64,
            outcome.receipt.wall
        );
    }
    println!("\nLarger bond dimensions track the exact ground state more closely,");
    println!("which is the qualitative content of Figure 13 of the paper.");
}
