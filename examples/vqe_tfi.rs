//! VQE on the ferromagnetic transverse-field Ising model (the Figure 14
//! workload at a laptop-friendly size).
//!
//! Optimises a hardware-efficient Ry + CNOT ansatz on a 2x3 lattice, with the
//! ansatz simulated as a PEPS of limited bond dimension, and compares the
//! reached energy against the exact ground state.
//!
//! Run with: `cargo run --release --example vqe_tfi`

use koala::sim::{
    run_vqe, tfi_hamiltonian, Optimizer, StateVector, TfiParams, VqeBackend, VqeOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let (nrows, ncols) = (2, 3);
    let params = TfiParams::paper_figure14();
    let h = tfi_hamiltonian(nrows, ncols, params);
    let n_sites = (nrows * ncols) as f64;

    let exact = StateVector::ground_state_energy(nrows, ncols, &h, &mut rng)
        .expect("Lanczos reference failed")
        / n_sites;
    println!("exact ground-state energy per site: {exact:.6}");

    for (label, backend) in [
        ("state vector", VqeBackend::StateVector),
        ("PEPS r = 1", VqeBackend::Peps { bond: 1, contraction_bond: 2 }),
        ("PEPS r = 2", VqeBackend::Peps { bond: 2, contraction_bond: 4 }),
    ] {
        let options = VqeOptions {
            layers: 1,
            backend,
            optimizer: Optimizer::NelderMead { scale: 0.4, max_iterations: 60 },
        };
        let result = run_vqe(nrows, ncols, &h, options, None, &mut rng).expect("VQE failed");
        println!(
            "{label:<14} best energy per site = {:.6} (gap to exact: {:.4}, {} evaluations)",
            result.best_energy,
            result.best_energy - exact,
            result.evaluations
        );
    }
    println!("\nIncreasing the PEPS bond dimension lowers the reachable energy towards");
    println!("the state-vector result, as in Figure 14 of the paper.");
}
