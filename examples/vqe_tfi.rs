//! VQE on the ferromagnetic transverse-field Ising model (the Figure 14
//! workload at a laptop-friendly size), submitted through the `koala-serve`
//! front door instead of driving the engine directly.
//!
//! Optimises a hardware-efficient Ry + CNOT ansatz on a 2x3 lattice, with the
//! ansatz simulated as a PEPS of limited bond dimension, and compares the
//! reached energy against the exact ground state. Each backend is a typed
//! [`VqeJob`] in one mixed batch.
//!
//! Run with: `cargo run --release --example vqe_tfi`

use koala::serve::{JobResult, JobSpec, Server, ServerConfig, VqeJob};
use koala::sim::{tfi_hamiltonian, StateVector, TfiParams, VqeBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (nrows, ncols) = (2, 3);
    let params = TfiParams::paper_figure14();
    let h = tfi_hamiltonian(nrows, ncols, params);
    let n_sites = (nrows * ncols) as f64;

    let mut rng = StdRng::seed_from_u64(11);
    let exact = StateVector::ground_state_energy(nrows, ncols, &h, &mut rng)
        .expect("Lanczos reference failed")
        / n_sites;
    println!("exact ground-state energy per site: {exact:.6}");

    // VqeJob::new defaults mirror this example's workload: the Figure 14
    // couplings, one ansatz layer, Nelder-Mead with 60 iterations, seed 11.
    let backends = [
        ("state vector", VqeBackend::StateVector),
        ("PEPS r = 1", VqeBackend::Peps { bond: 1, contraction_bond: 2 }),
        ("PEPS r = 2", VqeBackend::Peps { bond: 2, contraction_bond: 4 }),
    ];
    let mut server = Server::new(ServerConfig::default());
    for (_, backend) in backends {
        server
            .submit("figure14", JobSpec::Vqe(VqeJob::new(nrows, ncols, backend)))
            .expect("submit");
    }

    for ((label, _), outcome) in backends.iter().zip(server.drain()) {
        let JobResult::Vqe(out) = outcome.result.expect("VQE job failed") else {
            unreachable!("VQE jobs return VQE results")
        };
        println!(
            "{label:<14} best energy per site = {:.6} (gap to exact: {:.4}, {} evaluations, {:.2e} hw flops)",
            out.best_energy,
            out.best_energy - exact,
            out.evaluations,
            outcome.receipt.work.hw_flops()
        );
    }
    println!("\nIncreasing the PEPS bond dimension lowers the reachable energy towards");
    println!("the state-vector result, as in Figure 14 of the paper.");
}
