//! Quickstart: mirrors the example listing of paper §V-A.
//!
//! Creates a 2x3 PEPS, applies one-site and two-site operators with the
//! QR-SVD update, and computes an expectation value with IBMPS contraction
//! and intermediate caching.
//!
//! Run with: `cargo run --release --example quickstart`

use koala::peps::expectation::{expectation_normalized, ExpectationOptions};
use koala::peps::operators::Observable;
use koala::peps::{apply_one_site, apply_two_site, Peps, UpdateMethod};
use koala::sim::gates::{cnot, hadamard};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // Create a 2-by-3 PEPS in the |000000> state (the paper's
    // `peps.computational_zeros(nrow=2, ncol=3)`).
    let mut qstate = Peps::computational_zeros(2, 3);
    println!(
        "created a {}x{} PEPS with {} sites",
        qstate.nrows(),
        qstate.ncols(),
        qstate.num_sites()
    );

    // Apply a one-site and a two-site operator with the QR-SVD update
    // (`qstate.apply_operator(Y, [1])` / `qstate.apply_operator(CX, [1,4], QRUpdate(rank=2))`).
    apply_one_site(&mut qstate, &hadamard(), (0, 1)).expect("one-site gate failed");
    apply_two_site(&mut qstate, &cnot(), (0, 1), (1, 1), UpdateMethod::qr_svd(2))
        .expect("two-site gate failed");
    println!("applied H on site (0,1) and CNOT on (0,1)-(1,1); max bond = {}", qstate.max_bond());

    // Calculate an expectation value with IBMPS contraction and caching
    // (`H = Observable.ZZ(3, 4) + 0.2 * Observable.X(1)`).
    let h = Observable::zz((1, 0), (1, 1)) + 0.2 * Observable::x((0, 1));
    let energy = expectation_normalized(&qstate, &h, ExpectationOptions::ibmps_cached(4), &mut rng)
        .expect("expectation failed");
    println!("<psi| ZZ(1,0)(1,1) + 0.2 X(0,1) |psi> / <psi|psi> = {:.6}", energy.re);

    // Cross-check against the exact state-vector value for this small lattice.
    let mut sv = koala::sim::StateVector::computational_zeros(2, 3);
    sv.apply_one_site(&hadamard(), (0, 1));
    sv.apply_two_site(&cnot(), (0, 1), (1, 1));
    let exact = sv.expectation(&h);
    println!("exact state-vector value                          = {exact:.6}");
    assert!((energy.re - exact).abs() < 1e-6, "PEPS and state vector disagree");
    println!("PEPS and state-vector values agree to 1e-6 — quickstart OK");
}
