//! Communication and computation accounting for the virtual cluster.
//!
//! The paper evaluates its distributed algorithms on a real supercomputer; in
//! this reproduction the cluster is simulated (see DESIGN.md §1), so scaling
//! behaviour is reported through a cost model fed by these counters. Every
//! byte that crosses a (virtual) rank boundary and every local floating-point
//! operation is tallied, which is enough to reproduce the *shape* of the
//! strong/weak scaling and algorithm-comparison figures.
//!
//! ## Accounting semantics
//!
//! * **Bytes** count traffic over the interconnect only: a collective over a
//!   group of `g` ranks that delivers `v` elements to each of `g - 1`
//!   receivers bills `v * (g - 1)` elements, and the sender's own copy is
//!   free. All volumes are in complex-element units ([`ELEM_BYTES`] bytes
//!   each) regardless of realness: the simulated wires carry the stored
//!   representation, and the backend stores real data in complex buffers
//!   (the realness win is arithmetic, not storage).
//! * **Messages** use the flat model: one per point-to-point transfer, and
//!   `receivers` per broadcast / `rounds * (P - 1)` per cluster-wide
//!   collective. The cost model charges [`CostModel::latency`] per message.
//! * **Work** is split by kernel, mirroring the GEMM layer's own counters
//!   ([`koala_linalg::gemm::flop_counter`] /
//!   [`koala_linalg::gemm::real_mac_counter`], themselves views of the
//!   scoped [`koala_exec::meter::WorkMeter`]; payload traffic recorded by
//!   [`Cluster::record_p2p`](crate::Cluster::record_p2p) and the collective
//!   recorders also bills the scoped meter's byte counter, so per-job
//!   receipts include wire volume): [`CommStats::rank_flops`]
//!   counts *complex* multiply-adds (8 real flops each) and
//!   [`CommStats::rank_real_macs`] counts *real* multiply-adds (2 real flops
//!   each) per rank. Distributed operations bill the real counter exactly
//!   when their per-rank products run on the real-only kernel — i.e. when
//!   the operands' [`koala_linalg::Matrix::is_real`] hints held — so a real
//!   workload's modelled time reflects the cheap kernel it actually runs.

use koala_json::JsonValue;
use std::fmt;

/// Size in bytes of one complex double-precision element.
pub const ELEM_BYTES: u64 = 16;

/// Real hardware flops per complex multiply-add (4 mul + 4 add).
pub const FLOPS_PER_COMPLEX_MAC: f64 = 8.0;

/// Real hardware flops per real multiply-add (1 mul + 1 add).
pub const FLOPS_PER_REAL_MAC: f64 = 2.0;

/// Per-round cost record of a pipelined collective loop (one SUMMA depth
/// round): the payload this round's panel broadcasts moved and the local MACs
/// each rank ran on the *previous* round's panels while those broadcasts were
/// in flight. [`CostModel::modelled_time_overlap`] prices the loop as
/// `comm_0 + Σ max(comm_t, compute_{t-1}) + compute_{T-1}` — pipeline fill,
/// overlapped steady state, pipeline drain.
///
/// Only fault-free payload traffic enters a round: ABFT checksum and retry
/// bytes stay on the serial (non-overlapped) critical path, because recovery
/// is a synchronous round-trip the pipeline cannot hide.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundCost {
    /// Complex elements of panel payload broadcast this round.
    pub comm_elems: u64,
    /// Messages sent this round (flat model, one per receiver).
    pub messages: u64,
    /// Complex MACs each rank runs on this round's panels.
    pub rank_cmacs: Vec<u64>,
    /// Real MACs each rank runs on this round's panels.
    pub rank_rmacs: Vec<u64>,
}

/// Counters accumulated while running operations on a [`crate::Cluster`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    /// Total bytes moved between ranks (point-to-point and collectives).
    pub bytes_communicated: u64,
    /// Number of messages (a collective over P ranks counts P-1 messages per
    /// communication round, matching the usual flat cost model).
    pub messages: u64,
    /// Number of collective operations executed (cluster-wide collectives
    /// and grid-row/-column broadcasts alike).
    pub collectives: u64,
    /// Number of full tensor/matrix redistributions (the expensive "reshape"
    /// operations the paper's Algorithm 5 is designed to avoid).
    pub redistributions: u64,
    /// Local *complex* multiply-add operations per rank (8 real flops each).
    pub rank_flops: Vec<u64>,
    /// Local *real* multiply-add operations per rank (2 real flops each) —
    /// work executed by the real-only kernel on realness-hinted operands.
    pub rank_real_macs: Vec<u64>,
    /// Bytes of ABFT checksum metadata carried alongside payload traffic
    /// (Huang–Abraham row/column sums travelling with SUMMA panels and
    /// gather/scatter blocks). Billed separately from
    /// [`CommStats::bytes_communicated`] so the fault-free traffic formulas
    /// stay exact while the cost model still sees the protection overhead.
    pub checksum_bytes: u64,
    /// Number of recovery retransmissions (SUMMA round retries, re-fetched
    /// gather/scatter blocks) triggered by detected faults.
    pub retries: u64,
    /// Bytes retransmitted during recovery — the traffic a fault-free run
    /// would not have moved. Kept out of
    /// [`CommStats::bytes_communicated`] for the same reason as
    /// [`CommStats::checksum_bytes`].
    pub retry_bytes: u64,
    /// Number of full gathers: operations that materialise an entire
    /// distributed matrix/tensor on every rank (or on a root). These are the
    /// fallbacks the 2-D SUMMA paths exist to avoid; tests pin this counter
    /// to zero on the distributed gate-update hot path.
    pub full_gathers: u64,
    /// Per-round cost records of pipelined loops (SUMMA depth rounds), in
    /// execution order. The payload and MACs recorded here are *also* in the
    /// aggregate counters above; rounds are a refinement, not extra work.
    /// [`CostModel::modelled_time`] ignores them (bulk-synchronous model);
    /// [`CostModel::modelled_time_overlap`] prices them as a pipeline.
    pub rounds: Vec<RoundCost>,
}

impl CommStats {
    /// Fresh counters for a cluster with `nranks` ranks.
    pub fn new(nranks: usize) -> Self {
        CommStats {
            rank_flops: vec![0; nranks],
            rank_real_macs: vec![0; nranks],
            ..Default::default()
        }
    }

    /// Largest per-rank complex-MAC count. For the compute critical path of
    /// a mixed real/complex execution use [`CostModel::modelled_time`], which
    /// weights the two kernels by their calibrated rates.
    pub fn max_rank_flops(&self) -> u64 {
        self.rank_flops.iter().copied().max().unwrap_or(0)
    }

    /// Total complex MACs across all ranks.
    pub fn total_flops(&self) -> u64 {
        self.rank_flops.iter().sum()
    }

    /// Total real MACs across all ranks.
    pub fn total_real_macs(&self) -> u64 {
        self.rank_real_macs.iter().sum()
    }

    /// Total *hardware* flops across all ranks: complex MACs at 8 real flops
    /// plus real MACs at 2. This is the "useful work" numerator of the
    /// weak-scaling figures, and matches `bench_gemm`'s convention.
    pub fn total_hw_flops(&self) -> f64 {
        self.total_flops() as f64 * FLOPS_PER_COMPLEX_MAC
            + self.total_real_macs() as f64 * FLOPS_PER_REAL_MAC
    }

    /// Hardware flops executed by one rank (same convention as
    /// [`CommStats::total_hw_flops`]).
    pub fn rank_hw_flops(&self, rank: usize) -> f64 {
        self.rank_flops[rank] as f64 * FLOPS_PER_COMPLEX_MAC
            + self.rank_real_macs[rank] as f64 * FLOPS_PER_REAL_MAC
    }

    /// Load imbalance: max/mean per-rank hardware flops (1.0 = perfectly
    /// balanced).
    pub fn load_imbalance(&self) -> f64 {
        let nranks = self.rank_flops.len().max(1);
        let total = self.total_hw_flops();
        if total == 0.0 {
            return 1.0;
        }
        let max = (0..self.rank_flops.len()).map(|r| self.rank_hw_flops(r)).fold(0.0f64, f64::max);
        max / (total / nranks as f64)
    }

    /// Merge counters from another accounting period.
    pub fn merge(&mut self, other: &CommStats) {
        self.bytes_communicated += other.bytes_communicated;
        self.messages += other.messages;
        self.collectives += other.collectives;
        self.redistributions += other.redistributions;
        self.checksum_bytes += other.checksum_bytes;
        self.retries += other.retries;
        self.retry_bytes += other.retry_bytes;
        self.full_gathers += other.full_gathers;
        self.rounds.extend(other.rounds.iter().cloned());
        if self.rank_flops.len() < other.rank_flops.len() {
            self.rank_flops.resize(other.rank_flops.len(), 0);
        }
        for (a, b) in self.rank_flops.iter_mut().zip(other.rank_flops.iter()) {
            *a += *b;
        }
        if self.rank_real_macs.len() < other.rank_real_macs.len() {
            self.rank_real_macs.resize(other.rank_real_macs.len(), 0);
        }
        for (a, b) in self.rank_real_macs.iter_mut().zip(other.rank_real_macs.iter()) {
            *a += *b;
        }
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "comm: {:.3} MB in {} msgs ({} collectives, {} redistributions), \
             max rank cMACs {:.3e}, total rMACs {:.3e}, imbalance {:.2}, \
             abft {:.3} MB checksums + {} retries ({:.3} MB resent)",
            self.bytes_communicated as f64 / 1e6,
            self.messages,
            self.collectives,
            self.redistributions,
            self.max_rank_flops() as f64,
            self.total_real_macs() as f64,
            self.load_imbalance(),
            self.checksum_bytes as f64 / 1e6,
            self.retries,
            self.retry_bytes as f64 / 1e6
        )
    }
}

/// Machine parameters of the modelled cluster, used to convert [`CommStats`]
/// into a modelled parallel execution time.
///
/// The two arithmetic rates are *effective* sustained rates of the local
/// packed GEMM kernels — complex MACs/s for the split-complex kernel and
/// real MACs/s for the real-only kernel. [`CostModel::from_bench`] calibrates
/// both from the committed `BENCH_gemm.json` so the modelled scaling figures
/// price per-rank work at what this machine's kernels actually sustain;
/// [`CostModel::default`] is the uncalibrated fallback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Sustained complex multiply-add rate per rank (complex MACs / second).
    pub flops_per_second: f64,
    /// Sustained real multiply-add rate per rank (real MACs / second) — the
    /// rate the real-only kernel achieves on realness-hinted operands.
    pub real_macs_per_second: f64,
    /// Interconnect bandwidth per rank (bytes / second).
    pub bytes_per_second: f64,
    /// Per-message latency (seconds).
    pub latency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Uncalibrated fallback, loosely modelled on a KNL-era node and
        // fat-tree interconnect: ~10 G complex MAC/s (80 GF/s effective) per
        // core, a real kernel sustaining the equivalent element throughput
        // (4x the MACs at a quarter of the flops each), ~1 GB/s per rank,
        // ~2 microseconds latency. Prefer `CostModel::from_bench` with the
        // committed BENCH_gemm.json, which replaces both arithmetic rates
        // with measured ones.
        CostModel {
            flops_per_second: 1.0e10,
            real_macs_per_second: 4.0e10,
            bytes_per_second: 1.0e9,
            latency: 2.0e-6,
        }
    }
}

impl CostModel {
    /// Calibrate the arithmetic rates from a `BENCH_gemm.json` document (the
    /// file `bench_gemm` commits at the repository root).
    ///
    /// * `flops_per_second` is the median effective rate of the
    ///   `packed_vs_seed` series (`packed_gflops`, which counts 8 real flops
    ///   per complex MAC) converted to complex MACs/s,
    /// * `real_macs_per_second` is the median effective rate of the
    ///   `real_vs_complex` series converted to real MACs/s. Note the field's
    ///   convention: `real_effective_gflops` credits each real MAC the **8**
    ///   nominal flops of the complex MAC it replaces (so its ratio to
    ///   `packed_gflops` reads as the wall-time speedup), hence the divisor
    ///   is 8 here, not the 2 hardware flops a real MAC executes.
    ///
    /// Only single-thread rows (`threads` == 1, or absent) enter the
    /// medians: the rates are documented as *per rank*, and a baseline
    /// refreshed on a multi-core host also records aggregate multi-thread
    /// rows that would otherwise inflate the calibration by up to the core
    /// count. The medians are then taken across all shapes of each series,
    /// so one cache-friendly outlier does not skew the model. `bench_gemm`
    /// measures a single machine, not an interconnect, so `bytes_per_second`
    /// and `latency` keep their [`CostModel::default`] values.
    ///
    /// Errors if the document does not parse or either series is absent —
    /// callers that want a silent fallback should match on the error and use
    /// `CostModel::default()`.
    pub fn from_bench(json_text: &str) -> Result<CostModel, String> {
        let doc = JsonValue::parse(json_text).map_err(|e| format!("from_bench: {e}"))?;
        let results = doc
            .get("results")
            .and_then(|r| r.as_array())
            .ok_or("from_bench: missing 'results' array")?;
        let series_rates = |series: &str, field: &str| -> Vec<f64> {
            results
                .iter()
                .filter(|item| item.get("series").and_then(|v| v.as_str()) == Some(series))
                .filter(|item| item.get("threads").and_then(|v| v.as_num()).unwrap_or(1.0) == 1.0)
                .filter_map(|item| item.get(field).and_then(|v| v.as_num()))
                .filter(|&r| r > 0.0)
                .collect()
        };
        let complex_gflops = median(series_rates("packed_vs_seed", "packed_gflops"))
            .ok_or("from_bench: no usable 'packed_vs_seed' entries")?;
        let real_gflops = median(series_rates("real_vs_complex", "real_effective_gflops"))
            .ok_or("from_bench: no usable 'real_vs_complex' entries")?;
        let fallback = CostModel::default();
        Ok(CostModel {
            flops_per_second: complex_gflops * 1e9 / FLOPS_PER_COMPLEX_MAC,
            // real_effective_gflops = 8 * real MACs / second (see above).
            real_macs_per_second: real_gflops * 1e9 / FLOPS_PER_COMPLEX_MAC,
            bytes_per_second: fallback.bytes_per_second,
            latency: fallback.latency,
        })
    }

    /// Modelled wall-clock time of a bulk-synchronous execution with the given
    /// counters: compute critical path (the slowest rank, pricing complex and
    /// real MACs at their respective rates) + serialised communication +
    /// latency. ABFT overhead ([`CommStats::checksum_bytes`] and
    /// [`CommStats::retry_bytes`]) rides on the interconnect like any other
    /// traffic, so recovery from injected faults shows up in the modelled
    /// time even though the payload formulas stay fault-free.
    pub fn modelled_time(&self, stats: &CommStats) -> f64 {
        let compute = (0..stats.rank_flops.len())
            .map(|r| {
                stats.rank_flops[r] as f64 / self.flops_per_second
                    + stats.rank_real_macs[r] as f64 / self.real_macs_per_second
            })
            .fold(0.0f64, f64::max);
        let wire_bytes = stats.bytes_communicated + stats.checksum_bytes + stats.retry_bytes;
        let comm =
            wire_bytes as f64 / (self.bytes_per_second * stats.rank_flops.len().max(1) as f64);
        let latency = stats.messages as f64 * self.latency;
        compute + comm + latency
    }

    /// Modelled useful *hardware-flop* rate per rank: total hardware flops
    /// achieved (8 per complex MAC, 2 per real MAC) / modelled time / ranks.
    /// Directly comparable to `bench_gemm`'s effective GFLOP/s numbers after
    /// dividing by 1e9.
    pub fn flop_rate_per_rank(&self, stats: &CommStats) -> f64 {
        let t = self.modelled_time(stats);
        if t == 0.0 {
            return 0.0;
        }
        stats.total_hw_flops() / t / stats.rank_flops.len().max(1) as f64
    }

    /// Wire time of one pipelined round: its payload over the aggregate
    /// interconnect bandwidth plus per-message latency.
    pub fn round_comm_time(&self, round: &RoundCost, nranks: usize) -> f64 {
        (round.comm_elems * ELEM_BYTES) as f64 / (self.bytes_per_second * nranks.max(1) as f64)
            + round.messages as f64 * self.latency
    }

    /// Compute time of one pipelined round: the slowest rank's MACs at the
    /// calibrated kernel rates.
    pub fn round_compute_time(&self, round: &RoundCost) -> f64 {
        (0..round.rank_cmacs.len().max(round.rank_rmacs.len()))
            .map(|r| {
                round.rank_cmacs.get(r).copied().unwrap_or(0) as f64 / self.flops_per_second
                    + round.rank_rmacs.get(r).copied().unwrap_or(0) as f64
                        / self.real_macs_per_second
            })
            .fold(0.0f64, f64::max)
    }

    /// Modelled wall-clock time with communication/computation *overlap*
    /// inside pipelined loops (SUMMA depth rounds).
    ///
    /// Work recorded in [`CommStats::rounds`] is priced as a software
    /// pipeline: round `t+1`'s panel broadcasts travel while round `t`'s
    /// local GEMM runs, so a sequence of `T` rounds costs
    ///
    /// ```text
    /// comm_0  +  Σ_{t=1..T-1} max(comm_t, compute_{t-1})  +  compute_{T-1}
    /// ```
    ///
    /// — the pipeline fill (first panel has nothing to hide behind), the
    /// overlapped steady state, and the drain (last GEMM has no broadcast to
    /// hide it). Everything *not* attributed to a round — scatters, gathers,
    /// reductions, replicated factorizations, and all ABFT checksum/retry
    /// traffic — is priced exactly as in the serial
    /// [`CostModel::modelled_time`] and added on top. With no recorded rounds
    /// the two models agree identically.
    pub fn modelled_time_overlap(&self, stats: &CommStats) -> f64 {
        let nranks = stats.rank_flops.len().max(1);
        // Serial remainder: aggregate counters minus what the rounds refine.
        let round_elems: u64 = stats.rounds.iter().map(|r| r.comm_elems).sum();
        let round_msgs: u64 = stats.rounds.iter().map(|r| r.messages).sum();
        let mut serial_cmacs = stats.rank_flops.clone();
        let mut serial_rmacs = stats.rank_real_macs.clone();
        for round in &stats.rounds {
            for (a, b) in serial_cmacs.iter_mut().zip(round.rank_cmacs.iter()) {
                *a = a.saturating_sub(*b);
            }
            for (a, b) in serial_rmacs.iter_mut().zip(round.rank_rmacs.iter()) {
                *a = a.saturating_sub(*b);
            }
        }
        let serial_compute = (0..nranks)
            .map(|r| {
                serial_cmacs.get(r).copied().unwrap_or(0) as f64 / self.flops_per_second
                    + serial_rmacs.get(r).copied().unwrap_or(0) as f64 / self.real_macs_per_second
            })
            .fold(0.0f64, f64::max);
        let serial_wire = (stats.bytes_communicated + stats.checksum_bytes + stats.retry_bytes)
            .saturating_sub(round_elems * ELEM_BYTES);
        let serial_comm = serial_wire as f64 / (self.bytes_per_second * nranks as f64)
            + stats.messages.saturating_sub(round_msgs) as f64 * self.latency;

        // Pipelined rounds: fill, overlapped steady state, drain.
        let mut pipeline = 0.0;
        for (t, round) in stats.rounds.iter().enumerate() {
            let comm = self.round_comm_time(round, nranks);
            if t == 0 {
                pipeline += comm;
            } else {
                pipeline += comm.max(self.round_compute_time(&stats.rounds[t - 1]));
            }
        }
        if let Some(last) = stats.rounds.last() {
            pipeline += self.round_compute_time(last);
        }
        serial_compute + serial_comm + pipeline
    }

    /// [`CostModel::flop_rate_per_rank`] under the overlap-aware model.
    pub fn flop_rate_per_rank_overlap(&self, stats: &CommStats) -> f64 {
        let t = self.modelled_time_overlap(stats);
        if t == 0.0 {
            return 0.0;
        }
        stats.total_hw_flops() / t / stats.rank_flops.len().max(1) as f64
    }

    /// The model's per-rank hardware-flop peak for an all-complex workload —
    /// the horizontal "ideal" line of the weak-scaling figure.
    pub fn complex_peak_flops(&self) -> f64 {
        self.flops_per_second * FLOPS_PER_COMPLEX_MAC
    }

    /// The model's per-rank hardware-flop peak for an all-real workload.
    pub fn real_peak_flops(&self) -> f64 {
        self.real_macs_per_second * FLOPS_PER_REAL_MAC
    }
}

/// Median of an unsorted sample (None when empty).
fn median(mut xs: Vec<f64>) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    // NaN rates (malformed bench entries) sort as equal rather than panicking;
    // they were already filtered out by the `r > 0.0` guard upstream.
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = xs.len() / 2;
    Some(if xs.len() % 2 == 1 { xs[mid] } else { 0.5 * (xs[mid - 1] + xs[mid]) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_counters() {
        let mut a = CommStats::new(2);
        a.bytes_communicated = 100;
        a.messages = 3;
        a.rank_flops = vec![10, 20];
        a.rank_real_macs = vec![1, 2];
        a.checksum_bytes = 8;
        a.retries = 1;
        let mut b = CommStats::new(2);
        b.bytes_communicated = 50;
        b.collectives = 1;
        b.rank_flops = vec![5, 1];
        b.rank_real_macs = vec![4, 0];
        b.checksum_bytes = 4;
        b.retries = 2;
        b.retry_bytes = 32;
        a.merge(&b);
        assert_eq!(a.bytes_communicated, 150);
        assert_eq!(a.messages, 3);
        assert_eq!(a.collectives, 1);
        assert_eq!(a.checksum_bytes, 12);
        assert_eq!(a.retries, 3);
        assert_eq!(a.retry_bytes, 32);
        assert_eq!(a.rank_flops, vec![15, 21]);
        assert_eq!(a.rank_real_macs, vec![5, 2]);
        assert_eq!(a.max_rank_flops(), 21);
        assert_eq!(a.total_flops(), 36);
        assert_eq!(a.total_real_macs(), 7);
        assert_eq!(a.total_hw_flops(), 36.0 * 8.0 + 7.0 * 2.0);
    }

    #[test]
    fn load_imbalance_of_balanced_work_is_one() {
        let mut s = CommStats::new(4);
        s.rank_flops = vec![10, 10, 10, 10];
        assert!((s.load_imbalance() - 1.0).abs() < 1e-12);
        s.rank_flops = vec![40, 0, 0, 0];
        assert!((s.load_imbalance() - 4.0).abs() < 1e-12);
        // Real MACs weigh 2 hardware flops vs 8: 4 rMACs balance 1 cMAC.
        s.rank_flops = vec![10, 0, 10, 0];
        s.rank_real_macs = vec![0, 40, 0, 40];
        assert!((s.load_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn modelled_time_components() {
        let model = CostModel {
            flops_per_second: 1e9,
            real_macs_per_second: 4e9,
            bytes_per_second: 1e9,
            latency: 1e-6,
        };
        let mut s = CommStats::new(2);
        s.rank_flops = vec![1_000_000_000, 500_000_000];
        s.bytes_communicated = 2_000_000_000;
        s.messages = 1000;
        let t = model.modelled_time(&s);
        // 1 s compute + 1 s comm (2 GB over 2 ranks * 1GB/s) + 1 ms latency
        assert!((t - 2.001).abs() < 1e-9, "modelled time {t}");
        assert!(model.flop_rate_per_rank(&s) > 0.0);
        // Real MACs are priced at the real rate: rank 1 becomes the critical
        // path only once its real work exceeds the rate ratio.
        s.rank_real_macs = vec![0, 6_000_000_000];
        let t2 = model.modelled_time(&s);
        // rank 0: 1 s; rank 1: 0.5 + 6/4 = 2 s compute.
        assert!((t2 - 3.001).abs() < 1e-9, "modelled time {t2}");
        // ABFT checksum and retry traffic ride the same wires.
        s.checksum_bytes = 1_000_000_000;
        s.retry_bytes = 1_000_000_000;
        let t3 = model.modelled_time(&s);
        assert!((t3 - (t2 + 1.0)).abs() < 1e-9, "modelled time with abft traffic {t3}");
    }

    #[test]
    fn overlap_model_equals_serial_model_without_rounds() {
        let model = CostModel::default();
        let mut s = CommStats::new(4);
        s.rank_flops = vec![7, 11, 13, 17];
        s.rank_real_macs = vec![1, 2, 3, 4];
        s.bytes_communicated = 123_456;
        s.checksum_bytes = 789;
        s.retry_bytes = 1000;
        s.messages = 42;
        let serial = model.modelled_time(&s);
        let overlap = model.modelled_time_overlap(&s);
        assert!((serial - overlap).abs() < 1e-15, "serial {serial} vs overlap {overlap}");
    }

    #[test]
    fn overlap_model_hides_comm_behind_compute() {
        let model = CostModel {
            flops_per_second: 1e9,
            real_macs_per_second: 4e9,
            bytes_per_second: 1e9,
            latency: 0.0,
        };
        // Three identical rounds on one rank: 1 s of broadcast each
        // (1e9 bytes over 1 rank) and 1 s of compute each (1e9 cMACs).
        let round = RoundCost {
            comm_elems: 1_000_000_000 / ELEM_BYTES,
            messages: 0,
            rank_cmacs: vec![1_000_000_000],
            rank_rmacs: vec![0],
        };
        let mut s = CommStats::new(1);
        s.rounds = vec![round.clone(), round.clone(), round.clone()];
        // Aggregates include what the rounds refine.
        s.bytes_communicated = 3 * round.comm_elems * ELEM_BYTES;
        s.rank_flops = vec![3_000_000_000];
        // Serial: 3 s comm + 3 s compute = 6 s. Overlapped: fill 1 s +
        // 2 steady rounds at max(1, 1) = 2 s + drain 1 s = 4 s.
        let serial = model.modelled_time(&s);
        let overlap = model.modelled_time_overlap(&s);
        assert!((serial - 6.0).abs() < 1e-9, "serial {serial}");
        assert!((overlap - 4.0).abs() < 1e-9, "overlap {overlap}");
        // Saturated regime: compute dwarfs comm, so all but the first
        // broadcast vanishes: 1 s fill + 3 x 3 s compute = 10 s.
        let mut sat = s.clone();
        for r in &mut sat.rounds {
            r.rank_cmacs = vec![3_000_000_000];
        }
        sat.rank_flops = vec![9_000_000_000];
        let t_sat = model.modelled_time_overlap(&sat);
        assert!((t_sat - 10.0).abs() < 1e-9, "saturated overlap {t_sat}");
        assert!(model.flop_rate_per_rank_overlap(&sat) > model.flop_rate_per_rank(&sat));
    }

    #[test]
    fn overlap_model_keeps_abft_traffic_serial() {
        let model = CostModel {
            flops_per_second: 1e9,
            real_macs_per_second: 4e9,
            bytes_per_second: 1e9,
            latency: 0.0,
        };
        let round = RoundCost {
            comm_elems: 1_000_000_000 / ELEM_BYTES,
            messages: 0,
            rank_cmacs: vec![1_000_000_000],
            rank_rmacs: vec![0],
        };
        let mut s = CommStats::new(1);
        s.rounds = vec![round.clone(), round.clone()];
        s.bytes_communicated = 2 * round.comm_elems * ELEM_BYTES;
        s.rank_flops = vec![2_000_000_000];
        let base = model.modelled_time_overlap(&s);
        // Checksum/retry bytes cannot hide behind compute: they add fully.
        s.checksum_bytes = 1_000_000_000;
        s.retry_bytes = 500_000_000;
        let with_abft = model.modelled_time_overlap(&s);
        assert!((with_abft - base - 1.5).abs() < 1e-9, "abft serial term {with_abft} vs {base}");
    }

    #[test]
    fn merge_appends_rounds_and_full_gathers() {
        let mut a = CommStats::new(1);
        a.full_gathers = 1;
        a.rounds.push(RoundCost { comm_elems: 5, ..Default::default() });
        let mut b = CommStats::new(1);
        b.full_gathers = 2;
        b.rounds.push(RoundCost { comm_elems: 7, ..Default::default() });
        a.merge(&b);
        assert_eq!(a.full_gathers, 3);
        assert_eq!(a.rounds.len(), 2);
        assert_eq!(a.rounds[1].comm_elems, 7);
    }

    #[test]
    fn from_bench_calibrates_both_rates() {
        let doc = r#"{
          "results": [
            {"series": "packed_vs_seed", "label": "a", "packed_gflops": 32.0},
            {"series": "packed_vs_seed", "label": "b", "threads": 1.0, "packed_gflops": 40.0},
            {"series": "packed_vs_seed", "label": "c", "threads": 1.0, "packed_gflops": 24.0},
            {"series": "packed_vs_seed", "label": "b", "threads": 8.0, "packed_gflops": 250.0},
            {"series": "real_vs_complex", "label": "a", "threads": 1.0, "real_effective_gflops": 20.0},
            {"series": "real_vs_complex", "label": "a", "threads": 8.0, "real_effective_gflops": 700.0},
            {"series": "real_factorization", "label": "x", "effective_gflops": 9.0}
          ]
        }"#;
        let m = CostModel::from_bench(doc).expect("calibration failed");
        // Median single-thread packed rate 32 GF/s -> 4e9 complex MACs/s;
        // the aggregate 8-thread rows must not enter the per-rank medians.
        assert!((m.flops_per_second - 4.0e9).abs() < 1.0);
        // Median single-thread real_effective rate of 20 (which credits 8
        // nominal flops per real MAC) -> 2.5e9 real MACs/s, i.e. a hardware
        // peak of 5 GF/s.
        assert!((m.real_macs_per_second - 2.5e9).abs() < 1.0);
        assert!((m.real_peak_flops() - 5.0e9).abs() < 1.0);
        // Interconnect parameters stay at the fallback values.
        let d = CostModel::default();
        assert_eq!(m.bytes_per_second, d.bytes_per_second);
        assert_eq!(m.latency, d.latency);
        assert!(m.complex_peak_flops() > 0.0 && m.real_peak_flops() > 0.0);
    }

    #[test]
    fn from_bench_rejects_unusable_documents() {
        assert!(CostModel::from_bench("not json").is_err());
        assert!(CostModel::from_bench("{\"results\": []}").is_err());
        let only_complex = r#"{"results": [
            {"series": "packed_vs_seed", "packed_gflops": 32.0}
        ]}"#;
        assert!(CostModel::from_bench(only_complex).is_err());
    }

    #[test]
    fn display_is_informative() {
        let s = CommStats::new(2);
        let text = s.to_string();
        assert!(text.contains("comm"));
        assert!(text.contains("redistributions"));
    }
}
