//! Communication and computation accounting for the virtual cluster.
//!
//! The paper evaluates its distributed algorithms on a real supercomputer; in
//! this reproduction the cluster is simulated (see DESIGN.md §1), so scaling
//! behaviour is reported through a cost model fed by these counters. Every
//! byte that crosses a (virtual) rank boundary and every local floating-point
//! operation is tallied, which is enough to reproduce the *shape* of the
//! strong/weak scaling and algorithm-comparison figures.

use std::fmt;

/// Size in bytes of one complex double-precision element.
pub const ELEM_BYTES: u64 = 16;

/// Counters accumulated while running operations on a [`crate::Cluster`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    /// Total bytes moved between ranks (point-to-point and collectives).
    pub bytes_communicated: u64,
    /// Number of messages (a collective over P ranks counts P-1 messages per
    /// communication round, matching the usual flat cost model).
    pub messages: u64,
    /// Number of collective operations executed.
    pub collectives: u64,
    /// Number of full tensor/matrix redistributions (the expensive "reshape"
    /// operations the paper's Algorithm 5 is designed to avoid).
    pub redistributions: u64,
    /// Local complex multiply-add operations per rank.
    pub rank_flops: Vec<u64>,
}

impl CommStats {
    /// Fresh counters for a cluster with `nranks` ranks.
    pub fn new(nranks: usize) -> Self {
        CommStats { rank_flops: vec![0; nranks], ..Default::default() }
    }

    /// Largest per-rank flop count — the compute critical path of a bulk-
    /// synchronous execution.
    pub fn max_rank_flops(&self) -> u64 {
        self.rank_flops.iter().copied().max().unwrap_or(0)
    }

    /// Total flops across all ranks (the "useful work").
    pub fn total_flops(&self) -> u64 {
        self.rank_flops.iter().sum()
    }

    /// Load imbalance: max/mean per-rank flops (1.0 = perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        let total = self.total_flops();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.rank_flops.len() as f64;
        self.max_rank_flops() as f64 / mean
    }

    /// Merge counters from another accounting period.
    pub fn merge(&mut self, other: &CommStats) {
        self.bytes_communicated += other.bytes_communicated;
        self.messages += other.messages;
        self.collectives += other.collectives;
        self.redistributions += other.redistributions;
        if self.rank_flops.len() < other.rank_flops.len() {
            self.rank_flops.resize(other.rank_flops.len(), 0);
        }
        for (a, b) in self.rank_flops.iter_mut().zip(other.rank_flops.iter()) {
            *a += *b;
        }
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "comm: {:.3} MB in {} msgs ({} collectives, {} redistributions), \
             max rank flops {:.3e}, imbalance {:.2}",
            self.bytes_communicated as f64 / 1e6,
            self.messages,
            self.collectives,
            self.redistributions,
            self.max_rank_flops() as f64,
            self.load_imbalance()
        )
    }
}

/// Machine parameters of the modelled cluster, used to convert [`CommStats`]
/// into a modelled parallel execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Sustained complex multiply-add rate per rank (operations / second).
    pub flops_per_second: f64,
    /// Interconnect bandwidth per rank (bytes / second).
    pub bytes_per_second: f64,
    /// Per-message latency (seconds).
    pub latency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Loosely modelled on a KNL-era node and fat-tree interconnect:
        // ~10 GF/s effective per core for complex GEMM, ~1 GB/s per rank,
        // ~2 microseconds latency.
        CostModel { flops_per_second: 1.0e10, bytes_per_second: 1.0e9, latency: 2.0e-6 }
    }
}

impl CostModel {
    /// Modelled wall-clock time of a bulk-synchronous execution with the given
    /// counters: compute critical path + serialised communication + latency.
    pub fn modelled_time(&self, stats: &CommStats) -> f64 {
        let compute = stats.max_rank_flops() as f64 / self.flops_per_second;
        let comm = stats.bytes_communicated as f64
            / (self.bytes_per_second * stats.rank_flops.len().max(1) as f64);
        let latency = stats.messages as f64 * self.latency;
        compute + comm + latency
    }

    /// Modelled useful flop rate per rank (flops achieved / modelled time / ranks).
    pub fn flop_rate_per_rank(&self, stats: &CommStats) -> f64 {
        let t = self.modelled_time(stats);
        if t == 0.0 {
            return 0.0;
        }
        stats.total_flops() as f64 / t / stats.rank_flops.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_counters() {
        let mut a = CommStats::new(2);
        a.bytes_communicated = 100;
        a.messages = 3;
        a.rank_flops = vec![10, 20];
        let mut b = CommStats::new(2);
        b.bytes_communicated = 50;
        b.collectives = 1;
        b.rank_flops = vec![5, 1];
        a.merge(&b);
        assert_eq!(a.bytes_communicated, 150);
        assert_eq!(a.messages, 3);
        assert_eq!(a.collectives, 1);
        assert_eq!(a.rank_flops, vec![15, 21]);
        assert_eq!(a.max_rank_flops(), 21);
        assert_eq!(a.total_flops(), 36);
    }

    #[test]
    fn load_imbalance_of_balanced_work_is_one() {
        let mut s = CommStats::new(4);
        s.rank_flops = vec![10, 10, 10, 10];
        assert!((s.load_imbalance() - 1.0).abs() < 1e-12);
        s.rank_flops = vec![40, 0, 0, 0];
        assert!((s.load_imbalance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn modelled_time_components() {
        let model = CostModel { flops_per_second: 1e9, bytes_per_second: 1e9, latency: 1e-6 };
        let mut s = CommStats::new(2);
        s.rank_flops = vec![1_000_000_000, 500_000_000];
        s.bytes_communicated = 2_000_000_000;
        s.messages = 1000;
        let t = model.modelled_time(&s);
        // 1 s compute + 1 s comm (2 GB over 2 ranks * 1GB/s) + 1 ms latency
        assert!((t - 2.001).abs() < 1e-9, "modelled time {t}");
        assert!(model.flop_rate_per_rank(&s) > 0.0);
    }

    #[test]
    fn display_is_informative() {
        let s = CommStats::new(2);
        let text = s.to_string();
        assert!(text.contains("comm"));
        assert!(text.contains("redistributions"));
    }
}
