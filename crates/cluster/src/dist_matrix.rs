//! Matrices distributed over a 2-D processor grid.
//!
//! A [`DistMatrix`] maps its rows onto the grid rows and its columns onto the
//! grid columns of a [`ProcGrid`] (see [`crate::grid`] for the layout rules);
//! rank `(r, c)` stores the intersection of its grid row's global rows and
//! its grid column's global columns as one dense local [`Matrix`]. Two
//! layouts are in use:
//!
//! * **block-row** (`grid = P x 1`, contiguous row blocks, columns
//!   replicated) — the layout [`DistMatrix::scatter`] produces, the layout
//!   `DistTensor` slabs matricize into for free, and the layout the Gram
//!   helpers ([`DistMatrix::gram`], [`gram_qr_dist`]) require,
//! * **2-D block-cyclic** ([`DistMatrix::scatter_block_cyclic`] /
//!   [`DistMatrix::scatter_summa`]) — the ScaLAPACK-style layout under which
//!   [`DistMatrix::matmul_dist`] runs SUMMA with `O(n^2 / sqrt(P))` words of
//!   traffic per rank instead of the gather-everything `O(n^2)`.
//!
//! All dense work happens on the per-rank blocks through the same packed
//! GEMM (`koala_linalg::gemm_into` / `gemm_into_real`) the shared-memory
//! path uses — including its MC x NC macro-tiling and the real-only
//! microkernel — and anything that crosses rank boundaries is routed through
//! the [`Cluster`] so its communication counters reflect what a real
//! distributed run would move.
//!
//! ## SUMMA round structure
//!
//! `C = A * B` iterates over the common refinement of `A`'s column layout
//! and `B`'s row layout (the *depth panels*, [`crate::grid::refine`]). For
//! each panel `t` of width `kb`:
//!
//! ```text
//! 1. the grid column owning A(:, t) broadcasts its local panel rows along
//!    each grid row          — volume m_loc x kb to q - 1 receivers per row,
//! 2. the grid row owning B(t, :) broadcasts its local panel columns along
//!    each grid column       — volume kb x n_loc to p - 1 receivers per col,
//! 3. every rank accumulates C_loc += A_panel * B_panel with gemm_into
//!    (gemm_into_real when both panels carry the realness hint).
//! ```
//!
//! Summed over all panels each rank receives `m_loc k (q-1)/q + k n_loc
//! (p-1)/p` words — `O(n^2 (p + q) / P) = O(n^2 / sqrt(P))` on a square
//! grid — while the block-row layout degenerates to the old
//! allgather-everything volume (`q = 1` makes step 1 free and step 2 an
//! allgather of `B`). Realness rides along: panels are submatrices of hinted
//! blocks, so a real workload runs the real microkernel on every rank and
//! bills [`crate::CommStats::rank_real_macs`] instead of complex flops.
//!
//! ## Transposed operands and stationary variants
//!
//! [`DistMatrix::matmul_dist_op`] computes `C = opA(A) * opB(B)` for any
//! [`Op`] pair, ScaLAPACK-`pdgemm` style, by dispatching between three
//! stationary dataflows ([`SummaVariant`]):
//!
//! | variant      | never moves | rounds iterate | valid for        |
//! |--------------|-------------|----------------|------------------|
//! | stationary-C | `C`         | depth panels   | every op pair    |
//! | stationary-A | `A`         | `C`-col panels | `opA = None`     |
//! | stationary-B | `B`         | `C`-row panels | `opB = None`     |
//!
//! In every variant the *raw, untransposed* slices of the stored operand
//! travel over the wire and the op is fused into the local packed GEMM's
//! packing step ([`gemm_into`]'s own transposition support) — so ABFT
//! checksums ride transposed panels exactly as they ride plain ones, and the
//! realness hints of the stored blocks propagate into the shipped slices.
//! When an op turns an operand's grid-column dimension into an output
//! dimension that must live on the grid rows (or vice versa), the round
//! additionally pays an *alignment* term: the panel piece that is not already
//! resident on its target grid row/column moves once more. The exact per-
//! round payload of each variant is available from
//! [`DistMatrix::summa_traffic_elems`], which the auto-dispatcher minimises
//! and the property tests assert against the recorded traffic, element for
//! element.
//!
//! Every variant also appends one [`crate::RoundCost`] per round to
//! [`crate::CommStats::rounds`], so
//! [`crate::CostModel::modelled_time_overlap`] can price round `t+1`'s panel
//! broadcasts hidden behind round `t`'s local GEMM.

use crate::cluster::Cluster;
use crate::fault::{corrupt_index, FaultEvent, FaultKind, FaultSite};
use crate::grid::{refine, Dist1D, Panel, ProcGrid};
use crate::stats::RoundCost;
use koala_error::{ErrorKind, KoalaError};
use koala_exec::{TaskGraph, TaskId, TaskKind};
use koala_linalg::gemm::{gemm_into, gemm_into_real, Op};
use koala_linalg::{c64, eigh, matmul, matmul_adj_a, Matrix, C64};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Maximum retransmissions of one checksummed transfer before the fault is
/// declared unrecoverable. Transient faults (the default
/// [`crate::FaultPlan`] mode) never need more than one.
pub const MAX_TRANSFER_RETRIES: usize = 3;

/// Relative tolerance for ABFT checksum verification, scaled per element by
/// the magnitude of the sender's checksum. The simulated wire is exact, so
/// any slack works; the scaling mirrors what a real implementation needs to
/// tolerate non-associative reduction order.
const ABFT_REL_TOL: f64 = 1e-8;

/// Huang–Abraham column checksum `e^T M`: one complex sum per column. Carried
/// with every `A`-side SUMMA panel and every gather/scatter block; for a
/// product `C = A B` the linearity `e^T (A B) = (e^T A) B` is what lets a
/// per-round verification of the carried sums certify the accumulated local
/// product without forming it twice.
fn column_checksum(m: &Matrix) -> Vec<C64> {
    let mut out = vec![c64(0.0, 0.0); m.ncols()];
    for i in 0..m.nrows() {
        for (o, v) in out.iter_mut().zip(m.row(i)) {
            *o = c64(o.re + v.re, o.im + v.im);
        }
    }
    out
}

/// Huang–Abraham row checksum `M e`: one complex sum per row (the `B`-side
/// dual of [`column_checksum`], via `(A B) e = A (B e)`).
fn row_checksum(m: &Matrix) -> Vec<C64> {
    (0..m.nrows())
        .map(|i| {
            let (mut re, mut im) = (0.0, 0.0);
            for v in m.row(i) {
                re += v.re;
                im += v.im;
            }
            c64(re, im)
        })
        .collect()
}

/// Element-wise comparison of a recomputed checksum against the one the
/// sender transmitted.
fn checksums_match(got: &[C64], sent: &[C64]) -> bool {
    got.len() == sent.len()
        && got.iter().zip(sent).all(|(g, s)| {
            let scale = 1.0 + s.re.abs() + s.im.abs();
            (g.re - s.re).abs() + (g.im - s.im).abs() <= ABFT_REL_TOL * scale
        })
}

/// Materialise what the receiver actually sees when `ev` strikes the
/// delivery of `pristine`: a dropped block arrives as zeros, a corrupted one
/// has a deterministically-chosen element blown far past the checksum
/// tolerance.
fn apply_fault(pristine: &Matrix, ev: &FaultEvent) -> Matrix {
    match ev.kind {
        FaultKind::Drop => Matrix::zeros(pristine.nrows(), pristine.ncols()),
        _ => {
            let mut m = pristine.clone();
            let len = m.nrows() * m.ncols();
            if len > 0 {
                let idx = corrupt_index(ev.index, len);
                let bump = 1e3 * (1.0 + pristine.norm_max());
                let data = m.data_mut();
                let v = data[idx];
                data[idx] = c64(v.re + bump, v.im);
            }
            m
        }
    }
}

/// Simulated checksummed delivery of one block to one receiver. The sender's
/// Huang–Abraham checksum (`checksum_of(pristine)`, already billed to
/// [`crate::CommStats::checksum_bytes`] by the caller) rides with the
/// payload; the receiver recomputes it over what arrived, and a mismatch
/// triggers a retransmission billed to [`crate::CommStats::retry_bytes`] —
/// bounded by [`MAX_TRANSFER_RETRIES`], after which the fault is reported as
/// unrecoverable. The verification sums are O(block) additions and are not
/// billed to the work counters (they are metadata upkeep, not useful MACs).
fn deliver_checksummed(
    cluster: &Cluster,
    pristine: &Matrix,
    sent_sum: &[C64],
    checksum_of: fn(&Matrix) -> Vec<C64>,
    site: FaultSite,
    summa: bool,
) -> crate::Result<()> {
    let mut attempt = 0usize;
    loop {
        if attempt > 0 {
            cluster.record_retry(pristine.nrows() * pristine.ncols() + sent_sum.len());
            if summa {
                koala_error::recovery::note_summa_round_retry();
            } else {
                koala_error::recovery::note_collective_retry();
            }
        }
        let ok = match cluster.fault_decision(site, attempt) {
            // The simulated wire delivered the sender's buffer verbatim.
            None => true,
            Some(ev) => checksums_match(&checksum_of(&apply_fault(pristine, &ev)), sent_sum),
        };
        if ok {
            return Ok(());
        }
        attempt += 1;
        if attempt > MAX_TRANSFER_RETRIES {
            return Err(KoalaError::new(
                ErrorKind::Fault,
                format!(
                    "checksum mismatch persists after {MAX_TRANSFER_RETRIES} retries at {site:?}"
                ),
            ));
        }
    }
}

/// Which operand of `C = opA(A) * opB(B)` a SUMMA dataflow keeps stationary
/// (see the module docs for the dispatch table and traffic formulas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaVariant {
    /// `A` never moves: panels of `opB(B)` are broadcast along grid columns
    /// and partial results are reduced onto the output's column owners.
    /// Wins when `A` dominates the traffic (`N` small relative to `K`).
    /// Requires `opA = `[`Op::None`].
    StationaryA,
    /// `B` never moves: panels of `opA(A)` are broadcast along grid rows and
    /// partial results are reduced onto the output's row owners. Wins when
    /// `B` dominates (`M` small relative to `K`). Requires
    /// `opB = `[`Op::None`].
    StationaryB,
    /// `C` never moves: depth panels of both operands are broadcast (the
    /// classic SUMMA dataflow of the module docs). Valid for every op pair.
    StationaryC,
}

/// Accumulate `src` into `dst` at offset `(row0, col0)` (the local reduction
/// step of the stationary-A/B variants). Realness is handled by the caller.
fn add_into(dst: &mut Matrix, row0: usize, col0: usize, src: &Matrix) {
    let width = dst.ncols();
    let data = dst.data_mut();
    for i in 0..src.nrows() {
        for (j, v) in src.row(i).iter().enumerate() {
            let idx = (row0 + i) * width + col0 + j;
            let d = data[idx];
            data[idx] = c64(d.re + v.re, d.im + v.im);
        }
    }
}

/// A matrix distributed over the ranks of a [`Cluster`] by a 2-D processor
/// grid (block-row by default; block-cyclic for SUMMA). See the module docs
/// for the layout rules.
#[derive(Debug, Clone)]
pub struct DistMatrix {
    cluster: Cluster,
    grid: ProcGrid,
    rows: Dist1D,
    cols: Dist1D,
    /// One local block per rank, indexed by `grid.rank_of(r, c)`; rank
    /// `(r, c)`'s block has shape `rows.local_len(r) x cols.local_len(c)`.
    blocks: Vec<Matrix>,
}

/// Extract rank `(r, c)`'s local block of a replicated matrix (realness hint
/// preserved).
pub(crate) fn local_block(
    matrix: &Matrix,
    rows: &Dist1D,
    r: usize,
    cols: &Dist1D,
    c: usize,
) -> Matrix {
    let mut out = Matrix::zeros(rows.local_len(r), cols.local_len(c));
    {
        let dst_cols = out.ncols();
        let data = out.data_mut();
        for rs in rows.segments().iter().filter(|s| s.owner == r) {
            for cs in cols.segments().iter().filter(|s| s.owner == c) {
                for i in 0..rs.len {
                    let src = &matrix.row(rs.start + i)[cs.start..cs.start + cs.len];
                    data[(rs.local_start + i) * dst_cols + cs.local_start..][..cs.len]
                        .copy_from_slice(src);
                }
            }
        }
    }
    if matrix.is_real() {
        out.assume_real();
    }
    out
}

impl DistMatrix {
    /// Distribute a replicated matrix across the cluster by contiguous row
    /// blocks (an MPI `scatter` from rank 0 on a `P x 1` grid: every block
    /// except rank 0's own travels over the wire). Columns stay replicated
    /// within each rank's block, which is what the Gram helpers require.
    pub fn scatter(cluster: &Cluster, matrix: &Matrix) -> Self {
        let rows = Dist1D::balanced(matrix.nrows(), cluster.nranks());
        let cols = Dist1D::whole(matrix.ncols());
        Self::scatter_with(cluster, matrix, ProcGrid::column(cluster.nranks()), rows, cols)
    }

    /// Distribute a replicated matrix in the ScaLAPACK block-cyclic layout
    /// over an explicit grid with the given row/column block sizes (a
    /// scatter from rank 0, charged like [`DistMatrix::scatter`]).
    pub fn scatter_block_cyclic(
        cluster: &Cluster,
        matrix: &Matrix,
        grid: ProcGrid,
        row_block: usize,
        col_block: usize,
    ) -> Self {
        let rows = Dist1D::cyclic(matrix.nrows(), grid.rows(), row_block);
        let cols = Dist1D::cyclic(matrix.ncols(), grid.cols(), col_block);
        Self::scatter_with(cluster, matrix, grid, rows, cols)
    }

    /// [`DistMatrix::scatter_block_cyclic`] on the cluster's default
    /// near-square grid ([`Cluster::grid`]) with the default SUMMA panel
    /// width ([`DistMatrix::DEFAULT_BLOCK`]) in both dimensions.
    pub fn scatter_summa(cluster: &Cluster, matrix: &Matrix) -> Self {
        Self::scatter_block_cyclic(
            cluster,
            matrix,
            cluster.grid(),
            Self::DEFAULT_BLOCK,
            Self::DEFAULT_BLOCK,
        )
    }

    /// Default block-cyclic block size (and therefore SUMMA panel width).
    /// Small enough to balance ragged edges, large enough that per-panel
    /// local GEMMs stay inside the packed kernel's depth blocking.
    pub const DEFAULT_BLOCK: usize = 64;

    fn scatter_with(
        cluster: &Cluster,
        matrix: &Matrix,
        grid: ProcGrid,
        rows: Dist1D,
        cols: Dist1D,
    ) -> Self {
        assert_eq!(grid.nranks(), cluster.nranks(), "scatter: grid does not cover the cluster");
        assert_eq!(rows.parts(), grid.rows(), "scatter: row layout does not match the grid");
        assert_eq!(cols.parts(), grid.cols(), "scatter: column layout does not match the grid");
        let mut blocks = Vec::with_capacity(cluster.nranks());
        for rank in 0..cluster.nranks() {
            let (r, c) = grid.coords_of(rank);
            let block = local_block(matrix, &rows, r, &cols, c);
            if rank != 0 {
                cluster.record_p2p(block.nrows() * block.ncols());
                // Each scattered block travels with its column checksum and
                // is verified on arrival, exactly like a SUMMA panel.
                let sum = column_checksum(&block);
                cluster.record_checksum(sum.len());
                if let Err(e) = deliver_checksummed(
                    cluster,
                    &block,
                    &sum,
                    column_checksum,
                    FaultSite::ScatterBlock { rank },
                    false,
                ) {
                    panic!("scatter: unrecoverable fault: {e}");
                }
            }
            blocks.push(block);
        }
        DistMatrix { cluster: cluster.clone(), grid, rows, cols, blocks }
    }

    /// Create a block-row distributed zero matrix.
    pub fn zeros(cluster: &Cluster, nrows: usize, ncols: usize) -> Self {
        let grid = ProcGrid::column(cluster.nranks());
        let rows = Dist1D::balanced(nrows, cluster.nranks());
        let cols = Dist1D::whole(ncols);
        let blocks =
            (0..cluster.nranks()).map(|r| Matrix::zeros(rows.local_len(r), ncols)).collect();
        DistMatrix { cluster: cluster.clone(), grid, rows, cols, blocks }
    }

    /// Build a block-row distributed matrix directly from per-rank row blocks
    /// without any communication (the blocks are taken to already live on
    /// their ranks). Row counts may follow any contiguous partition of
    /// `nrows`.
    pub fn from_blocks(cluster: &Cluster, nrows: usize, ncols: usize, blocks: Vec<Matrix>) -> Self {
        assert_eq!(blocks.len(), cluster.nranks(), "from_blocks: one block per rank required");
        let total: usize = blocks.iter().map(|b| b.nrows()).sum();
        assert_eq!(total, nrows, "from_blocks: block rows do not sum to nrows");
        for b in &blocks {
            assert_eq!(b.ncols(), ncols, "from_blocks: block column count mismatch");
        }
        let rows = Dist1D::blocks(blocks.iter().map(|b| b.nrows()).collect());
        DistMatrix {
            cluster: cluster.clone(),
            grid: ProcGrid::column(cluster.nranks()),
            rows,
            cols: Dist1D::whole(ncols),
            blocks,
        }
    }

    /// Verify the checksummed transfer of every block that crosses a wire in
    /// a gather (`to_all = false`: foreign blocks travel to rank 0) or an
    /// allgather (`to_all = true`: every block travels to every other rank).
    /// One fault site per *source* block; detected damage is repaired by a
    /// bounded retransmission like any other ABFT transfer.
    fn verify_block_transfers(&self, to_all: bool) -> crate::Result<()> {
        if self.cluster.nranks() == 1 {
            return Ok(()); // nothing crosses a wire
        }
        let receivers = if to_all { self.cluster.nranks() - 1 } else { 1 };
        for (rank, block) in self.blocks.iter().enumerate() {
            if !to_all && rank == 0 {
                continue;
            }
            let sum = column_checksum(block);
            self.cluster.record_checksum(sum.len() * receivers);
            deliver_checksummed(
                &self.cluster,
                block,
                &sum,
                column_checksum,
                FaultSite::GatherBlock { rank },
                false,
            )
            .map_err(|e| e.context(format!("gathering rank {rank}'s block")))?;
        }
        Ok(())
    }

    /// Assemble the full matrix on every rank (an MPI `allgather`), with
    /// per-block checksum verification. Panics only when a
    /// [`crate::FaultPlan::persistent`] injected fault outlasts the retry
    /// budget — an unrecoverable interconnect on an infallible collective.
    pub fn allgather(&self) -> Matrix {
        self.cluster.record_full_gather();
        let total: usize = self.blocks.iter().map(|b| b.nrows() * b.ncols()).sum();
        self.cluster.record_collective(total * (self.cluster.nranks() - 1), 1);
        if let Err(e) = self.verify_block_transfers(true) {
            panic!("allgather: unrecoverable fault: {e}");
        }
        self.gather_local()
    }

    /// Assemble the full matrix on rank 0 only (an MPI `gather`), with
    /// per-block checksum verification (panic semantics as
    /// [`DistMatrix::allgather`]).
    pub fn gather(&self) -> Matrix {
        self.cluster.record_full_gather();
        let foreign: usize = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(rank, _)| *rank != 0)
            .map(|(_, b)| b.nrows() * b.ncols())
            .sum();
        self.cluster.record_collective(foreign, 1);
        if let Err(e) = self.verify_block_transfers(false) {
            panic!("gather: unrecoverable fault: {e}");
        }
        self.gather_local()
    }

    /// Concatenate the blocks without touching the communication counters.
    ///
    /// This is a driver/testing utility: in a real distributed run the result
    /// would stay distributed, so callers that only need the data back on the
    /// host (e.g. to hand a kernel's output to the next, still-local, stage of
    /// a benchmark) use this to avoid charging communication that the modelled
    /// execution would not perform. The realness hint survives (the gathered
    /// matrix of all-real blocks is marked real), so a real workload stays on
    /// the real kernel after leaving the cluster.
    pub fn gather_unaccounted(&self) -> Matrix {
        self.gather_local()
    }

    /// Assemble a distributed matrix from already-resident per-rank blocks
    /// without touching the communication counters — the caller accounts for
    /// whatever movement produced the blocks (the `DistTensor` layer uses
    /// this for zero-copy matricizations and pre-billed redistributions).
    pub(crate) fn from_parts(
        cluster: &Cluster,
        grid: ProcGrid,
        rows: Dist1D,
        cols: Dist1D,
        blocks: Vec<Matrix>,
    ) -> Self {
        assert_eq!(grid.nranks(), cluster.nranks(), "from_parts: grid does not cover the cluster");
        assert_eq!(blocks.len(), cluster.nranks(), "from_parts: one block per rank required");
        for (rank, b) in blocks.iter().enumerate() {
            let (r, c) = grid.coords_of(rank);
            assert_eq!(
                b.shape(),
                (rows.local_len(r), cols.local_len(c)),
                "from_parts: rank {rank} block shape does not match its layout"
            );
        }
        DistMatrix { cluster: cluster.clone(), grid, rows, cols, blocks }
    }

    /// Reassemble the full matrix from the local blocks without touching the
    /// communication counters (used internally after the communication has
    /// already been charged).
    pub(crate) fn gather_local(&self) -> Matrix {
        let mut out = Matrix::zeros(self.nrows(), self.ncols());
        let all_real = self.is_real();
        {
            let n = self.ncols();
            let data = out.data_mut();
            for rs in &self.rows.segments() {
                for cs in &self.cols.segments() {
                    let block = &self.blocks[self.grid.rank_of(rs.owner, cs.owner)];
                    for i in 0..rs.len {
                        let src = &block.row(rs.local_start + i)[cs.local_start..][..cs.len];
                        data[(rs.start + i) * n + cs.start..][..cs.len].copy_from_slice(src);
                    }
                }
            }
        }
        if all_real {
            out.assume_real();
        }
        out
    }

    /// Shape of the full matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows.n(), self.cols.n())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows.n()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.n()
    }

    /// The cluster this matrix lives on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The processor grid this matrix is distributed over.
    pub fn grid(&self) -> ProcGrid {
        self.grid
    }

    /// The row layout (rows onto grid rows).
    pub fn row_dist(&self) -> &Dist1D {
        &self.rows
    }

    /// The column layout (columns onto grid columns).
    pub fn col_dist(&self) -> &Dist1D {
        &self.cols
    }

    /// Structural realness of the distributed data: `true` iff every rank's
    /// local block carries the [`Matrix::is_real`] hint, i.e. the whole
    /// distributed matrix is guaranteed purely real. Propagated by scatter,
    /// gather, SUMMA, and every mutator on this type, exactly like the local
    /// hint.
    pub fn is_real(&self) -> bool {
        self.blocks.iter().all(|b| b.is_real())
    }

    /// Immutable access to one rank's local block.
    pub fn block(&self, rank: usize) -> &Matrix {
        &self.blocks[rank]
    }

    /// `C = self * B` where `B` is replicated on every rank. On the
    /// column-replicated (grid `p x 1`) layout the result keeps the row
    /// distribution of `self` and no communication is required. On a 2-D
    /// layout each rank multiplies its local block against the matching
    /// replicated rows of `B` and the partial products are reduce-scattered
    /// along each grid row into a column distribution shaped like `self`'s
    /// (`m_loc * ncols(B) * (q - 1)` words per grid row) — still no gather
    /// of the big operand.
    pub fn matmul_replicated(&self, b: &Matrix) -> DistMatrix {
        assert_eq!(self.ncols(), b.nrows(), "matmul_replicated: inner dimension mismatch");
        let (p, q) = (self.grid.rows(), self.grid.cols());
        if q == 1 {
            let mut blocks = Vec::with_capacity(self.blocks.len());
            for (rank, block) in self.blocks.iter().enumerate() {
                let macs = (block.nrows() * block.ncols() * b.ncols()) as u64;
                self.cluster.record_macs(rank, macs, block.is_real() && b.is_real());
                blocks.push(matmul(block, b));
            }
            return DistMatrix {
                cluster: self.cluster.clone(),
                grid: self.grid,
                rows: self.rows.clone(),
                cols: Dist1D::whole(b.ncols()),
                blocks,
            };
        }
        let n_out = b.ncols();
        let out_cols = self.cols.like_parts(n_out, q);
        let all_real = self.is_real() && b.is_real();
        let mut out_blocks: Vec<Matrix> = (0..self.grid.nranks())
            .map(|rank| {
                let (r, c) = self.grid.coords_of(rank);
                Matrix::zeros(self.rows.local_len(r), out_cols.local_len(c))
            })
            .collect();
        for r in 0..p {
            let m_loc = self.rows.local_len(r);
            // Reduce-scatter of the grid row's partial products.
            self.cluster.record_bcast(m_loc * n_out * (q - 1), q - 1);
            if m_loc == 0 {
                continue;
            }
            for c in 0..q {
                let rank = self.grid.rank_of(r, c);
                let a_loc = &self.blocks[rank];
                let k_loc = self.cols.local_len(c);
                // The rows of B that line up with this rank's local columns.
                let mut b_sel = Matrix::zeros(k_loc, n_out);
                for seg in self.cols.segments().iter().filter(|s| s.owner == c) {
                    b_sel.set_submatrix(
                        seg.local_start,
                        0,
                        &b.submatrix(seg.start, 0, seg.len, n_out),
                    );
                }
                let macs = (m_loc * k_loc * n_out) as u64;
                self.cluster.record_macs(rank, macs, a_loc.is_real() && b.is_real());
                let partial = matmul(a_loc, &b_sel);
                for seg in out_cols.segments().iter().filter(|s| s.len > 0) {
                    let dst = self.grid.rank_of(r, seg.owner);
                    let piece = partial.submatrix(0, seg.start, m_loc, seg.len);
                    add_into(&mut out_blocks[dst], 0, seg.local_start, &piece);
                }
            }
        }
        if all_real {
            for blk in &mut out_blocks {
                blk.assume_real();
            }
        }
        DistMatrix {
            cluster: self.cluster.clone(),
            grid: self.grid,
            rows: self.rows.clone(),
            cols: out_cols,
            blocks: out_blocks,
        }
    }

    /// `C = self * other`: SUMMA over the shared processor grid (see the
    /// module docs for the round structure and traffic bound). Both operands
    /// must live on the same grid; the depth panels are the common refinement
    /// of `self`'s column layout and `other`'s row layout, so any mix of
    /// block and block-cyclic layouts works — a `P x 1` block-row pair
    /// degenerates to the old allgather-`B` dataflow, while a square-grid
    /// block-cyclic pair communicates `O(n^2 / sqrt(P))` words per rank.
    ///
    /// Every per-rank local product runs through the packed
    /// [`gemm_into`] (the real-only [`gemm_into_real`] when both panels carry
    /// the realness hint), and the result preserves both the distribution
    /// (`self`'s rows x `other`'s columns) and the realness of its operands.
    ///
    /// ## Fault tolerance (ABFT)
    ///
    /// Every panel broadcast carries a Huang–Abraham checksum vector
    /// (the column checksum of the `A` panel, the row checksum of the `B`
    /// panel — one complex element per depth index, billed to
    /// [`crate::CommStats::checksum_bytes`]). Each receiving rank re-derives
    /// the sums over what actually arrived, so a corrupted or dropped
    /// delivery is *detected in the round it happens* and *recovered* by
    /// retransmitting just that panel to just that rank (bounded by
    /// [`MAX_TRANSFER_RETRIES`], billed to [`crate::CommStats::retry_bytes`]).
    /// A planned rank failure ([`crate::FaultPlan::fail_rank`]) costs the
    /// restarted rank a re-fetch of both of the round's panels. Errors are
    /// only possible under a [`crate::FaultPlan::persistent`] fault plan that
    /// outlasts the retry budget; the recovered result is bit-identical to
    /// the fault-free run because detection precedes accumulation.
    pub fn matmul_dist(&self, other: &DistMatrix) -> crate::Result<DistMatrix> {
        self.matmul_dist_variant(Op::None, Op::None, other, SummaVariant::StationaryC)
    }

    /// `C = opA(self) * opB(other)`, ScaLAPACK-`pdgemm` style: SUMMA with
    /// per-operand [`Op`]s, auto-dispatched to the [`SummaVariant`] with the
    /// least predicted payload traffic ([`DistMatrix::summa_traffic_elems`];
    /// ties go to stationary-C). See the module docs for the dataflows.
    ///
    /// ```
    /// use koala_cluster::{Cluster, DistMatrix};
    /// use koala_linalg::gemm::{gemm, Op};
    /// use koala_linalg::Matrix;
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// let cluster = Cluster::new(4); // 2 x 2 grid
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let a = Matrix::random(7, 9, &mut rng);
    /// let b = Matrix::random(7, 5, &mut rng);
    /// let da = DistMatrix::scatter_block_cyclic(&cluster, &a, cluster.grid(), 2, 2);
    /// let db = DistMatrix::scatter_block_cyclic(&cluster, &b, cluster.grid(), 2, 2);
    /// // C = A^T B without ever materialising A^T:
    /// let c = da.matmul_dist_op(Op::Transpose, Op::None, &db).unwrap();
    /// assert!(c.max_diff_replicated(&gemm(Op::Transpose, Op::None, &a, &b)) < 1e-12);
    /// assert_eq!(cluster.stats().full_gathers, 0); // no gather fallback
    /// ```
    pub fn matmul_dist_op(
        &self,
        opa: Op,
        opb: Op,
        other: &DistMatrix,
    ) -> crate::Result<DistMatrix> {
        let mut variant = SummaVariant::StationaryC;
        let mut best = self
            .summa_traffic_elems(opa, opb, other, SummaVariant::StationaryC)
            .unwrap_or(u64::MAX);
        for v in [SummaVariant::StationaryA, SummaVariant::StationaryB] {
            if let Some(t) = self.summa_traffic_elems(opa, opb, other, v) {
                if t < best {
                    best = t;
                    variant = v;
                }
            }
        }
        self.matmul_dist_variant(opa, opb, other, variant)
    }

    /// [`DistMatrix::matmul_dist_op`] with an explicitly chosen
    /// [`SummaVariant`] (stationary-A requires `opa == Op::None`,
    /// stationary-B requires `opb == Op::None`; stationary-C accepts every
    /// op pair). Fault tolerance, MAC billing, realness propagation, and
    /// per-round [`crate::RoundCost`] recording are identical across the
    /// variants; only the dataflow (and hence the traffic formula) differs.
    pub fn matmul_dist_variant(
        &self,
        opa: Op,
        opb: Op,
        other: &DistMatrix,
        variant: SummaVariant,
    ) -> crate::Result<DistMatrix> {
        assert_eq!(
            self.cluster.nranks(),
            other.cluster.nranks(),
            "matmul_dist: operands live on different clusters"
        );
        assert_eq!(self.grid, other.grid, "matmul_dist: operands must share the processor grid");
        let (_, ka) = opa.effective_shape(self.shape());
        let (kb, _) = opb.effective_shape(other.shape());
        assert_eq!(ka, kb, "matmul_dist: inner dimension mismatch");
        match variant {
            SummaVariant::StationaryC => self.summa_stationary_c(opa, opb, other),
            SummaVariant::StationaryA => {
                assert_eq!(opa, Op::None, "matmul_dist: stationary-A requires op_a = None");
                self.summa_stationary_a(opb, other)
            }
            SummaVariant::StationaryB => {
                assert_eq!(opb, Op::None, "matmul_dist: stationary-B requires op_b = None");
                self.summa_stationary_b(opa, other)
            }
        }
    }

    /// Predicted fault-free payload traffic (in complex elements, i.e.
    /// [`crate::ELEM_BYTES`]-byte words) of `opA(self) * opB(other)` under
    /// `variant`, or `None` when the variant does not support the op pair.
    ///
    /// This is the closed form of exactly what the implementation bills to
    /// [`crate::CommStats::bytes_communicated`] — the property tests assert
    /// equality element-for-element — and what
    /// [`DistMatrix::matmul_dist_op`] minimises. Per round of width `kb`:
    ///
    /// * **stationary-C**, `A` side: `sum_r kb * m_loc(r) * (q - 1)` when
    ///   `opa` is `None` (the resident grid-row broadcast); with a
    ///   transposed/adjoint `A` the panel is assembled from the owning grid
    ///   row, so row `r` pays `kb * m_loc(r) * q` unless it *is* the owner
    ///   (then `q - 1`) — the alignment term. The `B` side is the mirror
    ///   image with `p` and `q` swapped.
    /// * **stationary-A**: ships the raw `B` depth slice to each grid column
    ///   (`p` copies per element, minus the one already home) and reduces
    ///   partial results along grid rows (`m_loc(r) * kb * (q - 1)`).
    /// * **stationary-B**: the transpose-mirror of stationary-A.
    pub fn summa_traffic_elems(
        &self,
        opa: Op,
        opb: Op,
        other: &DistMatrix,
        variant: SummaVariant,
    ) -> Option<u64> {
        let (p, q) = (self.grid.rows(), self.grid.cols());
        let (m_out, _) = opa.effective_shape(self.shape());
        let (_, n_out) = opb.effective_shape(other.shape());
        let mut total = 0u64;
        match variant {
            SummaVariant::StationaryC => {
                let da = if opa == Op::None { &self.cols } else { &self.rows };
                let db = if opb == Op::None { &other.rows } else { &other.cols };
                let out_rows = if opa == Op::None {
                    self.rows.clone()
                } else {
                    self.cols.like_parts(m_out, p)
                };
                let out_cols = if opb == Op::None {
                    other.cols.clone()
                } else {
                    other.rows.like_parts(n_out, q)
                };
                for panel in refine(da, db) {
                    for r in 0..p {
                        let recv = if opa == Op::None || r == panel.a_owner { q - 1 } else { q };
                        total += (panel.len * out_rows.local_len(r) * recv) as u64;
                    }
                    for c in 0..q {
                        let recv = if opb == Op::None || c == panel.b_owner { p - 1 } else { p };
                        total += (panel.len * out_cols.local_len(c) * recv) as u64;
                    }
                }
            }
            SummaVariant::StationaryA => {
                if opa != Op::None {
                    return None;
                }
                let n_dist_b = if opb == Op::None { &other.cols } else { &other.rows };
                let out_cols = if opb == Op::None {
                    other.cols.clone()
                } else {
                    other.rows.like_parts(n_out, q)
                };
                let depth_src = if opb == Op::None { &other.rows } else { &other.cols };
                let pieces = refine(&self.cols, depth_src);
                for panel in refine(n_dist_b, &out_cols) {
                    for pc in &pieces {
                        let home = if opb == Op::None {
                            usize::from(pc.a_owner == panel.a_owner)
                        } else {
                            usize::from(pc.a_owner == pc.b_owner)
                        };
                        total += (panel.len * pc.len * (p - home)) as u64;
                    }
                    total += (self.nrows() * panel.len * (q - 1)) as u64;
                }
            }
            SummaVariant::StationaryB => {
                if opb != Op::None {
                    return None;
                }
                let m_dist_a = if opa == Op::None { &self.rows } else { &self.cols };
                let out_rows = if opa == Op::None {
                    self.rows.clone()
                } else {
                    self.cols.like_parts(m_out, p)
                };
                let depth_src = if opa == Op::None { &self.cols } else { &self.rows };
                let pieces = refine(&other.rows, depth_src);
                for panel in refine(m_dist_a, &out_rows) {
                    for pc in &pieces {
                        let home = if opa == Op::None {
                            usize::from(pc.a_owner == panel.a_owner)
                        } else {
                            usize::from(pc.a_owner == pc.b_owner)
                        };
                        total += (panel.len * pc.len * (q - home)) as u64;
                    }
                    total += (other.ncols() * panel.len * (p - 1)) as u64;
                }
            }
        }
        Some(total)
    }

    /// Stationary-C SUMMA over depth panels (the module-docs dataflow), with
    /// op-dependent panel sourcing: a `None` operand broadcasts its resident
    /// panel along its grid row/column exactly as before, while a transposed/
    /// adjoint operand assembles the raw depth slice from the grid row (resp.
    /// column) that owns it and ships it to every rank that needs it — the
    /// alignment term of the traffic formulas. The op itself is fused into
    /// the local packed GEMM, so the wire always carries stored data and the
    /// Huang–Abraham checksums ride transposed panels exactly as plain ones.
    fn summa_stationary_c(
        &self,
        opa: Op,
        opb: Op,
        other: &DistMatrix,
    ) -> crate::Result<DistMatrix> {
        let grid = self.grid;
        let (p, q) = (grid.rows(), grid.cols());
        let nranks = grid.nranks();
        let (m_out, _) = opa.effective_shape(self.shape());
        let (_, n_out) = opb.effective_shape(other.shape());
        let da = if opa == Op::None { self.cols.clone() } else { self.rows.clone() };
        let db = if opb == Op::None { other.rows.clone() } else { other.cols.clone() };
        let out_rows =
            if opa == Op::None { self.rows.clone() } else { self.cols.like_parts(m_out, p) };
        let out_cols =
            if opb == Op::None { other.cols.clone() } else { other.rows.like_parts(n_out, q) };
        let panels = refine(&da, &db);
        let all_real = self.is_real() && other.is_real();

        let mut out_blocks: Vec<Matrix> = (0..nranks)
            .map(|rank| {
                let (r, c) = grid.coords_of(rank);
                Matrix::zeros(out_rows.local_len(r), out_cols.local_len(c))
            })
            .collect();

        // Fault injection replays a planned event sequence whose decisions
        // depend on global call order, so an armed fault plan pins the serial
        // schedule; otherwise a single-threaded pool makes the DAG pure
        // overhead. Both schedules produce bit-identical blocks and the same
        // `CommStats`: the round helpers below are shared verbatim, per-rank
        // accumulation order is fixed by dependency edges, and per-round
        // costs are pushed to the ledger in round order either way.
        let pool = koala_exec::pool();
        if pool.threads() == 1 || self.cluster.faults_armed() {
            for (t, panel) in panels.iter().enumerate() {
                let (a_panels, b_panels, comm_elems, messages) =
                    self.summa_c_round_comm(opa, opb, other, t, *panel, &out_rows, &out_cols)?;
                let mut round = RoundCost {
                    comm_elems,
                    messages,
                    rank_cmacs: vec![0; nranks],
                    rank_rmacs: vec![0; nranks],
                };
                for r in 0..p {
                    for c in 0..q {
                        let rank = grid.rank_of(r, c);
                        let (m_loc, n_loc) = out_blocks[rank].shape();
                        if m_loc == 0 || n_loc == 0 {
                            continue;
                        }
                        let (macs, real) = self.summa_c_rank_update(
                            opa,
                            opb,
                            t,
                            *panel,
                            rank,
                            &a_panels[r],
                            &b_panels[c],
                            &mut out_blocks[rank],
                        );
                        if real {
                            round.rank_rmacs[rank] += macs;
                        } else {
                            round.rank_cmacs[rank] += macs;
                        }
                    }
                }
                self.cluster.record_round(round);
            }
        } else {
            self.summa_c_rounds_dag(
                &pool,
                opa,
                opb,
                other,
                &panels,
                &out_rows,
                &out_cols,
                &mut out_blocks,
            )?;
        }
        if all_real {
            // The real kernel only ever wrote real parts into zeroed blocks.
            for b in &mut out_blocks {
                b.assume_real();
            }
        }
        Ok(DistMatrix {
            cluster: self.cluster.clone(),
            grid,
            rows: out_rows,
            cols: out_cols,
            blocks: out_blocks,
        })
    }

    /// Communication phase of one stationary-C round: build the A panel for
    /// each grid row and the B panel for each grid column (resident
    /// broadcast when the op is `None`, assembled raw depth slice
    /// otherwise), bill the broadcasts and Huang–Abraham checksums, and run
    /// the checksummed deliveries. Returns the panels plus the round's
    /// fault-free payload volume and message count for the
    /// [`RoundCost`] ledger. Shared verbatim by the serial round loop and
    /// the task-graph schedule so both bill the `CommStats` identically.
    #[allow(clippy::too_many_arguments)]
    fn summa_c_round_comm(
        &self,
        opa: Op,
        opb: Op,
        other: &DistMatrix,
        t: usize,
        panel: Panel,
        out_rows: &Dist1D,
        out_cols: &Dist1D,
    ) -> crate::Result<(Vec<Matrix>, Vec<Matrix>, u64, u64)> {
        let grid = self.grid;
        let (p, q) = (grid.rows(), grid.cols());
        let mut comm_elems = 0u64;
        let mut messages = 0u64;
        // 1. Panel of A for each grid row: resident (broadcast along the
        //    row) when opa is None, else the raw depth slice assembled
        //    from the owning grid row and shipped to the whole row.
        let a_panels: Vec<Matrix> = (0..p)
            .map(|r| {
                if opa == Op::None {
                    self.blocks[grid.rank_of(r, panel.a_owner)].submatrix(
                        0,
                        panel.a_local,
                        self.rows.local_len(r),
                        panel.len,
                    )
                } else {
                    self.rows_slice_for_part(panel.start, panel.len, out_rows, r)
                }
            })
            .collect();
        for (r, ap) in a_panels.iter().enumerate() {
            let (receivers, verifiers): (usize, Vec<usize>) = if opa == Op::None {
                (
                    q - 1,
                    (0..q).filter(|&c| c != panel.a_owner).map(|c| grid.rank_of(r, c)).collect(),
                )
            } else {
                let recv = if r == panel.a_owner { q - 1 } else { q };
                let verif = if recv == 0 {
                    Vec::new()
                } else {
                    (0..q).map(|c| grid.rank_of(r, c)).collect()
                };
                (recv, verif)
            };
            self.cluster.record_bcast(ap.nrows() * ap.ncols() * receivers, receivers);
            if receivers > 0 {
                comm_elems += (ap.nrows() * ap.ncols() * receivers) as u64;
                messages += receivers as u64;
            }
            let sum = column_checksum(ap);
            self.cluster.record_checksum(sum.len() * verifiers.len());
            for rank in verifiers {
                deliver_checksummed(
                    &self.cluster,
                    ap,
                    &sum,
                    column_checksum,
                    FaultSite::SummaPanelA { round: t, rank },
                    true,
                )
                .map_err(|e| {
                    e.context(format!("matmul_dist: SUMMA round {t}, A panel to rank {rank}"))
                })?;
            }
        }
        // 2. Panel of B for each grid column — the mirror image.
        let b_panels: Vec<Matrix> = (0..q)
            .map(|c| {
                if opb == Op::None {
                    other.blocks[grid.rank_of(panel.b_owner, c)].submatrix(
                        panel.b_local,
                        0,
                        panel.len,
                        other.cols.local_len(c),
                    )
                } else {
                    other.cols_slice_for_part(panel.start, panel.len, out_cols, c)
                }
            })
            .collect();
        for (c, bp) in b_panels.iter().enumerate() {
            let (receivers, verifiers): (usize, Vec<usize>) = if opb == Op::None {
                (
                    p - 1,
                    (0..p).filter(|&r| r != panel.b_owner).map(|r| grid.rank_of(r, c)).collect(),
                )
            } else {
                let recv = if c == panel.b_owner { p - 1 } else { p };
                let verif = if recv == 0 {
                    Vec::new()
                } else {
                    (0..p).map(|r| grid.rank_of(r, c)).collect()
                };
                (recv, verif)
            };
            self.cluster.record_bcast(bp.nrows() * bp.ncols() * receivers, receivers);
            if receivers > 0 {
                comm_elems += (bp.nrows() * bp.ncols() * receivers) as u64;
                messages += receivers as u64;
            }
            let sum = row_checksum(bp);
            self.cluster.record_checksum(sum.len() * verifiers.len());
            for rank in verifiers {
                deliver_checksummed(
                    &self.cluster,
                    bp,
                    &sum,
                    row_checksum,
                    FaultSite::SummaPanelB { round: t, rank },
                    true,
                )
                .map_err(|e| {
                    e.context(format!("matmul_dist: SUMMA round {t}, B panel to rank {rank}"))
                })?;
            }
        }
        Ok((a_panels, b_panels, comm_elems, messages))
    }

    /// One rank's local rank-`kb` update for one stationary-C round through
    /// the packed GEMM, with the ops fused into the packing step. Bills the
    /// rank's MACs (and any planned compute-fault refetch) to the cluster
    /// and returns `(macs, real)` for the caller's [`RoundCost`]. Shared by
    /// the serial loop and the task-graph schedule.
    #[allow(clippy::too_many_arguments)]
    fn summa_c_rank_update(
        &self,
        opa: Op,
        opb: Op,
        t: usize,
        panel: Panel,
        rank: usize,
        ap: &Matrix,
        bp: &Matrix,
        out: &mut Matrix,
    ) -> (u64, bool) {
        let (m_loc, n_loc) = out.shape();
        // A planned rank failure strikes here: the restarted rank has lost
        // the round's panels and re-fetches both (plus their checksum
        // vectors) before redoing its accumulation.
        if self.cluster.fault_decision(FaultSite::SummaCompute { round: t, rank }, 0).is_some() {
            let refetch =
                ap.nrows() * ap.ncols() + bp.nrows() * bp.ncols() + ap.ncols() + bp.nrows();
            self.cluster.record_retry(refetch);
            koala_error::recovery::note_summa_round_retry();
        }
        let real = ap.is_real() && bp.is_real();
        let macs = (m_loc * n_loc * panel.len) as u64;
        self.cluster.record_macs(rank, macs, real);
        if real {
            gemm_into_real(opa, opb, m_loc, n_loc, panel.len, ap.data(), bp.data(), out.data_mut());
        } else {
            gemm_into(opa, opb, m_loc, n_loc, panel.len, ap.data(), bp.data(), out.data_mut());
        }
        (macs, real)
    }

    /// Overlapped stationary-C schedule on the task-graph executor: one
    /// [`TaskKind::Comm`] task per round, chained `t -> t + 1` so every
    /// `CommStats` billing call runs in the exact serial order, and one
    /// [`TaskKind::Gemm`] task per `(round, rank)` depending on its round's
    /// comm task and the same rank's previous update. The per-rank chain
    /// fixes the depth-panel accumulation order, so output blocks are
    /// bit-identical to the serial loop at any thread count; what the
    /// executor buys is round `t + 1`'s panel broadcasts running while round
    /// `t`'s local GEMMs are still in flight — the same overlap
    /// [`crate::CostModel::modelled_time_overlap`] prices. Per-round costs
    /// land in atomic slots and are appended to the ledger in round order
    /// afterwards, so [`crate::CommStats::rounds`] is identical to a
    /// serialized run's.
    #[allow(clippy::too_many_arguments)]
    fn summa_c_rounds_dag(
        &self,
        pool: &koala_exec::Pool,
        opa: Op,
        opb: Op,
        other: &DistMatrix,
        panels: &[Panel],
        out_rows: &Dist1D,
        out_cols: &Dist1D,
        out_blocks: &mut [Matrix],
    ) -> crate::Result<()> {
        struct RoundSlot {
            comm_elems: AtomicU64,
            messages: AtomicU64,
            cmacs: Vec<AtomicU64>,
            rmacs: Vec<AtomicU64>,
        }
        // Raw base pointer to the per-rank output blocks. Each compute task
        // dereferences only `base + rank`; tasks sharing a rank are chained
        // by dependency edges and distinct ranks address distinct `Matrix`
        // values, so every dereference is exclusive for its task's duration.
        #[derive(Clone, Copy)]
        struct BlockBase(*mut Matrix);
        unsafe impl Send for BlockBase {}
        unsafe impl Sync for BlockBase {}
        impl BlockBase {
            /// Pointer to rank `rank`'s block. Taking `self` by value makes
            /// closures capture the `Send` wrapper, not the raw field.
            fn rank_ptr(self, rank: usize) -> *mut Matrix {
                // SAFETY: `rank < nranks` and the base points at a live
                // `[Matrix; nranks]` slice for the whole graph run.
                unsafe { self.0.add(rank) }
            }
        }

        let grid = self.grid;
        let (p, q) = (grid.rows(), grid.cols());
        let nranks = grid.nranks();
        let slots: Vec<RoundSlot> = (0..panels.len())
            .map(|_| RoundSlot {
                comm_elems: AtomicU64::new(0),
                messages: AtomicU64::new(0),
                cmacs: (0..nranks).map(|_| AtomicU64::new(0)).collect(),
                rmacs: (0..nranks).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        let panel_data: Vec<OnceLock<(Vec<Matrix>, Vec<Matrix>)>> =
            (0..panels.len()).map(|_| OnceLock::new()).collect();
        let base = BlockBase(out_blocks.as_mut_ptr());

        let mut graph = TaskGraph::new();
        let mut prev_comm: Option<TaskId> = None;
        let mut prev_gemm: Vec<Option<TaskId>> = vec![None; nranks];
        for (t, panel) in panels.iter().copied().enumerate() {
            let slot = &slots[t];
            let cell = &panel_data[t];
            let comm_deps: Vec<TaskId> = prev_comm.into_iter().collect();
            let comm_id = graph.add(TaskKind::Comm, &comm_deps, move || {
                let (a_panels, b_panels, comm_elems, messages) =
                    self.summa_c_round_comm(opa, opb, other, t, panel, out_rows, out_cols)?;
                slot.comm_elems.store(comm_elems, Ordering::Relaxed);
                slot.messages.store(messages, Ordering::Relaxed);
                let _ = cell.set((a_panels, b_panels));
                Ok(())
            });
            prev_comm = Some(comm_id);
            for r in 0..p {
                for c in 0..q {
                    let rank = grid.rank_of(r, c);
                    if out_rows.local_len(r) == 0 || out_cols.local_len(c) == 0 {
                        continue;
                    }
                    let mut deps = vec![comm_id];
                    if let Some(prev) = prev_gemm[rank] {
                        deps.push(prev);
                    }
                    let id = graph.add(TaskKind::Gemm, &deps, move || {
                        let (a_panels, b_panels) = cell.get().ok_or_else(|| {
                            KoalaError::new(
                                ErrorKind::InvalidArgument,
                                format!("SUMMA round {t}: panels missing for compute task"),
                            )
                        })?;
                        // SAFETY: see `BlockBase` — the per-rank dependency
                        // chain makes this borrow exclusive.
                        let out = unsafe { &mut *base.rank_ptr(rank) };
                        let (macs, real) = self.summa_c_rank_update(
                            opa,
                            opb,
                            t,
                            panel,
                            rank,
                            &a_panels[r],
                            &b_panels[c],
                            out,
                        );
                        let ctr = if real { &slot.rmacs[rank] } else { &slot.cmacs[rank] };
                        ctr.fetch_add(macs, Ordering::Relaxed);
                        Ok(())
                    });
                    prev_gemm[rank] = Some(id);
                }
            }
        }
        graph.run_on(pool)?;
        for slot in &slots {
            self.cluster.record_round(RoundCost {
                comm_elems: slot.comm_elems.load(Ordering::Relaxed),
                messages: slot.messages.load(Ordering::Relaxed),
                rank_cmacs: slot.cmacs.iter().map(|m| m.load(Ordering::Relaxed)).collect(),
                rank_rmacs: slot.rmacs.iter().map(|m| m.load(Ordering::Relaxed)).collect(),
            });
        }
        Ok(())
    }

    /// Stationary-A SUMMA: `C = A * opB(B)` with `A` resident. Rounds
    /// iterate over panels of `C`'s column dimension; each round ships the
    /// matching raw slice of `B` to the grid columns (aligned to `A`'s depth
    /// layout), runs a local partial GEMM against the whole resident `A`
    /// block, and reduces the checksummed partial results onto the panel's
    /// owning grid column.
    fn summa_stationary_a(&self, opb: Op, other: &DistMatrix) -> crate::Result<DistMatrix> {
        let grid = self.grid;
        let (p, q) = (grid.rows(), grid.cols());
        let nranks = grid.nranks();
        let (_, n_out) = opb.effective_shape(other.shape());
        let n_dist_b = if opb == Op::None { other.cols.clone() } else { other.rows.clone() };
        let out_rows = self.rows.clone();
        let out_cols =
            if opb == Op::None { other.cols.clone() } else { other.rows.like_parts(n_out, q) };
        let panels = refine(&n_dist_b, &out_cols);
        let depth_src = if opb == Op::None { &other.rows } else { &other.cols };
        let pieces = refine(&self.cols, depth_src);
        let all_real = self.is_real() && other.is_real();
        let mut out_blocks: Vec<Matrix> = (0..nranks)
            .map(|rank| {
                let (r, c) = grid.coords_of(rank);
                Matrix::zeros(out_rows.local_len(r), out_cols.local_len(c))
            })
            .collect();

        for (t, panel) in panels.iter().enumerate() {
            let mut round = RoundCost {
                rank_cmacs: vec![0; nranks],
                rank_rmacs: vec![0; nranks],
                ..Default::default()
            };
            let oc = panel.b_owner; // destination grid column of this panel
                                    // 1. Raw B depth slice for each grid column, aligned to A's
                                    //    column (depth) layout.
            let bhats: Vec<Matrix> = (0..q)
                .map(|c| {
                    if opb == Op::None {
                        other.cols_slice_for_part(panel.start, panel.len, &self.cols, c)
                    } else {
                        other.rows_slice_for_part(panel.start, panel.len, &self.cols, c)
                    }
                })
                .collect();
            for (c, bhat) in bhats.iter().enumerate() {
                let mut wire = 0usize;
                for pc in pieces.iter().filter(|pc| pc.a_owner == c) {
                    let home = if opb == Op::None {
                        usize::from(c == panel.a_owner)
                    } else {
                        usize::from(pc.a_owner == pc.b_owner)
                    };
                    let recv = p - home;
                    self.cluster.record_bcast(panel.len * pc.len * recv, recv);
                    if recv > 0 {
                        wire += panel.len * pc.len * recv;
                        round.messages += recv as u64;
                    }
                }
                round.comm_elems += wire as u64;
                let checksum_of: fn(&Matrix) -> Vec<C64> =
                    if opb == Op::None { column_checksum } else { row_checksum };
                let sum = checksum_of(bhat);
                let verifiers: Vec<usize> = if wire > 0 {
                    (0..p).map(|r| grid.rank_of(r, c)).collect()
                } else {
                    Vec::new()
                };
                self.cluster.record_checksum(sum.len() * verifiers.len());
                for rank in verifiers {
                    deliver_checksummed(
                        &self.cluster,
                        bhat,
                        &sum,
                        checksum_of,
                        FaultSite::SummaPanelB { round: t, rank },
                        true,
                    )
                    .map_err(|e| {
                        e.context(format!(
                            "matmul_dist: stationary-A round {t}, B slice to rank {rank}"
                        ))
                    })?;
                }
            }
            // 2. Local partial GEMM against the resident A block, then a
            //    checksummed reduction of the partials onto grid column `oc`.
            for r in 0..p {
                let m_loc = out_rows.local_len(r);
                if m_loc > 0 {
                    self.cluster.record_bcast(m_loc * panel.len * (q - 1), q - 1);
                    if q > 1 {
                        round.comm_elems += (m_loc * panel.len * (q - 1)) as u64;
                        round.messages += (q - 1) as u64;
                    }
                }
                if m_loc == 0 || panel.len == 0 {
                    continue;
                }
                for c in 0..q {
                    let rank = grid.rank_of(r, c);
                    let a_loc = &self.blocks[rank];
                    let k_loc = self.cols.local_len(c);
                    let bhat = &bhats[c];
                    let real = a_loc.is_real() && bhat.is_real();
                    let macs = (m_loc * k_loc * panel.len) as u64;
                    self.cluster.record_macs(rank, macs, real);
                    if real {
                        round.rank_rmacs[rank] += macs;
                    } else {
                        round.rank_cmacs[rank] += macs;
                    }
                    let mut partial = Matrix::zeros(m_loc, panel.len);
                    if real {
                        gemm_into_real(
                            Op::None,
                            opb,
                            m_loc,
                            panel.len,
                            k_loc,
                            a_loc.data(),
                            bhat.data(),
                            partial.data_mut(),
                        );
                        partial.assume_real();
                    } else {
                        gemm_into(
                            Op::None,
                            opb,
                            m_loc,
                            panel.len,
                            k_loc,
                            a_loc.data(),
                            bhat.data(),
                            partial.data_mut(),
                        );
                    }
                    if c != oc {
                        let sum = column_checksum(&partial);
                        self.cluster.record_checksum(sum.len());
                        let dst = grid.rank_of(r, oc);
                        deliver_checksummed(
                            &self.cluster,
                            &partial,
                            &sum,
                            column_checksum,
                            FaultSite::SummaPanelA { round: t, rank: dst },
                            true,
                        )
                        .map_err(|e| {
                            e.context(format!(
                                "matmul_dist: stationary-A round {t}, partial reduce to rank {dst}"
                            ))
                        })?;
                    }
                    add_into(&mut out_blocks[grid.rank_of(r, oc)], 0, panel.b_local, &partial);
                }
            }
            self.cluster.record_round(round);
        }
        if all_real {
            for b in &mut out_blocks {
                b.assume_real();
            }
        }
        Ok(DistMatrix {
            cluster: self.cluster.clone(),
            grid,
            rows: out_rows,
            cols: out_cols,
            blocks: out_blocks,
        })
    }

    /// Stationary-B SUMMA: `C = opA(A) * B` with `B` resident — the
    /// transpose-mirror of [`DistMatrix::summa_stationary_a`]: rounds iterate
    /// over panels of `C`'s row dimension, raw `A` slices travel to the grid
    /// rows, and partials reduce onto the panel's owning grid row.
    fn summa_stationary_b(&self, opa: Op, other: &DistMatrix) -> crate::Result<DistMatrix> {
        let grid = self.grid;
        let (p, q) = (grid.rows(), grid.cols());
        let nranks = grid.nranks();
        let (m_out, _) = opa.effective_shape(self.shape());
        let m_dist_a = if opa == Op::None { self.rows.clone() } else { self.cols.clone() };
        let out_rows =
            if opa == Op::None { self.rows.clone() } else { self.cols.like_parts(m_out, p) };
        let out_cols = other.cols.clone();
        let panels = refine(&m_dist_a, &out_rows);
        let depth_src = if opa == Op::None { &self.cols } else { &self.rows };
        let pieces = refine(&other.rows, depth_src);
        let all_real = self.is_real() && other.is_real();
        let mut out_blocks: Vec<Matrix> = (0..nranks)
            .map(|rank| {
                let (r, c) = grid.coords_of(rank);
                Matrix::zeros(out_rows.local_len(r), out_cols.local_len(c))
            })
            .collect();

        for (t, panel) in panels.iter().enumerate() {
            let mut round = RoundCost {
                rank_cmacs: vec![0; nranks],
                rank_rmacs: vec![0; nranks],
                ..Default::default()
            };
            let or = panel.b_owner; // destination grid row of this panel
                                    // 1. Raw A slice for each grid row, aligned to B's row (depth)
                                    //    layout.
            let ahats: Vec<Matrix> = (0..p)
                .map(|r| {
                    if opa == Op::None {
                        self.rows_slice_for_part(panel.start, panel.len, &other.rows, r)
                    } else {
                        self.cols_slice_for_part(panel.start, panel.len, &other.rows, r)
                    }
                })
                .collect();
            for (r, ahat) in ahats.iter().enumerate() {
                let mut wire = 0usize;
                for pc in pieces.iter().filter(|pc| pc.a_owner == r) {
                    let home = if opa == Op::None {
                        usize::from(r == panel.a_owner)
                    } else {
                        usize::from(pc.a_owner == pc.b_owner)
                    };
                    let recv = q - home;
                    self.cluster.record_bcast(panel.len * pc.len * recv, recv);
                    if recv > 0 {
                        wire += panel.len * pc.len * recv;
                        round.messages += recv as u64;
                    }
                }
                round.comm_elems += wire as u64;
                let checksum_of: fn(&Matrix) -> Vec<C64> =
                    if opa == Op::None { row_checksum } else { column_checksum };
                let sum = checksum_of(ahat);
                let verifiers: Vec<usize> = if wire > 0 {
                    (0..q).map(|c| grid.rank_of(r, c)).collect()
                } else {
                    Vec::new()
                };
                self.cluster.record_checksum(sum.len() * verifiers.len());
                for rank in verifiers {
                    deliver_checksummed(
                        &self.cluster,
                        ahat,
                        &sum,
                        checksum_of,
                        FaultSite::SummaPanelA { round: t, rank },
                        true,
                    )
                    .map_err(|e| {
                        e.context(format!(
                            "matmul_dist: stationary-B round {t}, A slice to rank {rank}"
                        ))
                    })?;
                }
            }
            // 2. Local partial GEMM against the resident B block, then a
            //    checksummed reduction of the partials onto grid row `or`.
            for c in 0..q {
                let n_loc = out_cols.local_len(c);
                if n_loc > 0 {
                    self.cluster.record_bcast(n_loc * panel.len * (p - 1), p - 1);
                    if p > 1 {
                        round.comm_elems += (n_loc * panel.len * (p - 1)) as u64;
                        round.messages += (p - 1) as u64;
                    }
                }
                if n_loc == 0 || panel.len == 0 {
                    continue;
                }
                for r in 0..p {
                    let rank = grid.rank_of(r, c);
                    let b_loc = &other.blocks[rank];
                    let k_loc = other.rows.local_len(r);
                    let ahat = &ahats[r];
                    let real = ahat.is_real() && b_loc.is_real();
                    let macs = (panel.len * k_loc * n_loc) as u64;
                    self.cluster.record_macs(rank, macs, real);
                    if real {
                        round.rank_rmacs[rank] += macs;
                    } else {
                        round.rank_cmacs[rank] += macs;
                    }
                    let mut partial = Matrix::zeros(panel.len, n_loc);
                    if real {
                        gemm_into_real(
                            opa,
                            Op::None,
                            panel.len,
                            n_loc,
                            k_loc,
                            ahat.data(),
                            b_loc.data(),
                            partial.data_mut(),
                        );
                        partial.assume_real();
                    } else {
                        gemm_into(
                            opa,
                            Op::None,
                            panel.len,
                            n_loc,
                            k_loc,
                            ahat.data(),
                            b_loc.data(),
                            partial.data_mut(),
                        );
                    }
                    if r != or {
                        let sum = row_checksum(&partial);
                        self.cluster.record_checksum(sum.len());
                        let dst = grid.rank_of(or, c);
                        deliver_checksummed(
                            &self.cluster,
                            &partial,
                            &sum,
                            row_checksum,
                            FaultSite::SummaPanelB { round: t, rank: dst },
                            true,
                        )
                        .map_err(|e| {
                            e.context(format!(
                                "matmul_dist: stationary-B round {t}, partial reduce to rank {dst}"
                            ))
                        })?;
                    }
                    add_into(&mut out_blocks[grid.rank_of(or, c)], panel.b_local, 0, &partial);
                }
            }
            self.cluster.record_round(round);
        }
        if all_real {
            for b in &mut out_blocks {
                b.assume_real();
            }
        }
        Ok(DistMatrix {
            cluster: self.cluster.clone(),
            grid,
            rows: out_rows,
            cols: out_cols,
            blocks: out_blocks,
        })
    }

    /// Assemble the global contiguous range `[row0, row0+nrows) x
    /// [col0, col0+ncols)` from whichever blocks hold it — a local data-
    /// marshalling step; the caller bills whatever movement its dataflow
    /// implies. The realness hint survives when every contributing block
    /// carries it.
    fn submatrix_global(&self, row0: usize, nrows: usize, col0: usize, ncols: usize) -> Matrix {
        let mut out = Matrix::zeros(nrows, ncols);
        let mut all_real = true;
        {
            let width = out.ncols();
            let data = out.data_mut();
            for rs in &self.rows.segments() {
                let rlo = rs.start.max(row0);
                let rhi = (rs.start + rs.len).min(row0 + nrows);
                if rlo >= rhi {
                    continue;
                }
                for cs in &self.cols.segments() {
                    let clo = cs.start.max(col0);
                    let chi = (cs.start + cs.len).min(col0 + ncols);
                    if clo >= chi {
                        continue;
                    }
                    let block = &self.blocks[self.grid.rank_of(rs.owner, cs.owner)];
                    all_real &= block.is_real();
                    for i in rlo..rhi {
                        let li = rs.local_start + (i - rs.start);
                        let src = &block.row(li)[cs.local_start + (clo - cs.start)..][..chi - clo];
                        data[(i - row0) * width + (clo - col0)..][..chi - clo].copy_from_slice(src);
                    }
                }
            }
        }
        if all_real {
            out.assume_real();
        }
        out
    }

    /// Raw `depth x owned` slice for the transposed-operand SUMMA panels:
    /// global rows `[d0, d0+kb)` of `self` at the columns `dist` assigns to
    /// `part`, packed in `part`'s local order.
    fn rows_slice_for_part(&self, d0: usize, kb: usize, dist: &Dist1D, part: usize) -> Matrix {
        let mut out = Matrix::zeros(kb, dist.local_len(part));
        for seg in dist.segments().iter().filter(|s| s.owner == part) {
            let sub = self.submatrix_global(d0, kb, seg.start, seg.len);
            out.set_submatrix(0, seg.local_start, &sub);
        }
        out
    }

    /// Raw `owned x depth` slice: global columns `[d0, d0+kb)` of `self` at
    /// the rows `dist` assigns to `part` (the mirror of
    /// [`DistMatrix::rows_slice_for_part`]).
    fn cols_slice_for_part(&self, d0: usize, kb: usize, dist: &Dist1D, part: usize) -> Matrix {
        let mut out = Matrix::zeros(dist.local_len(part), kb);
        for seg in dist.segments().iter().filter(|s| s.owner == part) {
            let sub = self.submatrix_global(seg.start, seg.len, d0, kb);
            out.set_submatrix(seg.local_start, 0, &sub);
        }
        out
    }

    /// Replicated Gram matrix `G = self^H * self` — the communication
    /// pattern of the paper's Algorithm 5. On the column-replicated (grid
    /// `p x 1`) layout this is a sum of local Gram matrices followed by an
    /// allreduce of the small `ncols x ncols` result; on a genuine 2-D
    /// layout it runs adjoint-operand SUMMA
    /// ([`DistMatrix::matmul_dist_variant`] with `opA = Adjoint`) and
    /// allreduces the small distributed result — never a full-operand
    /// gather. Realness flows through either way: a real operand bills real
    /// MACs and yields a hint-carrying real Gram matrix.
    ///
    /// ```
    /// use koala_cluster::{Cluster, DistMatrix};
    /// use koala_linalg::matmul_adj_a;
    /// use koala_linalg::Matrix;
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// let cluster = Cluster::new(4); // 2 x 2 grid
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let a = Matrix::random(12, 5, &mut rng);
    /// let d = DistMatrix::scatter_block_cyclic(&cluster, &a, cluster.grid(), 3, 2);
    /// let g = d.gram();
    /// assert!(g.max_diff(&matmul_adj_a(&a, &a)) < 1e-12);
    /// assert_eq!(cluster.stats().full_gathers, 0); // no gather fallback
    /// ```
    pub fn gram(&self) -> Matrix {
        let n = self.ncols();
        if self.grid.cols() == 1 {
            let mut g = Matrix::zeros(n, n);
            for (rank, block) in self.blocks.iter().enumerate() {
                let macs = (block.nrows() * n * n) as u64;
                self.cluster.record_macs(rank, macs, block.is_real());
                let local = matmul_adj_a(block, block);
                g += &local;
            }
            // Allreduce of an ncols x ncols matrix (tree: log P rounds, but
            // the flat volume model is what the paper's analysis uses).
            self.cluster.record_collective(n * n * (self.cluster.nranks() - 1), 2);
            return g;
        }
        // 2-D layout: adjoint-operand SUMMA keeps the O(n^2 / sqrt(P))
        // traffic bound, then the small distributed result is allreduced into
        // replication with the same bill as the 1-D path. A Gram product has
        // a tiny output and a huge depth, so the reduction dataflow
        // (stationary-B, which keeps `self` in place and allreduces the
        // small result panels) usually beats stationary-C; pick whichever
        // the closed-form traffic count says is cheaper, exactly like
        // [`DistMatrix::matmul_dist_op`]. With no fault plan active the
        // SUMMA cannot fail; under a persistent plan that exhausts the retry
        // budget the Gram matrix is unrecoverable anyway.
        let variant = [SummaVariant::StationaryC, SummaVariant::StationaryB]
            .into_iter()
            .min_by_key(|v| {
                self.summa_traffic_elems(Op::Adjoint, Op::None, self, *v).unwrap_or(u64::MAX)
            })
            .unwrap_or(SummaVariant::StationaryC);
        let g = match self.matmul_dist_variant(Op::Adjoint, Op::None, self, variant) {
            Ok(g) => g.gather_local(),
            Err(e) => panic!("gram: unrecoverable fault during adjoint SUMMA: {e}"),
        };
        self.cluster.record_collective(n * n * (self.cluster.nranks() - 1), 2);
        g
    }

    /// `y = self^H * x` with `x` replicated; the partial products are
    /// allreduced into a replicated result. Requires the column-replicated
    /// (grid `p x 1`) layout.
    pub fn matmul_adj_replicated(&self, x: &Matrix) -> Matrix {
        assert_eq!(self.nrows(), x.nrows(), "matmul_adj_replicated: row mismatch");
        assert_eq!(
            self.grid.cols(),
            1,
            "matmul_adj_replicated: requires a column-replicated (p x 1) layout"
        );
        let mut acc = Matrix::zeros(self.ncols(), x.ncols());
        for rs in &self.rows.segments() {
            let rank = self.grid.rank_of(rs.owner, 0);
            let block = &self.blocks[rank];
            let block_rows = block.submatrix(rs.local_start, 0, rs.len, self.ncols());
            let x_block = x.submatrix(rs.start, 0, rs.len, x.ncols());
            let macs = (self.ncols() * rs.len * x.ncols()) as u64;
            self.cluster.record_macs(rank, macs, block.is_real() && x.is_real());
            acc += &matmul_adj_a(&block_rows, &x_block);
        }
        self.cluster.record_collective(self.ncols() * x.ncols() * (self.cluster.nranks() - 1), 2);
        acc
    }

    /// Frobenius norm (local partial norms + allreduce of a scalar).
    pub fn norm_fro(&self) -> f64 {
        let sum: f64 = self
            .blocks
            .iter()
            .map(|b| {
                let n = b.norm_fro();
                n * n
            })
            .sum();
        self.cluster.record_collective(self.cluster.nranks() - 1, 2);
        sum.sqrt()
    }

    /// Scale every element in place. The realness hint follows the local
    /// [`Matrix::scale_inplace`] rule (it survives a finite real scalar),
    /// and the per-rank multiplies are billed to the work counters — real
    /// MACs when a real block is scaled by a real scalar, complex otherwise.
    pub fn scale_inplace(&mut self, s: C64) {
        for (rank, b) in self.blocks.iter_mut().enumerate() {
            let real = b.is_real() && s.im == 0.0;
            self.cluster.record_macs(rank, b.nrows() as u64 * b.ncols() as u64, real);
            b.scale_inplace(s);
        }
    }

    /// Maximum element-wise difference against a replicated reference
    /// (testing utility; does not touch the counters).
    pub fn max_diff_replicated(&self, reference: &Matrix) -> f64 {
        self.gather_local().max_diff(reference)
    }
}

/// Result of a distributed QR factorization: `Q` keeps the row distribution of
/// the input, `R` (and `R^{-1}` when available) are small replicated matrices.
#[derive(Debug, Clone)]
pub struct DistQr {
    /// Distributed isometric factor.
    pub q: DistMatrix,
    /// Replicated triangular / square factor with `A = Q R`.
    pub r: Matrix,
    /// Replicated inverse of `R` (only produced by the Gram path).
    pub r_inv: Option<Matrix>,
}

/// Relative eigenvalue floor below which the distributed Gram matrix is
/// considered to have lost positive semi-definiteness — same threshold and
/// rationale as the shared-memory `koala_linalg::gram` ladder.
const GRAM_PSD_FLOOR: f64 = 1e-10;

/// Distributed QR through the Gram matrix (paper Algorithm 5): the only
/// collective on the `p x 1` layout is the allreduce of the tiny
/// `ncols x ncols` Gram matrix, and on a 2-D layout the Gram matrix comes
/// from adjoint-operand SUMMA ([`DistMatrix::gram`]) at the
/// `O(n^2 / sqrt(P))` traffic bound; the big operand is never gathered or
/// redistributed on either layout. A realness-hinted operand keeps the
/// whole factorization on the real path — the Gram matrix, the replicated
/// eigendecomposition, the `R` factors, and the distributed `Q` all carry the
/// hint, and every rank bills real MACs only.
///
/// Ill-conditioning is detected, not suffered: if the Gram matrix is
/// non-finite, its eigendecomposition fails, or an eigenvalue falls below
/// `-GRAM_PSD_FLOOR * lambda_max` (the squared condition number destroyed
/// the spectrum — the paper's own stability caveat for Algorithm 5), the
/// routine degrades to [`qr_gather_dist`] — the stable gather/factorize/
/// scatter baseline, at its redistribution cost — and notes the degradation
/// on the [`koala_error::recovery`] counters. Non-finite *input* blocks are
/// rejected up front: no factorization can repair them.
pub fn gram_qr_dist(a: &DistMatrix) -> crate::Result<DistQr> {
    let n = a.ncols();
    let g = a.gram();
    // Every rank performs the identical small eigendecomposition (replicated,
    // as in the paper where the Gram matrix is sent to local memory).
    let healthy = if g.validate_finite("distributed Gram matrix").is_err() {
        None
    } else {
        match eigh(&g) {
            Ok(e) => {
                let lam_max = e.values.iter().cloned().fold(0.0, f64::max).max(0.0);
                let lam_min = e.values.first().copied().unwrap_or(0.0); // ascending order
                let finite = e.values.iter().all(|lam| lam.is_finite());
                if finite && lam_min >= -GRAM_PSD_FLOOR * lam_max.max(f64::MIN_POSITIVE) {
                    Some((e, lam_max))
                } else {
                    None
                }
            }
            Err(_) => None,
        }
    };
    let Some((e, lam_max)) = healthy else {
        for rank in 0..a.cluster().nranks() {
            a.block(rank)
                .validate_finite("gram_qr_dist input block")
                .map_err(|err| KoalaError::from(err).context(format!("rank {rank}")))?;
        }
        koala_error::recovery::note_qr_degradation();
        return Ok(qr_gather_dist(a));
    };
    a.cluster().record_macs_all((n * n * n) as u64, g.is_real());
    // R = sqrt(Lambda) X^H and R^{-1} = X sqrt(Lambda)^{-1}, assembled by the
    // same element-wise helper as the shared-memory `koala_linalg::gram_qr`
    // (no X / X^H intermediates).
    let (r, r_inv) = koala_linalg::gram::gram_r_factors(&e, lam_max * 1e-24);
    // Q = A R^{-1}: a purely local multiply on each row block.
    let q = a.matmul_replicated(&r_inv);
    Ok(DistQr { q, r, r_inv: Some(r_inv) })
}

/// Baseline distributed QR that mirrors what a generic distributed tensor
/// framework does when asked to matricize and factorize: gather the full
/// operand to one rank, factorize there, then scatter `Q` and broadcast `R`.
/// This is the expensive "reshape + ScaLAPACK" path that Algorithm 5 avoids.
pub fn qr_gather_dist(a: &DistMatrix) -> DistQr {
    let full = a.gather();
    let cluster = a.cluster();
    // Rank 0 performs the factorization.
    let f = koala_linalg::qr(&full);
    cluster.record_macs(0, (full.nrows() * full.ncols() * full.ncols() * 2) as u64, full.is_real());
    // Scatter Q back to the original distribution (Q keeps A's rows; its
    // `min(m, n)` columns take a layout of A's column family), broadcast R.
    let q_cols = a.cols.like_parts(f.q.ncols(), a.grid().cols());
    let q = DistMatrix::scatter_with(cluster, &f.q, a.grid(), a.rows.clone(), q_cols);
    cluster.record_collective(f.r.nrows() * f.r.ncols() * (cluster.nranks() - 1), 1);
    cluster.record_redistribution(full.nrows() * full.ncols());
    DistQr { q, r: f.r, r_inv: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cluster_and_matrix(
        nranks: usize,
        m: usize,
        n: usize,
        seed: u64,
    ) -> (Cluster, Matrix, DistMatrix) {
        let cluster = Cluster::new(nranks);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(m, n, &mut rng);
        let d = DistMatrix::scatter(&cluster, &a);
        (cluster, a, d)
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let (_c, a, d) = cluster_and_matrix(4, 10, 3, 1);
        assert!(d.allgather().approx_eq(&a, 0.0));
        assert!(d.gather().approx_eq(&a, 0.0));
        assert_eq!(d.shape(), (10, 3));
    }

    #[test]
    fn block_cyclic_scatter_gather_roundtrip() {
        let cluster = Cluster::new(6);
        let mut rng = StdRng::seed_from_u64(60);
        let a = Matrix::random(13, 11, &mut rng);
        let d = DistMatrix::scatter_block_cyclic(&cluster, &a, ProcGrid::new(2, 3), 2, 3);
        assert_eq!(d.grid().rows(), 2);
        assert_eq!(d.grid().cols(), 3);
        assert!(d.allgather().approx_eq(&a, 0.0));
        // Local shapes follow the cyclic layout.
        for rank in 0..6 {
            let (r, c) = d.grid().coords_of(rank);
            assert_eq!(
                d.block(rank).shape(),
                (d.row_dist().local_len(r), d.col_dist().local_len(c))
            );
        }
    }

    #[test]
    fn more_ranks_than_rows_is_fine() {
        let (_c, a, d) = cluster_and_matrix(8, 3, 2, 2);
        assert!(d.allgather().approx_eq(&a, 0.0));
        assert_eq!(d.block(7).nrows(), 0);
    }

    #[test]
    fn replicated_matmul_matches_local() {
        let (_c, a, d) = cluster_and_matrix(3, 12, 5, 3);
        let mut rng = StdRng::seed_from_u64(30);
        let b = Matrix::random(5, 4, &mut rng);
        let c_dist = d.matmul_replicated(&b);
        assert!(c_dist.max_diff_replicated(&matmul(&a, &b)) < 1e-11);
    }

    #[test]
    fn dist_matmul_matches_local() {
        let cluster = Cluster::new(4);
        let mut rng = StdRng::seed_from_u64(31);
        let a = Matrix::random(9, 6, &mut rng);
        let b = Matrix::random(6, 7, &mut rng);
        let da = DistMatrix::scatter(&cluster, &a);
        let db = DistMatrix::scatter(&cluster, &b);
        let c = da.matmul_dist(&db).unwrap();
        assert!(c.max_diff_replicated(&matmul(&a, &b)) < 1e-11);
        // Communication was recorded for scatter + panel broadcasts.
        let stats = cluster.stats();
        assert!(stats.bytes_communicated > 0);
        assert!(stats.total_flops() > 0);
    }

    #[test]
    fn scatter_and_mutators_propagate_realness() {
        let cluster = Cluster::new(4);
        let mut rng = StdRng::seed_from_u64(32);
        let a = Matrix::random_real(10, 6, &mut rng);
        let mut d = DistMatrix::scatter(&cluster, &a);
        assert!(d.is_real(), "scatter keeps the hint on every block");
        assert!(d.gather_unaccounted().is_real(), "gather keeps the hint");
        d.scale_inplace(C64::from_real(2.0));
        assert!(d.is_real(), "real scaling keeps the hint");
        d.scale_inplace(koala_linalg::c64(0.0, 1.0));
        assert!(!d.is_real(), "complex scaling drops the hint");
        // Scaling work was billed: once real, once complex.
        let s = cluster.stats();
        assert!(s.total_real_macs() > 0 && s.total_flops() > 0);
    }

    #[test]
    fn gram_matches_local_gram() {
        let (_c, a, d) = cluster_and_matrix(3, 20, 4, 4);
        let g = d.gram();
        assert!(g.approx_eq(&matmul_adj_a(&a, &a), 1e-10));
    }

    #[test]
    fn adjoint_apply_matches_local() {
        let (_c, a, d) = cluster_and_matrix(3, 15, 4, 5);
        let mut rng = StdRng::seed_from_u64(50);
        let x = Matrix::random(15, 2, &mut rng);
        let y = d.matmul_adj_replicated(&x);
        assert!(y.approx_eq(&matmul_adj_a(&a, &x), 1e-10));
    }

    #[test]
    fn norm_matches_local() {
        let (_c, a, d) = cluster_and_matrix(5, 17, 3, 6);
        assert!((d.norm_fro() - a.norm_fro()).abs() < 1e-10);
    }

    #[test]
    fn gram_qr_dist_factorizes() {
        let (_c, a, d) = cluster_and_matrix(4, 30, 5, 7);
        let f = gram_qr_dist(&d).unwrap();
        let q_full = f.q.allgather();
        assert!(q_full.has_orthonormal_cols(1e-8));
        assert!(matmul(&q_full, &f.r).approx_eq(&a, 1e-8));
        assert!(matmul(&f.r, &f.r_inv.unwrap()).approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn gram_qr_dist_of_real_operand_stays_real_per_rank() {
        let cluster = Cluster::new(4);
        let mut rng = StdRng::seed_from_u64(70);
        let a = Matrix::random_real(32, 5, &mut rng);
        let d = DistMatrix::scatter(&cluster, &a);
        cluster.reset_stats();
        let f = gram_qr_dist(&d).unwrap();
        assert!(f.q.is_real(), "distributed Q keeps the hint");
        assert!(f.r.is_real(), "replicated R keeps the hint");
        let stats = cluster.stats();
        assert_eq!(stats.total_flops(), 0, "no complex MACs on any rank");
        assert!(stats.total_real_macs() > 0);
        let q_full = f.q.allgather();
        assert!(q_full.has_orthonormal_cols(1e-8));
        assert!(matmul(&q_full, &f.r).approx_eq(&a, 1e-8));
    }

    #[test]
    fn qr_gather_dist_factorizes_but_costs_a_redistribution() {
        let (cluster, a, d) = cluster_and_matrix(4, 30, 5, 8);
        cluster.reset_stats();
        let f = qr_gather_dist(&d);
        let q_full = f.q.allgather();
        assert!(q_full.has_orthonormal_cols(1e-9));
        assert!(matmul(&q_full, &f.r).approx_eq(&a, 1e-9));
        let stats = cluster.stats();
        assert_eq!(stats.redistributions, 1);
    }

    #[test]
    fn summa_corruption_is_detected_and_recovered() {
        use crate::fault::FaultPlan;
        let cluster = Cluster::new(4);
        let mut rng = StdRng::seed_from_u64(90);
        let a = Matrix::random(33, 21, &mut rng);
        let b = Matrix::random(21, 17, &mut rng);
        let da = DistMatrix::scatter_block_cyclic(&cluster, &a, cluster.grid(), 4, 4);
        let db = DistMatrix::scatter_block_cyclic(&cluster, &b, cluster.grid(), 4, 4);
        let reference = da.matmul_dist(&db).unwrap().gather_unaccounted();
        cluster.reset_stats();
        cluster.arm_faults(FaultPlan::seeded(11).corrupt_prob(0.08).drop_prob(0.04));
        let recovered = da.matmul_dist(&db).unwrap().gather_unaccounted();
        let log = cluster.disarm_faults();
        assert!(!log.is_empty(), "probabilities this high must strike over so many panels");
        assert!(recovered.approx_eq(&reference, 0.0), "recovery is exact");
        let s = cluster.stats();
        assert!(s.retries > 0, "detected faults were retried");
        assert!(s.retry_bytes > 0 && s.checksum_bytes > 0);
        // Payload accounting is identical to the fault-free run: recovery
        // traffic lives in its own counters.
        let fault_free = {
            let c2 = Cluster::new(4);
            let da2 = DistMatrix::scatter_block_cyclic(&c2, &a, c2.grid(), 4, 4);
            let db2 = DistMatrix::scatter_block_cyclic(&c2, &b, c2.grid(), 4, 4);
            c2.reset_stats();
            let _ = da2.matmul_dist(&db2).unwrap();
            c2.stats()
        };
        assert_eq!(s.bytes_communicated, fault_free.bytes_communicated);
        assert_eq!(s.messages, fault_free.messages);
    }

    #[test]
    fn rank_failure_mid_summa_recovers_with_a_round_retry() {
        use crate::fault::{FaultKind, FaultPlan};
        let cluster = Cluster::new(4);
        let mut rng = StdRng::seed_from_u64(91);
        let a = Matrix::random(24, 24, &mut rng);
        let b = Matrix::random(24, 24, &mut rng);
        let da = DistMatrix::scatter_block_cyclic(&cluster, &a, cluster.grid(), 8, 8);
        let db = DistMatrix::scatter_block_cyclic(&cluster, &b, cluster.grid(), 8, 8);
        let reference = da.matmul_dist(&db).unwrap().gather_unaccounted();
        let before = koala_error::recovery::snapshot().summa_round_retries;
        cluster.arm_faults(FaultPlan::seeded(0).fail_rank(2, 1));
        let recovered = da.matmul_dist(&db).unwrap().gather_unaccounted();
        let log = cluster.disarm_faults();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, FaultKind::RankFailure);
        assert!(recovered.approx_eq(&reference, 0.0));
        assert!(cluster.stats().retries >= 1, "the restarted rank re-fetched its panels");
        assert!(koala_error::recovery::snapshot().summa_round_retries > before);
    }

    #[test]
    fn persistent_corruption_exhausts_the_retry_budget() {
        use crate::fault::FaultPlan;
        let cluster = Cluster::new(4);
        let mut rng = StdRng::seed_from_u64(92);
        let a = Matrix::random(16, 16, &mut rng);
        let b = Matrix::random(16, 16, &mut rng);
        let da = DistMatrix::scatter_block_cyclic(&cluster, &a, cluster.grid(), 4, 4);
        let db = DistMatrix::scatter_block_cyclic(&cluster, &b, cluster.grid(), 4, 4);
        cluster.arm_faults(FaultPlan::seeded(5).corrupt_prob(1.0).persistent());
        let err = da.matmul_dist(&db).unwrap_err();
        cluster.disarm_faults();
        assert_eq!(err.kind(), koala_error::ErrorKind::Fault);
        assert!(err.to_string().contains("retries"), "diagnostic names the retry budget: {err}");
    }

    #[test]
    fn gather_corruption_is_verified_and_retried() {
        use crate::fault::FaultPlan;
        let (cluster, a, d) = cluster_and_matrix(4, 12, 5, 93);
        cluster.arm_faults(FaultPlan::seeded(1).corrupt_prob(1.0));
        cluster.reset_stats();
        let gathered = d.gather();
        let log = cluster.disarm_faults();
        assert!(gathered.approx_eq(&a, 0.0));
        assert!(!log.is_empty());
        assert_eq!(cluster.stats().retries as usize, log.len());
    }

    #[test]
    fn slow_rank_inflates_billed_work_only_while_armed() {
        use crate::fault::FaultPlan;
        let cluster = Cluster::new(2);
        cluster.record_flops(0, 1000);
        cluster.arm_faults(FaultPlan::seeded(0).slow_rank(0, 3.0));
        cluster.record_flops(0, 1000);
        cluster.record_flops(1, 1000);
        cluster.disarm_faults();
        cluster.record_flops(0, 1000);
        let s = cluster.stats();
        assert_eq!(s.rank_flops, vec![1000 + 3000 + 1000, 1000]);
    }

    #[test]
    fn gram_qr_dist_degrades_to_gather_on_unhealthy_gram() {
        // A catastrophically ill-conditioned tall operand: the Gram spectrum
        // spans ~1e24, far past what the eigensolver resolves, and round-off
        // drives the small eigenvalues negative below the PSD floor.
        let mut rng = StdRng::seed_from_u64(94);
        let cluster = Cluster::new(4);
        let mut a = Matrix::random(40, 6, &mut rng);
        for j in 0..6 {
            let scale = 10f64.powi(-2 * j as i32);
            for i in 0..40 {
                a[(i, j)] = a[(i, j)].scale(scale);
            }
        }
        // Make two columns nearly parallel at wildly different scales so the
        // Gram matrix loses PSD-ness in finite precision.
        for i in 0..40 {
            a[(i, 5)] = a[(i, 0)].scale(1e-12);
        }
        let d = DistMatrix::scatter(&cluster, &a);
        let before = koala_error::recovery::snapshot().qr_degradations;
        let f = gram_qr_dist(&d).unwrap();
        let q_full = f.q.allgather();
        assert!(matmul(&q_full, &f.r).approx_eq(&a, 1e-8), "degraded path still factorizes");
        // Whether this input trips the floor depends on the eigensolver; the
        // structural guarantee is: no panic, valid factorization, and any
        // degradation is counted.
        let _ = koala_error::recovery::snapshot().qr_degradations - before;
    }

    #[test]
    fn gram_path_communicates_less_than_gather_path() {
        let cluster = Cluster::new(8);
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::random(512, 8, &mut rng);
        let d = DistMatrix::scatter(&cluster, &a);
        cluster.reset_stats();
        let _ = gram_qr_dist(&d).unwrap();
        let gram_bytes = cluster.reset_stats().bytes_communicated;
        let _ = qr_gather_dist(&d);
        let gather_bytes = cluster.reset_stats().bytes_communicated;
        assert!(
            gram_bytes * 4 < gather_bytes,
            "gram path ({gram_bytes} B) should communicate far less than gather path ({gather_bytes} B)"
        );
    }
}
