//! Block-row distributed matrices.
//!
//! A [`DistMatrix`] splits its rows into contiguous blocks, one per virtual
//! rank, mirroring the distribution Cyclops uses for the slowest-varying
//! index of a tensor. All dense work happens on the per-rank blocks; anything
//! that crosses rank boundaries is routed through the [`Cluster`] so that its
//! communication counters reflect what a real distributed run would move.

use crate::cluster::Cluster;
use koala_linalg::{eigh, matmul, matmul_adj_a, Matrix, C64};

/// A matrix distributed over the ranks of a [`Cluster`] by contiguous row
/// blocks.
#[derive(Debug, Clone)]
pub struct DistMatrix {
    cluster: Cluster,
    nrows: usize,
    ncols: usize,
    /// One row block per rank (possibly empty for small matrices).
    blocks: Vec<Matrix>,
}

impl DistMatrix {
    /// Distribute a replicated matrix across the cluster (an MPI `scatter`
    /// from rank 0: every block except rank 0's own travels over the wire).
    pub fn scatter(cluster: &Cluster, matrix: &Matrix) -> Self {
        let (nrows, ncols) = matrix.shape();
        let ranges = cluster.block_ranges(nrows);
        let mut blocks = Vec::with_capacity(cluster.nranks());
        for (rank, &(start, len)) in ranges.iter().enumerate() {
            let block = matrix.submatrix(start, 0, len, ncols);
            if rank != 0 {
                cluster.record_p2p(len * ncols);
            }
            blocks.push(block);
        }
        DistMatrix { cluster: cluster.clone(), nrows, ncols, blocks }
    }

    /// Create a distributed zero matrix.
    pub fn zeros(cluster: &Cluster, nrows: usize, ncols: usize) -> Self {
        let ranges = cluster.block_ranges(nrows);
        let blocks = ranges.iter().map(|&(_, len)| Matrix::zeros(len, ncols)).collect();
        DistMatrix { cluster: cluster.clone(), nrows, ncols, blocks }
    }

    /// Build a distributed matrix directly from per-rank row blocks without
    /// any communication (the blocks are taken to already live on their
    /// ranks). Row counts may follow any contiguous partition of `nrows`.
    pub fn from_blocks(cluster: &Cluster, nrows: usize, ncols: usize, blocks: Vec<Matrix>) -> Self {
        assert_eq!(blocks.len(), cluster.nranks(), "from_blocks: one block per rank required");
        let total: usize = blocks.iter().map(|b| b.nrows()).sum();
        assert_eq!(total, nrows, "from_blocks: block rows do not sum to nrows");
        for b in &blocks {
            assert_eq!(b.ncols(), ncols, "from_blocks: block column count mismatch");
        }
        DistMatrix { cluster: cluster.clone(), nrows, ncols, blocks }
    }

    /// Starting global row of each rank's block.
    fn row_starts(&self) -> Vec<usize> {
        let mut starts = Vec::with_capacity(self.blocks.len());
        let mut pos = 0;
        for b in &self.blocks {
            starts.push(pos);
            pos += b.nrows();
        }
        starts
    }

    /// Assemble the full matrix on every rank (an MPI `allgather`).
    pub fn allgather(&self) -> Matrix {
        // Every rank receives all other blocks.
        let foreign: usize = self.blocks.iter().map(|b| b.nrows() * b.ncols()).sum::<usize>();
        self.cluster.record_collective(foreign * (self.cluster.nranks() - 1), 1);
        self.gather_local()
    }

    /// Assemble the full matrix on rank 0 only (an MPI `gather`).
    pub fn gather(&self) -> Matrix {
        let foreign: usize = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(rank, _)| *rank != 0)
            .map(|(_, b)| b.nrows() * b.ncols())
            .sum();
        self.cluster.record_collective(foreign, 1);
        self.gather_local()
    }

    /// Concatenate the blocks without touching the communication counters.
    ///
    /// This is a driver/testing utility: in a real distributed run the result
    /// would stay distributed, so callers that only need the data back on the
    /// host (e.g. to hand a kernel's output to the next, still-local, stage of
    /// a benchmark) use this to avoid charging communication that the modelled
    /// execution would not perform.
    pub fn gather_unaccounted(&self) -> Matrix {
        self.gather_local()
    }

    /// Concatenate the blocks without touching the communication counters
    /// (used internally after the communication has already been charged).
    fn gather_local(&self) -> Matrix {
        let mut out = Matrix::zeros(self.nrows, self.ncols);
        for (block, start) in self.blocks.iter().zip(self.row_starts()) {
            out.set_submatrix(start, 0, block);
        }
        out
    }

    /// Shape of the full matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The cluster this matrix lives on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Immutable access to one rank's row block.
    pub fn block(&self, rank: usize) -> &Matrix {
        &self.blocks[rank]
    }

    /// `C = self * B` where `B` is replicated on every rank. The result keeps
    /// the row distribution of `self` and no communication is required.
    pub fn matmul_replicated(&self, b: &Matrix) -> DistMatrix {
        assert_eq!(self.ncols, b.nrows(), "matmul_replicated: inner dimension mismatch");
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (rank, block) in self.blocks.iter().enumerate() {
            let flops = (block.nrows() * block.ncols() * b.ncols()) as u64;
            self.cluster.record_flops(rank, flops);
            blocks.push(matmul(block, b));
        }
        DistMatrix { cluster: self.cluster.clone(), nrows: self.nrows, ncols: b.ncols(), blocks }
    }

    /// `C = self * other` where both operands are row-distributed. `other` is
    /// allgathered first (1D SUMMA), then each rank multiplies its local block.
    pub fn matmul_dist(&self, other: &DistMatrix) -> DistMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul_dist: inner dimension mismatch");
        let b_full = other.allgather();
        self.matmul_replicated(&b_full)
    }

    /// Replicated Gram matrix `G = self^H * self`, computed as a sum of local
    /// Gram matrices followed by an allreduce of the small `ncols x ncols`
    /// result — the communication pattern of the paper's Algorithm 5.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.ncols, self.ncols);
        for (rank, block) in self.blocks.iter().enumerate() {
            let flops = (block.nrows() * self.ncols * self.ncols) as u64;
            self.cluster.record_flops(rank, flops);
            let local = matmul_adj_a(block, block);
            g += &local;
        }
        // Allreduce of an ncols x ncols matrix (tree: log P rounds, but the
        // flat volume model is what the paper's analysis uses).
        self.cluster.record_collective(self.ncols * self.ncols * (self.cluster.nranks() - 1), 2);
        g
    }

    /// `y = self^H * x` with `x` replicated; the partial products are
    /// allreduced into a replicated result.
    pub fn matmul_adj_replicated(&self, x: &Matrix) -> Matrix {
        assert_eq!(self.nrows, x.nrows(), "matmul_adj_replicated: row mismatch");
        let starts = self.row_starts();
        let mut acc = Matrix::zeros(self.ncols, x.ncols());
        for (rank, (block, &start)) in self.blocks.iter().zip(starts.iter()).enumerate() {
            let len = block.nrows();
            let x_block = x.submatrix(start, 0, len, x.ncols());
            let flops = (block.ncols() * len * x.ncols()) as u64;
            self.cluster.record_flops(rank, flops);
            acc += &matmul_adj_a(block, &x_block);
        }
        self.cluster.record_collective(self.ncols * x.ncols() * (self.cluster.nranks() - 1), 2);
        acc
    }

    /// Frobenius norm (local partial norms + allreduce of a scalar).
    pub fn norm_fro(&self) -> f64 {
        let sum: f64 = self
            .blocks
            .iter()
            .map(|b| {
                let n = b.norm_fro();
                n * n
            })
            .sum();
        self.cluster.record_collective(self.cluster.nranks() - 1, 2);
        sum.sqrt()
    }

    /// Scale every element in place.
    pub fn scale_inplace(&mut self, s: C64) {
        for b in &mut self.blocks {
            b.scale_inplace(s);
        }
    }

    /// Maximum element-wise difference against a replicated reference
    /// (testing utility; does not touch the counters).
    pub fn max_diff_replicated(&self, reference: &Matrix) -> f64 {
        self.gather_local().max_diff(reference)
    }
}

/// Result of a distributed QR factorization: `Q` keeps the row distribution of
/// the input, `R` (and `R^{-1}` when available) are small replicated matrices.
#[derive(Debug, Clone)]
pub struct DistQr {
    /// Distributed isometric factor.
    pub q: DistMatrix,
    /// Replicated triangular / square factor with `A = Q R`.
    pub r: Matrix,
    /// Replicated inverse of `R` (only produced by the Gram path).
    pub r_inv: Option<Matrix>,
}

/// Distributed QR through the Gram matrix (paper Algorithm 5): the only
/// communication is the allreduce of the tiny `ncols x ncols` Gram matrix; the
/// big operand is never redistributed.
pub fn gram_qr_dist(a: &DistMatrix) -> DistQr {
    let n = a.ncols();
    let g = a.gram();
    // Every rank performs the identical small eigendecomposition (replicated,
    // as in the paper where the Gram matrix is sent to local memory).
    let e = eigh(&g).expect("gram_qr_dist: Gram matrix must be Hermitian PSD");
    a.cluster().record_flops_all((n * n * n) as u64);
    let lam_max = e.values.iter().cloned().fold(0.0, f64::max).max(0.0);
    // R = sqrt(Lambda) X^H and R^{-1} = X sqrt(Lambda)^{-1}, assembled by the
    // same element-wise helper as the shared-memory `koala_linalg::gram_qr`
    // (no X / X^H intermediates).
    let (r, r_inv) = koala_linalg::gram::gram_r_factors(&e, lam_max * 1e-24);
    // Q = A R^{-1}: a purely local multiply on each row block.
    let q = a.matmul_replicated(&r_inv);
    DistQr { q, r, r_inv: Some(r_inv) }
}

/// Baseline distributed QR that mirrors what a generic distributed tensor
/// framework does when asked to matricize and factorize: gather the full
/// operand to one rank, factorize there, then scatter `Q` and broadcast `R`.
/// This is the expensive "reshape + ScaLAPACK" path that Algorithm 5 avoids.
pub fn qr_gather_dist(a: &DistMatrix) -> DistQr {
    let full = a.gather();
    let cluster = a.cluster();
    // Rank 0 performs the factorization.
    let f = koala_linalg::qr(&full);
    cluster.record_flops(0, (full.nrows() * full.ncols() * full.ncols() * 2) as u64);
    // Scatter Q back to the original distribution, broadcast R.
    let q = DistMatrix::scatter(cluster, &f.q);
    cluster.record_collective(f.r.nrows() * f.r.ncols() * (cluster.nranks() - 1), 1);
    cluster.record_redistribution(full.nrows() * full.ncols());
    DistQr { q, r: f.r, r_inv: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cluster_and_matrix(
        nranks: usize,
        m: usize,
        n: usize,
        seed: u64,
    ) -> (Cluster, Matrix, DistMatrix) {
        let cluster = Cluster::new(nranks);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(m, n, &mut rng);
        let d = DistMatrix::scatter(&cluster, &a);
        (cluster, a, d)
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let (_c, a, d) = cluster_and_matrix(4, 10, 3, 1);
        assert!(d.allgather().approx_eq(&a, 0.0));
        assert!(d.gather().approx_eq(&a, 0.0));
        assert_eq!(d.shape(), (10, 3));
    }

    #[test]
    fn more_ranks_than_rows_is_fine() {
        let (_c, a, d) = cluster_and_matrix(8, 3, 2, 2);
        assert!(d.allgather().approx_eq(&a, 0.0));
        assert_eq!(d.block(7).nrows(), 0);
    }

    #[test]
    fn replicated_matmul_matches_local() {
        let (_c, a, d) = cluster_and_matrix(3, 12, 5, 3);
        let mut rng = StdRng::seed_from_u64(30);
        let b = Matrix::random(5, 4, &mut rng);
        let c_dist = d.matmul_replicated(&b);
        assert!(c_dist.max_diff_replicated(&matmul(&a, &b)) < 1e-11);
    }

    #[test]
    fn dist_matmul_matches_local() {
        let cluster = Cluster::new(4);
        let mut rng = StdRng::seed_from_u64(31);
        let a = Matrix::random(9, 6, &mut rng);
        let b = Matrix::random(6, 7, &mut rng);
        let da = DistMatrix::scatter(&cluster, &a);
        let db = DistMatrix::scatter(&cluster, &b);
        let c = da.matmul_dist(&db);
        assert!(c.max_diff_replicated(&matmul(&a, &b)) < 1e-11);
        // Communication was recorded for scatter + allgather.
        let stats = cluster.stats();
        assert!(stats.bytes_communicated > 0);
        assert!(stats.total_flops() > 0);
    }

    #[test]
    fn gram_matches_local_gram() {
        let (_c, a, d) = cluster_and_matrix(3, 20, 4, 4);
        let g = d.gram();
        assert!(g.approx_eq(&matmul_adj_a(&a, &a), 1e-10));
    }

    #[test]
    fn adjoint_apply_matches_local() {
        let (_c, a, d) = cluster_and_matrix(3, 15, 4, 5);
        let mut rng = StdRng::seed_from_u64(50);
        let x = Matrix::random(15, 2, &mut rng);
        let y = d.matmul_adj_replicated(&x);
        assert!(y.approx_eq(&matmul_adj_a(&a, &x), 1e-10));
    }

    #[test]
    fn norm_matches_local() {
        let (_c, a, d) = cluster_and_matrix(5, 17, 3, 6);
        assert!((d.norm_fro() - a.norm_fro()).abs() < 1e-10);
    }

    #[test]
    fn gram_qr_dist_factorizes() {
        let (_c, a, d) = cluster_and_matrix(4, 30, 5, 7);
        let f = gram_qr_dist(&d);
        let q_full = f.q.allgather();
        assert!(q_full.has_orthonormal_cols(1e-8));
        assert!(matmul(&q_full, &f.r).approx_eq(&a, 1e-8));
        assert!(matmul(&f.r, &f.r_inv.unwrap()).approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn qr_gather_dist_factorizes_but_costs_a_redistribution() {
        let (cluster, a, d) = cluster_and_matrix(4, 30, 5, 8);
        cluster.reset_stats();
        let f = qr_gather_dist(&d);
        let q_full = f.q.allgather();
        assert!(q_full.has_orthonormal_cols(1e-9));
        assert!(matmul(&q_full, &f.r).approx_eq(&a, 1e-9));
        let stats = cluster.stats();
        assert_eq!(stats.redistributions, 1);
    }

    #[test]
    fn gram_path_communicates_less_than_gather_path() {
        let cluster = Cluster::new(8);
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::random(512, 8, &mut rng);
        let d = DistMatrix::scatter(&cluster, &a);
        cluster.reset_stats();
        let _ = gram_qr_dist(&d);
        let gram_bytes = cluster.reset_stats().bytes_communicated;
        let _ = qr_gather_dist(&d);
        let gather_bytes = cluster.reset_stats().bytes_communicated;
        assert!(
            gram_bytes * 4 < gather_bytes,
            "gram path ({gram_bytes} B) should communicate far less than gather path ({gather_bytes} B)"
        );
    }
}
