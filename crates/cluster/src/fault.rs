//! Deterministic, seeded fault injection for the virtual cluster.
//!
//! A [`FaultPlan`] describes *what can go wrong* on the simulated machine —
//! corrupted or dropped broadcast blocks, a rank dying at a given SUMMA
//! round, chronically slow ranks — and a seed that makes every run of the
//! plan reproducible. The plan is armed on a [`crate::Cluster`]
//! ([`crate::Cluster::arm_faults`]); the communication layer then consults it
//! at every fault *site* (each panel delivery, each gathered block, each
//! per-rank round computation) and records what actually struck in a
//! [`FaultLog`].
//!
//! Determinism is the point: the decision at the `i`-th queried site is a
//! pure function of `(seed, i)` (a splitmix64 hash, no global RNG), so two
//! runs of the same workload with the same plan see byte-identical fault
//! sequences — which is what makes recovery testable. Probabilistic faults
//! are *transient* by default: a retry of the same transfer succeeds, unless
//! the plan is marked [`FaultPlan::persistent`] (used to test bounded-retry
//! exhaustion).
//!
//! The recovery side lives in `dist_matrix`: Huang–Abraham checksum vectors
//! carried with every SUMMA panel and gather/scatter block detect damaged
//! deliveries, and a bounded per-transfer retry repairs them (billed to
//! [`crate::CommStats::retries`] / [`crate::CommStats::retry_bytes`]).

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 finalizer: a cheap, well-mixed hash used to derive every fault
/// decision from `(seed, event index)` without any shared RNG state.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform sample in `[0, 1)`.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic element index used when a [`FaultKind::Corrupt`] fault
/// materialises: which element of the delivered buffer gets damaged.
pub(crate) fn corrupt_index(event_index: u64, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    (splitmix64(event_index ^ 0x5EED_C0DE) % len as u64) as usize
}

/// Where in the communication fabric a fault can strike. Each variant names
/// one *delivery* or one *per-rank computation* — the granularity at which
/// the ABFT layer detects and retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultSite {
    /// Delivery of a SUMMA `A` panel to one receiving rank in a grid row.
    SummaPanelA {
        /// SUMMA round (depth-panel index).
        round: usize,
        /// Receiving rank.
        rank: usize,
    },
    /// Delivery of a SUMMA `B` panel to one receiving rank in a grid column.
    SummaPanelB {
        /// SUMMA round (depth-panel index).
        round: usize,
        /// Receiving rank.
        rank: usize,
    },
    /// One rank's local accumulation step of a SUMMA round (the site where a
    /// planned rank failure strikes).
    SummaCompute {
        /// SUMMA round (depth-panel index).
        round: usize,
        /// Computing rank.
        rank: usize,
    },
    /// Delivery of one rank's block during a gather/allgather.
    GatherBlock {
        /// Sending rank.
        rank: usize,
    },
    /// Delivery of one rank's block during a scatter.
    ScatterBlock {
        /// Receiving rank.
        rank: usize,
    },
}

/// What kind of fault struck a [`FaultSite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The block arrived with corrupted elements.
    Corrupt,
    /// The block never arrived (the receiver sees zeros).
    Drop,
    /// The rank died mid-round and restarts, losing the round's panels.
    RankFailure,
    /// The rank computes at a fraction of full speed (persistent while the
    /// plan is armed; logged once when armed).
    Slow,
}

/// One injected fault, as recorded in the [`FaultLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Global injection-order index (also the hash input that decided it).
    pub index: u64,
    /// Where the fault struck.
    pub site: FaultSite,
    /// What struck.
    pub kind: FaultKind,
    /// Delivery attempt the fault struck on (0 = first transfer; transient
    /// faults only ever strike attempt 0).
    pub attempt: usize,
}

/// Chronological record of every fault a plan injected — the observable,
/// comparable "what happened" of a faulty run. Two runs of the same workload
/// under the same seed produce equal logs.
pub type FaultLog = Vec<FaultEvent>;

/// A deterministic, seeded description of the faults to inject into a
/// [`crate::Cluster`]. Built with the fluent setters, then armed with
/// [`crate::Cluster::arm_faults`]:
///
/// ```
/// use koala_cluster::FaultPlan;
/// let plan = FaultPlan::seeded(42)
///     .corrupt_prob(0.05)
///     .drop_prob(0.01)
///     .fail_rank(2, 1) // rank 2 dies in SUMMA round 1
///     .slow_rank(3, 2.5); // rank 3 runs 2.5x slower
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    corrupt_prob: f64,
    drop_prob: f64,
    rank_failure: Option<(usize, usize)>,
    slow: Vec<(usize, f64)>,
    persistent: bool,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled yet.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            corrupt_prob: 0.0,
            drop_prob: 0.0,
            rank_failure: None,
            slow: Vec::new(),
            persistent: false,
        }
    }

    /// Probability that any single block delivery arrives corrupted.
    #[must_use]
    pub fn corrupt_prob(mut self, p: f64) -> Self {
        self.corrupt_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that any single block delivery is dropped (received as
    /// zeros).
    #[must_use]
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Kill `rank` at SUMMA round `round` (fires once: the restarted rank
    /// re-fetches the round's panels and the run continues).
    #[must_use]
    pub fn fail_rank(mut self, rank: usize, round: usize) -> Self {
        self.rank_failure = Some((rank, round));
        self
    }

    /// Mark `rank` as computing `factor`x slower than its peers (factor >= 1;
    /// its billed work is scaled so the cost model sees the straggler on the
    /// compute critical path).
    #[must_use]
    pub fn slow_rank(mut self, rank: usize, factor: f64) -> Self {
        self.slow.push((rank, factor.max(1.0)));
        self
    }

    /// Make probabilistic faults strike *every* delivery attempt instead of
    /// only the first. Used to test that bounded retries exhaust cleanly.
    #[must_use]
    pub fn persistent(mut self) -> Self {
        self.persistent = true;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Slowdown factor of `rank` (1.0 when the rank is full speed).
    pub fn slow_factor(&self, rank: usize) -> f64 {
        self.slow.iter().filter(|(r, _)| *r == rank).map(|(_, f)| *f).fold(1.0, f64::max)
    }

    pub(crate) fn slow_ranks(&self) -> &[(usize, f64)] {
        &self.slow
    }
}

/// Live injection state of an armed plan: the event counter that drives the
/// deterministic decisions, the once-only rank-failure latch, and the log.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    counter: u64,
    rank_failure_armed: bool,
    log: FaultLog,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let mut state = FaultState {
            rank_failure_armed: plan.rank_failure.is_some(),
            plan,
            counter: 0,
            log: Vec::new(),
        };
        // Slow ranks are a standing condition, not a discrete strike: log
        // them once, up front, so the log names every degradation in play.
        let slow: Vec<(usize, f64)> = state.plan.slow_ranks().to_vec();
        for (rank, _) in slow {
            let index = state.counter;
            state.counter += 1;
            state.log.push(FaultEvent {
                index,
                site: FaultSite::SummaCompute { round: 0, rank },
                kind: FaultKind::Slow,
                attempt: 0,
            });
        }
        state
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn log(&self) -> &FaultLog {
        &self.log
    }

    pub(crate) fn into_log(self) -> FaultLog {
        self.log
    }

    /// Decide whether a fault strikes `site` on delivery `attempt`. Every
    /// query consumes one event index, so the whole decision sequence is a
    /// pure function of `(seed, query order)` — rerunning the same workload
    /// under the same plan replays the same faults.
    pub(crate) fn decide(&mut self, site: FaultSite, attempt: usize) -> Option<FaultEvent> {
        let index = self.counter;
        self.counter += 1;
        if let FaultSite::SummaCompute { round, rank } = site {
            if self.rank_failure_armed && self.plan.rank_failure == Some((rank, round)) {
                self.rank_failure_armed = false;
                let ev = FaultEvent { index, site, kind: FaultKind::RankFailure, attempt };
                self.log.push(ev);
                return Some(ev);
            }
            return None;
        }
        if attempt > 0 && !self.plan.persistent {
            // Transient faults strike a given transfer once; the retry is
            // clean by construction.
            return None;
        }
        let u = unit_f64(splitmix64(self.plan.seed ^ index.wrapping_mul(GOLDEN)));
        let kind = if u < self.plan.drop_prob {
            FaultKind::Drop
        } else if u < self.plan.drop_prob + self.plan.corrupt_prob {
            FaultKind::Corrupt
        } else {
            return None;
        };
        let ev = FaultEvent { index, site, kind, attempt };
        self.log.push(ev);
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: FaultPlan, queries: usize) -> FaultLog {
        let mut s = FaultState::new(plan);
        for i in 0..queries {
            let _ = s.decide(FaultSite::SummaPanelA { round: i, rank: 0 }, 0);
        }
        s.into_log()
    }

    #[test]
    fn same_seed_same_sequence() {
        let plan = FaultPlan::seeded(7).corrupt_prob(0.2).drop_prob(0.1);
        let a = drain(plan.clone(), 200);
        let b = drain(plan, 200);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "prob 0.3 over 200 queries should strike");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = drain(FaultPlan::seeded(1).corrupt_prob(0.3), 300);
        let b = drain(FaultPlan::seeded(2).corrupt_prob(0.3), 300);
        assert_ne!(
            a, b,
            "two seeds striking identically at every one of 300 sites is (astronomically) unlikely"
        );
    }

    #[test]
    fn transient_faults_spare_retries_persistent_ones_do_not() {
        let mut s = FaultState::new(FaultPlan::seeded(3).corrupt_prob(1.0));
        let site = FaultSite::GatherBlock { rank: 1 };
        assert!(s.decide(site, 0).is_some());
        assert!(s.decide(site, 1).is_none(), "transient: retry is clean");
        let mut p = FaultState::new(FaultPlan::seeded(3).corrupt_prob(1.0).persistent());
        assert!(p.decide(site, 0).is_some());
        assert!(p.decide(site, 1).is_some(), "persistent: retry struck too");
    }

    #[test]
    fn rank_failure_fires_exactly_once_at_its_round() {
        let mut s = FaultState::new(FaultPlan::seeded(0).fail_rank(2, 5));
        assert!(s.decide(FaultSite::SummaCompute { round: 4, rank: 2 }, 0).is_none());
        assert!(s.decide(FaultSite::SummaCompute { round: 5, rank: 1 }, 0).is_none());
        let ev = s.decide(FaultSite::SummaCompute { round: 5, rank: 2 }, 0);
        assert_eq!(ev.map(|e| e.kind), Some(FaultKind::RankFailure));
        assert!(s.decide(FaultSite::SummaCompute { round: 5, rank: 2 }, 0).is_none(), "fires once");
    }

    #[test]
    fn slow_ranks_are_logged_on_arming_and_scale_work() {
        let plan = FaultPlan::seeded(9).slow_rank(3, 2.5);
        assert_eq!(plan.slow_factor(3), 2.5);
        assert_eq!(plan.slow_factor(0), 1.0);
        let s = FaultState::new(plan);
        assert_eq!(s.log().len(), 1);
        assert_eq!(s.log()[0].kind, FaultKind::Slow);
    }
}
