//! # koala-cluster
//!
//! Simulated distributed-memory tensor backend for the koala-rs reproduction
//! of *"Efficient 2D Tensor Network Simulation of Quantum Systems"* (SC 2020).
//!
//! The original Koala library uses the Cyclops Tensor Framework (CTF) over
//! MPI and ScaLAPACK on the Stampede2 supercomputer. This crate replaces that
//! stack with a **virtual cluster**: a bulk-synchronous simulation in which
//! every rank owns private buffers, every collective moves data between those
//! buffers exactly as its MPI counterpart would, and all traffic and per-rank
//! work is tallied in [`CommStats`]. A [`CostModel`] converts the counters
//! into modelled parallel execution times, which is how the scaling figures
//! of the paper are reproduced on a single machine (see DESIGN.md §1 for the
//! substitution rationale).
//!
//! Provided building blocks:
//! * [`Cluster`] — the virtual machine and its statistics,
//! * [`DistMatrix`] — block-row distributed matrices with distributed GEMM,
//!   Gram matrices, and the two distributed QR paths compared in Figure 7
//!   ([`gram_qr_dist`] = paper Algorithm 5 vs [`qr_gather_dist`] = the
//!   reshape/gather baseline),
//! * [`DistTensor`] — tensors distributed along one mode, with free-mode
//!   contractions, explicit redistributions, and zero-copy matricization.
//!
//! # Example: a distributed Gram matrix and its communication bill
//!
//! The Gram product of paper Algorithm 5 needs only one allreduce of an
//! `n x n` matrix, no matter how tall the distributed operand is — exactly
//! what [`CommStats`] records:
//!
//! ```
//! use koala_cluster::{Cluster, DistMatrix};
//! use koala_linalg::{matmul_adj_a, Matrix};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let cluster = Cluster::new(4);
//! let a = Matrix::random(16, 3, &mut rng);
//! let dist = DistMatrix::scatter(&cluster, &a);
//! let g = dist.gram(); // per-rank local A_i^H A_i, then one allreduce
//! assert!(g.approx_eq(&matmul_adj_a(&a, &a), 1e-10));
//! let stats = cluster.stats();
//! assert_eq!(stats.collectives, 1);
//! assert!(stats.redistributions == 0, "the tall operand never moves");
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod dist_matrix;
pub mod dist_tensor;
pub mod stats;

pub use cluster::{block_ranges, Cluster, RankBuffer};
pub use dist_matrix::{gram_qr_dist, qr_gather_dist, DistMatrix, DistQr};
pub use dist_tensor::DistTensor;
pub use stats::{CommStats, CostModel, ELEM_BYTES};
