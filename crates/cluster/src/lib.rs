//! # koala-cluster
//!
//! Simulated distributed-memory tensor backend for the koala-rs reproduction
//! of *"Efficient 2D Tensor Network Simulation of Quantum Systems"* (SC 2020).
//!
//! The original Koala library uses the Cyclops Tensor Framework (CTF) over
//! MPI and ScaLAPACK on the Stampede2 supercomputer. This crate replaces that
//! stack with a **virtual cluster**: a bulk-synchronous simulation in which
//! every rank owns private buffers, every collective moves data between those
//! buffers exactly as its MPI counterpart would, and all traffic and per-rank
//! work is tallied in [`CommStats`]. A [`CostModel`] — calibrated from the
//! committed `BENCH_gemm.json` via [`CostModel::from_bench`] — converts the
//! counters into modelled parallel execution times, which is how the scaling
//! figures of the paper are reproduced on a single machine (see DESIGN.md §1
//! for the substitution rationale).
//!
//! Provided building blocks:
//! * [`Cluster`] — the virtual machine and its statistics,
//! * [`ProcGrid`] / [`Dist1D`] — 2-D processor grids and the block /
//!   block-cyclic index layouts mapped onto them ([`crate::grid`] documents
//!   the layout rules),
//! * [`DistMatrix`] — grid-distributed matrices with a SUMMA
//!   [`DistMatrix::matmul_dist`] whose per-rank products run the same packed
//!   `gemm_into` macro-tiles (and real-only fast path) as the shared-memory
//!   kernel, `pdgemm`-style transposed-operand products
//!   ([`DistMatrix::matmul_dist_op`], auto-dispatched over the
//!   [`SummaVariant`] stationary dataflows), Gram matrices on any grid
//!   shape, and the two distributed QR paths compared in Figure 7
//!   ([`gram_qr_dist`] = paper Algorithm 5 vs [`qr_gather_dist`] = the
//!   reshape/gather baseline),
//! * [`DistTensor`] — tensors distributed by matricized mode groups over the
//!   grid, with free-mode contractions, explicit redistributions, and
//!   zero-copy matricization.
//!
//! Realness is first-class end to end: scatter, SUMMA, Gram, gather, and
//! every mutator propagate the structural [`koala_linalg::Matrix::is_real`]
//! hint ([`DistMatrix::is_real`]), per-rank products of hinted operands run
//! the real-only microkernel, and the work lands in
//! [`CommStats::rank_real_macs`] so the cost model prices it at the
//! calibrated real-kernel rate.
//!
//! # Example: a distributed Gram matrix and its communication bill
//!
//! The Gram product of paper Algorithm 5 needs only one allreduce of an
//! `n x n` matrix, no matter how tall the distributed operand is — exactly
//! what [`CommStats`] records. With a *real* operand the whole pipeline —
//! local Gram products, the replicated eigendecomposition, and the recovery
//! of the distributed `Q` — stays on the real kernel:
//!
//! ```
//! use koala_cluster::{gram_qr_dist, Cluster, DistMatrix};
//! use koala_linalg::{matmul, matmul_adj_a, Matrix};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let cluster = Cluster::new(4);
//! let a = Matrix::random_real(16, 3, &mut rng);
//! let dist = DistMatrix::scatter(&cluster, &a);
//! let g = dist.gram(); // per-rank local A_i^H A_i, then one allreduce
//! assert!(g.approx_eq(&matmul_adj_a(&a, &a), 1e-10));
//! let stats = cluster.stats();
//! assert_eq!(stats.collectives, 1);
//! assert!(stats.redistributions == 0, "the tall operand never moves");
//! assert_eq!(stats.total_flops(), 0, "a real operand bills no complex MACs");
//!
//! // End to end: factorize and verify A = Q R without ever gathering A.
//! let f = gram_qr_dist(&dist).unwrap();
//! assert!(f.q.is_real(), "realness survives the distributed factorization");
//! assert!(matmul(&f.q.gather_unaccounted(), &f.r).approx_eq(&a, 1e-8));
//! ```
//!
//! # Example: SUMMA on a 2-D grid vs gathering the operand
//!
//! Block-cyclic operands on a square grid multiply with
//! `O(n^2 / sqrt(P))` words of traffic per rank; the block-row layout
//! degenerates to the gather-everything dataflow:
//!
//! ```
//! use koala_cluster::{Cluster, CostModel, DistMatrix};
//! use koala_linalg::{matmul, Matrix};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let a = Matrix::random(48, 48, &mut rng);
//! let b = Matrix::random(48, 48, &mut rng);
//!
//! let cluster = Cluster::new(4); // default grid: 2 x 2
//! let da = DistMatrix::scatter_block_cyclic(&cluster, &a, cluster.grid(), 8, 8);
//! let db = DistMatrix::scatter_block_cyclic(&cluster, &b, cluster.grid(), 8, 8);
//! cluster.reset_stats();
//! let c = da.matmul_dist(&db).unwrap(); // SUMMA rounds over the depth panels
//! assert!(c.gather_unaccounted().approx_eq(&matmul(&a, &b), 1e-10));
//! let summa_bytes = cluster.reset_stats().bytes_communicated;
//!
//! let ra = DistMatrix::scatter(&cluster, &a); // block-row baseline
//! let rb = DistMatrix::scatter(&cluster, &b);
//! cluster.reset_stats();
//! let _ = ra.matmul_dist(&rb).unwrap(); // degenerates to allgather-B
//! let gather_bytes = cluster.reset_stats().bytes_communicated;
//! assert!(summa_bytes < gather_bytes);
//!
//! // Counters convert to modelled time through the (calibratable) cost model.
//! let model = CostModel::default();
//! let _seconds = model.modelled_time(&cluster.stats());
//! ```

#![warn(missing_docs)]
// Library code must not panic on fallible paths: failures become
// `KoalaError` results so long-running drivers can recover instead of
// aborting (see ARCHITECTURE.md, "Failure model").
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cluster;
pub mod dist_matrix;
pub mod dist_tensor;
pub mod fault;
pub mod grid;
pub mod stats;

pub use cluster::{block_ranges, Cluster, RankBuffer};
pub use dist_matrix::{gram_qr_dist, qr_gather_dist, DistMatrix, DistQr, SummaVariant};
pub use dist_tensor::DistTensor;
pub use fault::{FaultEvent, FaultKind, FaultLog, FaultPlan, FaultSite};
pub use grid::{refine, Dist1D, Layout1D, Panel, ProcGrid, Seg};
pub use stats::{
    CommStats, CostModel, RoundCost, ELEM_BYTES, FLOPS_PER_COMPLEX_MAC, FLOPS_PER_REAL_MAC,
};

/// Result alias for fallible cluster operations (ABFT-verified transfers can
/// exhaust their retry budget under a persistent fault plan).
pub type Result<T> = std::result::Result<T, koala_error::KoalaError>;
