//! Distributed tensors: a dense tensor matricized by mode groups and spread
//! over the 2-D processor grid of a [`Cluster`].
//!
//! This mirrors how Cyclops maps a tensor onto a processor grid: the modes
//! are ordered by a storage permutation, the first `split` of them become the
//! rows of a matricization and the rest its columns, and that matrix lives as
//! a (possibly block-cyclic) [`DistMatrix`] on the grid. The old
//! single-distributed-axis layout is the special case `split = 1` on a
//! `P x 1` grid ([`DistTensor::scatter`]); [`DistTensor::scatter_grouped`]
//! places arbitrary mode groups block-cyclically on a 2-D grid, which is the
//! layout under which `gram_qr_dist` and the SUMMA products run without any
//! full-tensor gather.
//!
//! Matricizations whose row group is a prefix extension of the stored one are
//! *zero-copy* ([`DistTensor::unfold_as_dist_matrix`]): the per-rank bytes do
//! not move, only the row layout is reinterpreted ([`crate::Dist1D::scale`]).
//! Anything else is an explicit all-to-all redistribution, billed to
//! [`crate::CommStats::redistributions`] — never a gather to one rank. This
//! is exactly the reshape bottleneck the paper's Algorithm 5 removes from the
//! evolution step, kept measurable.

use crate::cluster::Cluster;
use crate::dist_matrix::{local_block, DistMatrix};
use crate::grid::{Dist1D, ProcGrid};
use koala_linalg::{c64, Matrix, C64};
use koala_tensor::{tensordot, Tensor};

/// A tensor stored as a matricization over mode groups, distributed over a
/// processor grid.
#[derive(Debug, Clone)]
pub struct DistTensor {
    cluster: Cluster,
    /// Global shape, in the tensor's own (unpermuted) axis order.
    shape: Vec<usize>,
    /// Storage permutation: the global axes in the order they appear in the
    /// matricization (row modes first).
    order: Vec<usize>,
    /// The first `split` entries of `order` are the matricized row modes.
    split: usize,
    /// The matricized tensor, distributed over the grid.
    mat: DistMatrix,
}

impl DistTensor {
    /// Distribute a replicated tensor along `dist_axis` by contiguous blocks
    /// (scatter from rank 0 on a `P x 1` grid) — the classic one-mode slab
    /// layout, kept as the default for free-mode contraction workloads.
    pub fn scatter(cluster: &Cluster, tensor: &Tensor, dist_axis: usize) -> Self {
        assert!(dist_axis < tensor.ndim(), "scatter: axis {dist_axis} out of range");
        let ndim = tensor.ndim();
        let mut order: Vec<usize> = vec![dist_axis];
        order.extend((0..ndim).filter(|&a| a != dist_axis));
        let rows = Dist1D::balanced(tensor.dim(dist_axis), cluster.nranks());
        let cols = Dist1D::whole(tensor.len() / tensor.dim(dist_axis).max(1));
        let out =
            Self::place(cluster, tensor, &order, 1, ProcGrid::column(cluster.nranks()), rows, cols);
        out.bill_scatter();
        out
    }

    /// Distribute a replicated tensor with an explicit storage permutation
    /// and mode grouping: axes `order[..split]` matricize into the rows,
    /// `order[split..]` into the columns, placed block-cyclically on `grid`
    /// with the given block sizes (scatter from rank 0, charged like
    /// [`DistTensor::scatter`]). This is the layout that keeps gate updates
    /// fully distributed: the matricized factorization inputs come out of
    /// [`DistTensor::unfold_as_dist_matrix`] with zero data movement.
    pub fn scatter_grouped(
        cluster: &Cluster,
        tensor: &Tensor,
        order: &[usize],
        split: usize,
        grid: ProcGrid,
        row_block: usize,
        col_block: usize,
    ) -> Self {
        assert_eq!(grid.nranks(), cluster.nranks(), "scatter: grid does not cover the cluster");
        let m: usize = order[..split].iter().map(|&a| tensor.dim(a)).product();
        let n: usize = order[split..].iter().map(|&a| tensor.dim(a)).product();
        let rows = Dist1D::cyclic(m, grid.rows(), row_block);
        let cols = Dist1D::cyclic(n, grid.cols(), col_block);
        let out = Self::place(cluster, tensor, order, split, grid, rows, cols);
        out.bill_scatter();
        out
    }

    /// Charge the scatter-from-rank-0 traffic of the current blocks (every
    /// block except rank 0's own crosses a wire).
    fn bill_scatter(&self) {
        for rank in 1..self.cluster.nranks() {
            let b = self.mat.block(rank);
            self.cluster.record_p2p(b.nrows() * b.ncols());
        }
    }

    /// Lay out a replicated tensor without charging communication (the caller
    /// bills the scatter or redistribution that motivated the placement).
    fn place(
        cluster: &Cluster,
        tensor: &Tensor,
        order: &[usize],
        split: usize,
        grid: ProcGrid,
        rows: Dist1D,
        cols: Dist1D,
    ) -> Self {
        let ndim = tensor.ndim();
        assert_eq!(order.len(), ndim, "place: order must cover every axis");
        let mut seen = vec![false; ndim];
        for &a in order {
            assert!(a < ndim && !seen[a], "place: order must be a permutation of the axes");
            seen[a] = true;
        }
        assert!(split >= 1 && split <= ndim, "place: split out of range");
        let permuted = tensor
            .permute(order)
            .unwrap_or_else(|_| unreachable!("place: order is a permutation of the axes"));
        let mut m = permuted.unfold(split);
        if tensor.is_real() {
            // The matricization of a hinted-real tensor stays hinted, so
            // per-rank blocks keep running the real kernel.
            m.assume_real();
        }
        let blocks: Vec<Matrix> = (0..grid.nranks())
            .map(|rank| {
                let (r, c) = grid.coords_of(rank);
                local_block(&m, &rows, r, &cols, c)
            })
            .collect();
        let mat = DistMatrix::from_parts(cluster, grid, rows, cols, blocks);
        DistTensor {
            cluster: cluster.clone(),
            shape: tensor.shape().to_vec(),
            order: order.to_vec(),
            split,
            mat,
        }
    }

    /// Structural realness of the distributed data: `true` iff every rank's
    /// block carries the realness hint (propagated by scatter, gather,
    /// redistribution, matricization, and free-mode contractions).
    pub fn is_real(&self) -> bool {
        self.mat.is_real()
    }

    /// Assemble the full tensor on every rank (allgather). Counts as a full
    /// gather on [`crate::CommStats::full_gathers`] — distributed pipelines
    /// are expected to avoid this entirely.
    pub fn allgather(&self) -> Tensor {
        let elems: usize = self.len();
        self.cluster.record_full_gather();
        self.cluster.record_collective(elems * (self.cluster.nranks() - 1), 1);
        self.gather_local()
    }

    /// Assemble the full tensor on rank 0 (gather; billed like
    /// [`DistTensor::allgather`] but with only the foreign blocks moving).
    pub fn gather(&self) -> Tensor {
        let foreign: usize = (1..self.cluster.nranks())
            .map(|rank| {
                let b = self.mat.block(rank);
                b.nrows() * b.ncols()
            })
            .sum();
        self.cluster.record_full_gather();
        self.cluster.record_collective(foreign, 1);
        self.gather_local()
    }

    fn gather_local(&self) -> Tensor {
        let m = self.mat.gather_local();
        let perm_shape: Vec<usize> = self.order.iter().map(|&a| self.shape[a]).collect();
        let folded = Tensor::fold(&m, &perm_shape[..self.split], &perm_shape[self.split..])
            .unwrap_or_else(|_| unreachable!("gather: matricization matches the stored shape"));
        folded
            .unpermute(&self.order)
            .unwrap_or_else(|_| unreachable!("gather: inverse of the storage permutation"))
    }

    /// Shape of the full tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Storage permutation (global axes in matricization order).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of leading entries of [`DistTensor::order`] matricized as rows.
    pub fn split(&self) -> usize {
        self.split
    }

    /// Leading distributed mode — for the slab layout of
    /// [`DistTensor::scatter`], the axis the tensor is distributed along.
    pub fn dist_axis(&self) -> usize {
        self.order[0]
    }

    /// The processor grid the matricization is distributed over.
    pub fn grid(&self) -> ProcGrid {
        self.mat.grid()
    }

    /// The cluster this tensor lives on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// One rank's local block of the matricization.
    pub fn block(&self, rank: usize) -> &Matrix {
        self.mat.block(rank)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Redistribute into the slab layout along a different axis. This is the
    /// Cyclops "reshape" path: an all-to-all over (almost) the entire tensor.
    pub fn redistribute(&self, new_axis: usize) -> DistTensor {
        let ndim = self.shape.len();
        assert!(new_axis < ndim);
        let mut order: Vec<usize> = vec![new_axis];
        order.extend((0..ndim).filter(|&a| a != new_axis));
        let grid = ProcGrid::column(self.cluster.nranks());
        if self.order == order && self.split == 1 && self.mat.grid() == grid {
            return self.clone();
        }
        self.cluster.record_redistribution(self.len());
        let full = self.gather_local();
        let rows = Dist1D::balanced(self.shape[new_axis], self.cluster.nranks());
        let cols = Dist1D::whole(self.len() / self.shape[new_axis].max(1));
        Self::place(&self.cluster, &full, &order, 1, grid, rows, cols)
    }

    /// Redistribute into an arbitrary mode grouping / grid (billed as one
    /// all-to-all redistribution of the whole tensor, like
    /// [`DistTensor::redistribute`]).
    pub fn regroup(
        &self,
        order: &[usize],
        split: usize,
        grid: ProcGrid,
        row_block: usize,
        col_block: usize,
    ) -> DistTensor {
        assert_eq!(
            grid.nranks(),
            self.cluster.nranks(),
            "regroup: grid does not cover the cluster"
        );
        self.cluster.record_redistribution(self.len());
        let full = self.gather_local();
        let m: usize = order[..split].iter().map(|&a| self.shape[a]).product();
        let n: usize = order[split..].iter().map(|&a| self.shape[a]).product();
        let rows = Dist1D::cyclic(m, grid.rows(), row_block);
        let cols = Dist1D::cyclic(n, grid.cols(), col_block);
        Self::place(&self.cluster, &full, order, split, grid, rows, cols)
    }

    /// Contract with a replicated tensor over the given axes. Requires the
    /// slab layout (`split == 1` on a `P x 1` grid) with the distributed mode
    /// *free*; the result stays distributed along it and no communication is
    /// needed (this is the cheap path that IBMPS exploits: the random sketch
    /// and the small factors are replicated, the big boundary tensors stay
    /// distributed).
    pub fn tensordot_replicated(
        &self,
        other: &Tensor,
        axes_self: &[usize],
        axes_other: &[usize],
    ) -> DistTensor {
        assert!(
            self.split == 1 && self.mat.grid().cols() == 1,
            "tensordot_replicated: requires the slab layout (regroup to split = 1 first)"
        );
        let dist_axis = self.order[0];
        assert!(
            !axes_self.contains(&dist_axis),
            "tensordot_replicated: the distributed axis must stay free (redistribute first)"
        );
        // Per-block axes: blocks store the axes in `self.order`.
        let block_axes_self: Vec<usize> = axes_self
            .iter()
            .map(|&a| {
                self.order
                    .iter()
                    .position(|&o| o == a)
                    .unwrap_or_else(|| unreachable!("order enumerates every axis"))
            })
            .collect();
        let contracted: usize = axes_self.iter().map(|&a| self.shape[a]).product();
        let free_other: usize = other.len() / contracted.max(1);
        // Columns of the matricized result block: the free trailing modes of
        // self (in storage order), then the free modes of other.
        let out_cols: usize = self.order[1..]
            .iter()
            .filter(|a| !axes_self.contains(a))
            .map(|&a| self.shape[a])
            .product::<usize>()
            * free_other;

        let mut blocks = Vec::with_capacity(self.cluster.nranks());
        for rank in 0..self.cluster.nranks() {
            let b = self.mat.block(rank);
            let local_rows = b.nrows();
            let slab_shape: Vec<usize> = std::iter::once(local_rows)
                .chain(self.order[1..].iter().map(|&a| self.shape[a]))
                .collect();
            let mut slab = Tensor::from_vec(&slab_shape, b.data().to_vec())
                .unwrap_or_else(|_| unreachable!("slab shape matches the block data"));
            if b.is_real() {
                slab.assume_real();
            }
            let out = tensordot(&slab, other, &block_axes_self, axes_other).unwrap_or_else(|e| {
                unreachable!("tensordot_replicated: axes validated against shapes ({e})")
            });
            // Flops: block free dims * contracted dims * other free dims,
            // billed to the kernel the operands' realness hints select.
            let free_b: usize = slab.len() / contracted.max(1);
            let macs = (free_b * contracted * free_other) as u64;
            self.cluster.record_macs(rank, macs, slab.is_real() && other.is_real());
            let mut mb = Matrix::from_vec(local_rows, out_cols, out.data().to_vec())
                .unwrap_or_else(|_| unreachable!("result slab matricizes by its leading mode"));
            if out.is_real() {
                mb.assume_real();
            }
            blocks.push(mb);
        }

        // Result axes: free axes of self (original order) then free axes of
        // other; the storage order keeps the distributed mode first, then the
        // surviving entries of the old storage order, then other's free modes.
        let ndim = self.shape.len();
        let free_self: Vec<usize> = (0..ndim).filter(|a| !axes_self.contains(a)).collect();
        let mut out_shape: Vec<usize> = free_self.iter().map(|&a| self.shape[a]).collect();
        out_shape
            .extend((0..other.ndim()).filter(|a| !axes_other.contains(a)).map(|a| other.dim(a)));
        let map = |a: usize| {
            free_self
                .iter()
                .position(|&f| f == a)
                .unwrap_or_else(|| unreachable!("free axes contain every uncontracted axis"))
        };
        let mut out_order: Vec<usize> = vec![map(dist_axis)];
        out_order
            .extend(self.order[1..].iter().filter(|a| !axes_self.contains(a)).map(|&a| map(a)));
        out_order.extend(free_self.len()..out_shape.len());

        let rows = self.mat.row_dist().clone();
        let cols = Dist1D::whole(out_cols);
        let mat = DistMatrix::from_parts(&self.cluster, self.mat.grid(), rows, cols, blocks);
        DistTensor {
            cluster: self.cluster.clone(),
            shape: out_shape,
            order: out_order,
            split: 1,
            mat,
        }
    }

    /// View the tensor as a distributed matrix matricized with the first
    /// `split` (global-order) axes as rows.
    ///
    /// Zero-copy when the stored layout already is that matricization
    /// (identity storage order, same split) or a coarser row grouping of it
    /// on replicated columns — there the per-rank bytes are reinterpreted in
    /// place with a scaled row layout ([`crate::Dist1D::scale`]), which
    /// generalises the old axis-0/`split >= 1` rule to every stored split.
    /// Any other request is a genuine layout change, billed as one
    /// all-to-all redistribution of the tensor — never a gather to one rank
    /// — and lands in the grid's block-cyclic SUMMA layout.
    pub fn unfold_as_dist_matrix(&self, split: usize) -> DistMatrix {
        let ndim = self.shape.len();
        assert!(split >= 1 && split <= ndim, "unfold_as_dist_matrix: split out of range");
        let identity = self.order.iter().enumerate().all(|(i, &a)| i == a);
        if identity && split == self.split {
            return self.mat.clone();
        }
        let factor: usize = self.shape[self.split.min(split)..split].iter().product();
        if identity && split >= self.split && self.mat.grid().cols() == 1 && factor > 0 {
            // Zero-copy re-split: every stored row becomes `factor`
            // consecutive rows of the finer matricization; block data is
            // unchanged, only the row layout scales.
            let rows = self.mat.row_dist().scale(factor);
            let ncols: usize = self.shape[split..].iter().product();
            let blocks: Vec<Matrix> = (0..self.cluster.nranks())
                .map(|rank| {
                    let b = self.mat.block(rank);
                    let mut m = Matrix::from_vec(b.nrows() * factor, ncols, b.data().to_vec())
                        .unwrap_or_else(|_| unreachable!("re-split keeps the block data length"));
                    if b.is_real() {
                        m.assume_real();
                    }
                    m
                })
                .collect();
            return DistMatrix::from_parts(
                &self.cluster,
                self.mat.grid(),
                rows,
                Dist1D::whole(ncols),
                blocks,
            );
        }
        // Layout change: one all-to-all redistribution of the tensor.
        self.cluster.record_redistribution(self.len());
        let full = self.gather_local();
        let grid = self.mat.grid();
        let m: usize = self.shape[..split].iter().product();
        let n: usize = self.shape[split..].iter().product();
        let rows = if grid.rows() > 1 {
            Dist1D::cyclic(m, grid.rows(), DistMatrix::DEFAULT_BLOCK)
        } else {
            Dist1D::balanced(m, 1)
        };
        let cols = if grid.cols() > 1 {
            Dist1D::cyclic(n, grid.cols(), DistMatrix::DEFAULT_BLOCK)
        } else {
            Dist1D::whole(n)
        };
        let order: Vec<usize> = (0..ndim).collect();
        Self::place(&self.cluster, &full, &order, split, grid, rows, cols).mat
    }

    /// Inner product `<self, other>` of two tensors with the same shape and
    /// layout (local partial sums + allreduce of one scalar).
    pub fn inner(&self, other: &DistTensor) -> C64 {
        assert_eq!(self.shape, other.shape, "inner: shape mismatch");
        assert_eq!(
            (&self.order, self.split),
            (&other.order, other.split),
            "inner: layout mismatch"
        );
        let mut acc = C64::ZERO;
        for rank in 0..self.cluster.nranks() {
            let a = self.mat.block(rank);
            let b = other.mat.block(rank);
            assert_eq!(a.shape(), b.shape(), "inner: distribution mismatch");
            self.cluster.record_macs(
                rank,
                (a.nrows() * a.ncols()) as u64,
                a.is_real() && b.is_real(),
            );
            for (x, y) in a.data().iter().zip(b.data()) {
                acc += c64(x.re * y.re + x.im * y.im, x.re * y.im - x.im * y.re);
            }
        }
        self.cluster.record_collective(self.cluster.nranks() - 1, 2);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koala_tensor::tensordot as local_tensordot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        nranks: usize,
        shape: &[usize],
        axis: usize,
        seed: u64,
    ) -> (Cluster, Tensor, DistTensor) {
        let cluster = Cluster::new(nranks);
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::random(shape, &mut rng);
        let d = DistTensor::scatter(&cluster, &t, axis);
        (cluster, t, d)
    }

    #[test]
    fn scatter_gather_roundtrip_axis0() {
        let (_c, t, d) = setup(3, &[7, 4, 3], 0, 1);
        assert!(d.allgather().approx_eq(&t, 0.0));
        assert!(d.gather().approx_eq(&t, 0.0));
    }

    #[test]
    fn scatter_gather_roundtrip_inner_axis() {
        let (_c, t, d) = setup(4, &[3, 9, 2], 1, 2);
        assert_eq!(d.dist_axis(), 1);
        assert!(d.allgather().approx_eq(&t, 0.0));
    }

    #[test]
    fn grouped_scatter_gather_roundtrip_across_groupings() {
        let cluster = Cluster::new(4);
        let mut rng = StdRng::seed_from_u64(70);
        let t = Tensor::random(&[4, 3, 2, 5], &mut rng);
        for (order, split) in [
            (vec![0, 1, 2, 3], 2),
            (vec![2, 0, 3, 1], 2),
            (vec![3, 1, 2, 0], 1),
            (vec![1, 0, 2, 3], 3),
        ] {
            let d =
                DistTensor::scatter_grouped(&cluster, &t, &order, split, ProcGrid::new(2, 2), 2, 3);
            assert_eq!(d.grid(), ProcGrid::new(2, 2));
            assert_eq!(d.order(), &order[..]);
            assert!(d.allgather().approx_eq(&t, 0.0), "order {order:?} split {split}");
            assert!(d.gather().approx_eq(&t, 0.0));
        }
    }

    #[test]
    fn gathers_bill_the_full_gather_counter() {
        let (c, _t, d) = setup(3, &[6, 2, 2], 0, 71);
        c.reset_stats();
        let _ = d.allgather();
        let _ = d.gather();
        assert_eq!(c.stats().full_gathers, 2);
    }

    #[test]
    fn redistribution_changes_axis_and_is_counted() {
        let (c, t, d) = setup(3, &[6, 5, 4], 0, 3);
        c.reset_stats();
        let r = d.redistribute(2);
        assert_eq!(r.dist_axis(), 2);
        assert!(r.allgather().approx_eq(&t, 0.0));
        assert_eq!(c.stats().redistributions, 1);
        // Redistributing onto the same axis is free.
        c.reset_stats();
        let same = r.redistribute(2);
        assert_eq!(c.stats().redistributions, 0);
        assert!(same.allgather().approx_eq(&t, 0.0));
    }

    #[test]
    fn regroup_reaches_any_grouping_for_one_redistribution() {
        let (c, t, d) = setup(4, &[4, 3, 2, 3], 1, 31);
        c.reset_stats();
        let g = d.regroup(&[2, 0, 1, 3], 2, ProcGrid::new(2, 2), 3, 2);
        assert_eq!(c.stats().redistributions, 1);
        assert_eq!(c.stats().full_gathers, 0, "regroup is an all-to-all, not a gather");
        assert!(g.allgather().approx_eq(&t, 0.0));
    }

    #[test]
    fn tensordot_replicated_matches_local() {
        let (_c, t, d) = setup(3, &[5, 4, 3], 0, 4);
        let mut rng = StdRng::seed_from_u64(40);
        let other = Tensor::random(&[4, 3, 6], &mut rng);
        let out = d.tensordot_replicated(&other, &[1, 2], &[0, 1]);
        let expected = local_tensordot(&t, &other, &[1, 2], &[0, 1]).unwrap();
        assert_eq!(out.shape(), expected.shape());
        assert!(out.allgather().approx_eq(&expected, 1e-10));
    }

    #[test]
    fn tensordot_replicated_keeps_distribution_without_comm() {
        let (c, _t, d) = setup(4, &[8, 3, 3], 0, 5);
        let mut rng = StdRng::seed_from_u64(41);
        let other = Tensor::random(&[3, 2], &mut rng);
        c.reset_stats();
        let out = d.tensordot_replicated(&other, &[2], &[0]);
        let stats = c.stats();
        assert_eq!(stats.bytes_communicated, 0, "no communication expected");
        assert_eq!(out.dist_axis(), 0);
        assert!(stats.total_flops() > 0);
    }

    #[test]
    #[should_panic(expected = "distributed axis must stay free")]
    fn contracting_the_distributed_axis_panics() {
        let (_c, _t, d) = setup(2, &[4, 3], 0, 6);
        let other = Tensor::zeros(&[4, 2]);
        let _ = d.tensordot_replicated(&other, &[0], &[0]);
    }

    #[test]
    fn unfold_as_dist_matrix_matches_local_unfold() {
        let (_c, t, d) = setup(3, &[6, 2, 5], 0, 7);
        let m = d.unfold_as_dist_matrix(2);
        assert_eq!(m.shape(), (12, 5));
        assert!(m.max_diff_replicated(&t.unfold(2)) < 1e-14);
    }

    #[test]
    fn unfold_resplits_are_zero_copy_on_slab_layouts() {
        let (c, t, d) = setup(3, &[6, 2, 5], 0, 72);
        c.reset_stats();
        for split in [1, 2, 3] {
            let m = d.unfold_as_dist_matrix(split);
            assert!(m.max_diff_replicated(&t.unfold(split)) < 1e-14, "split {split}");
        }
        let stats = c.stats();
        assert_eq!(stats.bytes_communicated, 0, "re-splits move no data");
        assert_eq!(stats.redistributions, 0);
        assert_eq!(stats.full_gathers, 0);
    }

    #[test]
    fn unfold_on_non_leading_distributed_axes_redistributes_without_gather() {
        let cluster = Cluster::new(4);
        let mut rng = StdRng::seed_from_u64(73);
        let t = Tensor::random(&[3, 4, 5], &mut rng);
        // Distribute with axis 1 leading: the requested matricization
        // (axes [0, 1] as rows) needs a genuine layout change.
        let d = DistTensor::scatter_grouped(&cluster, &t, &[1, 0, 2], 1, ProcGrid::new(2, 2), 2, 2);
        cluster.reset_stats();
        let m = d.unfold_as_dist_matrix(2);
        assert_eq!(m.shape(), (12, 5));
        assert!(m.max_diff_replicated(&t.unfold(2)) < 1e-14);
        let stats = cluster.stats();
        assert_eq!(stats.redistributions, 1, "billed as an all-to-all");
        assert_eq!(stats.full_gathers, 0, "never a gather to one rank");
    }

    #[test]
    fn grouped_unfold_at_the_stored_split_is_zero_copy() {
        let cluster = Cluster::new(6);
        let mut rng = StdRng::seed_from_u64(74);
        let t = Tensor::random(&[4, 3, 2, 3], &mut rng);
        let d =
            DistTensor::scatter_grouped(&cluster, &t, &[0, 1, 2, 3], 2, ProcGrid::new(2, 3), 3, 2);
        cluster.reset_stats();
        let m = d.unfold_as_dist_matrix(2);
        assert_eq!(m.shape(), (12, 6));
        assert!(m.max_diff_replicated(&t.unfold(2)) < 1e-14);
        let stats = cluster.stats();
        assert_eq!(stats.bytes_communicated, 0);
        assert_eq!(stats.redistributions, 0);
        assert_eq!(stats.full_gathers, 0);
    }

    #[test]
    fn realness_propagates_through_scatter_contract_and_unfold() {
        let cluster = Cluster::new(3);
        let mut rng = StdRng::seed_from_u64(90);
        let t = Tensor::random_real(&[6, 4, 3], &mut rng);
        let d = DistTensor::scatter(&cluster, &t, 0);
        assert!(d.is_real(), "slabs of a real tensor stay hinted");
        assert!(d.unfold_as_dist_matrix(1).is_real(), "zero-copy matricization keeps the hint");
        let other = Tensor::random_real(&[3, 2], &mut rng);
        cluster.reset_stats();
        let out = d.tensordot_replicated(&other, &[2], &[0]);
        assert!(out.is_real(), "free-mode contraction of real operands stays real");
        assert!(out.allgather().is_real(), "gather keeps the hint");
        let stats = cluster.stats();
        assert_eq!(stats.total_flops(), 0, "real contraction bills no complex MACs");
        assert!(stats.total_real_macs() > 0);
        assert!(d.redistribute(1).is_real(), "redistribution keeps the hint");
        let g = DistTensor::scatter_grouped(&cluster, &t, &[1, 0, 2], 2, ProcGrid::new(3, 1), 2, 4);
        assert!(g.is_real(), "grouped scatter keeps the hint");
        assert!(g.allgather().is_real());
    }

    #[test]
    fn inner_product_matches_local() {
        let (_c, t, d) = setup(4, &[5, 3, 2], 0, 8);
        let cluster2 = d.cluster().clone();
        let mut rng = StdRng::seed_from_u64(80);
        let u = Tensor::random(&[5, 3, 2], &mut rng);
        let du = DistTensor::scatter(&cluster2, &u, 0);
        let got = d.inner(&du);
        let want = t.inner(&u).unwrap();
        assert!(got.approx_eq(want, 1e-10));
    }
}
