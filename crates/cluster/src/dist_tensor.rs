//! Distributed tensors: a dense tensor split along one axis across the ranks
//! of a [`Cluster`].
//!
//! This mirrors how Cyclops maps a tensor onto a processor grid: one
//! (slowest-varying, after an internal transpose) mode is distributed and the
//! rest is local. Contractions whose distributed mode is a *free* index run
//! without any communication; contractions or matricizations that need a
//! different mode distributed require a redistribution, which is exactly the
//! reshape bottleneck the paper's Algorithm 5 removes from the evolution step.

use crate::cluster::Cluster;
use crate::dist_matrix::DistMatrix;
use koala_tensor::{tensordot, Tensor};

/// A tensor distributed along one of its axes by contiguous blocks.
#[derive(Debug, Clone)]
pub struct DistTensor {
    cluster: Cluster,
    shape: Vec<usize>,
    /// Which axis is distributed.
    dist_axis: usize,
    /// One slab per rank; rank r holds indices `block_ranges(shape[dist_axis])[r]`
    /// of the distributed axis (its other axes are full).
    blocks: Vec<Tensor>,
}

impl DistTensor {
    /// Distribute a replicated tensor along `dist_axis` (scatter from rank 0).
    pub fn scatter(cluster: &Cluster, tensor: &Tensor, dist_axis: usize) -> Self {
        assert!(dist_axis < tensor.ndim(), "scatter: axis {dist_axis} out of range");
        let shape = tensor.shape().to_vec();
        let ranges = cluster.block_ranges(shape[dist_axis]);
        // Move the distributed axis to the front so each slab is contiguous.
        let mut perm: Vec<usize> = vec![dist_axis];
        perm.extend((0..tensor.ndim()).filter(|&a| a != dist_axis));
        let fronted = tensor
            .permute(&perm)
            .unwrap_or_else(|_| unreachable!("scatter: permutation is built from the tensor rank"));
        let row_len: usize = fronted.shape()[1..].iter().product();

        let mut blocks = Vec::with_capacity(cluster.nranks());
        for (rank, &(start, len)) in ranges.iter().enumerate() {
            let mut slab_shape = fronted.shape().to_vec();
            slab_shape[0] = len;
            let data = fronted.data()[start * row_len..(start + len) * row_len].to_vec();
            let mut slab = Tensor::from_vec(&slab_shape, data)
                .unwrap_or_else(|_| unreachable!("scatter: slab shape matches its data length"));
            if tensor.is_real() {
                // Slabs of a hinted-real tensor stay hinted, so per-rank
                // contractions keep running the real kernel.
                slab.assume_real();
            }
            if rank != 0 {
                cluster.record_p2p(len * row_len);
            }
            blocks.push(slab);
        }
        DistTensor { cluster: cluster.clone(), shape, dist_axis, blocks }
    }

    /// Structural realness of the distributed data: `true` iff every rank's
    /// slab carries the [`Tensor::is_real`] hint (propagated by scatter,
    /// gather, redistribution, and free-mode contractions).
    pub fn is_real(&self) -> bool {
        self.blocks.iter().all(|b| b.is_real())
    }

    /// Assemble the full tensor on every rank (allgather).
    pub fn allgather(&self) -> Tensor {
        let elems: usize = self.blocks.iter().map(|b| b.len()).sum();
        self.cluster.record_collective(elems * (self.cluster.nranks() - 1), 1);
        self.gather_local()
    }

    /// Assemble the full tensor on rank 0 (gather).
    pub fn gather(&self) -> Tensor {
        let foreign: usize =
            self.blocks.iter().enumerate().filter(|(r, _)| *r != 0).map(|(_, b)| b.len()).sum();
        self.cluster.record_collective(foreign, 1);
        self.gather_local()
    }

    fn gather_local(&self) -> Tensor {
        // Blocks are stored with the distributed axis first; concatenate and
        // permute the axis back to its original position.
        let mut fronted_shape = self.blocks[0].shape().to_vec();
        fronted_shape[0] = self.shape[self.dist_axis];
        let mut data = Vec::with_capacity(fronted_shape.iter().product());
        for b in &self.blocks {
            data.extend_from_slice(b.data());
        }
        let mut fronted = Tensor::from_vec(&fronted_shape, data)
            .unwrap_or_else(|_| unreachable!("gather: concatenated slabs fill the full shape"));
        if self.is_real() {
            fronted.assume_real();
        }
        // Inverse of the scatter permutation.
        let ndim = self.shape.len();
        let mut perm: Vec<usize> = vec![self.dist_axis];
        perm.extend((0..ndim).filter(|&a| a != self.dist_axis));
        fronted
            .unpermute(&perm)
            .unwrap_or_else(|_| unreachable!("gather: inverse of the scatter permutation"))
    }

    /// Shape of the full tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Axis along which the tensor is distributed.
    pub fn dist_axis(&self) -> usize {
        self.dist_axis
    }

    /// The cluster this tensor lives on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// One rank's slab (distributed axis first).
    pub fn block(&self, rank: usize) -> &Tensor {
        &self.blocks[rank]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Redistribute along a different axis. This is the Cyclops "reshape"
    /// path: an all-to-all over (almost) the entire tensor.
    pub fn redistribute(&self, new_axis: usize) -> DistTensor {
        assert!(new_axis < self.shape.len());
        if new_axis == self.dist_axis {
            return self.clone();
        }
        self.cluster.record_redistribution(self.len());
        let full = self.gather_local();
        DistTensor::scatter_local(&self.cluster, &full, new_axis)
    }

    /// Scatter without charging communication (used by redistribute, which has
    /// already accounted for the all-to-all volume).
    fn scatter_local(cluster: &Cluster, tensor: &Tensor, dist_axis: usize) -> Self {
        let shape = tensor.shape().to_vec();
        let ranges = cluster.block_ranges(shape[dist_axis]);
        let mut perm: Vec<usize> = vec![dist_axis];
        perm.extend((0..tensor.ndim()).filter(|&a| a != dist_axis));
        let fronted = tensor
            .permute(&perm)
            .unwrap_or_else(|_| unreachable!("scatter_local: permutation is built from the rank"));
        let row_len: usize = fronted.shape()[1..].iter().product();
        let mut blocks = Vec::with_capacity(cluster.nranks());
        for &(start, len) in &ranges {
            let mut slab_shape = fronted.shape().to_vec();
            slab_shape[0] = len;
            let data = fronted.data()[start * row_len..(start + len) * row_len].to_vec();
            let mut slab = Tensor::from_vec(&slab_shape, data).unwrap_or_else(|_| {
                unreachable!("scatter_local: slab shape matches its data length")
            });
            if tensor.is_real() {
                slab.assume_real();
            }
            blocks.push(slab);
        }
        DistTensor { cluster: cluster.clone(), shape, dist_axis, blocks }
    }

    /// Contract with a replicated tensor over the given axes. The distributed
    /// axis of `self` must not be contracted; the result stays distributed
    /// along it and no communication is needed (this is the cheap path that
    /// IBMPS exploits: the random sketch and the small factors are
    /// replicated, the big boundary tensors stay distributed).
    pub fn tensordot_replicated(
        &self,
        other: &Tensor,
        axes_self: &[usize],
        axes_other: &[usize],
    ) -> DistTensor {
        assert!(
            !axes_self.contains(&self.dist_axis),
            "tensordot_replicated: the distributed axis must stay free (redistribute first)"
        );
        // Per-block axes: blocks have the distributed axis first, the rest in
        // original relative order.
        let ndim = self.shape.len();
        let order: Vec<usize> = std::iter::once(self.dist_axis)
            .chain((0..ndim).filter(|&a| a != self.dist_axis))
            .collect();
        let block_axes_self: Vec<usize> = axes_self
            .iter()
            .map(|&a| {
                order
                    .iter()
                    .position(|&o| o == a)
                    .unwrap_or_else(|| unreachable!("order enumerates every axis"))
            })
            .collect();

        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (rank, b) in self.blocks.iter().enumerate() {
            let out = tensordot(b, other, &block_axes_self, axes_other).unwrap_or_else(|e| {
                unreachable!("tensordot_replicated: axes validated against shapes ({e})")
            });
            // Flops: block free dims * contracted dims * other free dims,
            // billed to the kernel the operands' realness hints select.
            let contracted: usize = axes_self.iter().map(|&a| self.shape[a]).product();
            let free_b: usize = b.len() / contracted.max(1);
            let free_other: usize = other.len() / contracted.max(1);
            let macs = (free_b * contracted * free_other) as u64;
            self.cluster.record_macs(rank, macs, b.is_real() && other.is_real());
            blocks.push(out);
        }

        // Result shape: free axes of self (original order) then free axes of other.
        let free_self: Vec<usize> = (0..ndim).filter(|a| !axes_self.contains(a)).collect();
        let mut out_shape: Vec<usize> = free_self.iter().map(|&a| self.shape[a]).collect();
        out_shape
            .extend((0..other.ndim()).filter(|a| !axes_other.contains(a)).map(|a| other.dim(a)));
        // The distributed axis is now the first free axis of the block result;
        // its global position is the index of dist_axis within free_self.
        let new_dist_axis = free_self
            .iter()
            .position(|&a| a == self.dist_axis)
            .unwrap_or_else(|| unreachable!("the distributed axis is never contracted"));

        // Per-block results currently have the distributed axis first already
        // (it was axis 0 of the block and was not contracted), so they are in
        // the canonical slab layout.
        DistTensor {
            cluster: self.cluster.clone(),
            shape: out_shape,
            dist_axis: new_dist_axis,
            blocks,
        }
    }

    /// View the tensor as a block-row distributed matrix by matricizing with
    /// the first `split` axes as rows. Requires the distributed axis to be
    /// axis 0 and `split >= 1` so the row blocks of the matricization
    /// coincide with the tensor slabs (no data movement).
    pub fn unfold_as_dist_matrix(&self, split: usize) -> DistMatrix {
        assert_eq!(self.dist_axis, 0, "unfold_as_dist_matrix: distributed axis must be 0");
        assert!(split >= 1 && split <= self.shape.len());
        let cols: usize = self.shape[split..].iter().product();
        let full_rows: usize = self.shape[..split].iter().product();
        // Per-rank blocks come directly from the slabs (free of charge: the
        // row-major slab layout is already the matricized layout). This works
        // because the slab row-block boundaries align with multiples of the
        // per-index row count.
        let ranges = self.cluster.block_ranges(self.shape[0]);
        let rows_per_index: usize = self.shape[1..split].iter().product();
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (b, &(_start, len)) in self.blocks.iter().zip(ranges.iter()) {
            let rows = len * rows_per_index;
            let mut block = Matrix::from_vec(rows, cols, b.data().to_vec())
                .unwrap_or_else(|_| unreachable!("unfold: slab layout is the matricized layout"));
            if b.is_real() {
                // The zero-copy matricization of a hinted slab keeps the
                // hint, so the distributed factorizations stay real.
                block.assume_real();
            }
            blocks.push(block);
        }
        DistMatrix::from_blocks(&self.cluster, full_rows, cols, blocks)
    }

    /// Inner product `<self, other>` of two tensors with the same shape and
    /// distribution (local partial sums + allreduce of one scalar).
    pub fn inner(&self, other: &DistTensor) -> koala_linalg::C64 {
        assert_eq!(self.shape, other.shape, "inner: shape mismatch");
        assert_eq!(self.dist_axis, other.dist_axis, "inner: distribution mismatch");
        let mut acc = koala_linalg::C64::ZERO;
        for (rank, (a, b)) in self.blocks.iter().zip(other.blocks.iter()).enumerate() {
            self.cluster.record_macs(rank, a.len() as u64, a.is_real() && b.is_real());
            acc += a
                .inner(b)
                .unwrap_or_else(|_| unreachable!("inner: same distribution, same block shapes"));
        }
        self.cluster.record_collective(self.cluster.nranks() - 1, 2);
        acc
    }
}

use koala_linalg::Matrix;

#[cfg(test)]
mod tests {
    use super::*;
    use koala_tensor::tensordot as local_tensordot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        nranks: usize,
        shape: &[usize],
        axis: usize,
        seed: u64,
    ) -> (Cluster, Tensor, DistTensor) {
        let cluster = Cluster::new(nranks);
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::random(shape, &mut rng);
        let d = DistTensor::scatter(&cluster, &t, axis);
        (cluster, t, d)
    }

    #[test]
    fn scatter_gather_roundtrip_axis0() {
        let (_c, t, d) = setup(3, &[7, 4, 3], 0, 1);
        assert!(d.allgather().approx_eq(&t, 0.0));
        assert!(d.gather().approx_eq(&t, 0.0));
    }

    #[test]
    fn scatter_gather_roundtrip_inner_axis() {
        let (_c, t, d) = setup(4, &[3, 9, 2], 1, 2);
        assert_eq!(d.dist_axis(), 1);
        assert!(d.allgather().approx_eq(&t, 0.0));
    }

    #[test]
    fn redistribution_changes_axis_and_is_counted() {
        let (c, t, d) = setup(3, &[6, 5, 4], 0, 3);
        c.reset_stats();
        let r = d.redistribute(2);
        assert_eq!(r.dist_axis(), 2);
        assert!(r.allgather().approx_eq(&t, 0.0));
        assert_eq!(c.stats().redistributions, 1);
        // Redistributing onto the same axis is free.
        c.reset_stats();
        let same = r.redistribute(2);
        assert_eq!(c.stats().redistributions, 0);
        assert!(same.allgather().approx_eq(&t, 0.0));
    }

    #[test]
    fn tensordot_replicated_matches_local() {
        let (_c, t, d) = setup(3, &[5, 4, 3], 0, 4);
        let mut rng = StdRng::seed_from_u64(40);
        let other = Tensor::random(&[4, 3, 6], &mut rng);
        let out = d.tensordot_replicated(&other, &[1, 2], &[0, 1]);
        let expected = local_tensordot(&t, &other, &[1, 2], &[0, 1]).unwrap();
        assert_eq!(out.shape(), expected.shape());
        assert!(out.allgather().approx_eq(&expected, 1e-10));
    }

    #[test]
    fn tensordot_replicated_keeps_distribution_without_comm() {
        let (c, _t, d) = setup(4, &[8, 3, 3], 0, 5);
        let mut rng = StdRng::seed_from_u64(41);
        let other = Tensor::random(&[3, 2], &mut rng);
        c.reset_stats();
        let out = d.tensordot_replicated(&other, &[2], &[0]);
        let stats = c.stats();
        assert_eq!(stats.bytes_communicated, 0, "no communication expected");
        assert_eq!(out.dist_axis(), 0);
        assert!(stats.total_flops() > 0);
    }

    #[test]
    #[should_panic(expected = "distributed axis must stay free")]
    fn contracting_the_distributed_axis_panics() {
        let (_c, _t, d) = setup(2, &[4, 3], 0, 6);
        let other = Tensor::zeros(&[4, 2]);
        let _ = d.tensordot_replicated(&other, &[0], &[0]);
    }

    #[test]
    fn unfold_as_dist_matrix_matches_local_unfold() {
        let (_c, t, d) = setup(3, &[6, 2, 5], 0, 7);
        let m = d.unfold_as_dist_matrix(2);
        assert_eq!(m.shape(), (12, 5));
        assert!(m.max_diff_replicated(&t.unfold(2)) < 1e-14);
    }

    #[test]
    fn realness_propagates_through_scatter_contract_and_unfold() {
        let cluster = Cluster::new(3);
        let mut rng = StdRng::seed_from_u64(90);
        let t = Tensor::random_real(&[6, 4, 3], &mut rng);
        let d = DistTensor::scatter(&cluster, &t, 0);
        assert!(d.is_real(), "slabs of a real tensor stay hinted");
        assert!(d.unfold_as_dist_matrix(1).is_real(), "zero-copy matricization keeps the hint");
        let other = Tensor::random_real(&[3, 2], &mut rng);
        cluster.reset_stats();
        let out = d.tensordot_replicated(&other, &[2], &[0]);
        assert!(out.is_real(), "free-mode contraction of real operands stays real");
        assert!(out.allgather().is_real(), "gather keeps the hint");
        let stats = cluster.stats();
        assert_eq!(stats.total_flops(), 0, "real contraction bills no complex MACs");
        assert!(stats.total_real_macs() > 0);
        assert!(d.redistribute(1).is_real(), "redistribution keeps the hint");
    }

    #[test]
    fn inner_product_matches_local() {
        let (_c, t, d) = setup(4, &[5, 3, 2], 0, 8);
        let cluster2 = d.cluster().clone();
        let mut rng = StdRng::seed_from_u64(80);
        let u = Tensor::random(&[5, 3, 2], &mut rng);
        let du = DistTensor::scatter(&cluster2, &u, 0);
        let got = d.inner(&du);
        let want = t.inner(&u).unwrap();
        assert!(got.approx_eq(want, 1e-10));
    }
}
