//! 2-D processor grids and 1-D index distributions.
//!
//! The paper's distributed backend (Cyclops + ScaLAPACK) maps every tensor
//! onto a logical `p x q` **processor grid**: matrix rows are dealt to the
//! `p` grid rows, matrix columns to the `q` grid columns, and every
//! collective moves data along one grid dimension only. This module provides
//! the two pieces of bookkeeping that layout needs:
//!
//! * [`ProcGrid`] — the `p x q` factorization of the rank count and the
//!   `rank <-> (grid row, grid col)` numbering,
//! * [`Dist1D`] — how one global index range is split across the parts of a
//!   grid dimension, either as contiguous [`Layout1D::Blocks`] (the classic
//!   block-row split, and the layout `DistTensor` slabs arrive in) or as
//!   ScaLAPACK-style [`Layout1D::Cyclic`] block-cyclic rounds.
//!
//! ## Layout rules
//!
//! A distributed matrix owned by rank `(r, c)` stores the global rows
//! assigned to grid row `r` and the global columns assigned to grid column
//! `c`, both **in increasing global order**. For a cyclic layout with block
//! size `b`, global index `i` belongs to part `(i / b) % parts` at local
//! offset `(i / (b * parts)) * b + i % b` — consecutive global blocks are
//! dealt round-robin, so growing or shrinking the matrix redistributes O(1)
//! blocks per rank and every rank's share of any contiguous index range is
//! balanced to within one block. [`Dist1D::segments`] flattens either layout
//! into ordered `(owner, global range, local offset)` runs, which is the
//! only view the SUMMA loop needs: a communication round broadcasts one
//! segment (or a refinement of one), and within a segment local storage is
//! contiguous.

use crate::cluster::block_ranges;

/// A logical `p x q` grid over the ranks of a cluster.
///
/// Rank numbering is row-major: grid coordinate `(r, c)` is rank
/// `r * q + c`, matching the default MPI Cartesian communicator order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcGrid {
    p: usize,
    q: usize,
}

impl ProcGrid {
    /// A `p x q` grid. Both dimensions must be nonzero.
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p > 0 && q > 0, "ProcGrid: both grid dimensions must be nonzero");
        ProcGrid { p, q }
    }

    /// The most nearly square grid for `nranks` ranks: `p` is the largest
    /// divisor of `nranks` not exceeding `sqrt(nranks)` and `q = nranks / p`,
    /// so `p <= q` and `p * q == nranks` always. Squarer grids minimise the
    /// `O(n^2 (p + q) / P)` per-rank SUMMA traffic.
    pub fn square_for(nranks: usize) -> Self {
        assert!(nranks > 0, "ProcGrid: need at least one rank");
        let mut p = 1;
        let mut d = 1;
        while d * d <= nranks {
            if nranks.is_multiple_of(d) {
                p = d;
            }
            d += 1;
        }
        ProcGrid { p, q: nranks / p }
    }

    /// A `nranks x 1` grid: the pure block-row distribution every
    /// [`crate::DistMatrix::scatter`] uses by default.
    pub fn column(nranks: usize) -> Self {
        ProcGrid::new(nranks, 1)
    }

    /// Number of grid rows `p`.
    pub fn rows(&self) -> usize {
        self.p
    }

    /// Number of grid columns `q`.
    pub fn cols(&self) -> usize {
        self.q
    }

    /// Total ranks `p * q`.
    pub fn nranks(&self) -> usize {
        self.p * self.q
    }

    /// Rank of grid coordinate `(r, c)` (row-major).
    pub fn rank_of(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.p && c < self.q, "ProcGrid: coordinate out of range");
        r * self.q + c
    }

    /// Grid coordinate `(r, c)` of `rank`.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.nranks(), "ProcGrid: rank out of range");
        (rank / self.q, rank % self.q)
    }
}

/// How one global index dimension is laid out across the parts of a grid
/// dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout1D {
    /// Contiguous blocks: part `i` owns the `i`-th range; the vector holds
    /// the per-part lengths (which must sum to the global extent). This is
    /// the layout of [`crate::DistMatrix::scatter`] /
    /// [`crate::DistMatrix::from_blocks`] and of `DistTensor` slabs.
    Blocks(Vec<usize>),
    /// ScaLAPACK block-cyclic rounds of the given block size: global block
    /// `t` (indices `t*block .. (t+1)*block`) belongs to part `t % parts`.
    Cyclic {
        /// Elements per cyclic block (the last global block may be ragged).
        block: usize,
    },
}

/// One contiguous ownership run of a [`Dist1D`]: global indices
/// `start..start + len` live on `owner` at local offsets
/// `local_start..local_start + len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seg {
    /// Owning part (a grid row or grid column index).
    pub owner: usize,
    /// First global index of the run.
    pub start: usize,
    /// Run length.
    pub len: usize,
    /// Offset of the run within the owner's local storage.
    pub local_start: usize,
}

/// A 1-D distribution: a global extent split over `parts` grid slots by a
/// [`Layout1D`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dist1D {
    n: usize,
    parts: usize,
    layout: Layout1D,
}

impl Dist1D {
    /// Contiguous layout from explicit per-part lengths.
    pub fn blocks(lens: Vec<usize>) -> Self {
        let n = lens.iter().sum();
        let parts = lens.len();
        assert!(parts > 0, "Dist1D: need at least one part");
        Dist1D { n, parts, layout: Layout1D::Blocks(lens) }
    }

    /// Contiguous layout with nearly equal block lengths (the split
    /// [`crate::cluster::block_ranges`] produces).
    pub fn balanced(n: usize, parts: usize) -> Self {
        Dist1D::blocks(block_ranges(n, parts).into_iter().map(|(_, len)| len).collect())
    }

    /// A single part owning the whole extent (a replicated / undistributed
    /// dimension).
    pub fn whole(n: usize) -> Self {
        Dist1D::blocks(vec![n])
    }

    /// Block-cyclic layout with the given block size.
    pub fn cyclic(n: usize, parts: usize, block: usize) -> Self {
        assert!(parts > 0, "Dist1D: need at least one part");
        assert!(block > 0, "Dist1D: cyclic block size must be nonzero");
        Dist1D { n, parts, layout: Layout1D::Cyclic { block } }
    }

    /// Global extent.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of parts (the size of the grid dimension this layout maps to).
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The layout rule.
    pub fn layout(&self) -> &Layout1D {
        &self.layout
    }

    /// Number of global indices owned by `part`.
    pub fn local_len(&self, part: usize) -> usize {
        assert!(part < self.parts, "Dist1D: part out of range");
        match &self.layout {
            Layout1D::Blocks(lens) => lens[part],
            Layout1D::Cyclic { block } => {
                // Sum the owned blocks directly; only the globally-last block
                // can be ragged, so every term but (possibly) the final one
                // is `block`.
                let nblocks = self.n.div_ceil(*block);
                let mut len = 0;
                let mut t = part;
                while t < nblocks {
                    len += (self.n - t * block).min(*block);
                    t += self.parts;
                }
                len
            }
        }
    }

    /// Owning part of global index `i`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n, "Dist1D: index out of range");
        match &self.layout {
            Layout1D::Blocks(lens) => {
                let mut pos = 0;
                for (part, &len) in lens.iter().enumerate() {
                    pos += len;
                    if i < pos {
                        return part;
                    }
                }
                self.parts - 1
            }
            Layout1D::Cyclic { block } => (i / block) % self.parts,
        }
    }

    /// Offset of global index `i` within its owner's local storage.
    pub fn local_of(&self, i: usize) -> usize {
        assert!(i < self.n, "Dist1D: index out of range");
        match &self.layout {
            Layout1D::Blocks(lens) => {
                let mut pos = 0;
                for &len in lens.iter() {
                    if i < pos + len {
                        return i - pos;
                    }
                    pos += len;
                }
                unreachable!("Dist1D: index not covered by blocks")
            }
            Layout1D::Cyclic { block } => (i / (block * self.parts)) * block + i % block,
        }
    }

    /// A distribution of `n` indices over `parts` slots in the same layout
    /// *family* as `self`: cyclic layouts keep their block size, contiguous
    /// layouts become the balanced split. This is how the transposed-operand
    /// SUMMA variants derive the output distribution when an `Op` turns an
    /// operand's grid-column dimension into a result dimension that must live
    /// on the grid rows (or vice versa): the extent and the part count both
    /// change, but the layout family of the source operand is preserved.
    pub fn like_parts(&self, n: usize, parts: usize) -> Dist1D {
        match &self.layout {
            Layout1D::Cyclic { block } => Dist1D::cyclic(n, parts, *block),
            Layout1D::Blocks(_) => Dist1D::balanced(n, parts),
        }
    }

    /// The same partition with every index expanded into `factor` consecutive
    /// indices (`n * factor` total, same owners, same relative order). This is
    /// the row layout of a matricization that moves `factor` trailing column
    /// indices into the rows — each owned index becomes `factor` owned rows,
    /// and the owner's local data stays byte-identical, which is what makes
    /// `DistTensor::unfold_as_dist_matrix` zero-copy across splits. `factor`
    /// must be nonzero.
    pub fn scale(&self, factor: usize) -> Dist1D {
        assert!(factor > 0, "Dist1D: scale factor must be nonzero");
        match &self.layout {
            Layout1D::Cyclic { block } => {
                Dist1D::cyclic(self.n * factor, self.parts, block * factor)
            }
            Layout1D::Blocks(lens) => Dist1D::blocks(lens.iter().map(|l| l * factor).collect()),
        }
    }

    /// Ordered ownership runs covering `0..n` exactly once. Within each run
    /// local storage is contiguous, which is what lets the SUMMA loop slice
    /// broadcast panels straight out of the owner's block.
    pub fn segments(&self) -> Vec<Seg> {
        match &self.layout {
            Layout1D::Blocks(lens) => {
                let mut segs = Vec::with_capacity(self.parts);
                let mut start = 0;
                for (owner, &len) in lens.iter().enumerate() {
                    if len > 0 {
                        segs.push(Seg { owner, start, len, local_start: 0 });
                    }
                    start += len;
                }
                segs
            }
            Layout1D::Cyclic { block } => {
                let nblocks = self.n.div_ceil(*block);
                let mut segs = Vec::with_capacity(nblocks);
                for t in 0..nblocks {
                    let start = t * block;
                    let len = (self.n - start).min(*block);
                    segs.push(Seg {
                        owner: t % self.parts,
                        start,
                        len,
                        local_start: (t / self.parts) * block,
                    });
                }
                segs
            }
        }
    }
}

/// One SUMMA depth panel: a maximal global range owned by a single part in
/// *both* of two distributions of the same extent (the common refinement of
/// their segment lists).
#[derive(Debug, Clone, Copy)]
pub struct Panel {
    /// First global index of the panel.
    pub start: usize,
    /// Panel width.
    pub len: usize,
    /// Owner part and local offset in the first distribution.
    pub a_owner: usize,
    /// Local offset of the panel within `a_owner`'s storage.
    pub a_local: usize,
    /// Owner part in the second distribution.
    pub b_owner: usize,
    /// Local offset of the panel within `b_owner`'s storage.
    pub b_local: usize,
}

/// Common refinement of two segmentations of the same global extent: the
/// panels a SUMMA execution iterates over. Both inputs must cover the same
/// range (checked).
pub fn refine(a: &Dist1D, b: &Dist1D) -> Vec<Panel> {
    assert_eq!(a.n(), b.n(), "refine: extents differ");
    let sa = a.segments();
    let sb = b.segments();
    let mut panels = Vec::new();
    let (mut ia, mut ib) = (0, 0);
    let mut pos = 0;
    while pos < a.n() {
        let seg_a = &sa[ia];
        let seg_b = &sb[ib];
        debug_assert!(seg_a.start <= pos && pos < seg_a.start + seg_a.len);
        debug_assert!(seg_b.start <= pos && pos < seg_b.start + seg_b.len);
        let end = (seg_a.start + seg_a.len).min(seg_b.start + seg_b.len);
        panels.push(Panel {
            start: pos,
            len: end - pos,
            a_owner: seg_a.owner,
            a_local: seg_a.local_start + (pos - seg_a.start),
            b_owner: seg_b.owner,
            b_local: seg_b.local_start + (pos - seg_b.start),
        });
        if end == seg_a.start + seg_a.len {
            ia += 1;
        }
        if end == seg_b.start + seg_b.len {
            ib += 1;
        }
        pos = end;
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grids_factor_the_rank_count() {
        for (n, p, q) in [(1, 1, 1), (4, 2, 2), (6, 2, 3), (7, 1, 7), (12, 3, 4), (16, 4, 4)] {
            let g = ProcGrid::square_for(n);
            assert_eq!((g.rows(), g.cols()), (p, q), "nranks = {n}");
            assert_eq!(g.nranks(), n);
        }
    }

    #[test]
    fn rank_numbering_roundtrips() {
        let g = ProcGrid::new(3, 4);
        for rank in 0..12 {
            let (r, c) = g.coords_of(rank);
            assert_eq!(g.rank_of(r, c), rank);
        }
    }

    #[test]
    fn cyclic_layout_covers_everything_exactly_once() {
        for (n, parts, block) in [(10, 3, 2), (7, 2, 3), (5, 4, 1), (0, 3, 2), (9, 3, 4)] {
            let d = Dist1D::cyclic(n, parts, block);
            let segs = d.segments();
            let total: usize = segs.iter().map(|s| s.len).sum();
            assert_eq!(total, n);
            // Per-part local offsets are contiguous and start at zero.
            let mut local_pos = vec![0usize; parts];
            let mut covered = vec![false; n];
            for s in &segs {
                assert_eq!(s.local_start, local_pos[s.owner], "segments in local order");
                local_pos[s.owner] += s.len;
                for i in s.start..s.start + s.len {
                    assert_eq!(d.owner(i), s.owner);
                    assert_eq!(d.local_of(i), s.local_start + (i - s.start));
                    covered[i] = true;
                }
            }
            assert!(covered.iter().all(|&c| c));
            for part in 0..parts {
                assert_eq!(d.local_len(part), local_pos[part], "local_len consistent");
            }
        }
    }

    #[test]
    fn blocks_layout_matches_balanced_ranges() {
        let d = Dist1D::balanced(10, 3);
        assert_eq!(d.local_len(0), 4);
        assert_eq!(d.local_len(1), 3);
        assert_eq!(d.local_len(2), 3);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(4), 1);
        assert_eq!(d.local_of(4), 0);
        assert_eq!(d.owner(9), 2);
        assert_eq!(d.local_of(9), 2);
    }

    #[test]
    fn like_parts_keeps_the_layout_family() {
        let cyc = Dist1D::cyclic(10, 2, 3).like_parts(14, 4);
        assert_eq!((cyc.n(), cyc.parts()), (14, 4));
        // Block size 3 survives: the first run of 3 goes to part 0, the next
        // to part 1, and so on.
        assert_eq!(cyc.owner(0), 0);
        assert_eq!(cyc.owner(3), 1);
        assert_eq!(cyc.owner(9), 3);
        assert_eq!(cyc.owner(12), 0);
        let blk = Dist1D::blocks(vec![1, 9]).like_parts(10, 3);
        assert_eq!((blk.n(), blk.parts()), (10, 3));
        // Contiguous layouts come back balanced, whatever the input lens.
        assert_eq!(blk.local_len(0), 4);
        assert_eq!(blk.local_len(1), 3);
        assert_eq!(blk.local_len(2), 3);
    }

    #[test]
    fn scale_expands_every_index_in_place() {
        for d in [Dist1D::cyclic(7, 3, 2), Dist1D::blocks(vec![4, 0, 3])] {
            let s = d.scale(5);
            assert_eq!(s.n(), 35);
            assert_eq!(s.parts(), d.parts());
            for i in 0..d.n() {
                for j in 0..5 {
                    assert_eq!(s.owner(5 * i + j), d.owner(i), "owners expand blockwise");
                    assert_eq!(
                        s.local_of(5 * i + j),
                        5 * d.local_of(i) + j,
                        "local data order kept"
                    );
                }
            }
        }
    }

    #[test]
    fn refinement_respects_both_segmentations() {
        let a = Dist1D::cyclic(11, 2, 3); // blocks of 3, owners 0,1,0,1
        let b = Dist1D::balanced(11, 3); // lens 4,4,3
        let panels = refine(&a, &b);
        let total: usize = panels.iter().map(|p| p.len).sum();
        assert_eq!(total, 11);
        let mut pos = 0;
        for p in &panels {
            assert_eq!(p.start, pos, "panels are contiguous");
            // Each panel lies inside one segment of each layout.
            for i in p.start..p.start + p.len {
                assert_eq!(a.owner(i), p.a_owner);
                assert_eq!(b.owner(i), p.b_owner);
            }
            assert_eq!(a.local_of(p.start), p.a_local);
            assert_eq!(b.local_of(p.start), p.b_local);
            pos += p.len;
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_grid_dimension_rejected() {
        let _ = ProcGrid::new(0, 2);
    }
}
