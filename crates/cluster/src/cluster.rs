//! The virtual cluster: a bulk-synchronous simulation of a distributed-memory
//! machine.
//!
//! The original Koala library runs on Cyclops/MPI across many nodes. Rust MPI
//! bindings are immature and this reproduction runs on a single machine, so
//! the cluster is *simulated*: every rank owns private buffers, every
//! operation moves data between those buffers exactly as the corresponding
//! MPI collective would, and the [`CommStats`] counters record the traffic.
//! Numerical results are bit-for-bit the result of the distributed data flow;
//! only wall-clock parallelism is replaced by the cost model in
//! [`crate::stats::CostModel`].

use crate::fault::{FaultEvent, FaultLog, FaultPlan, FaultSite, FaultState};
use crate::grid::ProcGrid;
use crate::stats::{CommStats, RoundCost, ELEM_BYTES};
use koala_linalg::C64;
use std::sync::Arc;
use std::sync::Mutex;
use std::sync::MutexGuard;

/// Poison-tolerant lock: counters and fault state stay usable even if a
/// panicking thread was holding the mutex (the data is plain accounting, so
/// the worst case after a poisoned write is a partially-updated tally — far
/// better than cascading the panic through every later record call).
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Handle to a virtual cluster of `nranks` ranks.
#[derive(Clone)]
pub struct Cluster {
    nranks: usize,
    stats: Arc<Mutex<CommStats>>,
    faults: Arc<Mutex<Option<FaultState>>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cluster(nranks={})", self.nranks)
    }
}

impl Cluster {
    /// Create a cluster with the given number of ranks.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "cluster needs at least one rank");
        Cluster {
            nranks,
            stats: Arc::new(Mutex::new(CommStats::new(nranks))),
            faults: Arc::new(Mutex::new(None)),
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> CommStats {
        lock_ignore_poison(&self.stats).clone()
    }

    /// Reset the statistics and return the previous values.
    pub fn reset_stats(&self) -> CommStats {
        let mut guard = lock_ignore_poison(&self.stats);
        std::mem::replace(&mut *guard, CommStats::new(self.nranks))
    }

    /// Arm a [`FaultPlan`] on this cluster: every subsequent communication
    /// event consults the plan, and whatever strikes is recorded in the
    /// [`FaultLog`]. Replaces any previously armed plan (and its log).
    pub fn arm_faults(&self, plan: FaultPlan) {
        *lock_ignore_poison(&self.faults) = Some(FaultState::new(plan));
    }

    /// Disarm fault injection, returning the log of everything that struck.
    pub fn disarm_faults(&self) -> FaultLog {
        lock_ignore_poison(&self.faults).take().map(FaultState::into_log).unwrap_or_default()
    }

    /// Snapshot of the armed plan's fault log (empty when no plan is armed).
    pub fn fault_log(&self) -> FaultLog {
        lock_ignore_poison(&self.faults).as_ref().map(|s| s.log().clone()).unwrap_or_default()
    }

    /// Whether a fault plan is currently armed.
    pub fn faults_armed(&self) -> bool {
        lock_ignore_poison(&self.faults).is_some()
    }

    /// Consult the armed plan (if any) about `site` on delivery `attempt`.
    /// Injections are tallied on the global
    /// [`koala_error::recovery`] counters as well as the local log.
    pub(crate) fn fault_decision(&self, site: FaultSite, attempt: usize) -> Option<FaultEvent> {
        let ev = lock_ignore_poison(&self.faults).as_mut().and_then(|s| s.decide(site, attempt));
        if ev.is_some() {
            koala_error::recovery::note_fault_injected();
        }
        ev
    }

    /// Slowdown factor of `rank` under the armed plan (1.0 when no plan is
    /// armed or the rank is full speed).
    fn slow_factor(&self, rank: usize) -> f64 {
        lock_ignore_poison(&self.faults).as_ref().map_or(1.0, |s| s.plan().slow_factor(rank))
    }

    /// The most nearly square [`ProcGrid`] over this cluster's ranks — the
    /// default grid for SUMMA-distributed matrices.
    pub fn grid(&self) -> ProcGrid {
        ProcGrid::square_for(self.nranks)
    }

    /// Record a point-to-point transfer of `elems` complex numbers.
    ///
    /// Payload traffic is also billed to the scoped
    /// [`WorkMeter`](koala_exec::meter::WorkMeter) byte counter, so per-job
    /// receipts capture wire volume alongside arithmetic work.
    pub fn record_p2p(&self, elems: usize) {
        koala_exec::meter::add_bytes(elems as u64 * ELEM_BYTES);
        let mut s = lock_ignore_poison(&self.stats);
        s.bytes_communicated += elems as u64 * ELEM_BYTES;
        s.messages += 1;
    }

    /// Record `elems` complex elements of ABFT checksum metadata riding along
    /// with payload traffic. Billed to [`CommStats::checksum_bytes`] only, so
    /// the fault-free payload formulas stay exact.
    pub fn record_checksum(&self, elems: usize) {
        let mut s = lock_ignore_poison(&self.stats);
        s.checksum_bytes += elems as u64 * ELEM_BYTES;
    }

    /// Record one recovery retransmission of `elems` complex elements
    /// (payload plus checksum) after a detected fault.
    pub fn record_retry(&self, elems: usize) {
        let mut s = lock_ignore_poison(&self.stats);
        s.retries += 1;
        s.retry_bytes += elems as u64 * ELEM_BYTES;
    }

    /// Record a broadcast within a rank group (a SUMMA grid row or column):
    /// `elems` complex numbers cross the wires in total — i.e. the per-
    /// receiver panel volume summed over all `receivers` — in one message to
    /// each receiver. A group of one rank broadcasts nothing and records
    /// nothing.
    pub fn record_bcast(&self, elems: usize, receivers: usize) {
        if receivers == 0 {
            return;
        }
        koala_exec::meter::add_bytes(elems as u64 * ELEM_BYTES);
        let mut s = lock_ignore_poison(&self.stats);
        s.bytes_communicated += elems as u64 * ELEM_BYTES;
        s.messages += receivers as u64;
        s.collectives += 1;
    }

    /// Record a collective that moves `elems` complex numbers in total across
    /// the interconnect in `rounds` communication rounds.
    pub fn record_collective(&self, elems: usize, rounds: usize) {
        koala_exec::meter::add_bytes(elems as u64 * ELEM_BYTES);
        let mut s = lock_ignore_poison(&self.stats);
        s.bytes_communicated += elems as u64 * ELEM_BYTES;
        s.messages += (rounds * (self.nranks.saturating_sub(1))) as u64;
        s.collectives += 1;
    }

    /// Record a full redistribution (Cyclops-style reshape) of `elems`
    /// complex numbers.
    pub fn record_redistribution(&self, elems: usize) {
        {
            let mut s = lock_ignore_poison(&self.stats);
            s.redistributions += 1;
        }
        self.record_collective(elems, 1);
    }

    /// Note one full gather: an operation that materialises an entire
    /// distributed object on a rank (or on all ranks). Traffic is billed by
    /// the caller; this only bumps the [`CommStats::full_gathers`] counter
    /// that the no-gather-fallback tests pin to zero.
    pub fn record_full_gather(&self) {
        let mut s = lock_ignore_poison(&self.stats);
        s.full_gathers += 1;
    }

    /// Record one pipelined round (a SUMMA depth step) for the overlap-aware
    /// cost model. The payload and MACs in `round` must *also* have been
    /// billed to the aggregate counters — a round refines the schedule, it
    /// does not add work. Per-rank MACs are scaled by any armed slow-rank
    /// fault factors so the round ledger matches the aggregate one.
    pub fn record_round(&self, mut round: RoundCost) {
        for (rank, m) in round.rank_cmacs.iter_mut().enumerate() {
            *m = self.scale_work(rank, *m);
        }
        for (rank, m) in round.rank_rmacs.iter_mut().enumerate() {
            *m = self.scale_work(rank, *m);
        }
        let mut s = lock_ignore_poison(&self.stats);
        s.rounds.push(round);
    }

    /// Scale billed work by the rank's slowdown factor under an armed fault
    /// plan: a [`FaultKind::Slow`](crate::fault::FaultKind::Slow) rank's
    /// operations take proportionally longer, which the bulk-synchronous
    /// cost model sees as extra time on that rank's compute critical path.
    /// With no plan armed (the fault-free default) this is the identity.
    fn scale_work(&self, rank: usize, work: u64) -> u64 {
        let f = self.slow_factor(rank);
        if f == 1.0 {
            work
        } else {
            (work as f64 * f) as u64
        }
    }

    /// Record `flops` complex multiply-adds executed by `rank`.
    pub fn record_flops(&self, rank: usize, flops: u64) {
        let flops = self.scale_work(rank, flops);
        let mut s = lock_ignore_poison(&self.stats);
        s.rank_flops[rank] += flops;
    }

    /// Record `macs` real multiply-adds executed by `rank` (work the rank ran
    /// on the real-only kernel; 2 hardware flops each vs 8 for a complex MAC).
    pub fn record_real_macs(&self, rank: usize, macs: u64) {
        let macs = self.scale_work(rank, macs);
        let mut s = lock_ignore_poison(&self.stats);
        s.rank_real_macs[rank] += macs;
    }

    /// Record `macs` multiply-adds executed by `rank`, billed to the real or
    /// complex counter according to `real` — the kernel the operands'
    /// realness hints select.
    pub fn record_macs(&self, rank: usize, macs: u64, real: bool) {
        if real {
            self.record_real_macs(rank, macs);
        } else {
            self.record_flops(rank, macs);
        }
    }

    /// Record identical `flops` on every rank (replicated computation).
    pub fn record_flops_all(&self, flops: u64) {
        let mut s = lock_ignore_poison(&self.stats);
        for f in &mut s.rank_flops {
            *f += flops;
        }
    }

    /// Record identical `macs` on every rank, billed real or complex
    /// according to `real` (replicated computation).
    pub fn record_macs_all(&self, macs: u64, real: bool) {
        let mut s = lock_ignore_poison(&self.stats);
        let counters = if real { &mut s.rank_real_macs } else { &mut s.rank_flops };
        for f in counters.iter_mut() {
            *f += macs;
        }
    }

    /// Split a length `n` into `nranks` nearly equal contiguous blocks;
    /// returns the (start, len) of each rank's block. Matches the block
    /// distribution Cyclops uses for the slowest-varying index.
    pub fn block_ranges(&self, n: usize) -> Vec<(usize, usize)> {
        block_ranges(n, self.nranks)
    }

    /// Rank that owns global index `i` of a length-`n` block distribution.
    pub fn owner_of(&self, n: usize, i: usize) -> usize {
        let ranges = self.block_ranges(n);
        ranges
            .iter()
            .position(|&(start, len)| i >= start && i < start + len)
            .unwrap_or(self.nranks - 1)
    }
}

/// Split `n` items into `parts` nearly equal contiguous blocks.
pub fn block_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push((start, len));
        start += len;
    }
    ranges
}

/// Per-rank buffer of complex numbers: the "local memory" of each rank.
pub type RankBuffer = Vec<C64>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_everything_exactly_once() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (5, 8), (0, 3), (16, 4)] {
            let ranges = block_ranges(n, p);
            assert_eq!(ranges.len(), p);
            let total: usize = ranges.iter().map(|r| r.1).sum();
            assert_eq!(total, n);
            // Contiguity.
            let mut pos = 0;
            for &(start, len) in &ranges {
                assert_eq!(start, pos);
                pos += len;
            }
            // Balance: sizes differ by at most 1.
            let max = ranges.iter().map(|r| r.1).max().unwrap_or(0);
            let min = ranges.iter().map(|r| r.1).min().unwrap_or(0);
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn owner_lookup_matches_ranges() {
        let c = Cluster::new(3);
        let ranges = c.block_ranges(10);
        for i in 0..10 {
            let owner = c.owner_of(10, i);
            let (start, len) = ranges[owner];
            assert!(i >= start && i < start + len);
        }
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let c = Cluster::new(4);
        c.record_p2p(10);
        c.record_collective(100, 1);
        c.record_redistribution(50);
        c.record_flops(2, 1000);
        c.record_flops_all(10);
        let s = c.stats();
        assert_eq!(s.bytes_communicated, (10 + 100 + 50) as u64 * ELEM_BYTES);
        assert_eq!(s.collectives, 2);
        assert_eq!(s.redistributions, 1);
        assert_eq!(s.messages, 1 + 3 + 3);
        assert_eq!(s.rank_flops, vec![10, 10, 1010, 10]);
        let old = c.reset_stats();
        assert_eq!(old, s);
        assert_eq!(c.stats().bytes_communicated, 0);
    }

    #[test]
    fn bcast_and_split_mac_accounting() {
        let c = Cluster::new(6);
        assert_eq!((c.grid().rows(), c.grid().cols()), (2, 3));
        c.record_bcast(30, 2);
        c.record_bcast(10, 0); // group of one: nothing crosses a wire
        c.record_macs(1, 100, true);
        c.record_macs(1, 50, false);
        c.record_macs_all(5, true);
        let s = c.stats();
        assert_eq!(s.bytes_communicated, 30 * ELEM_BYTES);
        assert_eq!(s.messages, 2);
        assert_eq!(s.collectives, 1);
        assert_eq!(s.rank_real_macs, vec![5, 105, 5, 5, 5, 5]);
        assert_eq!(s.rank_flops[1], 50);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Cluster::new(0);
    }
}
