//! The virtual cluster: a bulk-synchronous simulation of a distributed-memory
//! machine.
//!
//! The original Koala library runs on Cyclops/MPI across many nodes. Rust MPI
//! bindings are immature and this reproduction runs on a single machine, so
//! the cluster is *simulated*: every rank owns private buffers, every
//! operation moves data between those buffers exactly as the corresponding
//! MPI collective would, and the [`CommStats`] counters record the traffic.
//! Numerical results are bit-for-bit the result of the distributed data flow;
//! only wall-clock parallelism is replaced by the cost model in
//! [`crate::stats::CostModel`].

use crate::grid::ProcGrid;
use crate::stats::{CommStats, ELEM_BYTES};
use koala_linalg::C64;
use std::sync::Arc;
use std::sync::Mutex;

/// Handle to a virtual cluster of `nranks` ranks.
#[derive(Clone)]
pub struct Cluster {
    nranks: usize,
    stats: Arc<Mutex<CommStats>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cluster(nranks={})", self.nranks)
    }
}

impl Cluster {
    /// Create a cluster with the given number of ranks.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "cluster needs at least one rank");
        Cluster { nranks, stats: Arc::new(Mutex::new(CommStats::new(nranks))) }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> CommStats {
        self.stats.lock().expect("stats mutex poisoned").clone()
    }

    /// Reset the statistics and return the previous values.
    pub fn reset_stats(&self) -> CommStats {
        let mut guard = self.stats.lock().expect("stats mutex poisoned");
        std::mem::replace(&mut *guard, CommStats::new(self.nranks))
    }

    /// The most nearly square [`ProcGrid`] over this cluster's ranks — the
    /// default grid for SUMMA-distributed matrices.
    pub fn grid(&self) -> ProcGrid {
        ProcGrid::square_for(self.nranks)
    }

    /// Record a point-to-point transfer of `elems` complex numbers.
    pub fn record_p2p(&self, elems: usize) {
        let mut s = self.stats.lock().expect("stats mutex poisoned");
        s.bytes_communicated += elems as u64 * ELEM_BYTES;
        s.messages += 1;
    }

    /// Record a broadcast within a rank group (a SUMMA grid row or column):
    /// `elems` complex numbers cross the wires in total — i.e. the per-
    /// receiver panel volume summed over all `receivers` — in one message to
    /// each receiver. A group of one rank broadcasts nothing and records
    /// nothing.
    pub fn record_bcast(&self, elems: usize, receivers: usize) {
        if receivers == 0 {
            return;
        }
        let mut s = self.stats.lock().expect("stats mutex poisoned");
        s.bytes_communicated += elems as u64 * ELEM_BYTES;
        s.messages += receivers as u64;
        s.collectives += 1;
    }

    /// Record a collective that moves `elems` complex numbers in total across
    /// the interconnect in `rounds` communication rounds.
    pub fn record_collective(&self, elems: usize, rounds: usize) {
        let mut s = self.stats.lock().expect("stats mutex poisoned");
        s.bytes_communicated += elems as u64 * ELEM_BYTES;
        s.messages += (rounds * (self.nranks.saturating_sub(1))) as u64;
        s.collectives += 1;
    }

    /// Record a full redistribution (Cyclops-style reshape) of `elems`
    /// complex numbers.
    pub fn record_redistribution(&self, elems: usize) {
        {
            let mut s = self.stats.lock().expect("stats mutex poisoned");
            s.redistributions += 1;
        }
        self.record_collective(elems, 1);
    }

    /// Record `flops` complex multiply-adds executed by `rank`.
    pub fn record_flops(&self, rank: usize, flops: u64) {
        let mut s = self.stats.lock().expect("stats mutex poisoned");
        s.rank_flops[rank] += flops;
    }

    /// Record `macs` real multiply-adds executed by `rank` (work the rank ran
    /// on the real-only kernel; 2 hardware flops each vs 8 for a complex MAC).
    pub fn record_real_macs(&self, rank: usize, macs: u64) {
        let mut s = self.stats.lock().expect("stats mutex poisoned");
        s.rank_real_macs[rank] += macs;
    }

    /// Record `macs` multiply-adds executed by `rank`, billed to the real or
    /// complex counter according to `real` — the kernel the operands'
    /// realness hints select.
    pub fn record_macs(&self, rank: usize, macs: u64, real: bool) {
        if real {
            self.record_real_macs(rank, macs);
        } else {
            self.record_flops(rank, macs);
        }
    }

    /// Record identical `flops` on every rank (replicated computation).
    pub fn record_flops_all(&self, flops: u64) {
        let mut s = self.stats.lock().expect("stats mutex poisoned");
        for f in &mut s.rank_flops {
            *f += flops;
        }
    }

    /// Record identical `macs` on every rank, billed real or complex
    /// according to `real` (replicated computation).
    pub fn record_macs_all(&self, macs: u64, real: bool) {
        let mut s = self.stats.lock().expect("stats mutex poisoned");
        let counters = if real { &mut s.rank_real_macs } else { &mut s.rank_flops };
        for f in counters.iter_mut() {
            *f += macs;
        }
    }

    /// Split a length `n` into `nranks` nearly equal contiguous blocks;
    /// returns the (start, len) of each rank's block. Matches the block
    /// distribution Cyclops uses for the slowest-varying index.
    pub fn block_ranges(&self, n: usize) -> Vec<(usize, usize)> {
        block_ranges(n, self.nranks)
    }

    /// Rank that owns global index `i` of a length-`n` block distribution.
    pub fn owner_of(&self, n: usize, i: usize) -> usize {
        let ranges = self.block_ranges(n);
        ranges
            .iter()
            .position(|&(start, len)| i >= start && i < start + len)
            .unwrap_or(self.nranks - 1)
    }
}

/// Split `n` items into `parts` nearly equal contiguous blocks.
pub fn block_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push((start, len));
        start += len;
    }
    ranges
}

/// Per-rank buffer of complex numbers: the "local memory" of each rank.
pub type RankBuffer = Vec<C64>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_everything_exactly_once() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (5, 8), (0, 3), (16, 4)] {
            let ranges = block_ranges(n, p);
            assert_eq!(ranges.len(), p);
            let total: usize = ranges.iter().map(|r| r.1).sum();
            assert_eq!(total, n);
            // Contiguity.
            let mut pos = 0;
            for &(start, len) in &ranges {
                assert_eq!(start, pos);
                pos += len;
            }
            // Balance: sizes differ by at most 1.
            let max = ranges.iter().map(|r| r.1).max().unwrap_or(0);
            let min = ranges.iter().map(|r| r.1).min().unwrap_or(0);
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn owner_lookup_matches_ranges() {
        let c = Cluster::new(3);
        let ranges = c.block_ranges(10);
        for i in 0..10 {
            let owner = c.owner_of(10, i);
            let (start, len) = ranges[owner];
            assert!(i >= start && i < start + len);
        }
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let c = Cluster::new(4);
        c.record_p2p(10);
        c.record_collective(100, 1);
        c.record_redistribution(50);
        c.record_flops(2, 1000);
        c.record_flops_all(10);
        let s = c.stats();
        assert_eq!(s.bytes_communicated, (10 + 100 + 50) as u64 * ELEM_BYTES);
        assert_eq!(s.collectives, 2);
        assert_eq!(s.redistributions, 1);
        assert_eq!(s.messages, 1 + 3 + 3);
        assert_eq!(s.rank_flops, vec![10, 10, 1010, 10]);
        let old = c.reset_stats();
        assert_eq!(old, s);
        assert_eq!(c.stats().bytes_communicated, 0);
    }

    #[test]
    fn bcast_and_split_mac_accounting() {
        let c = Cluster::new(6);
        assert_eq!((c.grid().rows(), c.grid().cols()), (2, 3));
        c.record_bcast(30, 2);
        c.record_bcast(10, 0); // group of one: nothing crosses a wire
        c.record_macs(1, 100, true);
        c.record_macs(1, 50, false);
        c.record_macs_all(5, true);
        let s = c.stats();
        assert_eq!(s.bytes_communicated, 30 * ELEM_BYTES);
        assert_eq!(s.messages, 2);
        assert_eq!(s.collectives, 1);
        assert_eq!(s.rank_real_macs, vec![5, 105, 5, 5, 5, 5]);
        assert_eq!(s.rank_flops[1], 50);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Cluster::new(0);
    }
}
