//! Overlapped SUMMA must be observationally identical to serialized SUMMA.
//!
//! On a multi-thread executor pool, `matmul_dist`'s stationary-C schedule
//! overlaps round `t + 1`'s panel broadcasts with round `t`'s local GEMMs on
//! the task graph. This suite pins that the overlap is *pure scheduling*:
//! for the same operands, the gathered product is bit-identical to a
//! 1-thread (fully serialized) run and the entire [`CommStats`] ledger —
//! bytes, messages, collectives, checksum bytes, per-rank MACs, and the
//! per-round [`RoundCost`] list the overlap cost model prices — is equal as
//! a value, round for round.

use koala_cluster::{Cluster, CommStats, DistMatrix, ProcGrid};
use koala_linalg::gemm::Op;
use koala_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// The executor pool is process-wide; serialize the tests in this binary.
static SERIAL: Mutex<()> = Mutex::new(());

/// Run one distributed product at a given thread count and return the
/// gathered result plus the cluster's complete stats ledger.
#[allow(clippy::too_many_arguments)]
fn run_case(
    threads: usize,
    grid: ProcGrid,
    opa: Op,
    opb: Op,
    a: &Matrix,
    b: &Matrix,
    blocks: (usize, usize, usize),
) -> (Matrix, CommStats) {
    koala_exec::set_threads(threads);
    let (mb, kb, nb) = blocks;
    let cluster = Cluster::new(grid.nranks());
    let da = DistMatrix::scatter_block_cyclic(&cluster, a, grid, mb, kb);
    let db = DistMatrix::scatter_block_cyclic(&cluster, b, grid, kb + 1, nb);
    cluster.reset_stats();
    let c = da.matmul_dist_op(opa, opb, &db).expect("fault-free SUMMA cannot fail");
    let gathered = c.gather_unaccounted();
    (gathered, cluster.stats())
}

fn assert_bit_identical(serial: &Matrix, overlapped: &Matrix, what: &str) {
    assert_eq!(serial.shape(), overlapped.shape(), "{what}: shapes differ");
    assert_eq!(serial.is_real(), overlapped.is_real(), "{what}: realness hints differ");
    for (i, (x, y)) in serial.data().iter().zip(overlapped.data().iter()).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: element {i} differs bitwise: {x:?} vs {y:?}"
        );
    }
}

/// Serialized (1 thread) vs overlapped (4 threads) SUMMA: bit-identical
/// gathered product and an equal `CommStats` ledger, across grid shapes and
/// op pairs, on a depth extent long enough for many rounds of overlap.
#[test]
fn overlapped_summa_matches_serialized_ledger_and_bits() {
    let _guard = SERIAL.lock().unwrap();
    let grids = [(2usize, 2usize), (2, 3), (1, 4)];
    let ops = [(Op::None, Op::None), (Op::Transpose, Op::None), (Op::None, Op::Adjoint)];
    let mut seed = 9_000u64;
    for &(p, q) in &grids {
        for &(opa, opb) in &ops {
            let grid = ProcGrid::new(p, q);
            let mut rng = StdRng::seed_from_u64(seed);
            seed += 1;
            // Effective product is (21 x 130) * (130 x 17): the depth extent
            // refines into many panels (block 3 vs 4), i.e. many rounds.
            let (m, k, n) = (21usize, 130, 17);
            let a = if opa == Op::None {
                Matrix::random(m, k, &mut rng)
            } else {
                Matrix::random(k, m, &mut rng)
            };
            let b = if opb == Op::None {
                Matrix::random(k, n, &mut rng)
            } else {
                Matrix::random(n, k, &mut rng)
            };
            let what = format!("{p}x{q} grid, ops {opa:?}/{opb:?}");

            let (c1, s1) = run_case(1, grid, opa, opb, &a, &b, (2, 3, 2));
            let (c4, s4) = run_case(4, grid, opa, opb, &a, &b, (2, 3, 2));
            assert_bit_identical(&c1, &c4, &what);
            assert!(!s1.rounds.is_empty(), "{what}: no rounds recorded");
            assert_eq!(s1.rounds, s4.rounds, "{what}: per-round ledger differs");
            assert_eq!(s1, s4, "{what}: CommStats ledger differs");
        }
    }
    koala_exec::set_threads(1);
}

/// The real-workload variant: realness hints survive the overlapped
/// schedule, zero complex MACs are billed, and the ledgers agree.
#[test]
fn overlapped_real_summa_matches_serialized() {
    let _guard = SERIAL.lock().unwrap();
    let grid = ProcGrid::new(2, 2);
    let mut rng = StdRng::seed_from_u64(77);
    let (m, k, n) = (19usize, 90, 23);
    let a = Matrix::random_real(m, k, &mut rng);
    let b = Matrix::random_real(k, n, &mut rng);

    let (c1, s1) = run_case(1, grid, Op::None, Op::None, &a, &b, (4, 5, 4));
    let (c4, s4) = run_case(4, grid, Op::None, Op::None, &a, &b, (4, 5, 4));
    assert!(c1.is_real() && c4.is_real());
    assert_bit_identical(&c1, &c4, "real SUMMA");
    assert_eq!(s1, s4, "real SUMMA: CommStats ledger differs");
    assert_eq!(s4.total_flops(), 0, "real workload billed complex MACs");
    assert_eq!(s4.total_real_macs(), (m * n * k) as u64);
    koala_exec::set_threads(1);
}
