//! Property suite for transposed-operand SUMMA: every `Op` pair on every grid
//! shape must agree with the replicated packed GEMM, bill its per-rank MACs
//! exactly, keep realness hints end to end, and move exactly the number of
//! words the closed-form traffic count ([`DistMatrix::summa_traffic_elems`])
//! predicts — for every stationary variant that supports the pair.

use koala_cluster::{Cluster, DistMatrix, ProcGrid, SummaVariant, ELEM_BYTES};
use koala_linalg::gemm::{gemm, Op};
use koala_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

const OPS: [Op; 3] = [Op::None, Op::Transpose, Op::Adjoint];
const VARIANTS: [SummaVariant; 3] =
    [SummaVariant::StationaryC, SummaVariant::StationaryA, SummaVariant::StationaryB];

/// The grid shapes of the suite: degenerate, block-row, block-column, square,
/// and rectangular.
fn grids() -> Vec<ProcGrid> {
    vec![
        ProcGrid::new(1, 1),
        ProcGrid::new(3, 1),
        ProcGrid::new(1, 3),
        ProcGrid::new(2, 2),
        ProcGrid::new(2, 3),
    ]
}

/// Effective `(m, k, n)` product shapes: square, tall, wide, ragged against
/// the block sizes, and empty.
fn shapes() -> Vec<(usize, usize, usize)> {
    vec![(6, 6, 6), (13, 4, 3), (3, 5, 11), (7, 9, 5), (4, 0, 3), (0, 4, 3), (4, 3, 0)]
}

/// Stored operands for an effective `m x k x n` product under `(opa, opb)`:
/// the wire carries raw untransposed slices, so the stored layouts are the
/// transposes of the effective ones where an op applies.
fn operands(opa: Op, opb: Op, m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = match opa {
        Op::None => Matrix::random(m, k, &mut rng),
        _ => Matrix::random(k, m, &mut rng),
    };
    let b = match opb {
        Op::None => Matrix::random(k, n, &mut rng),
        _ => Matrix::random(n, k, &mut rng),
    };
    (a, b)
}

fn scatter_pair(
    cluster: &Cluster,
    grid: ProcGrid,
    a: &Matrix,
    b: &Matrix,
) -> (DistMatrix, DistMatrix) {
    // Deliberately different block sizes so the depth panels are a genuine
    // common refinement of the two layouts.
    let da = DistMatrix::scatter_block_cyclic(cluster, a, grid, 2, 3);
    let db = DistMatrix::scatter_block_cyclic(cluster, b, grid, 4, 2);
    (da, db)
}

#[test]
fn every_op_pair_matches_replicated_gemm_on_every_grid() {
    let mut seed = 2000;
    for grid in grids() {
        let cluster = Cluster::new(grid.nranks());
        for (m, k, n) in shapes() {
            for opa in OPS {
                for opb in OPS {
                    seed += 1;
                    let (a, b) = operands(opa, opb, m, k, n, seed);
                    let (da, db) = scatter_pair(&cluster, grid, &a, &b);
                    cluster.reset_stats();
                    let c = da.matmul_dist_op(opa, opb, &db).expect("fault-free SUMMA");
                    let reference = gemm(opa, opb, &a, &b);
                    let diff = c.max_diff_replicated(&reference);
                    assert!(
                        diff < 1e-12 * (k.max(1) as f64),
                        "({opa:?}, {opb:?}) {m}x{k}x{n} on {}x{}: {diff:e}",
                        grid.rows(),
                        grid.cols(),
                    );
                    assert_eq!(c.shape(), (m, n));
                    let stats = cluster.stats();
                    assert_eq!(stats.full_gathers, 0, "no gather fallback on any op pair");
                    assert_eq!(
                        stats.total_flops() + stats.total_real_macs(),
                        (m * n * k) as u64,
                        "MAC billing must reconstruct exactly m*n*k"
                    );
                }
            }
        }
    }
}

#[test]
fn every_stationary_variant_bills_its_exact_traffic_formula() {
    let mut seed = 4000;
    for grid in grids() {
        let cluster = Cluster::new(grid.nranks());
        for (m, k, n) in shapes() {
            for opa in OPS {
                for opb in OPS {
                    seed += 1;
                    let (a, b) = operands(opa, opb, m, k, n, seed);
                    let (da, db) = scatter_pair(&cluster, grid, &a, &b);
                    let reference = gemm(opa, opb, &a, &b);
                    let mut best = u64::MAX;
                    for variant in VARIANTS {
                        let Some(elems) = da.summa_traffic_elems(opa, opb, &db, variant) else {
                            continue; // variant does not support this op pair
                        };
                        best = best.min(elems);
                        cluster.reset_stats();
                        let c = da
                            .matmul_dist_variant(opa, opb, &db, variant)
                            .expect("fault-free SUMMA");
                        assert!(
                            c.max_diff_replicated(&reference) < 1e-12 * (k.max(1) as f64),
                            "{variant:?} ({opa:?}, {opb:?}) {m}x{k}x{n} mismatch"
                        );
                        let stats = cluster.stats();
                        assert_eq!(
                            stats.bytes_communicated,
                            elems * ELEM_BYTES,
                            "{variant:?} ({opa:?}, {opb:?}) {m}x{k}x{n} on {}x{}: \
                             measured traffic must equal the closed form",
                            grid.rows(),
                            grid.cols(),
                        );
                    }
                    // The auto-dispatcher must achieve the cheapest formula.
                    cluster.reset_stats();
                    let _ = da.matmul_dist_op(opa, opb, &db).expect("fault-free SUMMA");
                    assert_eq!(cluster.stats().bytes_communicated, best * ELEM_BYTES);
                }
            }
        }
    }
}

#[test]
fn stationary_c_traffic_is_zero_on_one_rank_and_exact_on_square_grids() {
    // Degenerate grid: everything is local.
    let cluster = Cluster::new(1);
    let (a, b) = operands(Op::Transpose, Op::Adjoint, 8, 5, 7, 77);
    let (da, db) = scatter_pair(&cluster, ProcGrid::new(1, 1), &a, &b);
    cluster.reset_stats();
    let _ = da.matmul_dist_op(Op::Transpose, Op::Adjoint, &db).unwrap();
    assert_eq!(cluster.stats().bytes_communicated, 0);

    // NoOp square case: the classic m*k*(q-1) + k*n*(p-1) SUMMA volume.
    let (p, q, nelem) = (2usize, 2usize, 16usize);
    let cluster = Cluster::new(p * q);
    let (a, b) = operands(Op::None, Op::None, nelem, nelem, nelem, 78);
    let grid = ProcGrid::new(p, q);
    let da = DistMatrix::scatter_block_cyclic(&cluster, &a, grid, 4, 4);
    let db = DistMatrix::scatter_block_cyclic(&cluster, &b, grid, 4, 4);
    let formula = da
        .summa_traffic_elems(Op::None, Op::None, &db, SummaVariant::StationaryC)
        .expect("stationary-C supports every op pair");
    assert_eq!(formula as usize, nelem * nelem * (q - 1) + nelem * nelem * (p - 1));
    cluster.reset_stats();
    let _ = da.matmul_dist_variant(Op::None, Op::None, &db, SummaVariant::StationaryC).unwrap();
    assert_eq!(cluster.stats().bytes_communicated, formula * ELEM_BYTES);
}

#[test]
fn real_hinted_transposed_summa_runs_zero_complex_macs_on_any_rank() {
    let grid = ProcGrid::new(2, 3);
    let cluster = Cluster::new(grid.nranks());
    let (m, k, n) = (12, 7, 9);
    for opa in OPS {
        for opb in OPS {
            let mut rng = StdRng::seed_from_u64(5000);
            let a = match opa {
                Op::None => Matrix::random_real(m, k, &mut rng),
                _ => Matrix::random_real(k, m, &mut rng),
            };
            let b = match opb {
                Op::None => Matrix::random_real(k, n, &mut rng),
                _ => Matrix::random_real(n, k, &mut rng),
            };
            let (da, db) = scatter_pair(&cluster, grid, &a, &b);
            assert!(da.is_real() && db.is_real());
            for variant in VARIANTS {
                if da.summa_traffic_elems(opa, opb, &db, variant).is_none() {
                    continue;
                }
                cluster.reset_stats();
                let c = da.matmul_dist_variant(opa, opb, &db, variant).unwrap();
                assert!(c.is_real(), "{variant:?} ({opa:?}, {opb:?}): result lost the hint");
                assert!(c.max_diff_replicated(&gemm(opa, opb, &a, &b)) < 1e-12 * k as f64);
                let stats = cluster.stats();
                for (rank, &flops) in stats.rank_flops.iter().enumerate() {
                    assert_eq!(
                        flops, 0,
                        "{variant:?} ({opa:?}, {opb:?}): rank {rank} ran complex MACs"
                    );
                }
                assert_eq!(stats.total_real_macs(), (m * n * k) as u64);
            }
        }
    }
}

/// Satellite audit: each stationary variant bills every rank exactly its
/// modelled local share of the `m*n*k` MACs.
#[test]
fn per_rank_mac_billing_matches_the_modelled_local_work() {
    let grid = ProcGrid::new(2, 3);
    let cluster = Cluster::new(grid.nranks());
    let (m, k, n) = (13, 8, 11);
    for opa in OPS {
        for opb in OPS {
            let (a, b) = operands(opa, opb, m, k, n, 6000);
            let (da, db) = scatter_pair(&cluster, grid, &a, &b);
            for variant in VARIANTS {
                if da.summa_traffic_elems(opa, opb, &db, variant).is_none() {
                    continue;
                }
                cluster.reset_stats();
                let c = da.matmul_dist_variant(opa, opb, &db, variant).unwrap();
                let stats = cluster.stats();
                for rank in 0..cluster.nranks() {
                    let (r, gc) = grid.coords_of(rank);
                    // Modelled local share: the dims each dataflow keeps
                    // stationary on rank (r, gc), times the full depth/output
                    // extent it streams through.
                    let expected = match variant {
                        // Output stays: m_loc * n_loc * k.
                        SummaVariant::StationaryC => {
                            c.row_dist().local_len(r) * c.col_dist().local_len(gc) * k
                        }
                        // A stays: m_loc * k_loc * n (A is stored untransposed
                        // here because stationary-A requires opA = None).
                        SummaVariant::StationaryA => {
                            da.row_dist().local_len(r) * da.col_dist().local_len(gc) * n
                        }
                        // B stays: k_loc * n_loc * m.
                        SummaVariant::StationaryB => {
                            db.row_dist().local_len(r) * db.col_dist().local_len(gc) * m
                        }
                    } as u64;
                    assert_eq!(
                        stats.rank_flops[rank] + stats.rank_real_macs[rank],
                        expected,
                        "{variant:?} ({opa:?}, {opb:?}): rank {rank} billing"
                    );
                }
                assert_eq!(stats.total_flops() + stats.total_real_macs(), (m * n * k) as u64);
            }
        }
    }
}
