//! SUMMA property suite: distributed `matmul_dist` must agree with the local
//! packed GEMM across grid shapes, block-cyclic layouts, ragged edges, empty
//! operands, and realness hints — and must communicate the SUMMA volume
//! (`O(n^2 / sqrt(P))` words per rank), not the gather-everything volume of
//! the block-row baseline.

use koala_cluster::{Cluster, DistMatrix, ProcGrid, ELEM_BYTES};
use koala_linalg::{matmul, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Distribute `a` and `b` block-cyclically on `grid` (with deliberately
/// different depth block sizes to exercise the panel refinement) and check
/// the SUMMA product against the local kernel.
fn check_case(
    grid: ProcGrid,
    m: usize,
    k: usize,
    n: usize,
    blocks: (usize, usize, usize),
    seed: u64,
) {
    let (mb, kb, nb) = blocks;
    let cluster = Cluster::new(grid.nranks());
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::random(m, k, &mut rng);
    let b = Matrix::random(k, n, &mut rng);
    let da = DistMatrix::scatter_block_cyclic(&cluster, &a, grid, mb, kb);
    // B uses kb + 1 for its row blocks: the depth panels of the SUMMA loop
    // are the common refinement of the two layouts.
    let db = DistMatrix::scatter_block_cyclic(&cluster, &b, grid, kb + 1, nb);
    let c = da.matmul_dist(&db).expect("fault-free SUMMA cannot fail");
    let reference = matmul(&a, &b);
    let diff = c.max_diff_replicated(&reference);
    assert!(
        diff < 1e-12 * (k.max(1) as f64),
        "SUMMA mismatch on {}x{} grid, {m}x{k}x{n} (blocks {mb}/{kb}/{nb}): {diff:e}",
        grid.rows(),
        grid.cols(),
    );
    assert_eq!(c.shape(), (m, n));
    let stats = cluster.stats();
    assert_eq!(
        stats.total_flops() + stats.total_real_macs(),
        (m * n * k) as u64,
        "per-rank MAC billing must reconstruct exactly m*n*k"
    );
}

#[test]
fn summa_matches_local_gemm_across_grids_and_layouts() {
    let shapes = [
        (7usize, 9usize, 5usize),
        (16, 16, 16),
        (1, 1, 1),
        (13, 4, 21),
        (3, 130, 2), // many depth panels
    ];
    let grids = [(1usize, 1usize), (1, 4), (4, 1), (2, 2), (2, 3)];
    let mut seed = 1000;
    for &(p, q) in &grids {
        for &(m, k, n) in &shapes {
            for &blocks in &[(2usize, 3usize, 2usize), (5, 4, 7)] {
                check_case(ProcGrid::new(p, q), m, k, n, blocks, seed);
                seed += 1;
            }
        }
    }
}

#[test]
fn summa_handles_empty_operands() {
    for &(m, k, n) in &[(0usize, 4usize, 3usize), (4, 0, 3), (4, 3, 0), (0, 0, 0)] {
        check_case(ProcGrid::new(2, 2), m, k, n, (2, 2, 2), 7000 + (m + 2 * k + 4 * n) as u64);
    }
}

#[test]
fn summa_on_real_operands_runs_zero_complex_macs_per_rank() {
    let grid = ProcGrid::new(2, 3);
    let cluster = Cluster::new(grid.nranks());
    let mut rng = StdRng::seed_from_u64(42);
    let (m, k, n) = (17, 23, 11);
    let a = Matrix::random_real(m, k, &mut rng);
    let b = Matrix::random_real(k, n, &mut rng);
    let da = DistMatrix::scatter_block_cyclic(&cluster, &a, grid, 4, 5);
    let db = DistMatrix::scatter_block_cyclic(&cluster, &b, grid, 5, 4);
    assert!(da.is_real() && db.is_real());
    cluster.reset_stats();
    let c = da.matmul_dist(&db).expect("fault-free SUMMA cannot fail");
    assert!(c.is_real(), "the SUMMA product of hinted-real operands is marked real");
    assert!(c.gather_unaccounted().is_real());
    assert!(c.max_diff_replicated(&matmul(&a, &b)) < 1e-12 * k as f64);
    let stats = cluster.stats();
    for (rank, &flops) in stats.rank_flops.iter().enumerate() {
        assert_eq!(flops, 0, "rank {rank} executed complex MACs on a real workload");
    }
    assert_eq!(stats.total_real_macs(), (m * n * k) as u64);
}

#[test]
fn summa_communicates_o_n2_over_sqrt_p_words_per_rank() {
    // Square problem on a square grid: the SUMMA traffic is exactly
    // m*k*(q-1) + k*n*(p-1) words, i.e. 2 n^2 (sqrt(P) - 1) total and
    // O(n^2 / sqrt(P)) per rank. The block-row baseline (the old
    // gather-everything matmul_dist dataflow) moves k*n*(P-1) words.
    let n = 64usize;
    let (p, q) = (4usize, 4usize);
    let nranks = p * q;
    let cluster = Cluster::new(nranks);
    let mut rng = StdRng::seed_from_u64(99);
    let a = Matrix::random(n, n, &mut rng);
    let b = Matrix::random(n, n, &mut rng);

    let grid = ProcGrid::new(p, q);
    let da = DistMatrix::scatter_block_cyclic(&cluster, &a, grid, 8, 8);
    let db = DistMatrix::scatter_block_cyclic(&cluster, &b, grid, 8, 8);
    cluster.reset_stats();
    let _ = da.matmul_dist(&db).unwrap();
    let summa_bytes = cluster.reset_stats().bytes_communicated;
    let expected_words = (n * n * (q - 1) + n * n * (p - 1)) as u64;
    assert_eq!(summa_bytes, expected_words * ELEM_BYTES, "SUMMA volume formula");

    // Per-rank bound: at most 2 n^2 / sqrt(P) words.
    let per_rank_words = expected_words / nranks as u64;
    let bound = (2.0 * (n * n) as f64 / (nranks as f64).sqrt()) as u64;
    assert!(
        per_rank_words <= bound,
        "per-rank SUMMA traffic {per_rank_words} exceeds 2 n^2 / sqrt(P) = {bound}"
    );

    // The block-row layout degenerates to allgather-B: k*n*(P-1) words.
    let ra = DistMatrix::scatter(&cluster, &a);
    let rb = DistMatrix::scatter(&cluster, &b);
    cluster.reset_stats();
    let _ = ra.matmul_dist(&rb).unwrap();
    let gather_bytes = cluster.reset_stats().bytes_communicated;
    assert_eq!(gather_bytes, (n * n * (nranks - 1)) as u64 * ELEM_BYTES);
    assert!(
        summa_bytes * 2 < gather_bytes,
        "SUMMA ({summa_bytes} B) should communicate far less than the \
         gather-everything path ({gather_bytes} B) on a {p}x{q} grid"
    );
}

#[test]
fn summa_rejects_mismatched_grids_and_shapes() {
    let cluster = Cluster::new(4);
    let a = Matrix::zeros(4, 4);
    let da = DistMatrix::scatter_block_cyclic(&cluster, &a, ProcGrid::new(2, 2), 2, 2);
    let db_wrong_grid = DistMatrix::scatter(&cluster, &a);
    let r = std::panic::catch_unwind(|| da.matmul_dist(&db_wrong_grid));
    assert!(r.is_err(), "mismatched grids must be rejected");
    let b = Matrix::zeros(5, 4);
    let db_wrong_shape = DistMatrix::scatter_block_cyclic(&cluster, &b, ProcGrid::new(2, 2), 2, 2);
    let r = std::panic::catch_unwind(|| da.matmul_dist(&db_wrong_shape));
    assert!(r.is_err(), "inner dimension mismatch must be rejected");
}
