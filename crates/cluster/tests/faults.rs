//! Fault-injection property suite: a seeded [`FaultPlan`] must be a pure
//! function of its seed — the same seed produces the same fault sequence and
//! the same (exactly recovered) results — across grid shapes (1x1, p x 1,
//! p x q) and ragged block-cyclic layouts, because ABFT detection happens
//! *before* a corrupted panel is accumulated, so the recovered arithmetic is
//! bit-identical to the fault-free run.

use koala_cluster::{Cluster, CommStats, DistMatrix, FaultLog, FaultPlan, ProcGrid};
use koala_linalg::gemm::{gemm, Op};
use koala_linalg::{matmul, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run one fault-injected SUMMA product; returns the gathered result, the
/// fault log, and the cluster for counter inspection.
fn faulty_summa(
    grid: ProcGrid,
    (m, k, n): (usize, usize, usize),
    (mb, kb): (usize, usize),
    mat_seed: u64,
    plan: FaultPlan,
) -> (Matrix, FaultLog) {
    let cluster = Cluster::new(grid.nranks());
    let mut rng = StdRng::seed_from_u64(mat_seed);
    let a = Matrix::random(m, k, &mut rng);
    let b = Matrix::random(k, n, &mut rng);
    let da = DistMatrix::scatter_block_cyclic(&cluster, &a, grid, mb, kb);
    // Deliberately mismatched depth blocks: the SUMMA rounds run over the
    // common (ragged) refinement of the two layouts.
    let db = DistMatrix::scatter_block_cyclic(&cluster, &b, grid, kb + 1, mb);
    cluster.arm_faults(plan);
    let c = da.matmul_dist(&db).expect("transient faults must be recovered");
    let log = cluster.disarm_faults();
    (c.gather_unaccounted(), log)
}

/// Transposed-operand analogue of [`faulty_summa`]: runs the auto-dispatched
/// `matmul_dist_op` (which routes through the stationary variants and their
/// reduction deliveries) under a fault plan, and also returns the final
/// communication counters for overhead-separation assertions.
fn faulty_summa_op(
    grid: ProcGrid,
    (m, k, n): (usize, usize, usize),
    (mb, kb): (usize, usize),
    (opa, opb): (Op, Op),
    mat_seed: u64,
    plan: FaultPlan,
) -> (Matrix, FaultLog, CommStats) {
    let cluster = Cluster::new(grid.nranks());
    let mut rng = StdRng::seed_from_u64(mat_seed);
    let a = match opa {
        Op::None => Matrix::random(m, k, &mut rng),
        _ => Matrix::random(k, m, &mut rng),
    };
    let b = match opb {
        Op::None => Matrix::random(k, n, &mut rng),
        _ => Matrix::random(n, k, &mut rng),
    };
    let da = DistMatrix::scatter_block_cyclic(&cluster, &a, grid, mb, kb);
    let db = DistMatrix::scatter_block_cyclic(&cluster, &b, grid, kb + 1, mb);
    cluster.reset_stats();
    cluster.arm_faults(plan);
    let c = da.matmul_dist_op(opa, opb, &db).expect("transient faults must be recovered");
    let log = cluster.disarm_faults();
    (c.gather_unaccounted(), log, cluster.stats())
}

fn op_pair(index: usize) -> (Op, Op) {
    const OPS: [Op; 3] = [Op::None, Op::Transpose, Op::Adjoint];
    (OPS[index / 3], OPS[index % 3])
}

/// The grid shapes the acceptance criteria call out: single rank, a column
/// of ranks, and two genuine 2-D grids (square and rectangular).
fn grid_for(index: usize) -> ProcGrid {
    match index {
        0 => ProcGrid::new(1, 1),
        1 => ProcGrid::new(3, 1),
        2 => ProcGrid::new(2, 2),
        _ => ProcGrid::new(2, 3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn same_fault_seed_gives_identical_sequence_and_identical_recovery(
        gi in 0usize..4,
        m in 1usize..14, k in 1usize..14, n in 1usize..14,
        mb in 1usize..4, kb in 1usize..4,
        mat_seed in 0u64..1_000, fault_seed in 0u64..1_000,
    ) {
        let grid = grid_for(gi);
        let plan = || FaultPlan::seeded(fault_seed).corrupt_prob(0.10).drop_prob(0.05);
        let (c1, log1) = faulty_summa(grid, (m, k, n), (mb, kb), mat_seed, plan());
        let (c2, log2) = faulty_summa(grid, (m, k, n), (mb, kb), mat_seed, plan());

        // Determinism: the fault sequence is a pure function of the seed and
        // the workload, so two identical runs inject identical faults...
        prop_assert_eq!(&log1, &log2);
        // ...and recover to bitwise-identical results.
        prop_assert!(c1.approx_eq(&c2, 0.0));
    }

    #[test]
    fn recovered_product_matches_the_fault_free_run_exactly(
        gi in 0usize..4,
        m in 1usize..14, k in 1usize..14, n in 1usize..14,
        mb in 1usize..4, kb in 1usize..4,
        mat_seed in 0u64..1_000, fault_seed in 0u64..1_000,
    ) {
        let grid = grid_for(gi);
        let plan = FaultPlan::seeded(fault_seed).corrupt_prob(0.12).drop_prob(0.06);
        let (recovered, _) = faulty_summa(grid, (m, k, n), (mb, kb), mat_seed, plan);

        // Reference 1: the same distributed product with no fault plan armed.
        // ABFT detection precedes accumulation, so recovery replays the
        // identical arithmetic: exact equality, not approximate.
        let (fault_free, empty_log) =
            faulty_summa(grid, (m, k, n), (mb, kb), mat_seed, FaultPlan::seeded(fault_seed));
        prop_assert!(empty_log.is_empty());
        prop_assert!(recovered.approx_eq(&fault_free, 0.0));

        // Reference 2: the local kernel, up to accumulation-order roundoff.
        let mut rng = StdRng::seed_from_u64(mat_seed);
        let a = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        prop_assert!(recovered.approx_eq(&matmul(&a, &b), 1e-12 * k as f64));
    }

    #[test]
    fn transposed_panels_recover_bit_identically_and_bill_overhead_separately(
        gi in 0usize..4, ops in 0usize..9,
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        mb in 1usize..4, kb in 1usize..4,
        mat_seed in 0u64..1_000, fault_seed in 0u64..1_000,
    ) {
        // A corrupted or dropped panel during *transposed* SUMMA (any op
        // pair, any stationary dataflow the dispatcher picks) must recover
        // exactly as a plain panel does: detection precedes accumulation, so
        // the recovered product is bit-identical to the fault-free run.
        let grid = grid_for(gi);
        let (opa, opb) = op_pair(ops);
        let plan = FaultPlan::seeded(fault_seed).corrupt_prob(0.12).drop_prob(0.06);
        let (recovered, log, faulted_stats) =
            faulty_summa_op(grid, (m, k, n), (mb, kb), (opa, opb), mat_seed, plan);
        let (fault_free, empty_log, clean_stats) = faulty_summa_op(
            grid, (m, k, n), (mb, kb), (opa, opb), mat_seed, FaultPlan::seeded(fault_seed),
        );
        prop_assert!(empty_log.is_empty());
        prop_assert!(recovered.approx_eq(&fault_free, 0.0));

        // The reference product still matches the local kernel.
        let mut rng = StdRng::seed_from_u64(mat_seed);
        let a = match opa {
            Op::None => Matrix::random(m, k, &mut rng),
            _ => Matrix::random(k, m, &mut rng),
        };
        let b = match opb {
            Op::None => Matrix::random(k, n, &mut rng),
            _ => Matrix::random(n, k, &mut rng),
        };
        prop_assert!(recovered.approx_eq(&gemm(opa, opb, &a, &b), 1e-12 * k as f64));

        // ABFT overhead never leaks into the payload counters: checksum and
        // retry bytes live in their own columns, so the faulted run reports
        // exactly the fault-free payload traffic and message count.
        prop_assert_eq!(faulted_stats.bytes_communicated, clean_stats.bytes_communicated);
        prop_assert_eq!(faulted_stats.messages, clean_stats.messages);
        prop_assert_eq!(faulted_stats.checksum_bytes, clean_stats.checksum_bytes);
        // Retry traffic appears only when faults were injected (an injected
        // fault on an empty panel can verify trivially, so the converse does
        // not hold), and a clean log means zero retry bytes.
        if log.is_empty() {
            prop_assert_eq!(faulted_stats.retries, 0);
            prop_assert_eq!(faulted_stats.retry_bytes, 0);
        }
        if faulted_stats.retries == 0 {
            prop_assert_eq!(faulted_stats.retry_bytes, 0);
        }
    }

    #[test]
    fn different_fault_seeds_eventually_diverge(
        gi in 1usize..4, mat_seed in 0u64..1_000, fault_seed in 0u64..1_000,
    ) {
        // High fault rates on a fixed workload: two different seeds should
        // not produce the same event sequence (overwhelmingly likely — the
        // logs differ in length or site order at these rates).
        let grid = grid_for(gi);
        let mk = (9usize, 8usize, 7usize);
        let plan_a = FaultPlan::seeded(fault_seed).corrupt_prob(0.3).drop_prob(0.2);
        let plan_b = FaultPlan::seeded(fault_seed ^ 0x5555_5555).corrupt_prob(0.3).drop_prob(0.2);
        let (ca, log_a) = faulty_summa(grid, mk, (2, 2), mat_seed, plan_a);
        let (cb, log_b) = faulty_summa(grid, mk, (2, 2), mat_seed, plan_b);
        // Both still recover to the same (correct) product...
        prop_assert!(ca.approx_eq(&cb, 0.0));
        // ...but the injected sequences differ unless both were empty.
        if !log_a.is_empty() || !log_b.is_empty() {
            prop_assert!(log_a != log_b || log_a.is_empty());
        }
    }
}
