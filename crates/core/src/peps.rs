//! The PEPS (projected entangled pair state) data structure.
//!
//! A PEPS is an `nrows x ncols` grid of rank-5 site tensors with axis
//! convention `[p, u, l, d, r]`: physical index, then the bonds to the site
//! above, to the left, below, and to the right. Bonds that stick out of the
//! lattice have dimension 1. This matches the layout used by the original
//! Koala library (a dictionary of site tensors keyed by grid position).

use koala_linalg::{Matrix, C64};
use koala_tensor::{tensordot, Tensor, TensorError};
use rand::Rng;

/// Axis index of the physical leg.
pub const AX_P: usize = 0;
/// Axis index of the bond to the site above.
pub const AX_U: usize = 1;
/// Axis index of the bond to the site on the left.
pub const AX_L: usize = 2;
/// Axis index of the bond to the site below.
pub const AX_D: usize = 3;
/// Axis index of the bond to the site on the right.
pub const AX_R: usize = 4;

/// Result alias for the PEPS layer.
pub type Result<T> = std::result::Result<T, TensorError>;

/// A grid position `(row, col)`.
pub type Site = (usize, usize);

/// Direction from one site to a neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Neighbour one row up.
    Up,
    /// Neighbour one column to the left.
    Left,
    /// Neighbour one row down.
    Down,
    /// Neighbour one column to the right.
    Right,
}

impl Direction {
    /// The axis of the site tensor associated with this direction.
    pub fn axis(self) -> usize {
        match self {
            Direction::Up => AX_U,
            Direction::Left => AX_L,
            Direction::Down => AX_D,
            Direction::Right => AX_R,
        }
    }

    /// The opposite direction (axis on the neighbouring tensor).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Up => Direction::Down,
            Direction::Left => Direction::Right,
            Direction::Down => Direction::Up,
            Direction::Right => Direction::Left,
        }
    }
}

/// A projected entangled pair state on a rectangular lattice.
#[derive(Debug, Clone)]
pub struct Peps {
    nrows: usize,
    ncols: usize,
    /// Row-major grid of site tensors `[p, u, l, d, r]`.
    tensors: Vec<Tensor>,
}

impl Peps {
    /// Build from a row-major vector of site tensors, validating shapes.
    pub fn new(nrows: usize, ncols: usize, tensors: Vec<Tensor>) -> Result<Self> {
        if nrows == 0 || ncols == 0 {
            return Err(TensorError::ShapeMismatch { context: "Peps::new: empty lattice".into() });
        }
        if tensors.len() != nrows * ncols {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "Peps::new: {} tensors for a {}x{} lattice",
                    tensors.len(),
                    nrows,
                    ncols
                ),
            });
        }
        let peps = Peps { nrows, ncols, tensors };
        peps.validate()?;
        Ok(peps)
    }

    fn validate(&self) -> Result<()> {
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                let t = self.tensor((r, c));
                if t.ndim() != 5 {
                    return Err(TensorError::ShapeMismatch {
                        context: format!("site ({r},{c}) has rank {} (expected 5)", t.ndim()),
                    });
                }
                if r == 0 && t.dim(AX_U) != 1 {
                    return Err(TensorError::ShapeMismatch {
                        context: format!("site ({r},{c}): top boundary bond must be 1"),
                    });
                }
                if r == self.nrows - 1 && t.dim(AX_D) != 1 {
                    return Err(TensorError::ShapeMismatch {
                        context: format!("site ({r},{c}): bottom boundary bond must be 1"),
                    });
                }
                if c == 0 && t.dim(AX_L) != 1 {
                    return Err(TensorError::ShapeMismatch {
                        context: format!("site ({r},{c}): left boundary bond must be 1"),
                    });
                }
                if c == self.ncols - 1 && t.dim(AX_R) != 1 {
                    return Err(TensorError::ShapeMismatch {
                        context: format!("site ({r},{c}): right boundary bond must be 1"),
                    });
                }
                if c + 1 < self.ncols && t.dim(AX_R) != self.tensor((r, c + 1)).dim(AX_L) {
                    return Err(TensorError::ShapeMismatch {
                        context: format!("horizontal bond mismatch at ({r},{c})-({r},{})", c + 1),
                    });
                }
                if r + 1 < self.nrows && t.dim(AX_D) != self.tensor((r + 1, c)).dim(AX_U) {
                    return Err(TensorError::ShapeMismatch {
                        context: format!("vertical bond mismatch at ({r},{c})-({},{c})", r + 1),
                    });
                }
            }
        }
        Ok(())
    }

    /// Product state with each site in the given single-site state vector.
    pub fn product_state(nrows: usize, ncols: usize, site_vector: &[C64]) -> Result<Self> {
        let d = site_vector.len();
        let mut site = Tensor::from_vec(&[d, 1, 1, 1, 1], site_vector.to_vec())?;
        // One-time O(d) scan so real product states (|0...0>, TFI initial
        // states) enter the evolution with the realness hint set.
        site.mark_real_if_exact();
        Peps::new(nrows, ncols, vec![site; nrows * ncols])
    }

    /// The all-zeros computational basis state |0...0> with physical dimension 2
    /// (the `computational_zeros` constructor of the paper's example listing).
    pub fn computational_zeros(nrows: usize, ncols: usize) -> Self {
        Peps::product_state(nrows, ncols, &[C64::ONE, C64::ZERO])
            .unwrap_or_else(|_| unreachable!("computational_zeros: construction cannot fail"))
    }

    /// A computational basis state given by one bit per site (row-major).
    pub fn computational_basis(nrows: usize, ncols: usize, bits: &[usize]) -> Result<Self> {
        if bits.len() != nrows * ncols {
            return Err(TensorError::ShapeMismatch {
                context: "computational_basis: wrong number of bits".into(),
            });
        }
        let tensors = bits
            .iter()
            .map(|&b| {
                let mut v = [0.0f64; 2];
                v[b] = 1.0;
                Tensor::from_real(&[2, 1, 1, 1, 1], &v)
            })
            .collect::<Result<Vec<_>>>()?;
        Peps::new(nrows, ncols, tensors)
    }

    /// Random PEPS with uniform physical and bond dimension.
    pub fn random<R: Rng + ?Sized>(
        nrows: usize,
        ncols: usize,
        phys_dim: usize,
        bond_dim: usize,
        rng: &mut R,
    ) -> Self {
        let mut tensors = Vec::with_capacity(nrows * ncols);
        for r in 0..nrows {
            for c in 0..ncols {
                let u = if r == 0 { 1 } else { bond_dim };
                let d = if r == nrows - 1 { 1 } else { bond_dim };
                let l = if c == 0 { 1 } else { bond_dim };
                let rt = if c == ncols - 1 { 1 } else { bond_dim };
                tensors.push(Tensor::random(&[phys_dim, u, l, d, rt], rng));
            }
        }
        Peps::new(nrows, ncols, tensors)
            .unwrap_or_else(|_| unreachable!("random: construction cannot fail"))
    }

    /// Random PEPS without physical indices (physical dimension 1), as used by
    /// the contraction benchmarks of Figure 8 where a one-layer network is
    /// generated directly.
    pub fn random_no_phys<R: Rng + ?Sized>(
        nrows: usize,
        ncols: usize,
        bond_dim: usize,
        rng: &mut R,
    ) -> Self {
        Peps::random(nrows, ncols, 1, bond_dim, rng)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.nrows * self.ncols
    }

    /// Linear (row-major) index of a site.
    pub fn site_index(&self, (r, c): Site) -> usize {
        debug_assert!(r < self.nrows && c < self.ncols);
        r * self.ncols + c
    }

    /// Site from a linear (row-major) index.
    pub fn site_from_index(&self, idx: usize) -> Site {
        (idx / self.ncols, idx % self.ncols)
    }

    /// Borrow one site tensor.
    pub fn tensor(&self, site: Site) -> &Tensor {
        &self.tensors[self.site_index(site)]
    }

    /// Replace one site tensor (the caller is responsible for bond consistency;
    /// `validate` can be re-run in debug builds).
    pub fn set_tensor(&mut self, site: Site, t: Tensor) {
        let idx = self.site_index(site);
        self.tensors[idx] = t;
    }

    /// All site tensors, row-major.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Physical dimension of a site.
    pub fn phys_dim(&self, site: Site) -> usize {
        self.tensor(site).dim(AX_P)
    }

    /// Largest bond dimension anywhere in the network.
    pub fn max_bond(&self) -> usize {
        let mut m = 1;
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                let t = self.tensor((r, c));
                m = m.max(t.dim(AX_D)).max(t.dim(AX_R));
            }
        }
        m
    }

    /// Total number of stored complex numbers.
    pub fn num_elements(&self) -> usize {
        self.tensors.iter().map(|t| t.len()).sum()
    }

    /// Neighbour of a site in a direction, if it exists.
    pub fn neighbor(&self, (r, c): Site, dir: Direction) -> Option<Site> {
        match dir {
            Direction::Up if r > 0 => Some((r - 1, c)),
            Direction::Down if r + 1 < self.nrows => Some((r + 1, c)),
            Direction::Left if c > 0 => Some((r, c - 1)),
            Direction::Right if c + 1 < self.ncols => Some((r, c + 1)),
            _ => None,
        }
    }

    /// Direction from `a` to `b` if they are nearest neighbours.
    pub fn direction_between(&self, a: Site, b: Site) -> Option<Direction> {
        [Direction::Up, Direction::Down, Direction::Left, Direction::Right]
            .into_iter()
            .find(|&dir| self.neighbor(a, dir) == Some(b))
    }

    /// All horizontal nearest-neighbour pairs (left site first).
    pub fn horizontal_pairs(&self) -> Vec<(Site, Site)> {
        let mut pairs = Vec::new();
        for r in 0..self.nrows {
            for c in 0..self.ncols - 1 {
                pairs.push(((r, c), (r, c + 1)));
            }
        }
        pairs
    }

    /// All vertical nearest-neighbour pairs (upper site first).
    pub fn vertical_pairs(&self) -> Vec<(Site, Site)> {
        let mut pairs = Vec::new();
        for r in 0..self.nrows - 1 {
            for c in 0..self.ncols {
                pairs.push(((r, c), (r + 1, c)));
            }
        }
        pairs
    }

    /// Multiply the state by a scalar (absorbed into the first site tensor).
    pub fn scale(&mut self, s: C64) {
        self.tensors[0] = self.tensors[0].scale(s);
    }

    /// Element-wise complex conjugate of every site tensor.
    pub fn conj(&self) -> Peps {
        Peps {
            nrows: self.nrows,
            ncols: self.ncols,
            tensors: self.tensors.iter().map(|t| t.conj()).collect(),
        }
    }

    /// Exact contraction into a dense state tensor with one physical axis per
    /// site, in row-major site order. Exponential cost — only for small
    /// lattices (used by tests and as the "state vector" reference).
    pub fn to_dense(&self) -> Result<Tensor> {
        // Contract row by row. `row_acc` for a single row has axes
        // [p_0..p_{c}, d_0..d_{c}, right_bond] after absorbing column c.
        let mut rows_dense: Vec<Tensor> = Vec::with_capacity(self.nrows);
        for r in 0..self.nrows {
            let mut acc: Option<Tensor> = None;
            for c in 0..self.ncols {
                // Site [p, u, l, d, r] with u contracted later; reorder to
                // [l, p, u, d, r] so the chain contraction is uniform.
                let site = self.tensor((r, c)).permute(&[AX_L, AX_P, AX_U, AX_D, AX_R])?;
                acc = Some(match acc {
                    None => {
                        // Drop the leading left bond of dimension 1.
                        let shape: Vec<usize> = site.shape()[1..].to_vec();
                        site.reshape(&shape)?
                    }
                    Some(prev) => {
                        // prev [.., r_prev], site [l, p, u, d, r]
                        tensordot(&prev, &site, &[prev.ndim() - 1], &[0])?
                    }
                });
            }
            // acc axes: [p0, u0, d0, p1, u1, d1, ..., r_last(=1)]
            let acc = acc.unwrap_or_else(|| unreachable!("a PEPS has at least one column"));
            let shape: Vec<usize> = acc.shape()[..acc.ndim() - 1].to_vec();
            rows_dense.push(acc.reshape(&shape)?);
        }

        // Now contract rows vertically. Each dense row has interleaved axes
        // (p, u, d) per column. Maintain an accumulated tensor with axes
        // [phys... (all absorbed rows), d_0..d_{ncols-1} (open bottom bonds)].
        let mut acc: Option<Tensor> = None;
        for (r, row) in rows_dense.into_iter().enumerate() {
            // Bring the row to axes [u_0..u_c, p_0..p_c, d_0..d_c].
            let ncols = self.ncols;
            let mut perm = Vec::with_capacity(3 * ncols);
            for block in [1usize, 0, 2] {
                for c in 0..ncols {
                    perm.push(3 * c + block);
                }
            }
            let row = row.permute(&perm)?;
            acc = Some(match acc {
                None => {
                    // Top row: upper bonds are all 1; drop them.
                    let shape: Vec<usize> = row.shape()[ncols..].to_vec();
                    row.reshape(&shape)?
                }
                Some(prev) => {
                    // prev [..phys.., d_0..d_c]; contract d's with row's u's.
                    let nd = prev.ndim();
                    let axes_prev: Vec<usize> = (nd - ncols..nd).collect();
                    let axes_row: Vec<usize> = (0..ncols).collect();
                    tensordot(&prev, &row, &axes_prev, &axes_row)?
                }
            });
            let _ = r;
        }
        // Bottom bonds are all of dimension 1; drop them.
        let acc = acc.unwrap_or_else(|| unreachable!("a PEPS has at least one row"));
        let shape: Vec<usize> = acc.shape()[..acc.ndim() - self.ncols].to_vec();
        acc.reshape(&shape)
    }

    /// Exact norm squared `<psi|psi>` via dense contraction (testing utility).
    pub fn norm_sqr_dense(&self) -> Result<f64> {
        let dense = self.to_dense()?;
        Ok(dense.inner(&dense)?.re)
    }

    /// Project the physical index of every site onto a basis state, producing
    /// a PEPS without physical indices (physical dimension 1). This is how an
    /// amplitude `<i|psi>` becomes a one-layer contraction.
    pub fn project_onto_basis(&self, bits: &[usize]) -> Result<Peps> {
        if bits.len() != self.num_sites() {
            return Err(TensorError::ShapeMismatch {
                context: "project_onto_basis: wrong number of bits".into(),
            });
        }
        let mut tensors = Vec::with_capacity(self.num_sites());
        for (t, &b) in self.tensors.iter().zip(bits.iter()) {
            if b >= t.dim(AX_P) {
                return Err(TensorError::InvalidAxes {
                    context: format!("project_onto_basis: bit value {b} exceeds physical dim"),
                });
            }
            let projected = t.select(AX_P, b)?; // [u, l, d, r]
            let shape = projected.shape().to_vec();
            let mut new_shape = vec![1];
            new_shape.extend(shape);
            tensors.push(projected.reshape(&new_shape)?);
        }
        Peps::new(self.nrows, self.ncols, tensors)
    }

    /// Merge this PEPS (as the ket) with the conjugate of `bra` into a
    /// one-layer PEPS without physical indices whose exact contraction equals
    /// `<bra|self>`. Bond dimensions multiply — this is the "naive" two-layer
    /// handling the paper describes in §III-B2.
    pub fn merge_with_bra(&self, bra: &Peps) -> Result<Peps> {
        if self.nrows != bra.nrows || self.ncols != bra.ncols {
            return Err(TensorError::ShapeMismatch {
                context: "merge_with_bra: lattice shapes differ".into(),
            });
        }
        let mut tensors = Vec::with_capacity(self.num_sites());
        for (ket, bra_t) in self.tensors.iter().zip(bra.tensors.iter()) {
            if ket.dim(AX_P) != bra_t.dim(AX_P) {
                return Err(TensorError::ShapeMismatch {
                    context: "merge_with_bra: physical dimensions differ".into(),
                });
            }
            // conj(bra)[p, ub, lb, db, rb] x ket[p, uk, lk, dk, rk], with the
            // bond-pair interleaving folded into the (cached) einsum plan:
            // [ub, uk, lb, lk, db, dk, rb, rk].
            let pair = koala_tensor::einsum("pabcd,pefgh->aebfcgdh", &[&bra_t.conj(), ket])?;
            let s = pair.shape().to_vec();
            let merged =
                pair.into_reshape(&[1, s[0] * s[1], s[2] * s[3], s[4] * s[5], s[6] * s[7]])?;
            tensors.push(merged);
        }
        Peps::new(self.nrows, self.ncols, tensors)
    }
}

/// Build a Matrix view of a one-site gate acting on physical dimension `d`
/// (helper shared by update and expectation code).
pub fn check_one_site_gate(gate: &Matrix, d: usize) -> Result<()> {
    if gate.shape() != (d, d) {
        return Err(TensorError::ShapeMismatch {
            context: format!("one-site gate must be {d}x{d}, got {:?}", gate.shape()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use koala_linalg::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_validation() {
        let p = Peps::computational_zeros(2, 3);
        assert_eq!(p.nrows(), 2);
        assert_eq!(p.ncols(), 3);
        assert_eq!(p.num_sites(), 6);
        assert_eq!(p.max_bond(), 1);
        assert!(Peps::new(0, 2, vec![]).is_err());
        assert!(Peps::new(1, 1, vec![Tensor::zeros(&[2, 1, 1, 1])]).is_err());
        // Bond mismatch.
        let bad = vec![Tensor::zeros(&[2, 1, 1, 1, 3]), Tensor::zeros(&[2, 1, 2, 1, 1])];
        assert!(Peps::new(1, 2, bad).is_err());
        // Boundary bond not 1.
        assert!(Peps::new(1, 1, vec![Tensor::zeros(&[2, 1, 1, 1, 2])]).is_err());
    }

    #[test]
    fn site_indexing_roundtrip() {
        let p = Peps::computational_zeros(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(p.site_from_index(p.site_index((r, c))), (r, c));
            }
        }
    }

    #[test]
    fn neighbors_and_directions() {
        let p = Peps::computational_zeros(3, 3);
        assert_eq!(p.neighbor((1, 1), Direction::Up), Some((0, 1)));
        assert_eq!(p.neighbor((0, 1), Direction::Up), None);
        assert_eq!(p.neighbor((1, 1), Direction::Right), Some((1, 2)));
        assert_eq!(p.direction_between((1, 1), (1, 2)), Some(Direction::Right));
        assert_eq!(p.direction_between((1, 1), (2, 1)), Some(Direction::Down));
        assert_eq!(p.direction_between((1, 1), (2, 2)), None);
        assert_eq!(p.horizontal_pairs().len(), 6);
        assert_eq!(p.vertical_pairs().len(), 6);
        assert_eq!(Direction::Left.opposite(), Direction::Right);
        assert_eq!(Direction::Up.axis(), AX_U);
    }

    #[test]
    fn computational_zeros_dense_representation() {
        let p = Peps::computational_zeros(2, 2);
        let dense = p.to_dense().unwrap();
        assert_eq!(dense.shape(), &[2, 2, 2, 2]);
        assert!(dense.get(&[0, 0, 0, 0]).approx_eq(C64::ONE, 1e-12));
        assert!((dense.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn computational_basis_amplitude() {
        let bits = [1, 0, 1, 1, 0, 0];
        let p = Peps::computational_basis(2, 3, &bits).unwrap();
        let dense = p.to_dense().unwrap();
        assert!(dense.get(&bits).approx_eq(C64::ONE, 1e-12));
        assert!((dense.norm() - 1.0).abs() < 1e-12);
        assert!(Peps::computational_basis(2, 3, &[0, 1]).is_err());
    }

    #[test]
    fn random_peps_dense_norm_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Peps::random(2, 3, 2, 2, &mut rng);
        assert_eq!(p.max_bond(), 2);
        let n = p.norm_sqr_dense().unwrap();
        assert!(n > 0.0);
    }

    #[test]
    fn projection_gives_amplitude_network() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Peps::random(2, 2, 2, 2, &mut rng);
        let dense = p.to_dense().unwrap();
        let bits = [1usize, 0, 0, 1];
        let projected = p.project_onto_basis(&bits).unwrap();
        // The projected network contracts to the amplitude.
        let amp = projected.to_dense().unwrap().item();
        assert!(amp.approx_eq(dense.get(&bits), 1e-10));
        assert!(p.project_onto_basis(&[0, 0]).is_err());
        assert!(p.project_onto_basis(&[5, 0, 0, 0]).is_err());
    }

    #[test]
    fn merged_bra_ket_contracts_to_inner_product() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Peps::random(2, 2, 2, 2, &mut rng);
        let b = Peps::random(2, 2, 2, 2, &mut rng);
        let merged = b.merge_with_bra(&a).unwrap();
        assert_eq!(merged.phys_dim((0, 0)), 1);
        assert_eq!(merged.max_bond(), 4);
        let got = merged.to_dense().unwrap().item();
        let want = a.to_dense().unwrap().inner(&b.to_dense().unwrap()).unwrap();
        assert!(got.approx_eq(want, 1e-9), "{got} vs {want}");
    }

    #[test]
    fn scale_and_conj() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = Peps::random(2, 2, 2, 2, &mut rng);
        let before = p.to_dense().unwrap();
        p.scale(c64(0.0, 2.0));
        let after = p.to_dense().unwrap();
        assert!(after.approx_eq(&before.scale(c64(0.0, 2.0)), 1e-10));
        let conj = p.conj().to_dense().unwrap();
        assert!(conj.approx_eq(&after.conj(), 1e-10));
    }
}
