//! Two-layer IBMPS contraction (paper §III-B2 and §IV-A, Table II).
//!
//! The inner product `<bra|ket>` of two PEPS is a two-layer network. The
//! naive approach contracts each bra/ket site pair into a single tensor whose
//! bond dimension is the product of the two layers' bonds, which costs
//! O(r_bra^4 r_ket^4) memory per site before the boundary contraction even
//! starts. The two-layer approach keeps the layers separate: the boundary MPS
//! still has merged (pair) bonds of dimension at most `m`, but the row that is
//! currently being absorbed enters the einsumsvd only implicitly — the
//! randomized-SVD sketch is contracted with the bra tensor and the ket tensor
//! one after the other, never with their merged product. This is what gives
//! the two-layer IBMPS column of Table II its lower time and space complexity.

use crate::peps::{Peps, Result, AX_D, AX_L, AX_P, AX_R, AX_U};
use koala_linalg::{rsvd, LinearOp, Matrix, RsvdOptions, C64};
use koala_mps::Mps;
use koala_tensor::{tensordot, Tensor, TensorError};
use rand::Rng;

/// Parameters of the two-layer IBMPS contraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLayerOptions {
    /// Truncation bond dimension `m` of the boundary MPS (in the *merged*
    /// bra-ket bond space).
    pub max_bond: usize,
    /// Subspace iterations of the randomized SVD.
    pub n_iter: usize,
    /// Oversampling columns of the randomized SVD.
    pub oversample: usize,
}

impl TwoLayerOptions {
    /// Default randomized-SVD parameters for a given boundary bond dimension.
    pub fn with_bond(max_bond: usize) -> Self {
        TwoLayerOptions { max_bond, n_iter: 2, oversample: 10 }
    }
}

/// Inner product `<bra|ket>` using the two-layer IBMPS contraction.
pub fn inner_two_layer<R: Rng + ?Sized>(
    bra: &Peps,
    ket: &Peps,
    options: TwoLayerOptions,
    rng: &mut R,
) -> Result<C64> {
    if bra.nrows() != ket.nrows() || bra.ncols() != ket.ncols() {
        return Err(TensorError::ShapeMismatch {
            context: "inner_two_layer: lattice shapes differ".into(),
        });
    }
    let nrows = bra.nrows();

    // The first row is absorbed exactly (merged): its bonds are at most
    // r_bra * r_ket wide, the same as the boundary MPS would be anyway.
    let mut boundary = merged_row_mps(bra, ket, 0)?;

    for row in 1..nrows {
        boundary = apply_two_layer_row(&boundary, bra, ket, row, options, rng)?;
    }
    boundary.contract_to_scalar()
}

/// Norm squared `<psi|psi>` via the two-layer contraction.
pub fn norm_sqr_two_layer<R: Rng + ?Sized>(
    peps: &Peps,
    options: TwoLayerOptions,
    rng: &mut R,
) -> Result<f64> {
    Ok(inner_two_layer(peps, peps, options, rng)?.re.max(0.0))
}

/// Build the boundary MPS of row `row` with the bra and ket layers merged:
/// site layout `[l_pair, d_pair, r_pair]`.
fn merged_row_mps(bra: &Peps, ket: &Peps, row: usize) -> Result<Mps> {
    let mut tensors = Vec::with_capacity(bra.ncols());
    for c in 0..bra.ncols() {
        let a = bra.tensor((row, c));
        let b = ket.tensor((row, c));
        if a.dim(AX_P) != b.dim(AX_P) {
            return Err(TensorError::ShapeMismatch {
                context: format!("inner_two_layer: physical dims differ at ({row},{c})"),
            });
        }
        if a.dim(AX_U) != 1 || b.dim(AX_U) != 1 {
            return Err(TensorError::ShapeMismatch {
                context: "merged_row_mps: expected the top row (no upward bonds)".into(),
            });
        }
        // conj(a)[p, 1, la, da, ra] x b[p, 1, lb, db, rb] -> [la, da, ra, lb, db, rb]
        let pair = tensordot(&a.conj().select(AX_U, 0)?, &b.select(AX_U, 0)?, &[0], &[0])?;
        // -> [la, lb, da, db, ra, rb] -> [(la lb), (da db), (ra rb)]
        let pair = pair.permute(&[0, 3, 1, 4, 2, 5])?;
        let s = pair.shape().to_vec();
        tensors.push(pair.into_reshape(&[s[0] * s[1], s[2] * s[3], s[4] * s[5]])?);
    }
    Mps::new(tensors)
}

/// Apply row `row` of the two-layer network to the boundary MPS with one
/// zip-up sweep whose einsumsvd keeps the bra and ket tensors separate.
fn apply_two_layer_row<R: Rng + ?Sized>(
    boundary_mps: &Mps,
    bra: &Peps,
    ket: &Peps,
    row: usize,
    options: TwoLayerOptions,
    rng: &mut R,
) -> Result<Mps> {
    let ncols = bra.ncols();
    // Bra/ket site tensors of this row, with the physical index kept.
    let a_sites: Vec<&Tensor> = (0..ncols).map(|c| bra.tensor((row, c))).collect();
    let b_sites: Vec<&Tensor> = (0..ncols).map(|c| ket.tensor((row, c))).collect();

    // Initial boundary tensor from column 0:
    // S(0) [1, u_pair, r_s] x conj(A_0)[p, uA, 1, dA, rA'] x B_0[p, uB, 1, dB, rB']
    let s0 = boundary_mps.tensor(0);
    let u_a = a_sites[0].dim(AX_U);
    let u_b = b_sites[0].dim(AX_U);
    let s0 = s0.reshape(&[u_a, u_b, s0.dim(2)])?; // [uA, uB, r_s]
    let a0 = a_sites[0].conj().select(AX_L, 0)?; // [p, uA, dA, rA']
    let b0 = b_sites[0].select(AX_L, 0)?; // [p, uB, dB, rB']
                                          // contract over uA: [uB, r_s] x ... -> do it in two steps
    let t = tensordot(&s0, &a0, &[0], &[1])?; // [uB, r_s, p, dA, rA']
    let t = tensordot(&t, &b0, &[0, 2], &[1, 0])?; // [r_s, dA, rA', dB, rB']
                                                   // boundary layout: [l(=1), d_pair, r_s, rA, rB]
    let (rs, da, rap, db, rbp) = (t.dim(0), t.dim(1), t.dim(2), t.dim(3), t.dim(4));
    let t = t.permute(&[1, 3, 0, 2, 4])?; // [dA, dB, r_s, rA', rB']
    let mut boundary = t.into_reshape(&[1, da * db, rs, rap, rbp])?;

    let mut out_tensors: Vec<Tensor> = Vec::with_capacity(ncols);

    for c in 1..ncols {
        let s = boundary_mps.tensor(c); // [r_s, u_pair, r_s']
        let a = a_sites[c]; // [p, uA, lA, dA, rA']
        let b = b_sites[c]; // [p, uB, lB, dB, rB']
        let op = TwoLayerStepOp { boundary: &boundary, s, a_conj: a.conj(), b };
        let rank = options.max_bond.min(op.nrows()).min(op.ncols()).max(1);
        let f = rsvd(
            &op,
            RsvdOptions { rank, oversample: options.oversample, n_iter: options.n_iter },
            rng,
        )
        .map_err(|e| TensorError::Linalg(e.to_string()))?;
        let k = f.s.len();
        let [l, dpair] = op.row_dims();
        let [da, db, rsp, rap, rbp] = op.col_dims();
        // Finished MPS site for column c-1.
        out_tensors.push(Tensor::fold(&f.u, &[l, dpair], &[k])?);
        // New boundary from s * Vh.
        let sv = koala_linalg::scale_rows(&f.vh, &f.s);
        let rest = Tensor::fold(&sv, &[k], &[da, db, rsp, rap, rbp])?;
        boundary = rest.into_reshape(&[k, da * db, rsp, rap, rbp])?;
    }

    // Final boundary [l, d_pair, 1, 1, 1] becomes the last MPS site.
    let (l, dpair) = (boundary.dim(0), boundary.dim(1));
    debug_assert_eq!(boundary.dim(2) * boundary.dim(3) * boundary.dim(4), 1);
    out_tensors.push(boundary.into_reshape(&[l, dpair, 1])?);
    Mps::new(out_tensors)
}

/// Implicit operator of one two-layer zip-up step. Maps the column space
/// `(dA, dB, r_s', rA', rB')` to the row space `(l, d_pair)` without ever
/// forming the merged bra-ket MPO tensor.
struct TwoLayerStepOp<'t> {
    /// Boundary tensor `[l, d_pair, r_s, rA, rB]`.
    boundary: &'t Tensor,
    /// Boundary MPS site `[r_s, u_pair, r_s']`.
    s: &'t Tensor,
    /// Conjugated bra site `[p, uA, lA, dA, rA']`.
    a_conj: Tensor,
    /// Ket site `[p, uB, lB, dB, rB']`.
    b: &'t Tensor,
}

impl TwoLayerStepOp<'_> {
    fn row_dims(&self) -> [usize; 2] {
        [self.boundary.dim(0), self.boundary.dim(1)]
    }
    fn col_dims(&self) -> [usize; 5] {
        [
            self.a_conj.dim(AX_D),
            self.b.dim(AX_D),
            self.s.dim(2),
            self.a_conj.dim(AX_R),
            self.b.dim(AX_R),
        ]
    }
    /// The boundary MPS site with its pair index split: `[r_s, uA, uB, r_s']`.
    fn s_split(&self) -> Tensor {
        let ua = self.a_conj.dim(AX_U);
        let ub = self.b.dim(AX_U);
        self.s.reshape(&[self.s.dim(0), ua, ub, self.s.dim(2)]).unwrap_or_else(|e| {
            unreachable!("TwoLayerStepOp: boundary MPS physical index is not the bra-ket pair: {e}")
        })
    }
}

impl LinearOp for TwoLayerStepOp<'_> {
    fn nrows(&self) -> usize {
        self.row_dims().iter().product()
    }
    fn ncols(&self) -> usize {
        self.col_dims().iter().product()
    }

    fn apply(&self, x: &Matrix) -> Matrix {
        let k = x.ncols();
        let [da, db, rsp, rap, rbp] = self.col_dims();
        let xt = Tensor::from_matrix_2d(x)
            .into_reshape(&[da, db, rsp, rap, rbp, k])
            .unwrap_or_else(|e| unreachable!("TwoLayerStepOp::apply reshape: {e}"));
        // B [p, uB, lB, dB, rB'] x X [dA, dB, r_s', rA', rB', k] over (dB, rB')
        //   -> [p, uB, lB, dA, r_s', rA', k]
        let w1 = tensordot(self.b, &xt, &[AX_D, AX_R], &[1, 4])
            .unwrap_or_else(|e| unreachable!("two-layer w1: {e}"));
        // conj(A) [p, uA, lA, dA, rA'] x W1 over (p, dA, rA') -> [uA, lA, uB, lB, r_s', k]
        let w2 = tensordot(&self.a_conj, &w1, &[AX_P, AX_D, AX_R], &[0, 3, 5])
            .unwrap_or_else(|e| unreachable!("two-layer w2: {e}"));
        // S [r_s, uA, uB, r_s'] x W2 over (uA, uB, r_s') -> [r_s, lA, lB, k]
        let w3 = tensordot(&self.s_split(), &w2, &[1, 2, 3], &[0, 2, 4])
            .unwrap_or_else(|e| unreachable!("two-layer w3: {e}"));
        // V [l, d_pair, r_s, rA, rB] x W3 over (r_s, rA=lA, rB=lB) -> [l, d_pair, k]
        let y = tensordot(self.boundary, &w3, &[2, 3, 4], &[0, 1, 2])
            .unwrap_or_else(|e| unreachable!("two-layer y: {e}"));
        y.unfold(2)
    }

    fn apply_adj(&self, y: &Matrix) -> Matrix {
        let k = y.ncols();
        let [l, dpair] = self.row_dims();
        let yt = Tensor::from_matrix_2d(y)
            .into_reshape(&[l, dpair, k])
            .unwrap_or_else(|e| unreachable!("TwoLayerStepOp::apply_adj reshape: {e}"));
        // conj(V) [l, d_pair, r_s, rA, rB] x Y [l, d_pair, k] -> [r_s, rA, rB, k]
        let z1 = tensordot(&self.boundary.conj(), &yt, &[0, 1], &[0, 1])
            .unwrap_or_else(|e| unreachable!("two-layer z1: {e}"));
        // conj(S) [r_s, uA, uB, r_s'] x Z1 -> [uA, uB, r_s', rA, rB, k]
        let z2 = tensordot(&self.s_split().conj(), &z1, &[0], &[0])
            .unwrap_or_else(|e| unreachable!("two-layer z2: {e}"));
        // A [p, uA, lA, dA, rA'] x Z2 over (uA, lA=rA) -> [p, dA, rA', uB, r_s', rB, k]
        let a_plain = self.a_conj.conj();
        let z3 = tensordot(&a_plain, &z2, &[AX_U, AX_L], &[0, 3])
            .unwrap_or_else(|e| unreachable!("two-layer z3: {e}"));
        // conj(B) [p, uB, lB, dB, rB'] x Z3 over (p, uB, lB=rB) -> [dB, rB', dA, rA', r_s', k]
        let z4 = tensordot(&self.b.conj(), &z3, &[AX_P, AX_U, AX_L], &[0, 3, 5])
            .unwrap_or_else(|e| unreachable!("two-layer z4: {e}"));
        // -> [dA, dB, r_s', rA', rB', k]
        let out = z4
            .permute(&[2, 0, 4, 3, 1, 5])
            .unwrap_or_else(|e| unreachable!("two-layer out permute: {e}"));
        out.unfold(5)
    }

    fn is_real(&self) -> bool {
        // Real bra/ket/boundary tensors make the whole two-layer step a real
        // map (conjugation is a no-op on real data), so rsvd keeps its sketch
        // — and therefore every contraction of this step — on the real kernel.
        self.boundary.is_real() && self.s.is_real() && self.a_conj.is_real() && self.b.is_real()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{inner_merged, ContractionMethod};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_dense_inner_product_without_truncation() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Peps::random(2, 3, 2, 2, &mut rng);
        let b = Peps::random(2, 3, 2, 2, &mut rng);
        let dense = a.to_dense().unwrap().inner(&b.to_dense().unwrap()).unwrap();
        let got = inner_two_layer(&a, &b, TwoLayerOptions::with_bond(64), &mut rng).unwrap();
        assert!(got.approx_eq(dense, 1e-6 * dense.abs().max(1.0)), "{got} vs {dense}");
    }

    #[test]
    fn matches_merged_contraction_on_three_by_three() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Peps::random(3, 3, 2, 2, &mut rng);
        let b = Peps::random(3, 3, 2, 2, &mut rng);
        let merged = inner_merged(&a, &b, ContractionMethod::bmps(32), &mut rng).unwrap();
        let two_layer = inner_two_layer(&a, &b, TwoLayerOptions::with_bond(32), &mut rng).unwrap();
        let scale = merged.abs().max(1e-12);
        assert!((merged - two_layer).abs() / scale < 1e-4, "{merged} vs {two_layer}");
    }

    #[test]
    fn norm_is_real_and_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Peps::random(2, 2, 2, 2, &mut rng);
        let n = norm_sqr_two_layer(&p, TwoLayerOptions::with_bond(32), &mut rng).unwrap();
        let dense = p.norm_sqr_dense().unwrap();
        assert!(n > 0.0);
        assert!((n - dense).abs() / dense < 1e-6);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Peps::random(2, 2, 2, 2, &mut rng);
        let b = Peps::random(2, 3, 2, 2, &mut rng);
        assert!(inner_two_layer(&a, &b, TwoLayerOptions::with_bond(8), &mut rng).is_err());
    }

    #[test]
    fn single_column_lattice() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Peps::random(3, 1, 2, 2, &mut rng);
        let b = Peps::random(3, 1, 2, 2, &mut rng);
        let dense = a.to_dense().unwrap().inner(&b.to_dense().unwrap()).unwrap();
        let got = inner_two_layer(&a, &b, TwoLayerOptions::with_bond(16), &mut rng).unwrap();
        assert!(got.approx_eq(dense, 1e-6 * dense.abs().max(1.0)));
    }
}
