//! Operator application (PEPS evolution).
//!
//! One-site operators contract directly with the site tensor (Equation 3).
//! Two-site operators on neighbouring sites need a contraction followed by a
//! refactorization — the `einsumsvd` of Equation 4 — for which three methods
//! are provided:
//!
//! * [`UpdateMethod::Direct`] — the simple update: contract both site tensors
//!   with the gate and truncate the SVD of the full two-site tensor,
//! * [`UpdateMethod::QrSvd`] — paper Algorithm 1: QR both sites first so the
//!   SVD acts on a much smaller object,
//! * [`UpdateMethod::GramQrSvd`] — Algorithm 1 with the orthogonalization done
//!   through a Gram matrix (the local math of Algorithm 5), the variant that
//!   avoids matricizing the big site tensors on the distributed backend.

use crate::peps::{
    check_one_site_gate, Direction, Peps, Result, Site, AX_D, AX_L, AX_P, AX_R, AX_U,
};
use koala_linalg::Matrix;
use koala_tensor::{
    einsum, gram_qr_split, qr_split, svd_split, tensordot, Tensor, TensorError, Truncation,
};

/// Strategy for two-site operator application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateMethod {
    /// Simple update: contract the full two-site tensor and truncate its SVD.
    Direct {
        /// Bond truncation applied to the new shared bond.
        truncation: Truncation,
    },
    /// QR-SVD update (Algorithm 1) with modified Gram-Schmidt QR.
    QrSvd {
        /// Bond truncation applied to the new shared bond.
        truncation: Truncation,
    },
    /// QR-SVD update with the reshape-avoiding Gram-matrix orthogonalization.
    GramQrSvd {
        /// Bond truncation applied to the new shared bond.
        truncation: Truncation,
    },
}

impl UpdateMethod {
    /// The truncation policy carried by this method.
    pub fn truncation(&self) -> Truncation {
        match self {
            UpdateMethod::Direct { truncation }
            | UpdateMethod::QrSvd { truncation }
            | UpdateMethod::GramQrSvd { truncation } => *truncation,
        }
    }

    /// Convenience: QR-SVD with a maximum bond dimension.
    pub fn qr_svd(max_bond: usize) -> Self {
        UpdateMethod::QrSvd { truncation: Truncation::rank_and_tol(max_bond, 1e-14) }
    }

    /// Convenience: simple update with a maximum bond dimension.
    pub fn direct(max_bond: usize) -> Self {
        UpdateMethod::Direct { truncation: Truncation::rank_and_tol(max_bond, 1e-14) }
    }

    /// Convenience: Gram QR-SVD with a maximum bond dimension.
    pub fn gram_qr_svd(max_bond: usize) -> Self {
        UpdateMethod::GramQrSvd { truncation: Truncation::rank_and_tol(max_bond, 1e-14) }
    }
}

/// Apply a one-site gate to a site of the PEPS (Equation 3).
///
/// Runs through the cached einsum planner: evolution sweeps apply the same
/// gate shape to every site, so the contraction is planned once per
/// `(gate, site-tensor)` shape pair.
pub fn apply_one_site(peps: &mut Peps, gate: &Matrix, site: Site) -> Result<()> {
    let d = peps.phys_dim(site);
    check_one_site_gate(gate, d)?;
    let gate_t = Tensor::from_matrix_2d(gate);
    let old = peps.tensor(site);
    // new[i, u, l, d, r] = sum_j gate[i, j] old[j, u, l, d, r]
    let new = einsum("ij,juldr->iuldr", &[&gate_t, old])?;
    peps.set_tensor(site, new);
    Ok(())
}

/// Swap the two subsystems of a two-site gate: returns `G'` with
/// `G'[(b',a'),(b,a)] = G[(a',b'),(a,b)]`.
pub fn reorder_gate(gate: &Matrix, d_a: usize, d_b: usize) -> Result<Matrix> {
    if gate.shape() != (d_a * d_b, d_a * d_b) {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "reorder_gate: gate is {:?}, expected {}x{}",
                gate.shape(),
                d_a * d_b,
                d_a * d_b
            ),
        });
    }
    let t = Tensor::from_matrix_2d(gate).into_reshape(&[d_a, d_b, d_a, d_b])?;
    let swapped = t.permute(&[1, 0, 3, 2])?;
    Ok(swapped.unfold(2))
}

/// Apply a two-site gate to a pair of *neighbouring* sites. The gate is a
/// `(d_a d_b) x (d_a d_b)` matrix with `site_a` as the most significant
/// subsystem. Returns the truncation error of the refactorized bond.
pub fn apply_two_site(
    peps: &mut Peps,
    gate: &Matrix,
    site_a: Site,
    site_b: Site,
    method: UpdateMethod,
) -> Result<f64> {
    let dir = peps.direction_between(site_a, site_b).ok_or_else(|| TensorError::InvalidAxes {
        context: format!("apply_two_site: sites {site_a:?} and {site_b:?} are not neighbours"),
    })?;
    // Normalise to the canonical orientations (Right / Down) so the index
    // gymnastics below only has two cases.
    match dir {
        Direction::Right | Direction::Down => {
            apply_two_site_canonical(peps, gate, site_a, site_b, dir, method)
        }
        Direction::Left | Direction::Up => {
            let d_a = peps.phys_dim(site_a);
            let d_b = peps.phys_dim(site_b);
            let swapped = reorder_gate(gate, d_a, d_b)?;
            apply_two_site_canonical(peps, &swapped, site_b, site_a, dir.opposite(), method)
        }
    }
}

/// Permutations that bring the two site tensors into the canonical layouts
/// `a: [p, o1, o2, o3, bond]` and `b: [p, bond, o1, o2, o3]`.
pub(crate) fn canonical_perms(dir: Direction) -> ([usize; 5], [usize; 5]) {
    match dir {
        // a --right--> b : shared bond is a.R / b.L
        Direction::Right => ([AX_P, AX_U, AX_L, AX_D, AX_R], [AX_P, AX_L, AX_U, AX_D, AX_R]),
        // a --down--> b : shared bond is a.D / b.U
        Direction::Down => ([AX_P, AX_U, AX_L, AX_R, AX_D], [AX_P, AX_U, AX_L, AX_D, AX_R]),
        _ => unreachable!("canonical_perms is only called with Right or Down"),
    }
}

fn apply_two_site_canonical(
    peps: &mut Peps,
    gate: &Matrix,
    site_a: Site,
    site_b: Site,
    dir: Direction,
    method: UpdateMethod,
) -> Result<f64> {
    let d_a = peps.phys_dim(site_a);
    let d_b = peps.phys_dim(site_b);
    if gate.shape() != (d_a * d_b, d_a * d_b) {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "apply_two_site: gate is {:?}, expected {}x{}",
                gate.shape(),
                d_a * d_b,
                d_a * d_b
            ),
        });
    }
    let (perm_a, perm_b) = canonical_perms(dir);
    let a = peps.tensor(site_a).permute(&perm_a)?; // [p, o1, o2, o3, bond]
    let b = peps.tensor(site_b).permute(&perm_b)?; // [p, bond, o1, o2, o3]
    let gate_t = Tensor::from_matrix_2d(gate).into_reshape(&[d_a, d_b, d_a, d_b])?;

    let truncation = method.truncation();
    let (new_a, new_b, err) = match method {
        UpdateMethod::Direct { .. } => direct_update(&a, &b, &gate_t, truncation)?,
        UpdateMethod::QrSvd { .. } => qr_svd_update(&a, &b, &gate_t, truncation, false)?,
        UpdateMethod::GramQrSvd { .. } => qr_svd_update(&a, &b, &gate_t, truncation, true)?,
    };

    // Undo the canonical permutations.
    let inv_a = invert5(perm_a);
    let inv_b = invert5(perm_b);
    peps.set_tensor(site_a, new_a.permute(&inv_a)?);
    peps.set_tensor(site_b, new_b.permute(&inv_b)?);
    Ok(err)
}

pub(crate) fn invert5(perm: [usize; 5]) -> [usize; 5] {
    let mut inv = [0usize; 5];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Simple update: contract everything, apply the gate, split with one SVD.
fn direct_update(
    a: &Tensor,    // [pa, o1, o2, o3, bond]
    b: &Tensor,    // [pb, bond, o1, o2, o3]
    gate: &Tensor, // [pa', pb', pa, pb]
    truncation: Truncation,
) -> Result<(Tensor, Tensor, f64)> {
    // theta [pa', pb', ao1..3, bo1..3]: the full {a, b, gate} network in one
    // planned einsum — a: [pa=a, o=bcd, bond=x], b: [pb=e, bond=x, o=fgh],
    // gate: [pa'=A, pb'=B, pa=a, pb=e]. The contraction order and
    // matricization layouts come from the plan cache, so a TEBD sweep plans
    // this network once per site-tensor shape.
    let theta = einsum("abcdx,exfgh,ABae->ABbcdfgh", &[a, b, gate])?;
    // rows: (pa', ao1..3)  cols: (pb', bo1..3)
    let f = svd_split(&theta, &[0, 2, 3, 4], truncation)?;
    let err = f.truncation_error;
    let (u, v) = f.absorb_split();
    // u: [pa', ao1, ao2, ao3, k] already the canonical a-layout.
    // v: [k, pb', bo1, bo2, bo3] -> [pb', k, bo1, bo2, bo3]
    let new_b = v.permute(&[1, 0, 2, 3, 4])?;
    Ok((u, new_b, err))
}

/// QR-SVD update (Algorithm 1): QR both sites, apply the gate to the small
/// `R` factors, SVD, and recombine with the `Q` factors.
fn qr_svd_update(
    a: &Tensor,    // [pa, o1, o2, o3, bond]
    b: &Tensor,    // [pb, bond, o1, o2, o3]
    gate: &Tensor, // [pa', pb', pa, pb]
    truncation: Truncation,
    use_gram: bool,
) -> Result<(Tensor, Tensor, f64)> {
    // Step (1)->(2): split off the outer bonds.
    // a: rows = outer bonds (1,2,3) -> Q_a [o1,o2,o3,ka], R_a [ka, pa, bond]
    let (q_a, r_a) =
        if use_gram { gram_qr_split(a, &[1, 2, 3])? } else { qr_split(a, &[1, 2, 3])? };
    // b: rows = outer bonds (2,3,4) -> Q_b [o1,o2,o3,kb], R_b [kb, pb, bond]
    let (q_b, r_b) =
        if use_gram { gram_qr_split(b, &[2, 3, 4])? } else { qr_split(b, &[2, 3, 4])? };

    // Step (2)->(4): einsumsvd on {gate, R_a, R_b}.
    let (rt_a, rt_b, err) = small_einsumsvd(gate, &r_a, &r_b, truncation)?;

    // Step (4)->(5): recombine with the Q factors.
    // new_a [o1,o2,o3, pa', k] <- Q_a [o1,o2,o3,ka] x rt_a [ka, pa', k]
    let new_a = tensordot(&q_a, &rt_a, &[3], &[0])?;
    let new_a = new_a.permute(&[3, 0, 1, 2, 4])?; // [pa', o1, o2, o3, k]
                                                  // new_b [k, pb', o1,o2,o3] <- rt_b [k, kb, pb'] x Q_b [o1,o2,o3,kb]
    let new_b = tensordot(&rt_b, &q_b, &[1], &[3])?; // [k, pb', o1, o2, o3]
    let new_b = new_b.permute(&[1, 0, 2, 3, 4])?; // [pb', k, o1, o2, o3]
    Ok((new_a, new_b, err))
}

/// The einsumsvd of Algorithm 1, step (2)->(4): contract the small `R`
/// factors with the gate and refactorize across the new bond.
/// `r_a` has layout `[ka, pa, bond]`, `r_b` has layout `[kb, pb, bond]`, the
/// gate is `[pa', pb', pa, pb]`. Returns `(rt_a [ka, pa', k], rt_b [k, kb, pb'], err)`.
pub(crate) fn small_einsumsvd(
    gate: &Tensor,
    r_a: &Tensor,
    r_b: &Tensor,
    truncation: Truncation,
) -> Result<(Tensor, Tensor, f64)> {
    // theta [ka, pa', kb, pb'] directly from {gate, R_a, R_b} as one planned
    // einsum — r_a: [ka=a, pa=p, bond=x], r_b: [kb=b, pb=q, bond=x],
    // gate: [pa'=P, pb'=Q, pa=p, pb=q]. The plan (including the final
    // permutation into the SVD row/column layout) is cached per shape, which
    // is what makes repeating this step thousands of times cheap.
    let theta = einsum("apx,bqx,PQpq->aPbQ", &[r_a, r_b, gate])?;
    // rows: (ka, pa'), cols: (kb, pb')
    let f = svd_split(&theta, &[0, 1], truncation)?;
    let err = f.truncation_error;
    let (rt_a, rt_b) = f.absorb_split(); // [ka, pa', k], [k, kb, pb']
    Ok((rt_a, rt_b, err))
}

/// The SWAP gate on two qubits of dimension `d` each.
pub fn swap_gate(d: usize) -> Matrix {
    let mut m = Matrix::zeros(d * d, d * d);
    for a in 0..d {
        for b in 0..d {
            m[(a * d + b, b * d + a)] = koala_linalg::C64::ONE;
        }
    }
    m
}

/// Apply a two-site gate to an arbitrary (not necessarily adjacent) pair of
/// sites by routing with SWAP gates along a Manhattan path (first along the
/// column, then along the row), applying the gate, and swapping back — the
/// strategy described at the end of paper §II-C1. Returns the accumulated
/// truncation error.
pub fn apply_two_site_any(
    peps: &mut Peps,
    gate: &Matrix,
    site_a: Site,
    site_b: Site,
    method: UpdateMethod,
) -> Result<f64> {
    if site_a == site_b {
        return Err(TensorError::InvalidAxes {
            context: "apply_two_site_any: the two sites must differ".into(),
        });
    }
    if peps.direction_between(site_a, site_b).is_some() {
        return apply_two_site(peps, gate, site_a, site_b, method);
    }
    let d = peps.phys_dim(site_b);
    let swap = swap_gate(d);

    // Build the path that moves the state of `site_b` to a neighbour of
    // `site_a`: walk rows first, then columns.
    let mut path = vec![site_b];
    let (ar, ac) = site_a;
    let (mut br, mut bc) = site_b;
    while br != ar {
        br = if br > ar { br - 1 } else { br + 1 };
        path.push((br, bc));
    }
    while bc != ac {
        bc = if bc > ac { bc - 1 } else { bc + 1 };
        path.push((br, bc));
    }
    // The last entry is site_a itself; the gate partner is the one before it.
    debug_assert_eq!(
        path.last().copied().unwrap_or_else(|| unreachable!("path starts at site_b")),
        site_a
    );
    let hops = &path[..path.len() - 1];

    let mut err_sq = 0.0;
    // Swap forward: move |site_b> along the path up to the neighbour of site_a.
    for w in hops.windows(2) {
        let e = apply_two_site(peps, &swap, w[0], w[1], method)?;
        err_sq += e * e;
    }
    let partner = *hops
        .last()
        .unwrap_or_else(|| unreachable!("distinct sites leave at least one hop on the path"));
    let e = apply_two_site(peps, gate, site_a, partner, method)?;
    err_sq += e * e;
    // Swap back in reverse order.
    for w in hops.windows(2).rev() {
        let e = apply_two_site(peps, &swap, w[0], w[1], method)?;
        err_sq += e * e;
    }
    Ok(err_sq.sqrt())
}

/// Apply a layer of the same two-site gate to every nearest-neighbour pair
/// (all horizontal pairs first, then all vertical pairs), as one layer of
/// TEBD does. Returns the accumulated truncation error.
pub fn apply_two_site_everywhere(
    peps: &mut Peps,
    gate: &Matrix,
    method: UpdateMethod,
) -> Result<f64> {
    let mut err_sq = 0.0;
    for (a, b) in peps.horizontal_pairs() {
        let e = apply_two_site(peps, gate, a, b, method)?;
        err_sq += e * e;
    }
    for (a, b) in peps.vertical_pairs() {
        let e = apply_two_site(peps, gate, a, b, method)?;
        err_sq += e * e;
    }
    Ok(err_sq.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{kron, pauli_x, pauli_z};
    use koala_linalg::{c64, expm_hermitian, C64};
    use koala_tensor::Tensor as T;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Dense application of a two-site gate for cross-checking (row-major
    /// site ordering, site_a most significant).
    fn dense_two_site(dense: &T, gate: &Matrix, idx_a: usize, idx_b: usize, d: usize) -> T {
        let n = dense.ndim();
        let g = T::from_matrix_2d(gate).into_reshape(&[d, d, d, d]).unwrap();
        // out[..a'..b'..] = sum_{a,b} g[a',b',a,b] dense[..a..b..]
        let out = tensordot(&g, dense, &[2, 3], &[idx_a, idx_b]).unwrap();
        // out axes: [a', b', rest...]; move them back.
        let mut perm = vec![0usize; n];
        let mut rest_axis = 2;
        for i in 0..n {
            if i == idx_a {
                perm[i] = 0;
            } else if i == idx_b {
                perm[i] = 1;
            } else {
                perm[i] = rest_axis;
                rest_axis += 1;
            }
        }
        out.permute(&perm).unwrap()
    }

    #[test]
    fn one_site_gate_matches_dense() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut peps = Peps::random(2, 2, 2, 2, &mut rng);
        let dense_before = peps.to_dense().unwrap();
        apply_one_site(&mut peps, &pauli_x(), (1, 0)).unwrap();
        let dense_after = peps.to_dense().unwrap();
        let g = T::from_matrix_2d(&pauli_x());
        let expected =
            tensordot(&g, &dense_before, &[1], &[2]).unwrap().permute(&[1, 2, 0, 3]).unwrap();
        assert!(dense_after.approx_eq(&expected, 1e-10));
        // Wrong dimension is rejected.
        assert!(apply_one_site(&mut peps, &Matrix::identity(3), (0, 0)).is_err());
    }

    #[test]
    fn reorder_gate_swaps_subsystems() {
        let g = kron(&pauli_z(), &pauli_x());
        let swapped = reorder_gate(&g, 2, 2).unwrap();
        assert!(swapped.approx_eq(&kron(&pauli_x(), &pauli_z()), 1e-13));
        assert!(reorder_gate(&g, 2, 3).is_err());
    }

    fn check_two_site_update(dir_pair: (Site, Site), method: UpdateMethod, seed: u64, tol: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut peps = Peps::random(2, 2, 2, 2, &mut rng);
        // Normalise to keep numbers tame.
        let norm = peps.norm_sqr_dense().unwrap().sqrt();
        peps.scale(c64(1.0 / norm, 0.0));
        let dense_before = peps.to_dense().unwrap();
        // A genuinely entangling unitary: exp(-i * 0.3 * XX+ZZ).
        let h = &kron(&pauli_x(), &pauli_x()) + &kron(&pauli_z(), &pauli_z());
        let gate = expm_hermitian(&h, c64(0.0, -0.3)).unwrap();

        let (sa, sb) = dir_pair;
        let err = apply_two_site(&mut peps, &gate, sa, sb, method).unwrap();
        assert!(err < 1e-9, "no truncation expected, got error {err}");
        let dense_after = peps.to_dense().unwrap();
        let idx_a = sa.0 * 2 + sa.1;
        let idx_b = sb.0 * 2 + sb.1;
        let expected = dense_two_site(&dense_before, &gate, idx_a, idx_b, 2);
        assert!(
            dense_after.approx_eq(&expected, tol),
            "two-site update mismatch: {:.3e}",
            dense_after.max_diff(&expected)
        );
    }

    #[test]
    fn direct_update_matches_dense_in_all_directions() {
        let m = UpdateMethod::direct(16);
        check_two_site_update(((0, 0), (0, 1)), m, 10, 1e-9); // right
        check_two_site_update(((0, 1), (0, 0)), m, 11, 1e-9); // left
        check_two_site_update(((0, 0), (1, 0)), m, 12, 1e-9); // down
        check_two_site_update(((1, 1), (0, 1)), m, 13, 1e-9); // up
    }

    #[test]
    fn qr_svd_update_matches_dense_in_all_directions() {
        let m = UpdateMethod::qr_svd(16);
        check_two_site_update(((0, 0), (0, 1)), m, 20, 1e-8);
        check_two_site_update(((1, 0), (1, 1)), m, 21, 1e-8);
        check_two_site_update(((0, 1), (1, 1)), m, 22, 1e-8);
        check_two_site_update(((1, 0), (0, 0)), m, 23, 1e-8);
    }

    #[test]
    fn gram_qr_svd_update_matches_dense() {
        let m = UpdateMethod::gram_qr_svd(16);
        check_two_site_update(((0, 0), (0, 1)), m, 30, 1e-7);
        check_two_site_update(((0, 0), (1, 0)), m, 31, 1e-7);
    }

    #[test]
    fn methods_agree_with_each_other_under_truncation() {
        let mut rng = StdRng::seed_from_u64(40);
        let base = Peps::random(2, 3, 2, 3, &mut rng);
        let h = &kron(&pauli_x(), &pauli_x()) + &kron(&pauli_z(), &pauli_z());
        let gate = expm_hermitian(&h, c64(0.0, -0.7)).unwrap();

        let mut results = Vec::new();
        for method in
            [UpdateMethod::direct(3), UpdateMethod::qr_svd(3), UpdateMethod::gram_qr_svd(3)]
        {
            let mut p = base.clone();
            apply_two_site(&mut p, &gate, (0, 1), (0, 2), method).unwrap();
            results.push(p.to_dense().unwrap());
        }
        // All three methods should produce (numerically) the same truncated state
        // up to round-off, because they implement the same optimal truncation.
        assert!(results[0].approx_eq(&results[1], 1e-6));
        assert!(results[0].approx_eq(&results[2], 1e-5));
    }

    #[test]
    fn truncation_error_is_reported() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut peps = Peps::random(1, 2, 2, 4, &mut rng);
        // A random (non-unitary) gate creates entanglement that cannot fit in
        // a bond of dimension 1.
        let gate = Matrix::random(4, 4, &mut rng);
        let err =
            apply_two_site(&mut peps, &gate, (0, 0), (0, 1), UpdateMethod::direct(1)).unwrap();
        assert!(err > 1e-8, "expected a nonzero truncation error");
        assert_eq!(peps.tensor((0, 0)).dim(AX_R), 1);
    }

    #[test]
    fn non_neighbouring_sites_are_rejected() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut peps = Peps::random(2, 2, 2, 2, &mut rng);
        let gate = Matrix::identity(4);
        assert!(apply_two_site(&mut peps, &gate, (0, 0), (1, 1), UpdateMethod::direct(4)).is_err());
        assert!(apply_two_site(
            &mut peps,
            &Matrix::identity(3),
            (0, 0),
            (0, 1),
            UpdateMethod::direct(4)
        )
        .is_err());
    }

    #[test]
    fn tebd_layer_on_every_pair_keeps_norm_for_unitary_gates() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut peps = Peps::random(2, 2, 2, 2, &mut rng);
        let norm = peps.norm_sqr_dense().unwrap().sqrt();
        peps.scale(c64(1.0 / norm, 0.0));
        let h = kron(&pauli_z(), &pauli_z());
        let gate = expm_hermitian(&h, c64(0.0, -0.2)).unwrap();
        let err = apply_two_site_everywhere(&mut peps, &gate, UpdateMethod::qr_svd(16)).unwrap();
        assert!(err < 1e-8);
        let n = peps.norm_sqr_dense().unwrap();
        assert!((n - 1.0).abs() < 1e-7, "unitary evolution should preserve the norm, got {n}");
    }

    #[test]
    fn identity_gate_is_a_noop_up_to_gauge() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut peps = Peps::random(2, 2, 2, 2, &mut rng);
        let before = peps.to_dense().unwrap();
        apply_two_site(&mut peps, &Matrix::identity(4), (0, 0), (0, 1), UpdateMethod::qr_svd(8))
            .unwrap();
        let after = peps.to_dense().unwrap();
        assert!(after.approx_eq(&before, 1e-8));
    }

    #[test]
    fn axis_constants_are_consistent() {
        assert_eq!(AX_P, 0);
        assert_eq!((AX_U, AX_L, AX_D, AX_R), (1, 2, 3, 4));
    }

    #[test]
    fn swap_gate_exchanges_basis_states() {
        let s = swap_gate(2);
        // |01> -> |10>
        assert!(s[(2, 1)].approx_eq(C64::ONE, 1e-14));
        assert!(s[(1, 2)].approx_eq(C64::ONE, 1e-14));
        assert!(s[(0, 0)].approx_eq(C64::ONE, 1e-14));
        assert!(s[(3, 3)].approx_eq(C64::ONE, 1e-14));
        assert!(s[(1, 1)].approx_eq(C64::ZERO, 1e-14));
    }

    #[test]
    fn swap_routed_gate_matches_dense_on_diagonal_pair() {
        let mut rng = StdRng::seed_from_u64(50);
        let mut peps = Peps::random(2, 2, 2, 2, &mut rng);
        let norm = peps.norm_sqr_dense().unwrap().sqrt();
        peps.scale(c64(1.0 / norm, 0.0));
        let dense_before = peps.to_dense().unwrap();
        let h = kron(&pauli_z(), &pauli_z());
        let gate = expm_hermitian(&h, c64(0.0, -0.4)).unwrap();
        // Diagonal pair (0,0)-(1,1): requires one SWAP hop.
        let err =
            apply_two_site_any(&mut peps, &gate, (0, 0), (1, 1), UpdateMethod::qr_svd(64)).unwrap();
        assert!(err < 1e-8);
        let expected = dense_two_site(&dense_before, &gate, 0, 3, 2);
        assert!(peps.to_dense().unwrap().approx_eq(&expected, 1e-7));
    }

    #[test]
    fn swap_routed_gate_on_adjacent_pair_falls_through() {
        let mut rng = StdRng::seed_from_u64(51);
        let mut peps = Peps::random(2, 2, 2, 2, &mut rng);
        let gate = Matrix::identity(4);
        assert!(
            apply_two_site_any(&mut peps, &gate, (0, 0), (0, 1), UpdateMethod::direct(8)).is_ok()
        );
        assert!(
            apply_two_site_any(&mut peps, &gate, (0, 0), (0, 0), UpdateMethod::direct(8)).is_err()
        );
    }
}
