//! Observables: Hermitian operators given as sums of local one-site and
//! two-site terms, the form every driver application of the paper uses
//! (Hamiltonians for ITE/VQE, measurement operators for expectation values).

use crate::peps::{Peps, Result, Site};
use koala_linalg::{c64, Matrix, C64};
use koala_tensor::TensorError;
use std::ops::{Add, Mul};

/// Pauli X matrix.
pub fn pauli_x() -> Matrix {
    Matrix::from_rows(&[vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]])
        .unwrap_or_else(|_| unreachable!("literal 2x2 rows"))
}

/// Pauli Y matrix.
pub fn pauli_y() -> Matrix {
    Matrix::from_rows(&[vec![C64::ZERO, c64(0.0, -1.0)], vec![c64(0.0, 1.0), C64::ZERO]])
        .unwrap_or_else(|_| unreachable!("literal 2x2 rows"))
}

/// Pauli Z matrix.
pub fn pauli_z() -> Matrix {
    Matrix::from_rows(&[vec![C64::ONE, C64::ZERO], vec![C64::ZERO, c64(-1.0, 0.0)]])
        .unwrap_or_else(|_| unreachable!("literal 2x2 rows"))
}

/// 2x2 identity.
pub fn pauli_i() -> Matrix {
    Matrix::identity(2)
}

/// Kronecker product of two matrices (row-major, left factor major).
/// Products of real entries are real, so the realness hint combines as AND.
pub fn kron(a: &Matrix, b: &Matrix) -> Matrix {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let real = a.is_real() && b.is_real();
    let mut out = Matrix::zeros(ar * br, ac * bc);
    for i in 0..ar {
        for j in 0..ac {
            let aij = a[(i, j)];
            for k in 0..br {
                for l in 0..bc {
                    out[(i * br + k, j * bc + l)] = aij * b[(k, l)];
                }
            }
        }
    }
    if real {
        out.assume_real();
    }
    out
}

/// One local term of an observable.
#[derive(Debug, Clone)]
pub enum LocalTerm {
    /// A single-site operator: `coefficient * matrix` acting on `site`.
    OneSite {
        /// Lattice site the operator acts on.
        site: Site,
        /// The `d x d` operator matrix.
        matrix: Matrix,
    },
    /// A two-site operator acting on an ordered pair of (not necessarily
    /// adjacent) sites; the matrix is `d^2 x d^2` with the first site as the
    /// most significant index.
    TwoSite {
        /// First lattice site.
        site_a: Site,
        /// Second lattice site.
        site_b: Site,
        /// The `d^2 x d^2` operator matrix.
        matrix: Matrix,
    },
}

impl LocalTerm {
    /// Sites this term acts on.
    pub fn sites(&self) -> Vec<Site> {
        match self {
            LocalTerm::OneSite { site, .. } => vec![*site],
            LocalTerm::TwoSite { site_a, site_b, .. } => vec![*site_a, *site_b],
        }
    }

    /// Rows spanned by this term (min, max).
    pub fn row_span(&self) -> (usize, usize) {
        let rows: Vec<usize> = self.sites().iter().map(|s| s.0).collect();
        let lo = rows.iter().min().unwrap_or_else(|| unreachable!("a term acts on >= 1 site"));
        let hi = rows.iter().max().unwrap_or_else(|| unreachable!("a term acts on >= 1 site"));
        (*lo, *hi)
    }

    /// Scale the term's matrix by a constant.
    pub fn scaled(&self, factor: C64) -> LocalTerm {
        match self {
            LocalTerm::OneSite { site, matrix } => {
                LocalTerm::OneSite { site: *site, matrix: matrix.scale(factor) }
            }
            LocalTerm::TwoSite { site_a, site_b, matrix } => LocalTerm::TwoSite {
                site_a: *site_a,
                site_b: *site_b,
                matrix: matrix.scale(factor),
            },
        }
    }
}

/// A Hermitian observable expressed as a sum of local terms,
/// `H = sum_i H_i` (paper Equation 5).
#[derive(Debug, Clone, Default)]
pub struct Observable {
    terms: Vec<LocalTerm>,
}

impl Observable {
    /// The zero observable.
    pub fn zero() -> Self {
        Observable { terms: Vec::new() }
    }

    /// Build from explicit terms.
    pub fn from_terms(terms: Vec<LocalTerm>) -> Self {
        Observable { terms }
    }

    /// The local terms.
    pub fn terms(&self) -> &[LocalTerm] {
        &self.terms
    }

    /// Number of local terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Add a single-site term.
    pub fn add_one_site(&mut self, site: Site, matrix: Matrix) -> &mut Self {
        self.terms.push(LocalTerm::OneSite { site, matrix });
        self
    }

    /// Add a two-site term.
    pub fn add_two_site(&mut self, site_a: Site, site_b: Site, matrix: Matrix) -> &mut Self {
        self.terms.push(LocalTerm::TwoSite { site_a, site_b, matrix });
        self
    }

    /// Single-site Pauli X on `site`.
    pub fn x(site: Site) -> Self {
        Observable { terms: vec![LocalTerm::OneSite { site, matrix: pauli_x() }] }
    }

    /// Single-site Pauli Y on `site`.
    pub fn y(site: Site) -> Self {
        Observable { terms: vec![LocalTerm::OneSite { site, matrix: pauli_y() }] }
    }

    /// Single-site Pauli Z on `site`.
    pub fn z(site: Site) -> Self {
        Observable { terms: vec![LocalTerm::OneSite { site, matrix: pauli_z() }] }
    }

    /// Two-site `Z Z` coupling.
    pub fn zz(site_a: Site, site_b: Site) -> Self {
        Observable {
            terms: vec![LocalTerm::TwoSite {
                site_a,
                site_b,
                matrix: kron(&pauli_z(), &pauli_z()),
            }],
        }
    }

    /// Two-site `X X` coupling.
    pub fn xx(site_a: Site, site_b: Site) -> Self {
        Observable {
            terms: vec![LocalTerm::TwoSite {
                site_a,
                site_b,
                matrix: kron(&pauli_x(), &pauli_x()),
            }],
        }
    }

    /// Two-site `Y Y` coupling.
    pub fn yy(site_a: Site, site_b: Site) -> Self {
        Observable {
            terms: vec![LocalTerm::TwoSite {
                site_a,
                site_b,
                matrix: kron(&pauli_y(), &pauli_y()),
            }],
        }
    }

    /// Validate the observable against a PEPS lattice (site ranges and matrix
    /// dimensions).
    pub fn validate(&self, peps: &Peps) -> Result<()> {
        for term in &self.terms {
            for (r, c) in term.sites() {
                if r >= peps.nrows() || c >= peps.ncols() {
                    return Err(TensorError::InvalidAxes {
                        context: format!("observable site ({r},{c}) outside the lattice"),
                    });
                }
            }
            match term {
                LocalTerm::OneSite { site, matrix } => {
                    let d = peps.phys_dim(*site);
                    if matrix.shape() != (d, d) {
                        return Err(TensorError::ShapeMismatch {
                            context: format!(
                                "one-site term at {:?} has matrix {:?}, expected {d}x{d}",
                                site,
                                matrix.shape()
                            ),
                        });
                    }
                }
                LocalTerm::TwoSite { site_a, site_b, matrix } => {
                    let d = peps.phys_dim(*site_a) * peps.phys_dim(*site_b);
                    if matrix.shape() != (d, d) {
                        return Err(TensorError::ShapeMismatch {
                            context: format!(
                                "two-site term at {:?}-{:?} has matrix {:?}, expected {d}x{d}",
                                site_a,
                                site_b,
                                matrix.shape()
                            ),
                        });
                    }
                    if site_a == site_b {
                        return Err(TensorError::InvalidAxes {
                            context: "two-site term with identical sites".into(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Dense matrix of the observable on the full `2^n` (or `d^n`) Hilbert
    /// space of a lattice, in row-major site ordering. Exponential; used to
    /// validate small lattices against exact diagonalisation and the
    /// state-vector simulator.
    pub fn to_dense(&self, nrows: usize, ncols: usize, phys_dim: usize) -> Matrix {
        let n = nrows * ncols;
        let dim = phys_dim.pow(n as u32);
        let mut h = Matrix::zeros(dim, dim);
        for term in &self.terms {
            h += &term_to_dense(term, nrows, ncols, phys_dim);
        }
        h
    }
}

fn term_to_dense(term: &LocalTerm, nrows: usize, ncols: usize, phys_dim: usize) -> Matrix {
    let n = nrows * ncols;
    let site_idx = |(r, c): Site| r * ncols + c;
    match term {
        LocalTerm::OneSite { site, matrix } => {
            let mut out = Matrix::identity(1);
            let target = site_idx(*site);
            for i in 0..n {
                let factor = if i == target { matrix.clone() } else { Matrix::identity(phys_dim) };
                out = kron(&out, &factor);
            }
            out
        }
        LocalTerm::TwoSite { site_a, site_b, matrix } => {
            // Embed by summing over the matrix elements of the two-site
            // operator: O = sum_{ab,cd} M[(a,b),(c,d)] |a><c|_A x |b><d|_B.
            let ia = site_idx(*site_a);
            let ib = site_idx(*site_b);
            let d = phys_dim;
            let dim = d.pow(n as u32);
            let mut out = Matrix::zeros(dim, dim);
            for a in 0..d {
                for b in 0..d {
                    for c in 0..d {
                        for e in 0..d {
                            let coeff = matrix[(a * d + b, c * d + e)];
                            if coeff.abs() == 0.0 {
                                continue;
                            }
                            // Build |a><c| on site A and |b><e| on site B via a
                            // Kronecker chain.
                            let mut op = Matrix::identity(1);
                            for i in 0..n {
                                let factor = if i == ia {
                                    elementary(d, a, c)
                                } else if i == ib {
                                    elementary(d, b, e)
                                } else {
                                    Matrix::identity(d)
                                };
                                op = kron(&op, &factor);
                            }
                            out += &op.scale(coeff);
                        }
                    }
                }
            }
            out
        }
    }
}

fn elementary(d: usize, i: usize, j: usize) -> Matrix {
    let mut m = Matrix::zeros(d, d);
    m[(i, j)] = C64::ONE;
    m
}

impl Add for Observable {
    type Output = Observable;
    fn add(mut self, mut rhs: Observable) -> Observable {
        self.terms.append(&mut rhs.terms);
        self
    }
}

impl Mul<Observable> for f64 {
    type Output = Observable;
    fn mul(self, rhs: Observable) -> Observable {
        Observable { terms: rhs.terms.iter().map(|t| t.scaled(c64(self, 0.0))).collect() }
    }
}

impl Mul<f64> for Observable {
    type Output = Observable;
    fn mul(self, rhs: f64) -> Observable {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_algebra() {
        let x = pauli_x();
        let y = pauli_y();
        let z = pauli_z();
        // X^2 = Y^2 = Z^2 = I
        for p in [&x, &y, &z] {
            assert!(koala_linalg::matmul(p, p).approx_eq(&pauli_i(), 1e-14));
        }
        // XY = iZ
        let xy = koala_linalg::matmul(&x, &y);
        assert!(xy.approx_eq(&z.scale(c64(0.0, 1.0)), 1e-14));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = Matrix::from_real(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::identity(2);
        let k = kron(&a, &b);
        assert_eq!(k.shape(), (4, 4));
        assert!(k[(0, 0)].approx_eq(c64(1.0, 0.0), 1e-14));
        assert!(k[(2, 2)].approx_eq(c64(4.0, 0.0), 1e-14));
        assert!(k[(0, 2)].approx_eq(c64(2.0, 0.0), 1e-14));
        assert!(k[(1, 0)].approx_eq(C64::ZERO, 1e-14));
    }

    #[test]
    fn observable_composition() {
        let obs = Observable::zz((0, 0), (0, 1)) + 0.2 * Observable::x((0, 1));
        assert_eq!(obs.len(), 2);
        let scaled = obs.clone() * 2.0;
        assert_eq!(scaled.len(), 2);
        match &scaled.terms()[1] {
            LocalTerm::OneSite { matrix, .. } => {
                assert!(matrix.approx_eq(&pauli_x().scale(c64(0.4, 0.0)), 1e-14));
            }
            _ => panic!("expected one-site term"),
        }
    }

    #[test]
    fn validation_against_lattice() {
        let peps = Peps::computational_zeros(2, 2);
        assert!(Observable::z((0, 0)).validate(&peps).is_ok());
        assert!(Observable::z((5, 0)).validate(&peps).is_err());
        assert!(Observable::zz((0, 0), (0, 0)).validate(&peps).is_err());
        let bad = Observable::from_terms(vec![LocalTerm::OneSite {
            site: (0, 0),
            matrix: Matrix::identity(3),
        }]);
        assert!(bad.validate(&peps).is_err());
    }

    #[test]
    fn dense_one_site_term_is_embedded_correctly() {
        // Z on site (0,1) of a 1x2 lattice: I (x) Z.
        let obs = Observable::z((0, 1));
        let dense = obs.to_dense(1, 2, 2);
        let expected = kron(&pauli_i(), &pauli_z());
        assert!(dense.approx_eq(&expected, 1e-13));
    }

    #[test]
    fn dense_two_site_term_matches_direct_kron() {
        // ZZ on adjacent sites of a 1x2 lattice is just the 4x4 kron.
        let obs = Observable::zz((0, 0), (0, 1));
        let dense = obs.to_dense(1, 2, 2);
        assert!(dense.approx_eq(&kron(&pauli_z(), &pauli_z()), 1e-13));
        // XX on the *non-adjacent ordering* (site_b before site_a in memory).
        let obs2 = Observable::xx((0, 1), (0, 0));
        let dense2 = obs2.to_dense(1, 2, 2);
        assert!(dense2.approx_eq(&kron(&pauli_x(), &pauli_x()), 1e-13));
    }

    #[test]
    fn dense_observable_is_hermitian() {
        let obs = Observable::zz((0, 0), (0, 1))
            + Observable::xx((0, 1), (1, 1))
            + 0.5 * Observable::y((1, 0));
        let dense = obs.to_dense(2, 2, 2);
        assert!(dense.is_hermitian(1e-12));
    }

    #[test]
    fn row_span_of_terms() {
        let t = LocalTerm::TwoSite { site_a: (1, 0), site_b: (2, 0), matrix: Matrix::identity(4) };
        assert_eq!(t.row_span(), (1, 2));
        let o = LocalTerm::OneSite { site: (3, 1), matrix: Matrix::identity(2) };
        assert_eq!(o.row_span(), (3, 3));
    }
}
