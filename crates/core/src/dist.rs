//! PEPS kernels driven through the simulated distributed-memory backend.
//!
//! These are the code paths behind the "ctf" curves of the paper's
//! evaluation. The heavy tensors live as block-distributed matrices on a
//! [`Cluster`]; every factorization and contraction routes its data movement
//! through the cluster so the communication counters reflect what a Cyclops /
//! ScaLAPACK execution would transfer. Three evolution variants mirror
//! Figure 7:
//!
//! * [`DistEvolutionVariant::CtfQrSvd`] — the baseline: site tensors are
//!   matricized and factorized with a gather/ScaLAPACK-style QR, which
//!   requires redistributing the full tensors,
//! * [`DistEvolutionVariant::LocalGramQr`] — orthogonalization through the
//!   Gram matrix (Algorithm 5): only the tiny Gram matrix is allreduced;
//!   the einsumsvd on the small `R` factors is still executed with
//!   distributed objects,
//! * [`DistEvolutionVariant::LocalGramQrSvd`] — both the orthogonalization and
//!   the einsumsvd are done in local (replicated) memory.
//!
//! The distributed contraction wrapper charges the cluster with the per-step
//! cost profile of BMPS vs IBMPS (merged-tensor redistribution + gathered SVD
//! vs Gram-orthogonalized implicit sketching) while computing the numerical
//! result with the verified local algorithms; see DESIGN.md §1 and §7 for the
//! fidelity discussion.

use crate::contract::{contract_no_phys, ContractionMethod};
use crate::peps::{Direction, Peps, Result, Site};
use crate::update::{canonical_perms, invert5, reorder_gate, small_einsumsvd};
use koala_cluster::{gram_qr_dist, qr_gather_dist, Cluster, DistMatrix, DistTensor};
use koala_linalg::C64;
use koala_tensor::{Tensor, Truncation};
use rand::Rng;

/// Which distributed evolution variant to run (the legend entries of Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistEvolutionVariant {
    /// `ctf-qr-svd`: matricize + gather-based QR of the full site tensors.
    CtfQrSvd,
    /// `ctf-local-gram-qr`: Gram-matrix orthogonalization, distributed einsumsvd.
    LocalGramQr,
    /// `ctf-local-gram-qr-svd`: Gram-matrix orthogonalization and local einsumsvd.
    LocalGramQrSvd,
}

impl DistEvolutionVariant {
    /// Short label matching the paper's plot legends.
    pub fn label(&self) -> &'static str {
        match self {
            DistEvolutionVariant::CtfQrSvd => "ctf-qr-svd",
            DistEvolutionVariant::LocalGramQr => "ctf-local-gram-qr",
            DistEvolutionVariant::LocalGramQrSvd => "ctf-local-gram-qr-svd",
        }
    }
}

/// Apply a two-site gate on neighbouring sites with the QR-SVD update, running
/// the heavy factorizations on the virtual cluster. Returns the truncation
/// error of the refactorized bond.
pub fn dist_two_site_update(
    cluster: &Cluster,
    peps: &mut Peps,
    gate: &koala_linalg::Matrix,
    site_a: Site,
    site_b: Site,
    max_bond: usize,
    variant: DistEvolutionVariant,
) -> Result<f64> {
    let dir = peps.direction_between(site_a, site_b).ok_or_else(|| {
        koala_tensor::TensorError::InvalidAxes {
            context: format!("dist_two_site_update: {site_a:?} and {site_b:?} are not neighbours"),
        }
    })?;
    // Normalise reversed pairs (Left/Up) to the canonical orientations,
    // exactly like the local implementation does.
    let (site_a, site_b, dir, gate_owned) = match dir {
        Direction::Right | Direction::Down => (site_a, site_b, dir, gate.clone()),
        other => {
            let d_a = peps.phys_dim(site_a);
            let d_b = peps.phys_dim(site_b);
            (site_b, site_a, other.opposite(), reorder_gate(gate, d_a, d_b)?)
        }
    };
    let gate = &gate_owned;

    let d_a = peps.phys_dim(site_a);
    let d_b = peps.phys_dim(site_b);
    let truncation = Truncation::rank_and_tol(max_bond, 1e-14);
    let (perm_a, perm_b) = canonical_perms(dir);
    let a = peps.tensor(site_a).permute(&perm_a)?; // [pa, o1, o2, o3, bond]
    let b = peps.tensor(site_b).permute(&perm_b)?; // [pb, bond, o1, o2, o3]
    let gate_t = Tensor::from_matrix_2d(gate).into_reshape(&[d_a, d_b, d_a, d_b])?;

    // ---- Step 1: QR of both site tensors on the cluster. ----
    // Each permuted site tensor is placed as a block-cyclic distributed
    // tensor with the outer bonds (o1,o2,o3) grouped as matricization rows.
    // The factorization input is a zero-copy view of that layout, so the
    // whole update — Gram allreduce, recombination GEMMs — runs without any
    // full-tensor gather or redistribution round-trip.
    // a: rows = outer bonds (o1,o2,o3), cols = (pa, bond)
    let a_mat_t = a.permute(&[1, 2, 3, 0, 4])?; // [o1,o2,o3, pa, bond]
    let a_rows: Vec<usize> = a_mat_t.shape()[..3].to_vec();
    let a_dist = scatter_site(cluster, &a_mat_t);
    // b: rows = outer bonds (o1,o2,o3) = axes 2,3,4, cols = (pb, bond)
    let b_mat_t = b.permute(&[2, 3, 4, 0, 1])?; // [o1,o2,o3, pb, bond]
    let b_rows: Vec<usize> = b_mat_t.shape()[..3].to_vec();
    let b_dist = scatter_site(cluster, &b_mat_t);

    // The Gram path can degrade (ill-conditioned spectrum) or reject
    // non-finite inputs; surface either through the tensor error channel.
    let dist_qr_err = |e: koala_error::KoalaError| {
        koala_tensor::TensorError::Linalg(e.context("dist_two_site_update").to_string())
    };
    let (qa, qb) = match variant {
        DistEvolutionVariant::CtfQrSvd => (qr_gather_dist(&a_dist), qr_gather_dist(&b_dist)),
        _ => (
            gram_qr_dist(&a_dist).map_err(dist_qr_err)?,
            gram_qr_dist(&b_dist).map_err(dist_qr_err)?,
        ),
    };
    let ka = qa.r.nrows();
    let kb = qb.r.nrows();
    // R factors are small and replicated: [ka, pa, bond], [kb, pb, bond].
    let r_a = Tensor::fold(&qa.r, &[ka], &[d_a, a.dim(4)])?;
    let r_b = Tensor::fold(&qb.r, &[kb], &[d_b, b.dim(1)])?;

    // ---- Step 2: einsumsvd on the small factors. ----
    // The modelled work is billed to the kernel the operands' realness hints
    // select: a real workload (real gate, real R factors) runs the einsumsvd
    // on the real-only kernel on every rank.
    let einsumsvd_real = gate_t.is_real() && r_a.is_real() && r_b.is_real();
    match variant {
        DistEvolutionVariant::LocalGramQrSvd => {
            // Fully local/replicated: every rank performs the identical small
            // computation, no communication.
            let flops = (ka * d_a * kb * d_b * (d_a * d_b + max_bond)) as u64;
            cluster.record_macs_all(flops, einsumsvd_real);
        }
        _ => {
            // Distributed einsumsvd: the theta tensor is formed and factorized
            // as a distributed object, costing extra collectives and a
            // redistribution of theta for its matricization.
            let theta_elems = ka * d_a * kb * d_b;
            cluster.record_redistribution(theta_elems);
            cluster.record_collective(theta_elems, 2);
            let flops = (ka * d_a * kb * d_b * (d_a * d_b + max_bond)) as u64;
            let nranks = cluster.nranks() as u64;
            for rank in 0..cluster.nranks() {
                cluster.record_macs(rank, flops / nranks + 1, einsumsvd_real);
            }
        }
    }
    let (rt_a, rt_b, err) = small_einsumsvd(&gate_t, &r_a, &r_b, truncation)?;
    let k = rt_a.dim(2);

    // ---- Step 3: recombine Q with the updated R factors (distributed GEMM,
    // no communication: Q keeps its row distribution, R~ is replicated). ----
    let rt_a_mat = rt_a.unfold(1); // [ka, pa*k]
    let new_a_dist = qa.q.matmul_replicated(&rt_a_mat);
    let rt_b_mat = rt_b.permute(&[1, 2, 0])?.unfold(1); // [kb, pb*k]
    let new_b_dist = qb.q.matmul_replicated(&rt_b_mat);

    // Bring the results back to the host PEPS (unaccounted: a real run keeps
    // the site tensors distributed between gate applications).
    let new_a = Tensor::fold(&new_a_dist.gather_unaccounted(), &a_rows, &[d_a, k])?;
    let new_a = new_a.permute(&[3, 0, 1, 2, 4])?; // [pa, o1, o2, o3, k]
    let new_b = Tensor::fold(&new_b_dist.gather_unaccounted(), &b_rows, &[d_b, k])?;
    let new_b = new_b.permute(&[3, 4, 0, 1, 2])?; // [pb, k, o1, o2, o3]

    peps.set_tensor(site_a, new_a.permute(&invert5(perm_a))?);
    peps.set_tensor(site_b, new_b.permute(&invert5(perm_b))?);
    Ok(err)
}

/// Place a permuted site tensor `[o1, o2, o3, phys, bond]` as a block-cyclic
/// distributed tensor with the outer bonds grouped as matricization rows, and
/// hand back the zero-copy matricization the distributed factorizations
/// consume.
///
/// The matricization is tall and skinny (outer bonds x phys*bond), so the
/// rows go cyclically over all `P` ranks on a `P x 1` grid — the TSQR-style
/// layout under which Algorithm 5's Gram product needs only an
/// `ncols x ncols` allreduce. Spreading the skinny column dimension over a
/// second grid factor would reintroduce `O(m n)` column reductions and lose
/// the algorithm's asymptotic advantage; genuinely 2-D layouts are for the
/// square SUMMA products at the `koala_cluster` layer.
fn scatter_site(cluster: &Cluster, t: &Tensor) -> DistMatrix {
    let grid = koala_cluster::ProcGrid::column(cluster.nranks());
    let m: usize = t.shape()[..3].iter().product();
    let n: usize = t.shape()[3..].iter().product();
    let dt = DistTensor::scatter_grouped(
        cluster,
        t,
        &[0, 1, 2, 3, 4],
        3,
        grid,
        cyclic_block(m, grid.rows()),
        cyclic_block(n, grid.cols()),
    );
    dt.unfold_as_dist_matrix(3)
}

/// Block size giving roughly two cyclic blocks per grid slot, so small site
/// matricizations still exercise the block-cyclic wrap-around.
fn cyclic_block(n: usize, parts: usize) -> usize {
    n.div_ceil(parts * 2).max(1)
}

/// Apply one layer of TEBD operators (the same two-site gate on every
/// nearest-neighbour pair) through the distributed kernel.
pub fn dist_tebd_layer(
    cluster: &Cluster,
    peps: &mut Peps,
    gate: &koala_linalg::Matrix,
    max_bond: usize,
    variant: DistEvolutionVariant,
) -> Result<f64> {
    let mut err_sq = 0.0;
    for (a, b) in peps.horizontal_pairs() {
        let e = dist_two_site_update(cluster, peps, gate, a, b, max_bond, variant)?;
        err_sq += e * e;
    }
    for (a, b) in peps.vertical_pairs() {
        let e = dist_two_site_update(cluster, peps, gate, a, b, max_bond, variant)?;
        err_sq += e * e;
    }
    Ok(err_sq.sqrt())
}

/// Contract a PEPS without physical indices on the cluster. The numerical
/// value is computed with the verified local algorithms; the per-step cost of
/// the distributed execution (work split across ranks, plus the
/// redistributions / collectives each method needs) is charged to the
/// cluster's counters so the modelled time can be compared across methods and
/// rank counts (Figures 8b, 11, 12).
pub fn dist_contract_no_phys<R: Rng + ?Sized>(
    cluster: &Cluster,
    peps: &Peps,
    method: ContractionMethod,
    rng: &mut R,
) -> Result<C64> {
    charge_contraction_costs(cluster, peps, method);
    contract_no_phys(peps, method, rng)
}

/// Charge the cluster with the modelled per-row costs of a boundary
/// contraction. The cost formulas follow Table II of the paper with the
/// lattice dimensions of `peps`.
fn charge_contraction_costs(cluster: &Cluster, peps: &Peps, method: ContractionMethod) {
    let n = peps.nrows().max(peps.ncols());
    let r: usize = peps.max_bond();
    let nranks = cluster.nranks() as u64;
    // A PEPS whose site tensors all carry the realness hint contracts on the
    // real-only kernel; bill the modelled work accordingly.
    let real = peps.tensors().iter().all(|t| t.is_real());
    let (m, implicit) = match method {
        ContractionMethod::Exact => (r.pow(peps.nrows() as u32 / 2).max(r), false),
        ContractionMethod::Bmps { max_bond } => (max_bond, false),
        ContractionMethod::Ibmps { max_bond, .. } => (max_bond, true),
    };
    for _row in 1..peps.nrows() {
        for _col in 0..peps.ncols() {
            if implicit {
                // IBMPS step: O(m^2 r^2 + m^3 r) work (Table II per-site terms),
                // Gram allreduces of m x m objects, no big redistribution.
                let work = (m * m * r * r + m * m * m * r) as u64;
                for rank in 0..cluster.nranks() {
                    cluster.record_macs(rank, work / nranks + 1, real);
                }
                cluster.record_collective(m * m, 2);
            } else {
                // BMPS step: O(m^3 r^2) work, one redistribution of the merged
                // step tensor (size m^2 r^2) for its matricization, and a
                // gather-style SVD of that matrix.
                let work = (m * m * m * r * r) as u64;
                for rank in 0..cluster.nranks() {
                    cluster.record_macs(rank, work / nranks + 1, real);
                }
                let merged = m * m * r * r;
                cluster.record_redistribution(merged);
                cluster.record_collective(merged, 1);
            }
        }
    }
    let _ = n;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{kron, pauli_x, pauli_z};
    use crate::update::{apply_two_site, UpdateMethod};
    use koala_linalg::{c64, expm_hermitian};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entangling_gate() -> koala_linalg::Matrix {
        let h = &kron(&pauli_x(), &pauli_x()) + &kron(&pauli_z(), &pauli_z());
        expm_hermitian(&h, c64(0.0, -0.4)).unwrap()
    }

    #[test]
    fn dist_update_matches_local_update() {
        for variant in [
            DistEvolutionVariant::CtfQrSvd,
            DistEvolutionVariant::LocalGramQr,
            DistEvolutionVariant::LocalGramQrSvd,
        ] {
            let mut rng = StdRng::seed_from_u64(1);
            let base = Peps::random(2, 2, 2, 2, &mut rng);
            let gate = entangling_gate();

            let cluster = Cluster::new(4);
            let mut dist_peps = base.clone();
            dist_two_site_update(&cluster, &mut dist_peps, &gate, (0, 0), (0, 1), 8, variant)
                .unwrap();

            let mut local_peps = base.clone();
            apply_two_site(&mut local_peps, &gate, (0, 0), (0, 1), UpdateMethod::qr_svd(8))
                .unwrap();

            let d1 = dist_peps.to_dense().unwrap();
            let d2 = local_peps.to_dense().unwrap();
            assert!(
                d1.approx_eq(&d2, 1e-6 * d2.norm_max().max(1.0)),
                "{} differs from the local reference",
                variant.label()
            );
        }
    }

    #[test]
    fn dist_update_works_in_all_directions() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = Peps::random(2, 2, 2, 2, &mut rng);
        let gate = entangling_gate();
        let cluster = Cluster::new(3);
        for (a, b) in [((0, 0), (1, 0)), ((1, 1), (1, 0)), ((1, 0), (0, 0))] {
            let mut dist_peps = base.clone();
            dist_two_site_update(
                &cluster,
                &mut dist_peps,
                &gate,
                a,
                b,
                8,
                DistEvolutionVariant::LocalGramQrSvd,
            )
            .unwrap();
            let mut local_peps = base.clone();
            apply_two_site(&mut local_peps, &gate, a, b, UpdateMethod::qr_svd(8)).unwrap();
            assert!(dist_peps.to_dense().unwrap().approx_eq(&local_peps.to_dense().unwrap(), 1e-6));
        }
    }

    #[test]
    fn real_workload_stays_real_per_rank_and_in_the_wires() {
        // A real product state evolved by a real (imaginary-time) gate must
        // keep every distributed object hinted real and bill zero complex
        // MACs to any rank, for every evolution variant.
        let h = &kron(&pauli_x(), &pauli_x()) + &kron(&pauli_z(), &pauli_z());
        let gate = expm_hermitian(&h, c64(-0.4, 0.0)).unwrap();
        assert!(gate.is_real(), "an imaginary-time Trotter gate of a real H is real");
        for variant in [
            DistEvolutionVariant::CtfQrSvd,
            DistEvolutionVariant::LocalGramQr,
            DistEvolutionVariant::LocalGramQrSvd,
        ] {
            let mut peps = Peps::computational_zeros(2, 2);
            assert!(peps.tensors().iter().all(|t| t.is_real()));
            let cluster = Cluster::new(4);
            dist_two_site_update(&cluster, &mut peps, &gate, (0, 0), (0, 1), 8, variant).unwrap();
            assert!(
                peps.tensors().iter().all(|t| t.is_real()),
                "{}: site tensors lost the realness hint",
                variant.label()
            );
            let stats = cluster.stats();
            assert_eq!(
                stats.total_flops(),
                0,
                "{}: a real workload billed complex MACs to the cluster",
                variant.label()
            );
            assert!(stats.total_real_macs() > 0, "{}: no real work recorded", variant.label());
        }
    }

    #[test]
    fn gram_gate_update_is_gather_free_on_a_2d_grid() {
        // On a cluster with a genuinely 2-D default grid the Gram-path gate
        // update must stay distributed end to end: site tensors scatter
        // block-cyclically, their matricization is a zero-copy view, the Gram
        // matrix needs one small allreduce, and the recombination GEMMs keep
        // Q in place — no full-tensor gather, no redistribution. The
        // gather-QR baseline, by contrast, bills its gathers.
        let mut rng = StdRng::seed_from_u64(9);
        let base = Peps::random(2, 2, 2, 3, &mut rng);
        let gate = entangling_gate();

        let cluster = Cluster::new(4);
        assert_eq!((cluster.grid().rows(), cluster.grid().cols()), (2, 2));
        let mut p = base.clone();
        dist_two_site_update(
            &cluster,
            &mut p,
            &gate,
            (0, 0),
            (0, 1),
            6,
            DistEvolutionVariant::LocalGramQrSvd,
        )
        .unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.full_gathers, 0, "Gram path must never gather a full tensor");
        assert_eq!(stats.redistributions, 0, "matricization is a zero-copy view");

        let cluster2 = Cluster::new(4);
        let mut p = base.clone();
        dist_two_site_update(
            &cluster2,
            &mut p,
            &gate,
            (0, 0),
            (0, 1),
            6,
            DistEvolutionVariant::CtfQrSvd,
        )
        .unwrap();
        assert!(cluster2.stats().full_gathers > 0, "gather-QR baseline bills its gathers");
    }

    #[test]
    fn gram_variant_communicates_less_than_gather_variant() {
        let mut rng = StdRng::seed_from_u64(3);
        let gate = entangling_gate();
        let base = Peps::random(3, 3, 2, 4, &mut rng);

        let cluster_a = Cluster::new(8);
        let mut p = base.clone();
        dist_tebd_layer(&cluster_a, &mut p, &gate, 4, DistEvolutionVariant::CtfQrSvd).unwrap();
        let bytes_gather = cluster_a.stats().bytes_communicated;
        let redist_gather = cluster_a.stats().redistributions;

        let cluster_b = Cluster::new(8);
        let mut p = base.clone();
        dist_tebd_layer(&cluster_b, &mut p, &gate, 4, DistEvolutionVariant::LocalGramQrSvd)
            .unwrap();
        let bytes_gram = cluster_b.stats().bytes_communicated;
        let redist_gram = cluster_b.stats().redistributions;

        assert!(
            bytes_gram < bytes_gather,
            "gram path ({bytes_gram} B) should beat gather path ({bytes_gather} B)"
        );
        assert!(redist_gram < redist_gather);
    }

    #[test]
    fn dist_contraction_matches_local_value_and_charges_costs() {
        let mut rng = StdRng::seed_from_u64(4);
        let peps = Peps::random_no_phys(3, 3, 2, &mut rng);
        let cluster = Cluster::new(4);
        let dist =
            dist_contract_no_phys(&cluster, &peps, ContractionMethod::bmps(8), &mut rng).unwrap();
        let local = contract_no_phys(&peps, ContractionMethod::bmps(8), &mut rng).unwrap();
        assert!(dist.approx_eq(local, 1e-6 * local.abs().max(1e-12)));
        let stats = cluster.stats();
        assert!(stats.total_flops() > 0);
        assert!(stats.redistributions > 0);

        // IBMPS charges no redistributions.
        let cluster2 = Cluster::new(4);
        let _ =
            dist_contract_no_phys(&cluster2, &peps, ContractionMethod::ibmps(8), &mut rng).unwrap();
        assert_eq!(cluster2.stats().redistributions, 0);
        assert!(cluster2.stats().bytes_communicated < stats.bytes_communicated);
    }
}
