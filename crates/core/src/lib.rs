//! # koala-peps
//!
//! The core contribution of the reproduced paper, *"Efficient 2D Tensor
//! Network Simulation of Quantum Systems"* (SC 2020): evolution and
//! contraction algorithms for projected entangled pair states (PEPS), built
//! on the dense tensor / MPS / simulated-cluster substrates of the companion
//! crates.
//!
//! * [`Peps`] — the 2D tensor network state,
//! * [`operators::Observable`] — sums of local terms (Hamiltonians, measurements),
//! * [`update`] — one-site and two-site operator application: the simple
//!   update, the QR-SVD update of Algorithm 1, and its reshape-avoiding
//!   Gram-matrix variant (Algorithm 5),
//! * [`contract`] — Exact, BMPS (Algorithm 2 + 3) and IBMPS (implicit
//!   randomized SVD, Algorithm 4) contraction of one-layer networks,
//! * [`two_layer`] — the two-layer IBMPS inner product (Table II),
//! * [`mod@expectation`] — expectation values with the row-environment caching
//!   strategy of §IV-B,
//! * [`dist`] — the same evolution/contraction kernels driven through the
//!   simulated distributed-memory backend (`koala-cluster`), used by the
//!   scaling and backend-comparison benchmarks (Figures 7, 8, 11, 12).
//!
//! The hot site-local contractions (gate application, the einsumsvd theta
//! networks, bra–ket site merging) run through `koala_tensor::einsum`, whose
//! contraction plans are memoised per `(spec, shapes)` key — an evolution or
//! expectation sweep pays the planning cost once and replays the cached
//! schedule for every site and step (see `koala_tensor::plan`).
//!
//! ## Quick example
//!
//! ```
//! use koala_peps::{Peps, operators::Observable, update::{apply_one_site, apply_two_site, UpdateMethod}};
//! use koala_peps::expectation::{expectation_normalized, ExpectationOptions};
//! use koala_peps::operators::{pauli_x, kron, pauli_z};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! // Create a 2x3 PEPS in the |000000> state.
//! let mut qstate = Peps::computational_zeros(2, 3);
//! // Apply a one-site and a two-site operator with the QR-SVD update.
//! apply_one_site(&mut qstate, &pauli_x(), (0, 1)).unwrap();
//! let zz = kron(&pauli_z(), &pauli_z());
//! apply_two_site(&mut qstate, &zz, (0, 1), (1, 1), UpdateMethod::qr_svd(2)).unwrap();
//! // Measure an observable with IBMPS contraction and intermediate caching.
//! let h = Observable::zz((1, 0), (1, 1)) + 0.2 * Observable::x((0, 1));
//! let energy = expectation_normalized(&qstate, &h, ExpectationOptions::ibmps_cached(4), &mut rng).unwrap();
//! assert!(energy.im.abs() < 1e-8);
//! ```

#![warn(missing_docs)]
// Library code must not panic on fallible paths: failures become
// `KoalaError` results so long-running drivers can recover instead of
// aborting (see ARCHITECTURE.md, "Failure model").
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod contract;
pub mod dist;
pub mod expectation;
pub mod operators;
pub mod peps;
pub mod two_layer;
pub mod update;

pub use contract::{amplitude, contract_no_phys, inner_merged, norm_sqr, ContractionMethod};
pub use dist::{
    dist_contract_no_phys, dist_tebd_layer, dist_two_site_update, DistEvolutionVariant,
};
pub use expectation::{expectation, expectation_normalized, EnvCache, ExpectationOptions};
pub use operators::{LocalTerm, Observable};
pub use peps::{Direction, Peps, Site};
pub use two_layer::{inner_two_layer, norm_sqr_two_layer, TwoLayerOptions};
pub use update::{
    apply_one_site, apply_two_site, apply_two_site_any, apply_two_site_everywhere, swap_gate,
    UpdateMethod,
};
