//! Expectation values of local observables, with the intermediate caching
//! strategy of paper §IV-B (Figure 6).
//!
//! `<psi|H|psi>` with `H = sum_i H_i` is evaluated term by term: `H_i|psi>` is
//! formed by an exact local operator application and the overlap with `<psi|`
//! is a two-layer contraction. Without caching every term pays for a full
//! boundary contraction of the lattice. With caching, the row environments of
//! the `<psi|psi>` network (partial contractions from the top and from the
//! bottom) are computed once — two full contractions — and every term then
//! only needs a small strip contraction spanning the rows it touches.

use crate::contract::{row_as_mpo, row_as_mps, ContractionMethod};
use crate::operators::{LocalTerm, Observable};
use crate::peps::{Peps, Result, AX_P, AX_U};
use crate::update::{apply_one_site, apply_two_site_any, UpdateMethod};
use koala_linalg::C64;
use koala_mps::{zip_up, Mpo, Mps, ZipUpMethod};
use koala_tensor::{Tensor, TensorError, Truncation};
use rand::Rng;

/// Options controlling the expectation-value computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpectationOptions {
    /// Contraction algorithm for the boundary sweeps.
    pub method: ContractionMethod,
    /// Reuse row environments across terms (paper §IV-B).
    pub use_cache: bool,
}

impl ExpectationOptions {
    /// IBMPS contraction with caching enabled — the recommended configuration.
    pub fn ibmps_cached(max_bond: usize) -> Self {
        ExpectationOptions { method: ContractionMethod::ibmps(max_bond), use_cache: true }
    }

    /// BMPS contraction with caching enabled.
    pub fn bmps_cached(max_bond: usize) -> Self {
        ExpectationOptions { method: ContractionMethod::bmps(max_bond), use_cache: true }
    }
}

fn zip_method(method: ContractionMethod) -> (ZipUpMethod, usize, bool) {
    match method {
        ContractionMethod::Exact => (ZipUpMethod::ExactSvd, usize::MAX, true),
        ContractionMethod::Bmps { max_bond } => (ZipUpMethod::ExactSvd, max_bond, false),
        ContractionMethod::Ibmps { max_bond, n_iter, oversample } => {
            (ZipUpMethod::ImplicitRandSvd { n_iter, oversample }, max_bond, false)
        }
    }
}

/// Apply one row MPO to a boundary MPS according to the contraction method.
fn apply_row<R: Rng + ?Sized>(
    boundary: &Mps,
    mpo: &Mpo,
    method: ContractionMethod,
    rng: &mut R,
) -> Result<Mps> {
    let (zip, max_bond, exact) = zip_method(method);
    if exact {
        mpo.apply_exact(boundary)
    } else {
        zip_up(boundary, mpo, max_bond, zip, rng)
    }
}

/// Merge a bra site (conjugated) with a ket site over the physical index,
/// producing a rank-5 tensor `[1, u_pair, l_pair, d_pair, r_pair]`.
///
/// The contraction-and-interleave runs as one cached einsum plan: every term
/// of an observable merges sites of the same handful of shapes, so the
/// planning cost is paid once per shape for the whole expectation sweep.
fn merge_site_pair(bra_site: &Tensor, ket_site: &Tensor) -> Result<Tensor> {
    if bra_site.dim(AX_P) != ket_site.dim(AX_P) {
        return Err(TensorError::ShapeMismatch {
            context: "merge_site_pair: physical dimensions differ".into(),
        });
    }
    // [p, ub, lb, db, rb] x [p, uk, lk, dk, rk] -> [ub, uk, lb, lk, db, dk, rb, rk]
    let pair = koala_tensor::einsum("pabcd,pefgh->aebfcgdh", &[&bra_site.conj(), ket_site])?;
    let s = pair.shape().to_vec();
    pair.into_reshape(&[1, s[0] * s[1], s[2] * s[3], s[4] * s[5], s[6] * s[7]])
}

/// Cached row environments of the two-layer `<psi|psi>` network.
#[derive(Debug, Clone)]
pub struct EnvCache {
    /// `top[r]` = boundary MPS after absorbing merged rows `0..r` (so `top[0]`
    /// is `None` and `top[r]` has physical dimensions equal to the down-pair
    /// bonds of row `r-1`).
    top: Vec<Option<Mps>>,
    /// `bottom[r]` = boundary MPS (built from below) after absorbing rows
    /// `r+1..nrows`; `bottom[nrows-1]` is `None`.
    bottom: Vec<Option<Mps>>,
}

impl EnvCache {
    /// Build the cache: one top-down and one bottom-up sweep over the merged
    /// network — the "two full two-layer PEPS contractions" of §IV-B.
    pub fn build<R: Rng + ?Sized>(
        merged: &Peps,
        method: ContractionMethod,
        rng: &mut R,
    ) -> Result<Self> {
        let nrows = merged.nrows();
        let mut top: Vec<Option<Mps>> = vec![None; nrows];
        let mut bottom: Vec<Option<Mps>> = vec![None; nrows];

        // Top-down sweep.
        let mut current = row_as_mps(merged, 0)?;
        if nrows > 1 {
            top[1] = Some(current.clone());
        }
        for r in 1..nrows.saturating_sub(1) {
            let mpo = row_as_mpo(merged, r)?;
            current = apply_row(&current, &mpo, method, rng)?;
            top[r + 1] = Some(current.clone());
        }

        // Bottom-up sweep: flip the rows upside down (swap up/down axes).
        let mut current = flipped_row_as_mps(merged, nrows - 1)?;
        if nrows > 1 {
            bottom[nrows - 2] = Some(current.clone());
        }
        for r in (1..nrows.saturating_sub(1)).rev() {
            let mpo = flipped_row_as_mpo(merged, r)?;
            current = apply_row(&current, &mpo, method, rng)?;
            bottom[r - 1] = Some(current.clone());
        }
        Ok(EnvCache { top, bottom })
    }

    /// Environment above row `r` (None when `r == 0`).
    pub fn top(&self, r: usize) -> Option<&Mps> {
        self.top[r].as_ref()
    }

    /// Environment below row `r` (None when `r` is the last row).
    pub fn bottom(&self, r: usize) -> Option<&Mps> {
        self.bottom[r].as_ref()
    }
}

/// Row of a one-layer PEPS as an MPS seen from below (up index becomes the
/// open "physical" index).
fn flipped_row_as_mps(peps: &Peps, row: usize) -> Result<Mps> {
    let mut tensors = Vec::with_capacity(peps.ncols());
    for c in 0..peps.ncols() {
        let t = peps.tensor((row, c));
        // [1, u, l, 1, r] -> [l, u, r]
        let site = t.select(AX_P, 0)?.select(2, 0)?; // -> [u, l, r] after removing d
        let site = site.permute(&[1, 0, 2])?;
        tensors.push(site);
    }
    Mps::new(tensors)
}

/// Row of a one-layer PEPS as an MPO seen from below (up and down swapped).
fn flipped_row_as_mpo(peps: &Peps, row: usize) -> Result<Mpo> {
    let mut tensors = Vec::with_capacity(peps.ncols());
    for c in 0..peps.ncols() {
        let t = peps.tensor((row, c));
        // [1, u, l, d, r] -> [u, l, d, r] -> [l, d, u, r]
        let site = t.select(AX_P, 0)?.permute(&[1, 2, 0, 3])?;
        tensors.push(site);
    }
    Mpo::new(tensors)
}

/// Compute `<psi|H|psi>` (unnormalised). See [`expectation_normalized`] for the
/// Rayleigh quotient.
pub fn expectation<R: Rng + ?Sized>(
    peps: &Peps,
    observable: &Observable,
    options: ExpectationOptions,
    rng: &mut R,
) -> Result<C64> {
    observable.validate(peps)?;
    if options.use_cache {
        expectation_cached(peps, observable, options.method, rng)
    } else {
        expectation_uncached(peps, observable, options.method, rng)
    }
}

/// `<psi|H|psi> / <psi|psi>`, the Rayleigh quotient used by ITE and VQE.
pub fn expectation_normalized<R: Rng + ?Sized>(
    peps: &Peps,
    observable: &Observable,
    options: ExpectationOptions,
    rng: &mut R,
) -> Result<C64> {
    observable.validate(peps)?;
    let (value, norm) = match options.use_cache {
        true => {
            let merged = peps.merge_with_bra(peps)?;
            let cache = EnvCache::build(&merged, options.method, rng)?;
            let value =
                expectation_cached_with(peps, observable, options.method, &merged, &cache, rng)?;
            let norm = norm_from_cache(&merged, &cache, options.method, rng)?;
            (value, norm)
        }
        false => {
            let value = expectation_uncached(peps, observable, options.method, rng)?;
            let norm = crate::contract::norm_sqr(peps, options.method, rng)?;
            (value, C64::from_real(norm))
        }
    };
    Ok(value / norm)
}

fn expectation_uncached<R: Rng + ?Sized>(
    peps: &Peps,
    observable: &Observable,
    method: ContractionMethod,
    rng: &mut R,
) -> Result<C64> {
    let mut total = C64::ZERO;
    for term in observable.terms() {
        let phi = apply_term(peps, term)?;
        total += crate::contract::inner_merged(peps, &phi, method, rng)?;
    }
    Ok(total)
}

fn expectation_cached<R: Rng + ?Sized>(
    peps: &Peps,
    observable: &Observable,
    method: ContractionMethod,
    rng: &mut R,
) -> Result<C64> {
    let merged = peps.merge_with_bra(peps)?;
    let cache = EnvCache::build(&merged, method, rng)?;
    expectation_cached_with(peps, observable, method, &merged, &cache, rng)
}

fn expectation_cached_with<R: Rng + ?Sized>(
    peps: &Peps,
    observable: &Observable,
    method: ContractionMethod,
    merged: &Peps,
    cache: &EnvCache,
    rng: &mut R,
) -> Result<C64> {
    let mut total = C64::ZERO;
    for term in observable.terms() {
        total += term_value_cached(peps, term, method, merged, cache, rng)?;
    }
    Ok(total)
}

/// `<psi|psi>` reusing the cached environments (a single strip contraction).
fn norm_from_cache<R: Rng + ?Sized>(
    merged: &Peps,
    cache: &EnvCache,
    _method: ContractionMethod,
    _rng: &mut R,
) -> Result<C64> {
    let nrows = merged.nrows();
    let row = 0usize;
    let current = row_as_mps(merged, row)?;
    if nrows == 1 {
        return current.contract_to_scalar();
    }
    let bottom = cache.bottom(row).ok_or_else(|| TensorError::ShapeMismatch {
        context: format!("norm_from_cache: missing bottom environment below row {row}"),
    })?;
    current.dot(bottom)
}

/// `H_i |psi>` by an exact local operator application.
fn apply_term(peps: &Peps, term: &LocalTerm) -> Result<Peps> {
    let mut phi = peps.clone();
    match term {
        LocalTerm::OneSite { site, matrix } => {
            apply_one_site(&mut phi, matrix, *site)?;
        }
        LocalTerm::TwoSite { site_a, site_b, matrix } => {
            apply_two_site_any(
                &mut phi,
                matrix,
                *site_a,
                *site_b,
                UpdateMethod::Direct { truncation: Truncation::none() },
            )?;
        }
    }
    Ok(phi)
}

/// Evaluate one term using the cached environments: contract only the strip of
/// rows the term touches.
fn term_value_cached<R: Rng + ?Sized>(
    peps: &Peps,
    term: &LocalTerm,
    method: ContractionMethod,
    _merged: &Peps,
    cache: &EnvCache,
    rng: &mut R,
) -> Result<C64> {
    let nrows = peps.nrows();
    let phi = apply_term(peps, term)?;
    let (r0, r1) = term.row_span();

    // Build the modified merged rows r0..=r1 from (conj(psi), phi).
    let mut modified_rows: Vec<Vec<Tensor>> = Vec::with_capacity(r1 - r0 + 1);
    for r in r0..=r1 {
        let mut row = Vec::with_capacity(peps.ncols());
        for c in 0..peps.ncols() {
            row.push(merge_site_pair(peps.tensor((r, c)), phi.tensor((r, c)))?);
        }
        modified_rows.push(row);
    }

    // Strip contraction: top environment, then the modified rows, then close
    // with the bottom environment.
    let mut current: Mps;
    let mut start_row = r0;
    if r0 == 0 {
        current = merged_row_to_mps(&modified_rows[0])?;
        start_row = 1;
    } else {
        current = cache
            .top(r0)
            .ok_or_else(|| TensorError::ShapeMismatch {
                context: format!("term_value_cached: missing top environment above row {r0}"),
            })?
            .clone();
    }
    for r in start_row..=r1 {
        let mpo = merged_row_to_mpo(&modified_rows[r - r0])?;
        current = apply_row(&current, &mpo, method, rng)?;
    }
    if r1 == nrows - 1 {
        current.contract_to_scalar()
    } else {
        let bottom = cache.bottom(r1).ok_or_else(|| TensorError::ShapeMismatch {
            context: format!("term_value_cached: missing bottom environment below row {r1}"),
        })?;
        current.dot(bottom)
    }
}

/// Convert a row of merged rank-5 tensors `[1, u, l, d, r]` (with `u = 1`)
/// into a boundary MPS.
fn merged_row_to_mps(row: &[Tensor]) -> Result<Mps> {
    let tensors = row
        .iter()
        .map(|t| {
            if t.dim(AX_U) != 1 {
                return Err(TensorError::ShapeMismatch {
                    context: "merged_row_to_mps: row has upward bonds".into(),
                });
            }
            // [1, 1, l, d, r] -> [l, d, r]
            let site = t.select(AX_P, 0)?.select(0, 0)?;
            Ok(site)
        })
        .collect::<Result<Vec<_>>>()?;
    Mps::new(tensors)
}

/// Convert a row of merged rank-5 tensors into an MPO `[l, u, d, r]`.
fn merged_row_to_mpo(row: &[Tensor]) -> Result<Mpo> {
    let tensors = row
        .iter()
        .map(|t| {
            // [1, u, l, d, r] -> [u, l, d, r] -> [l, u, d, r]
            let site = t.select(AX_P, 0)?.permute(&[1, 0, 2, 3])?;
            Ok(site)
        })
        .collect::<Result<Vec<_>>>()?;
    Mpo::new(tensors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::Observable;
    use koala_linalg::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Dense reference: <psi|H|psi> via the full state vector.
    fn dense_expectation(peps: &Peps, obs: &Observable) -> C64 {
        let dense = peps.to_dense().unwrap();
        let n = peps.num_sites();
        let vec = dense.reshape(&[1 << n]).unwrap();
        let h = obs.to_dense(peps.nrows(), peps.ncols(), 2);
        let hv = h.matvec(vec.data());
        vec.data().iter().zip(hv.iter()).map(|(a, b)| a.conj() * *b).sum()
    }

    fn test_observable() -> Observable {
        Observable::zz((0, 0), (0, 1))
            + Observable::xx((0, 1), (1, 1))
            + 0.7 * Observable::z((1, 0))
            + 0.3 * Observable::x((0, 0))
            + Observable::yy((0, 0), (1, 1)) // diagonal term exercises SWAP routing
    }

    #[test]
    fn uncached_expectation_matches_dense() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut peps = Peps::random(2, 2, 2, 2, &mut rng);
        let norm = peps.norm_sqr_dense().unwrap().sqrt();
        peps.scale(c64(1.0 / norm, 0.0));
        let obs = test_observable();
        let opts = ExpectationOptions { method: ContractionMethod::bmps(64), use_cache: false };
        let got = expectation(&peps, &obs, opts, &mut rng).unwrap();
        let want = dense_expectation(&peps, &obs);
        assert!(got.approx_eq(want, 1e-6), "{got} vs {want}");
        assert!(got.im.abs() < 1e-6, "expectation of a Hermitian observable must be real");
    }

    #[test]
    fn cached_expectation_matches_dense() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut peps = Peps::random(2, 3, 2, 2, &mut rng);
        let norm = peps.norm_sqr_dense().unwrap().sqrt();
        peps.scale(c64(1.0 / norm, 0.0));
        let obs = Observable::zz((0, 0), (0, 1))
            + Observable::zz((1, 1), (1, 2))
            + Observable::xx((0, 2), (1, 2))
            + 0.5 * Observable::x((1, 0));
        let opts = ExpectationOptions { method: ContractionMethod::bmps(64), use_cache: true };
        let got = expectation(&peps, &obs, opts, &mut rng).unwrap();
        let want = dense_expectation(&peps, &obs);
        assert!(got.approx_eq(want, 1e-6), "{got} vs {want}");
    }

    #[test]
    fn cached_and_uncached_agree_with_ibmps() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut peps = Peps::random(3, 3, 2, 2, &mut rng);
        let norm = peps.norm_sqr_dense().unwrap().sqrt();
        peps.scale(c64(1.0 / norm, 0.0));
        let obs = Observable::zz((1, 0), (1, 1))
            + Observable::zz((1, 1), (2, 1))
            + 0.4 * Observable::x((2, 2));
        let cached = expectation(
            &peps,
            &obs,
            ExpectationOptions { method: ContractionMethod::ibmps(32), use_cache: true },
            &mut rng,
        )
        .unwrap();
        let uncached = expectation(
            &peps,
            &obs,
            ExpectationOptions { method: ContractionMethod::ibmps(32), use_cache: false },
            &mut rng,
        )
        .unwrap();
        assert!(cached.approx_eq(uncached, 1e-5), "{cached} vs {uncached}");
        let want = dense_expectation(&peps, &obs);
        assert!(cached.approx_eq(want, 1e-5), "{cached} vs {want}");
    }

    #[test]
    fn normalized_expectation_is_rayleigh_quotient() {
        let mut rng = StdRng::seed_from_u64(4);
        let peps = Peps::random(2, 2, 2, 2, &mut rng); // not normalised on purpose
        let obs = Observable::zz((0, 0), (1, 0)) + 0.2 * Observable::x((1, 1));
        for use_cache in [false, true] {
            let opts = ExpectationOptions { method: ContractionMethod::bmps(64), use_cache };
            let got = expectation_normalized(&peps, &obs, opts, &mut rng).unwrap();
            let want = dense_expectation(&peps, &obs) / peps.norm_sqr_dense().unwrap();
            assert!(got.approx_eq(want, 1e-6), "cache={use_cache}: {got} vs {want}");
        }
    }

    #[test]
    fn terms_on_first_and_last_rows_are_handled() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut peps = Peps::random(3, 2, 2, 2, &mut rng);
        let norm = peps.norm_sqr_dense().unwrap().sqrt();
        peps.scale(c64(1.0 / norm, 0.0));
        let obs = Observable::z((0, 0)) + Observable::z((2, 1)) + Observable::zz((2, 0), (2, 1));
        let opts = ExpectationOptions { method: ContractionMethod::bmps(32), use_cache: true };
        let got = expectation(&peps, &obs, opts, &mut rng).unwrap();
        let want = dense_expectation(&peps, &obs);
        assert!(got.approx_eq(want, 1e-6), "{got} vs {want}");
    }

    #[test]
    fn observable_validation_failure_propagates() {
        let mut rng = StdRng::seed_from_u64(6);
        let peps = Peps::random(2, 2, 2, 2, &mut rng);
        let obs = Observable::z((5, 5));
        let opts = ExpectationOptions::bmps_cached(8);
        assert!(expectation(&peps, &obs, opts, &mut rng).is_err());
    }

    #[test]
    fn env_cache_shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(7);
        let peps = Peps::random(3, 3, 2, 2, &mut rng);
        let merged = peps.merge_with_bra(&peps).unwrap();
        let cache = EnvCache::build(&merged, ContractionMethod::bmps(16), &mut rng).unwrap();
        assert!(cache.top(0).is_none());
        assert!(cache.top(1).is_some());
        assert!(cache.top(2).is_some());
        assert!(cache.bottom(2).is_none());
        assert!(cache.bottom(0).is_some());
        // Closing top and bottom environments around the middle row reproduces
        // the norm: top(1) . row1 . bottom(1).
        let top = cache.top(1).unwrap().clone();
        let mpo = row_as_mpo(&merged, 1).unwrap();
        let mid = apply_row(&top, &mpo, ContractionMethod::bmps(16), &mut rng).unwrap();
        let closed = mid.dot(cache.bottom(1).unwrap()).unwrap();
        let direct =
            crate::contract::norm_sqr(&peps, ContractionMethod::bmps(16), &mut rng).unwrap();
        assert!((closed.re - direct).abs() / direct < 1e-6);
    }
}
