//! PEPS contraction algorithms (paper §III-B and §IV-A).
//!
//! All approximate methods are variants of the boundary-MPS (BMPS) scheme of
//! Algorithm 2: the first row of the network is treated as an MPS and the
//! remaining rows as MPOs that are applied approximately, truncating the
//! boundary bond dimension to `m` after each row. The einsumsvd inside the
//! approximate application is evaluated either with an explicit truncated SVD
//! (BMPS) or with the implicit randomized SVD of Algorithm 4 (IBMPS). The
//! exact algorithm applies every row without truncation and is exponential.

use crate::peps::{Peps, Result, AX_P, AX_U};
use koala_linalg::C64;
use koala_mps::{zip_up, Mpo, Mps, ZipUpMethod};
use koala_tensor::TensorError;
use rand::Rng;

/// Which contraction algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ContractionMethod {
    /// Exact contraction: apply every row MPO without truncation
    /// (exponential memory; reference only).
    Exact,
    /// Boundary MPS with explicit truncated SVD (Algorithm 2 + Algorithm 3).
    Bmps {
        /// Truncation bond dimension `m` of the boundary MPS.
        max_bond: usize,
    },
    /// Boundary MPS with implicit randomized SVD (IBMPS, §IV-A).
    Ibmps {
        /// Truncation bond dimension `m` of the boundary MPS.
        max_bond: usize,
        /// Subspace iterations of the randomized SVD.
        n_iter: usize,
        /// Oversampling columns of the randomized SVD.
        oversample: usize,
    },
}

impl ContractionMethod {
    /// BMPS with truncation bond `m`.
    pub fn bmps(max_bond: usize) -> Self {
        ContractionMethod::Bmps { max_bond }
    }

    /// IBMPS with truncation bond `m` and default randomized-SVD parameters.
    pub fn ibmps(max_bond: usize) -> Self {
        ContractionMethod::Ibmps { max_bond, n_iter: 2, oversample: 10 }
    }
}

/// Convert row `row` of a PEPS without physical indices into a boundary MPS
/// (site layout `[l, d, r]`, the open "down" bond is the MPS physical index).
pub fn row_as_mps(peps: &Peps, row: usize) -> Result<Mps> {
    let mut tensors = Vec::with_capacity(peps.ncols());
    for c in 0..peps.ncols() {
        let t = peps.tensor((row, c));
        if t.dim(AX_P) != 1 {
            return Err(TensorError::ShapeMismatch {
                context: format!("row_as_mps: site ({row},{c}) still has a physical index"),
            });
        }
        if t.dim(AX_U) != 1 {
            return Err(TensorError::ShapeMismatch {
                context: format!("row_as_mps: site ({row},{c}) has an upward bond"),
            });
        }
        // [p=1, u=1, l, d, r] -> [l, d, r]
        let site = t.select(AX_P, 0)?.select(0, 0)?;
        tensors.push(site);
    }
    Mps::new(tensors)
}

/// Convert row `row` of a PEPS without physical indices into an MPO
/// (site layout `[l, u, d, r]`).
pub fn row_as_mpo(peps: &Peps, row: usize) -> Result<Mpo> {
    let mut tensors = Vec::with_capacity(peps.ncols());
    for c in 0..peps.ncols() {
        let t = peps.tensor((row, c));
        if t.dim(AX_P) != 1 {
            return Err(TensorError::ShapeMismatch {
                context: format!("row_as_mpo: site ({row},{c}) still has a physical index"),
            });
        }
        // [p=1, u, l, d, r] -> [u, l, d, r] -> [l, u, d, r]
        let site = t.select(AX_P, 0)?.permute(&[1, 0, 2, 3])?;
        tensors.push(site);
    }
    Mpo::new(tensors)
}

/// Contract a PEPS without physical indices to a scalar (Algorithm 2).
pub fn contract_no_phys<R: Rng + ?Sized>(
    peps: &Peps,
    method: ContractionMethod,
    rng: &mut R,
) -> Result<C64> {
    if peps.nrows() == 1 {
        return row_as_mps(peps, 0)?.contract_to_scalar();
    }
    let mut boundary = row_as_mps(peps, 0)?;
    for row in 1..peps.nrows() {
        let mpo = row_as_mpo(peps, row)?;
        boundary = match method {
            ContractionMethod::Exact => mpo.apply_exact(&boundary)?,
            ContractionMethod::Bmps { max_bond } => {
                zip_up(&boundary, &mpo, max_bond, ZipUpMethod::ExactSvd, rng)?
            }
            ContractionMethod::Ibmps { max_bond, n_iter, oversample } => zip_up(
                &boundary,
                &mpo,
                max_bond,
                ZipUpMethod::ImplicitRandSvd { n_iter, oversample },
                rng,
            )?,
        };
    }
    boundary.contract_to_scalar()
}

/// Amplitude `<bits|psi>`: project the physical indices onto a basis state and
/// contract the resulting one-layer network.
pub fn amplitude<R: Rng + ?Sized>(
    peps: &Peps,
    bits: &[usize],
    method: ContractionMethod,
    rng: &mut R,
) -> Result<C64> {
    let projected = peps.project_onto_basis(bits)?;
    contract_no_phys(&projected, method, rng)
}

/// Inner product `<bra|ket>` through the merged (single-layer) network: bond
/// dimensions multiply, then a one-layer contraction is performed. This is
/// the "naive" two-layer handling of §III-B2.
pub fn inner_merged<R: Rng + ?Sized>(
    bra: &Peps,
    ket: &Peps,
    method: ContractionMethod,
    rng: &mut R,
) -> Result<C64> {
    let merged = ket.merge_with_bra(bra)?;
    contract_no_phys(&merged, method, rng)
}

/// Norm squared `<psi|psi>` through the merged network.
pub fn norm_sqr<R: Rng + ?Sized>(
    peps: &Peps,
    method: ContractionMethod,
    rng: &mut R,
) -> Result<f64> {
    Ok(inner_merged(peps, peps, method, rng)?.re.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peps::Peps;
    use koala_linalg::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scaled_random_no_phys(n: usize, bond: usize, seed: u64) -> Peps {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Peps::random_no_phys(n, n, bond, &mut rng);
        // Keep the contraction value O(1) so relative comparisons are meaningful.
        let scale = 1.0 / (bond as f64);
        for r in 0..n {
            for c in 0..n {
                let t = p.tensor((r, c)).scale(c64(scale, 0.0));
                p.set_tensor((r, c), t);
            }
        }
        p
    }

    #[test]
    fn exact_contraction_matches_dense() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = scaled_random_no_phys(3, 2, 10);
        let exact = contract_no_phys(&p, ContractionMethod::Exact, &mut rng).unwrap();
        let dense = p.to_dense().unwrap().item();
        assert!(exact.approx_eq(dense, 1e-9), "{exact} vs {dense}");
    }

    #[test]
    fn bmps_with_large_bond_is_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = scaled_random_no_phys(3, 2, 11);
        let dense = p.to_dense().unwrap().item();
        let bmps = contract_no_phys(&p, ContractionMethod::bmps(64), &mut rng).unwrap();
        assert!(bmps.approx_eq(dense, 1e-8), "{bmps} vs {dense}");
    }

    #[test]
    fn ibmps_with_large_bond_is_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = scaled_random_no_phys(3, 2, 12);
        let dense = p.to_dense().unwrap().item();
        let ibmps = contract_no_phys(&p, ContractionMethod::ibmps(64), &mut rng).unwrap();
        assert!(ibmps.approx_eq(dense, 1e-6), "{ibmps} vs {dense}");
    }

    /// A PEPS with strictly positive entries: its contraction is a sum of
    /// positive terms, so truncation errors stay small and relative
    /// comparisons are well conditioned.
    fn positive_random_no_phys(n: usize, bond: usize, seed: u64) -> Peps {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Peps::random_no_phys(n, n, bond, &mut rng);
        for r in 0..n {
            for c in 0..n {
                let mut t = p.tensor((r, c)).clone();
                for v in t.data_mut() {
                    *v = c64((v.re.abs() + 0.2) / (bond as f64 + 1.0), 0.0);
                }
                p.set_tensor((r, c), t);
            }
        }
        p
    }

    #[test]
    fn bmps_and_ibmps_agree_under_truncation() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = positive_random_no_phys(4, 3, 13);
        let exact = contract_no_phys(&p, ContractionMethod::Exact, &mut rng).unwrap();
        let bmps = contract_no_phys(&p, ContractionMethod::bmps(6), &mut rng).unwrap();
        let ibmps = contract_no_phys(&p, ContractionMethod::ibmps(6), &mut rng).unwrap();
        // Both approximations should be close to the exact value and to each other.
        let scale = exact.abs().max(1e-12);
        assert!((bmps - exact).abs() / scale < 0.05, "bmps too far: {bmps} vs {exact}");
        assert!((ibmps - exact).abs() / scale < 0.05, "ibmps too far: {ibmps} vs {exact}");
    }

    #[test]
    fn single_row_peps_contracts_directly() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Peps::random_no_phys(1, 4, 3, &mut rng);
        let v = contract_no_phys(&p, ContractionMethod::bmps(8), &mut rng).unwrap();
        let dense = p.to_dense().unwrap().item();
        assert!(v.approx_eq(dense, 1e-9));
    }

    #[test]
    fn amplitude_matches_dense_amplitude() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = Peps::random(2, 3, 2, 2, &mut rng);
        let dense = p.to_dense().unwrap();
        let bits = [0usize, 1, 1, 0, 1, 0];
        let amp = amplitude(&p, &bits, ContractionMethod::Exact, &mut rng).unwrap();
        assert!(amp.approx_eq(dense.get(&bits), 1e-9));
        let amp_bmps = amplitude(&p, &bits, ContractionMethod::bmps(16), &mut rng).unwrap();
        assert!(amp_bmps.approx_eq(dense.get(&bits), 1e-8));
    }

    #[test]
    fn norm_and_inner_product_match_dense() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Peps::random(2, 2, 2, 2, &mut rng);
        let b = Peps::random(2, 2, 2, 2, &mut rng);
        let dense_inner = a.to_dense().unwrap().inner(&b.to_dense().unwrap()).unwrap();
        let got = inner_merged(&a, &b, ContractionMethod::bmps(32), &mut rng).unwrap();
        assert!(got.approx_eq(dense_inner, 1e-7), "{got} vs {dense_inner}");
        let n = norm_sqr(&a, ContractionMethod::Exact, &mut rng).unwrap();
        let dense_n = a.norm_sqr_dense().unwrap();
        assert!((n - dense_n).abs() < 1e-7 * dense_n.max(1.0));
    }

    #[test]
    fn row_conversion_rejects_physical_indices() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = Peps::random(2, 2, 2, 2, &mut rng);
        assert!(row_as_mps(&p, 0).is_err());
        assert!(row_as_mpo(&p, 1).is_err());
    }
}
