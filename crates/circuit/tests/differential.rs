//! The statevector-oracle differential suite: every backend and every
//! structural pass must agree with exact dense evolution to 1e-10 on random
//! circuits. The proptest shim runs deterministic seeded cases, so failures
//! reproduce exactly.

use koala_circuit::{
    amplitudes, prune_for_bits, simplify, Backend, BackendChoice, Circuit, Gate1, Gate2,
};
use koala_linalg::Matrix;
use koala_peps::ContractionMethod;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Haar-ish random 2x2 or 4x4 unitary: QR of a random complex matrix.
fn random_unitary(dim: usize, rng: &mut StdRng) -> Matrix {
    koala_linalg::qr(&Matrix::random(dim, dim, rng)).q
}

fn random_gate1(rng: &mut StdRng) -> Gate1 {
    match rng.gen_range(0..10usize) {
        0 => Gate1::H,
        1 => Gate1::X,
        2 => Gate1::Y,
        3 => Gate1::Z,
        4 => Gate1::S,
        5 => Gate1::T,
        6 => Gate1::Rx(rng.gen_range(-3.0..3.0)),
        7 => Gate1::Ry(rng.gen_range(-3.0..3.0)),
        8 => Gate1::Rz(rng.gen_range(-3.0..3.0)),
        _ => Gate1::Unitary(random_unitary(2, rng)),
    }
}

fn random_gate2(rng: &mut StdRng) -> Gate2 {
    match rng.gen_range(0..4usize) {
        0 => Gate2::Cnot,
        1 => Gate2::Cz,
        2 => Gate2::Swap,
        _ => Gate2::Unitary(random_unitary(4, rng)),
    }
}

/// Random circuit: `n_gates` gates, each two-qubit with probability ~40%
/// on an arbitrary (possibly non-adjacent, possibly reversed) pair.
fn random_circuit(n: usize, n_gates: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..n_gates {
        if n >= 2 && rng.gen_range(0..10usize) < 4 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            c.push_two(a, b, random_gate2(rng)).expect("valid 2q gate");
        } else {
            c.push_one(rng.gen_range(0..n), random_gate1(rng)).expect("valid 1q gate");
        }
    }
    c
}

fn random_bits(n: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..2usize)).collect()
}

/// Oracle amplitudes for a batch of bitstrings.
fn oracle(c: &Circuit, queries: &[Vec<usize>]) -> Vec<koala_linalg::C64> {
    let mut rng = StdRng::seed_from_u64(0);
    amplitudes(c, queries, BackendChoice::Fixed(Backend::Statevector), &mut rng)
        .expect("statevector oracle")
        .amplitudes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// MPS backend vs oracle: at bond `2^(n/2)` (>= any exact Schmidt rank
    /// on <= 10 qubits) the chain evolution is exact to round-off.
    #[test]
    fn mps_matches_statevector_oracle(n in 2usize..11, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = random_circuit(n, 3 * n, &mut rng);
        let queries: Vec<_> = (0..4).map(|_| random_bits(n, &mut rng)).collect();
        let want = oracle(&c, &queries);
        let got = amplitudes(
            &c,
            &queries,
            BackendChoice::Fixed(Backend::Mps { max_bond: 1 << n.div_ceil(2) }),
            &mut rng,
        )
        .expect("mps backend");
        for (g, w) in got.amplitudes.iter().zip(&want) {
            prop_assert!((*g - *w).abs() < 1e-10, "mps {g} vs oracle {w} (n={n}, seed={seed})");
        }
    }

    /// PEPS backend vs oracle on chain and 2-row lattices, with exact
    /// contraction and enough evolution bond to make SWAP routing lossless.
    #[test]
    fn peps_matches_statevector_oracle(n in 2usize..9, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let lattice = n % 2 == 0 && rng.gen_range(0..2usize) == 0;
        let c = {
            let shell =
                if lattice { Circuit::with_lattice(2, n / 2) } else { Circuit::new(n) };
            let mut c = shell;
            let src = random_circuit(n, 2 * n, &mut rng);
            for g in src.gates() {
                match g {
                    koala_circuit::Gate::One { qubit, gate } => {
                        c.push_one(*qubit, gate.clone()).expect("1q");
                    }
                    koala_circuit::Gate::Two { a, b, gate } => {
                        c.push_two(*a, *b, gate.clone()).expect("2q");
                    }
                }
            }
            c
        };
        let queries: Vec<_> = (0..2).map(|_| random_bits(n, &mut rng)).collect();
        let want = oracle(&c, &queries);
        let got = amplitudes(
            &c,
            &queries,
            BackendChoice::Fixed(Backend::Peps {
                // Generous cap: on <= 8 qubits the 1e-14 relative floor is
                // the only truncation that ever fires, so evolution is exact.
                evolution_bond: 64,
                method: ContractionMethod::Exact,
            }),
            &mut rng,
        )
        .expect("peps backend");
        for (g, w) in got.amplitudes.iter().zip(&want) {
            prop_assert!((*g - *w).abs() < 1e-10, "peps {g} vs oracle {w} (n={n}, seed={seed})");
        }
    }

    /// Simplification preserves semantics: the fused/absorbed circuit agrees
    /// with the original on every computational-basis amplitude, and its
    /// gate count drops by exactly the number of eliminated gates.
    #[test]
    fn simplification_preserves_semantics(n in 2usize..7, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51_3317);
        let c = random_circuit(n, 4 * n, &mut rng);
        let (s, stats) = simplify(&c);
        prop_assert_eq!(s.len() + stats.eliminated(), c.len());
        let queries: Vec<Vec<usize>> = (0..1usize << n)
            .map(|x| (0..n).map(|q| (x >> (n - 1 - q)) & 1).collect())
            .collect();
        let want = oracle(&c, &queries);
        let got = oracle(&s, &queries);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((*g - *w).abs() < 1e-10, "simplified {g} vs {w} (n={n}, seed={seed})");
        }
    }

    /// Light-cone pruning never changes a queried amplitude, and on shallow
    /// circuits with a trailing monomial layer it strictly reduces the gate
    /// count.
    #[test]
    fn lightcone_preserves_amplitude_and_prunes(n in 2usize..7, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xca_11);
        let mut c = random_circuit(n, 2 * n, &mut rng);
        // Trailing monomial layer: always peelable, so pruning must bite.
        for q in 0..n {
            match rng.gen_range(0..4usize) {
                0 => c.push_one(q, Gate1::T).expect("t"),
                1 => c.push_one(q, Gate1::X).expect("x"),
                2 => c.push_one(q, Gate1::S).expect("s"),
                _ => c.push_one(q, Gate1::Z).expect("z"),
            };
        }
        if n >= 2 {
            c.push_two(0, 1, Gate2::Cz).expect("cz");
        }
        let bits = random_bits(n, &mut rng);
        let pruned = prune_for_bits(&c, &bits).expect("prune");
        prop_assert!(
            pruned.circuit.len() < c.len(),
            "pruning must strictly reduce a trailing-monomial circuit (n={n}, seed={seed})"
        );
        let want = oracle(&c, std::slice::from_ref(&bits))[0];
        let got = pruned.phase * oracle(&pruned.circuit, std::slice::from_ref(&pruned.bits))[0];
        prop_assert!(
            (got - want).abs() < 1e-10,
            "light-cone {got} vs {want} (n={n}, seed={seed})"
        );
    }
}
