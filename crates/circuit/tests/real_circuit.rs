//! Realness pinning: an all-real-gate circuit (H/X/Z/CZ/RY) must execute
//! zero complex MACs end to end through the MPS backend — the realness hint
//! enters with the |0...0> product state, survives fusion and every
//! theta-SVD, and keeps the whole evolution on the real GEMM kernels.
//!
//! Uses a scoped [`WorkMeter`] rather than the process-global counters so
//! concurrently running sibling tests cannot pollute the measurement.

use koala_circuit::{amplitudes, Backend, BackendChoice, Circuit, Gate1, Gate2};
use koala_exec::WorkMeter;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn real_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push_one(q, Gate1::H).unwrap();
    }
    for layer in 0..3 {
        for q in 0..n - 1 {
            if (q + layer) % 2 == 0 {
                c.push_two(q, q + 1, Gate2::Cz).unwrap();
            }
        }
        for q in 0..n {
            match (q + layer) % 3 {
                0 => c.push_one(q, Gate1::X).unwrap(),
                1 => c.push_one(q, Gate1::Z).unwrap(),
                _ => c.push_one(q, Gate1::Ry(0.3 + 0.1 * q as f64)).unwrap(),
            };
        }
    }
    c
}

#[test]
fn real_circuit_executes_zero_complex_macs_on_mps() {
    let n = 6;
    let c = real_circuit(n);
    let queries: Vec<Vec<usize>> =
        (0..4).map(|x: usize| (0..n).map(|q| (x >> q) & 1).collect()).collect();
    let meter = WorkMeter::new();
    let mut rng = StdRng::seed_from_u64(2);
    let batch = meter
        .scope(|| {
            amplitudes(&c, &queries, BackendChoice::Fixed(Backend::Mps { max_bond: 16 }), &mut rng)
        })
        .expect("mps run");
    let ledger = meter.ledger();
    assert!(ledger.real_macs > 0, "the evolution must bill real work");
    assert_eq!(
        ledger.complex_macs, 0,
        "an all-real circuit must never leave the real kernels (billed {} complex MACs)",
        ledger.complex_macs
    );

    // Sanity: the amplitudes themselves are real and match the oracle.
    let mut rng = StdRng::seed_from_u64(2);
    let want = amplitudes(&c, &queries, BackendChoice::Fixed(Backend::Statevector), &mut rng)
        .expect("oracle");
    for (g, w) in batch.amplitudes.iter().zip(&want.amplitudes) {
        assert!((*g - *w).abs() < 1e-10, "{g} vs {w}");
        assert!(g.im.abs() < 1e-12, "amplitude {g} should be real");
    }
}

#[test]
fn complex_gate_does_bill_complex_macs() {
    // Control experiment: one T gate re-complexifies the evolution, so the
    // zero-complex-MAC assertion above is measuring something real.
    let n = 4;
    let mut c = real_circuit(n);
    c.push_one(0, Gate1::T).unwrap();
    c.push_two(0, 1, Gate2::Cnot).unwrap(); // keeps the T from being pruned/absorbed trivially
    c.push_one(0, Gate1::H).unwrap();
    let meter = WorkMeter::new();
    let mut rng = StdRng::seed_from_u64(3);
    meter
        .scope(|| {
            amplitudes(
                &c,
                &[vec![0; n], vec![1; n]],
                BackendChoice::Fixed(Backend::Mps { max_bond: 8 }),
                &mut rng,
            )
        })
        .expect("mps run");
    assert!(meter.ledger().complex_macs > 0, "complex gates must bill complex work");
}
