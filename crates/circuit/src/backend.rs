//! Backend dispatch: lower a simplified circuit to the cheapest simulator.
//!
//! Three lowering targets:
//!
//! * **Statevector** — exact dense evolution, the differential oracle.
//!   Memory-bound at `2^n` amplitudes, so the auto-dispatcher only picks it
//!   up to [`STATEVECTOR_MAX_QUBITS`].
//! * **MPS** — TEBD-style chain evolution with per-gate SVD truncation
//!   (`koala-mps`). Chosen when the circuit's *entanglement bound* — the
//!   product of operator Schmidt ranks of the two-qubit gates crossing the
//!   worst chain cut, capped by the cut's Hilbert dimension — fits in
//!   [`MPS_MAX_BOND`]; at that bond the evolution is numerically exact, not
//!   an approximation.
//! * **PEPS** — the 2-D engine (`koala-peps`) for everything wider, using
//!   the circuit's declared lattice (or a `1 x n` chain) with SWAP routing
//!   and boundary-MPS amplitude contraction. This is the approximate
//!   regime: evolution and contraction bonds are tunable.
//!
//! Every backend evolves the state **once** per batch and then answers each
//! bitstring with a value-independent contraction, so warm batches replay
//! cached einsum plans, and all work lands on the ambient
//! [`koala_exec::WorkMeter`] scope.

use koala_linalg::{matmul, Matrix, C64};
use koala_mps::Mps;
use koala_peps::{ContractionMethod, Peps, Site, UpdateMethod};
use koala_tensor::{svd_split, tensordot, Tensor, TensorError, Truncation};
use rand::Rng;

use crate::ir::{Circuit, Gate, Result};
use crate::lightcone::prune_for_bits;
use crate::simplify::{simplify, SimplifyStats};

/// Largest qubit count the auto-dispatcher sends to the dense statevector.
pub const STATEVECTOR_MAX_QUBITS: usize = 20;

/// Largest entanglement-bound bond the auto-dispatcher accepts for MPS.
pub const MPS_MAX_BOND: usize = 64;

/// Hard cap of the dense statevector representation itself.
const STATEVECTOR_HARD_MAX: usize = 26;

/// Relative SVD truncation floor for MPS/PEPS gate applications.
const EVOLUTION_TOL: f64 = 1e-14;

fn invalid(context: impl Into<String>) -> TensorError {
    TensorError::InvalidAxes { context: context.into() }
}

/// A concrete simulation backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Exact dense statevector (the oracle).
    Statevector,
    /// MPS chain evolution with SVD truncation at `max_bond`.
    Mps {
        /// Bond-dimension cap for the evolved chain.
        max_bond: usize,
    },
    /// PEPS lattice evolution + boundary-MPS amplitude contraction.
    Peps {
        /// Bond-dimension cap during gate application.
        evolution_bond: usize,
        /// Contraction method for the amplitude queries.
        method: ContractionMethod,
    },
}

impl Backend {
    /// Stable lowercase tag ("statevector" / "mps" / "peps") for wire
    /// formats and logs.
    pub fn tag(&self) -> &'static str {
        match self {
            Backend::Statevector => "statevector",
            Backend::Mps { .. } => "mps",
            Backend::Peps { .. } => "peps",
        }
    }
}

/// How the dispatcher picks the backend.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BackendChoice {
    /// Qubit-count / entanglement-estimate heuristic ([`choose_backend`]).
    #[default]
    Auto,
    /// Manual override.
    Fixed(Backend),
}

/// The result of an amplitude batch.
#[derive(Debug, Clone)]
pub struct AmplitudeBatch {
    /// One amplitude per queried bitstring, in submission order.
    pub amplitudes: Vec<C64>,
    /// The backend that actually ran.
    pub backend: Backend,
    /// Largest bond dimension of the evolved state (1 for statevector).
    pub max_bond: usize,
    /// Gate count of the submitted circuit.
    pub gates_submitted: usize,
    /// Gate count actually executed after simplification (and light-cone
    /// pruning for single-bitstring queries).
    pub gates_executed: usize,
    /// What the structural simplifier did.
    pub simplify_stats: SimplifyStats,
}

/// Worst-cut entanglement bound of a chain layout: for every cut `i`
/// (between qubits `i` and `i+1`), two-qubit gates crossing the cut can
/// each multiply the Schmidt rank by their operator Schmidt rank, but never
/// past the Hilbert dimension `2^min(i+1, n-1-i)` of the smaller side. The
/// returned value is the largest bond any cut can reach — an MPS evolved at
/// this bond is exact.
pub fn entanglement_bond_bound(circuit: &Circuit) -> usize {
    let n = circuit.num_qubits();
    if n < 2 {
        return 1;
    }
    let mut worst: u32 = 0;
    let mut log_ranks: Vec<u32> = vec![0; n - 1];
    for gate in circuit.gates() {
        if let Gate::Two { a, b, gate } = gate {
            let rank = gate.schmidt_rank() as u32;
            let log_rank = u32::BITS - (rank - 1).leading_zeros(); // ceil(log2)
            let (lo, hi) = if a < b { (*a, *b) } else { (*b, *a) };
            for cut in lo..hi {
                log_ranks[cut] += log_rank;
            }
        }
    }
    for (cut, &lr) in log_ranks.iter().enumerate() {
        let side = (cut + 1).min(n - 1 - cut) as u32;
        worst = worst.max(lr.min(side));
    }
    // Saturate rather than overflow for deep circuits; the caller only
    // compares against small thresholds.
    if worst >= usize::BITS - 1 {
        usize::MAX
    } else {
        1usize << worst
    }
}

/// The auto-dispatch heuristic: statevector while it fits, MPS while the
/// entanglement bound keeps the chain exactly representable, PEPS beyond.
pub fn choose_backend(circuit: &Circuit) -> Backend {
    let n = circuit.num_qubits();
    if n <= STATEVECTOR_MAX_QUBITS {
        return Backend::Statevector;
    }
    let bound = entanglement_bond_bound(circuit);
    if bound <= MPS_MAX_BOND {
        return Backend::Mps { max_bond: bound };
    }
    // The approximate regime: moderate evolution bond, boundary-MPS
    // contraction with headroom over the evolved bond.
    Backend::Peps { evolution_bond: 16, method: ContractionMethod::bmps(64) }
}

/// Simplify `circuit`, pick a backend, evolve once, and answer every
/// bitstring in `bitstrings`.
///
/// Single-bitstring queries additionally run light-cone pruning (the peeled
/// phase is folded back into the returned amplitude); batches share one
/// evolved state instead, which is what lets warm batches replay cached
/// contraction plans.
///
/// # Errors
/// Invalid bitstrings, circuits too large for a forced statevector backend,
/// and engine failures (SVD breakdown etc.) are returned as errors.
pub fn amplitudes<R: Rng + ?Sized>(
    circuit: &Circuit,
    bitstrings: &[Vec<usize>],
    choice: BackendChoice,
    rng: &mut R,
) -> Result<AmplitudeBatch> {
    let n = circuit.num_qubits();
    if bitstrings.is_empty() {
        return Err(invalid("circuit: empty bitstring batch"));
    }
    for bits in bitstrings {
        if bits.len() != n || bits.iter().any(|&b| b > 1) {
            return Err(invalid(format!("circuit: bitstring {bits:?} is not {n} bits of 0/1")));
        }
    }

    let gates_submitted = circuit.len();
    let (simplified, simplify_stats) = simplify(circuit);

    // Light-cone pruning only helps when the whole batch shares the peel;
    // with one query it always applies.
    let (executed, queries, phase) = if bitstrings.len() == 1 {
        let pruned = prune_for_bits(&simplified, &bitstrings[0])?;
        (pruned.circuit, vec![pruned.bits], pruned.phase)
    } else {
        (simplified, bitstrings.to_vec(), C64::ONE)
    };

    let backend = match choice {
        BackendChoice::Auto => choose_backend(&executed),
        BackendChoice::Fixed(b) => b,
    };
    let gates_executed = executed.len();

    let (mut amplitudes, max_bond) = match backend {
        Backend::Statevector => run_statevector(&executed, &queries)?,
        Backend::Mps { max_bond } => run_mps(&executed, &queries, max_bond)?,
        Backend::Peps { evolution_bond, method } => {
            run_peps(&executed, &queries, evolution_bond, method, rng)?
        }
    };
    if phase != C64::ONE {
        for a in &mut amplitudes {
            *a *= phase;
        }
    }
    Ok(AmplitudeBatch {
        amplitudes,
        backend,
        max_bond,
        gates_submitted,
        gates_executed,
        simplify_stats,
    })
}

// ---------------------------------------------------------------------------
// Statevector lowering (the oracle).
// ---------------------------------------------------------------------------

fn run_statevector(circuit: &Circuit, queries: &[Vec<usize>]) -> Result<(Vec<C64>, usize)> {
    let n = circuit.num_qubits();
    if n > STATEVECTOR_HARD_MAX {
        return Err(invalid(format!(
            "circuit: {n} qubits exceed the {STATEVECTOR_HARD_MAX}-qubit statevector limit"
        )));
    }
    // A 1 x n lattice makes qubit q the site (0, q) in row-major order, so
    // bit order matches the circuit's regardless of any declared lattice.
    let mut sv = koala_sim::StateVector::computational_zeros(1, n.max(1));
    for gate in circuit.gates() {
        match gate {
            Gate::One { qubit, gate } => sv.apply_one_site(&gate.matrix(), (0, *qubit)),
            Gate::Two { a, b, gate } => sv.apply_two_site(&gate.matrix(), (0, *a), (0, *b)),
        }
    }
    Ok((queries.iter().map(|bits| sv.amplitude(bits)).collect(), 1))
}

// ---------------------------------------------------------------------------
// MPS lowering: TEBD with SVD truncation.
// ---------------------------------------------------------------------------

/// |0> site tensor `[1, 2, 1]` with the realness hint, so all-real circuits
/// stay on the real kernels from the first gate.
fn zero_site() -> Tensor {
    Tensor::from_real(&[1, 2, 1], &[1.0, 0.0])
        .unwrap_or_else(|_| unreachable!("literal [1,2,1] tensor"))
}

/// Swap the two Kronecker subsystems of a 4x4 gate: `S G S`.
fn swap_subsystems(g: &Matrix) -> Matrix {
    let s = crate::ir::Gate2::Swap.matrix();
    matmul(&matmul(&s, g), &s)
}

/// Apply a 4x4 gate to the adjacent chain pair `(q, q+1)` with site `q` as
/// the most significant subsystem: contract the two sites into a theta
/// tensor, hit it with the gate, and split back with a truncated SVD.
fn apply_two_adjacent(mps: &mut Mps, q: usize, gate: &Matrix, trunc: Truncation) -> Result<()> {
    let theta = tensordot(mps.tensor(q), mps.tensor(q + 1), &[2], &[0])?; // [l, pa, pb, r]
    let g4 = Tensor::from_matrix_2d(gate).reshape(&[2, 2, 2, 2])?; // [a', b', a, b]
    let new = tensordot(&g4, &theta, &[2, 3], &[1, 2])?; // [a', b', l, r]
    let new = new.permute(&[2, 0, 1, 3])?; // [l, a', b', r]
    let f = svd_split(&new, &[0, 1], trunc)?;
    let (left, right) = f.absorb_right();
    mps.set_tensor(q, left);
    mps.set_tensor(q + 1, right);
    Ok(())
}

fn run_mps(
    circuit: &Circuit,
    queries: &[Vec<usize>],
    max_bond: usize,
) -> Result<(Vec<C64>, usize)> {
    let n = circuit.num_qubits().max(1);
    let trunc = Truncation::rank_and_tol(max_bond.max(1), EVOLUTION_TOL);
    let mut mps = Mps::new((0..n).map(|_| zero_site()).collect())?;
    let swap = crate::ir::Gate2::Swap.matrix();
    for gate in circuit.gates() {
        match gate {
            Gate::One { qubit, gate } => {
                let g = Tensor::from_matrix_2d(&gate.matrix());
                let new = tensordot(&g, mps.tensor(*qubit), &[1], &[1])?.permute(&[1, 0, 2])?;
                mps.set_tensor(*qubit, new);
            }
            Gate::Two { a, b, gate } => {
                let (lo, hi) = if a < b { (*a, *b) } else { (*b, *a) };
                // Route `hi` down to `lo + 1` with SWAPs, apply, route back.
                for k in ((lo + 1)..hi).rev() {
                    apply_two_adjacent(&mut mps, k, &swap, trunc)?;
                }
                let g = if *a < *b { gate.matrix() } else { swap_subsystems(&gate.matrix()) };
                apply_two_adjacent(&mut mps, lo, &g, trunc)?;
                for k in (lo + 1)..hi {
                    apply_two_adjacent(&mut mps, k, &swap, trunc)?;
                }
            }
        }
    }
    let evolved_bond = mps.max_bond();
    let amps = queries.iter().map(|bits| mps.amplitude(bits)).collect::<Result<Vec<_>>>()?;
    Ok((amps, evolved_bond))
}

// ---------------------------------------------------------------------------
// PEPS lowering: lattice evolution with SWAP routing.
// ---------------------------------------------------------------------------

fn run_peps<R: Rng + ?Sized>(
    circuit: &Circuit,
    queries: &[Vec<usize>],
    evolution_bond: usize,
    method: ContractionMethod,
    rng: &mut R,
) -> Result<(Vec<C64>, usize)> {
    let n = circuit.num_qubits().max(1);
    let (nrows, ncols) = circuit.lattice().unwrap_or((1, n));
    let site = |q: usize| -> Site { (q / ncols, q % ncols) };
    let update = UpdateMethod::QrSvd {
        truncation: Truncation::rank_and_tol(evolution_bond.max(1), EVOLUTION_TOL),
    };
    let mut peps = Peps::computational_zeros(nrows, ncols);
    for gate in circuit.gates() {
        match gate {
            Gate::One { qubit, gate } => {
                koala_peps::apply_one_site(&mut peps, &gate.matrix(), site(*qubit))?;
            }
            Gate::Two { a, b, gate } => {
                // Manhattan-path SWAP routing for non-neighbour pairs lives
                // in the engine (`apply_two_site_any`, paper §II-C1).
                koala_peps::apply_two_site_any(
                    &mut peps,
                    &gate.matrix(),
                    site(*a),
                    site(*b),
                    update,
                )?;
            }
        }
    }
    let evolved_bond = peps.max_bond();
    let amps = queries
        .iter()
        .map(|bits| koala_peps::amplitude(&peps, bits, method, rng))
        .collect::<Result<Vec<_>>>()?;
    Ok((amps, evolved_bond))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Gate1, Gate2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push_one(0, Gate1::H).unwrap();
        c.push_two(0, 1, Gate2::Cnot).unwrap();
        c
    }

    fn all_bitstrings(n: usize) -> Vec<Vec<usize>> {
        (0..1usize << n).map(|x| (0..n).map(|q| (x >> (n - 1 - q)) & 1).collect()).collect()
    }

    #[test]
    fn bell_state_on_every_backend() {
        let c = bell();
        let queries = all_bitstrings(2);
        let mut rng = StdRng::seed_from_u64(7);
        let s = 1.0 / 2.0f64.sqrt();
        for choice in [
            BackendChoice::Fixed(Backend::Statevector),
            BackendChoice::Fixed(Backend::Mps { max_bond: 4 }),
            BackendChoice::Fixed(Backend::Peps {
                evolution_bond: 4,
                method: ContractionMethod::Exact,
            }),
        ] {
            let batch = amplitudes(&c, &queries, choice, &mut rng).unwrap();
            let expect = [s, 0.0, 0.0, s];
            for (got, want) in batch.amplitudes.iter().zip(expect) {
                assert!((got.re - want).abs() < 1e-12 && got.im.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn auto_dispatch_prefers_statevector_then_mps() {
        let c = bell();
        assert_eq!(choose_backend(&c), Backend::Statevector);
        let mut wide = Circuit::new(30);
        for q in 0..29 {
            wide.push_two(q, q + 1, Gate2::Cnot).unwrap();
        }
        match choose_backend(&wide) {
            Backend::Mps { max_bond } => assert!(max_bond <= MPS_MAX_BOND),
            b => panic!("expected MPS for a low-entanglement chain, got {b:?}"),
        }
        // Enough crossing entanglers to blow the MPS bound -> PEPS.
        let mut dense = Circuit::with_lattice(5, 6);
        for layer in 0..8 {
            for q in 0..29 {
                if (q + layer) % 2 == 0 {
                    dense.push_two(q, q + 1, Gate2::Unitary(random_u4(layer * 29 + q))).unwrap();
                }
            }
        }
        assert!(matches!(choose_backend(&dense), Backend::Peps { .. }));
    }

    /// A Haar-ish 4x4 unitary from a seeded Gram-Schmidt, full Schmidt rank
    /// with overwhelming probability.
    fn random_u4(seed: usize) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let m = Matrix::random(4, 4, &mut rng);
        koala_linalg::qr(&m).q
    }

    #[test]
    fn entanglement_bound_respects_cut_caps() {
        // One CNOT between qubits 0 and 1 of a 10-qubit chain: bound 2.
        let mut c = Circuit::new(10);
        c.push_two(0, 1, Gate2::Cnot).unwrap();
        assert_eq!(entanglement_bond_bound(&c), 2);
        // Many CNOTs over the edge cut cannot exceed the 2-dim side.
        let mut edge = Circuit::new(10);
        for _ in 0..20 {
            edge.push_two(0, 1, Gate2::Cnot).unwrap();
        }
        assert_eq!(entanglement_bond_bound(&edge), 2);
    }

    #[test]
    fn non_adjacent_and_reversed_gates_route_correctly() {
        // CNOT with control 3, target 0 on a 4-qubit chain, after an H on 3.
        let mut c = Circuit::new(4);
        c.push_one(3, Gate1::H).unwrap();
        c.push_two(3, 0, Gate2::Cnot).unwrap();
        let queries = all_bitstrings(4);
        let mut rng = StdRng::seed_from_u64(3);
        let sv =
            amplitudes(&c, &queries, BackendChoice::Fixed(Backend::Statevector), &mut rng).unwrap();
        let mps =
            amplitudes(&c, &queries, BackendChoice::Fixed(Backend::Mps { max_bond: 16 }), &mut rng)
                .unwrap();
        let peps = amplitudes(
            &c,
            &queries,
            BackendChoice::Fixed(Backend::Peps {
                evolution_bond: 16,
                method: ContractionMethod::Exact,
            }),
            &mut rng,
        )
        .unwrap();
        for i in 0..queries.len() {
            assert!((mps.amplitudes[i] - sv.amplitudes[i]).abs() < 1e-12, "mps query {i}");
            assert!((peps.amplitudes[i] - sv.amplitudes[i]).abs() < 1e-12, "peps query {i}");
        }
    }

    #[test]
    fn lattice_circuit_runs_on_its_declared_geometry() {
        let mut c = Circuit::with_lattice(2, 2);
        c.push_one(0, Gate1::H).unwrap();
        c.push_two(0, 3, Gate2::Cz).unwrap(); // diagonal pair: SWAP-routed
        let queries = all_bitstrings(4);
        let mut rng = StdRng::seed_from_u64(11);
        let sv =
            amplitudes(&c, &queries, BackendChoice::Fixed(Backend::Statevector), &mut rng).unwrap();
        let peps = amplitudes(
            &c,
            &queries,
            BackendChoice::Fixed(Backend::Peps {
                evolution_bond: 8,
                method: ContractionMethod::Exact,
            }),
            &mut rng,
        )
        .unwrap();
        for i in 0..queries.len() {
            assert!((peps.amplitudes[i] - sv.amplitudes[i]).abs() < 1e-12, "query {i}");
        }
    }

    #[test]
    fn single_query_light_cone_phase_folds_back() {
        // Bell circuit with a trailing T on qubit 1: the T peels into the
        // phase and the returned amplitude still matches the oracle.
        let mut c = bell();
        c.push_one(1, Gate1::T).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let full = amplitudes(
            &c,
            &all_bitstrings(2),
            BackendChoice::Fixed(Backend::Statevector),
            &mut rng,
        )
        .unwrap();
        let single = amplitudes(
            &c,
            &[vec![1, 1]],
            BackendChoice::Fixed(Backend::Mps { max_bond: 4 }),
            &mut rng,
        )
        .unwrap();
        assert!((single.amplitudes[0] - full.amplitudes[3]).abs() < 1e-12);
        assert!(single.gates_executed < single.gates_submitted, "the trailing T must be pruned");
    }
}
