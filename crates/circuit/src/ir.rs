//! The gate-list intermediate representation.
//!
//! A [`Circuit`] is an ordered list of one- and two-qubit [`Gate`]s over
//! `num_qubits` qubits addressed `0..n`. Qubits live on a chain by default;
//! an optional lattice shape ([`Circuit::with_lattice`]) declares a 2-D
//! row-major layout so the PEPS backend knows which qubit pairs are
//! physical neighbours (everything else is SWAP-routed).
//!
//! Gates are *typed* ([`Gate1`] / [`Gate2`]): the named variants carry their
//! defining parameters and materialise their matrices on demand, so
//! structural passes (fusion, diagonal absorption, light-cone pruning) can
//! reason about gate classes without string matching, and the serving layer
//! can put a compact tag — not sixteen floats — on the wire.

use koala_linalg::{c64, Matrix, C64};
use koala_tensor::TensorError;

/// Result alias for the circuit layer (shared with the tensor engine).
pub type Result<T> = std::result::Result<T, TensorError>;

/// Tolerance for the unitarity check on user-supplied gate matrices.
pub const UNITARY_TOL: f64 = 1e-10;

fn invalid(context: impl Into<String>) -> TensorError {
    TensorError::InvalidAxes { context: context.into() }
}

/// A one-qubit gate.
#[derive(Debug, Clone)]
pub enum Gate1 {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate `diag(1, i)`.
    S,
    /// `diag(1, e^{i pi/4})`.
    T,
    /// Rotation about X: `exp(-i theta X / 2)`.
    Rx(f64),
    /// Rotation about Y: `exp(-i theta Y / 2)` (a real matrix).
    Ry(f64),
    /// Rotation about Z: `diag(e^{-i theta/2}, e^{i theta/2})`.
    Rz(f64),
    /// An arbitrary 2x2 unitary.
    Unitary(Matrix),
}

impl Gate1 {
    /// The 2x2 matrix of this gate. Named real gates (H/X/Z/Ry) carry the
    /// structural realness hint so real circuits stay on the real kernels.
    pub fn matrix(&self) -> Matrix {
        let two = |data: &[f64]| {
            Matrix::from_real(2, 2, data).unwrap_or_else(|_| unreachable!("literal 2x2 data"))
        };
        match self {
            Gate1::H => {
                let s = 1.0 / 2.0f64.sqrt();
                two(&[s, s, s, -s])
            }
            Gate1::X => two(&[0.0, 1.0, 1.0, 0.0]),
            Gate1::Y => {
                let mut m = Matrix::zeros(2, 2);
                m[(0, 1)] = c64(0.0, -1.0);
                m[(1, 0)] = C64::I;
                m
            }
            Gate1::Z => Matrix::from_diag_real(&[1.0, -1.0]),
            Gate1::S => Matrix::from_diag(&[C64::ONE, C64::I]),
            Gate1::T => Matrix::from_diag(&[C64::ONE, C64::cis(std::f64::consts::FRAC_PI_4)]),
            Gate1::Rx(theta) => {
                let (s, c) = (theta / 2.0).sin_cos();
                let mut m = Matrix::zeros(2, 2);
                m[(0, 0)] = c64(c, 0.0);
                m[(1, 1)] = c64(c, 0.0);
                m[(0, 1)] = c64(0.0, -s);
                m[(1, 0)] = c64(0.0, -s);
                m
            }
            Gate1::Ry(theta) => {
                let (s, c) = (theta / 2.0).sin_cos();
                two(&[c, -s, s, c])
            }
            Gate1::Rz(theta) => Matrix::from_diag(&[C64::cis(-theta / 2.0), C64::cis(theta / 2.0)]),
            Gate1::Unitary(m) => m.clone(),
        }
    }

    /// True if the gate matrix is exactly diagonal (both off-diagonal
    /// entries identically zero). Parametrised rotations are classified by
    /// construction, arbitrary unitaries by an exact-zero scan.
    pub fn is_diagonal(&self) -> bool {
        match self {
            Gate1::Z | Gate1::S | Gate1::T | Gate1::Rz(_) => true,
            Gate1::H | Gate1::X | Gate1::Y | Gate1::Rx(_) | Gate1::Ry(_) => false,
            Gate1::Unitary(m) => m[(0, 1)].norm_sqr() == 0.0 && m[(1, 0)].norm_sqr() == 0.0,
        }
    }

    /// Short wire/signature tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Gate1::H => "h",
            Gate1::X => "x",
            Gate1::Y => "y",
            Gate1::Z => "z",
            Gate1::S => "s",
            Gate1::T => "t",
            Gate1::Rx(_) => "rx",
            Gate1::Ry(_) => "ry",
            Gate1::Rz(_) => "rz",
            Gate1::Unitary(_) => "u1",
        }
    }
}

impl PartialEq for Gate1 {
    fn eq(&self, other: &Gate1) -> bool {
        match (self, other) {
            (Gate1::H, Gate1::H)
            | (Gate1::X, Gate1::X)
            | (Gate1::Y, Gate1::Y)
            | (Gate1::Z, Gate1::Z)
            | (Gate1::S, Gate1::S)
            | (Gate1::T, Gate1::T) => true,
            (Gate1::Rx(a), Gate1::Rx(b))
            | (Gate1::Ry(a), Gate1::Ry(b))
            | (Gate1::Rz(a), Gate1::Rz(b)) => a == b,
            (Gate1::Unitary(a), Gate1::Unitary(b)) => a.data() == b.data(),
            _ => false,
        }
    }
}

/// A two-qubit gate. The first qubit is the most significant subsystem of
/// the 4x4 matrix (rows/columns indexed `2*bit_a + bit_b`).
#[derive(Debug, Clone)]
pub enum Gate2 {
    /// Controlled-NOT (first qubit controls).
    Cnot,
    /// Controlled-Z (symmetric, diagonal).
    Cz,
    /// SWAP (used by the routing passes; operator Schmidt rank 4).
    Swap,
    /// An arbitrary 4x4 unitary.
    Unitary(Matrix),
}

impl Gate2 {
    /// The 4x4 matrix of this gate.
    pub fn matrix(&self) -> Matrix {
        match self {
            Gate2::Cnot => Matrix::from_real(
                4,
                4,
                &[
                    1.0, 0.0, 0.0, 0.0, //
                    0.0, 1.0, 0.0, 0.0, //
                    0.0, 0.0, 0.0, 1.0, //
                    0.0, 0.0, 1.0, 0.0,
                ],
            )
            .unwrap_or_else(|_| unreachable!("literal 4x4 data")),
            Gate2::Cz => Matrix::from_diag_real(&[1.0, 1.0, 1.0, -1.0]),
            Gate2::Swap => Matrix::from_real(
                4,
                4,
                &[
                    1.0, 0.0, 0.0, 0.0, //
                    0.0, 0.0, 1.0, 0.0, //
                    0.0, 1.0, 0.0, 0.0, //
                    0.0, 0.0, 0.0, 1.0,
                ],
            )
            .unwrap_or_else(|_| unreachable!("literal 4x4 data")),
            Gate2::Unitary(m) => m.clone(),
        }
    }

    /// Upper bound on the operator Schmidt rank across the qubit
    /// bipartition — the factor by which applying this gate can multiply a
    /// bond dimension cut between its qubits. `Cnot`/`Cz` are rank 2 by
    /// algebra; arbitrary unitaries are measured numerically (SVD of the
    /// subsystem-reshuffled matrix).
    pub fn schmidt_rank(&self) -> usize {
        match self {
            Gate2::Cnot | Gate2::Cz => 2,
            Gate2::Swap => 4,
            Gate2::Unitary(m) => operator_schmidt_rank(m),
        }
    }

    /// Short wire/signature tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Gate2::Cnot => "cnot",
            Gate2::Cz => "cz",
            Gate2::Swap => "swap",
            Gate2::Unitary(_) => "u2",
        }
    }
}

impl PartialEq for Gate2 {
    fn eq(&self, other: &Gate2) -> bool {
        match (self, other) {
            (Gate2::Cnot, Gate2::Cnot) | (Gate2::Cz, Gate2::Cz) | (Gate2::Swap, Gate2::Swap) => {
                true
            }
            (Gate2::Unitary(a), Gate2::Unitary(b)) => a.data() == b.data(),
            _ => false,
        }
    }
}

/// Operator Schmidt rank of a 4x4 two-qubit gate: the matrix rank of the
/// reshuffled matrix `R[(a',a),(b',b)] = G[(a'b'),(ab)]`, counting singular
/// values above `1e-12` of the largest.
fn operator_schmidt_rank(g: &Matrix) -> usize {
    let t = koala_tensor::Tensor::from_matrix_2d(g);
    let Ok(t) = t.reshape(&[2, 2, 2, 2]) else { return 4 };
    let Ok(p) = t.permute(&[0, 2, 1, 3]) else { return 4 };
    let r = p.unfold(2);
    match koala_linalg::svd(&r) {
        Ok(f) => {
            let s0 = f.s.first().copied().unwrap_or(0.0);
            f.s.iter().filter(|&&s| s > 1e-12 * s0).count().max(1)
        }
        Err(_) => 4,
    }
}

/// One gate of a circuit, bound to its qubits.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// A one-qubit gate.
    One {
        /// Target qubit.
        qubit: usize,
        /// The gate.
        gate: Gate1,
    },
    /// A two-qubit gate on an arbitrary (distinct) qubit pair — backends
    /// SWAP-route pairs that are not physically adjacent.
    Two {
        /// Most significant qubit of the 4x4 matrix.
        a: usize,
        /// Least significant qubit.
        b: usize,
        /// The gate.
        gate: Gate2,
    },
}

impl Gate {
    /// Qubits the gate acts on (one or two entries).
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Gate::One { qubit, .. } => vec![*qubit],
            Gate::Two { a, b, .. } => vec![*a, *b],
        }
    }
}

/// A gate-list quantum circuit over `num_qubits` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    lattice: Option<(usize, usize)>,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Empty circuit on a chain of `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Circuit {
        Circuit { num_qubits, lattice: None, gates: Vec::new() }
    }

    /// Empty circuit on an `nrows x ncols` lattice (row-major qubit order).
    /// The lattice shape steers the PEPS backend's adjacency; chain backends
    /// ignore it.
    pub fn with_lattice(nrows: usize, ncols: usize) -> Circuit {
        Circuit { num_qubits: nrows * ncols, lattice: Some((nrows, ncols)), gates: Vec::new() }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Declared lattice shape, if any.
    pub fn lattice(&self) -> Option<(usize, usize)> {
        self.lattice
    }

    /// Gates in application order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::Two { .. })).count()
    }

    /// Rebuild this circuit's shell (qubit count and lattice) with a
    /// different gate list — used by the structural passes.
    pub(crate) fn with_gates(&self, gates: Vec<Gate>) -> Circuit {
        Circuit { num_qubits: self.num_qubits, lattice: self.lattice, gates }
    }

    fn check_qubit(&self, q: usize) -> Result<()> {
        if q >= self.num_qubits {
            return Err(invalid(format!(
                "circuit: qubit {q} out of range for {} qubits",
                self.num_qubits
            )));
        }
        Ok(())
    }

    fn check_pair(&self, a: usize, b: usize) -> Result<()> {
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        if a == b {
            return Err(invalid(format!("circuit: two-qubit gate on identical qubit {a}")));
        }
        Ok(())
    }

    /// Append a one-qubit gate.
    pub fn push_one(&mut self, qubit: usize, gate: Gate1) -> Result<&mut Circuit> {
        self.check_qubit(qubit)?;
        if let Gate1::Rx(t) | Gate1::Ry(t) | Gate1::Rz(t) = gate {
            if !t.is_finite() {
                return Err(invalid("circuit: rotation angle must be finite"));
            }
        }
        if let Gate1::Unitary(m) = &gate {
            check_unitary(m, 2)?;
        }
        self.gates.push(Gate::One { qubit, gate });
        Ok(self)
    }

    /// Append a two-qubit gate (`a` is the most significant subsystem).
    pub fn push_two(&mut self, a: usize, b: usize, gate: Gate2) -> Result<&mut Circuit> {
        self.check_pair(a, b)?;
        if let Gate2::Unitary(m) = &gate {
            check_unitary(m, 4)?;
        }
        self.gates.push(Gate::Two { a, b, gate });
        Ok(self)
    }

    /// Re-validate every gate (bounds, unitarity). Construction through the
    /// push methods already guarantees this; the serving layer re-checks
    /// wire-parsed circuits defensively.
    pub fn validate(&self) -> Result<()> {
        for gate in &self.gates {
            match gate {
                Gate::One { qubit, gate } => {
                    self.check_qubit(*qubit)?;
                    if let Gate1::Unitary(m) = gate {
                        check_unitary(m, 2)?;
                    }
                }
                Gate::Two { a, b, gate } => {
                    self.check_pair(*a, *b)?;
                    if let Gate2::Unitary(m) = gate {
                        check_unitary(m, 4)?;
                    }
                }
            }
        }
        if let Some((r, c)) = self.lattice {
            if r * c != self.num_qubits {
                return Err(invalid(format!(
                    "circuit: lattice {r}x{c} does not hold {} qubits",
                    self.num_qubits
                )));
            }
        }
        Ok(())
    }

    /// Structural key over gate kinds and placements (parameters and matrix
    /// values excluded, except the exact-zero pattern of arbitrary
    /// unitaries, which steers the structural passes). Circuits sharing a
    /// key run the same contraction shapes, so the serving layer uses it as
    /// the workload-signature component.
    pub fn structure_key(&self) -> u64 {
        // FNV-1a over a byte stream of tags and indices.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&(self.num_qubits as u64).to_le_bytes());
        if let Some((r, c)) = self.lattice {
            eat(&(r as u64).to_le_bytes());
            eat(&(c as u64).to_le_bytes());
        }
        for gate in &self.gates {
            match gate {
                Gate::One { qubit, gate } => {
                    eat(gate.tag().as_bytes());
                    eat(&(*qubit as u64).to_le_bytes());
                    if let Gate1::Unitary(m) = gate {
                        eat(&[zero_pattern(m)]);
                    }
                }
                Gate::Two { a, b, gate } => {
                    eat(gate.tag().as_bytes());
                    eat(&(*a as u64).to_le_bytes());
                    eat(&(*b as u64).to_le_bytes());
                    if let Gate2::Unitary(m) = gate {
                        eat(&zero_pattern16(m).to_le_bytes());
                    }
                }
            }
        }
        h
    }

    /// Import a lattice circuit from the `koala-sim` RQC layer: sites map to
    /// qubits row-major, and every gate matrix arrives as an arbitrary
    /// unitary. The result carries the lattice shape, so the PEPS backend
    /// sees the same neighbour structure the original circuit used.
    pub fn from_lattice_circuit(
        circuit: &koala_sim::Circuit,
        nrows: usize,
        ncols: usize,
    ) -> Result<Circuit> {
        let mut out = Circuit::with_lattice(nrows, ncols);
        let q = |(r, c): koala_peps::Site| r * ncols + c;
        for op in circuit.ops() {
            match op {
                koala_sim::CircuitOp::OneSite { site, matrix } => {
                    out.push_one(q(*site), Gate1::Unitary(matrix.clone()))?;
                }
                koala_sim::CircuitOp::TwoSite { site_a, site_b, matrix } => {
                    out.push_two(q(*site_a), q(*site_b), Gate2::Unitary(matrix.clone()))?;
                }
            }
        }
        Ok(out)
    }
}

/// Bitmask of exactly-zero entries of a 2x2 matrix (4 bits).
fn zero_pattern(m: &Matrix) -> u8 {
    let mut bits = 0u8;
    for (i, z) in m.data().iter().enumerate() {
        if z.norm_sqr() == 0.0 {
            bits |= 1 << i;
        }
    }
    bits
}

/// Bitmask of exactly-zero entries of a 4x4 matrix (16 bits).
fn zero_pattern16(m: &Matrix) -> u16 {
    let mut bits = 0u16;
    for (i, z) in m.data().iter().enumerate() {
        if z.norm_sqr() == 0.0 {
            bits |= 1 << i;
        }
    }
    bits
}

fn check_unitary(m: &Matrix, dim: usize) -> Result<()> {
    if m.shape() != (dim, dim) {
        return Err(invalid(format!(
            "circuit: gate matrix is {:?}, expected {dim}x{dim}",
            m.shape()
        )));
    }
    m.validate_finite("circuit gate").map_err(|e| invalid(e.to_string()))?;
    if !koala_linalg::matmul_adj_a(m, m).approx_eq(&Matrix::identity(dim), UNITARY_TOL) {
        return Err(invalid(format!("circuit: {dim}x{dim} gate matrix is not unitary")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_gates_are_unitary_and_hinted() {
        for g in [
            Gate1::H,
            Gate1::X,
            Gate1::Y,
            Gate1::Z,
            Gate1::S,
            Gate1::T,
            Gate1::Rx(0.7),
            Gate1::Ry(1.3),
            Gate1::Rz(-0.4),
        ] {
            let m = g.matrix();
            assert!(matmul_adj(&m).approx_eq(&Matrix::identity(2), 1e-12), "{g:?} is not unitary");
        }
        for g in [Gate2::Cnot, Gate2::Cz, Gate2::Swap] {
            assert!(matmul_adj(&g.matrix()).approx_eq(&Matrix::identity(4), 1e-12));
        }
        // The real gates carry the structural hint; complex phases drop it.
        for g in [Gate1::H, Gate1::X, Gate1::Z, Gate1::Ry(0.9)] {
            assert!(g.matrix().is_real(), "{g:?} should carry the realness hint");
        }
        for g in [Gate1::Y, Gate1::S, Gate1::T, Gate1::Rx(0.3), Gate1::Rz(0.3)] {
            assert!(!g.matrix().is_real(), "{g:?} must not carry the realness hint");
        }
        assert!(Gate2::Cnot.matrix().is_real() && Gate2::Cz.matrix().is_real());
        assert!(Gate2::Swap.matrix().is_real());
    }

    fn matmul_adj(m: &Matrix) -> Matrix {
        koala_linalg::matmul_adj_a(m, m)
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate1::Z.is_diagonal() && Gate1::S.is_diagonal() && Gate1::Rz(0.2).is_diagonal());
        assert!(
            !Gate1::H.is_diagonal() && !Gate1::X.is_diagonal() && !Gate1::Ry(0.2).is_diagonal()
        );
        assert!(Gate1::Unitary(Gate1::Rz(0.5).matrix()).is_diagonal());
        assert!(!Gate1::Unitary(Gate1::H.matrix()).is_diagonal());
    }

    #[test]
    fn schmidt_ranks() {
        assert_eq!(Gate2::Cnot.schmidt_rank(), 2);
        assert_eq!(Gate2::Cz.schmidt_rank(), 2);
        assert_eq!(Gate2::Swap.schmidt_rank(), 4);
        assert_eq!(Gate2::Unitary(Gate2::Cnot.matrix()).schmidt_rank(), 2);
        assert_eq!(Gate2::Unitary(Gate2::Swap.matrix()).schmidt_rank(), 4);
        // A product gate A (x) B has Schmidt rank 1.
        let prod = koala_peps::operators::kron(&Gate1::H.matrix(), &Gate1::Ry(0.3).matrix());
        assert_eq!(Gate2::Unitary(prod).schmidt_rank(), 1);
    }

    #[test]
    fn construction_validation() {
        let mut c = Circuit::new(3);
        c.push_one(0, Gate1::H).unwrap().push_two(0, 2, Gate2::Cnot).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.two_qubit_count(), 1);
        assert!(c.push_one(3, Gate1::X).is_err(), "qubit out of range");
        assert!(c.push_two(1, 1, Gate2::Cz).is_err(), "identical qubits");
        assert!(
            c.push_one(0, Gate1::Unitary(Matrix::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]).unwrap()))
                .is_err(),
            "non-unitary matrix"
        );
        assert!(c.push_one(0, Gate1::Rx(f64::NAN)).is_err(), "non-finite angle");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn structure_key_ignores_parameters_but_not_placement() {
        let mut a = Circuit::new(4);
        a.push_one(1, Gate1::Rz(0.3)).unwrap().push_two(0, 1, Gate2::Cz).unwrap();
        let mut b = Circuit::new(4);
        b.push_one(1, Gate1::Rz(-2.4)).unwrap().push_two(0, 1, Gate2::Cz).unwrap();
        assert_eq!(a.structure_key(), b.structure_key(), "angles are value-level");
        let mut c = Circuit::new(4);
        c.push_one(2, Gate1::Rz(0.3)).unwrap().push_two(0, 1, Gate2::Cz).unwrap();
        assert_ne!(a.structure_key(), c.structure_key(), "placement is structural");
        let mut d = Circuit::new(4);
        d.push_one(1, Gate1::Ry(0.3)).unwrap().push_two(0, 1, Gate2::Cz).unwrap();
        assert_ne!(a.structure_key(), d.structure_key(), "gate kind is structural");
    }

    #[test]
    fn lattice_import_matches_sim_circuit() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let rqc = koala_sim::random_circuit(2, 3, 2, 2, &mut rng);
        let fe = Circuit::from_lattice_circuit(&rqc, 2, 3).unwrap();
        assert_eq!(fe.num_qubits(), 6);
        assert_eq!(fe.lattice(), Some((2, 3)));
        assert_eq!(fe.len(), rqc.len());
        assert_eq!(fe.two_qubit_count(), rqc.two_qubit_count());
        // First op targets the same qubit the site maps to.
        if let (koala_sim::CircuitOp::OneSite { site, matrix }, Gate::One { qubit, gate }) =
            (&rqc.ops()[0], &fe.gates()[0])
        {
            assert_eq!(*qubit, site.0 * 3 + site.1);
            if let Gate1::Unitary(m) = gate {
                assert!(m.approx_eq(matrix, 0.0));
            } else {
                panic!("imported gate should be an arbitrary unitary");
            }
        } else {
            panic!("unexpected op shapes");
        }

        let mismatched = Circuit::from_lattice_circuit(&rqc, 2, 2);
        assert!(mismatched.is_err(), "site outside the declared lattice must fail");
    }
}
