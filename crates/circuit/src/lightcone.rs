//! Per-output-bit light-cone pruning for amplitude queries.
//!
//! An amplitude `<bits| C |0...0>` only depends on the part of the circuit
//! inside the backward light cone of the measured bits — and the trailing
//! boundary of that cone can be peeled off *exactly* whenever the final gate
//! on a qubit maps the queried basis row to a single basis column. Scanning
//! the gate list backwards:
//!
//! * take the matrix row selected by the current output bits
//!   (`bits[q]` for one-qubit gates, `2*bits[a] + bits[b]` for two-qubit);
//! * if that row has exactly one nonzero entry (a *monomial* row — true for
//!   diagonal gates like Z/S/T/Rz/CZ, permutations like X/CNOT/SWAP, and any
//!   monomial row of an arbitrary unitary), drop the gate, multiply the
//!   accumulated `phase` by the entry, and relabel the queried bits to the
//!   column index;
//! * otherwise keep the gate and mark its qubits *blocked* — earlier gates
//!   on a blocked qubit are inside the cone and must stay.
//!
//! The invariant (pinned by the differential suite) is
//! `amplitude(circuit, bits) == phase * amplitude(pruned, pruned_bits)`.
//! Zero-entry tests are exact, so float-noise rows of fused unitaries are
//! conservatively kept — pruning never *approximates*.

use koala_linalg::{Matrix, C64};

use crate::ir::{Circuit, Gate};

/// A pruned amplitude query: evaluate `pruned` at `bits` and scale by
/// `phase` to recover the original amplitude.
#[derive(Debug, Clone)]
pub struct PrunedQuery {
    /// The circuit with trailing monomial gates peeled off.
    pub circuit: Circuit,
    /// The relabelled output bitstring to query on the pruned circuit.
    pub bits: Vec<usize>,
    /// Product of the absorbed monomial entries.
    pub phase: C64,
}

impl PrunedQuery {
    /// Gates removed relative to the original circuit.
    pub fn gates_pruned(&self, original: &Circuit) -> usize {
        original.len() - self.circuit.len()
    }
}

/// The single nonzero column of a matrix row, if the row is monomial.
fn monomial_column(m: &Matrix, row: usize) -> Option<(usize, C64)> {
    let (_, ncols) = m.shape();
    let mut hit: Option<(usize, C64)> = None;
    for col in 0..ncols {
        let z = m[(row, col)];
        if z.norm_sqr() != 0.0 {
            if hit.is_some() {
                return None;
            }
            hit = Some((col, z));
        }
    }
    hit
}

/// Prune the trailing light-cone boundary of `circuit` for the amplitude
/// query `<bits| circuit |0...0>`.
///
/// # Errors
/// Returns an error if `bits` is not a 0/1 string of length `num_qubits`.
pub fn prune_for_bits(circuit: &Circuit, bits: &[usize]) -> crate::ir::Result<PrunedQuery> {
    let n = circuit.num_qubits();
    if bits.len() != n || bits.iter().any(|&b| b > 1) {
        return Err(koala_tensor::TensorError::InvalidAxes {
            context: format!("light-cone: expected {n} bits of 0/1, got {bits:?}"),
        });
    }
    let mut bits = bits.to_vec();
    let mut phase = C64::ONE;
    let mut blocked = vec![false; n];
    // Indices of kept gates, collected in reverse scan order.
    let mut kept_rev: Vec<usize> = Vec::new();

    for (idx, gate) in circuit.gates().iter().enumerate().rev() {
        match gate {
            Gate::One { qubit, gate } => {
                let q = *qubit;
                if !blocked[q] {
                    if let Some((col, z)) = monomial_column(&gate.matrix(), bits[q]) {
                        phase *= z;
                        bits[q] = col;
                        continue;
                    }
                    blocked[q] = true;
                }
                kept_rev.push(idx);
            }
            Gate::Two { a, b, gate } => {
                let (a, b) = (*a, *b);
                if !blocked[a] && !blocked[b] {
                    let row = 2 * bits[a] + bits[b];
                    if let Some((col, z)) = monomial_column(&gate.matrix(), row) {
                        phase *= z;
                        bits[a] = col >> 1;
                        bits[b] = col & 1;
                        continue;
                    }
                }
                blocked[a] = true;
                blocked[b] = true;
                kept_rev.push(idx);
            }
        }
    }

    let keep: std::collections::HashSet<usize> = kept_rev.into_iter().collect();
    let gates = circuit
        .gates()
        .iter()
        .enumerate()
        .filter(|(i, _)| keep.contains(i))
        .map(|(_, g)| g.clone())
        .collect();
    Ok(PrunedQuery { circuit: circuit.with_gates(gates), bits, phase })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Gate1, Gate2};
    use koala_linalg::c64;

    fn approx(a: C64, b: C64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn trailing_diagonals_are_absorbed_into_phase() {
        let mut c = Circuit::new(2);
        c.push_one(0, Gate1::H).unwrap();
        c.push_two(0, 1, Gate2::Cnot).unwrap();
        c.push_one(0, Gate1::T).unwrap();
        c.push_one(1, Gate1::S).unwrap();
        c.push_two(0, 1, Gate2::Cz).unwrap();
        let p = prune_for_bits(&c, &[1, 1]).unwrap();
        // CZ row |11> -> -1; S row 1 -> i; T row 1 -> e^{i pi/4}; and the
        // CNOT row |11> is monomial too, relabelling the query to |10>.
        assert_eq!(p.circuit.len(), 1, "only the H survives");
        assert_eq!(p.bits, vec![1, 0]);
        approx(p.phase, c64(-1.0, 0.0) * C64::I * C64::cis(std::f64::consts::FRAC_PI_4));
    }

    #[test]
    fn trailing_x_relabels_the_query_bit() {
        let mut c = Circuit::new(1);
        c.push_one(0, Gate1::H).unwrap();
        c.push_one(0, Gate1::X).unwrap();
        let p = prune_for_bits(&c, &[0]).unwrap();
        // <0| X H |0> = <1| H |0>: the X is peeled and the bit flips.
        assert_eq!(p.circuit.len(), 1);
        assert_eq!(p.bits, vec![1]);
        approx(p.phase, C64::ONE);
    }

    #[test]
    fn trailing_cnot_permutes_the_bit_pair() {
        let mut c = Circuit::new(2);
        c.push_one(0, Gate1::H).unwrap();
        c.push_two(0, 1, Gate2::Cnot).unwrap();
        // <10| CNOT (H x I) |00> = <11| H x I |00>.
        let p = prune_for_bits(&c, &[1, 0]).unwrap();
        assert_eq!(p.circuit.len(), 1);
        assert_eq!(p.bits, vec![1, 1]);
        approx(p.phase, C64::ONE);
    }

    #[test]
    fn blocked_qubits_stop_absorption() {
        let mut c = Circuit::new(2);
        c.push_one(0, Gate1::Z).unwrap(); // before the H: inside the cone
        c.push_one(0, Gate1::H).unwrap(); // blocks qubit 0
        c.push_two(0, 1, Gate2::Cz).unwrap(); // row |00> is monomial: peeled
        let p = prune_for_bits(&c, &[0, 0]).unwrap();
        assert_eq!(p.circuit.len(), 2, "H blocks, so the earlier Z is kept");
        approx(p.phase, C64::ONE);

        // Querying |1x> instead leaves the CZ unabsorbed only when a
        // non-monomial gate sits after it on one of its qubits.
        let mut d = Circuit::new(2);
        d.push_two(0, 1, Gate2::Cz).unwrap();
        d.push_one(0, Gate1::H).unwrap(); // blocks qubit 0 first in the scan
        let p = prune_for_bits(&d, &[0, 0]).unwrap();
        assert_eq!(p.circuit.len(), 2, "the CZ touches a blocked qubit");
    }

    #[test]
    fn bad_bitstrings_are_rejected() {
        let c = Circuit::new(2);
        assert!(prune_for_bits(&c, &[0]).is_err());
        assert!(prune_for_bits(&c, &[0, 2]).is_err());
    }
}
