//! Structural circuit simplification.
//!
//! Two passes, both semantics-preserving (the differential suite pins this
//! against the statevector oracle):
//!
//! 1. **Single-qubit fusion** — maximal runs of adjacent one-qubit gates on
//!    the same qubit collapse into one 2x2 unitary (matrix product in
//!    application order). A fused product that lands on the identity (up to
//!    round-off, including global sign/phase *not* — `-I` is kept) is
//!    dropped outright.
//! 2. **Diagonal absorption** — an exactly diagonal one-qubit gate commutes
//!    trivially with the bond structure, so it is folded into the *next*
//!    two-qubit gate touching its qubit (`G * (D_a (x) D_b)`), saving a
//!    whole MPS/PEPS site update. Diagonals with no later two-qubit
//!    neighbour are re-emitted at the end of the circuit, which is sound
//!    because no gate after them touches that qubit.
//!
//! Realness propagates through both passes: products and Kronecker factors
//! of hinted-real matrices keep the hint, so fusing an all-real circuit
//! never silently re-complexifies it.

use koala_linalg::{matmul, Matrix};
use koala_peps::operators::kron;

use crate::ir::{Circuit, Gate, Gate1, Gate2};

/// Tolerance for dropping fused products that reduce to the identity.
const IDENTITY_TOL: f64 = 1e-12;

/// What the simplifier did, for logs and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// One-qubit gates removed by fusing runs into a single unitary.
    pub fused: usize,
    /// Fused products dropped because they were the identity.
    pub identities_removed: usize,
    /// Diagonal one-qubit gates folded into a following two-qubit gate.
    pub diagonals_absorbed: usize,
}

impl SimplifyStats {
    /// Total gates eliminated from the list.
    pub fn eliminated(&self) -> usize {
        self.fused + self.identities_removed + self.diagonals_absorbed
    }
}

/// Run both simplification passes; returns the simplified circuit and the
/// pass statistics. The result is semantically identical to the input (same
/// unitary, hence same amplitudes).
pub fn simplify(circuit: &Circuit) -> (Circuit, SimplifyStats) {
    let mut stats = SimplifyStats::default();
    let fused = fuse_single_qubit_runs(circuit, &mut stats);
    let absorbed = absorb_diagonals(&fused, &mut stats);
    (absorbed, stats)
}

/// Pass 1: collapse maximal runs of one-qubit gates per qubit.
///
/// A pending per-qubit accumulator holds `(product matrix, sole gate)` — the
/// sole-gate slot keeps the original typed gate when the run has length one,
/// so an un-fusable lone `T` stays a `T` (cheap to serialise, classified
/// diagonal without a matrix scan). The accumulator flushes when a two-qubit
/// gate touches the qubit and at end-of-circuit; flush order follows first
/// appearance, which commutes with everything emitted in between (disjoint
/// qubits).
fn fuse_single_qubit_runs(circuit: &Circuit, stats: &mut SimplifyStats) -> Circuit {
    let n = circuit.num_qubits();
    // pending[q] = (accumulated matrix, Some(gate) iff run length == 1, run length)
    let mut pending: Vec<Option<(Matrix, Option<Gate1>, usize)>> = vec![None; n];
    let mut out: Vec<Gate> = Vec::with_capacity(circuit.len());

    let flush = |pending: &mut Vec<Option<(Matrix, Option<Gate1>, usize)>>,
                 out: &mut Vec<Gate>,
                 stats: &mut SimplifyStats,
                 q: usize| {
        if let Some((m, sole, run)) = pending[q].take() {
            if run > 1 && m.approx_eq(&Matrix::identity(2), IDENTITY_TOL) {
                stats.fused += run - 1;
                stats.identities_removed += 1;
                return;
            }
            let gate = match sole {
                Some(g) => g,
                None => {
                    stats.fused += run - 1;
                    Gate1::Unitary(m)
                }
            };
            out.push(Gate::One { qubit: q, gate });
        }
    };

    for gate in circuit.gates() {
        match gate {
            Gate::One { qubit, gate } => {
                let q = *qubit;
                pending[q] = Some(match pending[q].take() {
                    None => (gate.matrix(), Some(gate.clone()), 1),
                    // Application order: new gate multiplies from the left.
                    Some((m, _, run)) => (matmul(&gate.matrix(), &m), None, run + 1),
                });
            }
            Gate::Two { a, b, gate } => {
                flush(&mut pending, &mut out, stats, *a);
                flush(&mut pending, &mut out, stats, *b);
                out.push(Gate::Two { a: *a, b: *b, gate: gate.clone() });
            }
        }
    }
    for q in 0..n {
        flush(&mut pending, &mut out, stats, q);
    }
    circuit.with_gates(out)
}

/// Pass 2: fold exactly diagonal one-qubit gates into the next two-qubit
/// gate on the same qubit. The diagonal acts *before* the two-qubit gate, so
/// it right-multiplies: `G' = G * (D_a (x) D_b)` with qubit `a` the most
/// significant Kronecker factor (the [`Gate2`] row/column convention).
fn absorb_diagonals(circuit: &Circuit, stats: &mut SimplifyStats) -> Circuit {
    let n = circuit.num_qubits();
    let mut pending: Vec<Option<(Matrix, Gate1)>> = vec![None; n];
    let mut out: Vec<Gate> = Vec::with_capacity(circuit.len());

    for gate in circuit.gates() {
        match gate {
            Gate::One { qubit, gate } => {
                let q = *qubit;
                if gate.is_diagonal() {
                    pending[q] = Some(match pending[q].take() {
                        None => (gate.matrix(), gate.clone()),
                        Some((m, _)) => {
                            // Two diagonals in a row only happen on circuits
                            // that skipped fusion; their product is diagonal.
                            let prod = matmul(&gate.matrix(), &m);
                            (prod.clone(), Gate1::Unitary(prod))
                        }
                    });
                } else {
                    // A non-diagonal gate pins any pending diagonal in place.
                    if let Some((_, g)) = pending[q].take() {
                        out.push(Gate::One { qubit: q, gate: g });
                    }
                    out.push(Gate::One { qubit: q, gate: gate.clone() });
                }
            }
            Gate::Two { a, b, gate } => {
                let da = pending[*a].take().map(|(m, _)| m);
                let db = pending[*b].take().map(|(m, _)| m);
                if da.is_none() && db.is_none() {
                    out.push(Gate::Two { a: *a, b: *b, gate: gate.clone() });
                    continue;
                }
                stats.diagonals_absorbed += da.iter().count() + db.iter().count();
                let da = da.unwrap_or_else(|| Matrix::identity(2));
                let db = db.unwrap_or_else(|| Matrix::identity(2));
                let folded = matmul(&gate.matrix(), &kron(&da, &db));
                out.push(Gate::Two { a: *a, b: *b, gate: Gate2::Unitary(folded) });
            }
        }
    }
    for (q, slot) in pending.iter_mut().enumerate() {
        if let Some((_, g)) = slot.take() {
            out.push(Gate::One { qubit: q, gate: g });
        }
    }
    circuit.with_gates(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_collapses_runs_and_drops_identities() {
        let mut c = Circuit::new(2);
        c.push_one(0, Gate1::H).unwrap();
        c.push_one(0, Gate1::H).unwrap(); // H*H = I -> dropped
        c.push_one(1, Gate1::S).unwrap();
        c.push_one(1, Gate1::T).unwrap(); // fused into one unitary
        c.push_two(0, 1, Gate2::Cnot).unwrap();
        let mut stats = SimplifyStats::default();
        let fused = fuse_single_qubit_runs(&c, &mut stats);
        assert_eq!(stats.identities_removed, 1);
        assert_eq!(stats.fused, 2);
        // Remaining: fused S*T diagonal on qubit 1 + the CNOT.
        assert_eq!(fused.len(), 2);
        assert!(matches!(fused.gates()[1], Gate::Two { .. }));
    }

    #[test]
    fn minus_identity_is_not_dropped() {
        let mut c = Circuit::new(1);
        c.push_one(0, Gate1::X).unwrap();
        c.push_one(0, Gate1::Z).unwrap();
        c.push_one(0, Gate1::X).unwrap();
        c.push_one(0, Gate1::Z).unwrap(); // (ZX)^2 = -I: a global phase, kept
        let (s, stats) = simplify(&c);
        assert_eq!(stats.identities_removed, 0);
        assert_eq!(s.len(), 1, "fused into a single -I unitary, not removed");
    }

    #[test]
    fn diagonal_absorption_folds_into_next_two_qubit_gate() {
        let mut c = Circuit::new(2);
        c.push_one(0, Gate1::T).unwrap();
        c.push_one(1, Gate1::Z).unwrap();
        c.push_two(0, 1, Gate2::Cz).unwrap();
        let (s, stats) = simplify(&c);
        assert_eq!(stats.diagonals_absorbed, 2);
        assert_eq!(s.len(), 1);
        let Gate::Two { gate: Gate2::Unitary(m), .. } = &s.gates()[0] else {
            panic!("expected a folded two-qubit unitary")
        };
        let expect = matmul(&Gate2::Cz.matrix(), &kron(&Gate1::T.matrix(), &Gate1::Z.matrix()));
        assert!(m.approx_eq(&expect, 1e-15));
    }

    #[test]
    fn trailing_diagonal_is_re_emitted() {
        let mut c = Circuit::new(2);
        c.push_two(0, 1, Gate2::Cnot).unwrap();
        c.push_one(0, Gate1::S).unwrap();
        let (s, stats) = simplify(&c);
        assert_eq!(stats.diagonals_absorbed, 0);
        assert_eq!(s.len(), 2, "no later neighbour: the S survives at the end");
        assert!(matches!(&s.gates()[1], Gate::One { qubit: 0, gate: Gate1::S }));
    }

    #[test]
    fn non_diagonal_pins_pending_diagonal() {
        let mut c = Circuit::new(1);
        c.push_one(0, Gate1::T).unwrap();
        c.push_one(0, Gate1::H).unwrap();
        // Fusion collapses T,H first; force the absorption pass alone.
        let mut stats = SimplifyStats::default();
        let out = absorb_diagonals(&c, &mut stats);
        assert_eq!(stats.diagonals_absorbed, 0);
        assert_eq!(out.len(), 2, "T must stay before H in order");
        assert!(matches!(&out.gates()[0], Gate::One { gate: Gate1::T, .. }));
        assert!(matches!(&out.gates()[1], Gate::One { gate: Gate1::H, .. }));
    }

    #[test]
    fn real_circuit_stays_hinted_through_fusion() {
        let mut c = Circuit::new(2);
        c.push_one(0, Gate1::H).unwrap();
        c.push_one(0, Gate1::Ry(0.4)).unwrap();
        c.push_two(0, 1, Gate2::Cz).unwrap();
        let (s, _) = simplify(&c);
        for g in s.gates() {
            let m = match g {
                Gate::One { gate, .. } => gate.matrix(),
                Gate::Two { gate, .. } => gate.matrix(),
            };
            assert!(m.is_real(), "realness hint lost in simplification: {g:?}");
        }
    }
}
