//! # koala-circuit — the circuit-as-tensor-network front end
//!
//! Turns gate-list quantum circuits into servable tensor-network workloads:
//!
//! ```text
//!   Circuit (typed gate list IR)
//!      | simplify: 1q-run fusion, identity drop, diagonal absorption
//!      v
//!   simplified Circuit
//!      | light-cone pruning (single-amplitude queries)
//!      v
//!   dispatch: statevector (<= 20 qubits, the oracle)
//!           | MPS + SVD truncation (entanglement bound fits the chain)
//!           | PEPS + boundary-MPS contraction (everything wider)
//! ```
//!
//! Every backend evolves the state once per bitstring batch and answers each
//! query with a value-independent contraction, so warm batches replay cached
//! einsum plans; realness hints propagate end to end (an all-real circuit
//! executes zero complex MACs); and all work bills to the ambient
//! [`koala_exec::WorkMeter`] scope.
//!
//! The differential property-test suite (`tests/differential.rs`) pins each
//! backend and each structural pass against the exact statevector oracle.

#![warn(missing_docs)]
// Front-end code must not panic on fallible paths: every failure surfaces
// as a typed error (invalid gate, bad bitstring, engine failure).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod ir;
pub mod lightcone;
pub mod simplify;

pub use backend::{
    amplitudes, choose_backend, entanglement_bond_bound, AmplitudeBatch, Backend, BackendChoice,
    MPS_MAX_BOND, STATEVECTOR_MAX_QUBITS,
};
pub use ir::{Circuit, Gate, Gate1, Gate2, Result};
pub use lightcone::{prune_for_bits, PrunedQuery};
pub use simplify::{simplify, SimplifyStats};
