//! # koala-sim
//!
//! Application layer of the koala-rs reproduction of *"Efficient 2D Tensor
//! Network Simulation of Quantum Systems"* (SC 2020): everything the paper's
//! evaluation runs *on top of* the PEPS library.
//!
//! * [`gates`] — standard quantum gates,
//! * [`statevector`] — exact state-vector simulator (reference curves),
//! * [`hamiltonian`] — transverse-field Ising and J1-J2 Heisenberg models and
//!   their Trotter gates,
//! * [`circuit`] — quantum circuits and the random-quantum-circuit generator
//!   of the Figure 10 benchmark,
//! * [`ite`] — imaginary time evolution / TEBD (Figure 13),
//! * [`vqe`] — the variational quantum eigensolver driver (Figure 14),
//! * [`opt`] — derivative-free optimizers (Nelder–Mead, SPSA).
//!
//! # Example: a transverse-field Ising energy, state vector vs PEPS
//!
//! The exact state-vector simulator provides the reference curves the
//! paper's figures are checked against; the PEPS path (through
//! `koala-peps`) must agree on small lattices:
//!
//! ```
//! use koala_sim::{tfi_hamiltonian, StateVector, TfiParams};
//! use koala_peps::expectation::{expectation_normalized, ExpectationOptions};
//! use koala_peps::Peps;
//! use rand::SeedableRng;
//!
//! let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
//! // |0000> has <H> = sum of ZZ couplings: Jz = -1 on 4 bonds.
//! let sv = StateVector::computational_zeros(2, 2);
//! assert!((sv.expectation(&h) + 4.0).abs() < 1e-12);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let peps = Peps::computational_zeros(2, 2);
//! let e = expectation_normalized(&peps, &h, ExpectationOptions::bmps_cached(8), &mut rng)
//!     .unwrap();
//! assert!((e.re - sv.expectation(&h)).abs() < 1e-8);
//! ```

#![warn(missing_docs)]
// Library code must not panic on fallible paths: failures become
// `KoalaError` results so long-running drivers can recover instead of
// aborting (see ARCHITECTURE.md, "Failure model").
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod circuit;
pub mod gates;
pub mod hamiltonian;
pub mod ite;
pub mod opt;
pub mod statevector;
pub mod vqe;

pub use circuit::{random_circuit, Circuit, CircuitOp};
pub use hamiltonian::{
    j1j2_hamiltonian, tfi_hamiltonian, trotter_gates, J1J2Params, TfiParams, TrotterGate,
};
pub use ite::{
    ite_checkpoint, ite_peps, ite_peps_from, ite_statevector, IteCheckpoint, IteFault, IteOptions,
    IteResult, UpdateKind,
};
pub use opt::{nelder_mead, spsa, OptResult};
pub use statevector::StateVector;
pub use vqe::{run_vqe, run_vqe_cancellable, Optimizer, VqeBackend, VqeOptions, VqeResult};
