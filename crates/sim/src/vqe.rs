//! Variational quantum eigensolver simulation (paper §II-D2 and §VI-D2,
//! Figure 14).
//!
//! The ansatz matches the paper's description: repeated layers consisting of
//! a parameterised `Ry(theta)` rotation on every qubit followed by CNOT gates
//! on every nearest-neighbour pair. The objective `<psi(theta)|H|psi(theta)>`
//! is evaluated by simulating the ansatz circuit either on a PEPS with a given
//! maximum bond dimension or on the exact state vector, and a derivative-free
//! classical optimizer tunes the parameters.

use crate::circuit::Circuit;
use crate::gates::{cnot, ry};
use crate::hamiltonian::nearest_neighbor_pairs;
use crate::opt::{nelder_mead, spsa, OptResult};
use crate::statevector::{Result, StateVector};
use koala_peps::expectation::{expectation_normalized, ExpectationOptions};
use koala_peps::operators::Observable;
use koala_peps::{Peps, UpdateMethod};
use rand::Rng;

/// How the ansatz state and the energy are evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VqeBackend {
    /// PEPS simulation with the given maximum bond dimension `r` and
    /// contraction bond dimension `m`.
    Peps {
        /// Maximum bond dimension of the evolved PEPS.
        bond: usize,
        /// Contraction bond dimension used for the energy evaluation.
        contraction_bond: usize,
    },
    /// Exact state-vector simulation (the reference curve of Figure 14).
    StateVector,
}

/// Which classical optimizer drives the parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Nelder–Mead simplex with the given initial step and iteration budget.
    NelderMead {
        /// Initial simplex scale.
        scale: f64,
        /// Maximum iterations.
        max_iterations: usize,
    },
    /// SPSA with the given gain parameters and iteration budget.
    Spsa {
        /// Step-size gain.
        a0: f64,
        /// Perturbation gain.
        c0: f64,
        /// Iterations.
        iterations: usize,
    },
}

/// Configuration of a VQE run.
#[derive(Debug, Clone, Copy)]
pub struct VqeOptions {
    /// Number of ansatz layers (each layer = Ry on every site + CNOT ladder).
    pub layers: usize,
    /// Simulation backend for the ansatz state.
    pub backend: VqeBackend,
    /// Classical optimizer.
    pub optimizer: Optimizer,
}

/// Result of a VQE run.
#[derive(Debug, Clone)]
pub struct VqeResult {
    /// Best-so-far energy per site after each optimizer iteration.
    pub energy_history: Vec<f64>,
    /// Best energy per site found.
    pub best_energy: f64,
    /// Optimal parameters.
    pub best_params: Vec<f64>,
    /// Number of objective evaluations.
    pub evaluations: usize,
}

/// Number of parameters of the ansatz.
pub fn num_parameters(nrows: usize, ncols: usize, layers: usize) -> usize {
    nrows * ncols * layers
}

/// Build the ansatz circuit for a parameter vector (length
/// `nrows * ncols * layers`).
pub fn ansatz_circuit(nrows: usize, ncols: usize, layers: usize, params: &[f64]) -> Circuit {
    assert_eq!(params.len(), num_parameters(nrows, ncols, layers), "wrong parameter count");
    let mut circuit = Circuit::new();
    let mut idx = 0;
    for _layer in 0..layers {
        for r in 0..nrows {
            for c in 0..ncols {
                circuit.push_one_site((r, c), ry(params[idx]));
                idx += 1;
            }
        }
        for (a, b) in nearest_neighbor_pairs(nrows, ncols) {
            circuit.push_two_site(a, b, cnot());
        }
    }
    circuit
}

/// Evaluate the VQE objective `<psi(theta)|H|psi(theta)> / <psi|psi>` per site.
pub fn energy_per_site<R: Rng + ?Sized>(
    nrows: usize,
    ncols: usize,
    hamiltonian: &Observable,
    layers: usize,
    params: &[f64],
    backend: VqeBackend,
    rng: &mut R,
) -> Result<f64> {
    let circuit = ansatz_circuit(nrows, ncols, layers, params);
    let n_sites = (nrows * ncols) as f64;
    match backend {
        VqeBackend::StateVector => {
            let mut sv = StateVector::computational_zeros(nrows, ncols);
            circuit.apply_to_statevector(&mut sv);
            Ok(sv.expectation(hamiltonian) / n_sites)
        }
        VqeBackend::Peps { bond, contraction_bond } => {
            let mut peps = Peps::computational_zeros(nrows, ncols);
            circuit.apply_to_peps(&mut peps, UpdateMethod::qr_svd(bond))?;
            let e = expectation_normalized(
                &peps,
                hamiltonian,
                ExpectationOptions::ibmps_cached(contraction_bond),
                rng,
            )?;
            Ok(e.re / n_sites)
        }
    }
}

/// Run VQE on an `nrows x ncols` lattice for the given Hamiltonian.
pub fn run_vqe<R: Rng + ?Sized>(
    nrows: usize,
    ncols: usize,
    hamiltonian: &Observable,
    options: VqeOptions,
    initial_params: Option<&[f64]>,
    rng: &mut R,
) -> Result<VqeResult> {
    run_vqe_cancellable(nrows, ncols, hamiltonian, options, initial_params, rng, None)
}

/// [`run_vqe`] with cooperative cancellation.
///
/// Once `cancel` fires, every subsequent objective evaluation short-circuits
/// to a large penalty value without touching the simulation backend, so the
/// optimizer unwinds in O(iterations) cheap steps instead of finishing its
/// full simulation budget. The best-so-far result found *before* the token
/// fired is still returned — cancellation is a scheduling event, not an
/// engine error, so callers that need to distinguish a cut-short run must
/// inspect `cancel.is_cancelled()` after the call. With `cancel = None` the
/// arithmetic (and hence the RNG stream and result) is bit-identical to
/// [`run_vqe`].
pub fn run_vqe_cancellable<R: Rng + ?Sized>(
    nrows: usize,
    ncols: usize,
    hamiltonian: &Observable,
    options: VqeOptions,
    initial_params: Option<&[f64]>,
    rng: &mut R,
    cancel: Option<&koala_exec::CancelToken>,
) -> Result<VqeResult> {
    let n_params = num_parameters(nrows, ncols, options.layers);
    let default_init: Vec<f64> = (0..n_params).map(|i| 0.1 + 0.05 * (i % 7) as f64).collect();
    let initial: Vec<f64> = match initial_params {
        Some(p) => {
            assert_eq!(p.len(), n_params, "wrong number of initial parameters");
            p.to_vec()
        }
        None => default_init,
    };

    // The objective closure needs its own RNG stream so the outer rng can be
    // reused for the optimizer (SPSA) without borrow conflicts.
    let mut eval_rng = rand::rngs::StdRng::seed_from_u64(rng.gen());
    let mut failures = 0usize;
    let mut objective = |params: &[f64]| -> f64 {
        if cancel.is_some_and(koala_exec::CancelToken::is_cancelled) {
            return f64::MAX / 1e6;
        }
        match energy_per_site(
            nrows,
            ncols,
            hamiltonian,
            options.layers,
            params,
            options.backend,
            &mut eval_rng,
        ) {
            Ok(e) if e.is_finite() => e,
            _ => {
                failures += 1;
                f64::MAX / 1e6
            }
        }
    };

    let opt_result: OptResult = match options.optimizer {
        Optimizer::NelderMead { scale, max_iterations } => {
            nelder_mead(&mut objective, &initial, scale, max_iterations, 1e-9)
        }
        Optimizer::Spsa { a0, c0, iterations } => {
            spsa(&mut objective, &initial, iterations, a0, c0, rng)
        }
    };

    Ok(VqeResult {
        energy_history: opt_result.history,
        best_energy: opt_result.best_value,
        best_params: opt_result.best_params,
        evaluations: opt_result.evaluations,
    })
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::{tfi_hamiltonian, TfiParams};
    use rand::rngs::StdRng;

    #[test]
    fn ansatz_parameter_count_and_structure() {
        let c = ansatz_circuit(2, 2, 2, &[0.1; 8]);
        // Per layer: 4 Ry + 4 CNOT; two layers.
        assert_eq!(c.len(), 16);
        assert_eq!(c.two_qubit_count(), 8);
        assert_eq!(num_parameters(3, 3, 2), 18);
    }

    #[test]
    fn statevector_and_peps_objectives_agree_for_large_bond() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let params: Vec<f64> = vec![0.3, -0.2, 0.5, 0.1];
        let sv_energy =
            energy_per_site(2, 2, &h, 1, &params, VqeBackend::StateVector, &mut rng).unwrap();
        let peps_energy = energy_per_site(
            2,
            2,
            &h,
            1,
            &params,
            VqeBackend::Peps { bond: 8, contraction_bond: 16 },
            &mut rng,
        )
        .unwrap();
        assert!(
            (sv_energy - peps_energy).abs() < 1e-5,
            "state vector {sv_energy} vs PEPS {peps_energy}"
        );
    }

    #[test]
    fn vqe_improves_over_the_initial_point_on_2x2_tfi() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let options = VqeOptions {
            layers: 1,
            backend: VqeBackend::StateVector,
            optimizer: Optimizer::NelderMead { scale: 0.4, max_iterations: 120 },
        };
        let initial = vec![0.2; 4];
        let initial_energy =
            energy_per_site(2, 2, &h, 1, &initial, VqeBackend::StateVector, &mut rng).unwrap();
        let result = run_vqe(2, 2, &h, options, Some(&initial), &mut rng).unwrap();
        assert!(result.best_energy < initial_energy - 0.5, "VQE failed to improve: {result:?}");
        // The exact ground state per site is a lower bound.
        let exact = StateVector::ground_state_energy(2, 2, &h, &mut rng).unwrap() / 4.0;
        assert!(result.best_energy >= exact - 1e-6);
        // History is monotone non-increasing (best-so-far curve).
        for w in result.energy_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn vqe_with_peps_backend_runs_and_is_bounded_below_by_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let options = VqeOptions {
            layers: 1,
            backend: VqeBackend::Peps { bond: 2, contraction_bond: 4 },
            optimizer: Optimizer::NelderMead { scale: 0.4, max_iterations: 40 },
        };
        let result = run_vqe(2, 2, &h, options, None, &mut rng).unwrap();
        let exact = StateVector::ground_state_energy(2, 2, &h, &mut rng).unwrap() / 4.0;
        assert!(result.best_energy >= exact - 1e-4);
        assert!(result.best_energy < 0.0);
        assert!(result.evaluations > 0);
    }

    #[test]
    fn spsa_optimizer_path_works() {
        let mut rng = StdRng::seed_from_u64(4);
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let options = VqeOptions {
            layers: 1,
            backend: VqeBackend::StateVector,
            optimizer: Optimizer::Spsa { a0: 0.3, c0: 0.2, iterations: 60 },
        };
        let initial = vec![0.2; 4];
        let initial_energy =
            energy_per_site(2, 2, &h, 1, &initial, VqeBackend::StateVector, &mut rng).unwrap();
        let result = run_vqe(2, 2, &h, options, Some(&initial), &mut rng).unwrap();
        assert!(result.best_energy <= initial_energy);
    }
}
