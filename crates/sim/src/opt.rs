//! Derivative-free optimizers for the VQE driver.
//!
//! The paper uses SciPy's SLSQP; per the substitution table in DESIGN.md the
//! optimizer is treated as a black box, and this module provides two
//! self-contained derivative-free methods: Nelder–Mead simplex (the default)
//! and SPSA (useful when objective evaluations are noisy).

use rand::Rng;

/// A record of one objective evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Index of the optimizer iteration this evaluation belongs to.
    pub iteration: usize,
    /// Objective value.
    pub value: f64,
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Best parameter vector found.
    pub best_params: Vec<f64>,
    /// Best objective value found.
    pub best_value: f64,
    /// Best-so-far objective value at the end of each iteration.
    pub history: Vec<f64>,
    /// Total number of objective evaluations.
    pub evaluations: usize,
}

/// Nelder–Mead simplex minimisation.
///
/// `initial` is the starting point; `scale` sets the size of the initial
/// simplex; the run stops after `max_iterations` or when the simplex collapses
/// below `tol` in both parameter and value spread.
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut objective: F,
    initial: &[f64],
    scale: f64,
    max_iterations: usize,
    tol: f64,
) -> OptResult {
    let n = initial.len();
    assert!(n > 0, "nelder_mead: empty parameter vector");
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    let mut evaluations = 0usize;
    let mut eval = |x: &[f64], evaluations: &mut usize| {
        *evaluations += 1;
        objective(x)
    };

    // Initial simplex: the start point plus one vertex per coordinate.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(initial, &mut evaluations);
    simplex.push((initial.to_vec(), f0));
    for i in 0..n {
        let mut v = initial.to_vec();
        v[i] += scale;
        let f = eval(&v, &mut evaluations);
        simplex.push((v, f));
    }

    let mut history = Vec::with_capacity(max_iterations);
    for _iter in 0..max_iterations {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        history.push(simplex[0].1);

        // Convergence: spread of values and of the simplex.
        let value_spread = simplex[n].1 - simplex[0].1;
        let param_spread = simplex
            .iter()
            .flat_map(|(v, _)| v.iter().zip(simplex[0].0.iter()).map(|(a, b)| (a - b).abs()))
            .fold(0.0f64, f64::max);
        if value_spread.abs() < tol && param_spread < tol {
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (v, _) in simplex.iter().take(n) {
            for (c, x) in centroid.iter_mut().zip(v.iter()) {
                *c += x / n as f64;
            }
        }
        let worst = simplex[n].clone();

        let reflect: Vec<f64> =
            centroid.iter().zip(worst.0.iter()).map(|(c, w)| c + alpha * (c - w)).collect();
        let f_reflect = eval(&reflect, &mut evaluations);

        if f_reflect < simplex[0].1 {
            // Try expanding further.
            let expand: Vec<f64> =
                centroid.iter().zip(worst.0.iter()).map(|(c, w)| c + gamma * (c - w)).collect();
            let f_expand = eval(&expand, &mut evaluations);
            simplex[n] =
                if f_expand < f_reflect { (expand, f_expand) } else { (reflect, f_reflect) };
        } else if f_reflect < simplex[n - 1].1 {
            simplex[n] = (reflect, f_reflect);
        } else {
            // Contract towards the centroid.
            let contract: Vec<f64> =
                centroid.iter().zip(worst.0.iter()).map(|(c, w)| c + rho * (w - c)).collect();
            let f_contract = eval(&contract, &mut evaluations);
            if f_contract < worst.1 {
                simplex[n] = (contract, f_contract);
            } else {
                // Shrink the whole simplex towards the best vertex.
                let best = simplex[0].0.clone();
                for vertex in simplex.iter_mut().skip(1) {
                    let shrunk: Vec<f64> = best
                        .iter()
                        .zip(vertex.0.iter())
                        .map(|(b, v)| b + sigma * (v - b))
                        .collect();
                    let f = eval(&shrunk, &mut evaluations);
                    *vertex = (shrunk, f);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    history.push(simplex[0].1);
    OptResult { best_params: simplex[0].0.clone(), best_value: simplex[0].1, history, evaluations }
}

/// Simultaneous Perturbation Stochastic Approximation (SPSA) minimisation.
pub fn spsa<F: FnMut(&[f64]) -> f64, R: Rng + ?Sized>(
    mut objective: F,
    initial: &[f64],
    iterations: usize,
    a0: f64,
    c0: f64,
    rng: &mut R,
) -> OptResult {
    let n = initial.len();
    let mut theta = initial.to_vec();
    let mut best_params = theta.clone();
    let mut best_value = objective(&theta);
    let mut history = Vec::with_capacity(iterations);
    let mut evaluations = 1usize;

    for k in 0..iterations {
        let ak = a0 / ((k + 1) as f64).powf(0.602);
        let ck = c0 / ((k + 1) as f64).powf(0.101);
        // Rademacher perturbation.
        let delta: Vec<f64> = (0..n).map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 }).collect();
        let plus: Vec<f64> = theta.iter().zip(&delta).map(|(t, d)| t + ck * d).collect();
        let minus: Vec<f64> = theta.iter().zip(&delta).map(|(t, d)| t - ck * d).collect();
        let f_plus = objective(&plus);
        let f_minus = objective(&minus);
        evaluations += 2;
        for i in 0..n {
            let grad = (f_plus - f_minus) / (2.0 * ck * delta[i]);
            theta[i] -= ak * grad;
        }
        let f = objective(&theta);
        evaluations += 1;
        if f < best_value {
            best_value = f;
            best_params = theta.clone();
        }
        history.push(best_value);
    }
    OptResult { best_params, best_value, history, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic(x: &[f64]) -> f64 {
        x.iter().enumerate().map(|(i, v)| (v - i as f64).powi(2)).sum()
    }

    #[test]
    fn nelder_mead_minimises_quadratic() {
        let r = nelder_mead(quadratic, &[5.0, -3.0, 2.0], 1.0, 400, 1e-10);
        assert!(r.best_value < 1e-6, "best value {}", r.best_value);
        for (i, p) in r.best_params.iter().enumerate() {
            assert!((p - i as f64).abs() < 1e-3);
        }
        // History is non-increasing.
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn nelder_mead_on_rosenbrock() {
        let rosenbrock = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = nelder_mead(rosenbrock, &[-1.2, 1.0], 0.5, 2000, 1e-12);
        assert!(r.best_value < 1e-5, "best value {}", r.best_value);
        assert!((r.best_params[0] - 1.0).abs() < 0.02);
        assert!((r.best_params[1] - 1.0).abs() < 0.04);
    }

    #[test]
    fn spsa_reduces_quadratic_objective() {
        let mut rng = StdRng::seed_from_u64(7);
        let start = vec![4.0, -4.0];
        let f_start = quadratic(&start);
        let r = spsa(quadratic, &start, 300, 0.2, 0.1, &mut rng);
        assert!(r.best_value < f_start * 0.05, "best value {}", r.best_value);
        assert!(r.evaluations > 300);
    }
}
