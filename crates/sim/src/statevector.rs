//! Exact state-vector simulator.
//!
//! Stores the full `2^n` amplitude vector of an `nrows x ncols` qubit lattice
//! (row-major site ordering, site 0 most significant — the same convention as
//! `Peps::to_dense`). Used as the "state vector" reference of Figures 13 and
//! 14 and to validate the PEPS algorithms on small lattices.

use koala_linalg::{lanczos_ground_state, HermitianOp, Matrix, C64};
use koala_peps::operators::{LocalTerm, Observable};
use koala_peps::Site;
use koala_tensor::TensorError;
use rand::Rng;

/// Result alias for the simulation layer.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Full state-vector representation of a lattice of qubits.
#[derive(Debug, Clone)]
pub struct StateVector {
    nrows: usize,
    ncols: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// |00...0> on an `nrows x ncols` lattice.
    pub fn computational_zeros(nrows: usize, ncols: usize) -> Self {
        let n = nrows * ncols;
        assert!(n <= 26, "state vector limited to 26 qubits");
        let mut amps = vec![C64::ZERO; 1 << n];
        amps[0] = C64::ONE;
        StateVector { nrows, ncols, amps }
    }

    /// Build from raw amplitudes (length must be `2^(nrows*ncols)`).
    pub fn from_amplitudes(nrows: usize, ncols: usize, amps: Vec<C64>) -> Result<Self> {
        if amps.len() != 1 << (nrows * ncols) {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "from_amplitudes: got {} amplitudes for {} qubits",
                    amps.len(),
                    nrows * ncols
                ),
            });
        }
        Ok(StateVector { nrows, ncols, amps })
    }

    /// Random normalised state.
    pub fn random<R: Rng + ?Sized>(nrows: usize, ncols: usize, rng: &mut R) -> Self {
        let n = nrows * ncols;
        let mut amps: Vec<C64> = (0..1usize << n)
            .map(|_| koala_linalg::c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let norm = amps.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        amps.iter_mut().for_each(|z| *z = z.scale(1.0 / norm));
        StateVector { nrows, ncols, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.nrows * self.ncols
    }

    /// Lattice shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Raw amplitudes in row-major site ordering (site 0 most significant).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Linear qubit index of a lattice site.
    pub fn qubit_index(&self, (r, c): Site) -> usize {
        r * self.ncols + c
    }

    /// Norm of the state.
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Normalise in place.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            let inv = 1.0 / n;
            self.amps.iter_mut().for_each(|z| *z = z.scale(inv));
        }
    }

    /// Inner product `<self|other>`.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.amps.len(), other.amps.len());
        self.amps.iter().zip(other.amps.iter()).map(|(a, b)| a.conj() * *b).sum()
    }

    /// Amplitude of a computational basis state given one bit per site
    /// (row-major order).
    pub fn amplitude(&self, bits: &[usize]) -> C64 {
        assert_eq!(bits.len(), self.num_qubits());
        let mut idx = 0usize;
        for &b in bits {
            idx = (idx << 1) | (b & 1);
        }
        self.amps[idx]
    }

    /// Apply a one-qubit gate to `site`.
    pub fn apply_one_site(&mut self, gate: &Matrix, site: Site) {
        let q = self.qubit_index(site);
        let n = self.num_qubits();
        let stride = 1usize << (n - 1 - q);
        let g = [gate[(0, 0)], gate[(0, 1)], gate[(1, 0)], gate[(1, 1)]];
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            for offset in 0..stride {
                let i0 = base + offset;
                let i1 = i0 + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = g[0] * a0 + g[1] * a1;
                self.amps[i1] = g[2] * a0 + g[3] * a1;
            }
            base += stride * 2;
        }
    }

    /// Apply a two-qubit gate to `(site_a, site_b)` with `site_a` as the most
    /// significant subsystem of the `4x4` gate.
    pub fn apply_two_site(&mut self, gate: &Matrix, site_a: Site, site_b: Site) {
        let qa = self.qubit_index(site_a);
        let qb = self.qubit_index(site_b);
        assert_ne!(qa, qb, "two-site gate requires distinct sites");
        let n = self.num_qubits();
        let sa = 1usize << (n - 1 - qa);
        let sb = 1usize << (n - 1 - qb);
        let len = self.amps.len();
        for idx in 0..len {
            // Process each basis group exactly once: when both target bits are 0.
            if idx & sa != 0 || idx & sb != 0 {
                continue;
            }
            let i00 = idx;
            let i01 = idx | sb;
            let i10 = idx | sa;
            let i11 = idx | sa | sb;
            let v = [self.amps[i00], self.amps[i01], self.amps[i10], self.amps[i11]];
            for (row, &target) in [i00, i01, i10, i11].iter().enumerate() {
                let mut acc = C64::ZERO;
                for col in 0..4 {
                    acc = acc.mul_add(gate[(row, col)], v[col]);
                }
                self.amps[target] = acc;
            }
        }
    }

    /// `H |psi>` for an observable given as a sum of local terms.
    pub fn apply_observable(&self, obs: &Observable) -> StateVector {
        let mut out = StateVector {
            nrows: self.nrows,
            ncols: self.ncols,
            amps: vec![C64::ZERO; self.amps.len()],
        };
        for term in obs.terms() {
            let mut tmp = self.clone();
            match term {
                LocalTerm::OneSite { site, matrix } => tmp.apply_one_site(matrix, *site),
                LocalTerm::TwoSite { site_a, site_b, matrix } => {
                    tmp.apply_two_site(matrix, *site_a, *site_b)
                }
            }
            for (o, t) in out.amps.iter_mut().zip(tmp.amps.iter()) {
                *o += *t;
            }
        }
        out
    }

    /// `<psi|H|psi> / <psi|psi>`.
    pub fn expectation(&self, obs: &Observable) -> f64 {
        let h_psi = self.apply_observable(obs);
        let num = self.inner(&h_psi);
        let den = self.inner(self);
        (num / den).re
    }

    /// Ground-state energy of an observable on this lattice, computed with
    /// Lanczos iteration on the implicitly applied Hamiltonian.
    pub fn ground_state_energy<R: Rng + ?Sized>(
        nrows: usize,
        ncols: usize,
        obs: &Observable,
        rng: &mut R,
    ) -> Result<f64> {
        let op = ObservableOp { nrows, ncols, obs };
        let max_krylov = 200.min(1 << (nrows * ncols));
        let gs = lanczos_ground_state(&op, max_krylov, 1e-10, rng).map_err(|e| {
            TensorError::Linalg(format!("ground_state_energy: Lanczos failed: {e}"))
        })?;
        Ok(gs.value)
    }
}

/// Hermitian-operator adapter that applies an [`Observable`] to raw state
/// vectors (used by Lanczos).
struct ObservableOp<'o> {
    nrows: usize,
    ncols: usize,
    obs: &'o Observable,
}

impl HermitianOp for ObservableOp<'_> {
    fn dim(&self) -> usize {
        1 << (self.nrows * self.ncols)
    }
    fn apply(&self, x: &[C64]) -> Vec<C64> {
        let sv = StateVector { nrows: self.nrows, ncols: self.ncols, amps: x.to_vec() };
        sv.apply_observable(self.obs).amps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::{cnot, hadamard, iswap};
    use koala_linalg::c64;
    use koala_peps::operators::{kron, pauli_x, pauli_z};
    use koala_peps::Peps;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bell_state_preparation() {
        let mut sv = StateVector::computational_zeros(1, 2);
        sv.apply_one_site(&hadamard(), (0, 0));
        sv.apply_two_site(&cnot(), (0, 0), (0, 1));
        let amp = 1.0 / 2.0f64.sqrt();
        assert!(sv.amplitude(&[0, 0]).approx_eq(c64(amp, 0.0), 1e-12));
        assert!(sv.amplitude(&[1, 1]).approx_eq(c64(amp, 0.0), 1e-12));
        assert!(sv.amplitude(&[0, 1]).approx_eq(C64::ZERO, 1e-12));
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gate_application_matches_peps_evolution() {
        // Apply the same small circuit to a PEPS (exactly) and the state vector.
        let mut rng = StdRng::seed_from_u64(1);
        let mut sv = StateVector::computational_zeros(2, 2);
        let mut peps = Peps::computational_zeros(2, 2);
        let gates: Vec<(Matrix, Site, Option<Site>)> = vec![
            (hadamard(), (0, 0), None),
            (hadamard(), (1, 1), None),
            (cnot(), (0, 0), Some((0, 1))),
            (iswap(), (0, 1), Some((1, 1))),
            (cnot(), (1, 1), Some((1, 0))),
        ];
        for (g, a, b) in &gates {
            match b {
                None => {
                    sv.apply_one_site(g, *a);
                    koala_peps::apply_one_site(&mut peps, g, *a).unwrap();
                }
                Some(b) => {
                    sv.apply_two_site(g, *a, *b);
                    koala_peps::apply_two_site(
                        &mut peps,
                        g,
                        *a,
                        *b,
                        koala_peps::UpdateMethod::qr_svd(16),
                    )
                    .unwrap();
                }
            }
        }
        let dense = peps.to_dense().unwrap();
        for (idx, amp) in sv.amplitudes().iter().enumerate() {
            let bits: Vec<usize> = (0..4).map(|q| (idx >> (3 - q)) & 1).collect();
            assert!(dense.get(&bits).approx_eq(*amp, 1e-8), "amplitude mismatch at {bits:?}");
        }
        let _ = &mut rng;
    }

    #[test]
    fn expectation_of_pauli_on_basis_states() {
        let sv = StateVector::computational_zeros(2, 2);
        assert!((sv.expectation(&Observable::z((0, 1))) - 1.0).abs() < 1e-12);
        assert!(sv.expectation(&Observable::x((1, 0))).abs() < 1e-12);
        let zz = Observable::zz((0, 0), (1, 1));
        assert!((sv.expectation(&zz) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_matches_dense_observable_matrix() {
        let mut rng = StdRng::seed_from_u64(2);
        let sv = StateVector::random(2, 2, &mut rng);
        let obs = Observable::zz((0, 0), (0, 1))
            + Observable::xx((0, 1), (1, 1))
            + 0.3 * Observable::y((1, 0));
        let got = sv.expectation(&obs);
        let h = obs.to_dense(2, 2, 2);
        let hv = h.matvec(sv.amplitudes());
        let want: C64 = sv.amplitudes().iter().zip(hv.iter()).map(|(a, b)| a.conj() * *b).sum();
        assert!((got - want.re).abs() < 1e-10);
    }

    #[test]
    fn ground_state_energy_of_single_site_field() {
        // H = -X on one site: ground energy -1.
        let mut rng = StdRng::seed_from_u64(3);
        let obs = -1.0 * Observable::x((0, 0));
        let e = StateVector::ground_state_energy(1, 1, &obs, &mut rng).unwrap();
        assert!((e + 1.0).abs() < 1e-8);
    }

    #[test]
    fn ground_state_energy_of_two_site_ising() {
        // H = -Z Z on two sites: ground energy -1 (doubly degenerate).
        let mut rng = StdRng::seed_from_u64(4);
        let obs = -1.0 * Observable::zz((0, 0), (0, 1));
        let e = StateVector::ground_state_energy(1, 2, &obs, &mut rng).unwrap();
        assert!((e + 1.0).abs() < 1e-8);
        // Cross-check against dense diagonalisation.
        let h = obs.to_dense(1, 2, 2);
        let evs = koala_linalg::eigvalsh(&h).unwrap();
        assert!((e - evs[0]).abs() < 1e-8);
    }

    #[test]
    fn invalid_amplitude_count_is_rejected() {
        assert!(StateVector::from_amplitudes(1, 2, vec![C64::ZERO; 3]).is_err());
        assert!(StateVector::from_amplitudes(1, 2, vec![C64::ZERO; 4]).is_ok());
    }

    #[test]
    fn pauli_algebra_through_gates() {
        // X then Z on the same qubit equals applying ZX (= -iY).
        let mut rng = StdRng::seed_from_u64(5);
        let mut a = StateVector::random(1, 2, &mut rng);
        let mut b = a.clone();
        a.apply_one_site(&pauli_x(), (0, 0));
        a.apply_one_site(&pauli_z(), (0, 0));
        let zx = koala_linalg::matmul(&pauli_z(), &pauli_x());
        b.apply_one_site(&zx, (0, 0));
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
        // Two-site gate built from a kron of singles acts like the singles.
        let mut c = a.clone();
        let mut d = a.clone();
        c.apply_two_site(&kron(&pauli_x(), &pauli_z()), (0, 0), (0, 1));
        d.apply_one_site(&pauli_x(), (0, 0));
        d.apply_one_site(&pauli_z(), (0, 1));
        for (x, y) in c.amplitudes().iter().zip(d.amplitudes()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }
}
