//! Standard quantum gate matrices.

use koala_linalg::{c64, expm_hermitian, Matrix, C64};
use koala_peps::operators::{kron, pauli_x, pauli_y, pauli_z};

/// Hadamard gate.
pub fn hadamard() -> Matrix {
    let s = 1.0 / 2.0f64.sqrt();
    Matrix::from_real(2, 2, &[s, s, s, -s]).unwrap_or_else(|_| unreachable!("literal 2x2 data"))
}

/// Phase gate S = diag(1, i).
pub fn s_gate() -> Matrix {
    Matrix::from_diag(&[C64::ONE, C64::I])
}

/// T gate = diag(1, e^{i pi/4}).
pub fn t_gate() -> Matrix {
    Matrix::from_diag(&[C64::ONE, C64::cis(std::f64::consts::FRAC_PI_4)])
}

/// Rotation about X: `exp(-i theta X / 2)`.
pub fn rx(theta: f64) -> Matrix {
    expm_hermitian(&pauli_x(), c64(0.0, -theta / 2.0))
        .unwrap_or_else(|e| unreachable!("exponential of a literal Hermitian gate: {e}"))
}

/// Rotation about Y: `exp(-i theta Y / 2)`.
pub fn ry(theta: f64) -> Matrix {
    expm_hermitian(&pauli_y(), c64(0.0, -theta / 2.0))
        .unwrap_or_else(|e| unreachable!("exponential of a literal Hermitian gate: {e}"))
}

/// Rotation about Z: `exp(-i theta Z / 2)`.
pub fn rz(theta: f64) -> Matrix {
    expm_hermitian(&pauli_z(), c64(0.0, -theta / 2.0))
        .unwrap_or_else(|e| unreachable!("exponential of a literal Hermitian gate: {e}"))
}

/// Square root of X (up to global phase), one of the RQC single-qubit gates.
pub fn sqrt_x() -> Matrix {
    let h = pauli_x();
    expm_hermitian(&h, c64(0.0, -std::f64::consts::FRAC_PI_4))
        .unwrap_or_else(|e| unreachable!("exponential of a literal Hermitian gate: {e}"))
        .scale(C64::cis(std::f64::consts::FRAC_PI_4))
}

/// Square root of Y (up to global phase).
pub fn sqrt_y() -> Matrix {
    let h = pauli_y();
    expm_hermitian(&h, c64(0.0, -std::f64::consts::FRAC_PI_4))
        .unwrap_or_else(|e| unreachable!("exponential of a literal Hermitian gate: {e}"))
        .scale(C64::cis(std::f64::consts::FRAC_PI_4))
}

/// Square root of W where `W = (X + Y)/sqrt(2)` (the third RQC single-qubit gate).
pub fn sqrt_w() -> Matrix {
    let w = (&pauli_x() + &pauli_y()).scale(c64(1.0 / 2.0f64.sqrt(), 0.0));
    expm_hermitian(&w, c64(0.0, -std::f64::consts::FRAC_PI_4))
        .unwrap_or_else(|e| unreachable!("exponential of a literal Hermitian gate: {e}"))
        .scale(C64::cis(std::f64::consts::FRAC_PI_4))
}

/// Controlled-NOT with the first qubit as control.
pub fn cnot() -> Matrix {
    Matrix::from_real(
        4,
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0, //
            0.0, 0.0, 1.0, 0.0,
        ],
    )
    .unwrap_or_else(|_| unreachable!("literal 4x4 data"))
}

/// Controlled-Z.
pub fn cz() -> Matrix {
    Matrix::from_diag_real(&[1.0, 1.0, 1.0, -1.0])
}

/// iSWAP gate: swaps |01> and |10> with a phase of i.
pub fn iswap() -> Matrix {
    let mut m = Matrix::zeros(4, 4);
    m[(0, 0)] = C64::ONE;
    m[(3, 3)] = C64::ONE;
    m[(1, 2)] = C64::I;
    m[(2, 1)] = C64::I;
    m
}

/// Two-qubit ZZ interaction gate `exp(-i theta Z Z)`.
pub fn zz_rotation(theta: f64) -> Matrix {
    expm_hermitian(&kron(&pauli_z(), &pauli_z()), c64(0.0, -theta))
        .unwrap_or_else(|e| unreachable!("exponential of a literal Hermitian gate: {e}"))
}

/// Check unitarity of a gate (testing helper exported for downstream crates).
pub fn is_unitary(gate: &Matrix, tol: f64) -> bool {
    koala_linalg::matmul_adj_a(gate, gate).approx_eq(&Matrix::identity(gate.ncols()), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use koala_linalg::matmul;
    use rand::SeedableRng;

    #[test]
    fn all_gates_are_unitary() {
        for g in [
            hadamard(),
            s_gate(),
            t_gate(),
            rx(0.7),
            ry(1.3),
            rz(-0.4),
            sqrt_x(),
            sqrt_y(),
            sqrt_w(),
            cnot(),
            cz(),
            iswap(),
            zz_rotation(0.3),
        ] {
            assert!(is_unitary(&g, 1e-10));
        }
    }

    #[test]
    fn sqrt_gates_square_to_their_pauli() {
        assert!(matmul(&sqrt_x(), &sqrt_x()).approx_eq(&pauli_x(), 1e-10));
        assert!(matmul(&sqrt_y(), &sqrt_y()).approx_eq(&pauli_y(), 1e-10));
        let w = (&pauli_x() + &pauli_y()).scale(c64(1.0 / 2.0f64.sqrt(), 0.0));
        assert!(matmul(&sqrt_w(), &sqrt_w()).approx_eq(&w, 1e-10));
    }

    #[test]
    fn hadamard_squares_to_identity() {
        assert!(matmul(&hadamard(), &hadamard()).approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn complex_phase_gates_never_carry_the_realness_hint() {
        // A VQE RZ layer is the canonical way a complex phase enters an
        // otherwise real network: diag(e^{i theta/2}, e^{-i theta/2}).
        let rz_gate = rz(0.4);
        assert!(!rz_gate.is_real());
        assert!(rz_gate.data().iter().any(|z| z.im != 0.0));
        for g in [s_gate(), t_gate(), rx(0.7), iswap(), zz_rotation(0.3), sqrt_x()] {
            assert!(!g.is_real(), "complex gate falsely retained the realness hint");
        }
        // ...and applying one to a hinted-real state drops the hint on the
        // result, so no later contraction wrongly uses the real kernel.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let state = Matrix::random_real(2, 3, &mut rng);
        assert!(state.is_real());
        let rotated = matmul(&rz_gate, &state);
        assert!(!rotated.is_real());
        assert!(rotated.data().iter().any(|z| z.im != 0.0));
        // Purely real gates keep the hint through application.
        assert!(cnot().is_real() && cz().is_real() && hadamard().is_real());
        assert!(matmul(&hadamard(), &state).is_real());
    }

    #[test]
    fn cnot_flips_target_when_control_set() {
        let g = cnot();
        assert!(g[(3, 2)].approx_eq(C64::ONE, 1e-14));
        assert!(g[(2, 3)].approx_eq(C64::ONE, 1e-14));
        assert!(g[(1, 1)].approx_eq(C64::ONE, 1e-14));
    }

    #[test]
    fn iswap_phases() {
        let g = iswap();
        assert!(g[(1, 2)].approx_eq(C64::I, 1e-14));
        assert!(g[(2, 1)].approx_eq(C64::I, 1e-14));
        assert!(g[(1, 1)].approx_eq(C64::ZERO, 1e-14));
    }

    #[test]
    fn rotation_composition() {
        let a = ry(0.3);
        let b = ry(0.5);
        assert!(matmul(&a, &b).approx_eq(&ry(0.8), 1e-10));
        assert!(ry(0.0).approx_eq(&Matrix::identity(2), 1e-12));
    }
}
