//! Quantum circuits on a 2D qubit lattice, and the random-quantum-circuit
//! (RQC) generator used by the accuracy benchmark of Figure 10.

use crate::gates::{iswap, sqrt_w, sqrt_x, sqrt_y};
use crate::statevector::{Result, StateVector};
use koala_linalg::Matrix;
use koala_peps::{apply_one_site, apply_two_site, Peps, Site, UpdateMethod};
use rand::Rng;

/// One gate of a circuit.
#[derive(Debug, Clone)]
pub enum CircuitOp {
    /// A single-qubit gate.
    OneSite {
        /// Target site.
        site: Site,
        /// 2x2 unitary.
        matrix: Matrix,
    },
    /// A two-qubit gate on neighbouring sites.
    TwoSite {
        /// First (most significant) site.
        site_a: Site,
        /// Second site.
        site_b: Site,
        /// 4x4 unitary.
        matrix: Matrix,
    },
}

/// A quantum circuit on an `nrows x ncols` lattice.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    ops: Vec<CircuitOp>,
}

impl Circuit {
    /// Empty circuit.
    pub fn new() -> Self {
        Circuit { ops: Vec::new() }
    }

    /// Gates in application order.
    pub fn ops(&self) -> &[CircuitOp] {
        &self.ops
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of two-qubit gates (the entangling count that controls how fast
    /// the PEPS bond dimension grows).
    pub fn two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, CircuitOp::TwoSite { .. })).count()
    }

    /// Append a single-qubit gate.
    pub fn push_one_site(&mut self, site: Site, matrix: Matrix) -> &mut Self {
        self.ops.push(CircuitOp::OneSite { site, matrix });
        self
    }

    /// Append a two-qubit gate on neighbouring sites.
    pub fn push_two_site(&mut self, site_a: Site, site_b: Site, matrix: Matrix) -> &mut Self {
        self.ops.push(CircuitOp::TwoSite { site_a, site_b, matrix });
        self
    }

    /// Apply the circuit to a PEPS with the given two-site update method
    /// (pass a large bond for exact evolution). Returns the accumulated
    /// truncation error.
    pub fn apply_to_peps(&self, peps: &mut Peps, method: UpdateMethod) -> Result<f64> {
        let mut err_sq = 0.0;
        for op in &self.ops {
            match op {
                CircuitOp::OneSite { site, matrix } => apply_one_site(peps, matrix, *site)?,
                CircuitOp::TwoSite { site_a, site_b, matrix } => {
                    let e = apply_two_site(peps, matrix, *site_a, *site_b, method)?;
                    err_sq += e * e;
                }
            }
        }
        Ok(err_sq.sqrt())
    }

    /// Apply the circuit to a state vector (always exact).
    pub fn apply_to_statevector(&self, sv: &mut StateVector) {
        for op in &self.ops {
            match op {
                CircuitOp::OneSite { site, matrix } => sv.apply_one_site(matrix, *site),
                CircuitOp::TwoSite { site_a, site_b, matrix } => {
                    sv.apply_two_site(matrix, *site_a, *site_b)
                }
            }
        }
    }
}

/// Random quantum circuit following the construction of the paper's RQC
/// benchmark (§VI-B, after its reference \[54\], the Google quantum-supremacy
/// circuits): every layer applies a random single-qubit
/// gate from {sqrt(X), sqrt(Y), sqrt(W)} to every site, and every
/// `entangle_every`-th layer additionally applies iSWAP gates to all pairs of
/// neighbouring sites (which multiplies the PEPS bond dimension by 4).
pub fn random_circuit<R: Rng + ?Sized>(
    nrows: usize,
    ncols: usize,
    layers: usize,
    entangle_every: usize,
    rng: &mut R,
) -> Circuit {
    let singles = [sqrt_x(), sqrt_y(), sqrt_w()];
    let mut circuit = Circuit::new();
    for layer in 1..=layers {
        for r in 0..nrows {
            for c in 0..ncols {
                let g = singles[rng.gen_range(0..singles.len())].clone();
                circuit.push_one_site((r, c), g);
            }
        }
        if entangle_every > 0 && layer % entangle_every == 0 {
            for (a, b) in crate::hamiltonian::nearest_neighbor_pairs(nrows, ncols) {
                circuit.push_two_site(a, b, iswap());
            }
        }
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::{cnot, hadamard};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn circuit_construction_and_counts() {
        let mut c = Circuit::new();
        assert!(c.is_empty());
        c.push_one_site((0, 0), hadamard());
        c.push_two_site((0, 0), (0, 1), cnot());
        assert_eq!(c.len(), 2);
        assert_eq!(c.two_qubit_count(), 1);
    }

    #[test]
    fn rqc_generator_layer_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let circuit = random_circuit(3, 3, 8, 4, &mut rng);
        // 8 layers of 9 single-qubit gates + 2 entangling layers of 12 iSWAPs.
        assert_eq!(circuit.len(), 8 * 9 + 2 * 12);
        assert_eq!(circuit.two_qubit_count(), 24);
        // No entangling layers when entangle_every is 0.
        let c2 = random_circuit(2, 2, 4, 0, &mut rng);
        assert_eq!(c2.two_qubit_count(), 0);
    }

    #[test]
    fn peps_and_statevector_agree_on_rqc() {
        let mut rng = StdRng::seed_from_u64(2);
        let circuit = random_circuit(2, 2, 4, 2, &mut rng);

        let mut sv = StateVector::computational_zeros(2, 2);
        circuit.apply_to_statevector(&mut sv);

        let mut peps = Peps::computational_zeros(2, 2);
        let err = circuit.apply_to_peps(&mut peps, UpdateMethod::qr_svd(64)).unwrap();
        assert!(err < 1e-8, "exact evolution should not truncate");

        let dense = peps.to_dense().unwrap();
        for (idx, amp) in sv.amplitudes().iter().enumerate() {
            let bits: Vec<usize> = (0..4).map(|q| (idx >> (3 - q)) & 1).collect();
            assert!(dense.get(&bits).approx_eq(*amp, 1e-7));
        }
        assert!((sv.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn truncated_evolution_reports_error_on_entangling_circuits() {
        let mut rng = StdRng::seed_from_u64(3);
        let circuit = random_circuit(2, 3, 8, 2, &mut rng);
        let mut peps = Peps::computational_zeros(2, 3);
        let err = circuit.apply_to_peps(&mut peps, UpdateMethod::qr_svd(2)).unwrap();
        assert!(err > 1e-6, "bond dimension 2 cannot hold 4 entangling layers");
        assert!(peps.max_bond() <= 2);
    }
}
