//! Lattice Hamiltonians used in the paper's application studies (§VI-D):
//! the spin-1/2 J1-J2 Heisenberg model (Equation 7) and the transverse-field
//! Ising model (Equation 8), together with their Trotterised imaginary- or
//! real-time evolution gates.

use koala_linalg::{c64, expm_hermitian, Matrix, C64};
use koala_peps::operators::{kron, pauli_x, pauli_y, pauli_z, Observable};
use koala_peps::Site;

/// Coupling constants of the J1-J2 Heisenberg model (Equation 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct J1J2Params {
    /// Nearest-neighbour couplings `(Jx1, Jy1, Jz1)`.
    pub j1: [f64; 3],
    /// Diagonal (next-nearest-neighbour) couplings `(Jx2, Jy2, Jz2)`.
    pub j2: [f64; 3],
    /// Magnetic field `(hx, hy, hz)`.
    pub h: [f64; 3],
}

impl J1J2Params {
    /// The parameter set used in Figure 13:
    /// `J1 = 1.0`, `J2 = 0.5`, `h = 0.2` on every axis.
    pub fn paper_figure13() -> Self {
        J1J2Params { j1: [1.0; 3], j2: [0.5; 3], h: [0.2; 3] }
    }
}

/// Parameters of the transverse-field Ising model (Equation 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfiParams {
    /// ZZ coupling `Jz`.
    pub jz: f64,
    /// Transverse field `hx`.
    pub hx: f64,
}

impl TfiParams {
    /// The ferromagnetic parameter set of Figure 14: `Jz = -1`, `hx = -3.5`.
    pub fn paper_figure14() -> Self {
        TfiParams { jz: -1.0, hx: -3.5 }
    }
}

/// All nearest-neighbour pairs of an `nrows x ncols` lattice.
pub fn nearest_neighbor_pairs(nrows: usize, ncols: usize) -> Vec<(Site, Site)> {
    let mut pairs = Vec::new();
    for r in 0..nrows {
        for c in 0..ncols {
            if c + 1 < ncols {
                pairs.push(((r, c), (r, c + 1)));
            }
            if r + 1 < nrows {
                pairs.push(((r, c), (r + 1, c)));
            }
        }
    }
    pairs
}

/// All diagonally adjacent pairs of an `nrows x ncols` lattice (both
/// diagonals of every plaquette).
pub fn diagonal_pairs(nrows: usize, ncols: usize) -> Vec<(Site, Site)> {
    let mut pairs = Vec::new();
    for r in 0..nrows.saturating_sub(1) {
        for c in 0..ncols {
            if c + 1 < ncols {
                pairs.push(((r, c), (r + 1, c + 1)));
            }
            if c > 0 {
                pairs.push(((r, c), (r + 1, c - 1)));
            }
        }
    }
    pairs
}

/// The two-site coupling matrix `Jx X.X + Jy Y.Y + Jz Z.Z`.
///
/// `Y (x) Y` is a real matrix (the two factors of `i` cancel) even though
/// `Y` itself is not, so hint propagation alone would conservatively label
/// the sum complex; a one-time O(d^2) scan recovers the realness hint for
/// this 4x4 matrix, which then flows into the Trotter gates.
pub fn heisenberg_coupling(j: [f64; 3]) -> Matrix {
    let mut m = kron(&pauli_x(), &pauli_x()).scale(c64(j[0], 0.0));
    m += &kron(&pauli_y(), &pauli_y()).scale(c64(j[1], 0.0));
    m += &kron(&pauli_z(), &pauli_z()).scale(c64(j[2], 0.0));
    m.mark_real_if_exact();
    m
}

/// The single-site field matrix `hx X + hy Y + hz Z` (real iff `hy == 0`,
/// recovered by a scan as in [`heisenberg_coupling`]).
pub fn field_term(h: [f64; 3]) -> Matrix {
    let mut m = pauli_x().scale(c64(h[0], 0.0));
    m += &pauli_y().scale(c64(h[1], 0.0));
    m += &pauli_z().scale(c64(h[2], 0.0));
    m.mark_real_if_exact();
    m
}

/// The J1-J2 Heisenberg Hamiltonian (Equation 7) as an [`Observable`].
pub fn j1j2_hamiltonian(nrows: usize, ncols: usize, params: J1J2Params) -> Observable {
    let mut obs = Observable::zero();
    let nn = heisenberg_coupling(params.j1);
    for (a, b) in nearest_neighbor_pairs(nrows, ncols) {
        obs.add_two_site(a, b, nn.clone());
    }
    let nnn = heisenberg_coupling(params.j2);
    for (a, b) in diagonal_pairs(nrows, ncols) {
        obs.add_two_site(a, b, nnn.clone());
    }
    let field = field_term(params.h);
    if field.norm_max() > 0.0 {
        for r in 0..nrows {
            for c in 0..ncols {
                obs.add_one_site((r, c), field.clone());
            }
        }
    }
    obs
}

/// The transverse-field Ising Hamiltonian (Equation 8) as an [`Observable`].
pub fn tfi_hamiltonian(nrows: usize, ncols: usize, params: TfiParams) -> Observable {
    let mut obs = Observable::zero();
    let zz = kron(&pauli_z(), &pauli_z()).scale(c64(params.jz, 0.0));
    for (a, b) in nearest_neighbor_pairs(nrows, ncols) {
        obs.add_two_site(a, b, zz.clone());
    }
    let x = pauli_x().scale(c64(params.hx, 0.0));
    for r in 0..nrows {
        for c in 0..ncols {
            obs.add_one_site((r, c), x.clone());
        }
    }
    obs
}

/// One Trotter gate of a Hamiltonian term: the (generally non-unitary)
/// operator `exp(factor * H_term)` together with the sites it acts on.
#[derive(Debug, Clone)]
pub struct TrotterGate {
    /// Sites the gate acts on (one or two).
    pub sites: Vec<Site>,
    /// The exponentiated local term.
    pub matrix: Matrix,
}

/// First-order Trotter-Suzuki decomposition `prod_j exp(factor * H_j)` of an
/// observable (paper §II-D1). Passing `factor = -tau` gives one imaginary-time
/// evolution step; `factor = -i * t` gives real-time evolution.
///
/// Realness flows through structurally: for a real Hamiltonian term (every
/// TFI term, every Heisenberg coupling) and a *real* factor, `expm_hermitian`
/// marks the gate matrix real, so imaginary-time-evolution gates enter the
/// tensor network on `koala-linalg`'s real GEMM fast path. An imaginary
/// factor (real-time evolution) produces genuinely complex gates and no
/// hint — the contraction layer falls back to the split-complex kernel.
pub fn trotter_gates(
    obs: &Observable,
    factor: C64,
) -> crate::statevector::Result<Vec<TrotterGate>> {
    obs.terms()
        .iter()
        .map(|term| {
            Ok(match term {
                koala_peps::LocalTerm::OneSite { site, matrix } => TrotterGate {
                    sites: vec![*site],
                    matrix: expm_hermitian(matrix, factor).map_err(|e| {
                        koala_tensor::TensorError::Linalg(format!(
                            "trotter_gates: one-site term at {site:?}: {e}"
                        ))
                    })?,
                },
                koala_peps::LocalTerm::TwoSite { site_a, site_b, matrix } => TrotterGate {
                    sites: vec![*site_a, *site_b],
                    matrix: expm_hermitian(matrix, factor).map_err(|e| {
                        koala_tensor::TensorError::Linalg(format!(
                            "trotter_gates: two-site term at {site_a:?}-{site_b:?}: {e}"
                        ))
                    })?,
                },
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use koala_linalg::eigvalsh;

    #[test]
    fn pair_enumeration_counts() {
        assert_eq!(nearest_neighbor_pairs(3, 3).len(), 12);
        assert_eq!(nearest_neighbor_pairs(1, 4).len(), 3);
        assert_eq!(diagonal_pairs(3, 3).len(), 8);
        assert_eq!(diagonal_pairs(2, 2).len(), 2);
        assert_eq!(diagonal_pairs(1, 5).len(), 0);
    }

    #[test]
    fn tfi_term_count() {
        let h = tfi_hamiltonian(3, 3, TfiParams::paper_figure14());
        // 12 bonds + 9 field terms.
        assert_eq!(h.len(), 21);
    }

    #[test]
    fn j1j2_term_count() {
        let h = j1j2_hamiltonian(4, 4, J1J2Params::paper_figure13());
        // 24 nearest-neighbour + 18 diagonal + 16 field terms.
        assert_eq!(h.len(), 24 + 18 + 16);
        // Without a field the one-site terms are dropped.
        let h0 = j1j2_hamiltonian(2, 2, J1J2Params { j1: [1.0; 3], j2: [0.0; 3], h: [0.0; 3] });
        assert_eq!(h0.len(), 4 + 2);
    }

    #[test]
    fn tfi_1x2_ground_energy_matches_closed_form() {
        // H = Jz Z Z + hx (X1 + X2) with Jz=-1, hx=-3.5.
        let params = TfiParams::paper_figure14();
        let h = tfi_hamiltonian(1, 2, params).to_dense(1, 2, 2);
        let e = eigvalsh(&h).unwrap()[0];
        // Closed form for two sites: ground state of [[-1, h, h, 0], ...]
        // verified against direct diagonalisation of the 4x4 matrix; just
        // check Hermiticity and that the energy is below the product-state value.
        assert!(e < -2.0 * 3.5);
    }

    #[test]
    fn heisenberg_coupling_is_hermitian() {
        let m = heisenberg_coupling([1.0, 0.7, -0.3]);
        assert!(m.is_hermitian(1e-12));
        let f = field_term([0.2, 0.1, -0.4]);
        assert!(f.is_hermitian(1e-12));
    }

    #[test]
    fn trotter_gates_shapes_and_unitarity() {
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let imag = trotter_gates(&h, c64(-0.05, 0.0)).unwrap();
        assert_eq!(imag.len(), h.len());
        for g in &imag {
            assert!(g.matrix.is_hermitian(1e-10), "imaginary-time gates are Hermitian PSD");
        }
        let real = trotter_gates(&h, c64(0.0, -0.05)).unwrap();
        for g in &real {
            assert!(crate::gates::is_unitary(&g.matrix, 1e-10), "real-time gates are unitary");
        }
    }

    #[test]
    fn hamiltonian_terms_carry_the_realness_hint() {
        // Every TFI term is real by construction (Z (x) Z and X).
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        for term in h.terms() {
            let m = match term {
                koala_peps::LocalTerm::OneSite { matrix, .. } => matrix,
                koala_peps::LocalTerm::TwoSite { matrix, .. } => matrix,
            };
            assert!(m.is_real(), "TFI term lost the realness hint");
        }
        // Y (x) Y is real as a matrix; the scan in heisenberg_coupling
        // recovers the hint that naive propagation would drop.
        assert!(heisenberg_coupling([1.0, 0.7, -0.3]).is_real());
        // A y-field genuinely introduces imaginary entries: no hint.
        assert!(!field_term([0.1, 0.2, 0.0]).is_real());
        assert!(field_term([0.1, 0.0, -0.4]).is_real());
    }

    #[test]
    fn imaginary_time_gates_are_real_and_real_time_gates_are_not() {
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        // factor = -tau (imaginary time evolution): gates are real matrices
        // and carry the hint into the evolution.
        for g in trotter_gates(&h, c64(-0.05, 0.0)).unwrap() {
            assert!(g.matrix.is_real(), "ITE gate lost the realness hint");
            assert!(g.matrix.data().iter().all(|z| z.im == 0.0));
        }
        // factor = -i t (real time evolution): gates pick up complex phases
        // and the hint must not be retained.
        let any_complex = trotter_gates(&h, c64(0.0, -0.05))
            .unwrap()
            .iter()
            .any(|g| g.matrix.data().iter().any(|z| z.im != 0.0));
        assert!(any_complex, "real-time TFI gates should be genuinely complex");
        for g in trotter_gates(&h, c64(0.0, -0.05)).unwrap() {
            assert!(!g.matrix.is_real(), "complex gate falsely retained the realness hint");
        }
    }
}
