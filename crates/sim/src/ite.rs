//! Imaginary time evolution (ITE) via TEBD (paper §II-D1, Figure 13).
//!
//! Repeatedly applies the Trotterised operator `prod_j exp(-tau H_j)` to the
//! state and records the Rayleigh quotient after each step. Both a PEPS
//! implementation (truncated evolution + approximate contraction) and an
//! exact state-vector implementation (the reference curves of Figure 13) are
//! provided.
//!
//! ITE is an all-real workload for real Hamiltonians (TFI, Heisenberg): the
//! Trotter gates `exp(-tau H_j)` are real matrices and the initial product
//! states are real, so both carry the structural realness hint (see
//! [`crate::hamiltonian::trotter_gates`]) and the gate-application einsums
//! run on the real-valued GEMM fast path. The factorizations behind every
//! bond truncation (QR / Jacobi SVD / Gram QR / eigh / randomized SVD) run
//! realness-preserving inner loops on hinted inputs and mark their factors
//! real, so a full ITE sweep — evolution, renormalization, and IBMPS energy
//! measurement — executes *zero* complex MACs end to end (pinned by the
//! `real_path` integration test at the workspace root). Correctness never
//! depends on the hint, only the flop count does.

use crate::hamiltonian::{trotter_gates, TrotterGate};
use crate::statevector::{Result, StateVector};
use koala_error::recovery;
use koala_linalg::c64;
use koala_peps::expectation::{expectation_normalized, ExpectationOptions};
use koala_peps::operators::Observable;
use koala_peps::{apply_one_site, apply_two_site_any, Peps, UpdateMethod};
use koala_tensor::TensorError;
use rand::Rng;

/// Configuration of a PEPS imaginary-time-evolution run.
#[derive(Debug, Clone, Copy)]
pub struct IteOptions {
    /// Trotter step size `tau`.
    pub tau: f64,
    /// Number of ITE steps.
    pub steps: usize,
    /// Evolution bond dimension `r` (truncation of the PEPS bonds).
    pub evolution_bond: usize,
    /// Contraction bond dimension `m` used when measuring the energy.
    pub contraction_bond: usize,
    /// Two-site update flavour.
    pub update: UpdateKind,
    /// Measure the energy every `measure_every` steps (1 = every step).
    pub measure_every: usize,
    /// Save an in-memory recovery checkpoint (PEPS + RNG + step index) every
    /// this many completed steps. `0` disables checkpointing; a failed step
    /// then restarts from the initial state.
    pub checkpoint_every: usize,
    /// How many times a failed step may be retried from the last checkpoint
    /// before the run gives up and reports the error.
    pub max_restarts: usize,
    /// Deterministic fault injection: corrupt the evolving PEPS once, right
    /// after the Trotter layer of the given step (testing/chaos hook). The
    /// per-step finite guard detects the corruption and the driver restores
    /// from the last checkpoint; because the fault is transient (it fires
    /// exactly once), the deterministic RNG replay reproduces the fault-free
    /// trajectory bit for bit.
    pub fault: Option<IteFault>,
}

/// A seeded, once-firing corruption of the evolving PEPS (see
/// [`IteOptions::fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IteFault {
    /// Step (1-based) after whose Trotter layer the corruption lands.
    pub step: usize,
    /// Seed selecting which site/element is corrupted.
    pub seed: u64,
}

/// Which two-site update algorithm drives the evolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Simple update (full contraction + SVD).
    Direct,
    /// QR-SVD update (Algorithm 1).
    QrSvd,
    /// QR-SVD update with Gram-matrix orthogonalization.
    GramQrSvd,
}

impl IteOptions {
    /// Reasonable defaults mirroring the Figure 13 study.
    pub fn new(tau: f64, steps: usize, evolution_bond: usize, contraction_bond: usize) -> Self {
        IteOptions {
            tau,
            steps,
            evolution_bond,
            contraction_bond,
            update: UpdateKind::QrSvd,
            measure_every: 1,
            checkpoint_every: 0,
            max_restarts: 3,
            fault: None,
        }
    }

    fn update_method(&self) -> UpdateMethod {
        match self.update {
            UpdateKind::Direct => UpdateMethod::direct(self.evolution_bond),
            UpdateKind::QrSvd => UpdateMethod::qr_svd(self.evolution_bond),
            UpdateKind::GramQrSvd => UpdateMethod::gram_qr_svd(self.evolution_bond),
        }
    }
}

/// Result of an ITE run.
#[derive(Debug, Clone)]
pub struct IteResult {
    /// Energy per site after each measured step (step index, energy).
    pub energies: Vec<(usize, f64)>,
    /// The final evolved PEPS.
    pub final_state: Peps,
}

impl IteResult {
    /// The last measured energy per site.
    pub fn final_energy(&self) -> f64 {
        self.energies.last().map(|&(_, e)| e).unwrap_or(f64::NAN)
    }
}

/// A restartable snapshot of an in-flight ITE run: the evolved PEPS, the
/// measurement history, and — crucially — the RNG state, so replaying the
/// steps after the snapshot consumes the same random numbers as an
/// uninterrupted run and reproduces it exactly.
#[derive(Debug, Clone)]
pub struct IteCheckpoint<R: Rng + Clone> {
    /// Number of completed ITE steps at snapshot time.
    step: usize,
    peps: Peps,
    rng: R,
    energies: Vec<(usize, f64)>,
}

impl<R: Rng + Clone> IteCheckpoint<R> {
    /// Number of completed ITE steps at snapshot time.
    pub fn step(&self) -> usize {
        self.step
    }

    /// The evolved PEPS at snapshot time.
    pub fn peps(&self) -> &Peps {
        &self.peps
    }
}

/// Capture a step-0 checkpoint of `initial`, from which [`ite_peps_from`]
/// starts (or later resumes) a run.
pub fn ite_checkpoint<R: Rng + Clone>(initial: &Peps, rng: &R) -> IteCheckpoint<R> {
    IteCheckpoint { step: 0, peps: initial.clone(), rng: rng.clone(), energies: Vec::new() }
}

/// Run imaginary time evolution of `hamiltonian` on a PEPS starting from
/// `initial`, measuring the energy per site with IBMPS contraction.
///
/// The run is fault tolerant: with `options.checkpoint_every > 0` the driver
/// snapshots (PEPS, RNG, history) periodically, guards every step with a
/// finiteness check, and on failure rolls back to the last checkpoint and
/// replays — up to `options.max_restarts` times — before reporting the error.
/// Recovery actions are counted in [`koala_error::recovery`].
pub fn ite_peps<R: Rng + Clone>(
    initial: &Peps,
    hamiltonian: &Observable,
    options: IteOptions,
    rng: &mut R,
) -> Result<IteResult> {
    let (result, end) = ite_peps_from(ite_checkpoint(initial, rng), hamiltonian, options)?;
    *rng = end.rng; // keep the caller's stream in sync with the evolution
    Ok(result)
}

/// Run (or resume) imaginary time evolution from a checkpoint, executing
/// steps `checkpoint.step() + 1 ..= options.steps`. Returns the result over
/// the *whole* history (including steps measured before the checkpoint) and
/// the final checkpoint, which a later call can resume from with a larger
/// `options.steps`.
pub fn ite_peps_from<R: Rng + Clone>(
    checkpoint: IteCheckpoint<R>,
    hamiltonian: &Observable,
    options: IteOptions,
) -> Result<(IteResult, IteCheckpoint<R>)> {
    let gates = trotter_gates(hamiltonian, c64(-options.tau, 0.0))?;
    let n_sites = checkpoint.peps.num_sites() as f64;
    let expect_opts = ExpectationOptions::ibmps_cached(options.contraction_bond);

    let mut state = checkpoint;
    let mut last_good = state.clone();
    let mut restarts = 0usize;
    // A fired fault stays fired across rollbacks: the injected corruption is
    // transient, so the replayed steps run clean and the recovered trajectory
    // matches the fault-free one exactly.
    let mut fault_fired = false;

    let mut step = state.step + 1;
    while step <= options.steps {
        match ite_step(
            &mut state,
            step,
            &gates,
            hamiltonian,
            expect_opts,
            n_sites,
            &options,
            &mut fault_fired,
        ) {
            Ok(()) => {
                state.step = step;
                if options.checkpoint_every > 0 && step.is_multiple_of(options.checkpoint_every) {
                    last_good = state.clone();
                    recovery::note_checkpoint_saved();
                }
                step += 1;
            }
            Err(e) => {
                restarts += 1;
                if restarts > options.max_restarts {
                    return Err(TensorError::Linalg(format!(
                        "ite_peps: step {step} still failing after {} restore attempts: {e}",
                        options.max_restarts
                    )));
                }
                recovery::note_checkpoint_restored();
                state = last_good.clone();
                step = state.step + 1;
            }
        }
    }
    let result = IteResult { energies: state.energies.clone(), final_state: state.peps.clone() };
    Ok((result, state))
}

/// One guarded ITE step: Trotter layer, (optional) fault injection, finite
/// guard, renormalization, and the scheduled energy measurement.
#[allow(clippy::too_many_arguments)]
fn ite_step<R: Rng + Clone>(
    state: &mut IteCheckpoint<R>,
    step: usize,
    gates: &[TrotterGate],
    hamiltonian: &Observable,
    expect_opts: ExpectationOptions,
    n_sites: f64,
    options: &IteOptions,
    fault_fired: &mut bool,
) -> Result<()> {
    apply_trotter_layer(&mut state.peps, gates, options.update_method())?;
    if let Some(fault) = options.fault {
        if fault.step == step && !*fault_fired {
            *fault_fired = true;
            corrupt_peps(&mut state.peps, fault.seed);
            recovery::note_fault_injected();
        }
    }
    validate_peps_finite(&state.peps, step)?;
    renormalize(&mut state.peps, options.contraction_bond, &mut state.rng)?;
    if step.is_multiple_of(options.measure_every) || step == options.steps {
        let e = expectation_normalized(&state.peps, hamiltonian, expect_opts, &mut state.rng)?;
        if !e.re.is_finite() {
            recovery::note_nonfinite_detection();
            return Err(TensorError::Linalg(format!("ite step {step}: non-finite energy {e}")));
        }
        state.energies.push((step, e.re / n_sites));
    }
    Ok(())
}

/// The per-step finite guard: reject any NaN/Inf in the evolved tensors.
fn validate_peps_finite(peps: &Peps, step: usize) -> Result<()> {
    for r in 0..peps.nrows() {
        for c in 0..peps.ncols() {
            let bad =
                peps.tensor((r, c)).data().iter().any(|z| !z.re.is_finite() || !z.im.is_finite());
            if bad {
                recovery::note_nonfinite_detection();
                return Err(TensorError::Linalg(format!(
                    "ite step {step}: non-finite PEPS tensor at site ({r},{c})"
                )));
            }
        }
    }
    Ok(())
}

/// Deterministically poison one element of one site tensor (NaN), selected by
/// a splitmix64 hash of `seed` — the fault-injection payload.
fn corrupt_peps(peps: &mut Peps, seed: u64) {
    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let site = splitmix64(seed) as usize % peps.num_sites();
    let (r, c) = (site / peps.ncols(), site % peps.ncols());
    let mut t = peps.tensor((r, c)).clone();
    let len = t.data().len();
    t.data_mut()[splitmix64(seed ^ 0xDEAD_BEEF) as usize % len] = c64(f64::NAN, 0.0);
    peps.set_tensor((r, c), t);
}

/// Apply one full Trotter layer (every local term once) to the PEPS.
pub fn apply_trotter_layer(
    peps: &mut Peps,
    gates: &[TrotterGate],
    method: UpdateMethod,
) -> Result<f64> {
    let mut err_sq = 0.0;
    for gate in gates {
        match gate.sites.as_slice() {
            [site] => apply_one_site(peps, &gate.matrix, *site)?,
            [a, b] => {
                let e = apply_two_site_any(peps, &gate.matrix, *a, *b, method)?;
                err_sq += e * e;
            }
            _ => unreachable!("trotter gates act on one or two sites"),
        }
    }
    Ok(err_sq.sqrt())
}

/// Rescale the PEPS so its (approximate) norm stays O(1); imaginary-time
/// gates are not unitary and would otherwise shrink or blow up the tensors.
fn renormalize<R: Rng + ?Sized>(
    peps: &mut Peps,
    contraction_bond: usize,
    rng: &mut R,
) -> Result<()> {
    let n =
        koala_peps::norm_sqr(peps, koala_peps::ContractionMethod::ibmps(contraction_bond), rng)?;
    if n > 0.0 && n.is_finite() {
        let scale = n.powf(-0.25); // spread the rescaling gently over steps
        let per_site = scale.powf(1.0 / peps.num_sites() as f64);
        for r in 0..peps.nrows() {
            for c in 0..peps.ncols() {
                let t = peps.tensor((r, c)).scale(c64(per_site, 0.0));
                peps.set_tensor((r, c), t);
            }
        }
    }
    Ok(())
}

/// Exact imaginary time evolution on the full state vector (the reference
/// curve of Figure 13). Returns the energy per site after each step.
pub fn ite_statevector(
    initial: &StateVector,
    hamiltonian: &Observable,
    tau: f64,
    steps: usize,
) -> Result<Vec<(usize, f64)>> {
    let gates = trotter_gates(hamiltonian, c64(-tau, 0.0))?;
    let n_sites = initial.num_qubits() as f64;
    let mut sv = initial.clone();
    let mut energies = Vec::with_capacity(steps);
    for step in 1..=steps {
        for gate in &gates {
            match gate.sites.as_slice() {
                [site] => sv.apply_one_site(&gate.matrix, *site),
                [a, b] => sv.apply_two_site(&gate.matrix, *a, *b),
                _ => unreachable!(),
            }
        }
        sv.normalize();
        energies.push((step, sv.expectation(hamiltonian) / n_sites));
    }
    Ok(energies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::{tfi_hamiltonian, TfiParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn statevector_ite_converges_to_ground_state() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = tfi_hamiltonian(2, 2, TfiParams { jz: -1.0, hx: -2.0 });
        let exact = StateVector::ground_state_energy(2, 2, &h, &mut rng).unwrap() / 4.0;
        let sv = StateVector::random(2, 2, &mut rng);
        let energies = ite_statevector(&sv, &h, 0.05, 300).unwrap();
        let last = energies.last().unwrap().1;
        // First-order Trotterisation carries an O(tau) bias, so the converged
        // energy sits slightly above the exact ground state.
        assert!((last - exact).abs() < 1e-2, "ITE energy {last} vs exact {exact}");
        assert!(last >= exact - 1e-9, "Trotterised ITE should stay above the true ground energy");
        // Energy is non-increasing (up to Trotter noise).
        let first = energies.first().unwrap().1;
        assert!(last <= first + 1e-9);
    }

    #[test]
    fn peps_ite_lowers_the_energy_of_the_tfi_model() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let peps = Peps::computational_zeros(2, 2);
        let options = IteOptions::new(0.05, 20, 2, 4);
        let result = ite_peps(&peps, &h, options, &mut rng).unwrap();
        assert_eq!(result.energies.len(), 20);
        let product_state_energy = -1.0; // <0000| H |0000> / 4 = Jz * 4 bonds / 4 sites = -1
        assert!(
            result.final_energy() < product_state_energy - 0.5,
            "ITE should improve on the product state, got {}",
            result.final_energy()
        );
        // Monotone decrease within tolerance.
        for w in result.energies.windows(2) {
            assert!(w[1].1 <= w[0].1 + 0.05, "energy increased too much: {:?}", w);
        }
    }

    #[test]
    fn peps_ite_with_larger_bond_is_at_least_as_good() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let peps = Peps::computational_zeros(2, 2);
        let e1 =
            ite_peps(&peps, &h, IteOptions::new(0.05, 25, 1, 2), &mut rng).unwrap().final_energy();
        let e2 =
            ite_peps(&peps, &h, IteOptions::new(0.05, 25, 2, 4), &mut rng).unwrap().final_energy();
        let exact = StateVector::ground_state_energy(2, 2, &h, &mut rng).unwrap() / 4.0;
        assert!(e2 <= e1 + 0.05, "bond 2 ({e2}) should not be much worse than bond 1 ({e1})");
        assert!(e2 >= exact - 0.05, "variational-ish energy should not dive far below exact");
    }

    #[test]
    fn resumed_run_matches_an_uninterrupted_one() {
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let peps = Peps::computational_zeros(2, 2);

        // One uninterrupted 12-step run...
        let mut rng = StdRng::seed_from_u64(7);
        let full = ite_peps(&peps, &h, IteOptions::new(0.05, 12, 2, 4), &mut rng).unwrap();

        // ...vs the same run split at step 5 through a checkpoint.
        let rng2 = StdRng::seed_from_u64(7);
        let start = ite_checkpoint(&peps, &rng2);
        let (_, mid) = ite_peps_from(start, &h, IteOptions::new(0.05, 5, 2, 4)).unwrap();
        assert_eq!(mid.step(), 5);
        let (resumed, end) = ite_peps_from(mid, &h, IteOptions::new(0.05, 12, 2, 4)).unwrap();
        assert_eq!(end.step(), 12);

        assert_eq!(full.energies.len(), resumed.energies.len());
        for (&(sa, ea), &(sb, eb)) in full.energies.iter().zip(resumed.energies.iter()) {
            assert_eq!(sa, sb);
            assert!((ea - eb).abs() < 1e-10, "step {sa}: {ea} vs {eb}");
        }
    }

    #[test]
    fn injected_corruption_is_rolled_back_to_the_fault_free_trajectory() {
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let peps = Peps::computational_zeros(2, 2);

        let mut clean_rng = StdRng::seed_from_u64(9);
        let clean_opts = {
            let mut o = IteOptions::new(0.05, 10, 2, 4);
            o.checkpoint_every = 2;
            o
        };
        let clean = ite_peps(&peps, &h, clean_opts, &mut clean_rng).unwrap();

        let before = koala_error::recovery::snapshot();
        let mut faulty_rng = StdRng::seed_from_u64(9);
        let mut faulty_opts = clean_opts;
        faulty_opts.fault = Some(IteFault { step: 7, seed: 42 });
        let recovered = ite_peps(&peps, &h, faulty_opts, &mut faulty_rng).unwrap();
        let after = koala_error::recovery::snapshot();

        assert!(after.faults_injected > before.faults_injected);
        assert!(after.nonfinite_detections > before.nonfinite_detections);
        assert!(after.checkpoints_restored > before.checkpoints_restored);
        assert!(after.checkpoints_saved > before.checkpoints_saved);

        assert_eq!(clean.energies.len(), recovered.energies.len());
        for (&(sa, ea), &(sb, eb)) in clean.energies.iter().zip(recovered.energies.iter()) {
            assert_eq!(sa, sb);
            assert!((ea - eb).abs() < 1e-10, "step {sa}: clean {ea} vs recovered {eb}");
        }
    }

    #[test]
    fn persistent_corruption_exhausts_the_restart_budget() {
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let peps = Peps::computational_zeros(2, 2);
        // Poison the *initial* state: every replay re-detects it.
        let mut bad = peps.clone();
        corrupt_peps(&mut bad, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut opts = IteOptions::new(0.05, 4, 2, 4);
        opts.checkpoint_every = 1;
        let err = ite_peps(&bad, &h, opts, &mut rng).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("restore attempts"), "unexpected error: {msg}");
    }

    #[test]
    fn trotter_layer_error_reporting() {
        let mut rng = StdRng::seed_from_u64(4);
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let gates = trotter_gates(&h, c64(-0.1, 0.0)).unwrap();
        let mut peps = Peps::random(2, 2, 2, 2, &mut rng);
        let err = apply_trotter_layer(&mut peps, &gates, UpdateMethod::qr_svd(1)).unwrap();
        assert!(err >= 0.0);
        assert!(peps.max_bond() <= 1);
    }
}
