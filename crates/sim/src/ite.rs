//! Imaginary time evolution (ITE) via TEBD (paper §II-D1, Figure 13).
//!
//! Repeatedly applies the Trotterised operator `prod_j exp(-tau H_j)` to the
//! state and records the Rayleigh quotient after each step. Both a PEPS
//! implementation (truncated evolution + approximate contraction) and an
//! exact state-vector implementation (the reference curves of Figure 13) are
//! provided.
//!
//! ITE is an all-real workload for real Hamiltonians (TFI, Heisenberg): the
//! Trotter gates `exp(-tau H_j)` are real matrices and the initial product
//! states are real, so both carry the structural realness hint (see
//! [`crate::hamiltonian::trotter_gates`]) and the gate-application einsums
//! run on the real-valued GEMM fast path. The factorizations behind every
//! bond truncation (QR / Jacobi SVD / Gram QR / eigh / randomized SVD) run
//! realness-preserving inner loops on hinted inputs and mark their factors
//! real, so a full ITE sweep — evolution, renormalization, and IBMPS energy
//! measurement — executes *zero* complex MACs end to end (pinned by the
//! `real_path` integration test at the workspace root). Correctness never
//! depends on the hint, only the flop count does.

use crate::hamiltonian::{trotter_gates, TrotterGate};
use crate::statevector::{Result, StateVector};
use koala_linalg::c64;
use koala_peps::expectation::{expectation_normalized, ExpectationOptions};
use koala_peps::operators::Observable;
use koala_peps::{apply_one_site, apply_two_site_any, Peps, UpdateMethod};
use rand::Rng;

/// Configuration of a PEPS imaginary-time-evolution run.
#[derive(Debug, Clone, Copy)]
pub struct IteOptions {
    /// Trotter step size `tau`.
    pub tau: f64,
    /// Number of ITE steps.
    pub steps: usize,
    /// Evolution bond dimension `r` (truncation of the PEPS bonds).
    pub evolution_bond: usize,
    /// Contraction bond dimension `m` used when measuring the energy.
    pub contraction_bond: usize,
    /// Two-site update flavour.
    pub update: UpdateKind,
    /// Measure the energy every `measure_every` steps (1 = every step).
    pub measure_every: usize,
}

/// Which two-site update algorithm drives the evolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Simple update (full contraction + SVD).
    Direct,
    /// QR-SVD update (Algorithm 1).
    QrSvd,
    /// QR-SVD update with Gram-matrix orthogonalization.
    GramQrSvd,
}

impl IteOptions {
    /// Reasonable defaults mirroring the Figure 13 study.
    pub fn new(tau: f64, steps: usize, evolution_bond: usize, contraction_bond: usize) -> Self {
        IteOptions {
            tau,
            steps,
            evolution_bond,
            contraction_bond,
            update: UpdateKind::QrSvd,
            measure_every: 1,
        }
    }

    fn update_method(&self) -> UpdateMethod {
        match self.update {
            UpdateKind::Direct => UpdateMethod::direct(self.evolution_bond),
            UpdateKind::QrSvd => UpdateMethod::qr_svd(self.evolution_bond),
            UpdateKind::GramQrSvd => UpdateMethod::gram_qr_svd(self.evolution_bond),
        }
    }
}

/// Result of an ITE run.
#[derive(Debug, Clone)]
pub struct IteResult {
    /// Energy per site after each measured step (step index, energy).
    pub energies: Vec<(usize, f64)>,
    /// The final evolved PEPS.
    pub final_state: Peps,
}

impl IteResult {
    /// The last measured energy per site.
    pub fn final_energy(&self) -> f64 {
        self.energies.last().map(|&(_, e)| e).unwrap_or(f64::NAN)
    }
}

/// Run imaginary time evolution of `hamiltonian` on a PEPS starting from
/// `initial`, measuring the energy per site with IBMPS contraction.
pub fn ite_peps<R: Rng + ?Sized>(
    initial: &Peps,
    hamiltonian: &Observable,
    options: IteOptions,
    rng: &mut R,
) -> Result<IteResult> {
    let gates = trotter_gates(hamiltonian, c64(-options.tau, 0.0));
    let n_sites = initial.num_sites() as f64;
    let mut peps = initial.clone();
    let mut energies = Vec::new();
    let expect_opts = ExpectationOptions::ibmps_cached(options.contraction_bond);

    for step in 1..=options.steps {
        apply_trotter_layer(&mut peps, &gates, options.update_method())?;
        renormalize(&mut peps, options.contraction_bond, rng)?;
        if step % options.measure_every == 0 || step == options.steps {
            let e = expectation_normalized(&peps, hamiltonian, expect_opts, rng)?;
            energies.push((step, e.re / n_sites));
        }
    }
    Ok(IteResult { energies, final_state: peps })
}

/// Apply one full Trotter layer (every local term once) to the PEPS.
pub fn apply_trotter_layer(
    peps: &mut Peps,
    gates: &[TrotterGate],
    method: UpdateMethod,
) -> Result<f64> {
    let mut err_sq = 0.0;
    for gate in gates {
        match gate.sites.as_slice() {
            [site] => apply_one_site(peps, &gate.matrix, *site)?,
            [a, b] => {
                let e = apply_two_site_any(peps, &gate.matrix, *a, *b, method)?;
                err_sq += e * e;
            }
            _ => unreachable!("trotter gates act on one or two sites"),
        }
    }
    Ok(err_sq.sqrt())
}

/// Rescale the PEPS so its (approximate) norm stays O(1); imaginary-time
/// gates are not unitary and would otherwise shrink or blow up the tensors.
fn renormalize<R: Rng + ?Sized>(
    peps: &mut Peps,
    contraction_bond: usize,
    rng: &mut R,
) -> Result<()> {
    let n =
        koala_peps::norm_sqr(peps, koala_peps::ContractionMethod::ibmps(contraction_bond), rng)?;
    if n > 0.0 && n.is_finite() {
        let scale = n.powf(-0.25); // spread the rescaling gently over steps
        let per_site = scale.powf(1.0 / peps.num_sites() as f64);
        for r in 0..peps.nrows() {
            for c in 0..peps.ncols() {
                let t = peps.tensor((r, c)).scale(c64(per_site, 0.0));
                peps.set_tensor((r, c), t);
            }
        }
    }
    Ok(())
}

/// Exact imaginary time evolution on the full state vector (the reference
/// curve of Figure 13). Returns the energy per site after each step.
pub fn ite_statevector(
    initial: &StateVector,
    hamiltonian: &Observable,
    tau: f64,
    steps: usize,
) -> Vec<(usize, f64)> {
    let gates = trotter_gates(hamiltonian, c64(-tau, 0.0));
    let n_sites = initial.num_qubits() as f64;
    let mut sv = initial.clone();
    let mut energies = Vec::with_capacity(steps);
    for step in 1..=steps {
        for gate in &gates {
            match gate.sites.as_slice() {
                [site] => sv.apply_one_site(&gate.matrix, *site),
                [a, b] => sv.apply_two_site(&gate.matrix, *a, *b),
                _ => unreachable!(),
            }
        }
        sv.normalize();
        energies.push((step, sv.expectation(hamiltonian) / n_sites));
    }
    energies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::{tfi_hamiltonian, TfiParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn statevector_ite_converges_to_ground_state() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = tfi_hamiltonian(2, 2, TfiParams { jz: -1.0, hx: -2.0 });
        let exact = StateVector::ground_state_energy(2, 2, &h, &mut rng) / 4.0;
        let sv = StateVector::random(2, 2, &mut rng);
        let energies = ite_statevector(&sv, &h, 0.05, 300);
        let last = energies.last().unwrap().1;
        // First-order Trotterisation carries an O(tau) bias, so the converged
        // energy sits slightly above the exact ground state.
        assert!((last - exact).abs() < 1e-2, "ITE energy {last} vs exact {exact}");
        assert!(last >= exact - 1e-9, "Trotterised ITE should stay above the true ground energy");
        // Energy is non-increasing (up to Trotter noise).
        let first = energies.first().unwrap().1;
        assert!(last <= first + 1e-9);
    }

    #[test]
    fn peps_ite_lowers_the_energy_of_the_tfi_model() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let peps = Peps::computational_zeros(2, 2);
        let options = IteOptions::new(0.05, 20, 2, 4);
        let result = ite_peps(&peps, &h, options, &mut rng).unwrap();
        assert_eq!(result.energies.len(), 20);
        let product_state_energy = -1.0; // <0000| H |0000> / 4 = Jz * 4 bonds / 4 sites = -1
        assert!(
            result.final_energy() < product_state_energy - 0.5,
            "ITE should improve on the product state, got {}",
            result.final_energy()
        );
        // Monotone decrease within tolerance.
        for w in result.energies.windows(2) {
            assert!(w[1].1 <= w[0].1 + 0.05, "energy increased too much: {:?}", w);
        }
    }

    #[test]
    fn peps_ite_with_larger_bond_is_at_least_as_good() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let peps = Peps::computational_zeros(2, 2);
        let e1 =
            ite_peps(&peps, &h, IteOptions::new(0.05, 25, 1, 2), &mut rng).unwrap().final_energy();
        let e2 =
            ite_peps(&peps, &h, IteOptions::new(0.05, 25, 2, 4), &mut rng).unwrap().final_energy();
        let exact = StateVector::ground_state_energy(2, 2, &h, &mut rng) / 4.0;
        assert!(e2 <= e1 + 0.05, "bond 2 ({e2}) should not be much worse than bond 1 ({e1})");
        assert!(e2 >= exact - 0.05, "variational-ish energy should not dive far below exact");
    }

    #[test]
    fn trotter_layer_error_reporting() {
        let mut rng = StdRng::seed_from_u64(4);
        let h = tfi_hamiltonian(2, 2, TfiParams::paper_figure14());
        let gates = trotter_gates(&h, c64(-0.1, 0.0));
        let mut peps = Peps::random(2, 2, 2, 2, &mut rng);
        let err = apply_trotter_layer(&mut peps, &gates, UpdateMethod::qr_svd(1)).unwrap();
        assert!(err >= 0.0);
        assert!(peps.max_bond() <= 1);
    }
}
