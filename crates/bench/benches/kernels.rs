//! Criterion micro-benchmarks of the kernels behind the paper's figures.
//!
//! These complement the `src/bin/fig*.rs` figure-reproduction binaries: the
//! binaries sweep the full parameter ranges and print the series the paper
//! plots, while these benches give statistically solid timings of the
//! individual kernels at one representative (small) size so `cargo bench`
//! completes quickly on a laptop.

use criterion::{criterion_group, criterion_main, Criterion};
use koala_cluster::Cluster;
use koala_linalg::gemm::{gemm, matmul, matmul_seed, Op};
use koala_linalg::{c64, expm_hermitian, Matrix};
use koala_peps::expectation::{expectation, ExpectationOptions};
use koala_peps::operators::{kron, pauli_x, pauli_z, Observable};
use koala_peps::two_layer::{norm_sqr_two_layer, TwoLayerOptions};
use koala_peps::{
    apply_two_site, contract_no_phys, dist_two_site_update, ContractionMethod,
    DistEvolutionVariant, Peps, UpdateMethod,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tebd_gate() -> koala_linalg::Matrix {
    let h = &kron(&pauli_x(), &pauli_x()) + &kron(&pauli_z(), &pauli_z());
    expm_hermitian(&h, c64(-0.05, 0.0)).unwrap()
}

/// The GEMM hot kernel: packed kernel vs the retained seed kernel, plain and
/// with fused transposition. The `bench_gemm` binary sweeps the full shape
/// grid and emits `BENCH_gemm.json`; this group just keeps the kernel under
/// `cargo bench` alongside the figure kernels.
fn bench_gemm_kernel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Matrix::random(256, 256, &mut rng);
    let b = Matrix::random(256, 256, &mut rng);
    let mut group = c.benchmark_group("gemm_256");
    group.sample_size(10);
    group.bench_function("packed", |bch| bch.iter(|| matmul(&a, &b)));
    group.bench_function("packed_adj_a", |bch| bch.iter(|| gemm(Op::Adjoint, Op::None, &a, &b)));
    group.bench_function("seed_baseline", |bch| bch.iter(|| matmul_seed(&a, &b)));
    group.finish();
}

/// Figure 7 kernels: two-site operator application variants.
fn bench_evolution(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let peps = Peps::random(4, 4, 2, 4, &mut rng);
    let gate = tebd_gate();
    let mut group = c.benchmark_group("fig7_evolution_update");
    group.sample_size(10);
    group.bench_function("simple_update_r4", |b| {
        b.iter(|| {
            let mut p = peps.clone();
            apply_two_site(&mut p, &gate, (1, 1), (1, 2), UpdateMethod::direct(4)).unwrap()
        })
    });
    group.bench_function("qr_svd_update_r4", |b| {
        b.iter(|| {
            let mut p = peps.clone();
            apply_two_site(&mut p, &gate, (1, 1), (1, 2), UpdateMethod::qr_svd(4)).unwrap()
        })
    });
    group.bench_function("gram_qr_svd_update_r4", |b| {
        b.iter(|| {
            let mut p = peps.clone();
            apply_two_site(&mut p, &gate, (1, 1), (1, 2), UpdateMethod::gram_qr_svd(4)).unwrap()
        })
    });
    group.bench_function("dist_local_gram_qr_svd_r4_8ranks", |b| {
        b.iter(|| {
            let cluster = Cluster::new(8);
            let mut p = peps.clone();
            dist_two_site_update(
                &cluster,
                &mut p,
                &gate,
                (1, 1),
                (1, 2),
                4,
                DistEvolutionVariant::LocalGramQrSvd,
            )
            .unwrap()
        })
    });
    group.bench_function("dist_ctf_qr_svd_r4_8ranks", |b| {
        b.iter(|| {
            let cluster = Cluster::new(8);
            let mut p = peps.clone();
            dist_two_site_update(
                &cluster,
                &mut p,
                &gate,
                (1, 1),
                (1, 2),
                4,
                DistEvolutionVariant::CtfQrSvd,
            )
            .unwrap()
        })
    });
    group.finish();
}

/// Figure 8 kernels: one-layer and two-layer contraction methods.
fn bench_contraction(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let no_phys = Peps::random_no_phys(5, 5, 3, &mut rng);
    let with_phys = Peps::random(4, 4, 2, 2, &mut rng);
    let mut group = c.benchmark_group("fig8_contraction");
    group.sample_size(10);
    group.bench_function("bmps_5x5_r3_m6", |b| {
        let mut rng = StdRng::seed_from_u64(20);
        b.iter(|| contract_no_phys(&no_phys, ContractionMethod::bmps(6), &mut rng).unwrap())
    });
    group.bench_function("ibmps_5x5_r3_m6", |b| {
        let mut rng = StdRng::seed_from_u64(21);
        b.iter(|| contract_no_phys(&no_phys, ContractionMethod::ibmps(6), &mut rng).unwrap())
    });
    group.bench_function("two_layer_ibmps_norm_4x4_r2_m4", |b| {
        let mut rng = StdRng::seed_from_u64(22);
        b.iter(|| norm_sqr_two_layer(&with_phys, TwoLayerOptions::with_bond(4), &mut rng).unwrap())
    });
    group.finish();
}

/// Figure 9 kernel: expectation value with and without caching.
fn bench_expectation_cache(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let peps = Peps::random(3, 3, 2, 2, &mut rng);
    let mut obs = Observable::zero();
    for r in 0..3 {
        for col in 0..3 {
            obs.add_one_site((r, col), pauli_x());
        }
    }
    let zz = kron(&pauli_z(), &pauli_z());
    for (a, b) in koala_sim::hamiltonian::nearest_neighbor_pairs(3, 3) {
        obs.add_two_site(a, b, zz.clone());
    }
    let mut group = c.benchmark_group("fig9_expectation");
    group.sample_size(10);
    group.bench_function("cached_3x3_r2", |b| {
        let mut rng = StdRng::seed_from_u64(30);
        b.iter(|| {
            expectation(
                &peps,
                &obs,
                ExpectationOptions { method: ContractionMethod::ibmps(4), use_cache: true },
                &mut rng,
            )
            .unwrap()
        })
    });
    group.bench_function("uncached_3x3_r2", |b| {
        let mut rng = StdRng::seed_from_u64(31);
        b.iter(|| {
            expectation(
                &peps,
                &obs,
                ExpectationOptions { method: ContractionMethod::ibmps(4), use_cache: false },
                &mut rng,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm_kernel,
    bench_evolution,
    bench_contraction,
    bench_expectation_cache
);
criterion_main!(benches);
