//! # koala-bench
//!
//! Benchmark and figure-reproduction harness for the koala-rs workspace.
//! Every `bin/` target regenerates one table or figure of the source paper's
//! evaluation section (*"Efficient 2D Tensor Network Simulation of Quantum
//! Systems"*, SC 2020) or records a kernel-level perf series; this library
//! crate holds the small amount of shared plumbing ([`BenchArgs`] CLI
//! parsing, [`Figure`]/[`Series`]/[`Point`] result containers, timing and
//! slope-fitting helpers, the cost-model calibration loader
//! ([`calibrated_cost_model`]), and the [`mod@json`] emitter).
//!
//! ## Binary targets and what each reproduces
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table2_complexity` | Table II — empirical scaling exponents of update / contraction kernels |
//! | `fig7_evolution` | Figure 7 — evolution step time vs bond dimension (update flavours) |
//! | `fig8_contraction` | Figure 8 — contraction time/error vs boundary bond dimension |
//! | `fig9_caching` | Figure 9 — row-environment caching speedup, plus a koala-rs-specific cached-vs-cleared einsum-planner overhead series |
//! | `fig10_rqc_error` | Figure 10 — random-quantum-circuit amplitude error vs truncation |
//! | `fig11_strong_scaling` | Figure 11 — strong scaling over the simulated cluster backend |
//! | `fig12_weak_scaling` | Figure 12 — weak scaling: useful GFLOP/s per core under the cost model |
//! | `fig13_ite` | Figure 13 — imaginary-time-evolution energy curves (J1-J2 / TFI) |
//! | `fig14_vqe` | Figure 14 — VQE optimisation traces on the TFI model |
//! | `bench_gemm` | (koala-rs addition) GEMM perf trajectory: `packed_vs_seed` and `real_vs_complex` series, committed as `BENCH_gemm.json` |
//!
//! Conventions shared by all binaries:
//!
//! * `--quick` (or `KOALA_QUICK=1`) runs a reduced sweep — CI uses this for
//!   its smoke runs; `--full` forces the full sweep.
//! * `--json <path>` additionally dumps the series as JSON.
//! * Flop-derived numbers come from the GEMM layer's own work counters
//!   ([`koala_linalg::gemm::flop_counter`], 8 real flops per complex MAC, and
//!   [`koala_linalg::gemm::real_mac_counter`], 2 per real MAC) — never from a
//!   formula duplicated in a binary.
//!
//! ## Why a hand-rolled JSON emitter?
//!
//! The build environment cannot fetch `serde`/`serde_json`. The shared
//! `koala-json` crate (re-exported here as [`mod@json`]) provides a minimal
//! value model with a stable pretty-printer and parser
//! ([`json::JsonValue`]); its output shape matches the old serde output so
//! downstream tooling keeps parsing it, and `koala-cluster` reads the same
//! dialect back when calibrating its cost model from `BENCH_gemm.json`.

#![warn(missing_docs)]

use std::time::Instant;

pub mod json;

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Run a reduced parameter sweep (also enabled by the `KOALA_QUICK=1`
    /// environment variable).
    pub quick: bool,
    /// Optional JSON output path.
    pub json: Option<String>,
}

impl BenchArgs {
    /// Parse `--quick` / `--full` / `--json <path>` from `std::env::args`.
    pub fn parse() -> Self {
        let mut quick = std::env::var("KOALA_QUICK").map(|v| v != "0").unwrap_or(false);
        let mut json = None;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => quick = true,
                "--full" => quick = false,
                "--json" => {
                    if i + 1 < args.len() {
                        json = Some(args[i + 1].clone());
                        i += 1;
                    }
                }
                other => eprintln!("ignoring unknown argument: {other}"),
            }
            i += 1;
        }
        BenchArgs { quick, json }
    }
}

/// One measured point of a benchmark series.
#[derive(Debug, Clone)]
pub struct Point {
    /// The swept parameter (bond dimension, side length, cores, step, ...).
    pub x: f64,
    /// The measured value (seconds, error, energy, GF/s, ...).
    pub y: f64,
}

/// A named series of measurements (one curve of a figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label (matches the paper's legend where possible).
    pub label: String,
    /// Measured points.
    pub points: Vec<Point>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series { label: label.into(), points: Vec::new() }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(Point { x, y });
    }
}

/// A full figure: a title, an x-axis meaning, and a set of curves.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure identifier, e.g. "fig8a".
    pub id: String,
    /// Human-readable description.
    pub title: String,
    /// Meaning of the x axis.
    pub x_label: String,
    /// Meaning of the y axis.
    pub y_label: String,
    /// The measured curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Print the figure as an aligned text table.
    pub fn print(&self) {
        println!("\n=== {} — {} ===", self.id, self.title);
        println!("{:>12} | {}", self.x_label, self.y_label);
        for s in &self.series {
            println!("--- {} ---", s.label);
            for p in &s.points {
                println!("{:>12.4} | {:.6e}", p.x, p.y);
            }
        }
    }

    /// Render the figure as pretty-printed JSON (same shape as the old
    /// serde output, kept stable for downstream tooling).
    pub fn to_json(&self) -> String {
        use crate::json::JsonValue;
        let series: Vec<JsonValue> = self
            .series
            .iter()
            .map(|s| {
                let points: Vec<JsonValue> = s
                    .points
                    .iter()
                    .map(|p| {
                        JsonValue::object([("x", JsonValue::num(p.x)), ("y", JsonValue::num(p.y))])
                    })
                    .collect();
                JsonValue::object([
                    ("label", JsonValue::str(&s.label)),
                    ("points", JsonValue::Array(points)),
                ])
            })
            .collect();
        JsonValue::object([
            ("id", JsonValue::str(&self.id)),
            ("title", JsonValue::str(&self.title)),
            ("x_label", JsonValue::str(&self.x_label)),
            ("y_label", JsonValue::str(&self.y_label)),
            ("series", JsonValue::Array(series)),
        ])
        .pretty()
    }

    /// Write the figure as JSON if a path was requested.
    pub fn maybe_write_json(&self, args: &BenchArgs) {
        if let Some(path) = &args.json {
            if let Err(e) = std::fs::write(path, self.to_json()) {
                eprintln!("failed to write {path}: {e}");
            } else {
                println!("wrote {path}");
            }
        }
    }
}

/// Build the cluster cost model calibrated from the committed
/// `BENCH_gemm.json` (searched in the current directory, then at the
/// workspace root relative to this crate), falling back to
/// [`koala_cluster::CostModel::default`] with a warning when the file is
/// missing or unusable.
///
/// Every figure binary that converts [`koala_cluster::CommStats`] into
/// modelled times goes through this helper, so the scaling figures price
/// per-rank work at the GFLOP/s the packed kernels actually sustain on the
/// machine that produced the committed baseline (complex rate from the
/// `packed_vs_seed` series, real rate from `real_vs_complex`; see
/// [`koala_cluster::CostModel::from_bench`]).
pub fn calibrated_cost_model() -> koala_cluster::CostModel {
    let candidates =
        ["BENCH_gemm.json", concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json")];
    for path in candidates {
        let Ok(text) = std::fs::read_to_string(path) else { continue };
        match koala_cluster::CostModel::from_bench(&text) {
            Ok(model) => {
                println!(
                    "cost model calibrated from {path}: complex {:.2} GF/s, real {:.2} GF/s per rank",
                    model.complex_peak_flops() / 1e9,
                    model.real_peak_flops() / 1e9
                );
                return model;
            }
            Err(e) => eprintln!("cost model: {path} unusable ({e}); trying next candidate"),
        }
    }
    eprintln!("cost model: no usable BENCH_gemm.json found, using uncalibrated defaults");
    koala_cluster::CostModel::default()
}

/// Time a closure, returning `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Least-squares slope of `log(y)` vs `log(x)` — used to report empirical
/// scaling exponents for the Table II reproduction.
pub fn log_log_slope(points: &[Point]) -> f64 {
    let pts: Vec<(f64, f64)> =
        points.iter().filter(|p| p.x > 0.0 && p.y > 0.0).map(|p| (p.x.ln(), p.y.ln())).collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_log_slope_of_power_law() {
        let mut s = Series::new("cubic");
        for x in [1.0f64, 2.0, 4.0, 8.0] {
            s.push(x, 5.0 * x.powi(3));
        }
        let slope = log_log_slope(&s.points);
        assert!((slope - 3.0).abs() < 1e-9);
    }

    #[test]
    fn figure_roundtrip_and_timer() {
        let mut fig = Figure::new("t", "test", "x", "y");
        let mut s = Series::new("a");
        s.push(1.0, 2.0);
        fig.add(s);
        assert_eq!(fig.series.len(), 1);
        let (v, secs) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
