//! Figure 10: relative error of contracting an RQC-generated PEPS with BMPS
//! and IBMPS as the contraction bond dimension varies.
//!
//! Paper setup: 4x4 to 7x7 lattices, 8 layers of RQC evolved exactly (initial
//! bond dimension 16), amplitude of one basis state computed with BMPS/IBMPS
//! at several contraction bond dimensions and compared with the exact value.
//! Here the exact reference amplitude comes from the state-vector simulator
//! (identical up to round-off), which caps the default lattice sizes at
//! 3x3 / 4x4 so the run fits in one machine.

use koala_bench::{BenchArgs, Figure, Series};
use koala_peps::{amplitude, ContractionMethod, Peps, UpdateMethod};
use koala_sim::{random_circuit, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = BenchArgs::parse();
    let sides: Vec<usize> = if args.quick { vec![3] } else { vec![3, 4] };
    let layers = 8;
    let entangle_every = 4; // initial bond dimension 4^2 = 16 after 8 layers
    let contraction_bonds: Vec<usize> =
        if args.quick { vec![2, 4, 8, 16, 32] } else { vec![2, 4, 8, 16, 32, 64, 128, 256] };

    let mut fig = Figure::new(
        "fig10",
        "Relative error of one RQC amplitude vs contraction bond dimension",
        "contraction bond dimension m",
        "relative error |amp - exact| / |exact|",
    );

    for &n in &sides {
        let mut rng = StdRng::seed_from_u64(10_000 + n as u64);
        let circuit = random_circuit(n, n, layers, entangle_every, &mut rng);

        // Exact evolution of the PEPS (no truncation) and of the state vector.
        let mut peps = Peps::computational_zeros(n, n);
        let err = circuit.apply_to_peps(&mut peps, UpdateMethod::qr_svd(1 << 20)).unwrap();
        assert!(err < 1e-8, "RQC evolution must be exact for this benchmark");
        let mut sv = StateVector::computational_zeros(n, n);
        circuit.apply_to_statevector(&mut sv);

        // Amplitude of the all-zeros basis state.
        let bits = vec![0usize; n * n];
        let exact = sv.amplitude(&bits);
        println!("n={n}: PEPS bond after RQC = {}, exact amplitude = {exact}", peps.max_bond());

        let mut s_bmps = Series::new(format!("BMPS n={n}"));
        let mut s_ibmps = Series::new(format!("IBMPS n={n}"));
        for &m in &contraction_bonds {
            let approx_b = amplitude(&peps, &bits, ContractionMethod::bmps(m), &mut rng).unwrap();
            let approx_i = amplitude(&peps, &bits, ContractionMethod::ibmps(m), &mut rng).unwrap();
            let err_b = (approx_b - exact).abs() / exact.abs();
            let err_i = (approx_i - exact).abs() / exact.abs();
            s_bmps.push(m as f64, err_b);
            s_ibmps.push(m as f64, err_i);
            println!("n={n} m={m:<4} bmps_err={err_b:.3e} ibmps_err={err_i:.3e}");
        }
        fig.add(s_bmps);
        fig.add(s_ibmps);
    }

    fig.print();
    fig.maybe_write_json(&args);
}
