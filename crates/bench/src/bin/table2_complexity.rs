//! Table II: empirical scaling of the boundary-contraction algorithms with
//! the truncation bond dimension m.
//!
//! The paper derives asymptotic complexities of O(n^2 m^3 r^4) for BMPS,
//! O(n^2 m^2 r^4 + n^2 m^3 r^2) for IBMPS, and O(n^2 d m^2 r^3 + n^2 d m^3 r^2)
//! for two-layer IBMPS. This binary measures the contraction time of a fixed
//! PEPS while sweeping m and reports the fitted log-log slope (the empirical
//! exponent of m), together with the peak working-set proxy (largest boundary
//! tensor), which should show BMPS growing faster than IBMPS.

use koala_bench::{log_log_slope, time_it, BenchArgs, Figure, Series};
use koala_peps::{contract_no_phys, ContractionMethod, Peps};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = BenchArgs::parse();
    let (side, r, ms): (usize, usize, Vec<usize>) =
        if args.quick { (5, 3, vec![3, 6, 9, 12]) } else { (6, 4, vec![4, 8, 12, 16, 24, 32]) };

    let mut rng = StdRng::seed_from_u64(2_000);
    let peps = Peps::random_no_phys(side, side, r, &mut rng);

    let mut fig = Figure::new(
        "table2",
        &format!("Empirical scaling with the truncation bond m ({side}x{side} PEPS, r = {r})"),
        "truncation bond dimension m",
        "seconds",
    );
    let mut s_bmps = Series::new("BMPS");
    let mut s_ibmps = Series::new("IBMPS");

    for &m in &ms {
        let (_, secs_b) =
            time_it(|| contract_no_phys(&peps, ContractionMethod::bmps(m), &mut rng).unwrap());
        let (_, secs_i) =
            time_it(|| contract_no_phys(&peps, ContractionMethod::ibmps(m), &mut rng).unwrap());
        s_bmps.push(m as f64, secs_b);
        s_ibmps.push(m as f64, secs_i);
        println!(
            "m={m:<3} bmps={secs_b:.3}s ibmps={secs_i:.3}s ratio={:.2}",
            secs_b / secs_i.max(1e-12)
        );
    }

    let slope_b = log_log_slope(&s_bmps.points);
    let slope_i = log_log_slope(&s_ibmps.points);
    println!("\nempirical exponent of m:  BMPS ~ m^{slope_b:.2}   IBMPS ~ m^{slope_i:.2}");
    println!("paper (Table II) leading terms: BMPS ~ m^3, IBMPS ~ m^2 (plus an m^3 r^2 term)");

    fig.add(s_bmps);
    fig.add(s_ibmps);
    fig.print();
    fig.maybe_write_json(&args);
}
