//! Figure 13: imaginary time evolution of the 4x4 spin-1/2 J1-J2 Heisenberg
//! model. (a) energy per site versus ITE step for small bond dimensions, with
//! both m = r and m = r^2 contraction bonds; (b) the energy after a fixed
//! number of steps as the bond dimension grows, compared with the
//! state-vector reference.

use koala_bench::{BenchArgs, Figure, Series};
use koala_peps::Peps;
use koala_sim::{ite_peps, ite_statevector, j1j2_hamiltonian, IteOptions, J1J2Params, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = BenchArgs::parse();
    let (nrows, ncols) = (4usize, 4usize);
    let params = J1J2Params::paper_figure13();
    let h = j1j2_hamiltonian(nrows, ncols, params);
    let tau = 0.05;
    let (steps, bonds, sv_steps): (usize, Vec<usize>, usize) =
        if args.quick { (20, vec![1, 2], 100) } else { (80, vec![1, 2, 3], 400) };
    let measure_every = if args.quick { 5 } else { 10 };

    let mut fig = Figure::new(
        "fig13",
        &format!("ITE of the {nrows}x{ncols} J1-J2 model (J1=1.0, J2=0.5, h=0.2), tau={tau}"),
        "ITE step",
        "energy per site",
    );

    // State-vector reference.
    println!("running state-vector ITE reference ({sv_steps} steps)...");
    let sv = StateVector::computational_zeros(nrows, ncols);
    let reference = ite_statevector(&sv, &h, tau, sv_steps).expect("state-vector ITE failed");
    let mut s_ref = Series::new("state vector");
    for &(step, e) in &reference {
        if step % measure_every == 0 {
            s_ref.push(step as f64, e);
        }
    }
    let sv_final = reference.last().unwrap().1;
    println!("state-vector energy per site after {sv_steps} steps: {sv_final:.6}");
    fig.add(s_ref);

    let mut final_vs_bond_r = Series::new("final energy vs r (m = r)");
    let mut final_vs_bond_r2 = Series::new("final energy vs r (m = r^2)");

    for &r in &bonds {
        for (m, series, label) in
            [(r, &mut final_vs_bond_r, "m=r"), (r * r, &mut final_vs_bond_r2, "m=r^2")]
        {
            let mut rng = StdRng::seed_from_u64(13_000 + (r * 10 + m) as u64);
            let peps = Peps::computational_zeros(nrows, ncols);
            let mut options = IteOptions::new(tau, steps, r, m.max(2));
            options.measure_every = measure_every;
            println!("running PEPS ITE r={r} {label} ({steps} steps)...");
            let result = ite_peps(&peps, &h, options, &mut rng).unwrap();
            let mut s = Series::new(format!("PEPS r={r}, {label}"));
            for &(step, e) in &result.energies {
                s.push(step as f64, e);
            }
            println!(
                "  r={r} {label}: final energy per site = {:.6} (state vector {sv_final:.6})",
                result.final_energy()
            );
            series.push(r as f64, result.final_energy());
            fig.add(s);
        }
    }

    fig.add(final_vs_bond_r);
    fig.add(final_vs_bond_r2);
    fig.print();
    fig.maybe_write_json(&args);
}
