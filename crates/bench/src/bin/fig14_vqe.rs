//! Figure 14: VQE simulation of the 3x3 ferromagnetic transverse-field Ising
//! model (Jz = -1, hx = -3.5), comparing PEPS simulations at several maximum
//! bond dimensions against the exact state-vector simulation and the exact
//! ground-state energy.

use koala_bench::{BenchArgs, Figure, Series};
use koala_sim::{
    run_vqe, tfi_hamiltonian, Optimizer, StateVector, TfiParams, VqeBackend, VqeOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = BenchArgs::parse();
    let (nrows, ncols) = (3usize, 3usize);
    let params = TfiParams::paper_figure14();
    let h = tfi_hamiltonian(nrows, ncols, params);
    let layers = 1;
    let (iterations, bonds): (usize, Vec<usize>) =
        if args.quick { (30, vec![1, 2]) } else { (80, vec![1, 2, 3, 4]) };

    let mut rng = StdRng::seed_from_u64(14_000);
    let exact = StateVector::ground_state_energy(nrows, ncols, &h, &mut rng)
        .expect("Lanczos reference failed")
        / (nrows * ncols) as f64;
    println!("exact ground-state energy per site: {exact:.6}");

    let mut fig = Figure::new(
        "fig14",
        &format!("VQE on the {nrows}x{ncols} ferromagnetic TFI model (Jz=-1, hx=-3.5), {layers} ansatz layer(s)"),
        "optimizer iteration",
        "best-so-far energy per site",
    );
    let mut exact_series = Series::new("exact ground state");
    exact_series.push(0.0, exact);
    exact_series.push(iterations as f64, exact);
    fig.add(exact_series);

    // State-vector VQE reference.
    let options = VqeOptions {
        layers,
        backend: VqeBackend::StateVector,
        optimizer: Optimizer::NelderMead { scale: 0.4, max_iterations: iterations },
    };
    println!("running state-vector VQE...");
    let sv_result = run_vqe(nrows, ncols, &h, options, None, &mut rng).unwrap();
    let mut s = Series::new("state vector");
    for (i, e) in sv_result.energy_history.iter().enumerate() {
        s.push(i as f64, *e);
    }
    println!("  state vector best energy per site: {:.6}", sv_result.best_energy);
    fig.add(s);

    let mut best_vs_bond = Series::new("best energy vs bond dimension");
    for &r in &bonds {
        let options = VqeOptions {
            layers,
            backend: VqeBackend::Peps { bond: r, contraction_bond: (r * r).max(2) },
            optimizer: Optimizer::NelderMead { scale: 0.4, max_iterations: iterations },
        };
        println!("running PEPS VQE with r={r}...");
        let result = run_vqe(nrows, ncols, &h, options, None, &mut rng).unwrap();
        let mut s = Series::new(format!("peps, r = {r}"));
        for (i, e) in result.energy_history.iter().enumerate() {
            s.push(i as f64, *e);
        }
        println!(
            "  r={r}: best energy per site = {:.6} ({} objective evaluations)",
            result.best_energy, result.evaluations
        );
        best_vs_bond.push(r as f64, result.best_energy);
        fig.add(s);
    }

    fig.add(best_vs_bond);
    fig.print();
    fig.maybe_write_json(&args);
}
