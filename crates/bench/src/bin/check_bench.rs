//! CI perf-regression gate: compare a fresh `bench_gemm --quick` run against
//! the committed `BENCH_gemm.json` baselines and fail if effective GFLOP/s
//! dropped by more than the allowed fraction on any series.
//!
//! Entries are matched by `(series, label, opa, opb, threads)`; only keys
//! present in *both* files are compared, so a CI host with a different core
//! count (extra `threads` rows), a `--quick` run (a subset of the full
//! grid's labels), or a PR adding a brand-new series before the committed
//! baseline is regenerated still gates on the intersection — current-only
//! cases are listed and ignored, never a failure. An entry of a *known*
//! series that lacks its gated field is still a hard error, though: that is
//! an emitter regression, and skipping it would silently un-gate the series. Matrices are
//! bit-identical across runs because `bench_gemm` seeds each case from a
//! hash of its identity, so a drop is a kernel/dispatch regression (or host
//! noise — the threshold leaves 25% headroom for that), never a data change.
//!
//! The compared rate is the per-series effective GFLOP/s — the
//! counter-derived rate for the GEMM series and the nominal-flops rate for
//! the factorization series — so the gate covers the packed kernel, the real
//! dispatch, *and* the realness-preserving factorization paths.
//!
//! Usage:
//! `check_bench --baseline BENCH_gemm.json --current bench_gemm_ci.json
//! [--max-drop 0.25]`
//!
//! Exit code 0 = no regression; 1 = regression or unusable inputs.

use koala_bench::json::JsonValue;

/// The JSON field holding the gated rate for each known series.
fn rate_field(series: &str) -> Option<&'static str> {
    match series {
        "packed_vs_seed" => Some("packed_gflops"),
        "real_vs_complex" => Some("real_effective_gflops"),
        "real_factorization" => Some("effective_gflops"),
        _ => None,
    }
}

/// Identity + rate of one benchmark entry.
struct Entry {
    key: String,
    rate: f64,
}

fn load_entries(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read {path}: {e}\n  (regenerate it with `cargo run --release -p koala-bench \
             --bin bench_gemm -- --quick --out {path}`)"
        )
    })?;
    let doc = JsonValue::parse(&text).map_err(|e| {
        format!("cannot parse {path}: {e}\n  (truncated or corrupt JSON — regenerate the file)")
    })?;
    let results = doc.get("results").and_then(|r| r.as_array()).ok_or_else(|| {
        format!("{path}: missing 'results' array (truncated or schema-drifted file)")
    })?;
    let mut entries = Vec::new();
    for item in results {
        let series = item.get("series").and_then(|v| v.as_str()).unwrap_or("");
        let Some(field) = rate_field(series) else {
            continue; // unknown series: ignore rather than fail on new data
        };
        let label = item.get("label").and_then(|v| v.as_str()).unwrap_or("");
        let opa = item.get("opa").and_then(|v| v.as_str()).unwrap_or("-");
        let opb = item.get("opb").and_then(|v| v.as_str()).unwrap_or("-");
        let threads = item.get("threads").and_then(|v| v.as_num()).unwrap_or(0.0);
        let Some(rate) = item.get(field).and_then(|v| v.as_num()) else {
            // A known series losing its gated field is an emitter regression
            // (it would silently un-gate the series if merely skipped); only
            // *whole series* absent from the baseline are tolerated, via the
            // key-intersection logic in main().
            return Err(format!("{path}: entry {series}/{label} lacks numeric '{field}'"));
        };
        entries.push(Entry { key: format!("{series}/{label}/{opa}{opb}/t{threads}"), rate });
    }
    Ok(entries)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get_flag = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let baseline_path = get_flag("--baseline").unwrap_or_else(|| "BENCH_gemm.json".to_string());
    let current_path = get_flag("--current").unwrap_or_else(|| "bench_gemm_ci.json".to_string());
    let max_drop: f64 = match get_flag("--max-drop").map(|s| s.parse::<f64>()) {
        None => 0.25,
        Some(Ok(v)) => v,
        Some(Err(e)) => {
            eprintln!("check_bench: --max-drop must be a number: {e}");
            std::process::exit(1);
        }
    };

    let baseline = match load_entries(&baseline_path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("check_bench: {e}");
            std::process::exit(1);
        }
    };
    let current = match load_entries(&current_path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("check_bench: {e}");
            std::process::exit(1);
        }
    };

    if baseline.is_empty() {
        // A parsable baseline with no gated series is not a regression — there
        // is simply nothing to compare yet (e.g. a freshly bootstrapped repo).
        println!(
            "check_bench: WARNING — {baseline_path} contains no entries of any gated series; \
             nothing to compare, passing vacuously"
        );
        return;
    }

    let mut matched = 0usize;
    let mut regressions = Vec::new();
    println!("{:<48} {:>10} {:>10} {:>8}  verdict", "case", "base GF/s", "now GF/s", "ratio");
    for base in &baseline {
        let Some(cur) = current.iter().find(|c| c.key == base.key) else {
            continue; // not run in this configuration (e.g. thread count)
        };
        matched += 1;
        let ratio = if base.rate > 0.0 { cur.rate / base.rate } else { f64::INFINITY };
        let ok = ratio >= 1.0 - max_drop;
        println!(
            "{:<48} {:>10.2} {:>10.2} {:>7.2}x  {}",
            base.key,
            base.rate,
            cur.rate,
            ratio,
            if ok { "ok" } else { "REGRESSION" }
        );
        if !ok {
            regressions.push((base.key.clone(), ratio));
        }
    }

    // Series/cases present only in the fresh run are fine: a PR that adds a
    // new bench series can land before the committed baseline is regenerated
    // — the gate simply reports what it could not compare and gates on the
    // intersection.
    let current_only: Vec<&str> = current
        .iter()
        .filter(|c| baseline.iter().all(|b| b.key != c.key))
        .map(|c| c.key.as_str())
        .collect();
    if !current_only.is_empty() {
        println!(
            "check_bench: {} case(s) absent from the baseline, ignored (new series land \
             without regenerating {baseline_path} first): {}",
            current_only.len(),
            current_only.join(", ")
        );
    }

    if matched == 0 {
        eprintln!(
            "check_bench: no overlapping entries between {baseline_path} and {current_path} — \
             the gate compared nothing (key schema drift?)"
        );
        std::process::exit(1);
    }
    if regressions.is_empty() {
        println!(
            "check_bench: OK — {matched} case(s) within {:.0}% of the committed baseline",
            max_drop * 100.0
        );
    } else {
        eprintln!(
            "check_bench: FAIL — {} of {matched} case(s) dropped more than {:.0}%:",
            regressions.len(),
            max_drop * 100.0
        );
        for (key, ratio) in &regressions {
            eprintln!("  {key}: {:.1}% of baseline", ratio * 100.0);
        }
        std::process::exit(1);
    }
}
