//! GEMM kernel benchmark: packed kernel vs the retained seed kernel, plus the
//! real-valued fast path vs the split-complex kernel.
//!
//! Writes `BENCH_gemm.json` (override with `--json <path>`) with GFLOP/s for
//! a fixed shape grid, single- and multi-threaded, so the repository records
//! a machine-readable perf trajectory from PR 1 onward. Every case seeds its
//! own RNG from a hash of `(series, label, shape)`, so the `--quick` CI run
//! and the committed full run factorize/multiply bit-identical matrices —
//! `check_bench` compares like for like. Four series are emitted:
//!
//! * `packed_vs_seed` — the packed split-complex kernel against the seed
//!   repository's blocked kernel on complex random data (the PR 1 speedup).
//! * `real_vs_complex` — the same shapes with purely real, hint-carrying
//!   operands (real-only dispatch) against genuinely complex operands
//!   (split-complex kernel). `speedup_real_vs_complex` is the wall-time
//!   ratio; equivalently the ratio of *effective* GFLOP/s, where both runs
//!   are credited the same `8 * m * n * k` real flops for solving the same
//!   problem. `hw_gflops` additionally reports the flops the hardware
//!   actually executed (2 per real MAC), which shows the real kernel trading
//!   arithmetic for memory-boundedness.
//! * `real_factorization` — the realness-preserving factorization paths
//!   (QR / one-sided Jacobi SVD / eigh / Gram QR) on hint-carrying real
//!   matrices against the complex paths on the *same* (hint-laundered) data.
//!   `effective_gflops` credits each run the same nominal
//!   `8 * m * n * min(m, n)` flops for solving the same problem, so the
//!   ratio equals the wall-time speedup and the CI gate can compare runs.
//! * `threads_scaling` — the packed kernel on the same shape at executor
//!   thread counts 1/2/4 (`koala_exec::set_threads`), with the wall-time
//!   speedup over the 1-thread row. The results are honest for the machine
//!   that ran them: `host_cpus` records how many hardware threads existed,
//!   and on a 1-CPU container the speedup is expected to sit near 1.0 —
//!   the series then documents that the task graph adds no overhead, while
//!   a multi-core host shows the actual scaling. `check_bench` ignores
//!   this series (it is machine-topology-dependent), it is recorded for
//!   the perf trajectory only.
//!
//! GFLOP/s are derived from the GEMM layer's own work counters
//! ([`koala_linalg::gemm::flop_counter`] for complex MACs, 8 real flops each,
//! and [`koala_linalg::gemm::real_mac_counter`] for real MACs, 2 real flops
//! each), not from a formula duplicated here — so the numbers stay honest if
//! the kernel's dispatch or work accounting ever changes.
//!
//! Usage: `cargo run --release -p koala-bench --bin bench_gemm [--quick]
//! [--json <path>]`

use koala_bench::json::JsonValue;
use koala_linalg::gemm::{
    flop_counter, gemm, matmul_seed, real_mac_counter, reset_flop_counter, Op,
};
use koala_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One benchmarked configuration.
struct Case {
    m: usize,
    k: usize,
    n: usize,
    opa: Op,
    opb: Op,
    label: &'static str,
}

const fn case(m: usize, k: usize, n: usize, opa: Op, opb: Op, label: &'static str) -> Case {
    Case { m, k, n, opa, opb, label }
}

fn op_name(op: Op) -> &'static str {
    match op {
        Op::None => "N",
        Op::Adjoint => "H",
        Op::Transpose => "T",
    }
}

/// Deterministic per-case seed: FNV-1a over the series, label, and shape.
/// Seeding each case independently (instead of streaming one RNG through the
/// whole grid) makes the generated matrices identical no matter which grid
/// (`--quick` or full) a case appears in — the CI regression gate compares
/// timings of bit-identical inputs.
fn case_seed(series: &str, label: &str, dims: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(series.as_bytes());
    eat(b"/");
    eat(label.as_bytes());
    for d in dims {
        eat(&d.to_le_bytes());
    }
    h
}

/// Best-of-`reps` wall time plus the (complex, real) MAC counts per run.
fn time_best(reps: usize, mut f: impl FnMut()) -> (f64, u64, u64) {
    f(); // warm-up
    let mut best = f64::INFINITY;
    let mut cmacs = 0;
    let mut rmacs = 0;
    for _ in 0..reps {
        reset_flop_counter();
        let t = Instant::now();
        f();
        let secs = t.elapsed().as_secs_f64();
        cmacs = flop_counter();
        rmacs = real_mac_counter();
        if secs < best {
            best = secs;
        }
    }
    (best, cmacs, rmacs)
}

/// The seed repository's GEMM path for this case: materialise transposed
/// operands (as the seed `gemm` did — and only those; `Op::None` operands
/// are used by reference so the baseline is not billed for copies the seed
/// code never made), then run the seed blocked kernel.
fn run_seed(case: &Case, a: &Matrix, b: &Matrix) -> Matrix {
    let a_eff;
    let a_ref = match case.opa {
        Op::None => a,
        Op::Adjoint => {
            a_eff = a.adjoint();
            &a_eff
        }
        Op::Transpose => {
            a_eff = a.transpose();
            &a_eff
        }
    };
    let b_eff;
    let b_ref = match case.opb {
        Op::None => b,
        Op::Adjoint => {
            b_eff = b.adjoint();
            &b_eff
        }
        Op::Transpose => {
            b_eff = b.transpose();
            &b_eff
        }
    };
    matmul_seed(a_ref, b_ref)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());

    let full_grid = [
        case(256, 256, 256, Op::None, Op::None, "square_256"),
        case(512, 512, 512, Op::None, Op::None, "square_512"),
        case(512, 512, 512, Op::Adjoint, Op::None, "square_512_adj_a"),
        case(512, 512, 512, Op::None, Op::Transpose, "square_512_t_b"),
        case(2048, 64, 64, Op::None, Op::None, "tall_skinny"),
        case(64, 64, 2048, Op::None, Op::None, "short_wide"),
        case(64, 2048, 64, Op::None, Op::None, "deep_k"),
    ];
    let quick_grid = [
        case(256, 256, 256, Op::None, Op::None, "square_256"),
        case(512, 512, 512, Op::None, Op::None, "square_512"),
    ];
    // Real-vs-complex sweep: plain and fused-transposition shapes, so the
    // real packers' fused gather is exercised too.
    let real_full_grid = [
        case(256, 256, 256, Op::None, Op::None, "square_256"),
        case(512, 512, 512, Op::None, Op::None, "square_512"),
        case(512, 512, 512, Op::Transpose, Op::None, "square_512_t_a"),
        case(2048, 64, 64, Op::None, Op::None, "tall_skinny"),
        case(64, 2048, 64, Op::None, Op::None, "deep_k"),
    ];
    let real_quick_grid = [
        case(256, 256, 256, Op::None, Op::None, "square_256"),
        case(512, 512, 512, Op::None, Op::None, "square_512"),
    ];
    let (grid, real_grid): (&[Case], &[Case]) =
        if quick { (&quick_grid, &real_quick_grid) } else { (&full_grid, &real_full_grid) };
    let reps = if quick { 3 } else { 7 };

    let all_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let thread_counts: Vec<usize> = if all_threads > 1 { vec![1, all_threads] } else { vec![1] };

    let mut results: Vec<JsonValue> = Vec::new();
    // Realness-preserving factorization paths vs the complex paths on the
    // same (hint-laundered) data. Factorizations are dominated by their
    // rotation/substitution inner loops rather than GEMM, so rates are
    // credited a fixed nominal `8 * m * n * min(m, n)` flops — the constant
    // cancels in the CI gate's ratio and the speedup is the wall-time ratio.
    //
    // This section runs FIRST: its small kernels are sensitive to allocator
    // and cache state left behind by the big GEMM grids, and those grids
    // differ between `--quick` and full runs — measuring from fresh process
    // state keeps the CI gate's quick run comparable to the committed full
    // baseline.
    println!();
    println!(
        "{:<18} {:>3} {:>14} {:>9} {:>9} {:>9} {:>8}",
        "factorization", "thr", "shape", "real_s", "eff_GF/s", "cplx_s", "speedup"
    );
    let fact_grid: &[(&str, usize, usize)] = &[
        ("qr_tall", 384, 96),
        ("svd_square", 96, 96),
        ("svd_wide", 64, 192),
        ("eigh", 96, 96),
        ("gram_qr_tall", 512, 64),
    ];
    let fact_reps = 5;
    for &(label, m, n) in fact_grid {
        let mut rng = StdRng::seed_from_u64(case_seed("real_factorization", label, &[m, n]));
        let real = Matrix::random_real(m, n, &mut rng);
        // Identical numbers with the hint laundered away: the complex path
        // runs on the same matrix.
        let cplx = Matrix::from_vec(m, n, real.data().to_vec()).expect("launder");
        assert!(real.is_real() && !cplx.is_real());
        let (real_in, cplx_in) = if label == "eigh" {
            // Symmetrize for the eigensolver (stays real / laundered).
            let h = |a: &Matrix| {
                let mut h = Matrix::zeros(m, n);
                for i in 0..m {
                    for j in 0..n {
                        h[(i, j)] = (a[(i, j)] + a[(j, i)].conj()).scale(0.5);
                    }
                }
                h
            };
            let mut hr = h(&real);
            hr.mark_real_if_exact();
            (hr, h(&cplx))
        } else {
            (real, cplx)
        };
        let run = |input: &Matrix| match label {
            "qr_tall" => {
                let f = koala_linalg::qr(input);
                std::hint::black_box((f.q.nrows(), f.r.ncols()));
            }
            "svd_square" | "svd_wide" => {
                let f = koala_linalg::svd(input).expect("bench svd");
                std::hint::black_box(f.s.len());
            }
            "eigh" => {
                let e = koala_linalg::eigh(input).expect("bench eigh");
                std::hint::black_box(e.values.len());
            }
            "gram_qr_tall" => {
                let f = koala_linalg::gram_qr(input).expect("bench gram_qr");
                std::hint::black_box(f.r.nrows());
            }
            _ => unreachable!("unknown factorization case"),
        };
        // The factorization inner loops are serial (only their small internal
        // GEMMs can parallelize), so one thread count suffices — extra rows
        // would re-measure the same computation and double the CI gate's
        // exposure to timing noise on sub-millisecond cases.
        for &threads in &thread_counts[..1] {
            koala_exec::set_threads(threads);
            let (real_s, _, _) = time_best(fact_reps, || run(&real_in));
            let (cplx_s, _, _) = time_best(fact_reps, || run(&cplx_in));
            let nominal = 8.0 * (m * n * m.min(n)) as f64;
            let eff_gf = nominal / real_s / 1e9;
            let speedup = cplx_s / real_s;
            println!(
                "{:<18} {:>3} {:>14} {:>9.4} {:>9.2} {:>9.4} {:>7.2}x",
                label,
                threads,
                format!("{m}x{n}"),
                real_s,
                eff_gf,
                cplx_s,
                speedup
            );
            results.push(JsonValue::object([
                ("series", JsonValue::str("real_factorization")),
                ("label", JsonValue::str(label)),
                ("m", JsonValue::num(m as f64)),
                ("n", JsonValue::num(n as f64)),
                ("threads", JsonValue::num(threads as f64)),
                ("real_seconds", JsonValue::num(real_s)),
                ("complex_seconds", JsonValue::num(cplx_s)),
                ("effective_gflops", JsonValue::num(eff_gf)),
                ("speedup_real_vs_complex", JsonValue::num(speedup)),
            ]));
        }
    }
    println!(
        "{:<18} {:>3} {:>14} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "case", "thr", "shape", "packed_s", "GF/s", "seed_s", "seed_GF", "speedup"
    );
    for case in grid {
        let mut rng = StdRng::seed_from_u64(case_seed(
            "packed_vs_seed",
            case.label,
            &[case.m, case.k, case.n],
        ));
        // Stored shapes chosen so the effective product is (m x k) * (k x n).
        let a = match case.opa {
            Op::None => Matrix::random(case.m, case.k, &mut rng),
            _ => Matrix::random(case.k, case.m, &mut rng),
        };
        let b = match case.opb {
            Op::None => Matrix::random(case.k, case.n, &mut rng),
            _ => Matrix::random(case.n, case.k, &mut rng),
        };
        for &threads in &thread_counts {
            // `set_threads` swaps the global executor pool at runtime, so a
            // single process can sweep thread counts (the old RAYON env-var
            // dance is gone along with the rayon shim on this path).
            koala_exec::set_threads(threads);
            let (packed_s, cmacs, rmacs) = time_best(reps, || {
                std::hint::black_box(gemm(case.opa, case.opb, &a, &b));
            });
            let (seed_s, _, _) = time_best(reps, || {
                std::hint::black_box(run_seed(case, &a, &b));
            });
            let hw_flops = 8.0 * cmacs as f64 + 2.0 * rmacs as f64;
            let gf = hw_flops / packed_s / 1e9;
            let seed_gf = hw_flops / seed_s / 1e9;
            let speedup = seed_s / packed_s;
            println!(
                "{:<18} {:>3} {:>14} {:>9.4} {:>9.2} {:>9.4} {:>9.2} {:>7.2}x",
                case.label,
                threads,
                format!("{}x{}x{}", case.m, case.k, case.n),
                packed_s,
                gf,
                seed_s,
                seed_gf,
                speedup
            );
            results.push(JsonValue::object([
                ("series", JsonValue::str("packed_vs_seed")),
                ("label", JsonValue::str(case.label)),
                ("m", JsonValue::num(case.m as f64)),
                ("k", JsonValue::num(case.k as f64)),
                ("n", JsonValue::num(case.n as f64)),
                ("opa", JsonValue::str(op_name(case.opa))),
                ("opb", JsonValue::str(op_name(case.opb))),
                ("threads", JsonValue::num(threads as f64)),
                ("complex_macs", JsonValue::num(cmacs as f64)),
                ("real_macs", JsonValue::num(rmacs as f64)),
                ("packed_seconds", JsonValue::num(packed_s)),
                ("packed_gflops", JsonValue::num(gf)),
                ("seed_seconds", JsonValue::num(seed_s)),
                ("seed_gflops", JsonValue::num(seed_gf)),
                ("speedup_vs_seed", JsonValue::num(speedup)),
            ]));
        }
    }

    println!();
    println!(
        "{:<18} {:>3} {:>14} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "real case", "thr", "shape", "real_s", "eff_GF/s", "cplx_s", "cplx_GF", "speedup"
    );
    for case in real_grid {
        let mut rng = StdRng::seed_from_u64(case_seed(
            "real_vs_complex",
            case.label,
            &[case.m, case.k, case.n],
        ));
        let (a_rows, a_cols) =
            if case.opa == Op::None { (case.m, case.k) } else { (case.k, case.m) };
        let (b_rows, b_cols) =
            if case.opb == Op::None { (case.k, case.n) } else { (case.n, case.k) };
        // Hint-carrying real operands vs genuinely complex operands of the
        // same shape.
        let a_real = Matrix::random_real(a_rows, a_cols, &mut rng);
        let b_real = Matrix::random_real(b_rows, b_cols, &mut rng);
        let a_cplx = Matrix::random(a_rows, a_cols, &mut rng);
        let b_cplx = Matrix::random(b_rows, b_cols, &mut rng);
        assert!(a_real.is_real() && b_real.is_real());
        for &threads in &thread_counts {
            koala_exec::set_threads(threads);
            let (real_s, real_cm, real_rm) = time_best(reps, || {
                std::hint::black_box(gemm(case.opa, case.opb, &a_real, &b_real));
            });
            let (cplx_s, cplx_cm, cplx_rm) = time_best(reps, || {
                std::hint::black_box(gemm(case.opa, case.opb, &a_cplx, &b_cplx));
            });
            assert_eq!(real_cm, 0, "real series must run entirely on the real kernel");
            assert_eq!(cplx_rm, 0, "complex series must run entirely on the complex kernel");
            let macs = (case.m * case.k * case.n) as f64;
            debug_assert_eq!(real_rm as f64, macs);
            // Effective rate: both runs solve the same m x n x k problem, so
            // both are credited its 8 * m * n * k complex-equivalent flops —
            // the ratio equals the wall-time speedup.
            let real_eff_gf = 8.0 * macs / real_s / 1e9;
            let cplx_gf = 8.0 * cplx_cm as f64 / cplx_s / 1e9;
            // Hardware rate: flops the real kernel actually executed.
            let real_hw_gf = 2.0 * real_rm as f64 / real_s / 1e9;
            let speedup = cplx_s / real_s;
            println!(
                "{:<18} {:>3} {:>14} {:>9.4} {:>9.2} {:>9.4} {:>9.2} {:>7.2}x",
                case.label,
                threads,
                format!("{}x{}x{}", case.m, case.k, case.n),
                real_s,
                real_eff_gf,
                cplx_s,
                cplx_gf,
                speedup
            );
            results.push(JsonValue::object([
                ("series", JsonValue::str("real_vs_complex")),
                ("label", JsonValue::str(case.label)),
                ("m", JsonValue::num(case.m as f64)),
                ("k", JsonValue::num(case.k as f64)),
                ("n", JsonValue::num(case.n as f64)),
                ("opa", JsonValue::str(op_name(case.opa))),
                ("opb", JsonValue::str(op_name(case.opb))),
                ("threads", JsonValue::num(threads as f64)),
                ("real_macs", JsonValue::num(real_rm as f64)),
                ("complex_macs", JsonValue::num(cplx_cm as f64)),
                ("real_seconds", JsonValue::num(real_s)),
                ("real_effective_gflops", JsonValue::num(real_eff_gf)),
                ("real_hw_gflops", JsonValue::num(real_hw_gf)),
                ("complex_seconds", JsonValue::num(cplx_s)),
                ("complex_gflops", JsonValue::num(cplx_gf)),
                ("speedup_real_vs_complex", JsonValue::num(speedup)),
            ]));
        }
    }
    // Executor thread-scaling sweep on one representative shape. The sweep
    // always includes 1/2/4 so the recorded trajectory is comparable across
    // hosts; `host_cpus` in the document header says how many of those
    // threads had their own core (on the 1-CPU CI container all rows time
    // the same serial hardware and the honest speedup is ~1.0).
    println!();
    println!(
        "{:<18} {:>3} {:>14} {:>9} {:>9} {:>8}",
        "threads_scaling", "thr", "shape", "packed_s", "GF/s", "vs_1thr"
    );
    {
        let label = "square_512";
        let (m, k, n) = (512usize, 512, 512);
        let mut rng = StdRng::seed_from_u64(case_seed("threads_scaling", label, &[m, k, n]));
        let a = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        let mut serial_s = f64::NAN;
        let mut sweep: Vec<usize> = vec![1, 2, 4];
        if all_threads > 4 && !sweep.contains(&all_threads) {
            sweep.push(all_threads);
        }
        for &threads in &sweep {
            koala_exec::set_threads(threads);
            let (secs, cmacs, rmacs) = time_best(reps, || {
                std::hint::black_box(gemm(Op::None, Op::None, &a, &b));
            });
            if threads == 1 {
                serial_s = secs;
            }
            let hw_flops = 8.0 * cmacs as f64 + 2.0 * rmacs as f64;
            let gf = hw_flops / secs / 1e9;
            let speedup = serial_s / secs;
            println!(
                "{:<18} {:>3} {:>14} {:>9.4} {:>9.2} {:>7.2}x",
                label,
                threads,
                format!("{m}x{k}x{n}"),
                secs,
                gf,
                speedup
            );
            results.push(JsonValue::object([
                ("series", JsonValue::str("threads_scaling")),
                ("label", JsonValue::str(label)),
                ("m", JsonValue::num(m as f64)),
                ("k", JsonValue::num(k as f64)),
                ("n", JsonValue::num(n as f64)),
                ("opa", JsonValue::str("N")),
                ("opb", JsonValue::str("N")),
                ("threads", JsonValue::num(threads as f64)),
                ("complex_macs", JsonValue::num(cmacs as f64)),
                ("packed_seconds", JsonValue::num(secs)),
                ("packed_gflops", JsonValue::num(gf)),
                ("speedup_vs_1_thread", JsonValue::num(speedup)),
            ]));
        }
    }
    koala_exec::set_threads(1);

    let doc = JsonValue::object([
        ("bench", JsonValue::str("gemm")),
        ("schema_version", JsonValue::num(4.0)),
        ("flop_convention", JsonValue::str("complex MAC = 8 real flops; real MAC = 2 real flops")),
        ("threads_available", JsonValue::num(all_threads as f64)),
        ("host_cpus", JsonValue::num(all_threads as f64)),
        ("results", JsonValue::Array(results)),
    ]);
    match std::fs::write(&json_path, doc.pretty()) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("failed to write {json_path}: {e}"),
    }
}
