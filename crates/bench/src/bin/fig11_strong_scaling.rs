//! Figure 11: strong scaling of PEPS evolution (one TEBD layer), PEPS
//! contraction (IBMPS, no physical indices), and a SUMMA distributed GEMM as
//! the number of cores grows, with the problem size held fixed.
//!
//! The virtual cluster executes on one machine, so each workload's curve is
//! the *predicted* parallel time: per-rank work and communication counters
//! measured from real data movement, priced by the cost model calibrated
//! from the committed `BENCH_gemm.json`
//! ([`koala_bench::calibrated_cost_model`]). Every predicted curve is paired
//! with its *ideal* curve (the one-rank prediction divided by the rank
//! count), so the gap shows exactly where communication, latency, and load
//! imbalance leave the ideal-speedup line — the comparison the paper's
//! Figure 11 makes against its own linear-scaling guides.

use koala_bench::{calibrated_cost_model, BenchArgs, Figure, Series};
use koala_cluster::{Cluster, DistMatrix};
use koala_linalg::{c64, expm_hermitian, Matrix};
use koala_peps::operators::{kron, pauli_x, pauli_z};
use koala_peps::{
    dist_contract_no_phys, dist_tebd_layer, ContractionMethod, DistEvolutionVariant, Peps,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Append the `t(1)/P` ideal-scaling curve derived from a predicted series.
fn ideal_of(predicted: &Series, label: &str) -> Series {
    let mut ideal = Series::new(label);
    if let Some(first) = predicted.points.first() {
        let t1 = first.y * first.x; // normalise in case the series starts at P > 1
        for p in &predicted.points {
            ideal.push(p.x, t1 / p.x);
        }
    }
    ideal
}

fn main() {
    let args = BenchArgs::parse();
    let (side, r_evo, r_con): (usize, usize, usize) =
        if args.quick { (4, 4, 6) } else { (6, 6, 8) };
    let n_gemm: usize = if args.quick { 96 } else { 192 };
    let rank_counts: Vec<usize> =
        if args.quick { vec![1, 2, 4, 8, 16] } else { vec![1, 2, 4, 8, 16, 32, 64] };
    let model = calibrated_cost_model();
    let gate = expm_hermitian(
        &(&kron(&pauli_x(), &pauli_x()) + &kron(&pauli_z(), &pauli_z())),
        c64(-0.05, 0.0),
    )
    .unwrap();

    let mut fig = Figure::new(
        "fig11",
        &format!(
            "Strong scaling on a {side}x{side} PEPS (evolution r={r_evo}, contraction r=m={r_con}) \
             and a {n_gemm}x{n_gemm} SUMMA GEMM, calibrated cost model"
        ),
        "virtual ranks (cores)",
        "predicted parallel time (seconds)",
    );
    let mut evo = Series::new(format!("Evolution: {side}x{side}, r = {r_evo} (predicted)"));
    let mut con = Series::new(format!("Contraction: {side}x{side}, r = {r_con} (predicted)"));
    let mut summa = Series::new(format!("SUMMA GEMM: n = {n_gemm} (predicted, serialized)"));
    // The overlap-aware model prices round k+1's panel broadcasts as hidden
    // behind round k's local GEMM (max(comm, compute) per round plus the
    // pipeline fill), so its curve bends below the serialized prediction
    // wherever the rounds are compute-bound.
    let mut summa_overlap =
        Series::new(format!("SUMMA GEMM: n = {n_gemm} (predicted, comm/compute overlap)"));
    // The compute critical path (max per-rank complex MACs) isolates how well
    // the work itself strong-scales, independent of the latency floor that
    // dominates laptop-sized problems (see EXPERIMENTS.md).
    let mut evo_compute = Series::new("Evolution: compute critical path (max rank flops)");
    let mut con_compute = Series::new("Contraction: compute critical path (max rank flops)");

    for &ranks in &rank_counts {
        let mut rng = StdRng::seed_from_u64(11_000 + ranks as u64);
        let base = Peps::random(side, side, 2, r_evo, &mut rng);
        let cluster = Cluster::new(ranks);
        let mut p = base.clone();
        dist_tebd_layer(&cluster, &mut p, &gate, r_evo, DistEvolutionVariant::LocalGramQrSvd)
            .unwrap();
        let stats = cluster.stats();
        let t_evo = model.modelled_time(&stats);
        evo.push(ranks as f64, t_evo);

        let peps_c = Peps::random_no_phys(side, side, r_con, &mut rng);
        let cluster = Cluster::new(ranks);
        let _ = dist_contract_no_phys(&cluster, &peps_c, ContractionMethod::ibmps(r_con), &mut rng)
            .unwrap();
        let stats_c = cluster.stats();
        let t_con = model.modelled_time(&stats_c);
        con.push(ranks as f64, t_con);
        evo_compute.push(ranks as f64, stats.max_rank_flops() as f64);
        con_compute.push(ranks as f64, stats_c.max_rank_flops() as f64);

        // SUMMA distributed GEMM on the near-square grid for this rank count:
        // the per-rank local products run the packed kernel, the panels move
        // O(n^2 / sqrt(P)) words per rank. The block size shrinks with the
        // grid so every grid row/column owns at least one block at every
        // measured rank count — otherwise the largest grids would leave
        // whole rank rows idle and the curve would measure a smaller
        // effective grid, not strong scaling.
        let a = Matrix::random(n_gemm, n_gemm, &mut rng);
        let b = Matrix::random(n_gemm, n_gemm, &mut rng);
        let cluster_g = Cluster::new(ranks);
        let grid = cluster_g.grid();
        let row_block = n_gemm.div_ceil(grid.rows()).clamp(1, 32);
        let col_block = n_gemm.div_ceil(grid.cols()).clamp(1, 32);
        let da = DistMatrix::scatter_block_cyclic(&cluster_g, &a, grid, row_block, col_block);
        let db = DistMatrix::scatter_block_cyclic(&cluster_g, &b, grid, row_block, col_block);
        cluster_g.reset_stats(); // the scatter is setup, not the timed GEMM
        let _ = da.matmul_dist(&db).expect("fault-free SUMMA cannot fail");
        let stats_g = cluster_g.stats();
        let t_summa = model.modelled_time(&stats_g);
        summa.push(ranks as f64, t_summa);
        let t_summa_ov = model.modelled_time_overlap(&stats_g);
        summa_overlap.push(ranks as f64, t_summa_ov);

        println!(
            "ranks={ranks:<3} evolution: t={t_evo:.4}s max_flops={:.3e} imbalance={:.2} | \
             contraction: t={t_con:.4}s max_flops={:.3e} comm={:.2} MB | \
             summa({}x{} grid): t={t_summa:.6}s overlap={t_summa_ov:.6}s comm={:.3} MB",
            stats.max_rank_flops() as f64,
            stats.load_imbalance(),
            stats_c.max_rank_flops() as f64,
            stats_c.bytes_communicated as f64 / 1e6,
            grid.rows(),
            grid.cols(),
            stats_g.bytes_communicated as f64 / 1e6,
        );
    }

    let evo_ideal = ideal_of(&evo, "Evolution: ideal scaling (t1 / P)");
    let con_ideal = ideal_of(&con, "Contraction: ideal scaling (t1 / P)");
    let summa_ideal = ideal_of(&summa, "SUMMA GEMM: ideal scaling (t1 / P)");
    fig.add(evo);
    fig.add(evo_ideal);
    fig.add(con);
    fig.add(con_ideal);
    fig.add(summa);
    fig.add(summa_overlap);
    fig.add(summa_ideal);
    fig.add(evo_compute);
    fig.add(con_compute);
    fig.print();
    fig.maybe_write_json(&args);
}
