//! Figure 11: strong scaling of PEPS evolution (one TEBD layer) and PEPS
//! contraction (IBMPS, no physical indices) as the number of cores grows,
//! with the problem size held fixed.
//!
//! The virtual cluster executes on one machine, so the scaling curve is the
//! *modelled* parallel time derived from the per-rank work and communication
//! counters (see DESIGN.md §1); the useful-work and traffic numbers are
//! measured from real data movement.

use koala_bench::{BenchArgs, Figure, Series};
use koala_cluster::{Cluster, CostModel};
use koala_linalg::{c64, expm_hermitian};
use koala_peps::operators::{kron, pauli_x, pauli_z};
use koala_peps::{
    dist_contract_no_phys, dist_tebd_layer, ContractionMethod, DistEvolutionVariant, Peps,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = BenchArgs::parse();
    let (side, r_evo, r_con): (usize, usize, usize) =
        if args.quick { (4, 4, 6) } else { (6, 6, 8) };
    let rank_counts: Vec<usize> =
        if args.quick { vec![1, 2, 4, 8, 16] } else { vec![1, 2, 4, 8, 16, 32, 64] };
    let model = CostModel::default();
    let gate = expm_hermitian(
        &(&kron(&pauli_x(), &pauli_x()) + &kron(&pauli_z(), &pauli_z())),
        c64(-0.05, 0.0),
    )
    .unwrap();

    let mut fig = Figure::new(
        "fig11",
        &format!(
            "Strong scaling on a {side}x{side} PEPS (evolution r={r_evo}, contraction r=m={r_con})"
        ),
        "virtual ranks (cores)",
        "modelled parallel time (seconds)",
    );
    let mut evo = Series::new(format!("Evolution: {side}x{side}, r = {r_evo}"));
    let mut con = Series::new(format!("Contraction: {side}x{side}, r = {r_con}"));
    // The compute critical path (max per-rank flops) isolates how well the
    // work itself strong-scales, independent of the latency floor that
    // dominates laptop-sized problems (see EXPERIMENTS.md).
    let mut evo_compute = Series::new("Evolution: compute critical path (max rank flops)");
    let mut con_compute = Series::new("Contraction: compute critical path (max rank flops)");

    for &ranks in &rank_counts {
        let mut rng = StdRng::seed_from_u64(11_000 + ranks as u64);
        let base = Peps::random(side, side, 2, r_evo, &mut rng);
        let cluster = Cluster::new(ranks);
        let mut p = base.clone();
        dist_tebd_layer(&cluster, &mut p, &gate, r_evo, DistEvolutionVariant::LocalGramQrSvd)
            .unwrap();
        let stats = cluster.stats();
        let t_evo = model.modelled_time(&stats);
        evo.push(ranks as f64, t_evo);

        let peps_c = Peps::random_no_phys(side, side, r_con, &mut rng);
        let cluster = Cluster::new(ranks);
        let _ = dist_contract_no_phys(&cluster, &peps_c, ContractionMethod::ibmps(r_con), &mut rng)
            .unwrap();
        let stats_c = cluster.stats();
        let t_con = model.modelled_time(&stats_c);
        con.push(ranks as f64, t_con);
        evo_compute.push(ranks as f64, stats.max_rank_flops() as f64);
        con_compute.push(ranks as f64, stats_c.max_rank_flops() as f64);

        println!(
            "ranks={ranks:<3} evolution: t={t_evo:.4}s max_flops={:.3e} imbalance={:.2} | contraction: t={t_con:.4}s max_flops={:.3e} comm={:.2} MB",
            stats.max_rank_flops() as f64,
            stats.load_imbalance(),
            stats_c.max_rank_flops() as f64,
            stats_c.bytes_communicated as f64 / 1e6
        );
    }

    fig.add(evo);
    fig.add(con);
    fig.add(evo_compute);
    fig.add(con_compute);
    fig.print();
    fig.maybe_write_json(&args);
}
