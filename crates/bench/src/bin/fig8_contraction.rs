//! Figure 8 (and the §VI-B "highest achievable bond dimension" study):
//! running time of fully contracting a PEPS as the bond dimension grows,
//! comparing the Exact algorithm, BMPS, IBMPS, and two-layer IBMPS.
//!
//! Paper setup: 8x8 PEPS without physical indices on one node (a) and a 15x15
//! PEPS on 16 nodes (b). Scaled-down defaults: 5x5 (quick) / 6x6 lattice for
//! the one-layer methods, and a 4x4 PEPS with physical indices for the
//! two-layer inner-product methods. The distributed comparison reports the
//! modelled parallel time of the cluster-backed contraction.

use koala_bench::{calibrated_cost_model, time_it, BenchArgs, Figure, Series};
use koala_cluster::Cluster;
use koala_peps::two_layer::{norm_sqr_two_layer, TwoLayerOptions};
use koala_peps::{contract_no_phys, dist_contract_no_phys, norm_sqr, ContractionMethod, Peps};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = BenchArgs::parse();
    let (side, bonds, exact_max): (usize, Vec<usize>, usize) =
        if args.quick { (5, vec![2, 3, 4], 3) } else { (6, vec![2, 3, 4, 6, 8, 12], 4) };

    let mut fig = Figure::new(
        "fig8",
        &format!("Full contraction of a {side}x{side} PEPS (no physical indices), m = r"),
        "bond dimension r",
        "seconds",
    );
    let mut s_exact = Series::new("Exact (local)");
    let mut s_bmps = Series::new("BMPS (local)");
    let mut s_ibmps = Series::new("IBMPS (local)");
    let mut s_bmps_ctf = Series::new("BMPS (ctf, modelled parallel time, 16 ranks)");
    let mut s_ibmps_ctf = Series::new("IBMPS (ctf, modelled parallel time, 16 ranks)");
    let model = calibrated_cost_model();

    for &r in &bonds {
        let mut rng = StdRng::seed_from_u64(8_000 + r as u64);
        let peps = Peps::random_no_phys(side, side, r, &mut rng);

        if r <= exact_max {
            let (_, secs) =
                time_it(|| contract_no_phys(&peps, ContractionMethod::Exact, &mut rng).unwrap());
            s_exact.push(r as f64, secs);
            println!("exact  r={r:<3} wall={secs:.3}s");
        }
        let (_, secs) =
            time_it(|| contract_no_phys(&peps, ContractionMethod::bmps(r), &mut rng).unwrap());
        s_bmps.push(r as f64, secs);
        println!("bmps   r={r:<3} wall={secs:.3}s");
        let (_, secs) =
            time_it(|| contract_no_phys(&peps, ContractionMethod::ibmps(r), &mut rng).unwrap());
        s_ibmps.push(r as f64, secs);
        println!("ibmps  r={r:<3} wall={secs:.3}s");

        for (method, series, label) in [
            (ContractionMethod::bmps(r), &mut s_bmps_ctf, "bmps-ctf"),
            (ContractionMethod::ibmps(r), &mut s_ibmps_ctf, "ibmps-ctf"),
        ] {
            let cluster = Cluster::new(16);
            let _ = dist_contract_no_phys(&cluster, &peps, method, &mut rng).unwrap();
            let t = model.modelled_time(&cluster.stats());
            series.push(r as f64, t);
            println!("{label} r={r:<3} modelled={t:.4}s");
        }
    }

    // Two-layer comparison: norm of a PEPS with physical indices.
    let mut s_merged = Series::new("norm via merged BMPS (4x4 PEPS with physical indices)");
    let mut s_two_layer = Series::new("norm via two-layer IBMPS (4x4 PEPS with physical indices)");
    let phys_bonds: Vec<usize> = if args.quick { vec![2, 3] } else { vec![2, 3, 4] };
    for &r in &phys_bonds {
        let mut rng = StdRng::seed_from_u64(8_100 + r as u64);
        let peps = Peps::random(4, 4, 2, r, &mut rng);
        let m = r * r;
        let (_, secs) = time_it(|| norm_sqr(&peps, ContractionMethod::bmps(m), &mut rng).unwrap());
        s_merged.push(r as f64, secs);
        println!("merged-bmps    r={r:<3} (m={m}) wall={secs:.3}s");
        let (_, secs) =
            time_it(|| norm_sqr_two_layer(&peps, TwoLayerOptions::with_bond(m), &mut rng).unwrap());
        s_two_layer.push(r as f64, secs);
        println!("two-layer ibmps r={r:<3} (m={m}) wall={secs:.3}s");
    }

    fig.add(s_exact);
    fig.add(s_bmps);
    fig.add(s_ibmps);
    fig.add(s_bmps_ctf);
    fig.add(s_ibmps_ctf);
    fig.add(s_merged);
    fig.add(s_two_layer);
    fig.print();
    fig.maybe_write_json(&args);
}
