//! Figure 12: weak scaling — the bond dimension grows with the number of
//! ranks so the memory per rank stays roughly constant, and the reported
//! metric is the useful flop rate per core under the calibrated cluster cost
//! model ([`koala_bench::calibrated_cost_model`]).
//!
//! Paper setup: evolution bond dimensions r = 70..280 and contraction bond
//! dimensions m = 80..320 over 2^6..2^12 cores. Scaled-down default: the bond
//! dimension grows as ranks^(1/4) from a small base so a single machine can
//! execute every point. Each predicted curve is compared against the *ideal*
//! flat line — the calibrated per-rank kernel peak the cost model charges
//! for an all-complex workload — so the vertical gap is exactly the
//! communication + latency + imbalance overhead, mirroring how the paper
//! reads its Figure 12 against the machine peak.

use koala_bench::{calibrated_cost_model, BenchArgs, Figure, Series};
use koala_cluster::{Cluster, DistMatrix};
use koala_linalg::{c64, expm_hermitian, Matrix};
use koala_peps::operators::{kron, pauli_x, pauli_z};
use koala_peps::{
    dist_contract_no_phys, dist_tebd_layer, ContractionMethod, DistEvolutionVariant, Peps,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = BenchArgs::parse();
    let side = if args.quick { 4 } else { 6 };
    let rank_counts: Vec<usize> = if args.quick { vec![1, 4, 16] } else { vec![1, 4, 16, 64] };
    let (r_base, m_base) = (3usize, 4usize);
    let model = calibrated_cost_model();
    let gate = expm_hermitian(
        &(&kron(&pauli_x(), &pauli_x()) + &kron(&pauli_z(), &pauli_z())),
        c64(-0.05, 0.0),
    )
    .unwrap();

    let mut fig = Figure::new(
        "fig12",
        &format!(
            "Weak scaling on a {side}x{side} PEPS (bond dimension grows with rank count), \
             calibrated cost model"
        ),
        "virtual ranks (cores)",
        "predicted useful Gflop/s per core",
    );
    let mut evo = Series::new("Evolution: scale r (predicted)");
    let mut con = Series::new("Contraction: scale m (predicted)");
    // Weak-scaled SUMMA GEMM (n ~ sqrt(ranks) keeps n^2/P per rank fixed),
    // rated by both communication models: the serialized rate pays every
    // panel broadcast on the critical path, the overlap-aware rate hides
    // round k+1's broadcast behind round k's GEMM, so its curve sits higher
    // and bends away as the grids grow.
    let mut summa = Series::new("SUMMA GEMM: scale n (predicted, serialized)");
    let mut summa_overlap = Series::new("SUMMA GEMM: scale n (predicted, comm/compute overlap)");
    let mut ideal = Series::new("Ideal: calibrated per-rank kernel peak");
    let peak_gflops = model.complex_peak_flops() / 1e9;
    let n_gemm_base = if args.quick { 48 } else { 96 };

    for &ranks in &rank_counts {
        // Per-rank memory of the dominant site tensors scales like r^4 / ranks,
        // so growing r ~ ranks^(1/4) keeps it constant; we use a slightly
        // faster growth to keep the points distinguishable at small scale.
        let scale = (ranks as f64).powf(0.25);
        let r = ((r_base as f64) * scale).round() as usize;
        let m = ((m_base as f64) * scale).round() as usize;

        let mut rng = StdRng::seed_from_u64(12_000 + ranks as u64);
        let base = Peps::random(side, side, 2, r, &mut rng);
        let cluster = Cluster::new(ranks);
        let mut p = base.clone();
        dist_tebd_layer(&cluster, &mut p, &gate, r, DistEvolutionVariant::LocalGramQrSvd).unwrap();
        let stats = cluster.stats();
        // flop_rate_per_rank already prices hardware flops (8 per complex
        // MAC, 2 per real MAC), directly comparable to bench_gemm's rates.
        let gflops_evo = model.flop_rate_per_rank(&stats) / 1e9;
        evo.push(ranks as f64, gflops_evo);

        let peps_c = Peps::random_no_phys(side, side, m, &mut rng);
        let cluster = Cluster::new(ranks);
        let _ = dist_contract_no_phys(&cluster, &peps_c, ContractionMethod::ibmps(m), &mut rng)
            .unwrap();
        let stats_c = cluster.stats();
        let gflops_con = model.flop_rate_per_rank(&stats_c) / 1e9;
        con.push(ranks as f64, gflops_con);
        ideal.push(ranks as f64, peak_gflops);

        let n_gemm = ((n_gemm_base as f64) * (ranks as f64).sqrt()).round() as usize;
        let a = Matrix::random(n_gemm, n_gemm, &mut rng);
        let b = Matrix::random(n_gemm, n_gemm, &mut rng);
        let cluster_g = Cluster::new(ranks);
        let grid = cluster_g.grid();
        let row_block = n_gemm.div_ceil(grid.rows()).clamp(1, 32);
        let col_block = n_gemm.div_ceil(grid.cols()).clamp(1, 32);
        let da = DistMatrix::scatter_block_cyclic(&cluster_g, &a, grid, row_block, col_block);
        let db = DistMatrix::scatter_block_cyclic(&cluster_g, &b, grid, row_block, col_block);
        cluster_g.reset_stats(); // the scatter is setup, not the timed GEMM
        let _ = da.matmul_dist(&db).expect("fault-free SUMMA cannot fail");
        let stats_g = cluster_g.stats();
        let gflops_summa = model.flop_rate_per_rank(&stats_g) / 1e9;
        let gflops_summa_ov = model.flop_rate_per_rank_overlap(&stats_g) / 1e9;
        summa.push(ranks as f64, gflops_summa);
        summa_overlap.push(ranks as f64, gflops_summa_ov);

        println!(
            "ranks={ranks:<3} r={r:<3} m={m:<3} evolution={gflops_evo:.3} Gflop/s/core \
             contraction={gflops_con:.3} Gflop/s/core \
             summa(n={n_gemm})={gflops_summa:.3}/{gflops_summa_ov:.3} Gflop/s/core \
             serialized/overlap (ideal peak {peak_gflops:.3})"
        );
    }

    fig.add(evo);
    fig.add(con);
    fig.add(summa);
    fig.add(summa_overlap);
    fig.add(ideal);
    fig.print();
    fig.maybe_write_json(&args);
}
