//! Figure 12: weak scaling — the bond dimension grows with the number of
//! ranks so the memory per rank stays roughly constant, and the reported
//! metric is the useful flop rate per core under the cluster cost model.
//!
//! Paper setup: evolution bond dimensions r = 70..280 and contraction bond
//! dimensions m = 80..320 over 2^6..2^12 cores. Scaled-down default: the bond
//! dimension grows as ranks^(1/2) from a small base so a single machine can
//! execute every point.

use koala_bench::{BenchArgs, Figure, Series};
use koala_cluster::{Cluster, CostModel};
use koala_linalg::{c64, expm_hermitian};
use koala_peps::operators::{kron, pauli_x, pauli_z};
use koala_peps::{
    dist_contract_no_phys, dist_tebd_layer, ContractionMethod, DistEvolutionVariant, Peps,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = BenchArgs::parse();
    let side = if args.quick { 4 } else { 6 };
    let rank_counts: Vec<usize> = if args.quick { vec![1, 4, 16] } else { vec![1, 4, 16, 64] };
    let (r_base, m_base) = (3usize, 4usize);
    let model = CostModel::default();
    let gate = expm_hermitian(
        &(&kron(&pauli_x(), &pauli_x()) + &kron(&pauli_z(), &pauli_z())),
        c64(-0.05, 0.0),
    )
    .unwrap();

    let mut fig = Figure::new(
        "fig12",
        &format!("Weak scaling on a {side}x{side} PEPS (bond dimension grows with rank count)"),
        "virtual ranks (cores)",
        "modelled useful Gflop/s per core",
    );
    let mut evo = Series::new("Evolution: scale r");
    let mut con = Series::new("Contraction: scale m");

    for &ranks in &rank_counts {
        // Per-rank memory of the dominant site tensors scales like r^4 / ranks,
        // so growing r ~ ranks^(1/4) keeps it constant; we use a slightly
        // faster growth to keep the points distinguishable at small scale.
        let scale = (ranks as f64).powf(0.25);
        let r = ((r_base as f64) * scale).round() as usize;
        let m = ((m_base as f64) * scale).round() as usize;

        let mut rng = StdRng::seed_from_u64(12_000 + ranks as u64);
        let base = Peps::random(side, side, 2, r, &mut rng);
        let cluster = Cluster::new(ranks);
        let mut p = base.clone();
        dist_tebd_layer(&cluster, &mut p, &gate, r, DistEvolutionVariant::LocalGramQrSvd).unwrap();
        let stats = cluster.stats();
        // Complex multiply-add = 8 real flops.
        let gflops_evo = model.flop_rate_per_rank(&stats) * 8.0 / 1e9;
        evo.push(ranks as f64, gflops_evo);

        let peps_c = Peps::random_no_phys(side, side, m, &mut rng);
        let cluster = Cluster::new(ranks);
        let _ = dist_contract_no_phys(&cluster, &peps_c, ContractionMethod::ibmps(m), &mut rng)
            .unwrap();
        let stats_c = cluster.stats();
        let gflops_con = model.flop_rate_per_rank(&stats_c) * 8.0 / 1e9;
        con.push(ranks as f64, gflops_con);

        println!(
            "ranks={ranks:<3} r={r:<3} m={m:<3} evolution={gflops_evo:.3} Gflop/s/core contraction={gflops_con:.3} Gflop/s/core"
        );
    }

    fig.add(evo);
    fig.add(con);
    fig.print();
    fig.maybe_write_json(&args);
}
