//! Figure 7: running time of one layer of TEBD operators versus bond
//! dimension, comparing the local (threaded) backend against the simulated
//! distributed backend and its three QR-SVD variants.
//!
//! Paper setup: (a) 8x8 PEPS on one node, NumPy vs CTF; (b) 15x15 PEPS on
//! 16 nodes, three CTF variants. Scaled-down defaults: (a) 4x4 (quick) / 6x6
//! lattice; (b) the same lattice on a 16-rank virtual cluster, reporting both
//! wall-clock and modelled parallel time.

use koala_bench::{calibrated_cost_model, time_it, BenchArgs, Figure, Series};
use koala_cluster::Cluster;
use koala_linalg::{c64, expm_hermitian};
use koala_peps::operators::{kron, pauli_x, pauli_z};
use koala_peps::{
    apply_two_site_everywhere, dist_tebd_layer, DistEvolutionVariant, Peps, UpdateMethod,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tebd_gate() -> koala_linalg::Matrix {
    let h = &kron(&pauli_x(), &pauli_x()) + &kron(&pauli_z(), &pauli_z());
    expm_hermitian(&h, c64(-0.05, 0.0)).unwrap()
}

fn main() {
    let args = BenchArgs::parse();
    let (side, bonds): (usize, Vec<usize>) =
        if args.quick { (4, vec![2, 3, 4]) } else { (6, vec![2, 3, 4, 6, 8]) };
    let nranks = 16;
    let model = calibrated_cost_model();
    let gate = tebd_gate();

    let mut fig = Figure::new(
        "fig7",
        &format!(
            "One TEBD layer on a {side}x{side} PEPS ({nranks}-rank virtual cluster for ctf-*)"
        ),
        "bond dimension r",
        "seconds (wall clock; ctf-* also reports modelled parallel time)",
    );

    let mut local = Series::new("local-qr-svd (threaded backend, wall clock)");
    let mut variants: Vec<(DistEvolutionVariant, Series, Series)> = vec![
        DistEvolutionVariant::CtfQrSvd,
        DistEvolutionVariant::LocalGramQr,
        DistEvolutionVariant::LocalGramQrSvd,
    ]
    .into_iter()
    .map(|v| {
        (
            v,
            Series::new(format!("{} (wall clock)", v.label())),
            Series::new(format!("{} (modelled parallel time)", v.label())),
        )
    })
    .collect();

    for &r in &bonds {
        let mut rng = StdRng::seed_from_u64(7_000 + r as u64);
        let base = Peps::random(side, side, 2, r, &mut rng);

        let mut p = base.clone();
        let (_, secs) =
            time_it(|| apply_two_site_everywhere(&mut p, &gate, UpdateMethod::qr_svd(r)).unwrap());
        local.push(r as f64, secs);
        println!("local  r={r:<3} wall={secs:.3}s");

        for (variant, wall_series, model_series) in variants.iter_mut() {
            let cluster = Cluster::new(nranks);
            let mut p = base.clone();
            let (_, secs) =
                time_it(|| dist_tebd_layer(&cluster, &mut p, &gate, r, *variant).unwrap());
            let stats = cluster.stats();
            let modelled = model.modelled_time(&stats);
            wall_series.push(r as f64, secs);
            model_series.push(r as f64, modelled);
            println!(
                "{:<24} r={r:<3} wall={secs:.3}s modelled={modelled:.4}s  [{stats}]",
                variant.label()
            );
        }
    }

    fig.add(local);
    for (_, wall, modelled) in variants {
        fig.add(wall);
        fig.add(modelled);
    }
    fig.print();
    fig.maybe_write_json(&args);
}
