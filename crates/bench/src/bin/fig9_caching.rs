//! Figure 9: running time of the expectation-value calculation with and
//! without intermediate (row-environment) caching, as the PEPS side length
//! grows. The observable is the paper's: a one-site operator on every site
//! plus a two-site operator on every pair of neighbouring sites.

use koala_bench::{time_it, BenchArgs, Figure, Series};
use koala_peps::expectation::{expectation, ExpectationOptions};
use koala_peps::operators::{kron, pauli_x, pauli_z, Observable};
use koala_peps::{ContractionMethod, Peps};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn full_lattice_observable(n: usize) -> Observable {
    let mut obs = Observable::zero();
    for r in 0..n {
        for c in 0..n {
            obs.add_one_site((r, c), pauli_x());
        }
    }
    let zz = kron(&pauli_z(), &pauli_z());
    for r in 0..n {
        for c in 0..n {
            if c + 1 < n {
                obs.add_two_site((r, c), (r, c + 1), zz.clone());
            }
            if r + 1 < n {
                obs.add_two_site((r, c), (r + 1, c), zz.clone());
            }
        }
    }
    obs
}

fn main() {
    let args = BenchArgs::parse();
    let sides: Vec<usize> = if args.quick { vec![2, 3, 4] } else { vec![2, 3, 4, 5, 6] };
    let bond = 4;
    let contraction_bond = 8;

    let mut fig = Figure::new(
        "fig9",
        "Expectation value of a full-lattice observable with and without caching (bond 4)",
        "PEPS side length n",
        "seconds",
    );
    let mut cached = Series::new("IBMPS with cache");
    let mut uncached = Series::new("IBMPS without cache");

    for &n in &sides {
        let mut rng = StdRng::seed_from_u64(9_000 + n as u64);
        let peps = Peps::random(n, n, 2, bond, &mut rng);
        let obs = full_lattice_observable(n);

        let (_, secs_cached) = time_it(|| {
            expectation(
                &peps,
                &obs,
                ExpectationOptions {
                    method: ContractionMethod::ibmps(contraction_bond),
                    use_cache: true,
                },
                &mut rng,
            )
            .unwrap()
        });
        let (_, secs_uncached) = time_it(|| {
            expectation(
                &peps,
                &obs,
                ExpectationOptions {
                    method: ContractionMethod::ibmps(contraction_bond),
                    use_cache: false,
                },
                &mut rng,
            )
            .unwrap()
        });
        cached.push(n as f64, secs_cached);
        uncached.push(n as f64, secs_uncached);
        println!(
            "n={n:<2} terms={:<4} cached={secs_cached:.3}s uncached={secs_uncached:.3}s speed-up={:.2}x",
            obs.len(),
            secs_uncached / secs_cached.max(1e-12)
        );
    }

    fig.add(cached);
    fig.add(uncached);
    fig.print();
    fig.maybe_write_json(&args);
}
