//! Figure 9: running time of the expectation-value calculation with and
//! without intermediate (row-environment) caching, as the PEPS side length
//! grows. The observable is the paper's: a one-site operator on every site
//! plus a two-site operator on every pair of neighbouring sites.

use koala_bench::{time_it, BenchArgs, Figure, Series};
use koala_peps::expectation::{expectation, ExpectationOptions};
use koala_peps::operators::{kron, pauli_x, pauli_z, Observable};
use koala_peps::update::{apply_two_site_everywhere, UpdateMethod};
use koala_peps::{ContractionMethod, Peps};
use koala_tensor::{clear_plan_cache, plan_stats, reset_plan_stats};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn full_lattice_observable(n: usize) -> Observable {
    let mut obs = Observable::zero();
    for r in 0..n {
        for c in 0..n {
            obs.add_one_site((r, c), pauli_x());
        }
    }
    let zz = kron(&pauli_z(), &pauli_z());
    for r in 0..n {
        for c in 0..n {
            if c + 1 < n {
                obs.add_two_site((r, c), (r, c + 1), zz.clone());
            }
            if r + 1 < n {
                obs.add_two_site((r, c), (r + 1, c), zz.clone());
            }
        }
    }
    obs
}

fn main() {
    let args = BenchArgs::parse();
    let sides: Vec<usize> = if args.quick { vec![2, 3, 4] } else { vec![2, 3, 4, 5, 6] };
    let bond = 4;
    let contraction_bond = 8;

    let mut fig = Figure::new(
        "fig9",
        "Expectation value of a full-lattice observable with and without caching (bond 4)",
        "PEPS side length n",
        "seconds",
    );
    let mut cached = Series::new("IBMPS with cache");
    let mut uncached = Series::new("IBMPS without cache");

    for &n in &sides {
        let mut rng = StdRng::seed_from_u64(9_000 + n as u64);
        let peps = Peps::random(n, n, 2, bond, &mut rng);
        let obs = full_lattice_observable(n);

        let (_, secs_cached) = time_it(|| {
            expectation(
                &peps,
                &obs,
                ExpectationOptions {
                    method: ContractionMethod::ibmps(contraction_bond),
                    use_cache: true,
                },
                &mut rng,
            )
            .unwrap()
        });
        let (_, secs_uncached) = time_it(|| {
            expectation(
                &peps,
                &obs,
                ExpectationOptions {
                    method: ContractionMethod::ibmps(contraction_bond),
                    use_cache: false,
                },
                &mut rng,
            )
            .unwrap()
        });
        cached.push(n as f64, secs_cached);
        uncached.push(n as f64, secs_uncached);
        println!(
            "n={n:<2} terms={:<4} cached={secs_cached:.3}s uncached={secs_uncached:.3}s speed-up={:.2}x",
            obs.len(),
            secs_uncached / secs_cached.max(1e-12)
        );
    }

    fig.add(cached);
    fig.add(uncached);

    // Planner overhead: the same TEBD-style evolution steps with the einsum
    // contraction-plan cache warm (plans built once, then replayed) vs
    // cleared before every step (every einsum re-runs parsing, validation,
    // and the greedy ordering search). The gap is the per-step planning cost
    // that the cache converts into a one-time cost.
    let mut planner_cached = Series::new("evolution steps, cached plans");
    let mut planner_uncached = Series::new("evolution steps, planner cache cleared");
    let steps = if args.quick { 4 } else { 16 };
    let zz = kron(&pauli_z(), &pauli_z());
    for &n in &sides {
        let mut rng = StdRng::seed_from_u64(9_100 + n as u64);
        let base = Peps::random(n, n, 2, bond, &mut rng);
        let method = UpdateMethod::qr_svd(bond);

        let mut warm = base.clone();
        clear_plan_cache();
        apply_two_site_everywhere(&mut warm, &zz, method).unwrap(); // plan once
        reset_plan_stats();
        let (_, secs_warm) = time_it(|| {
            for _ in 0..steps {
                apply_two_site_everywhere(&mut warm, &zz, method).unwrap();
            }
        });
        let warm_stats = plan_stats();

        let mut cold = base.clone();
        let (_, secs_cold) = time_it(|| {
            for _ in 0..steps {
                clear_plan_cache();
                apply_two_site_everywhere(&mut cold, &zz, method).unwrap();
            }
        });
        planner_cached.push(n as f64, secs_warm / steps as f64);
        planner_uncached.push(n as f64, secs_cold / steps as f64);
        println!(
            "n={n:<2} planner: warm={:.3e}s/step cold={:.3e}s/step overhead={:.1}% \
             (warm sweep: {} hits, {} misses)",
            secs_warm / steps as f64,
            secs_cold / steps as f64,
            100.0 * (secs_cold - secs_warm) / secs_warm.max(1e-12),
            warm_stats.hits,
            warm_stats.misses,
        );
    }
    fig.add(planner_cached);
    fig.add(planner_uncached);

    fig.print();
    fig.maybe_write_json(&args);
}
