//! Tiny JSON value model and pretty-printer.
//!
//! The build environment cannot fetch `serde`/`serde_json`, and the bench
//! crate only ever *writes* JSON, so this hand-rolled emitter covers that one
//! need: escaped strings, finite numbers (non-finite values serialise as
//! `null`, matching serde_json), arrays, and insertion-ordered objects.

use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Finite double-precision number.
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Ordered array.
    Array(Vec<JsonValue>),
    /// Insertion-ordered object.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Number helper (accepts anything convertible to `f64`).
    pub fn num(x: impl Into<f64>) -> JsonValue {
        JsonValue::Num(x.into())
    }

    /// String helper.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Object helper from `(key, value)` pairs.
    pub fn object<'a>(pairs: impl IntoIterator<Item = (&'a str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{:.1}", x);
                    } else {
                        let _ = write!(out, "{}", x);
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::JsonValue;

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::object([
            ("name", JsonValue::str("a\"b")),
            ("pi", JsonValue::num(3.25)),
            ("whole", JsonValue::num(4.0)),
            ("bad", JsonValue::Num(f64::NAN)),
            ("items", JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null])),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let text = v.pretty();
        assert!(text.contains("\"a\\\"b\""));
        assert!(text.contains("3.25"));
        assert!(text.contains("4.0"));
        assert!(text.contains("\"bad\": null"));
        assert!(text.contains("[]"));
        assert!(text.ends_with("}\n"));
    }
}
