//! Re-export of the shared [`koala_json`] value model.
//!
//! The JSON emitter/parser started life in this crate; it moved to the
//! standalone `koala-json` crate so `koala-cluster` can parse the committed
//! `BENCH_gemm.json` for cost-model calibration without depending on the
//! benchmark harness. This module keeps the historical
//! `koala_bench::json::JsonValue` path working for every figure binary and
//! downstream tool.

pub use koala_json::JsonValue;
