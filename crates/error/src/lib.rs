//! Workspace-level error type and recovery-statistics counters.
//!
//! Every crate in the stack reports failures through [`KoalaError`]: a kind,
//! a message, and a chain of context frames pushed as the error propagates
//! upward (innermost first). Library code never panics on a fallible path —
//! it returns one of these, and the caller either recovers (the
//! numerical-recovery ladder, an ABFT round retry, a checkpoint restore) or
//! surfaces the full chain to the user.
//!
//! Recoveries themselves are observable through the [`recovery`] module: a
//! process-wide set of monotonic counters that the fault-injection tests and
//! the bench harness read to verify *which* path handled a failure, not just
//! that the final numbers came out right.

use std::fmt;

/// Broad classification of a failure. Recovery policies dispatch on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Operand shapes or dimensions are incompatible.
    Shape,
    /// A numerical method failed (singularity, loss of positive-definiteness, ...).
    Numerical,
    /// An iterative method exhausted its budget without converging.
    NoConvergence,
    /// A NaN or infinity was detected where finite data is required.
    NonFinite,
    /// An injected or detected fault in the (simulated) cluster.
    Fault,
    /// A retry/recovery budget was exhausted without success.
    Exhausted,
    /// The caller supplied an invalid parameter.
    InvalidArgument,
    /// An I/O or serialization problem (bench baselines, checkpoints, ...).
    Io,
    /// A task running on the executor panicked (caught and converted).
    TaskPanic,
    /// A task-graph run was cancelled before completion.
    Cancelled,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorKind::Shape => "shape",
            ErrorKind::Numerical => "numerical",
            ErrorKind::NoConvergence => "no-convergence",
            ErrorKind::NonFinite => "non-finite",
            ErrorKind::Fault => "fault",
            ErrorKind::Exhausted => "exhausted",
            ErrorKind::InvalidArgument => "invalid-argument",
            ErrorKind::Io => "io",
            ErrorKind::TaskPanic => "task-panic",
            ErrorKind::Cancelled => "cancelled",
        };
        f.write_str(name)
    }
}

/// The workspace error: a kind, a root message, and a context chain.
///
/// Contexts are pushed innermost-first as the error propagates, so the
/// display reads like a call stack:
///
/// ```text
/// non-finite: NaN in singular values (while: svd of 8x4 gate block; while: two-site update (0,0)-(0,1); while: ITE step 17)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KoalaError {
    kind: ErrorKind,
    message: String,
    context: Vec<String>,
}

impl KoalaError {
    /// Build a new error with no context frames.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        KoalaError { kind, message: message.into(), context: Vec::new() }
    }

    /// The broad classification of this error.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The root message, without context frames.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The context frames, innermost first.
    pub fn contexts(&self) -> &[String] {
        &self.context
    }

    /// Push a context frame describing what the caller was doing.
    #[must_use]
    pub fn context(mut self, frame: impl Into<String>) -> Self {
        self.context.push(frame.into());
        self
    }
}

impl fmt::Display for KoalaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)?;
        if !self.context.is_empty() {
            write!(f, " (")?;
            for (i, frame) in self.context.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "while: {frame}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl std::error::Error for KoalaError {}

/// Convenience alias for results carrying a [`KoalaError`].
pub type Result<T> = std::result::Result<T, KoalaError>;

/// Extension trait adding `.context(...)` to any result convertible into
/// a [`Result`].
pub trait ResultExt<T> {
    /// Wrap the error (if any) with a context frame.
    fn context(self, frame: impl Into<String>) -> Result<T>;
    /// Wrap the error (if any) with a lazily-built context frame.
    fn with_context<F: FnOnce() -> String>(self, frame: F) -> Result<T>;
}

impl<T, E: Into<KoalaError>> ResultExt<T> for std::result::Result<T, E> {
    fn context(self, frame: impl Into<String>) -> Result<T> {
        self.map_err(|e| e.into().context(frame))
    }

    fn with_context<F: FnOnce() -> String>(self, frame: F) -> Result<T> {
        self.map_err(|e| e.into().context(frame()))
    }
}

pub mod recovery {
    //! Process-wide, monotonic counters recording every recovery action.
    //!
    //! Counters only ever increase, so concurrent tests can assert on deltas
    //! (`after.summa_round_retries >= before.summa_round_retries + 1`)
    //! without coordinating over the shared state. Deterministic *sequences*
    //! of fault events are recorded per-cluster in `koala-cluster`'s
    //! `FaultLog`, not here.

    use std::sync::atomic::{AtomicU64, Ordering};

    macro_rules! counters {
        ($($(#[$doc:meta])* $name:ident => $note:ident / $field:ident),+ $(,)?) => {
            $( static $name: AtomicU64 = AtomicU64::new(0); )+

            /// A point-in-time snapshot of all recovery counters.
            #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
            pub struct RecoveryStats {
                $( $(#[$doc])* pub $field: u64, )+
            }

            /// Read every counter at once.
            pub fn snapshot() -> RecoveryStats {
                RecoveryStats { $( $field: $name.load(Ordering::Relaxed), )+ }
            }

            $(
                /// Increment the corresponding recovery counter by one.
                pub fn $note() {
                    $name.fetch_add(1, Ordering::Relaxed);
                }
            )+
        };
    }

    counters! {
        /// Jacobi SVD re-ran with an enlarged sweep budget.
        SVD_SWEEP_ESCALATIONS => note_svd_sweep_escalation / svd_sweep_escalations,
        /// Jacobi SVD fell back to the Gram-matrix SVD.
        GRAM_SVD_FALLBACKS => note_gram_svd_fallback / gram_svd_fallbacks,
        /// Gram QR detected loss of positive-definiteness and degraded to QR+SVD.
        QR_DEGRADATIONS => note_qr_degradation / qr_degradations,
        /// Randomized SVD retried with a fresh random sketch.
        RSVD_RESKETCHES => note_rsvd_resketch / rsvd_resketches,
        /// A NaN/Inf guard rejected a factorization or tensor.
        NONFINITE_DETECTIONS => note_nonfinite_detection / nonfinite_detections,
        /// An ABFT checksum mismatch triggered a SUMMA round retry.
        SUMMA_ROUND_RETRIES => note_summa_round_retry / summa_round_retries,
        /// A checksum mismatch triggered a gather/scatter block retry.
        COLLECTIVE_RETRIES => note_collective_retry / collective_retries,
        /// The ITE driver saved a checkpoint.
        CHECKPOINTS_SAVED => note_checkpoint_saved / checkpoints_saved,
        /// The ITE driver restored from a checkpoint after a failure.
        CHECKPOINTS_RESTORED => note_checkpoint_restored / checkpoints_restored,
        /// A fault-injection hook fired.
        FAULTS_INJECTED => note_fault_injected / faults_injected,
    }

    impl std::fmt::Display for RecoveryStats {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            writeln!(f, "recovery stats:")?;
            writeln!(f, "  svd sweep escalations    {}", self.svd_sweep_escalations)?;
            writeln!(f, "  gram-svd fallbacks       {}", self.gram_svd_fallbacks)?;
            writeln!(f, "  qr degradations          {}", self.qr_degradations)?;
            writeln!(f, "  rsvd re-sketches         {}", self.rsvd_resketches)?;
            writeln!(f, "  non-finite detections    {}", self.nonfinite_detections)?;
            writeln!(f, "  summa round retries      {}", self.summa_round_retries)?;
            writeln!(f, "  collective retries       {}", self.collective_retries)?;
            writeln!(f, "  checkpoints saved        {}", self.checkpoints_saved)?;
            writeln!(f, "  checkpoints restored     {}", self.checkpoints_restored)?;
            write!(f, "  faults injected          {}", self.faults_injected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_chain_renders_innermost_first() {
        let e = KoalaError::new(ErrorKind::NonFinite, "NaN in singular values")
            .context("svd of 8x4 block")
            .context("ITE step 17");
        let s = e.to_string();
        assert!(s.starts_with("non-finite: NaN in singular values"));
        let inner = s.find("svd of 8x4 block").unwrap();
        let outer = s.find("ITE step 17").unwrap();
        assert!(inner < outer, "inner context should come first: {s}");
        assert_eq!(e.contexts().len(), 2);
    }

    #[test]
    fn result_ext_adds_context_only_on_err() {
        fn fallible(fail: bool) -> Result<u32> {
            if fail {
                Err(KoalaError::new(ErrorKind::Numerical, "boom"))
            } else {
                Ok(7)
            }
        }
        assert_eq!(fallible(false).context("outer").unwrap(), 7);
        let e = fallible(true).context("outer").unwrap_err();
        assert_eq!(e.contexts(), ["outer".to_string()]);
        assert_eq!(e.kind(), ErrorKind::Numerical);
    }

    #[test]
    fn recovery_counters_are_monotonic() {
        let before = recovery::snapshot();
        recovery::note_summa_round_retry();
        recovery::note_checkpoint_restored();
        let after = recovery::snapshot();
        assert!(after.summa_round_retries > before.summa_round_retries);
        assert!(after.checkpoints_restored > before.checkpoints_restored);
        // Display covers every field.
        let shown = format!("{after}");
        assert!(shown.contains("summa round retries"));
        assert!(shown.contains("checkpoints restored"));
    }
}
