//! Integration tests of the serve front door: admission control,
//! cancellation, timeouts, signature batching, and bit-identity of the
//! chunked execution paths against the engine's single-shot runs.
//!
//! These tests read no process-global counters, so they are safe to run
//! concurrently with each other (the global-delta billing story is pinned by
//! the workspace-root `serve_acceptance` test).

use koala_error::ErrorKind;
use koala_peps::{ContractionMethod, Peps};
use koala_serve::{
    AmplitudeJob, IteJob, JobResult, JobSpec, JobStatus, Server, ServerConfig, VqeJob,
};
use koala_sim::{ite_peps, run_vqe, tfi_hamiltonian, IteOptions, TfiParams, VqeBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn small_ite() -> IteJob {
    IteJob { steps: 6, measure_every: 2, seed: 3, ..IteJob::new(2, 2, 2) }
}

fn small_vqe() -> VqeJob {
    let mut job = VqeJob::new(2, 2, VqeBackend::StateVector);
    job.optimizer = koala_sim::Optimizer::NelderMead { scale: 0.4, max_iterations: 10 };
    job
}

fn small_amp() -> AmplitudeJob {
    AmplitudeJob {
        layers: 2,
        entangle_every: 2,
        bitstrings: vec![vec![0, 0, 0, 0], vec![0, 1, 1, 0]],
        ..AmplitudeJob::new(2, 2, ContractionMethod::bmps(8))
    }
}

#[test]
fn invalid_specs_are_rejected_at_submission() {
    let mut server = Server::new(ServerConfig::default());
    let mut bad = small_ite();
    bad.evolution_bond = 0;
    let err = server.submit("tenant", JobSpec::Ite(bad)).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidArgument);
    assert_eq!(server.queued(), 0, "rejected jobs must not occupy the queue");
}

#[test]
fn full_queue_rejects_with_exhausted() {
    let mut server = Server::new(ServerConfig { queue_capacity: 2, ..ServerConfig::default() });
    server.submit("a", JobSpec::Ite(small_ite())).unwrap();
    server.submit("b", JobSpec::Ite(small_ite())).unwrap();
    let err = server.submit("c", JobSpec::Ite(small_ite())).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Exhausted);
    assert_eq!(server.queued(), 2);
}

#[test]
fn chunked_ite_matches_the_single_shot_engine_run_bit_for_bit() {
    let job = small_ite();
    let h = tfi_hamiltonian(job.nrows, job.ncols, TfiParams { jz: job.jz, hx: job.hx });
    let mut options = IteOptions::new(job.tau, job.steps, job.evolution_bond, job.contraction_bond);
    options.measure_every = job.measure_every;
    let mut rng = StdRng::seed_from_u64(job.seed);
    let reference =
        ite_peps(&Peps::computational_zeros(job.nrows, job.ncols), &h, options, &mut rng).unwrap();

    let mut server = Server::new(ServerConfig::default());
    let outcome = server.run_one("tenant", JobSpec::Ite(job)).unwrap();
    assert_eq!(outcome.receipt.status, JobStatus::Ok);
    let JobResult::Ite(served) = outcome.result.unwrap() else { panic!("wrong result kind") };
    assert_eq!(reference.energies.len(), served.energies.len());
    for (&(sa, ea), &(sb, eb)) in reference.energies.iter().zip(served.energies.iter()) {
        assert_eq!(sa, sb);
        assert_eq!(
            ea.to_bits(),
            eb.to_bits(),
            "chunked serve run diverged from the single-shot engine at step {sa}"
        );
    }
    assert!(outcome.receipt.work.real_macs > 0, "ITE on TFI is an all-real workload");
}

#[test]
fn served_vqe_matches_the_direct_engine_run_bit_for_bit() {
    let job = small_vqe();
    let h = tfi_hamiltonian(job.nrows, job.ncols, TfiParams { jz: job.jz, hx: job.hx });
    let options = koala_sim::VqeOptions {
        layers: job.layers,
        backend: job.backend,
        optimizer: job.optimizer,
    };
    let mut rng = StdRng::seed_from_u64(job.seed);
    let reference = run_vqe(job.nrows, job.ncols, &h, options, None, &mut rng).unwrap();

    let mut server = Server::new(ServerConfig::default());
    let outcome = server.run_one("tenant", JobSpec::Vqe(job)).unwrap();
    assert_eq!(outcome.receipt.status, JobStatus::Ok);
    let JobResult::Vqe(served) = outcome.result.unwrap() else { panic!("wrong result kind") };
    assert_eq!(reference.best_energy.to_bits(), served.best_energy.to_bits());
    assert_eq!(reference.evaluations, served.evaluations);
    assert_eq!(reference.best_params, served.best_params);
}

#[test]
fn pre_drain_cancellation_yields_a_zero_work_cancelled_receipt() {
    let mut server = Server::new(ServerConfig::default());
    let cancelled = server.submit("a", JobSpec::Ite(small_ite())).unwrap();
    server.submit("b", JobSpec::Vqe(small_vqe())).unwrap();
    cancelled.cancel_token().cancel();

    let outcomes = server.drain();
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes[0].receipt.status, JobStatus::Cancelled);
    assert!(outcomes[0].receipt.work.is_zero(), "a never-started job must bill nothing");
    assert!(outcomes[0].result.is_none());
    // The cancelled sibling must not take the batch down.
    assert_eq!(outcomes[1].receipt.status, JobStatus::Ok);
    assert!(outcomes[1].result.is_some());
}

#[test]
fn zero_timeout_reports_timed_out_deterministically() {
    let mut server = Server::new(ServerConfig::default());
    server
        .submit_with_timeout("t", JobSpec::Amplitudes(small_amp()), Some(Duration::ZERO))
        .unwrap();
    let outcomes = server.drain();
    assert_eq!(outcomes[0].receipt.status, JobStatus::TimedOut);
    assert!(outcomes[0].receipt.work.is_zero());
}

#[test]
fn batched_amplitudes_match_the_direct_engine_path_bit_for_bit() {
    let job = small_amp();
    // Reference: the same evolution + contractions hand-wired on the engine.
    let mut circuit_rng = StdRng::seed_from_u64(job.circuit_seed);
    let circuit = koala_sim::random_circuit(
        job.nrows,
        job.ncols,
        job.layers,
        job.entangle_every,
        &mut circuit_rng,
    );
    let mut peps = Peps::computational_zeros(job.nrows, job.ncols);
    circuit.apply_to_peps(&mut peps, koala_peps::UpdateMethod::qr_svd(job.evolution_bond)).unwrap();
    let mut rng = StdRng::seed_from_u64(job.seed);
    let reference: Vec<_> = job
        .bitstrings
        .iter()
        .map(|bits| koala_peps::amplitude(&peps, bits, job.method, &mut rng).unwrap())
        .collect();

    let mut server = Server::new(ServerConfig::default());
    let outcome = server.run_one("tenant", JobSpec::Amplitudes(job)).unwrap();
    assert_eq!(outcome.receipt.status, JobStatus::Ok);
    let JobResult::Amplitudes(out) = outcome.result.unwrap() else { panic!("wrong result kind") };
    assert_eq!(out.amplitudes.len(), reference.len());
    for (served, wanted) in out.amplitudes.iter().zip(&reference) {
        assert_eq!(served.re.to_bits(), wanted.re.to_bits());
        assert_eq!(served.im.to_bits(), wanted.im.to_bits());
    }
    assert!(outcome.receipt.work.bytes > 0, "GEMM interface traffic must be billed");
}

#[test]
fn same_signature_jobs_batch_and_differ_only_by_value_inputs() {
    // Three same-signature ITE jobs — the signature covers shapes only, so
    // jobs may differ in value-level inputs (here the coupling jz) and still
    // share one batching group. All complete; the values (not the batching)
    // determine the results.
    let mut server = Server::new(ServerConfig::default());
    for jz in [-1.0, -0.9, -1.0] {
        let job = IteJob { jz, ..small_ite() };
        server.submit("tenant", JobSpec::Ite(job)).unwrap();
    }
    let outcomes = server.drain();
    assert_eq!(outcomes.len(), 3);
    let energies: Vec<u64> = outcomes
        .iter()
        .map(|o| {
            assert_eq!(o.receipt.status, JobStatus::Ok);
            assert_eq!(o.receipt.signature, outcomes[0].receipt.signature);
            let Some(JobResult::Ite(out)) = &o.result else { panic!("wrong result kind") };
            out.final_energy.to_bits()
        })
        .collect();
    assert_eq!(energies[0], energies[2], "same inputs, same signature => identical bits");
    assert_ne!(energies[0], energies[1], "different coupling must change the trajectory");
}

#[test]
fn receipts_carry_tenant_kind_and_ids_in_submission_order() {
    let mut server = Server::new(ServerConfig::default());
    let a = server.submit("alice", JobSpec::Vqe(small_vqe())).unwrap();
    let b = server.submit("bob", JobSpec::Amplitudes(small_amp())).unwrap();
    let outcomes = server.drain();
    assert_eq!(outcomes[0].receipt.job_id, a.job_id);
    assert_eq!(outcomes[0].receipt.tenant, "alice");
    assert_eq!(outcomes[0].receipt.kind, "vqe");
    assert_eq!(outcomes[1].receipt.job_id, b.job_id);
    assert_eq!(outcomes[1].receipt.tenant, "bob");
    assert_eq!(outcomes[1].receipt.kind, "amplitudes");
}
