//! Line-delimited JSON job server over stdin/stdout.
//!
//! The build environment is network-free, so the wire is a pipe: one JSON
//! object per input line, one JSON object per output line.
//!
//! Requests:
//!
//! * `{"op":"submit","tenant":"<name>","job":{...}}` — validate and queue a
//!   job (the `job` object is the [`JobSpec`] wire form). Replies
//!   `{"op":"submitted","job_id":N}` or `{"op":"error","message":"..."}`.
//! * `{"op":"drain"}` — run every queued job and reply one
//!   `{"op":"result",...}` line per job (receipt fields flattened alongside
//!   the `result` object), followed by `{"op":"drained","jobs":N}`.
//!
//! End of input implies a final drain, so a caller may simply pipe a batch
//! of submits and close the pipe.

use koala_json::JsonValue;
use koala_serve::{JobSpec, Server, ServerConfig};
use std::io::{BufRead, Write};

fn line_out(out: &mut impl Write, v: &JsonValue) {
    // One line per message: compact by re-joining the pretty form.
    let compact: String = v.pretty().lines().map(str::trim_start).collect::<Vec<_>>().join("");
    let _ = writeln!(out, "{compact}");
    let _ = out.flush();
}

fn error_msg(message: &str) -> JsonValue {
    JsonValue::object([("op", JsonValue::str("error")), ("message", JsonValue::str(message))])
}

fn drain(server: &mut Server, out: &mut impl Write) {
    let outcomes = server.drain();
    let n = outcomes.len();
    for outcome in outcomes {
        line_out(out, &outcome.to_json());
    }
    line_out(
        out,
        &JsonValue::object([("op", JsonValue::str("drained")), ("jobs", JsonValue::num(n as f64))]),
    );
}

fn handle_line(server: &mut Server, line: &str, out: &mut impl Write) {
    let request = match JsonValue::parse(line) {
        Ok(v) => v,
        Err(e) => return line_out(out, &error_msg(&format!("bad JSON: {e}"))),
    };
    match request.get("op").and_then(JsonValue::as_str) {
        Some("submit") => {
            let tenant = request.get("tenant").and_then(JsonValue::as_str).unwrap_or("anonymous");
            let Some(job) = request.get("job") else {
                return line_out(out, &error_msg("submit: missing 'job' object"));
            };
            let spec = match JobSpec::from_json(job) {
                Ok(s) => s,
                Err(e) => return line_out(out, &error_msg(&e.to_string())),
            };
            match server.submit(tenant, spec) {
                Ok(submission) => line_out(
                    out,
                    &JsonValue::object([
                        ("op", JsonValue::str("submitted")),
                        ("job_id", JsonValue::num(submission.job_id as f64)),
                    ]),
                ),
                Err(e) => line_out(out, &error_msg(&e.to_string())),
            }
        }
        Some("drain") => drain(server, out),
        Some(other) => line_out(out, &error_msg(&format!("unknown op '{other}'"))),
        None => line_out(out, &error_msg("missing 'op' field")),
    }
}

fn main() {
    let mut server = Server::new(ServerConfig::default());
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        handle_line(&mut server, &line, &mut out);
    }
    // EOF: drain whatever is still queued so piped batches need no explicit
    // drain op.
    if server.queued() > 0 {
        drain(&mut server, &mut out);
    }
}
