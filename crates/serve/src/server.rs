//! The in-process job server: bounded queue, signature batching, per-job
//! cancellation/timeout, and exact per-tenant work receipts.

use crate::spec::{
    AmplitudeJob, AmplitudeOutput, CircuitJob, CircuitOutput, IteJob, IteOutput, JobResult,
    JobSpec, Result, VqeJob, VqeOutput,
};
use koala_error::{ErrorKind, KoalaError};
use koala_exec::{CancelToken, TaskGraph, TaskKind, WorkLedger, WorkMeter};
use koala_peps::{amplitude, Peps, UpdateMethod};
use koala_sim::{
    ite_checkpoint, ite_peps_from, random_circuit, run_vqe_cancellable, tfi_hamiltonian,
    IteOptions, TfiParams, VqeOptions,
};
use koala_tensor::TensorError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Terminal state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed; the outcome carries a [`JobResult`].
    Ok,
    /// The engine reported an error; the outcome carries the message.
    Failed,
    /// The job's [`CancelToken`] fired before or during execution.
    Cancelled,
    /// The job's deadline passed; the watchdog cancelled it.
    TimedOut,
}

impl JobStatus {
    /// Wire tag used by the `serve_stdio` protocol.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::TimedOut => "timed_out",
        }
    }
}

/// Billing record of one job: exactly the work its execution billed to its
/// private [`WorkMeter`] scope — GEMM multiply-adds, GEMM interface bytes,
/// and (for distributed workloads) cluster payload wire bytes. Receipts of
/// concurrently drained jobs sum exactly to the global meter delta.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReceipt {
    /// Tenant that submitted the job.
    pub tenant: String,
    /// Server-assigned job id (unique per [`Server`]).
    pub job_id: u64,
    /// Job kind tag (`"ite"` / `"vqe"` / `"amplitudes"`).
    pub kind: &'static str,
    /// Workload signature the scheduler batched the job under.
    pub signature: String,
    /// Work billed to the job's meter scope.
    pub work: WorkLedger,
    /// Wall-clock execution time (zero for jobs cancelled before starting).
    pub wall: Duration,
    /// Terminal state.
    pub status: JobStatus,
}

/// A completed job: the billing receipt plus the result (on success) or the
/// error message (on failure/cancellation/timeout).
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The billing receipt.
    pub receipt: JobReceipt,
    /// The typed result; `Some` exactly when `receipt.status` is
    /// [`JobStatus::Ok`].
    pub result: Option<JobResult>,
    /// Error message; `Some` exactly when the job did not complete.
    pub error: Option<String>,
}

impl JobOutcome {
    /// Serialise to the wire form emitted by the `serve_stdio` binary: the
    /// receipt flattened alongside the result object.
    pub fn to_json(&self) -> koala_json::JsonValue {
        use koala_json::JsonValue;
        let mut fields = vec![
            ("op".to_string(), JsonValue::str("result")),
            ("job_id".to_string(), JsonValue::num(self.receipt.job_id as f64)),
            ("tenant".to_string(), JsonValue::str(self.receipt.tenant.clone())),
            ("kind".to_string(), JsonValue::str(self.receipt.kind)),
            ("signature".to_string(), JsonValue::str(self.receipt.signature.clone())),
            ("status".to_string(), JsonValue::str(self.receipt.status.as_str())),
            ("complex_macs".to_string(), JsonValue::num(self.receipt.work.complex_macs as f64)),
            ("real_macs".to_string(), JsonValue::num(self.receipt.work.real_macs as f64)),
            ("bytes".to_string(), JsonValue::num(self.receipt.work.bytes as f64)),
            ("wall_s".to_string(), JsonValue::num(self.receipt.wall.as_secs_f64())),
        ];
        if let Some(result) = &self.result {
            fields.push(("result".to_string(), result.to_json()));
        }
        if let Some(error) = &self.error {
            fields.push(("error".to_string(), JsonValue::str(error.clone())));
        }
        JsonValue::Object(fields)
    }
}

/// Handle returned by [`Server::submit`]: the assigned job id and the job's
/// cancellation token.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Server-assigned job id; matches the eventual receipt.
    pub job_id: u64,
    cancel: CancelToken,
}

impl Submission {
    /// The job's cancellation token. Cancelling before [`Server::drain`]
    /// yields a [`JobStatus::Cancelled`] receipt with a zero work ledger;
    /// cancelling mid-run stops the job at its next cooperative check.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum number of queued (not yet drained) jobs; a full queue rejects
    /// submissions with [`ErrorKind::Exhausted`].
    pub queue_capacity: usize,
    /// Deadline applied to every job that does not override it. `None`
    /// disables timeouts.
    pub default_timeout: Option<Duration>,
    /// If set, resize the shared `koala-exec` pool at server construction
    /// (safe to race with other front doors — `set_threads` is idempotent).
    pub threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { queue_capacity: 64, default_timeout: None, threads: None }
    }
}

struct QueuedJob {
    id: u64,
    tenant: String,
    spec: JobSpec,
    signature: String,
    cancel: CancelToken,
    timeout: Option<Duration>,
    timed_out: Arc<AtomicBool>,
}

/// The multi-tenant job front door.
///
/// # Job lifecycle
///
/// 1. [`submit`](Server::submit) validates the [`JobSpec`] and enqueues it
///    (bounded queue; overflow is [`ErrorKind::Exhausted`]).
/// 2. [`drain`](Server::drain) schedules every queued job as one task graph
///    on the shared `koala-exec` pool. Jobs sharing a workload
///    [`signature`](JobSpec::signature) are chained leader-first: the leader
///    pays the einsum plan-cache misses, every follower runs entirely on
///    warm stripes.
/// 3. Each job executes inside its own [`WorkMeter`] scope, so its
///    [`JobReceipt`] bills exactly the multiply-adds and bytes it caused —
///    on whatever pool workers its tiles ran — and sibling receipts sum
///    exactly to the global meter delta.
///
/// Results are bit-identical to running the job alone: job seeds fix every
/// RNG stream, and the executor's determinism contract fixes every
/// floating-point accumulation order regardless of scheduling.
pub struct Server {
    config: ServerConfig,
    queue: Vec<QueuedJob>,
    next_id: u64,
}

impl Server {
    /// Build a server. If [`ServerConfig::threads`] is set, the shared
    /// executor pool is resized (idempotently) before any job runs.
    pub fn new(config: ServerConfig) -> Server {
        if let Some(n) = config.threads {
            koala_exec::set_threads(n);
        }
        Server { config, queue: Vec::new(), next_id: 1 }
    }

    /// Number of jobs waiting for the next [`drain`](Server::drain).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Validate and enqueue a job under the server's default timeout.
    pub fn submit(&mut self, tenant: &str, spec: JobSpec) -> Result<Submission> {
        self.submit_with_timeout(tenant, spec, self.config.default_timeout)
    }

    /// Validate and enqueue a job with an explicit per-job deadline
    /// (`None` = no deadline, overriding the server default).
    pub fn submit_with_timeout(
        &mut self,
        tenant: &str,
        spec: JobSpec,
        timeout: Option<Duration>,
    ) -> Result<Submission> {
        spec.validate()?;
        if self.queue.len() >= self.config.queue_capacity {
            return Err(KoalaError::new(
                ErrorKind::Exhausted,
                format!("job queue full ({} jobs queued)", self.queue.len()),
            ));
        }
        let id = self.next_id;
        self.next_id += 1;
        let cancel = CancelToken::new();
        let signature = spec.signature();
        self.queue.push(QueuedJob {
            id,
            tenant: tenant.to_string(),
            spec,
            signature,
            cancel: cancel.clone(),
            timeout,
            timed_out: Arc::new(AtomicBool::new(false)),
        });
        Ok(Submission { job_id: id, cancel })
    }

    /// Execute every queued job and return their outcomes in submission
    /// order. Blocks until all jobs reach a terminal state; a failed or
    /// cancelled job never aborts its batch.
    pub fn drain(&mut self) -> Vec<JobOutcome> {
        let jobs = std::mem::take(&mut self.queue);
        if jobs.is_empty() {
            return Vec::new();
        }

        // Deadline watchdog: one thread cancels tokens past their deadline.
        // Fires `timed_out` strictly before cancelling, so the executing job
        // can always tell a timeout from a plain cancellation.
        let drain_done = Arc::new(AtomicBool::new(false));
        let watchdog = spawn_watchdog(&jobs, &drain_done);

        let slots: Vec<Mutex<Option<JobOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let mut graph = TaskGraph::new();
        let mut leaders: HashMap<&str, koala_exec::TaskId> = HashMap::new();
        for (i, job) in jobs.iter().enumerate() {
            // Chain same-signature jobs leader-first: the leader's einsum
            // planning populates the shared plan cache, so every follower
            // hits warm stripes (misses only on the first of a group).
            let deps: Vec<koala_exec::TaskId> =
                leaders.get(job.signature.as_str()).copied().into_iter().collect();
            let slot = &slots[i];
            let id = graph.add(TaskKind::Other, &deps, move || {
                *lock(slot) = Some(execute_job(job));
                Ok(()) // job errors live in the outcome; never abort the batch
            });
            leaders.insert(job.signature.as_str(), id);
        }
        let run = graph.run();

        drain_done.store(true, Ordering::Release);
        if let Some(handle) = watchdog {
            let _ = handle.join();
        }

        jobs.iter()
            .zip(slots)
            .map(|(job, slot)| {
                lock(&slot).take().unwrap_or_else(|| {
                    // Only reachable if the executor aborted the batch run
                    // (e.g. a panic inside a job); synthesise a failure so
                    // every submission still gets a terminal outcome.
                    let message = run
                        .as_ref()
                        .err()
                        .map_or_else(|| "job did not run".to_string(), KoalaError::to_string);
                    JobOutcome {
                        receipt: receipt_for(
                            job,
                            WorkLedger::default(),
                            Duration::ZERO,
                            JobStatus::Failed,
                        ),
                        result: None,
                        error: Some(message),
                    }
                })
            })
            .collect()
    }

    /// Convenience: submit one job and drain immediately — the "run it
    /// alone" reference path for bit-identity checks.
    pub fn run_one(&mut self, tenant: &str, spec: JobSpec) -> Result<JobOutcome> {
        self.submit(tenant, spec)?;
        let mut outcomes = self.drain();
        outcomes.pop().ok_or_else(|| {
            KoalaError::new(ErrorKind::Io, "drain returned no outcome for the submitted job")
        })
    }
}

/// Spawn the deadline watchdog if any job has a positive timeout. Jobs with
/// a zero timeout are handled deterministically in [`execute_job`] instead,
/// so tests never race the watchdog clock.
fn spawn_watchdog(
    jobs: &[QueuedJob],
    drain_done: &Arc<AtomicBool>,
) -> Option<std::thread::JoinHandle<()>> {
    let mut deadlines: Vec<(Instant, CancelToken, Arc<AtomicBool>)> = jobs
        .iter()
        .filter_map(|j| {
            let t = j.timeout.filter(|t| !t.is_zero())?;
            Some((Instant::now() + t, j.cancel.clone(), Arc::clone(&j.timed_out)))
        })
        .collect();
    if deadlines.is_empty() {
        return None;
    }
    let done = Arc::clone(drain_done);
    std::thread::Builder::new()
        .name("koala-serve-watchdog".to_string())
        .spawn(move || {
            while !done.load(Ordering::Acquire) && !deadlines.is_empty() {
                let now = Instant::now();
                deadlines.retain(|(deadline, cancel, timed_out)| {
                    if now >= *deadline {
                        timed_out.store(true, Ordering::Release);
                        cancel.cancel();
                        false
                    } else {
                        true
                    }
                });
                std::thread::sleep(Duration::from_millis(2));
            }
        })
        .ok()
}

fn receipt_for(job: &QueuedJob, work: WorkLedger, wall: Duration, status: JobStatus) -> JobReceipt {
    JobReceipt {
        tenant: job.tenant.clone(),
        job_id: job.id,
        kind: job.spec.kind(),
        signature: job.signature.clone(),
        work,
        wall,
        status,
    }
}

/// Run one job inside its own meter scope and fold the result, the billing
/// ledger, and the terminal status into a [`JobOutcome`].
fn execute_job(job: &QueuedJob) -> JobOutcome {
    // A zero timeout means "already past deadline": report it without
    // running, deterministically (no watchdog race).
    if job.timeout.is_some_and(|t| t.is_zero()) {
        job.timed_out.store(true, Ordering::Release);
        job.cancel.cancel();
    }
    if job.cancel.is_cancelled() {
        let status = if job.timed_out.load(Ordering::Acquire) {
            JobStatus::TimedOut
        } else {
            JobStatus::Cancelled
        };
        return JobOutcome {
            receipt: receipt_for(job, WorkLedger::default(), Duration::ZERO, status),
            result: None,
            error: Some("cancelled before execution".to_string()),
        };
    }

    let meter = WorkMeter::new();
    let start = Instant::now();
    let run = meter.scope(|| run_spec(&job.spec, &job.cancel));
    let wall = start.elapsed();
    let work = meter.ledger();

    match run {
        Ok(result) => JobOutcome {
            receipt: receipt_for(job, work, wall, JobStatus::Ok),
            result: Some(result),
            error: None,
        },
        Err(e) => {
            let status = if e.kind() == ErrorKind::Cancelled {
                if job.timed_out.load(Ordering::Acquire) {
                    JobStatus::TimedOut
                } else {
                    JobStatus::Cancelled
                }
            } else {
                JobStatus::Failed
            };
            JobOutcome {
                receipt: receipt_for(job, work, wall, status),
                result: None,
                error: Some(e.to_string()),
            }
        }
    }
}

fn engine_err(e: TensorError) -> KoalaError {
    let kind = match &e {
        TensorError::ShapeMismatch { .. } => ErrorKind::Shape,
        TensorError::InvalidAxes { .. } => ErrorKind::InvalidArgument,
        TensorError::Linalg(_) => ErrorKind::Numerical,
    };
    KoalaError::new(kind, e.to_string())
}

fn cancelled() -> KoalaError {
    KoalaError::new(ErrorKind::Cancelled, "job cancelled")
}

/// Dispatch a validated spec to the engine, honouring the cancel token at
/// every cooperative boundary.
fn run_spec(spec: &JobSpec, cancel: &CancelToken) -> Result<JobResult> {
    match spec {
        JobSpec::Ite(job) => run_ite(job, cancel),
        JobSpec::Vqe(job) => run_vqe_job(job, cancel),
        JobSpec::Amplitudes(job) => run_amplitudes(job, cancel),
        JobSpec::Circuit(job) => run_circuit(job, cancel),
    }
}

/// ITE with cooperative cancellation, bit-identical to a single-shot
/// [`koala_sim::ite_peps`] run.
///
/// The evolution is chunked at *measurement boundaries* (multiples of
/// `measure_every`, plus the final step), because [`ite_peps_from`] measures
/// at `step == options.steps` — stopping anywhere else would insert an extra
/// measurement, consume extra RNG draws, and fork the trajectory. Chunk ends
/// coincide with steps the single-shot run measures anyway, so the RNG
/// stream and every energy are reproduced exactly; the token is checked
/// between chunks.
fn run_ite(job: &IteJob, cancel: &CancelToken) -> Result<JobResult> {
    let h = tfi_hamiltonian(job.nrows, job.ncols, TfiParams { jz: job.jz, hx: job.hx });
    let mut options = IteOptions::new(job.tau, job.steps, job.evolution_bond, job.contraction_bond);
    options.measure_every = job.measure_every;

    let rng = StdRng::seed_from_u64(job.seed);
    let mut state = ite_checkpoint(&Peps::computational_zeros(job.nrows, job.ncols), &rng);
    let mut last = None;
    while state.step() < job.steps {
        if cancel.is_cancelled() {
            return Err(cancelled());
        }
        let boundary = (state.step() / job.measure_every + 1) * job.measure_every;
        let mut chunk = options;
        chunk.steps = boundary.min(job.steps);
        let (result, end) = ite_peps_from(state, &h, chunk).map_err(engine_err)?;
        last = Some(result);
        state = end;
    }
    let result = match last {
        Some(r) => r,
        // steps >= 1 is validated, so the loop ran at least once.
        None => return Err(KoalaError::new(ErrorKind::InvalidArgument, "ite: zero steps")),
    };
    Ok(JobResult::Ite(IteOutput {
        final_energy: result.final_energy(),
        max_bond: result.final_state.max_bond(),
        energies: result.energies,
    }))
}

/// VQE via [`run_vqe_cancellable`]: once the token fires, objective
/// evaluations short-circuit and the run unwinds; a cancelled run reports
/// [`ErrorKind::Cancelled`] rather than its partial optimum.
fn run_vqe_job(job: &VqeJob, cancel: &CancelToken) -> Result<JobResult> {
    if cancel.is_cancelled() {
        return Err(cancelled());
    }
    let h = tfi_hamiltonian(job.nrows, job.ncols, TfiParams { jz: job.jz, hx: job.hx });
    let options = VqeOptions { layers: job.layers, backend: job.backend, optimizer: job.optimizer };
    let mut rng = StdRng::seed_from_u64(job.seed);
    let result =
        run_vqe_cancellable(job.nrows, job.ncols, &h, options, None, &mut rng, Some(cancel))
            .map_err(engine_err)?;
    if cancel.is_cancelled() {
        return Err(cancelled());
    }
    Ok(JobResult::Vqe(VqeOutput {
        best_energy: result.best_energy,
        energy_history: result.energy_history,
        best_params: result.best_params,
        evaluations: result.evaluations,
    }))
}

/// Batched amplitudes: one circuit evolution, then one contraction per
/// bitstring; the token is checked before the evolution and between
/// contractions.
fn run_amplitudes(job: &AmplitudeJob, cancel: &CancelToken) -> Result<JobResult> {
    if cancel.is_cancelled() {
        return Err(cancelled());
    }
    let mut circuit_rng = StdRng::seed_from_u64(job.circuit_seed);
    let circuit =
        random_circuit(job.nrows, job.ncols, job.layers, job.entangle_every, &mut circuit_rng);
    let mut peps = Peps::computational_zeros(job.nrows, job.ncols);
    circuit
        .apply_to_peps(&mut peps, UpdateMethod::qr_svd(job.evolution_bond))
        .map_err(engine_err)?;

    let mut rng = StdRng::seed_from_u64(job.seed);
    let mut amplitudes = Vec::with_capacity(job.bitstrings.len());
    for bits in &job.bitstrings {
        if cancel.is_cancelled() {
            return Err(cancelled());
        }
        amplitudes.push(amplitude(&peps, bits, job.method, &mut rng).map_err(engine_err)?);
    }
    Ok(JobResult::Amplitudes(AmplitudeOutput { amplitudes, max_bond: peps.max_bond() }))
}

/// A gate-list circuit through the front-end dispatcher. The heavy lifting
/// (simplify -> light-cone prune -> backend evolution) is one engine call,
/// so the token is checked at entry and the job runs to completion once
/// started — front-end circuits are bounded by `MAX_CIRCUIT_GATES`.
fn run_circuit(job: &CircuitJob, cancel: &CancelToken) -> Result<JobResult> {
    if cancel.is_cancelled() {
        return Err(cancelled());
    }
    let mut rng = StdRng::seed_from_u64(job.seed);
    let batch = koala_circuit::amplitudes(&job.circuit, &job.bitstrings, job.backend, &mut rng)
        .map_err(engine_err)?;
    Ok(JobResult::Circuit(CircuitOutput {
        amplitudes: batch.amplitudes,
        backend: batch.backend.tag().to_string(),
        max_bond: batch.max_bond,
        gates_submitted: batch.gates_submitted,
        gates_executed: batch.gates_executed,
    }))
}
