//! Typed job specifications and results.
//!
//! A [`JobSpec`] is a self-contained, validated description of one unit of
//! service work — everything the engine needs to reproduce the run bit for
//! bit (lattice shape, model couplings, algorithm knobs, and the RNG seeds).
//! The variants mirror the repository's example workloads:
//!
//! * [`IteJob`] — imaginary-time-evolution ground-state search (Figure 13),
//! * [`VqeJob`] — variational ground-state energy (Figure 14),
//! * [`AmplitudeJob`] — batched random-circuit output amplitudes (Figure 10),
//! * [`CircuitJob`] — an arbitrary gate-list circuit through the
//!   `koala-circuit` front end (simplify, light-cone, backend dispatch),
//!   answering a batch of bitstring amplitude queries.
//!
//! Every spec has a [`signature`](JobSpec::signature): a string key over the
//! *shape-determining* fields (lattice, bonds, layers, step counts — but not
//! value-level inputs like couplings or value seeds). Jobs sharing a
//! signature execute the same einsum specs on the same tensor shapes, so the
//! scheduler runs them leader-first and the followers hit warm plan-cache
//! stripes (see [`crate::Server::drain`]). The amplitude signature *does*
//! include the circuit seed, because the random circuit's gate placement
//! determines the evolved bond dimensions and hence the contraction shapes.

use koala_circuit::{Backend, BackendChoice, Circuit, Gate, Gate1, Gate2};
use koala_error::{ErrorKind, KoalaError};
use koala_json::JsonValue;
use koala_linalg::{c64, Matrix, C64};
use koala_peps::ContractionMethod;
use koala_sim::{Optimizer, VqeBackend};

/// Result type used by the serve layer.
pub type Result<T> = std::result::Result<T, KoalaError>;

fn invalid(msg: impl Into<String>) -> KoalaError {
    KoalaError::new(ErrorKind::InvalidArgument, msg)
}

/// Largest lattice (in sites) a job may request; keeps a single mis-typed
/// spec from pinning the whole service.
pub const MAX_SITES: usize = 64;

fn validate_lattice(nrows: usize, ncols: usize) -> Result<()> {
    if nrows == 0 || ncols == 0 {
        return Err(invalid(format!("lattice {nrows}x{ncols}: dimensions must be >= 1")));
    }
    if nrows * ncols > MAX_SITES {
        return Err(invalid(format!(
            "lattice {nrows}x{ncols}: {} sites exceeds the service cap of {MAX_SITES}",
            nrows * ncols
        )));
    }
    Ok(())
}

/// Imaginary-time-evolution ground-state job on the transverse-field Ising
/// model: evolve `|0...0>` with PEPS-TEBD and report the measured energies.
#[derive(Debug, Clone, PartialEq)]
pub struct IteJob {
    /// Lattice rows.
    pub nrows: usize,
    /// Lattice columns.
    pub ncols: usize,
    /// Ising coupling `Jz`.
    pub jz: f64,
    /// Transverse field `hx`.
    pub hx: f64,
    /// Trotter step size `tau`.
    pub tau: f64,
    /// Number of ITE steps.
    pub steps: usize,
    /// Evolution bond dimension `r`.
    pub evolution_bond: usize,
    /// Contraction bond dimension `m` for energy measurement.
    pub contraction_bond: usize,
    /// Measure the energy every this many steps.
    pub measure_every: usize,
    /// Seed of the run's RNG stream (IBMPS sketches).
    pub seed: u64,
}

impl IteJob {
    /// A laptop-friendly default mirroring the `ite_ground_state` example:
    /// `Jz = -1, hx = -2`, `tau = 0.05`, 40 steps measured every 5.
    pub fn new(nrows: usize, ncols: usize, evolution_bond: usize) -> IteJob {
        IteJob {
            nrows,
            ncols,
            jz: -1.0,
            hx: -2.0,
            tau: 0.05,
            steps: 40,
            evolution_bond,
            contraction_bond: (evolution_bond * evolution_bond).max(2),
            measure_every: 5,
            seed: 7,
        }
    }

    fn validate(&self) -> Result<()> {
        validate_lattice(self.nrows, self.ncols)?;
        if !(self.tau.is_finite() && self.tau > 0.0) {
            return Err(invalid(format!("ite: tau must be finite and positive, got {}", self.tau)));
        }
        if !(self.jz.is_finite() && self.hx.is_finite()) {
            return Err(invalid("ite: couplings jz/hx must be finite"));
        }
        if self.steps == 0 {
            return Err(invalid("ite: steps must be >= 1"));
        }
        if self.evolution_bond == 0 || self.contraction_bond == 0 {
            return Err(invalid("ite: bond dimensions must be >= 1"));
        }
        if self.measure_every == 0 {
            return Err(invalid("ite: measure_every must be >= 1"));
        }
        Ok(())
    }

    fn signature(&self) -> String {
        format!(
            "ite/{}x{}/r{}/m{}/steps{}/every{}",
            self.nrows,
            self.ncols,
            self.evolution_bond,
            self.contraction_bond,
            self.steps,
            self.measure_every
        )
    }
}

/// Variational-quantum-eigensolver job on the transverse-field Ising model.
#[derive(Debug, Clone, PartialEq)]
pub struct VqeJob {
    /// Lattice rows.
    pub nrows: usize,
    /// Lattice columns.
    pub ncols: usize,
    /// Ising coupling `Jz`.
    pub jz: f64,
    /// Transverse field `hx`.
    pub hx: f64,
    /// Ansatz layers (Ry on every site + CNOT ladder per layer).
    pub layers: usize,
    /// Simulation backend for the ansatz state.
    pub backend: VqeBackend,
    /// Classical optimizer.
    pub optimizer: Optimizer,
    /// Seed of the run's RNG stream (objective evaluations and SPSA).
    pub seed: u64,
}

impl VqeJob {
    /// A laptop-friendly default mirroring the `vqe_tfi` example: the paper's
    /// Figure 14 couplings, one ansatz layer, Nelder–Mead with 60 iterations.
    pub fn new(nrows: usize, ncols: usize, backend: VqeBackend) -> VqeJob {
        VqeJob {
            nrows,
            ncols,
            jz: -1.0,
            hx: -3.5,
            layers: 1,
            backend,
            optimizer: Optimizer::NelderMead { scale: 0.4, max_iterations: 60 },
            seed: 11,
        }
    }

    fn validate(&self) -> Result<()> {
        validate_lattice(self.nrows, self.ncols)?;
        if !(self.jz.is_finite() && self.hx.is_finite()) {
            return Err(invalid("vqe: couplings jz/hx must be finite"));
        }
        if self.layers == 0 {
            return Err(invalid("vqe: layers must be >= 1"));
        }
        if let VqeBackend::Peps { bond, contraction_bond } = self.backend {
            if bond == 0 || contraction_bond == 0 {
                return Err(invalid("vqe: PEPS backend bond dimensions must be >= 1"));
            }
        }
        let budget = match self.optimizer {
            Optimizer::NelderMead { max_iterations, .. } => max_iterations,
            Optimizer::Spsa { iterations, .. } => iterations,
        };
        if budget == 0 {
            return Err(invalid("vqe: optimizer iteration budget must be >= 1"));
        }
        Ok(())
    }

    fn signature(&self) -> String {
        format!(
            "vqe/{}x{}/l{}/{:?}/{:?}",
            self.nrows, self.ncols, self.layers, self.backend, self.optimizer
        )
    }
}

/// Batched random-quantum-circuit amplitude job: evolve `|0...0>` under a
/// seeded random circuit, then contract one amplitude per requested
/// bitstring.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplitudeJob {
    /// Lattice rows.
    pub nrows: usize,
    /// Lattice columns.
    pub ncols: usize,
    /// Circuit layers.
    pub layers: usize,
    /// Entangling-layer period of the random circuit.
    pub entangle_every: usize,
    /// Seed selecting the random circuit (part of the signature: it fixes
    /// the gate placement and hence the evolved tensor shapes).
    pub circuit_seed: u64,
    /// Bond-dimension cap for the circuit evolution.
    pub evolution_bond: usize,
    /// Contraction method for the amplitudes.
    pub method: ContractionMethod,
    /// Bitstrings (row-major, one bit per site) to compute amplitudes for.
    pub bitstrings: Vec<Vec<usize>>,
    /// Seed of the contraction RNG stream (IBMPS sketches).
    pub seed: u64,
}

impl AmplitudeJob {
    /// A laptop-friendly default mirroring the `rqc_amplitude` example: a
    /// 3x3-suitable 8-layer circuit with an entangling layer every 4,
    /// evolved exactly, asking for the all-zeros amplitude.
    pub fn new(nrows: usize, ncols: usize, method: ContractionMethod) -> AmplitudeJob {
        AmplitudeJob {
            nrows,
            ncols,
            layers: 8,
            entangle_every: 4,
            circuit_seed: 21,
            evolution_bond: 1 << 16,
            method,
            bitstrings: vec![vec![0; nrows * ncols]],
            seed: 21,
        }
    }

    fn validate(&self) -> Result<()> {
        validate_lattice(self.nrows, self.ncols)?;
        if self.layers == 0 || self.entangle_every == 0 {
            return Err(invalid("amplitudes: layers and entangle_every must be >= 1"));
        }
        if self.evolution_bond == 0 {
            return Err(invalid("amplitudes: evolution_bond must be >= 1"));
        }
        match self.method {
            ContractionMethod::Exact => {}
            ContractionMethod::Bmps { max_bond } | ContractionMethod::Ibmps { max_bond, .. } => {
                if max_bond == 0 {
                    return Err(invalid("amplitudes: contraction max_bond must be >= 1"));
                }
            }
        }
        if self.bitstrings.is_empty() {
            return Err(invalid("amplitudes: at least one bitstring is required"));
        }
        let n = self.nrows * self.ncols;
        for (i, bits) in self.bitstrings.iter().enumerate() {
            if bits.len() != n {
                return Err(invalid(format!(
                    "amplitudes: bitstring {i} has {} bits, lattice has {n} sites",
                    bits.len()
                )));
            }
            if bits.iter().any(|&b| b > 1) {
                return Err(invalid(format!("amplitudes: bitstring {i} has a bit outside 0/1")));
            }
        }
        Ok(())
    }

    fn signature(&self) -> String {
        format!(
            "amp/{}x{}/l{}/e{}/cs{}/r{}/{:?}/n{}",
            self.nrows,
            self.ncols,
            self.layers,
            self.entangle_every,
            self.circuit_seed,
            self.evolution_bond,
            self.method,
            self.bitstrings.len()
        )
    }
}

/// Largest gate list a [`CircuitJob`] may carry.
pub const MAX_CIRCUIT_GATES: usize = 4096;

/// Gate-list circuit job: run an arbitrary typed circuit through the
/// `koala-circuit` front end (structural simplification, light-cone pruning
/// for single queries, backend dispatch) and answer a batch of bitstring
/// amplitude queries. The whole batch shares one state evolution, so warm
/// re-submissions of the same circuit replay cached contraction plans.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitJob {
    /// The circuit (qubit count and optional lattice live inside).
    pub circuit: Circuit,
    /// Bitstrings (one bit per qubit) to compute amplitudes for.
    pub bitstrings: Vec<Vec<usize>>,
    /// Backend selection; [`BackendChoice::Auto`] picks by qubit count and
    /// entanglement estimate.
    pub backend: BackendChoice,
    /// Seed of the contraction RNG stream (IBMPS sketches on the PEPS path).
    pub seed: u64,
}

impl CircuitJob {
    /// A job querying `bitstrings` on `circuit` under auto dispatch.
    pub fn new(circuit: Circuit, bitstrings: Vec<Vec<usize>>) -> CircuitJob {
        CircuitJob { circuit, bitstrings, backend: BackendChoice::Auto, seed: 17 }
    }

    fn validate(&self) -> Result<()> {
        let n = self.circuit.num_qubits();
        if n == 0 {
            return Err(invalid("circuit: at least one qubit is required"));
        }
        if n > MAX_SITES {
            return Err(invalid(format!(
                "circuit: {n} qubits exceeds the service cap of {MAX_SITES}"
            )));
        }
        if self.circuit.len() > MAX_CIRCUIT_GATES {
            return Err(invalid(format!(
                "circuit: {} gates exceeds the service cap of {MAX_CIRCUIT_GATES}",
                self.circuit.len()
            )));
        }
        self.circuit.validate().map_err(|e| invalid(e.to_string()))?;
        if self.bitstrings.is_empty() {
            return Err(invalid("circuit: at least one bitstring is required"));
        }
        for (i, bits) in self.bitstrings.iter().enumerate() {
            if bits.len() != n {
                return Err(invalid(format!(
                    "circuit: bitstring {i} has {} bits, circuit has {n} qubits",
                    bits.len()
                )));
            }
            if bits.iter().any(|&b| b > 1) {
                return Err(invalid(format!("circuit: bitstring {i} has a bit outside 0/1")));
            }
        }
        match self.backend {
            BackendChoice::Fixed(Backend::Statevector) if n > 26 => {
                Err(invalid(format!("circuit: {n} qubits exceed the 26-qubit statevector limit")))
            }
            BackendChoice::Fixed(Backend::Mps { max_bond: 0 }) => {
                Err(invalid("circuit: MPS max_bond must be >= 1"))
            }
            BackendChoice::Fixed(Backend::Peps { evolution_bond: 0, .. }) => {
                Err(invalid("circuit: PEPS evolution_bond must be >= 1"))
            }
            _ => Ok(()),
        }
    }

    /// The signature hashes the circuit *structure* (gate kinds, qubit
    /// placements, zero patterns of arbitrary unitaries) but not parameter
    /// values: same-structure circuits evolve through the same tensor
    /// shapes. The one caveat is angle-dependent simplification — a
    /// rotation that lands exactly on the identity is dropped and shifts
    /// the shapes — which costs a follower some plan-cache misses, never
    /// correctness.
    fn signature(&self) -> String {
        let backend = match self.backend {
            BackendChoice::Auto => "auto".to_string(),
            BackendChoice::Fixed(Backend::Statevector) => "sv".to_string(),
            BackendChoice::Fixed(Backend::Mps { max_bond }) => format!("mps{max_bond}"),
            BackendChoice::Fixed(Backend::Peps { evolution_bond, method }) => {
                format!("peps{evolution_bond}/{method:?}")
            }
        };
        format!(
            "circuit/{}q/g{}/k{:016x}/{}/n{}",
            self.circuit.num_qubits(),
            self.circuit.len(),
            self.circuit.structure_key(),
            backend,
            self.bitstrings.len()
        )
    }
}

/// A typed, validated unit of service work.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Imaginary-time-evolution ground-state search.
    Ite(IteJob),
    /// Variational ground-state energy.
    Vqe(VqeJob),
    /// Batched circuit amplitudes.
    Amplitudes(AmplitudeJob),
    /// Gate-list circuit through the `koala-circuit` front end.
    Circuit(CircuitJob),
}

impl JobSpec {
    /// Check every field for structural validity. [`crate::Server::submit`]
    /// rejects invalid specs with [`ErrorKind::InvalidArgument`] before they
    /// reach the queue.
    pub fn validate(&self) -> Result<()> {
        match self {
            JobSpec::Ite(j) => j.validate(),
            JobSpec::Vqe(j) => j.validate(),
            JobSpec::Amplitudes(j) => j.validate(),
            JobSpec::Circuit(j) => j.validate(),
        }
    }

    /// Workload-signature key: jobs sharing a signature run the same einsum
    /// specs over the same tensor shapes, so the scheduler serialises them
    /// leader-first to keep every follower on warm plan-cache stripes.
    pub fn signature(&self) -> String {
        match self {
            JobSpec::Ite(j) => j.signature(),
            JobSpec::Vqe(j) => j.signature(),
            JobSpec::Amplitudes(j) => j.signature(),
            JobSpec::Circuit(j) => j.signature(),
        }
    }

    /// Short kind tag (`"ite"` / `"vqe"` / `"amplitudes"` / `"circuit"`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Ite(_) => "ite",
            JobSpec::Vqe(_) => "vqe",
            JobSpec::Amplitudes(_) => "amplitudes",
            JobSpec::Circuit(_) => "circuit",
        }
    }

    /// Serialise to the wire form understood by [`JobSpec::from_json`] and
    /// the `serve_stdio` binary.
    pub fn to_json(&self) -> JsonValue {
        match self {
            JobSpec::Ite(j) => JsonValue::object([
                ("type", JsonValue::str("ite")),
                ("nrows", JsonValue::num(j.nrows as f64)),
                ("ncols", JsonValue::num(j.ncols as f64)),
                ("jz", JsonValue::num(j.jz)),
                ("hx", JsonValue::num(j.hx)),
                ("tau", JsonValue::num(j.tau)),
                ("steps", JsonValue::num(j.steps as f64)),
                ("evolution_bond", JsonValue::num(j.evolution_bond as f64)),
                ("contraction_bond", JsonValue::num(j.contraction_bond as f64)),
                ("measure_every", JsonValue::num(j.measure_every as f64)),
                ("seed", JsonValue::num(j.seed as f64)),
            ]),
            JobSpec::Vqe(j) => {
                let backend = match j.backend {
                    VqeBackend::StateVector => {
                        JsonValue::object([("type", JsonValue::str("statevector"))])
                    }
                    VqeBackend::Peps { bond, contraction_bond } => JsonValue::object([
                        ("type", JsonValue::str("peps")),
                        ("bond", JsonValue::num(bond as f64)),
                        ("contraction_bond", JsonValue::num(contraction_bond as f64)),
                    ]),
                };
                let optimizer = match j.optimizer {
                    Optimizer::NelderMead { scale, max_iterations } => JsonValue::object([
                        ("type", JsonValue::str("nelder_mead")),
                        ("scale", JsonValue::num(scale)),
                        ("max_iterations", JsonValue::num(max_iterations as f64)),
                    ]),
                    Optimizer::Spsa { a0, c0, iterations } => JsonValue::object([
                        ("type", JsonValue::str("spsa")),
                        ("a0", JsonValue::num(a0)),
                        ("c0", JsonValue::num(c0)),
                        ("iterations", JsonValue::num(iterations as f64)),
                    ]),
                };
                JsonValue::object([
                    ("type", JsonValue::str("vqe")),
                    ("nrows", JsonValue::num(j.nrows as f64)),
                    ("ncols", JsonValue::num(j.ncols as f64)),
                    ("jz", JsonValue::num(j.jz)),
                    ("hx", JsonValue::num(j.hx)),
                    ("layers", JsonValue::num(j.layers as f64)),
                    ("backend", backend),
                    ("optimizer", optimizer),
                    ("seed", JsonValue::num(j.seed as f64)),
                ])
            }
            JobSpec::Amplitudes(j) => JsonValue::object([
                ("type", JsonValue::str("amplitudes")),
                ("nrows", JsonValue::num(j.nrows as f64)),
                ("ncols", JsonValue::num(j.ncols as f64)),
                ("layers", JsonValue::num(j.layers as f64)),
                ("entangle_every", JsonValue::num(j.entangle_every as f64)),
                ("circuit_seed", JsonValue::num(j.circuit_seed as f64)),
                ("evolution_bond", JsonValue::num(j.evolution_bond as f64)),
                ("method", method_to_json(j.method)),
                ("bitstrings", bitstrings_to_json(&j.bitstrings)),
                ("seed", JsonValue::num(j.seed as f64)),
            ]),
            JobSpec::Circuit(j) => {
                let backend = match j.backend {
                    BackendChoice::Auto => JsonValue::object([("type", JsonValue::str("auto"))]),
                    BackendChoice::Fixed(Backend::Statevector) => {
                        JsonValue::object([("type", JsonValue::str("statevector"))])
                    }
                    BackendChoice::Fixed(Backend::Mps { max_bond }) => JsonValue::object([
                        ("type", JsonValue::str("mps")),
                        ("max_bond", JsonValue::num(max_bond as f64)),
                    ]),
                    BackendChoice::Fixed(Backend::Peps { evolution_bond, method }) => {
                        JsonValue::object([
                            ("type", JsonValue::str("peps")),
                            ("evolution_bond", JsonValue::num(evolution_bond as f64)),
                            ("method", method_to_json(method)),
                        ])
                    }
                };
                let mut fields = vec![
                    ("type".to_string(), JsonValue::str("circuit")),
                    ("num_qubits".to_string(), JsonValue::num(j.circuit.num_qubits() as f64)),
                ];
                if let Some((r, c)) = j.circuit.lattice() {
                    fields.push(("nrows".to_string(), JsonValue::num(r as f64)));
                    fields.push(("ncols".to_string(), JsonValue::num(c as f64)));
                }
                fields.push((
                    "gates".to_string(),
                    JsonValue::Array(j.circuit.gates().iter().map(gate_to_json).collect()),
                ));
                fields.push(("bitstrings".to_string(), bitstrings_to_json(&j.bitstrings)));
                fields.push(("backend".to_string(), backend));
                fields.push(("seed".to_string(), JsonValue::num(j.seed as f64)));
                JsonValue::Object(fields)
            }
        }
    }

    /// Parse the wire form produced by [`JobSpec::to_json`]. The parsed spec
    /// is validated before being returned.
    ///
    /// Integer fields travel as JSON numbers (`f64`); seeds and counters are
    /// exact up to 2^53, far beyond any spec this service accepts.
    pub fn from_json(v: &JsonValue) -> Result<JobSpec> {
        let kind = req_str(v, "type")?;
        let spec = match kind {
            "ite" => JobSpec::Ite(IteJob {
                nrows: req_usize(v, "nrows")?,
                ncols: req_usize(v, "ncols")?,
                jz: opt_f64(v, "jz", -1.0)?,
                hx: opt_f64(v, "hx", -2.0)?,
                tau: opt_f64(v, "tau", 0.05)?,
                steps: req_usize(v, "steps")?,
                evolution_bond: req_usize(v, "evolution_bond")?,
                contraction_bond: req_usize(v, "contraction_bond")?,
                measure_every: opt_usize(v, "measure_every", 1)?,
                seed: opt_u64(v, "seed", 0)?,
            }),
            "vqe" => {
                let backend_v =
                    v.get("backend").ok_or_else(|| invalid("vqe: missing field 'backend'"))?;
                let backend = match req_str(backend_v, "type")? {
                    "statevector" => VqeBackend::StateVector,
                    "peps" => VqeBackend::Peps {
                        bond: req_usize(backend_v, "bond")?,
                        contraction_bond: req_usize(backend_v, "contraction_bond")?,
                    },
                    other => return Err(invalid(format!("vqe: unknown backend '{other}'"))),
                };
                let opt_v =
                    v.get("optimizer").ok_or_else(|| invalid("vqe: missing field 'optimizer'"))?;
                let optimizer = match req_str(opt_v, "type")? {
                    "nelder_mead" => Optimizer::NelderMead {
                        scale: opt_f64(opt_v, "scale", 0.4)?,
                        max_iterations: req_usize(opt_v, "max_iterations")?,
                    },
                    "spsa" => Optimizer::Spsa {
                        a0: opt_f64(opt_v, "a0", 0.3)?,
                        c0: opt_f64(opt_v, "c0", 0.2)?,
                        iterations: req_usize(opt_v, "iterations")?,
                    },
                    other => return Err(invalid(format!("vqe: unknown optimizer '{other}'"))),
                };
                JobSpec::Vqe(VqeJob {
                    nrows: req_usize(v, "nrows")?,
                    ncols: req_usize(v, "ncols")?,
                    jz: opt_f64(v, "jz", -1.0)?,
                    hx: opt_f64(v, "hx", -3.5)?,
                    layers: opt_usize(v, "layers", 1)?,
                    backend,
                    optimizer,
                    seed: opt_u64(v, "seed", 0)?,
                })
            }
            "amplitudes" => {
                let method_v =
                    v.get("method").ok_or_else(|| invalid("amplitudes: missing field 'method'"))?;
                JobSpec::Amplitudes(AmplitudeJob {
                    nrows: req_usize(v, "nrows")?,
                    ncols: req_usize(v, "ncols")?,
                    layers: opt_usize(v, "layers", 8)?,
                    entangle_every: opt_usize(v, "entangle_every", 4)?,
                    circuit_seed: opt_u64(v, "circuit_seed", 0)?,
                    evolution_bond: opt_usize(v, "evolution_bond", 1 << 16)?,
                    method: method_from_json(method_v)?,
                    bitstrings: bitstrings_from_json(v)?,
                    seed: opt_u64(v, "seed", 0)?,
                })
            }
            "circuit" => {
                let num_qubits = req_usize(v, "num_qubits")?;
                let lattice = match (v.get("nrows"), v.get("ncols")) {
                    (None, None) => None,
                    _ => Some((req_usize(v, "nrows")?, req_usize(v, "ncols")?)),
                };
                let mut circuit = match lattice {
                    Some((r, c)) => {
                        if r * c != num_qubits {
                            return Err(invalid(format!(
                                "circuit: lattice {r}x{c} does not hold {num_qubits} qubits"
                            )));
                        }
                        Circuit::with_lattice(r, c)
                    }
                    None => Circuit::new(num_qubits),
                };
                let gates_v = v
                    .get("gates")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| invalid("circuit: missing array field 'gates'"))?;
                for (i, g) in gates_v.iter().enumerate() {
                    gate_from_json(&mut circuit, g)
                        .map_err(|e| invalid(format!("circuit: gate {i}: {e}")))?;
                }
                let backend = match v.get("backend") {
                    None => BackendChoice::Auto,
                    Some(b) => match req_str(b, "type")? {
                        "auto" => BackendChoice::Auto,
                        "statevector" => BackendChoice::Fixed(Backend::Statevector),
                        "mps" => BackendChoice::Fixed(Backend::Mps {
                            max_bond: req_usize(b, "max_bond")?,
                        }),
                        "peps" => {
                            let method = match b.get("method") {
                                None => ContractionMethod::bmps(64),
                                Some(m) => method_from_json(m)?,
                            };
                            BackendChoice::Fixed(Backend::Peps {
                                evolution_bond: req_usize(b, "evolution_bond")?,
                                method,
                            })
                        }
                        other => {
                            return Err(invalid(format!("circuit: unknown backend '{other}'")))
                        }
                    },
                };
                JobSpec::Circuit(CircuitJob {
                    circuit,
                    bitstrings: bitstrings_from_json(v)?,
                    backend,
                    seed: opt_u64(v, "seed", 17)?,
                })
            }
            other => return Err(invalid(format!("unknown job type '{other}'"))),
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn req_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| invalid(format!("missing string field '{key}'")))
}

fn req_usize(v: &JsonValue, key: &str) -> Result<usize> {
    let x = v
        .get(key)
        .and_then(JsonValue::as_num)
        .ok_or_else(|| invalid(format!("missing numeric field '{key}'")))?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(invalid(format!("field '{key}' must be a non-negative integer, got {x}")));
    }
    Ok(x as usize)
}

fn opt_usize(v: &JsonValue, key: &str, default: usize) -> Result<usize> {
    match v.get(key) {
        None => Ok(default),
        Some(_) => req_usize(v, key),
    }
}

fn opt_u64(v: &JsonValue, key: &str, default: u64) -> Result<u64> {
    match v.get(key) {
        None => Ok(default),
        Some(_) => Ok(req_usize(v, key)? as u64),
    }
}

fn opt_f64(v: &JsonValue, key: &str, default: f64) -> Result<f64> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x.as_num().ok_or_else(|| invalid(format!("field '{key}' must be a number"))),
    }
}

fn req_f64(v: &JsonValue, key: &str) -> Result<f64> {
    v.get(key)
        .and_then(JsonValue::as_num)
        .ok_or_else(|| invalid(format!("missing numeric field '{key}'")))
}

fn method_to_json(method: ContractionMethod) -> JsonValue {
    match method {
        ContractionMethod::Exact => JsonValue::object([("type", JsonValue::str("exact"))]),
        ContractionMethod::Bmps { max_bond } => JsonValue::object([
            ("type", JsonValue::str("bmps")),
            ("max_bond", JsonValue::num(max_bond as f64)),
        ]),
        ContractionMethod::Ibmps { max_bond, n_iter, oversample } => JsonValue::object([
            ("type", JsonValue::str("ibmps")),
            ("max_bond", JsonValue::num(max_bond as f64)),
            ("n_iter", JsonValue::num(n_iter as f64)),
            ("oversample", JsonValue::num(oversample as f64)),
        ]),
    }
}

fn method_from_json(v: &JsonValue) -> Result<ContractionMethod> {
    match req_str(v, "type")? {
        "exact" => Ok(ContractionMethod::Exact),
        "bmps" => Ok(ContractionMethod::bmps(req_usize(v, "max_bond")?)),
        "ibmps" => Ok(ContractionMethod::Ibmps {
            max_bond: req_usize(v, "max_bond")?,
            n_iter: opt_usize(v, "n_iter", 2)?,
            oversample: opt_usize(v, "oversample", 10)?,
        }),
        other => Err(invalid(format!("unknown contraction method '{other}'"))),
    }
}

fn bitstrings_to_json(bitstrings: &[Vec<usize>]) -> JsonValue {
    JsonValue::Array(
        bitstrings
            .iter()
            .map(|bits| JsonValue::Array(bits.iter().map(|&b| JsonValue::num(b as f64)).collect()))
            .collect(),
    )
}

fn bitstrings_from_json(v: &JsonValue) -> Result<Vec<Vec<usize>>> {
    let bits_v = v
        .get("bitstrings")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| invalid("missing array field 'bitstrings'"))?;
    let mut bitstrings = Vec::with_capacity(bits_v.len());
    for (i, bits) in bits_v.iter().enumerate() {
        let arr = bits.as_array().ok_or_else(|| invalid(format!("bitstring {i} not an array")))?;
        let mut parsed = Vec::with_capacity(arr.len());
        for b in arr {
            let x = b
                .as_num()
                .ok_or_else(|| invalid(format!("bitstring {i} has a non-numeric bit")))?;
            parsed.push(x as usize);
        }
        bitstrings.push(parsed);
    }
    Ok(bitstrings)
}

/// A gate matrix on the wire: row-major interleaved `[re, im, re, im, ...]`.
/// `f64` values roundtrip exactly through the JSON layer (shortest-roundtrip
/// printing), so a parsed circuit is bit-identical to the submitted one.
fn matrix_to_json(m: &Matrix) -> JsonValue {
    JsonValue::Array(
        m.data().iter().flat_map(|z| [JsonValue::num(z.re), JsonValue::num(z.im)]).collect(),
    )
}

fn matrix_from_json(v: &JsonValue, dim: usize) -> Result<Matrix> {
    let arr = v
        .get("m")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| invalid("unitary gate: missing array field 'm'"))?;
    if arr.len() != 2 * dim * dim {
        return Err(invalid(format!(
            "unitary gate: expected {} floats for a {dim}x{dim} matrix, got {}",
            2 * dim * dim,
            arr.len()
        )));
    }
    let mut data = Vec::with_capacity(dim * dim);
    for pair in arr.chunks(2) {
        let re = pair[0].as_num().ok_or_else(|| invalid("unitary gate: non-numeric entry"))?;
        let im = pair[1].as_num().ok_or_else(|| invalid("unitary gate: non-numeric entry"))?;
        data.push(c64(re, im));
    }
    let mut m = Matrix::from_vec(dim, dim, data).map_err(|e| invalid(e.to_string()))?;
    // Re-derive the structural realness hint lost on the wire, so real
    // unitaries keep the real-kernel fast path after a JSON roundtrip.
    m.mark_real_if_exact();
    Ok(m)
}

fn gate_to_json(gate: &Gate) -> JsonValue {
    match gate {
        Gate::One { qubit, gate } => {
            let mut fields = vec![
                ("g".to_string(), JsonValue::str(gate.tag())),
                ("q".to_string(), JsonValue::num(*qubit as f64)),
            ];
            match gate {
                Gate1::Rx(t) | Gate1::Ry(t) | Gate1::Rz(t) => {
                    fields.push(("theta".to_string(), JsonValue::num(*t)));
                }
                Gate1::Unitary(m) => fields.push(("m".to_string(), matrix_to_json(m))),
                _ => {}
            }
            JsonValue::Object(fields)
        }
        Gate::Two { a, b, gate } => {
            let mut fields = vec![
                ("g".to_string(), JsonValue::str(gate.tag())),
                ("a".to_string(), JsonValue::num(*a as f64)),
                ("b".to_string(), JsonValue::num(*b as f64)),
            ];
            if let Gate2::Unitary(m) = gate {
                fields.push(("m".to_string(), matrix_to_json(m)));
            }
            JsonValue::Object(fields)
        }
    }
}

fn gate_from_json(circuit: &mut Circuit, v: &JsonValue) -> Result<()> {
    let tag = req_str(v, "g")?;
    match tag {
        "h" | "x" | "y" | "z" | "s" | "t" | "rx" | "ry" | "rz" | "u1" => {
            let gate = match tag {
                "h" => Gate1::H,
                "x" => Gate1::X,
                "y" => Gate1::Y,
                "z" => Gate1::Z,
                "s" => Gate1::S,
                "t" => Gate1::T,
                "rx" => Gate1::Rx(req_f64(v, "theta")?),
                "ry" => Gate1::Ry(req_f64(v, "theta")?),
                "rz" => Gate1::Rz(req_f64(v, "theta")?),
                _ => Gate1::Unitary(matrix_from_json(v, 2)?),
            };
            circuit.push_one(req_usize(v, "q")?, gate).map_err(|e| invalid(e.to_string()))?;
        }
        "cnot" | "cz" | "swap" | "u2" => {
            let gate = match tag {
                "cnot" => Gate2::Cnot,
                "cz" => Gate2::Cz,
                "swap" => Gate2::Swap,
                _ => Gate2::Unitary(matrix_from_json(v, 4)?),
            };
            circuit
                .push_two(req_usize(v, "a")?, req_usize(v, "b")?, gate)
                .map_err(|e| invalid(e.to_string()))?;
        }
        other => return Err(invalid(format!("unknown gate tag '{other}'"))),
    }
    Ok(())
}

/// Output of a completed [`IteJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct IteOutput {
    /// Energy per site at each measured step `(step, energy)`.
    pub energies: Vec<(usize, f64)>,
    /// The last measured energy per site.
    pub final_energy: f64,
    /// Maximum bond dimension of the evolved PEPS.
    pub max_bond: usize,
}

/// Output of a completed [`VqeJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct VqeOutput {
    /// Best energy per site found.
    pub best_energy: f64,
    /// Best-so-far energy per site after each optimizer iteration.
    pub energy_history: Vec<f64>,
    /// Optimal parameters.
    pub best_params: Vec<f64>,
    /// Number of objective evaluations.
    pub evaluations: usize,
}

/// Output of a completed [`AmplitudeJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct AmplitudeOutput {
    /// One amplitude per requested bitstring, in request order.
    pub amplitudes: Vec<C64>,
    /// Maximum bond dimension of the evolved PEPS.
    pub max_bond: usize,
}

/// Output of a completed [`CircuitJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitOutput {
    /// One amplitude per requested bitstring, in request order.
    pub amplitudes: Vec<C64>,
    /// Tag of the backend the dispatcher actually executed on.
    pub backend: String,
    /// Maximum bond dimension reached during evolution (0 for statevector).
    pub max_bond: usize,
    /// Gates in the submitted circuit, before structural simplification.
    pub gates_submitted: usize,
    /// Gates actually executed after fusion, absorption, and pruning.
    pub gates_executed: usize,
}

/// The typed result of a successfully completed job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// Result of an [`IteJob`].
    Ite(IteOutput),
    /// Result of a [`VqeJob`].
    Vqe(VqeOutput),
    /// Result of an [`AmplitudeJob`].
    Amplitudes(AmplitudeOutput),
    /// Result of a [`CircuitJob`].
    Circuit(CircuitOutput),
}

impl JobResult {
    /// Serialise to the wire form emitted by the `serve_stdio` binary.
    pub fn to_json(&self) -> JsonValue {
        match self {
            JobResult::Ite(o) => JsonValue::object([
                ("type", JsonValue::str("ite")),
                (
                    "energies",
                    JsonValue::Array(
                        o.energies
                            .iter()
                            .map(|&(s, e)| {
                                JsonValue::Array(vec![JsonValue::num(s as f64), JsonValue::num(e)])
                            })
                            .collect(),
                    ),
                ),
                ("final_energy", JsonValue::num(o.final_energy)),
                ("max_bond", JsonValue::num(o.max_bond as f64)),
            ]),
            JobResult::Vqe(o) => JsonValue::object([
                ("type", JsonValue::str("vqe")),
                ("best_energy", JsonValue::num(o.best_energy)),
                (
                    "energy_history",
                    JsonValue::Array(o.energy_history.iter().map(|&e| JsonValue::num(e)).collect()),
                ),
                (
                    "best_params",
                    JsonValue::Array(o.best_params.iter().map(|&p| JsonValue::num(p)).collect()),
                ),
                ("evaluations", JsonValue::num(o.evaluations as f64)),
            ]),
            JobResult::Amplitudes(o) => JsonValue::object([
                ("type", JsonValue::str("amplitudes")),
                (
                    "amplitudes",
                    JsonValue::Array(
                        o.amplitudes
                            .iter()
                            .map(|a| {
                                JsonValue::Array(vec![JsonValue::num(a.re), JsonValue::num(a.im)])
                            })
                            .collect(),
                    ),
                ),
                ("max_bond", JsonValue::num(o.max_bond as f64)),
            ]),
            JobResult::Circuit(o) => JsonValue::object([
                ("type", JsonValue::str("circuit")),
                (
                    "amplitudes",
                    JsonValue::Array(
                        o.amplitudes
                            .iter()
                            .map(|a| {
                                JsonValue::Array(vec![JsonValue::num(a.re), JsonValue::num(a.im)])
                            })
                            .collect(),
                    ),
                ),
                ("backend", JsonValue::str(&o.backend)),
                ("max_bond", JsonValue::num(o.max_bond as f64)),
                ("gates_submitted", JsonValue::num(o.gates_submitted as f64)),
                ("gates_executed", JsonValue::num(o.gates_executed as f64)),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_ignore_value_inputs_but_not_shapes() {
        let a = IteJob::new(3, 3, 2);
        let mut b = a.clone();
        b.seed = 99;
        b.jz = -0.5;
        b.tau = 0.01;
        assert_eq!(
            JobSpec::Ite(a.clone()).signature(),
            JobSpec::Ite(b).signature(),
            "value-level fields must not split a signature group"
        );
        let mut c = a;
        c.evolution_bond = 3;
        assert_ne!(JobSpec::Ite(IteJob::new(3, 3, 2)).signature(), JobSpec::Ite(c).signature());
    }

    #[test]
    fn amplitude_signature_includes_the_circuit_seed() {
        let a = AmplitudeJob::new(3, 3, ContractionMethod::bmps(8));
        let mut b = a.clone();
        b.circuit_seed ^= 1;
        assert_ne!(
            JobSpec::Amplitudes(a).signature(),
            JobSpec::Amplitudes(b).signature(),
            "the circuit seed fixes gate placement and hence shapes"
        );
    }

    #[test]
    fn validation_rejects_structural_nonsense() {
        let mut j = IteJob::new(3, 3, 2);
        j.steps = 0;
        assert_eq!(JobSpec::Ite(j).validate().unwrap_err().kind(), ErrorKind::InvalidArgument);
        let mut j = IteJob::new(9, 9, 2);
        j.nrows = 100;
        assert!(JobSpec::Ite(j).validate().is_err());
        let mut a = AmplitudeJob::new(2, 2, ContractionMethod::Exact);
        a.bitstrings = vec![vec![0, 1, 2, 0]];
        assert!(JobSpec::Amplitudes(a).validate().is_err());
        let mut v = VqeJob::new(2, 2, VqeBackend::StateVector);
        v.optimizer = Optimizer::NelderMead { scale: 0.4, max_iterations: 0 };
        assert!(JobSpec::Vqe(v).validate().is_err());
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let specs = [
            JobSpec::Ite(IteJob { seed: 123, ..IteJob::new(3, 2, 2) }),
            JobSpec::Vqe(VqeJob {
                optimizer: Optimizer::Spsa { a0: 0.3, c0: 0.2, iterations: 50 },
                ..VqeJob::new(2, 3, VqeBackend::Peps { bond: 2, contraction_bond: 4 })
            }),
            JobSpec::Amplitudes(AmplitudeJob {
                bitstrings: vec![vec![0, 1, 0, 1], vec![1, 1, 0, 0]],
                method: ContractionMethod::ibmps(16),
                ..AmplitudeJob::new(2, 2, ContractionMethod::Exact)
            }),
        ];
        for spec in specs {
            let text = spec.to_json().pretty();
            let parsed = JsonValue::parse(&text).expect("emitted JSON must parse");
            assert_eq!(JobSpec::from_json(&parsed).expect("roundtrip"), spec);
        }
    }

    #[test]
    fn from_json_rejects_unknown_kinds_and_bad_fields() {
        let bad = JsonValue::object([("type", JsonValue::str("teleport"))]);
        assert!(JobSpec::from_json(&bad).is_err());
        let bad =
            JsonValue::object([("type", JsonValue::str("ite")), ("nrows", JsonValue::num(2.5))]);
        assert!(JobSpec::from_json(&bad).is_err());
    }

    /// A circuit exercising every wire case: named gates, rotations with
    /// irrational angles, arbitrary 1q and 2q unitaries, and a lattice.
    fn wire_test_circuit() -> Circuit {
        let mut c = Circuit::with_lattice(2, 2);
        c.push_one(0, Gate1::H).unwrap();
        c.push_one(1, Gate1::Rz(0.123_456_789_012_345_7)).unwrap();
        c.push_one(2, Gate1::Ry(-2.5)).unwrap();
        c.push_one(3, Gate1::Unitary(Gate1::S.matrix())).unwrap();
        c.push_two(0, 1, Gate2::Cnot).unwrap();
        c.push_two(3, 2, Gate2::Cz).unwrap();
        c.push_two(1, 3, Gate2::Unitary(Gate2::Swap.matrix())).unwrap();
        c
    }

    #[test]
    fn circuit_json_roundtrip_preserves_gates_lattice_and_backend() {
        let backends = [
            BackendChoice::Auto,
            BackendChoice::Fixed(Backend::Statevector),
            BackendChoice::Fixed(Backend::Mps { max_bond: 32 }),
            BackendChoice::Fixed(Backend::Peps {
                evolution_bond: 4,
                method: koala_peps::ContractionMethod::bmps(16),
            }),
        ];
        for backend in backends {
            let spec = JobSpec::Circuit(CircuitJob {
                backend,
                seed: 99,
                ..CircuitJob::new(wire_test_circuit(), vec![vec![0, 1, 0, 1], vec![1, 0, 0, 0]])
            });
            spec.validate().expect("test spec is valid");
            let text = spec.to_json().pretty();
            let parsed = JsonValue::parse(&text).expect("emitted JSON must parse");
            assert_eq!(JobSpec::from_json(&parsed).expect("roundtrip"), spec);
        }
    }

    #[test]
    fn circuit_roundtrip_preserves_realness_hints_of_unitaries() {
        // A real arbitrary unitary must come back real-hinted so the served
        // path keeps the real-kernel fast path after deserialisation.
        let mut c = Circuit::new(2);
        c.push_one(0, Gate1::Unitary(Gate1::H.matrix())).unwrap();
        c.push_two(0, 1, Gate2::Unitary(Gate2::Cnot.matrix())).unwrap();
        let spec = JobSpec::Circuit(CircuitJob::new(c, vec![vec![0, 0]]));
        let parsed = JsonValue::parse(&spec.to_json().pretty()).unwrap();
        let JobSpec::Circuit(job) = JobSpec::from_json(&parsed).unwrap() else {
            panic!("wrong kind");
        };
        for gate in job.circuit.gates() {
            let real = match gate {
                Gate::One { gate, .. } => gate.matrix().is_real(),
                Gate::Two { gate, .. } => gate.matrix().is_real(),
            };
            assert!(real, "real unitary lost its hint on the wire");
        }
    }

    #[test]
    fn circuit_signature_is_value_blind_but_structure_aware() {
        let a = CircuitJob::new(wire_test_circuit(), vec![vec![0; 4]]);
        let mut b = a.clone();
        let mut c2 = Circuit::with_lattice(2, 2);
        c2.push_one(0, Gate1::H).unwrap();
        c2.push_one(1, Gate1::Rz(1.875)).unwrap(); // different angle, same shape
        c2.push_one(2, Gate1::Ry(0.25)).unwrap();
        c2.push_one(3, Gate1::Unitary(Gate1::T.matrix())).unwrap(); // same zero pattern as S
        c2.push_two(0, 1, Gate2::Cnot).unwrap();
        c2.push_two(3, 2, Gate2::Cz).unwrap();
        c2.push_two(1, 3, Gate2::Unitary(Gate2::Swap.matrix())).unwrap();
        b.circuit = c2;
        assert_eq!(
            JobSpec::Circuit(a.clone()).signature(),
            JobSpec::Circuit(b).signature(),
            "parameter values must not split a signature group"
        );
        let mut c = a.clone();
        let mut moved = wire_test_circuit();
        moved.push_one(0, Gate1::X).unwrap();
        c.circuit = moved;
        assert_ne!(
            JobSpec::Circuit(a).signature(),
            JobSpec::Circuit(c).signature(),
            "an extra gate changes the structure"
        );
    }

    #[test]
    fn circuit_validation_rejects_bad_jobs() {
        // Wrong bitstring length.
        let j = CircuitJob::new(wire_test_circuit(), vec![vec![0, 1]]);
        assert_eq!(JobSpec::Circuit(j).validate().unwrap_err().kind(), ErrorKind::InvalidArgument);
        // Non-binary bit.
        let j = CircuitJob::new(wire_test_circuit(), vec![vec![0, 1, 2, 0]]);
        assert!(JobSpec::Circuit(j).validate().is_err());
        // No bitstrings at all.
        let j = CircuitJob::new(wire_test_circuit(), vec![]);
        assert!(JobSpec::Circuit(j).validate().is_err());
        // Statevector pinned above its qubit limit.
        let mut j = CircuitJob::new(Circuit::new(30), vec![vec![0; 30]]);
        j.backend = BackendChoice::Fixed(Backend::Statevector);
        assert!(JobSpec::Circuit(j).validate().is_err());
        // Degenerate bond caps.
        let mut j = CircuitJob::new(wire_test_circuit(), vec![vec![0; 4]]);
        j.backend = BackendChoice::Fixed(Backend::Mps { max_bond: 0 });
        assert!(JobSpec::Circuit(j).validate().is_err());
    }
}
