//! Typed job specifications and results.
//!
//! A [`JobSpec`] is a self-contained, validated description of one unit of
//! service work — everything the engine needs to reproduce the run bit for
//! bit (lattice shape, model couplings, algorithm knobs, and the RNG seeds).
//! The three variants mirror the repository's example workloads:
//!
//! * [`IteJob`] — imaginary-time-evolution ground-state search (Figure 13),
//! * [`VqeJob`] — variational ground-state energy (Figure 14),
//! * [`AmplitudeJob`] — batched random-circuit output amplitudes (Figure 10).
//!
//! Every spec has a [`signature`](JobSpec::signature): a string key over the
//! *shape-determining* fields (lattice, bonds, layers, step counts — but not
//! value-level inputs like couplings or value seeds). Jobs sharing a
//! signature execute the same einsum specs on the same tensor shapes, so the
//! scheduler runs them leader-first and the followers hit warm plan-cache
//! stripes (see [`crate::Server::drain`]). The amplitude signature *does*
//! include the circuit seed, because the random circuit's gate placement
//! determines the evolved bond dimensions and hence the contraction shapes.

use koala_error::{ErrorKind, KoalaError};
use koala_json::JsonValue;
use koala_linalg::C64;
use koala_peps::ContractionMethod;
use koala_sim::{Optimizer, VqeBackend};

/// Result type used by the serve layer.
pub type Result<T> = std::result::Result<T, KoalaError>;

fn invalid(msg: impl Into<String>) -> KoalaError {
    KoalaError::new(ErrorKind::InvalidArgument, msg)
}

/// Largest lattice (in sites) a job may request; keeps a single mis-typed
/// spec from pinning the whole service.
pub const MAX_SITES: usize = 64;

fn validate_lattice(nrows: usize, ncols: usize) -> Result<()> {
    if nrows == 0 || ncols == 0 {
        return Err(invalid(format!("lattice {nrows}x{ncols}: dimensions must be >= 1")));
    }
    if nrows * ncols > MAX_SITES {
        return Err(invalid(format!(
            "lattice {nrows}x{ncols}: {} sites exceeds the service cap of {MAX_SITES}",
            nrows * ncols
        )));
    }
    Ok(())
}

/// Imaginary-time-evolution ground-state job on the transverse-field Ising
/// model: evolve `|0...0>` with PEPS-TEBD and report the measured energies.
#[derive(Debug, Clone, PartialEq)]
pub struct IteJob {
    /// Lattice rows.
    pub nrows: usize,
    /// Lattice columns.
    pub ncols: usize,
    /// Ising coupling `Jz`.
    pub jz: f64,
    /// Transverse field `hx`.
    pub hx: f64,
    /// Trotter step size `tau`.
    pub tau: f64,
    /// Number of ITE steps.
    pub steps: usize,
    /// Evolution bond dimension `r`.
    pub evolution_bond: usize,
    /// Contraction bond dimension `m` for energy measurement.
    pub contraction_bond: usize,
    /// Measure the energy every this many steps.
    pub measure_every: usize,
    /// Seed of the run's RNG stream (IBMPS sketches).
    pub seed: u64,
}

impl IteJob {
    /// A laptop-friendly default mirroring the `ite_ground_state` example:
    /// `Jz = -1, hx = -2`, `tau = 0.05`, 40 steps measured every 5.
    pub fn new(nrows: usize, ncols: usize, evolution_bond: usize) -> IteJob {
        IteJob {
            nrows,
            ncols,
            jz: -1.0,
            hx: -2.0,
            tau: 0.05,
            steps: 40,
            evolution_bond,
            contraction_bond: (evolution_bond * evolution_bond).max(2),
            measure_every: 5,
            seed: 7,
        }
    }

    fn validate(&self) -> Result<()> {
        validate_lattice(self.nrows, self.ncols)?;
        if !(self.tau.is_finite() && self.tau > 0.0) {
            return Err(invalid(format!("ite: tau must be finite and positive, got {}", self.tau)));
        }
        if !(self.jz.is_finite() && self.hx.is_finite()) {
            return Err(invalid("ite: couplings jz/hx must be finite"));
        }
        if self.steps == 0 {
            return Err(invalid("ite: steps must be >= 1"));
        }
        if self.evolution_bond == 0 || self.contraction_bond == 0 {
            return Err(invalid("ite: bond dimensions must be >= 1"));
        }
        if self.measure_every == 0 {
            return Err(invalid("ite: measure_every must be >= 1"));
        }
        Ok(())
    }

    fn signature(&self) -> String {
        format!(
            "ite/{}x{}/r{}/m{}/steps{}/every{}",
            self.nrows,
            self.ncols,
            self.evolution_bond,
            self.contraction_bond,
            self.steps,
            self.measure_every
        )
    }
}

/// Variational-quantum-eigensolver job on the transverse-field Ising model.
#[derive(Debug, Clone, PartialEq)]
pub struct VqeJob {
    /// Lattice rows.
    pub nrows: usize,
    /// Lattice columns.
    pub ncols: usize,
    /// Ising coupling `Jz`.
    pub jz: f64,
    /// Transverse field `hx`.
    pub hx: f64,
    /// Ansatz layers (Ry on every site + CNOT ladder per layer).
    pub layers: usize,
    /// Simulation backend for the ansatz state.
    pub backend: VqeBackend,
    /// Classical optimizer.
    pub optimizer: Optimizer,
    /// Seed of the run's RNG stream (objective evaluations and SPSA).
    pub seed: u64,
}

impl VqeJob {
    /// A laptop-friendly default mirroring the `vqe_tfi` example: the paper's
    /// Figure 14 couplings, one ansatz layer, Nelder–Mead with 60 iterations.
    pub fn new(nrows: usize, ncols: usize, backend: VqeBackend) -> VqeJob {
        VqeJob {
            nrows,
            ncols,
            jz: -1.0,
            hx: -3.5,
            layers: 1,
            backend,
            optimizer: Optimizer::NelderMead { scale: 0.4, max_iterations: 60 },
            seed: 11,
        }
    }

    fn validate(&self) -> Result<()> {
        validate_lattice(self.nrows, self.ncols)?;
        if !(self.jz.is_finite() && self.hx.is_finite()) {
            return Err(invalid("vqe: couplings jz/hx must be finite"));
        }
        if self.layers == 0 {
            return Err(invalid("vqe: layers must be >= 1"));
        }
        if let VqeBackend::Peps { bond, contraction_bond } = self.backend {
            if bond == 0 || contraction_bond == 0 {
                return Err(invalid("vqe: PEPS backend bond dimensions must be >= 1"));
            }
        }
        let budget = match self.optimizer {
            Optimizer::NelderMead { max_iterations, .. } => max_iterations,
            Optimizer::Spsa { iterations, .. } => iterations,
        };
        if budget == 0 {
            return Err(invalid("vqe: optimizer iteration budget must be >= 1"));
        }
        Ok(())
    }

    fn signature(&self) -> String {
        format!(
            "vqe/{}x{}/l{}/{:?}/{:?}",
            self.nrows, self.ncols, self.layers, self.backend, self.optimizer
        )
    }
}

/// Batched random-quantum-circuit amplitude job: evolve `|0...0>` under a
/// seeded random circuit, then contract one amplitude per requested
/// bitstring.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplitudeJob {
    /// Lattice rows.
    pub nrows: usize,
    /// Lattice columns.
    pub ncols: usize,
    /// Circuit layers.
    pub layers: usize,
    /// Entangling-layer period of the random circuit.
    pub entangle_every: usize,
    /// Seed selecting the random circuit (part of the signature: it fixes
    /// the gate placement and hence the evolved tensor shapes).
    pub circuit_seed: u64,
    /// Bond-dimension cap for the circuit evolution.
    pub evolution_bond: usize,
    /// Contraction method for the amplitudes.
    pub method: ContractionMethod,
    /// Bitstrings (row-major, one bit per site) to compute amplitudes for.
    pub bitstrings: Vec<Vec<usize>>,
    /// Seed of the contraction RNG stream (IBMPS sketches).
    pub seed: u64,
}

impl AmplitudeJob {
    /// A laptop-friendly default mirroring the `rqc_amplitude` example: a
    /// 3x3-suitable 8-layer circuit with an entangling layer every 4,
    /// evolved exactly, asking for the all-zeros amplitude.
    pub fn new(nrows: usize, ncols: usize, method: ContractionMethod) -> AmplitudeJob {
        AmplitudeJob {
            nrows,
            ncols,
            layers: 8,
            entangle_every: 4,
            circuit_seed: 21,
            evolution_bond: 1 << 16,
            method,
            bitstrings: vec![vec![0; nrows * ncols]],
            seed: 21,
        }
    }

    fn validate(&self) -> Result<()> {
        validate_lattice(self.nrows, self.ncols)?;
        if self.layers == 0 || self.entangle_every == 0 {
            return Err(invalid("amplitudes: layers and entangle_every must be >= 1"));
        }
        if self.evolution_bond == 0 {
            return Err(invalid("amplitudes: evolution_bond must be >= 1"));
        }
        match self.method {
            ContractionMethod::Exact => {}
            ContractionMethod::Bmps { max_bond } | ContractionMethod::Ibmps { max_bond, .. } => {
                if max_bond == 0 {
                    return Err(invalid("amplitudes: contraction max_bond must be >= 1"));
                }
            }
        }
        if self.bitstrings.is_empty() {
            return Err(invalid("amplitudes: at least one bitstring is required"));
        }
        let n = self.nrows * self.ncols;
        for (i, bits) in self.bitstrings.iter().enumerate() {
            if bits.len() != n {
                return Err(invalid(format!(
                    "amplitudes: bitstring {i} has {} bits, lattice has {n} sites",
                    bits.len()
                )));
            }
            if bits.iter().any(|&b| b > 1) {
                return Err(invalid(format!("amplitudes: bitstring {i} has a bit outside 0/1")));
            }
        }
        Ok(())
    }

    fn signature(&self) -> String {
        format!(
            "amp/{}x{}/l{}/e{}/cs{}/r{}/{:?}/n{}",
            self.nrows,
            self.ncols,
            self.layers,
            self.entangle_every,
            self.circuit_seed,
            self.evolution_bond,
            self.method,
            self.bitstrings.len()
        )
    }
}

/// A typed, validated unit of service work.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Imaginary-time-evolution ground-state search.
    Ite(IteJob),
    /// Variational ground-state energy.
    Vqe(VqeJob),
    /// Batched circuit amplitudes.
    Amplitudes(AmplitudeJob),
}

impl JobSpec {
    /// Check every field for structural validity. [`crate::Server::submit`]
    /// rejects invalid specs with [`ErrorKind::InvalidArgument`] before they
    /// reach the queue.
    pub fn validate(&self) -> Result<()> {
        match self {
            JobSpec::Ite(j) => j.validate(),
            JobSpec::Vqe(j) => j.validate(),
            JobSpec::Amplitudes(j) => j.validate(),
        }
    }

    /// Workload-signature key: jobs sharing a signature run the same einsum
    /// specs over the same tensor shapes, so the scheduler serialises them
    /// leader-first to keep every follower on warm plan-cache stripes.
    pub fn signature(&self) -> String {
        match self {
            JobSpec::Ite(j) => j.signature(),
            JobSpec::Vqe(j) => j.signature(),
            JobSpec::Amplitudes(j) => j.signature(),
        }
    }

    /// Short kind tag (`"ite"` / `"vqe"` / `"amplitudes"`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Ite(_) => "ite",
            JobSpec::Vqe(_) => "vqe",
            JobSpec::Amplitudes(_) => "amplitudes",
        }
    }

    /// Serialise to the wire form understood by [`JobSpec::from_json`] and
    /// the `serve_stdio` binary.
    pub fn to_json(&self) -> JsonValue {
        match self {
            JobSpec::Ite(j) => JsonValue::object([
                ("type", JsonValue::str("ite")),
                ("nrows", JsonValue::num(j.nrows as f64)),
                ("ncols", JsonValue::num(j.ncols as f64)),
                ("jz", JsonValue::num(j.jz)),
                ("hx", JsonValue::num(j.hx)),
                ("tau", JsonValue::num(j.tau)),
                ("steps", JsonValue::num(j.steps as f64)),
                ("evolution_bond", JsonValue::num(j.evolution_bond as f64)),
                ("contraction_bond", JsonValue::num(j.contraction_bond as f64)),
                ("measure_every", JsonValue::num(j.measure_every as f64)),
                ("seed", JsonValue::num(j.seed as f64)),
            ]),
            JobSpec::Vqe(j) => {
                let backend = match j.backend {
                    VqeBackend::StateVector => {
                        JsonValue::object([("type", JsonValue::str("statevector"))])
                    }
                    VqeBackend::Peps { bond, contraction_bond } => JsonValue::object([
                        ("type", JsonValue::str("peps")),
                        ("bond", JsonValue::num(bond as f64)),
                        ("contraction_bond", JsonValue::num(contraction_bond as f64)),
                    ]),
                };
                let optimizer = match j.optimizer {
                    Optimizer::NelderMead { scale, max_iterations } => JsonValue::object([
                        ("type", JsonValue::str("nelder_mead")),
                        ("scale", JsonValue::num(scale)),
                        ("max_iterations", JsonValue::num(max_iterations as f64)),
                    ]),
                    Optimizer::Spsa { a0, c0, iterations } => JsonValue::object([
                        ("type", JsonValue::str("spsa")),
                        ("a0", JsonValue::num(a0)),
                        ("c0", JsonValue::num(c0)),
                        ("iterations", JsonValue::num(iterations as f64)),
                    ]),
                };
                JsonValue::object([
                    ("type", JsonValue::str("vqe")),
                    ("nrows", JsonValue::num(j.nrows as f64)),
                    ("ncols", JsonValue::num(j.ncols as f64)),
                    ("jz", JsonValue::num(j.jz)),
                    ("hx", JsonValue::num(j.hx)),
                    ("layers", JsonValue::num(j.layers as f64)),
                    ("backend", backend),
                    ("optimizer", optimizer),
                    ("seed", JsonValue::num(j.seed as f64)),
                ])
            }
            JobSpec::Amplitudes(j) => {
                let method = match j.method {
                    ContractionMethod::Exact => {
                        JsonValue::object([("type", JsonValue::str("exact"))])
                    }
                    ContractionMethod::Bmps { max_bond } => JsonValue::object([
                        ("type", JsonValue::str("bmps")),
                        ("max_bond", JsonValue::num(max_bond as f64)),
                    ]),
                    ContractionMethod::Ibmps { max_bond, n_iter, oversample } => {
                        JsonValue::object([
                            ("type", JsonValue::str("ibmps")),
                            ("max_bond", JsonValue::num(max_bond as f64)),
                            ("n_iter", JsonValue::num(n_iter as f64)),
                            ("oversample", JsonValue::num(oversample as f64)),
                        ])
                    }
                };
                let bitstrings = JsonValue::Array(
                    j.bitstrings
                        .iter()
                        .map(|bits| {
                            JsonValue::Array(
                                bits.iter().map(|&b| JsonValue::num(b as f64)).collect(),
                            )
                        })
                        .collect(),
                );
                JsonValue::object([
                    ("type", JsonValue::str("amplitudes")),
                    ("nrows", JsonValue::num(j.nrows as f64)),
                    ("ncols", JsonValue::num(j.ncols as f64)),
                    ("layers", JsonValue::num(j.layers as f64)),
                    ("entangle_every", JsonValue::num(j.entangle_every as f64)),
                    ("circuit_seed", JsonValue::num(j.circuit_seed as f64)),
                    ("evolution_bond", JsonValue::num(j.evolution_bond as f64)),
                    ("method", method),
                    ("bitstrings", bitstrings),
                    ("seed", JsonValue::num(j.seed as f64)),
                ])
            }
        }
    }

    /// Parse the wire form produced by [`JobSpec::to_json`]. The parsed spec
    /// is validated before being returned.
    ///
    /// Integer fields travel as JSON numbers (`f64`); seeds and counters are
    /// exact up to 2^53, far beyond any spec this service accepts.
    pub fn from_json(v: &JsonValue) -> Result<JobSpec> {
        let kind = req_str(v, "type")?;
        let spec = match kind {
            "ite" => JobSpec::Ite(IteJob {
                nrows: req_usize(v, "nrows")?,
                ncols: req_usize(v, "ncols")?,
                jz: opt_f64(v, "jz", -1.0)?,
                hx: opt_f64(v, "hx", -2.0)?,
                tau: opt_f64(v, "tau", 0.05)?,
                steps: req_usize(v, "steps")?,
                evolution_bond: req_usize(v, "evolution_bond")?,
                contraction_bond: req_usize(v, "contraction_bond")?,
                measure_every: opt_usize(v, "measure_every", 1)?,
                seed: opt_u64(v, "seed", 0)?,
            }),
            "vqe" => {
                let backend_v =
                    v.get("backend").ok_or_else(|| invalid("vqe: missing field 'backend'"))?;
                let backend = match req_str(backend_v, "type")? {
                    "statevector" => VqeBackend::StateVector,
                    "peps" => VqeBackend::Peps {
                        bond: req_usize(backend_v, "bond")?,
                        contraction_bond: req_usize(backend_v, "contraction_bond")?,
                    },
                    other => return Err(invalid(format!("vqe: unknown backend '{other}'"))),
                };
                let opt_v =
                    v.get("optimizer").ok_or_else(|| invalid("vqe: missing field 'optimizer'"))?;
                let optimizer = match req_str(opt_v, "type")? {
                    "nelder_mead" => Optimizer::NelderMead {
                        scale: opt_f64(opt_v, "scale", 0.4)?,
                        max_iterations: req_usize(opt_v, "max_iterations")?,
                    },
                    "spsa" => Optimizer::Spsa {
                        a0: opt_f64(opt_v, "a0", 0.3)?,
                        c0: opt_f64(opt_v, "c0", 0.2)?,
                        iterations: req_usize(opt_v, "iterations")?,
                    },
                    other => return Err(invalid(format!("vqe: unknown optimizer '{other}'"))),
                };
                JobSpec::Vqe(VqeJob {
                    nrows: req_usize(v, "nrows")?,
                    ncols: req_usize(v, "ncols")?,
                    jz: opt_f64(v, "jz", -1.0)?,
                    hx: opt_f64(v, "hx", -3.5)?,
                    layers: opt_usize(v, "layers", 1)?,
                    backend,
                    optimizer,
                    seed: opt_u64(v, "seed", 0)?,
                })
            }
            "amplitudes" => {
                let method_v =
                    v.get("method").ok_or_else(|| invalid("amplitudes: missing field 'method'"))?;
                let method = match req_str(method_v, "type")? {
                    "exact" => ContractionMethod::Exact,
                    "bmps" => ContractionMethod::bmps(req_usize(method_v, "max_bond")?),
                    "ibmps" => ContractionMethod::Ibmps {
                        max_bond: req_usize(method_v, "max_bond")?,
                        n_iter: opt_usize(method_v, "n_iter", 2)?,
                        oversample: opt_usize(method_v, "oversample", 10)?,
                    },
                    other => return Err(invalid(format!("amplitudes: unknown method '{other}'"))),
                };
                let bits_v = v
                    .get("bitstrings")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| invalid("amplitudes: missing array field 'bitstrings'"))?;
                let mut bitstrings = Vec::with_capacity(bits_v.len());
                for (i, bits) in bits_v.iter().enumerate() {
                    let arr = bits.as_array().ok_or_else(|| {
                        invalid(format!("amplitudes: bitstring {i} not an array"))
                    })?;
                    let mut parsed = Vec::with_capacity(arr.len());
                    for b in arr {
                        let x = b.as_num().ok_or_else(|| {
                            invalid(format!("amplitudes: bitstring {i} has a non-numeric bit"))
                        })?;
                        parsed.push(x as usize);
                    }
                    bitstrings.push(parsed);
                }
                JobSpec::Amplitudes(AmplitudeJob {
                    nrows: req_usize(v, "nrows")?,
                    ncols: req_usize(v, "ncols")?,
                    layers: opt_usize(v, "layers", 8)?,
                    entangle_every: opt_usize(v, "entangle_every", 4)?,
                    circuit_seed: opt_u64(v, "circuit_seed", 0)?,
                    evolution_bond: opt_usize(v, "evolution_bond", 1 << 16)?,
                    method,
                    bitstrings,
                    seed: opt_u64(v, "seed", 0)?,
                })
            }
            other => return Err(invalid(format!("unknown job type '{other}'"))),
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn req_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| invalid(format!("missing string field '{key}'")))
}

fn req_usize(v: &JsonValue, key: &str) -> Result<usize> {
    let x = v
        .get(key)
        .and_then(JsonValue::as_num)
        .ok_or_else(|| invalid(format!("missing numeric field '{key}'")))?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(invalid(format!("field '{key}' must be a non-negative integer, got {x}")));
    }
    Ok(x as usize)
}

fn opt_usize(v: &JsonValue, key: &str, default: usize) -> Result<usize> {
    match v.get(key) {
        None => Ok(default),
        Some(_) => req_usize(v, key),
    }
}

fn opt_u64(v: &JsonValue, key: &str, default: u64) -> Result<u64> {
    match v.get(key) {
        None => Ok(default),
        Some(_) => Ok(req_usize(v, key)? as u64),
    }
}

fn opt_f64(v: &JsonValue, key: &str, default: f64) -> Result<f64> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x.as_num().ok_or_else(|| invalid(format!("field '{key}' must be a number"))),
    }
}

/// Output of a completed [`IteJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct IteOutput {
    /// Energy per site at each measured step `(step, energy)`.
    pub energies: Vec<(usize, f64)>,
    /// The last measured energy per site.
    pub final_energy: f64,
    /// Maximum bond dimension of the evolved PEPS.
    pub max_bond: usize,
}

/// Output of a completed [`VqeJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct VqeOutput {
    /// Best energy per site found.
    pub best_energy: f64,
    /// Best-so-far energy per site after each optimizer iteration.
    pub energy_history: Vec<f64>,
    /// Optimal parameters.
    pub best_params: Vec<f64>,
    /// Number of objective evaluations.
    pub evaluations: usize,
}

/// Output of a completed [`AmplitudeJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct AmplitudeOutput {
    /// One amplitude per requested bitstring, in request order.
    pub amplitudes: Vec<C64>,
    /// Maximum bond dimension of the evolved PEPS.
    pub max_bond: usize,
}

/// The typed result of a successfully completed job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// Result of an [`IteJob`].
    Ite(IteOutput),
    /// Result of a [`VqeJob`].
    Vqe(VqeOutput),
    /// Result of an [`AmplitudeJob`].
    Amplitudes(AmplitudeOutput),
}

impl JobResult {
    /// Serialise to the wire form emitted by the `serve_stdio` binary.
    pub fn to_json(&self) -> JsonValue {
        match self {
            JobResult::Ite(o) => JsonValue::object([
                ("type", JsonValue::str("ite")),
                (
                    "energies",
                    JsonValue::Array(
                        o.energies
                            .iter()
                            .map(|&(s, e)| {
                                JsonValue::Array(vec![JsonValue::num(s as f64), JsonValue::num(e)])
                            })
                            .collect(),
                    ),
                ),
                ("final_energy", JsonValue::num(o.final_energy)),
                ("max_bond", JsonValue::num(o.max_bond as f64)),
            ]),
            JobResult::Vqe(o) => JsonValue::object([
                ("type", JsonValue::str("vqe")),
                ("best_energy", JsonValue::num(o.best_energy)),
                (
                    "energy_history",
                    JsonValue::Array(o.energy_history.iter().map(|&e| JsonValue::num(e)).collect()),
                ),
                (
                    "best_params",
                    JsonValue::Array(o.best_params.iter().map(|&p| JsonValue::num(p)).collect()),
                ),
                ("evaluations", JsonValue::num(o.evaluations as f64)),
            ]),
            JobResult::Amplitudes(o) => JsonValue::object([
                ("type", JsonValue::str("amplitudes")),
                (
                    "amplitudes",
                    JsonValue::Array(
                        o.amplitudes
                            .iter()
                            .map(|a| {
                                JsonValue::Array(vec![JsonValue::num(a.re), JsonValue::num(a.im)])
                            })
                            .collect(),
                    ),
                ),
                ("max_bond", JsonValue::num(o.max_bond as f64)),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_ignore_value_inputs_but_not_shapes() {
        let a = IteJob::new(3, 3, 2);
        let mut b = a.clone();
        b.seed = 99;
        b.jz = -0.5;
        b.tau = 0.01;
        assert_eq!(
            JobSpec::Ite(a.clone()).signature(),
            JobSpec::Ite(b).signature(),
            "value-level fields must not split a signature group"
        );
        let mut c = a;
        c.evolution_bond = 3;
        assert_ne!(JobSpec::Ite(IteJob::new(3, 3, 2)).signature(), JobSpec::Ite(c).signature());
    }

    #[test]
    fn amplitude_signature_includes_the_circuit_seed() {
        let a = AmplitudeJob::new(3, 3, ContractionMethod::bmps(8));
        let mut b = a.clone();
        b.circuit_seed ^= 1;
        assert_ne!(
            JobSpec::Amplitudes(a).signature(),
            JobSpec::Amplitudes(b).signature(),
            "the circuit seed fixes gate placement and hence shapes"
        );
    }

    #[test]
    fn validation_rejects_structural_nonsense() {
        let mut j = IteJob::new(3, 3, 2);
        j.steps = 0;
        assert_eq!(JobSpec::Ite(j).validate().unwrap_err().kind(), ErrorKind::InvalidArgument);
        let mut j = IteJob::new(9, 9, 2);
        j.nrows = 100;
        assert!(JobSpec::Ite(j).validate().is_err());
        let mut a = AmplitudeJob::new(2, 2, ContractionMethod::Exact);
        a.bitstrings = vec![vec![0, 1, 2, 0]];
        assert!(JobSpec::Amplitudes(a).validate().is_err());
        let mut v = VqeJob::new(2, 2, VqeBackend::StateVector);
        v.optimizer = Optimizer::NelderMead { scale: 0.4, max_iterations: 0 };
        assert!(JobSpec::Vqe(v).validate().is_err());
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let specs = [
            JobSpec::Ite(IteJob { seed: 123, ..IteJob::new(3, 2, 2) }),
            JobSpec::Vqe(VqeJob {
                optimizer: Optimizer::Spsa { a0: 0.3, c0: 0.2, iterations: 50 },
                ..VqeJob::new(2, 3, VqeBackend::Peps { bond: 2, contraction_bond: 4 })
            }),
            JobSpec::Amplitudes(AmplitudeJob {
                bitstrings: vec![vec![0, 1, 0, 1], vec![1, 1, 0, 0]],
                method: ContractionMethod::ibmps(16),
                ..AmplitudeJob::new(2, 2, ContractionMethod::Exact)
            }),
        ];
        for spec in specs {
            let text = spec.to_json().pretty();
            let parsed = JsonValue::parse(&text).expect("emitted JSON must parse");
            assert_eq!(JobSpec::from_json(&parsed).expect("roundtrip"), spec);
        }
    }

    #[test]
    fn from_json_rejects_unknown_kinds_and_bad_fields() {
        let bad = JsonValue::object([("type", JsonValue::str("teleport"))]);
        assert!(JobSpec::from_json(&bad).is_err());
        let bad =
            JsonValue::object([("type", JsonValue::str("ite")), ("nrows", JsonValue::num(2.5))]);
        assert!(JobSpec::from_json(&bad).is_err());
    }
}
