//! # koala-serve
//!
//! Multi-tenant simulation service for the koala-rs stack: a typed job
//! front door over the engine's workloads (ITE ground state, VQE energy,
//! batched random-circuit amplitudes, and gate-list circuits through the
//! `koala-circuit` front end).
//!
//! Two entry points share all scheduling and billing machinery:
//!
//! * the in-process API — build a [`Server`], [`Server::submit`] typed
//!   [`JobSpec`]s for named tenants, [`Server::drain`] the batch, read
//!   [`JobOutcome`]s;
//! * the `serve_stdio` binary — a minimal line-delimited JSON stdin/stdout
//!   server (this build environment is network-free) speaking the same
//!   specs over the wire.
//!
//! # What the service guarantees
//!
//! * **Bit-identical results.** A job's seeds fix its RNG streams and the
//!   executor's determinism contract fixes every floating-point
//!   accumulation order, so a job drained alongside seven others returns
//!   exactly the bits it returns alone.
//! * **Exact billing.** Each job runs inside its own [`WorkMeter`] scope;
//!   the scope travels with executor tasks, so the [`JobReceipt`] counts
//!   precisely the complex/real multiply-adds and bytes that job caused on
//!   any pool worker — and sibling receipts sum exactly to the process
//!   global meter delta.
//! * **Warm-cache batching.** Jobs sharing a workload
//!   [`signature`](JobSpec::signature) are chained leader-first so only the
//!   first of a group pays einsum plan-cache misses.
//! * **Bounded admission, cooperative eviction.** The queue rejects
//!   overflow ([`koala_error::ErrorKind::Exhausted`]); every job carries a
//!   [`koala_exec::CancelToken`] and an optional deadline enforced by a
//!   watchdog thread.

#![warn(missing_docs)]
// Service code must not panic on fallible paths: every failure becomes a
// `KoalaError` (invalid spec, full queue) or a failed `JobReceipt`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod server;
pub mod spec;

pub use server::{JobOutcome, JobReceipt, JobStatus, Server, ServerConfig, Submission};
pub use spec::{
    AmplitudeJob, AmplitudeOutput, CircuitJob, CircuitOutput, IteJob, IteOutput, JobResult,
    JobSpec, Result, VqeJob, VqeOutput, MAX_CIRCUIT_GATES,
};

pub use koala_exec::{CancelToken, WorkLedger, WorkMeter};
