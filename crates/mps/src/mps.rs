//! Matrix product states.
//!
//! Site tensors use the axis convention `[left bond, physical, right bond]`;
//! the first and last bonds have dimension 1. In the boundary-MPS contraction
//! of a PEPS (paper Algorithm 2) the "physical" index is the open index that
//! points at the next, not yet absorbed, row of the PEPS.

use koala_linalg::{c64, C64};
use koala_tensor::{qr_split, svd_split, tensordot, Tensor, TensorError, Truncation};
use rand::Rng;

/// Result alias shared by the MPS layer.
pub type Result<T> = std::result::Result<T, TensorError>;

/// A matrix product state: a chain of rank-3 tensors `[l, p, r]`.
#[derive(Debug, Clone)]
pub struct Mps {
    tensors: Vec<Tensor>,
}

impl Mps {
    /// Build from site tensors, validating ranks and bond matching.
    pub fn new(tensors: Vec<Tensor>) -> Result<Self> {
        if tensors.is_empty() {
            return Err(TensorError::ShapeMismatch { context: "Mps::new: empty chain".into() });
        }
        for (i, t) in tensors.iter().enumerate() {
            if t.ndim() != 3 {
                return Err(TensorError::ShapeMismatch {
                    context: format!("Mps::new: site {i} has rank {} (expected 3)", t.ndim()),
                });
            }
        }
        if tensors[0].dim(0) != 1 || tensors[tensors.len() - 1].dim(2) != 1 {
            return Err(TensorError::ShapeMismatch {
                context: "Mps::new: boundary bonds must have dimension 1".into(),
            });
        }
        for i in 0..tensors.len() - 1 {
            if tensors[i].dim(2) != tensors[i + 1].dim(0) {
                return Err(TensorError::ShapeMismatch {
                    context: format!(
                        "Mps::new: bond between sites {i} and {} does not match ({} vs {})",
                        i + 1,
                        tensors[i].dim(2),
                        tensors[i + 1].dim(0)
                    ),
                });
            }
        }
        Ok(Mps { tensors })
    }

    /// A product (bond-dimension-1) state with the given per-site vectors.
    pub fn product_state(site_vectors: &[Vec<C64>]) -> Result<Self> {
        let tensors = site_vectors
            .iter()
            .map(|v| Tensor::from_vec(&[1, v.len(), 1], v.clone()))
            .collect::<Result<Vec<_>>>()?;
        Mps::new(tensors)
    }

    /// The all-zeros computational basis state |00...0> with physical dimension `d`.
    pub fn computational_zeros(n_sites: usize, d: usize) -> Self {
        let mut v = vec![C64::ZERO; d];
        v[0] = C64::ONE;
        Mps::product_state(&vec![v; n_sites])
            .unwrap_or_else(|e| unreachable!("computational_zeros: invalid state: {e}"))
    }

    /// Random MPS with the given physical and (uniform) bond dimension.
    pub fn random<R: Rng + ?Sized>(
        n_sites: usize,
        phys_dim: usize,
        bond_dim: usize,
        rng: &mut R,
    ) -> Self {
        let mut tensors = Vec::with_capacity(n_sites);
        for i in 0..n_sites {
            let l = if i == 0 { 1 } else { bond_dim };
            let r = if i == n_sites - 1 { 1 } else { bond_dim };
            tensors.push(Tensor::random(&[l, phys_dim, r], rng));
        }
        Mps::new(tensors).unwrap_or_else(|e| unreachable!("random: construction cannot fail: {e}"))
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True if the chain is empty (never the case for a valid MPS).
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Site tensors.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// One site tensor.
    pub fn tensor(&self, i: usize) -> &Tensor {
        &self.tensors[i]
    }

    /// Replace one site tensor (bond consistency is the caller's concern).
    pub fn set_tensor(&mut self, i: usize, t: Tensor) {
        self.tensors[i] = t;
    }

    /// Physical dimensions of every site.
    pub fn phys_dims(&self) -> Vec<usize> {
        self.tensors.iter().map(|t| t.dim(1)).collect()
    }

    /// Bond dimensions between consecutive sites (length `len() - 1`).
    pub fn bond_dims(&self) -> Vec<usize> {
        self.tensors.iter().take(self.len() - 1).map(|t| t.dim(2)).collect()
    }

    /// Largest bond dimension.
    pub fn max_bond(&self) -> usize {
        self.bond_dims().into_iter().max().unwrap_or(1)
    }

    /// Total number of stored complex numbers.
    pub fn num_elements(&self) -> usize {
        self.tensors.iter().map(|t| t.len()).sum()
    }

    /// `<self|other>` (conjugating `self`).
    pub fn inner(&self, other: &Mps) -> Result<C64> {
        if self.len() != other.len() || self.phys_dims() != other.phys_dims() {
            return Err(TensorError::ShapeMismatch {
                context: "inner: incompatible MPS chains".into(),
            });
        }
        // Environment E[ra, rb] carried left to right.
        let mut env = Tensor::ones(&[1, 1]);
        for (a, b) in self.tensors.iter().zip(other.tensors.iter()) {
            // env [ra, rb] * conj(a)[ra, p, ra'] -> [rb, p, ra']
            let step = tensordot(&env, &a.conj(), &[0], &[0])?;
            // step [rb, p, ra'] * b[rb, p, rb'] -> [ra', rb']
            env = tensordot(&step, b, &[0, 1], &[0, 1])?;
        }
        Ok(env.item())
    }

    /// Bilinear contraction `sum_phys self * other` (no conjugation). Used to
    /// close a boundary-MPS sweep from the top against one from the bottom,
    /// where all conjugations have already been baked into the tensors.
    pub fn dot(&self, other: &Mps) -> Result<C64> {
        if self.len() != other.len() || self.phys_dims() != other.phys_dims() {
            return Err(TensorError::ShapeMismatch {
                context: "dot: incompatible MPS chains".into(),
            });
        }
        let mut env = Tensor::ones(&[1, 1]);
        for (a, b) in self.tensors.iter().zip(other.tensors.iter()) {
            let step = tensordot(&env, a, &[0], &[0])?; // [rb, p, ra']
            env = tensordot(&step, b, &[0, 1], &[0, 1])?; // [ra', rb']
        }
        Ok(env.item())
    }

    /// 2-norm of the state.
    pub fn norm(&self) -> f64 {
        self.inner(self).map(|z| z.re.max(0.0).sqrt()).unwrap_or(0.0)
    }

    /// Multiply the state by a scalar (applied to the first site).
    pub fn scale(&mut self, s: C64) {
        self.tensors[0] = self.tensors[0].scale(s);
    }

    /// Contract an MPS whose physical dimensions are all 1 down to a scalar
    /// (the final step of the boundary contraction, Algorithm 2 line 5).
    pub fn contract_to_scalar(&self) -> Result<C64> {
        for (i, t) in self.tensors.iter().enumerate() {
            if t.dim(1) != 1 {
                return Err(TensorError::ShapeMismatch {
                    context: format!(
                        "contract_to_scalar: site {i} has physical dimension {} (expected 1)",
                        t.dim(1)
                    ),
                });
            }
        }
        let mut env = Tensor::ones(&[1]);
        for t in &self.tensors {
            let site = t.select(1, 0)?; // [l, r]
            env = tensordot(&env, &site, &[0], &[0])?; // [r]
        }
        Ok(env.item())
    }

    /// Contract the full chain into a dense state tensor with one axis per
    /// site (exponential in the number of sites; testing utility).
    pub fn to_dense(&self) -> Result<Tensor> {
        let mut acc = Tensor::ones(&[1]);
        for t in &self.tensors {
            // acc [p1..pk, r] * t [r, p, r'] -> [p1..pk, p, r']
            acc = tensordot(&acc, t, &[acc.ndim() - 1], &[0])?;
        }
        // Drop the trailing bond of dimension 1.
        let shape: Vec<usize> = acc.shape()[..acc.ndim() - 1].to_vec();
        acc.reshape(&shape)
    }

    /// Left-canonicalize in place (QR sweep from the left). After this call
    /// every site except the last is an isometry over `(l, p)`.
    pub fn canonicalize_left(&mut self) -> Result<()> {
        let n = self.len();
        for i in 0..n - 1 {
            let (q, r) = qr_split(&self.tensors[i], &[0, 1])?;
            self.tensors[i] = q; // [l, p, k]
            self.tensors[i + 1] = tensordot(&r, &self.tensors[i + 1], &[1], &[0])?;
        }
        Ok(())
    }

    /// Right-canonicalize in place (QR sweep from the right).
    pub fn canonicalize_right(&mut self) -> Result<()> {
        let n = self.len();
        for i in (1..n).rev() {
            // Split [l | p, r]: Q over (p, r), R over l.
            let (q, r) = qr_split(&self.tensors[i], &[1, 2])?;
            // q: [p, r, k]  -> site becomes [k, p, r]
            self.tensors[i] = q.permute(&[2, 0, 1])?;
            // r: [k, l]; absorb into the left neighbour: [l', p', l] * [k, l]^T
            self.tensors[i - 1] = tensordot(&self.tensors[i - 1], &r, &[2], &[1])?;
        }
        Ok(())
    }

    /// Compress the state to a maximum bond dimension by a left-canonical
    /// sweep followed by an SVD truncation sweep from the right. Returns the
    /// accumulated truncation error (root-sum-square of the discarded weights).
    pub fn compress(&mut self, truncation: Truncation) -> Result<f64> {
        self.canonicalize_left()?;
        let n = self.len();
        let mut err_sq = 0.0;
        for i in (1..n).rev() {
            let f = svd_split(&self.tensors[i], &[0], truncation)?;
            err_sq += f.truncation_error * f.truncation_error;
            // vh: [k, p, r] becomes the new site; u*s is absorbed leftwards.
            let (u, vh) = f.absorb_left();
            self.tensors[i] = vh;
            self.tensors[i - 1] = tensordot(&self.tensors[i - 1], &u, &[2], &[0])?;
        }
        Ok(err_sq.sqrt())
    }

    /// Sample amplitude of a computational basis state (physical dimensions
    /// must cover the provided index). Testing / amplitude utility.
    pub fn amplitude(&self, bits: &[usize]) -> Result<C64> {
        if bits.len() != self.len() {
            return Err(TensorError::ShapeMismatch {
                context: "amplitude: wrong number of sites".into(),
            });
        }
        let mut env = Tensor::ones(&[1]);
        for (t, &b) in self.tensors.iter().zip(bits.iter()) {
            let site = t.select(1, b)?; // [l, r]
            env = tensordot(&env, &site, &[0], &[0])?;
        }
        Ok(env.item())
    }
}

/// Build the `n`-site GHZ state (|0...0> + |1...1>)/sqrt(2) as an MPS with
/// bond dimension 2 (used by tests as a state with known entanglement).
pub fn ghz_state(n: usize) -> Mps {
    assert!(n >= 2);
    let amp = 1.0 / 2.0f64.sqrt();
    let mut tensors = Vec::with_capacity(n);
    for i in 0..n {
        let (l, r) = (if i == 0 { 1 } else { 2 }, if i == n - 1 { 1 } else { 2 });
        let mut t = Tensor::zeros(&[l, 2, r]);
        if i == 0 {
            t.set(&[0, 0, 0], c64(amp, 0.0));
            t.set(&[0, 1, 1], c64(amp, 0.0));
        } else if i == n - 1 {
            t.set(&[0, 0, 0], C64::ONE);
            t.set(&[1, 1, 0], C64::ONE);
        } else {
            t.set(&[0, 0, 0], C64::ONE);
            t.set(&[1, 1, 1], C64::ONE);
        }
        tensors.push(t);
    }
    Mps::new(tensors).unwrap_or_else(|e| unreachable!("ghz_state: construction cannot fail: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        let ok = Mps::new(vec![Tensor::zeros(&[1, 2, 3]), Tensor::zeros(&[3, 2, 1])]);
        assert!(ok.is_ok());
        assert!(Mps::new(vec![]).is_err());
        assert!(Mps::new(vec![Tensor::zeros(&[1, 2])]).is_err());
        assert!(Mps::new(vec![Tensor::zeros(&[2, 2, 1])]).is_err(), "left boundary must be 1");
        assert!(
            Mps::new(vec![Tensor::zeros(&[1, 2, 3]), Tensor::zeros(&[2, 2, 1])]).is_err(),
            "bond mismatch"
        );
    }

    #[test]
    fn computational_zeros_amplitudes() {
        let mps = Mps::computational_zeros(4, 2);
        assert!((mps.norm() - 1.0).abs() < 1e-12);
        assert!(mps.amplitude(&[0, 0, 0, 0]).unwrap().approx_eq(C64::ONE, 1e-12));
        assert!(mps.amplitude(&[1, 0, 0, 0]).unwrap().approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn ghz_state_has_expected_amplitudes() {
        let g = ghz_state(5);
        assert!((g.norm() - 1.0).abs() < 1e-12);
        let amp = 1.0 / 2.0f64.sqrt();
        assert!(g.amplitude(&[0; 5]).unwrap().approx_eq(c64(amp, 0.0), 1e-12));
        assert!(g.amplitude(&[1; 5]).unwrap().approx_eq(c64(amp, 0.0), 1e-12));
        assert!(g.amplitude(&[1, 0, 0, 0, 0]).unwrap().approx_eq(C64::ZERO, 1e-12));
        assert_eq!(g.max_bond(), 2);
    }

    #[test]
    fn inner_product_matches_dense() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mps::random(4, 2, 3, &mut rng);
        let b = Mps::random(4, 2, 3, &mut rng);
        let mps_inner = a.inner(&b).unwrap();
        let dense_inner = a.to_dense().unwrap().inner(&b.to_dense().unwrap()).unwrap();
        assert!(mps_inner.approx_eq(dense_inner, 1e-9));
    }

    #[test]
    fn canonicalization_preserves_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let original = Mps::random(5, 2, 4, &mut rng);
        let dense = original.to_dense().unwrap();

        let mut left = original.clone();
        left.canonicalize_left().unwrap();
        assert!(left.to_dense().unwrap().approx_eq(&dense, 1e-9));
        // Left-canonical sites are isometries over (l, p).
        for i in 0..left.len() - 1 {
            let m = left.tensor(i).unfold(2);
            assert!(m.has_orthonormal_cols(1e-9), "site {i} not left-canonical");
        }

        let mut right = original.clone();
        right.canonicalize_right().unwrap();
        assert!(right.to_dense().unwrap().approx_eq(&dense, 1e-9));
    }

    #[test]
    fn compress_without_truncation_is_lossless() {
        let mut rng = StdRng::seed_from_u64(3);
        let original = Mps::random(5, 2, 3, &mut rng);
        let dense = original.to_dense().unwrap();
        let mut c = original.clone();
        let err = c.compress(Truncation::none()).unwrap();
        assert!(err < 1e-10);
        assert!(c.to_dense().unwrap().approx_eq(&dense, 1e-9));
    }

    #[test]
    fn compress_truncates_bond_dimension() {
        let mut rng = StdRng::seed_from_u64(4);
        let original = Mps::random(6, 2, 8, &mut rng);
        let mut c = original.clone();
        let err = c.compress(Truncation::max_rank(3)).unwrap();
        assert!(c.max_bond() <= 3);
        assert!(err >= 0.0);
        // The reported error should match the actual distance reasonably well
        // (zip-up style single sweep is not exactly optimal but close).
        let dense_diff = c.to_dense().unwrap().sub(&original.to_dense().unwrap()).unwrap().norm();
        assert!(dense_diff <= 2.0 * err + 1e-9, "diff {dense_diff} vs reported {err}");
    }

    #[test]
    fn compress_ghz_to_bond_one_loses_half_the_weight() {
        let mut g = ghz_state(4);
        let err = g.compress(Truncation::max_rank(1)).unwrap();
        assert_eq!(g.max_bond(), 1);
        // GHZ has two equal Schmidt values 1/sqrt(2); dropping one loses weight 1/2.
        assert!((err - (0.5f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn contract_to_scalar_requires_trivial_physical_dims() {
        let mut rng = StdRng::seed_from_u64(5);
        let bad = Mps::random(3, 2, 2, &mut rng);
        assert!(bad.contract_to_scalar().is_err());
        let good = Mps::random(4, 1, 3, &mut rng);
        let via_scalar = good.contract_to_scalar().unwrap();
        let via_dense = good.to_dense().unwrap().item();
        assert!(via_scalar.approx_eq(via_dense, 1e-10));
    }

    #[test]
    fn scale_multiplies_norm() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut a = Mps::random(3, 2, 2, &mut rng);
        let n0 = a.norm();
        a.scale(c64(2.0, 0.0));
        assert!((a.norm() - 2.0 * n0).abs() < 1e-9);
    }
}
