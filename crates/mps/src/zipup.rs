//! Approximate application of an MPO to an MPS by the zip-up algorithm
//! (paper Algorithm 3), in both the explicit-SVD and implicit randomized-SVD
//! (Algorithm 4) flavours.
//!
//! The zip-up sweep walks the chain once from left to right. At every step the
//! partially contracted boundary tensor `V(i-1)`, the next MPS site `S(i)`,
//! and the next MPO site `O(i)` form a small tensor network that must be
//! contracted and refactorized into the finished site `i-1` and the new
//! boundary tensor — exactly an `einsumsvd`. The explicit variant forms the
//! merged tensor and truncates its SVD; the implicit variant never forms it
//! and instead applies the network to random sketch blocks, which is what
//! turns BMPS into IBMPS in the PEPS contraction benchmarks (Figure 8).

use crate::mpo::Mpo;
use crate::mps::{Mps, Result};
use koala_linalg::{rsvd, LinearOp, Matrix, RsvdOptions};
use koala_tensor::{svd_split, tensordot, PlanCell, Tensor, TensorError, Truncation};
use rand::Rng;

/// Merged-tensor einsum of the exact zip-up step, pinned per call site:
/// boundary `[l, d, r_s, r_o]` x S `[r_s, p, r_s']` x O `[r_o, p, d', r_o']`
/// -> `[l, d, r_s', d', r_o']`. The sweep executes this contraction once per
/// site per zip-up, thousands of times with a handful of recurring shapes,
/// so the `Arc<Plan>`s are held here and repeat steps skip even the global
/// plan-cache lookup (pinned by `tests/zip_plan_pin.rs`).
static ZIP_MERGE_PLAN: PlanCell = PlanCell::new("ldxy,xpt,ypqr->ldtqr");

/// How the einsumsvd inside the zip-up sweep is evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZipUpMethod {
    /// Contract the three tensors and truncate an exact SVD (BMPS building block).
    ExactSvd,
    /// Randomized SVD with the operator applied implicitly (IBMPS building
    /// block); `n_iter` subspace iterations, `oversample` extra sketch columns.
    ImplicitRandSvd {
        /// Number of subspace (power) iterations.
        n_iter: usize,
        /// Extra sketch columns beyond the target rank.
        oversample: usize,
    },
}

impl ZipUpMethod {
    /// The implicit method with the defaults used throughout the benchmarks.
    pub fn implicit_default() -> Self {
        ZipUpMethod::ImplicitRandSvd { n_iter: 2, oversample: 10 }
    }
}

/// Apply `mpo` to `mps`, truncating every new bond to at most `max_bond`,
/// using the requested einsumsvd method. Returns the compressed MPS.
pub fn zip_up<R: Rng + ?Sized>(
    mps: &Mps,
    mpo: &Mpo,
    max_bond: usize,
    method: ZipUpMethod,
    rng: &mut R,
) -> Result<Mps> {
    if mps.len() != mpo.len() || mpo.up_dims() != mps.phys_dims() {
        return Err(TensorError::ShapeMismatch {
            context: "zip_up: MPO and MPS are incompatible".into(),
        });
    }
    let n = mps.len();
    let truncation = Truncation::rank_and_tol(max_bond, 1e-14);

    // V(1): contract S(1) and O(1) over the physical index.
    // S(1) [1, p, r_s], O(1) [1, p, d, r_o]  ->  [1, d, r_s, r_o]
    let s0 = mps.tensor(0);
    let o0 = mpo.tensor(0);
    let v0 = tensordot(s0, o0, &[1], &[1])?; // [1, r_s, 1, d, r_o]
    let mut boundary = v0.permute(&[0, 2, 3, 1, 4])?; // [1, 1, d, r_s, r_o]
    let (b0, b1, d, rs, ro) =
        (boundary.dim(0), boundary.dim(1), boundary.dim(2), boundary.dim(3), boundary.dim(4));
    boundary = boundary.into_reshape(&[b0 * b1, d, rs, ro])?; // [l=1, d, r_s, r_o]

    let mut out_tensors: Vec<Tensor> = Vec::with_capacity(n);

    for i in 1..n {
        let s = mps.tensor(i); // [r_s, p, r_s']
        let o = mpo.tensor(i); // [r_o, p, d', r_o']
        let (finished, new_boundary) = match method {
            ZipUpMethod::ExactSvd => zip_step_exact(&boundary, s, o, truncation)?,
            ZipUpMethod::ImplicitRandSvd { n_iter, oversample } => {
                zip_step_implicit(&boundary, s, o, max_bond, n_iter, oversample, rng)?
            }
        };
        out_tensors.push(finished);
        boundary = new_boundary;
    }

    // The final boundary tensor [l, d, 1, 1] becomes the last site [l, d, 1].
    let (l, d) = (boundary.dim(0), boundary.dim(1));
    debug_assert_eq!(boundary.dim(2), 1);
    debug_assert_eq!(boundary.dim(3), 1);
    out_tensors.push(boundary.into_reshape(&[l, d, 1])?);
    Mps::new(out_tensors)
}

/// Exact einsumsvd step: contract {V, S, O} then truncate the SVD across the
/// (finished site | rest) bipartition. The three-tensor contraction runs
/// through the held [`ZIP_MERGE_PLAN`] — on repeat shapes the planned
/// schedule (greedy order + per-step matricization layouts) replays with no
/// cache traffic at all.
fn zip_step_exact(
    boundary: &Tensor, // [l, d, r_s, r_o]
    s: &Tensor,        // [r_s, p, r_s']
    o: &Tensor,        // [r_o, p, d', r_o']
    truncation: Truncation,
) -> Result<(Tensor, Tensor)> {
    let merged = ZIP_MERGE_PLAN.execute(&[boundary, s, o])?; // [l, d, r_s', d', r_o']
    let f = svd_split(&merged, &[0, 1], truncation)?;
    let (u, rest) = f.absorb_right();
    // u: [l, d, k] is the finished site; rest: [k, r_s', d', r_o'] must be
    // rearranged to the boundary layout [k, d', r_s', r_o'].
    let new_boundary = rest.permute(&[0, 2, 1, 3])?;
    Ok((u, new_boundary))
}

/// Implicit operator for one zip-up step: maps the column space
/// `(d', r_s', r_o')` to the row space `(l, d)` without forming the merged
/// tensor.
struct ZipStepOp<'a> {
    boundary: &'a Tensor, // [l, d, r_s, r_o]
    s: &'a Tensor,        // [r_s, p, r_s']
    o: &'a Tensor,        // [r_o, p, d', r_o']
}

impl ZipStepOp<'_> {
    fn row_dims(&self) -> [usize; 2] {
        [self.boundary.dim(0), self.boundary.dim(1)]
    }
    fn col_dims(&self) -> [usize; 3] {
        [self.o.dim(2), self.s.dim(2), self.o.dim(3)]
    }
}

impl LinearOp for ZipStepOp<'_> {
    fn nrows(&self) -> usize {
        self.row_dims().iter().product()
    }
    fn ncols(&self) -> usize {
        self.col_dims().iter().product()
    }

    fn apply(&self, x: &Matrix) -> Matrix {
        let k = x.ncols();
        let [dp, rsp, rop] = self.col_dims();
        let xt = Tensor::from_matrix_2d(x)
            .into_reshape(&[dp, rsp, rop, k])
            .unwrap_or_else(|e| unreachable!("ZipStepOp::apply reshape: {e}"));
        // O [r_o, p, d', r_o'] * X [d', r_s', r_o', k] over (d', r_o') -> [r_o, p, r_s', k]
        let w1 = tensordot(self.o, &xt, &[2, 3], &[0, 2])
            .unwrap_or_else(|e| unreachable!("ZipStepOp w1: {e}"));
        // S [r_s, p, r_s'] * W1 [r_o, p, r_s', k] over (p, r_s') -> [r_s, r_o, k]
        let w2 = tensordot(self.s, &w1, &[1, 2], &[1, 2])
            .unwrap_or_else(|e| unreachable!("ZipStepOp w2: {e}"));
        // boundary [l, d, r_s, r_o] * W2 [r_s, r_o, k] -> [l, d, k]
        let y = tensordot(self.boundary, &w2, &[2, 3], &[0, 1])
            .unwrap_or_else(|e| unreachable!("ZipStepOp y: {e}"));
        y.unfold(2)
    }

    fn apply_adj(&self, y: &Matrix) -> Matrix {
        let k = y.ncols();
        let [l, d] = self.row_dims();
        let yt = Tensor::from_matrix_2d(y)
            .into_reshape(&[l, d, k])
            .unwrap_or_else(|e| unreachable!("ZipStepOp::apply_adj reshape: {e}"));
        // conj(boundary) [l, d, r_s, r_o] * Y [l, d, k] -> [r_s, r_o, k]
        let z1 = tensordot(&self.boundary.conj(), &yt, &[0, 1], &[0, 1])
            .unwrap_or_else(|e| unreachable!("ZipStepOp z1: {e}"));
        // conj(S) [r_s, p, r_s'] * Z1 [r_s, r_o, k] -> [p, r_s', r_o, k]
        let z2 = tensordot(&self.s.conj(), &z1, &[0], &[0])
            .unwrap_or_else(|e| unreachable!("ZipStepOp z2: {e}"));
        // conj(O) [r_o, p, d', r_o'] * Z2 [p, r_s', r_o, k] over (p, r_o) -> [d', r_o', r_s', k]
        let z3 = tensordot(&self.o.conj(), &z2, &[1, 0], &[0, 2])
            .unwrap_or_else(|e| unreachable!("ZipStepOp z3: {e}"));
        // -> [d', r_s', r_o', k]
        let out =
            z3.permute(&[0, 2, 1, 3]).unwrap_or_else(|e| unreachable!("ZipStepOp permute: {e}"));
        out.unfold(3)
    }

    fn is_real(&self) -> bool {
        // Real boundary/MPS/MPO tensors map real sketch blocks to real blocks
        // (conjugation is a no-op on real data), so the implicit randomized
        // SVD draws a real sketch and the whole zip-up step stays on the real
        // kernel.
        self.boundary.is_real() && self.s.is_real() && self.o.is_real()
    }
}

/// Implicit randomized einsumsvd step (Algorithm 4 applied to the zip-up).
fn zip_step_implicit<R: Rng + ?Sized>(
    boundary: &Tensor,
    s: &Tensor,
    o: &Tensor,
    max_bond: usize,
    n_iter: usize,
    oversample: usize,
    rng: &mut R,
) -> Result<(Tensor, Tensor)> {
    let op = ZipStepOp { boundary, s, o };
    let rank = max_bond.min(op.nrows()).min(op.ncols()).max(1);
    let f = rsvd(&op, RsvdOptions { rank, oversample, n_iter }, rng)
        .map_err(|e| TensorError::Linalg(e.to_string()))?;
    let k = f.s.len();
    let [l, d] = op.row_dims();
    let [dp, rsp, rop] = op.col_dims();
    let u = Tensor::fold(&f.u, &[l, d], &[k])?;
    let sv = koala_linalg::scale_rows(&f.vh, &f.s);
    let rest = Tensor::fold(&sv, &[k], &[dp, rsp, rop])?;
    // rest [k, d', r_s', r_o'] is already in boundary layout.
    Ok((u, rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn relative_error(approx: &Mps, exact: &Mps) -> f64 {
        let da = approx.to_dense().unwrap();
        let de = exact.to_dense().unwrap();
        da.sub(&de).unwrap().norm() / de.norm()
    }

    #[test]
    fn zip_up_exact_without_truncation_matches_exact_application() {
        let mut rng = StdRng::seed_from_u64(1);
        let mps = Mps::random(4, 2, 3, &mut rng);
        let mpo = Mpo::random(4, 2, 2, &mut rng);
        let exact = mpo.apply_exact(&mps).unwrap();
        let zipped = zip_up(&mps, &mpo, 64, ZipUpMethod::ExactSvd, &mut rng).unwrap();
        assert!(relative_error(&zipped, &exact) < 1e-9);
    }

    #[test]
    fn zip_up_implicit_without_truncation_matches_exact_application() {
        let mut rng = StdRng::seed_from_u64(2);
        let mps = Mps::random(4, 2, 3, &mut rng);
        let mpo = Mpo::random(4, 2, 2, &mut rng);
        let exact = mpo.apply_exact(&mps).unwrap();
        let zipped = zip_up(&mps, &mpo, 64, ZipUpMethod::implicit_default(), &mut rng).unwrap();
        assert!(relative_error(&zipped, &exact) < 1e-7);
    }

    #[test]
    fn zip_up_truncates_bond_dimension() {
        let mut rng = StdRng::seed_from_u64(3);
        let mps = Mps::random(5, 2, 4, &mut rng);
        let mpo = Mpo::random(5, 2, 3, &mut rng);
        let zipped = zip_up(&mps, &mpo, 5, ZipUpMethod::ExactSvd, &mut rng).unwrap();
        assert!(zipped.max_bond() <= 5);
        let zipped_i = zip_up(&mps, &mpo, 5, ZipUpMethod::implicit_default(), &mut rng).unwrap();
        assert!(zipped_i.max_bond() <= 5);
    }

    #[test]
    fn implicit_and_exact_agree_when_rank_is_sufficient() {
        let mut rng = StdRng::seed_from_u64(4);
        let mps = Mps::random(4, 2, 2, &mut rng);
        let mpo = Mpo::random(4, 2, 2, &mut rng);
        let a = zip_up(&mps, &mpo, 16, ZipUpMethod::ExactSvd, &mut rng).unwrap();
        let b = zip_up(&mps, &mpo, 16, ZipUpMethod::implicit_default(), &mut rng).unwrap();
        // The two states can differ by gauge; compare physical content.
        let overlap = a.inner(&b).unwrap().abs();
        let na = a.norm();
        let nb = b.norm();
        assert!((overlap / (na * nb) - 1.0).abs() < 1e-6, "fidelity loss between methods");
    }

    #[test]
    fn identity_mpo_through_zip_up_preserves_the_state() {
        let mut rng = StdRng::seed_from_u64(5);
        let mps = Mps::random(4, 2, 3, &mut rng);
        let id = Mpo::identity(&[2, 2, 2, 2]);
        let out = zip_up(&mps, &id, 16, ZipUpMethod::ExactSvd, &mut rng).unwrap();
        assert!(relative_error(&out, &mps) < 1e-9);
    }

    #[test]
    fn truncation_error_grows_as_bond_shrinks() {
        let mut rng = StdRng::seed_from_u64(6);
        let mps = Mps::random(5, 2, 4, &mut rng);
        let mpo = Mpo::random(5, 2, 3, &mut rng);
        let exact = mpo.apply_exact(&mps).unwrap();
        let mut prev = 0.0;
        for &m in &[12usize, 6, 3, 1] {
            let z = zip_up(&mps, &mpo, m, ZipUpMethod::ExactSvd, &mut rng).unwrap();
            let err = relative_error(&z, &exact);
            assert!(err >= prev - 1e-9, "error should not decrease as bond shrinks");
            prev = err;
        }
    }

    #[test]
    fn incompatible_operands_are_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let mps = Mps::random(3, 2, 2, &mut rng);
        let mpo = Mpo::random(4, 2, 2, &mut rng);
        assert!(zip_up(&mps, &mpo, 4, ZipUpMethod::ExactSvd, &mut rng).is_err());
    }
}
