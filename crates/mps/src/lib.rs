//! # koala-mps
//!
//! Matrix product states (MPS) and matrix product operators (MPO) for the
//! koala-rs reproduction of *"Efficient 2D Tensor Network Simulation of
//! Quantum Systems"* (SC 2020).
//!
//! The boundary-MPS family of PEPS contraction algorithms (paper §III-B and
//! Algorithm 2) treats one row of a PEPS as an MPS and the remaining rows as
//! MPOs that are applied approximately. This crate provides that machinery:
//!
//! * [`Mps`] / [`Mpo`] chain types with canonicalization and compression,
//! * exact MPO application (bond dimensions multiply),
//! * the zip-up approximate application of Algorithm 3, with the einsumsvd
//!   step evaluated either by an explicit truncated SVD ([`ZipUpMethod::ExactSvd`],
//!   the BMPS building block) or by the implicit randomized SVD of Algorithm 4
//!   ([`ZipUpMethod::ImplicitRandSvd`], the IBMPS building block).
//!
//! # Example: applying an MPO with the zip-up compression
//!
//! A bond-capped zip-up application of the identity MPO leaves the state
//! unchanged (up to round-off), which makes a compact end-to-end check of
//! the Algorithm 3 machinery:
//!
//! ```
//! use koala_mps::{ghz_state, zip_up, Mpo, ZipUpMethod};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let ghz = ghz_state(5); // (|00000> + |11111>)/sqrt(2), bond dimension 2
//! assert!((ghz.norm() - 1.0).abs() < 1e-12);
//! let identity = Mpo::identity(&ghz.phys_dims());
//! let applied = zip_up(&ghz, &identity, 4, ZipUpMethod::ExactSvd, &mut rng).unwrap();
//! // <GHZ| (I |GHZ>) = 1.
//! assert!((ghz.inner(&applied).unwrap().re - 1.0).abs() < 1e-9);
//! // |00000> and |11111> each carry amplitude 1/sqrt(2).
//! let amp = applied.amplitude(&[1, 1, 1, 1, 1]).unwrap();
//! assert!((amp.re - 0.5f64.sqrt()).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
// Library code must surface failures as errors, not panics (ARCHITECTURE.md,
// "Failure model"); test modules are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod mpo;
pub mod mps;
pub mod zipup;

pub use mpo::Mpo;
pub use mps::{ghz_state, Mps};
pub use zipup::{zip_up, ZipUpMethod};
