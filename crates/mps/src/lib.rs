//! # koala-mps
//!
//! Matrix product states (MPS) and matrix product operators (MPO) for the
//! koala-rs reproduction of *"Efficient 2D Tensor Network Simulation of
//! Quantum Systems"* (SC 2020).
//!
//! The boundary-MPS family of PEPS contraction algorithms (paper §III-B and
//! Algorithm 2) treats one row of a PEPS as an MPS and the remaining rows as
//! MPOs that are applied approximately. This crate provides that machinery:
//!
//! * [`Mps`] / [`Mpo`] chain types with canonicalization and compression,
//! * exact MPO application (bond dimensions multiply),
//! * the zip-up approximate application of Algorithm 3, with the einsumsvd
//!   step evaluated either by an explicit truncated SVD ([`ZipUpMethod::ExactSvd`],
//!   the BMPS building block) or by the implicit randomized SVD of Algorithm 4
//!   ([`ZipUpMethod::ImplicitRandSvd`], the IBMPS building block).

#![warn(missing_docs)]

pub mod mpo;
pub mod mps;
pub mod zipup;

pub use mpo::Mpo;
pub use mps::{ghz_state, Mps};
pub use zipup::{zip_up, ZipUpMethod};
