//! Matrix product operators.
//!
//! Site tensors use the axis convention `[left bond, up, down, right bond]`:
//! the `up` index contracts with the physical index of the MPS the operator is
//! applied to, and `down` becomes the new physical index. A PEPS row acting on
//! a boundary MPS (Algorithm 2) is exactly an MPO in this convention.

use crate::mps::{Mps, Result};
use koala_tensor::{tensordot, Tensor, TensorError};
use rand::Rng;

/// A matrix product operator: a chain of rank-4 tensors `[l, u, d, r]`.
#[derive(Debug, Clone)]
pub struct Mpo {
    tensors: Vec<Tensor>,
}

impl Mpo {
    /// Build from site tensors, validating ranks and bond matching.
    pub fn new(tensors: Vec<Tensor>) -> Result<Self> {
        if tensors.is_empty() {
            return Err(TensorError::ShapeMismatch { context: "Mpo::new: empty chain".into() });
        }
        for (i, t) in tensors.iter().enumerate() {
            if t.ndim() != 4 {
                return Err(TensorError::ShapeMismatch {
                    context: format!("Mpo::new: site {i} has rank {} (expected 4)", t.ndim()),
                });
            }
        }
        if tensors[0].dim(0) != 1 || tensors[tensors.len() - 1].dim(3) != 1 {
            return Err(TensorError::ShapeMismatch {
                context: "Mpo::new: boundary bonds must have dimension 1".into(),
            });
        }
        for i in 0..tensors.len() - 1 {
            if tensors[i].dim(3) != tensors[i + 1].dim(0) {
                return Err(TensorError::ShapeMismatch {
                    context: format!("Mpo::new: bond mismatch between sites {i} and {}", i + 1),
                });
            }
        }
        Ok(Mpo { tensors })
    }

    /// Identity operator with the given per-site physical dimensions.
    pub fn identity(phys_dims: &[usize]) -> Self {
        let tensors = phys_dims
            .iter()
            .map(|&d| {
                let eye = Tensor::eye(d);
                eye.reshape(&[1, d, d, 1]).unwrap_or_else(|e| unreachable!("identity reshape: {e}"))
            })
            .collect();
        Mpo::new(tensors)
            .unwrap_or_else(|e| unreachable!("identity: construction cannot fail: {e}"))
    }

    /// Random MPO with uniform physical and bond dimensions.
    pub fn random<R: Rng + ?Sized>(
        n_sites: usize,
        phys_dim: usize,
        bond_dim: usize,
        rng: &mut R,
    ) -> Self {
        let mut tensors = Vec::with_capacity(n_sites);
        for i in 0..n_sites {
            let l = if i == 0 { 1 } else { bond_dim };
            let r = if i == n_sites - 1 { 1 } else { bond_dim };
            tensors.push(Tensor::random(&[l, phys_dim, phys_dim, r], rng));
        }
        Mpo::new(tensors).unwrap_or_else(|e| unreachable!("random: construction cannot fail: {e}"))
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True if the chain is empty (never for a valid MPO).
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Site tensors.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// One site tensor.
    pub fn tensor(&self, i: usize) -> &Tensor {
        &self.tensors[i]
    }

    /// Input (up) physical dimensions.
    pub fn up_dims(&self) -> Vec<usize> {
        self.tensors.iter().map(|t| t.dim(1)).collect()
    }

    /// Output (down) physical dimensions.
    pub fn down_dims(&self) -> Vec<usize> {
        self.tensors.iter().map(|t| t.dim(2)).collect()
    }

    /// Largest bond dimension.
    pub fn max_bond(&self) -> usize {
        self.tensors.iter().take(self.len() - 1).map(|t| t.dim(3)).max().unwrap_or(1)
    }

    /// Apply the operator to an MPS exactly: bond dimensions multiply.
    pub fn apply_exact(&self, mps: &Mps) -> Result<Mps> {
        if self.len() != mps.len() || self.up_dims() != mps.phys_dims() {
            return Err(TensorError::ShapeMismatch {
                context: "apply_exact: MPO and MPS are incompatible".into(),
            });
        }
        let mut out = Vec::with_capacity(self.len());
        for (o, s) in self.tensors.iter().zip(mps.tensors().iter()) {
            // s [l, p, r] * o [lo, p, d, ro] -> [l, r, lo, d, ro]
            let t = tensordot(s, o, &[1], &[1])?;
            // -> [l, lo, d, r, ro] -> [(l*lo), d, (r*ro)]
            let t = t.permute(&[0, 2, 3, 1, 4])?;
            let (l, lo, d, r, ro) = (t.dim(0), t.dim(1), t.dim(2), t.dim(3), t.dim(4));
            out.push(t.into_reshape(&[l * lo, d, r * ro])?);
        }
        Mps::new(out)
    }

    /// Contract the full operator into a dense matrix acting on the tensor
    /// product of the `up` spaces (exponential; testing utility).
    pub fn to_dense(&self) -> Result<Tensor> {
        // Accumulate a tensor [u1..uk, d1..dk, r].
        let mut acc = Tensor::ones(&[1]);
        let mut n_sites = 0usize;
        #[allow(clippy::explicit_counter_loop)] // n_sites doubles as axis bookkeeping below
        for t in &self.tensors {
            // acc [u.., d.., r] * t [r, u, d, r'] -> [u.., d.., u, d, r']
            acc = tensordot(&acc, t, &[acc.ndim() - 1], &[0])?;
            n_sites += 1;
            // Reorder so all `u` axes come first, then all `d`, then the bond.
            // Current layout: [u1..u_{k-1}, d1..d_{k-1}, u_k, d_k, r'].
            let k = n_sites;
            let mut perm: Vec<usize> = (0..k - 1).collect(); // existing u's
            perm.push(2 * (k - 1)); // new u
            perm.extend(k - 1..2 * (k - 1)); // existing d's
            perm.push(2 * (k - 1) + 1); // new d
            perm.push(2 * (k - 1) + 2); // bond
            acc = acc.permute(&perm)?;
        }
        let shape: Vec<usize> = acc.shape()[..acc.ndim() - 1].to_vec();
        acc.reshape(&shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koala_linalg::C64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Mpo::new(vec![]).is_err());
        assert!(Mpo::new(vec![Tensor::zeros(&[1, 2, 2, 1])]).is_ok());
        assert!(Mpo::new(vec![Tensor::zeros(&[1, 2, 2])]).is_err());
        assert!(Mpo::new(vec![Tensor::zeros(&[2, 2, 2, 1])]).is_err());
        assert!(Mpo::new(vec![Tensor::zeros(&[1, 2, 2, 3]), Tensor::zeros(&[2, 2, 2, 1])]).is_err());
    }

    #[test]
    fn identity_mpo_preserves_states() {
        let mut rng = StdRng::seed_from_u64(1);
        let mps = Mps::random(4, 2, 3, &mut rng);
        let id = Mpo::identity(&[2, 2, 2, 2]);
        let applied = id.apply_exact(&mps).unwrap();
        assert!(applied.to_dense().unwrap().approx_eq(&mps.to_dense().unwrap(), 1e-10));
    }

    #[test]
    fn apply_exact_matches_dense_application() {
        let mut rng = StdRng::seed_from_u64(2);
        let mps = Mps::random(3, 2, 3, &mut rng);
        let mpo = Mpo::random(3, 2, 2, &mut rng);
        let applied = mpo.apply_exact(&mps).unwrap();

        // Dense check: O |psi> with O reshaped to a matrix.
        let dense_op = mpo.to_dense().unwrap(); // [u1,u2,u3, d1,d2,d3]
        let dense_in = mps.to_dense().unwrap(); // [p1,p2,p3]
        let expected = tensordot(&dense_op, &dense_in, &[0, 1, 2], &[0, 1, 2]).unwrap();
        assert!(applied.to_dense().unwrap().approx_eq(&expected, 1e-9));
        // Bond dimensions multiplied.
        assert_eq!(applied.max_bond(), mps.max_bond() * mpo.max_bond());
    }

    #[test]
    fn apply_exact_rejects_incompatible_chains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mps = Mps::random(3, 2, 2, &mut rng);
        let mpo = Mpo::random(4, 2, 2, &mut rng);
        assert!(mpo.apply_exact(&mps).is_err());
        let mpo3 = Mpo::random(3, 3, 2, &mut rng);
        assert!(mpo3.apply_exact(&mps).is_err());
    }

    #[test]
    fn identity_to_dense_is_identity_matrix() {
        let id = Mpo::identity(&[2, 2]);
        let dense = id.to_dense().unwrap(); // [u1,u2,d1,d2]
        let m = dense.unfold(2);
        assert!(m.approx_eq(&koala_linalg::Matrix::identity(4), 1e-12));
        let _ = C64::ZERO;
    }
}
