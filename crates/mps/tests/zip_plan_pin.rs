//! Pins the held-`Arc<Plan>` behaviour of the zip-up inner loop: after a
//! warm-up sweep, repeating the same zip-up must not touch the global plan
//! cache at all — the call-site `PlanCell` serves every merge einsum from its
//! held plans, skipping even the LRU lookup.
//!
//! This lives in its own integration-test binary because the assertion reads
//! the process-wide `plan_stats()` counters; unit tests of the mps crate run
//! concurrently in one process and would race them.

use koala_mps::{zip_up, Mpo, Mps, ZipUpMethod};
use koala_tensor::plan_stats;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn warmed_zip_up_skips_the_global_plan_cache() {
    let mut rng = StdRng::seed_from_u64(7);
    let mps = Mps::random(6, 2, 3, &mut rng);
    let mpo = Mpo::random(6, 2, 2, &mut rng);

    // Warm-up: plans for every (shape-distinct) step are built and held by
    // the call-site cell.
    let warm = zip_up(&mps, &mpo, 16, ZipUpMethod::ExactSvd, &mut rng).unwrap();
    let before = plan_stats();

    // Re-running the identical sweep must be answered entirely from the held
    // plans: no hits (a hit would mean an LRU lookup happened) and no misses.
    let again = zip_up(&mps, &mpo, 16, ZipUpMethod::ExactSvd, &mut rng).unwrap();
    let after = plan_stats();
    assert_eq!(
        (after.hits, after.misses),
        (before.hits, before.misses),
        "the warmed zip-up inner loop touched the global plan cache"
    );

    // And the held plans still compute the right thing.
    let overlap = warm.inner(&again).unwrap().abs();
    assert!((overlap / (warm.norm() * again.norm()) - 1.0).abs() < 1e-9);
}
