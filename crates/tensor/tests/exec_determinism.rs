//! Executor determinism suite: einsum execution on the `koala-exec` task
//! graph must be a pure scheduling change. For random specs and shapes,
//! sweeping the global pool over 1/2/4/8 threads must produce
//!
//! * **bit-identical** output tensors (same bytes, not just approximately
//!   equal — accumulation order is fixed by dependency edges, never by the
//!   schedule),
//! * identical `flop_counter` / `real_mac_counter` deltas (billing is exact
//!   under concurrency; atomic adds commute),
//! * identical realness hints on the outputs (the real-path dispatch
//!   decision depends on data, not on the schedule).
//!
//! The sweep includes contractions far above the GEMM `PAR_THRESHOLD`
//! (`64^3` MACs) so the macro-tile task-graph path — shared packed panels,
//! chained depth-block accumulation — actually engages, and multi-step
//! specs so `Plan`'s step-DAG path engages too.

use koala_linalg::{flop_counter, real_mac_counter};
use koala_tensor::{einsum, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// The executor pool and the billing counters are process-wide; serialize
/// the tests in this binary.
static SERIAL: Mutex<()> = Mutex::new(());

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Exact byte-level equality of tensor contents and metadata.
fn assert_bit_identical(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shapes differ");
    assert_eq!(a.is_real(), b.is_real(), "{what}: realness hints differ");
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: element {i} differs bitwise: {x:?} vs {y:?}"
        );
    }
}

/// Run `spec` on `operands` once per thread count and demand bit-identical
/// results and exactly equal counter deltas.
fn sweep(spec: &str, operands: &[Tensor]) {
    let refs: Vec<&Tensor> = operands.iter().collect();
    let mut reference: Option<(Tensor, u64, u64)> = None;
    for &threads in &THREAD_SWEEP {
        koala_exec::set_threads(threads);
        let (f0, r0) = (flop_counter(), real_mac_counter());
        let out = einsum(spec, &refs).unwrap();
        let (df, dr) = (flop_counter() - f0, real_mac_counter() - r0);
        match &reference {
            None => reference = Some((out, df, dr)),
            Some((expected, ef, er)) => {
                assert_bit_identical(
                    &out,
                    expected,
                    &format!("spec '{spec}' at {threads} threads"),
                );
                assert_eq!(df, *ef, "spec '{spec}': complex-MAC billing varies with threads");
                assert_eq!(dr, *er, "spec '{spec}': real-MAC billing varies with threads");
            }
        }
    }
    koala_exec::set_threads(1);
}

/// Big single contraction: work far above `PAR_THRESHOLD` so the GEMM tile
/// graph engages, swept over thread counts.
#[test]
fn large_matmul_is_bit_identical_across_threads() {
    let _guard = SERIAL.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    let a = Tensor::random(&[96, 112], &mut rng);
    let b = Tensor::random(&[112, 88], &mut rng);
    sweep("ij,jk->ik", &[a, b]);
}

/// Same, on hinted-real operands: the real microkernel path must be just as
/// deterministic and bill `real_mac_counter` identically at every thread
/// count (and `flop_counter` identically, namely not at all).
#[test]
fn large_real_matmul_is_bit_identical_across_threads() {
    let _guard = SERIAL.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let a = Tensor::random_real(&[96, 96], &mut rng);
    let b = Tensor::random_real(&[96, 96], &mut rng);
    assert!(a.is_real() && b.is_real());
    sweep("ij,jk->ik", &[a, b]);
}

/// Multi-step network (several pairwise contractions): `Plan::execute`
/// lowers independent steps onto the executor; the step DAG must hand the
/// same intermediates to the same contractions in every schedule.
#[test]
fn multi_step_network_is_bit_identical_across_threads() {
    let _guard = SERIAL.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let w = Tensor::random(&[40, 48], &mut rng);
    let x = Tensor::random(&[48, 40], &mut rng);
    let y = Tensor::random(&[40, 56], &mut rng);
    let z = Tensor::random(&[56, 40], &mut rng);
    sweep("ij,jk,kl,lm->im", &[w, x, y, z]);
}

/// Randomized sweep over small networks (the same generator family as the
/// plan-cache property tests): every spec must be schedule-independent.
#[test]
fn random_specs_are_bit_identical_across_threads() {
    let _guard = SERIAL.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _case in 0..40 {
        let (spec, operands) = random_network(&mut rng);
        sweep(&spec, &operands);
    }
}

/// Generate a random valid tensor-network spec (every label free once or
/// contracted twice) together with matching random operands — operands are
/// randomly real-hinted to exercise both kernels.
fn random_network(rng: &mut StdRng) -> (String, Vec<Tensor>) {
    let n_ops = rng.gen_range(1..5);
    let mut op_labels: Vec<Vec<char>> = vec![Vec::new(); n_ops];
    let mut next = b'a';
    let mut dims: Vec<(char, usize)> = Vec::new();
    let mut fresh = |dims: &mut Vec<(char, usize)>, rng: &mut StdRng| {
        let c = next as char;
        next += 1;
        dims.push((c, rng.gen_range(1..5)));
        c
    };

    if n_ops >= 2 {
        for _ in 0..rng.gen_range(0..5) {
            let i = rng.gen_range(0..n_ops);
            let mut j = rng.gen_range(0..n_ops - 1);
            if j >= i {
                j += 1;
            }
            if op_labels[i].len() >= 3 || op_labels[j].len() >= 3 {
                continue;
            }
            let c = fresh(&mut dims, rng);
            op_labels[i].push(c);
            op_labels[j].push(c);
        }
    }
    let mut output: Vec<char> = Vec::new();
    for labels in op_labels.iter_mut() {
        for _ in 0..rng.gen_range(0..3) {
            if labels.len() >= 4 {
                break;
            }
            let c = fresh(&mut dims, rng);
            labels.push(c);
            if rng.gen_range(0..4) > 0 {
                output.push(c);
            }
        }
    }
    for i in (1..output.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        output.swap(i, j);
    }

    let dim_of = |c: char| dims.iter().find(|(l, _)| *l == c).unwrap().1;
    let spec = format!(
        "{}->{}",
        op_labels.iter().map(|l| l.iter().collect::<String>()).collect::<Vec<_>>().join(","),
        output.iter().collect::<String>()
    );
    let operands = op_labels
        .iter()
        .map(|l| {
            let shape: Vec<usize> = l.iter().map(|&c| dim_of(c)).collect();
            if rng.gen_range(0..3) == 0 {
                Tensor::random_real(&shape, rng)
            } else {
                Tensor::random(&shape, rng)
            }
        })
        .collect();
    (spec, operands)
}
