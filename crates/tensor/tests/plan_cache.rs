//! Tests for the einsum contraction-plan cache: hit/miss accounting,
//! shape-change invalidation, LRU eviction, cross-thread reuse, and a
//! property sweep checking `Plan::execute` against a plan-independent naive
//! einsum evaluator on random tensor-network specifications.

use koala_tensor::shape::increment_index;
use koala_tensor::{c64, C64};
use koala_tensor::{
    clear_plan_cache, contraction_plan, einsum, einsum_spec, parse_spec, plan_stats, Plan, Tensor,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// The plan cache and its counters are process-wide; serialize the tests in
/// this binary so concurrent test threads cannot skew each other's counts.
static SERIAL: Mutex<()> = Mutex::new(());

fn tensors_for(shapes: &[Vec<usize>], seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    shapes.iter().map(|s| Tensor::random(s, &mut rng)).collect()
}

/// Acceptance criterion of the planner: repeated `einsum_spec` calls with an
/// identical spec and identical operand shapes run exactly one greedy
/// planning pass, observable through `plan_stats()`.
#[test]
fn identical_spec_and_shapes_plan_exactly_once() {
    let _guard = SERIAL.lock().unwrap();
    let spec = parse_spec("qab,qcd,bd->ac").unwrap();
    let ops = tensors_for(&[vec![5, 2, 3], vec![5, 4, 2], vec![3, 2]], 11);
    let refs: Vec<&Tensor> = ops.iter().collect();

    clear_plan_cache();
    let before = plan_stats();
    let first = einsum_spec(&spec, &refs).unwrap();
    for _ in 0..24 {
        let again = einsum_spec(&spec, &refs).unwrap();
        assert!(again.approx_eq(&first, 0.0), "cached plan must be deterministic");
    }
    let after = plan_stats();
    assert_eq!(after.misses - before.misses, 1, "exactly one greedy search may run");
    assert_eq!(after.hits - before.hits, 24, "every repeat must be a cache hit");
}

/// The string entry point shares the same plan (and memoises the parse), and
/// whitespace-only differences in the spec map to the same plan entry.
#[test]
fn string_entry_point_hits_the_same_plan() {
    let _guard = SERIAL.lock().unwrap();
    let ops = tensors_for(&[vec![3, 4], vec![4, 5]], 12);
    let refs: Vec<&Tensor> = ops.iter().collect();

    clear_plan_cache();
    let before = plan_stats();
    let a = einsum("ij,jk->ik", &[refs[0], refs[1]]).unwrap();
    let b = einsum(" ij , jk -> ik ", &[refs[0], refs[1]]).unwrap();
    let after = plan_stats();
    assert!(a.approx_eq(&b, 0.0));
    assert_eq!(after.misses - before.misses, 1, "whitespace variants share one plan");
    assert_eq!(after.hits - before.hits, 1);
}

/// Changing an operand shape must not reuse the old schedule: the new shapes
/// get their own plan (a miss), and both entries stay resident.
#[test]
fn shape_change_invalidates_the_plan() {
    let _guard = SERIAL.lock().unwrap();
    let spec = parse_spec("ij,jk->ik").unwrap();
    let small = tensors_for(&[vec![2, 3], vec![3, 4]], 13);
    let large = tensors_for(&[vec![6, 3], vec![3, 2]], 14);

    clear_plan_cache();
    let before = plan_stats();
    let s = einsum_spec(&spec, &[&small[0], &small[1]]).unwrap();
    let l = einsum_spec(&spec, &[&large[0], &large[1]]).unwrap();
    assert_eq!(s.shape(), &[2, 4]);
    assert_eq!(l.shape(), &[6, 2]);
    let after = plan_stats();
    assert_eq!(after.misses - before.misses, 2, "each shape set plans separately");
    assert_eq!(after.entries, 2);

    // A plan executed on operands of the wrong shapes is rejected rather than
    // silently producing garbage.
    let plan = contraction_plan(&spec, &[&[2usize, 3][..], &[3, 4][..]]).unwrap();
    assert!(plan.execute(&[&large[0], &large[1]]).is_err());
    // ... and going back to the first shapes is a hit, not a re-plan.
    let mid = plan_stats();
    let s2 = einsum_spec(&spec, &[&small[0], &small[1]]).unwrap();
    assert!(s2.approx_eq(&s, 0.0));
    assert_eq!(plan_stats().misses, mid.misses);
}

/// Filling the cache beyond its capacity evicts least-recently-used plans and
/// counts the evictions.
#[test]
fn lru_eviction_is_counted() {
    let _guard = SERIAL.lock().unwrap();
    koala_tensor::set_plan_cache_capacity(4);
    clear_plan_cache();
    let before = plan_stats();
    let spec = parse_spec("ij,jk->ik").unwrap();
    for d in 1..=8usize {
        let ops = tensors_for(&[vec![d, 2], vec![2, d]], 15 + d as u64);
        einsum_spec(&spec, &[&ops[0], &ops[1]]).unwrap();
    }
    let after = plan_stats();
    assert_eq!(after.misses - before.misses, 8);
    assert_eq!(after.entries, 4, "capacity bounds residency");
    assert_eq!(after.evictions - before.evictions, 4);
    // Restore the default capacity for the rest of the suite.
    koala_tensor::set_plan_cache_capacity(koala_tensor::plan::DEFAULT_PLAN_CACHE_CAPACITY);
}

/// A plan warmed on one thread is reused (not re-planned) by every other
/// thread, and all threads compute the same result.
#[test]
fn plans_are_shared_across_threads() {
    let _guard = SERIAL.lock().unwrap();
    let spec = parse_spec("abc,cd,be->ade").unwrap();
    let shapes = [vec![2, 3, 4], vec![4, 5], vec![3, 2]];
    let ops = tensors_for(&shapes, 16);
    let refs: Vec<&Tensor> = ops.iter().collect();

    clear_plan_cache();
    let expected = einsum_spec(&spec, &refs).unwrap();
    let warm = plan_stats();

    let results: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let spec = &spec;
                let refs = &refs;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..16 {
                        out.push(einsum_spec(spec, refs).unwrap());
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    for r in &results {
        assert!(r.approx_eq(&expected, 0.0), "cross-thread executions must agree");
    }
    let after = plan_stats();
    assert_eq!(after.misses, warm.misses, "no thread may re-run the greedy search");
    assert_eq!(after.hits - warm.hits, 8 * 16);
}

// ---------------------------------------------------------------------------
// Property sweep: planned execution vs a plan-independent naive evaluator.
// ---------------------------------------------------------------------------

/// Naive einsum by direct summation over every label assignment. Exponential
/// in the number of labels — only for the tiny specs generated below — but
/// completely independent of the contraction planner.
fn naive_einsum(spec_str: &str, operands: &[&Tensor]) -> Tensor {
    let spec = parse_spec(spec_str).unwrap();
    let mut labels: Vec<char> = Vec::new();
    let mut dims: Vec<usize> = Vec::new();
    for (op_labels, t) in spec.inputs.iter().zip(operands.iter()) {
        for (axis, &c) in op_labels.iter().enumerate() {
            if !labels.contains(&c) {
                labels.push(c);
                dims.push(t.dim(axis));
            }
        }
    }
    let pos = |c: char| labels.iter().position(|&l| l == c).unwrap();
    let out_shape: Vec<usize> = spec.output.iter().map(|&c| dims[pos(c)]).collect();
    let mut out = Tensor::zeros(&out_shape);
    let mut idx = vec![0usize; labels.len()];
    loop {
        let mut term = c64(1.0, 0.0);
        for (op_labels, t) in spec.inputs.iter().zip(operands.iter()) {
            let mi: Vec<usize> = op_labels.iter().map(|&c| idx[pos(c)]).collect();
            term *= t.get(&mi);
        }
        let oi: Vec<usize> = spec.output.iter().map(|&c| idx[pos(c)]).collect();
        let acc: C64 = out.get(&oi) + term;
        out.set(&oi, acc);
        if labels.is_empty() || !increment_index(&mut idx, &dims) {
            break;
        }
    }
    out
}

/// Generate a random valid tensor-network spec (every label free once or
/// contracted twice) together with matching random operands.
fn random_network(rng: &mut StdRng) -> (String, Vec<Tensor>) {
    let n_ops = rng.gen_range(1..5);
    let mut op_labels: Vec<Vec<char>> = vec![Vec::new(); n_ops];
    let mut next = b'a';
    let mut dims: Vec<(char, usize)> = Vec::new();
    let mut fresh = |dims: &mut Vec<(char, usize)>, rng: &mut StdRng| {
        let c = next as char;
        next += 1;
        dims.push((c, rng.gen_range(1..4)));
        c
    };

    // Contracted bonds between random operand pairs.
    if n_ops >= 2 {
        for _ in 0..rng.gen_range(0..5) {
            let i = rng.gen_range(0..n_ops);
            let mut j = rng.gen_range(0..n_ops - 1);
            if j >= i {
                j += 1;
            }
            if op_labels[i].len() >= 3 || op_labels[j].len() >= 3 {
                continue;
            }
            let c = fresh(&mut dims, rng);
            op_labels[i].push(c);
            op_labels[j].push(c);
        }
    }
    // Free legs; each is kept in the output with probability 3/4 (dropped
    // legs exercise the trailing sum-axis path).
    let mut output: Vec<char> = Vec::new();
    for labels in op_labels.iter_mut() {
        for _ in 0..rng.gen_range(0..3) {
            if labels.len() >= 4 {
                break;
            }
            let c = fresh(&mut dims, rng);
            labels.push(c);
            if rng.gen_range(0..4) > 0 {
                output.push(c);
            }
        }
    }
    // Shuffle the output order (Fisher-Yates) to exercise final permutations.
    for i in (1..output.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        output.swap(i, j);
    }

    let dim_of = |c: char| dims.iter().find(|(l, _)| *l == c).unwrap().1;
    let spec = format!(
        "{}->{}",
        op_labels.iter().map(|l| l.iter().collect::<String>()).collect::<Vec<_>>().join(","),
        output.iter().collect::<String>()
    );
    let operands = op_labels
        .iter()
        .map(|l| {
            let shape: Vec<usize> = l.iter().map(|&c| dim_of(c)).collect();
            Tensor::random(&shape, rng)
        })
        .collect();
    (spec, operands)
}

/// `Plan::execute` (both cached and freshly built) matches the naive
/// evaluator on random specs — the planner may pick any contraction order,
/// but the arithmetic must be identical.
#[test]
fn planned_einsum_matches_naive_on_random_specs() {
    let _guard = SERIAL.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let mut nontrivial = 0usize;
    for _case in 0..120 {
        let (spec_str, operands) = random_network(&mut rng);
        let refs: Vec<&Tensor> = operands.iter().collect();
        let expected = naive_einsum(&spec_str, &refs);
        let via_cache = einsum(&spec_str, &refs).unwrap();
        assert!(
            via_cache.approx_eq(&expected, 1e-9),
            "spec '{spec_str}' diverges from naive: {:e}",
            via_cache.max_diff(&expected)
        );
        // A fresh, uncached plan must agree exactly with the cached one.
        let parsed = parse_spec(&spec_str).unwrap();
        let shapes: Vec<&[usize]> = refs.iter().map(|t| t.shape()).collect();
        let fresh = Plan::build(&parsed, &shapes).unwrap().execute(&refs).unwrap();
        assert!(fresh.approx_eq(&via_cache, 0.0));
        if refs.len() > 1 {
            nontrivial += 1;
        }
    }
    assert!(nontrivial > 40, "generator should produce mostly multi-operand networks");
}
