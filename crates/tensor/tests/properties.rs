//! Property-based tests for the tensor layer.

use koala_tensor::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_shape(max_rank: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..4, 1..=max_rank)
}

fn seeded_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::random(shape, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn permute_preserves_norm_and_inverts(shape in small_shape(4), seed in 0u64..1000) {
        let t = seeded_tensor(&shape, seed);
        let mut perm: Vec<usize> = (0..shape.len()).collect();
        // A deterministic non-trivial permutation: rotate by one.
        perm.rotate_left(1);
        let p = t.permute(&perm).unwrap();
        prop_assert!((p.norm() - t.norm()).abs() < 1e-12);
        prop_assert!(p.unpermute(&perm).unwrap().approx_eq(&t, 0.0));
    }

    #[test]
    fn reshape_roundtrip_preserves_data(shape in small_shape(4), seed in 0u64..1000) {
        let t = seeded_tensor(&shape, seed);
        let flat = t.reshape(&[t.len()]).unwrap();
        let back = flat.reshape(&shape).unwrap();
        prop_assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    fn unfold_fold_roundtrip(shape in small_shape(4), split_frac in 0usize..5, seed in 0u64..1000) {
        let t = seeded_tensor(&shape, seed);
        let split = split_frac % (shape.len() + 1);
        let m = t.unfold(split);
        let back = Tensor::fold(&m, &shape[..split], &shape[split..]).unwrap();
        prop_assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    fn tensordot_matches_naive(
        d0 in 1usize..4, d1 in 1usize..4, d2 in 1usize..4, d3 in 1usize..4,
        seed in 0u64..1000
    ) {
        let a = seeded_tensor(&[d0, d1, d2], seed);
        let b = seeded_tensor(&[d2, d1, d3], seed.wrapping_add(1));
        let fast = tensordot(&a, &b, &[2, 1], &[0, 1]).unwrap();
        let slow = tensordot_naive(&a, &b, &[2, 1], &[0, 1]).unwrap();
        prop_assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn tensordot_is_bilinear(
        d0 in 1usize..4, d1 in 1usize..4, d2 in 1usize..4,
        seed in 0u64..1000
    ) {
        let a = seeded_tensor(&[d0, d1], seed);
        let b1 = seeded_tensor(&[d1, d2], seed.wrapping_add(2));
        let b2 = seeded_tensor(&[d1, d2], seed.wrapping_add(3));
        let lhs = tensordot(&a, &b1.add(&b2).unwrap(), &[1], &[0]).unwrap();
        let rhs = tensordot(&a, &b1, &[1], &[0]).unwrap()
            .add(&tensordot(&a, &b2, &[1], &[0]).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn einsum_matrix_chain_is_associative(
        d0 in 1usize..4, d1 in 1usize..4, d2 in 1usize..4, d3 in 1usize..4,
        seed in 0u64..1000
    ) {
        let a = seeded_tensor(&[d0, d1], seed);
        let b = seeded_tensor(&[d1, d2], seed.wrapping_add(4));
        let c = seeded_tensor(&[d2, d3], seed.wrapping_add(5));
        let chained = einsum("ij,jk,kl->il", &[&a, &b, &c]).unwrap();
        let ab = tensordot(&a, &b, &[1], &[0]).unwrap();
        let manual = tensordot(&ab, &c, &[1], &[0]).unwrap();
        prop_assert!(chained.approx_eq(&manual, 1e-9));
    }

    #[test]
    fn svd_split_truncation_is_monotone(
        d0 in 2usize..4, d1 in 2usize..4, d2 in 2usize..4,
        seed in 0u64..1000
    ) {
        let t = seeded_tensor(&[d0, d1, d2], seed);
        let full = svd_split(&t, &[0], Truncation::none()).unwrap();
        let mut prev_err = -1.0f64;
        for k in (1..=full.s.len()).rev() {
            let f = svd_split(&t, &[0], Truncation::max_rank(k)).unwrap();
            prop_assert!(f.truncation_error >= prev_err - 1e-12,
                "error should grow as rank shrinks");
            prev_err = f.truncation_error;
        }
    }

    #[test]
    fn qr_split_isometry(shape in small_shape(4), seed in 0u64..1000) {
        prop_assume!(shape.len() >= 2);
        let t = seeded_tensor(&shape, seed);
        let (q, r) = qr_split(&t, &[0]).unwrap();
        let qm = q.unfold(1);
        prop_assert!(qm.has_orthonormal_cols(1e-9));
        let rebuilt = tensordot(&q, &r, &[1], &[0]).unwrap();
        prop_assert!(rebuilt.approx_eq(&t, 1e-9));
    }

    #[test]
    fn inner_product_cauchy_schwarz(shape in small_shape(3), seed in 0u64..1000) {
        let a = seeded_tensor(&shape, seed);
        let b = seeded_tensor(&shape, seed.wrapping_add(9));
        let inner = a.inner(&b).unwrap().abs();
        prop_assert!(inner <= a.norm() * b.norm() + 1e-9);
    }
}

/// Exhaustive-ish `tensordot` vs `tensordot_naive` sweep over rank-3/4/5
/// operands, covering every count of contracted axes (including zero — an
/// outer product) and several axis orders, so both the zero-copy matricized
/// fast paths and the permuting fallback get exercised.
#[test]
fn tensordot_matches_naive_rank_3_4_5_sweep() {
    let mut rng = StdRng::seed_from_u64(0xD07);
    // (shape_a, shape_b, axes_a, axes_b)
    let cases: Vec<(Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>)> = vec![
        // rank 3 x rank 3
        (vec![2, 3, 4], vec![4, 3, 2], vec![2], vec![0]),
        (vec![2, 3, 4], vec![4, 3, 2], vec![1, 2], vec![1, 0]),
        (vec![2, 3, 4], vec![2, 3, 4], vec![0, 1, 2], vec![0, 1, 2]),
        (vec![2, 3, 4], vec![3, 2, 2], vec![0], vec![1]),
        // leading/trailing contracted axes hit the zero-copy transpose path
        (vec![3, 2, 4], vec![3, 5, 2], vec![0], vec![0]),
        (vec![2, 3, 4], vec![5, 4, 2], vec![2], vec![1]),
        // rank 4
        (vec![2, 3, 2, 4], vec![4, 2, 3, 2], vec![3, 1], vec![0, 2]),
        (vec![2, 3, 2, 4], vec![2, 3, 5, 2], vec![0, 1], vec![0, 1]),
        (vec![2, 2, 3, 3], vec![3, 3, 2, 2], vec![2, 3], vec![0, 1]),
        // rank 5
        (vec![2, 2, 2, 3, 2], vec![3, 2, 2, 2, 2], vec![3, 4], vec![0, 1]),
        (vec![2, 2, 2, 3, 2], vec![2, 3, 2, 2, 2], vec![1, 3, 0], vec![2, 1, 4]),
        // mixed ranks and outer product
        (vec![2, 3, 4], vec![4, 5], vec![2], vec![0]),
        (vec![2, 2], vec![3, 2, 2], vec![], vec![]),
    ];
    for (sa, sb, axes_a, axes_b) in cases {
        let a = Tensor::random(&sa, &mut rng);
        let b = Tensor::random(&sb, &mut rng);
        let fast = tensordot(&a, &b, &axes_a, &axes_b).unwrap();
        let slow = tensordot_naive(&a, &b, &axes_a, &axes_b).unwrap();
        assert!(
            fast.approx_eq(&slow, 1e-10),
            "tensordot({sa:?}, {sb:?}, {axes_a:?}, {axes_b:?}) diverges from naive: {:e}",
            fast.max_diff(&slow)
        );
    }
}

/// Realness propagation through the einsum pipeline: contractions of
/// hinted-real tensors run end to end on the real GEMM path, produce
/// hint-carrying real results identical (to 1e-12) to full complex
/// arithmetic, and the hint survives every layout stage the planner uses
/// (permute, reshape, matricization, axis sums, output permutation).
#[test]
fn einsum_of_real_tensors_is_real_and_matches_complex_arithmetic() {
    let mut rng = StdRng::seed_from_u64(0x0DDC0DE);
    let a = Tensor::random_real(&[2, 3, 4], &mut rng);
    let b = Tensor::random_real(&[4, 3, 5], &mut rng);
    let c = Tensor::random_real(&[5, 2], &mut rng);
    // Multi-operand spec exercising interleaved axes, a dropped label, and a
    // permuted output.
    let out = einsum("ijk,kjl,lm->mi", &[&a, &b, &c]).unwrap();
    assert!(out.is_real(), "einsum of real tensors must carry the realness hint");
    assert!(out.data().iter().all(|z| z.im == 0.0));
    // Same contraction with the hints laundered away (per-block detection
    // still guarantees identical real-kernel arithmetic, so results agree to
    // rounding): semantics are those of complex arithmetic.
    let a_c = Tensor::from_vec(&[2, 3, 4], a.data().to_vec()).unwrap();
    let b_c = Tensor::from_vec(&[4, 3, 5], b.data().to_vec()).unwrap();
    let c_c = Tensor::from_vec(&[5, 2], c.data().to_vec()).unwrap();
    assert!(!a_c.is_real());
    let reference = einsum("ijk,kjl,lm->mi", &[&a_c, &b_c, &c_c]).unwrap();
    assert!(!reference.is_real(), "unhinted operands must not produce a hinted result");
    assert!(out.approx_eq(&reference, 1e-12));

    // One complex operand anywhere poisons the result hint — and the result
    // really is complex.
    let phase = b.scale(c64(0.0, 1.0));
    assert!(!phase.is_real());
    let mixed = einsum("ijk,kjl,lm->mi", &[&a, &phase, &c]).unwrap();
    assert!(!mixed.is_real());
    assert!(mixed.data().iter().any(|z| z.im != 0.0));

    // Layout stages preserve the hint without rescans.
    let p = a.permute(&[2, 0, 1]).unwrap();
    assert!(p.is_real());
    assert!(p.reshape(&[4, 6]).unwrap().is_real());
    assert!(p.unfold(1).is_real());
    assert!(Tensor::fold(&p.unfold(1), &[4], &[2, 3]).unwrap().is_real());
    assert!(sum_axis(&a, 1).unwrap().is_real());
    assert!(a.conj().is_real());
    assert!(!a.scale(c64(0.5, -0.5)).is_real());
}

/// `sum_axis` (now a direct strided reduction) equals contracting against a
/// ones tensor, on every axis of rank-1..4 tensors.
#[test]
fn sum_axis_matches_ones_contraction() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for shape in [vec![5], vec![3, 4], vec![2, 3, 4], vec![2, 3, 2, 3]] {
        let t = Tensor::random(&shape, &mut rng);
        for axis in 0..shape.len() {
            let direct = sum_axis(&t, axis).unwrap();
            let ones = Tensor::ones(&[shape[axis]]);
            let via_gemm = tensordot(&t, &ones, &[axis], &[0]).unwrap();
            assert!(direct.approx_eq(&via_gemm, 1e-12));
        }
    }
}
