//! Pairwise tensor contraction (tensordot) implemented on top of GEMM.

use crate::tensor::{Result, Tensor, TensorError};
use koala_linalg::gemm::matmul;

/// Contract `a` and `b` over the axis pairs `(axes_a[i], axes_b[i])`.
///
/// The result carries the uncontracted axes of `a` (in their original order)
/// followed by the uncontracted axes of `b`. This is the same convention as
/// NumPy's `tensordot`, which the original Koala library builds on.
pub fn tensordot(a: &Tensor, b: &Tensor, axes_a: &[usize], axes_b: &[usize]) -> Result<Tensor> {
    if axes_a.len() != axes_b.len() {
        return Err(TensorError::InvalidAxes {
            context: format!(
                "tensordot: {} axes for left operand but {} for right",
                axes_a.len(),
                axes_b.len()
            ),
        });
    }
    for (&ia, &ib) in axes_a.iter().zip(axes_b.iter()) {
        if ia >= a.ndim() || ib >= b.ndim() {
            return Err(TensorError::InvalidAxes {
                context: format!(
                    "tensordot: axis pair ({ia},{ib}) out of range for ranks {} and {}",
                    a.ndim(),
                    b.ndim()
                ),
            });
        }
        if a.dim(ia) != b.dim(ib) {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "tensordot: axis {ia} of left (dim {}) vs axis {ib} of right (dim {})",
                    a.dim(ia),
                    b.dim(ib)
                ),
            });
        }
    }
    let mut seen_a = vec![false; a.ndim()];
    for &ia in axes_a {
        if seen_a[ia] {
            return Err(TensorError::InvalidAxes {
                context: format!("tensordot: duplicate left axis {ia}"),
            });
        }
        seen_a[ia] = true;
    }
    let mut seen_b = vec![false; b.ndim()];
    for &ib in axes_b {
        if seen_b[ib] {
            return Err(TensorError::InvalidAxes {
                context: format!("tensordot: duplicate right axis {ib}"),
            });
        }
        seen_b[ib] = true;
    }

    let free_a: Vec<usize> = (0..a.ndim()).filter(|i| !axes_a.contains(i)).collect();
    let free_b: Vec<usize> = (0..b.ndim()).filter(|i| !axes_b.contains(i)).collect();

    // Left operand: free axes first, contracted axes last.
    let mut perm_a: Vec<usize> = free_a.clone();
    perm_a.extend_from_slice(axes_a);
    let a_perm = a.permute(&perm_a)?;
    let a_mat = a_perm.unfold(free_a.len());

    // Right operand: contracted axes first, free axes last.
    let mut perm_b: Vec<usize> = axes_b.to_vec();
    perm_b.extend_from_slice(&free_b);
    let b_perm = b.permute(&perm_b)?;
    let b_mat = b_perm.unfold(axes_b.len());

    let c = matmul(&a_mat, &b_mat);

    let mut out_shape: Vec<usize> = free_a.iter().map(|&i| a.dim(i)).collect();
    out_shape.extend(free_b.iter().map(|&i| b.dim(i)));
    Tensor::fold(&c, &out_shape[..free_a.len()], &out_shape[free_a.len()..])
}

/// Contract every axis of `a` against every axis of `b` (full inner product
/// of identically shaped tensors, conjugating neither operand).
pub fn contract_all(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let axes: Vec<usize> = (0..a.ndim()).collect();
    tensordot(a, b, &axes, &axes)
}

/// Sum the tensor over one axis, removing it.
pub fn sum_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    if axis >= t.ndim() {
        return Err(TensorError::InvalidAxes {
            context: format!("sum_axis: axis {axis} out of range for rank {}", t.ndim()),
        });
    }
    let ones = Tensor::ones(&[t.dim(axis)]);
    tensordot(t, &ones, &[axis], &[0])
}

/// Naive element-wise reference contraction used by tests and property checks
/// in dependent crates. O(prod(all dims)) — only for small tensors.
pub fn tensordot_naive(a: &Tensor, b: &Tensor, axes_a: &[usize], axes_b: &[usize]) -> Result<Tensor> {
    use crate::shape::{increment_index, num_elements};
    let free_a: Vec<usize> = (0..a.ndim()).filter(|i| !axes_a.contains(i)).collect();
    let free_b: Vec<usize> = (0..b.ndim()).filter(|i| !axes_b.contains(i)).collect();
    let mut out_shape: Vec<usize> = free_a.iter().map(|&i| a.dim(i)).collect();
    out_shape.extend(free_b.iter().map(|&i| b.dim(i)));
    let contracted_dims: Vec<usize> = axes_a.iter().map(|&i| a.dim(i)).collect();

    let mut out = Tensor::zeros(&out_shape);
    if num_elements(&out_shape) == 0 {
        return Ok(out);
    }
    let mut out_idx = vec![0usize; out_shape.len()];
    loop {
        let mut acc = koala_linalg::C64::ZERO;
        let mut k_idx = vec![0usize; contracted_dims.len()];
        loop {
            let mut ia = vec![0usize; a.ndim()];
            for (pos, &ax) in free_a.iter().enumerate() {
                ia[ax] = out_idx[pos];
            }
            for (pos, &ax) in axes_a.iter().enumerate() {
                ia[ax] = k_idx[pos];
            }
            let mut ib = vec![0usize; b.ndim()];
            for (pos, &ax) in free_b.iter().enumerate() {
                ib[ax] = out_idx[free_a.len() + pos];
            }
            for (pos, &ax) in axes_b.iter().enumerate() {
                ib[ax] = k_idx[pos];
            }
            acc = acc.mul_add(a.get(&ia), b.get(&ib));
            if contracted_dims.is_empty() || !increment_index(&mut k_idx, &contracted_dims) {
                break;
            }
        }
        out.set(&out_idx, acc);
        if out_shape.is_empty() || !increment_index(&mut out_idx, &out_shape) {
            break;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use koala_linalg::{c64, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matrix_product_special_case() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Tensor::random(&[4, 5], &mut rng);
        let b = Tensor::random(&[5, 3], &mut rng);
        let c = tensordot(&a, &b, &[1], &[0]).unwrap();
        let expected = matmul(&a.to_matrix_2d(), &b.to_matrix_2d());
        assert!(c.to_matrix_2d().approx_eq(&expected, 1e-11));
    }

    #[test]
    fn matches_naive_on_random_tensors() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::random(&[2, 3, 4], &mut rng);
        let b = Tensor::random(&[4, 3, 5], &mut rng);
        let fast = tensordot(&a, &b, &[2, 1], &[0, 1]).unwrap();
        let slow = tensordot_naive(&a, &b, &[2, 1], &[0, 1]).unwrap();
        assert_eq!(fast.shape(), &[2, 5]);
        assert!(fast.approx_eq(&slow, 1e-10));
    }

    #[test]
    fn no_contracted_axes_gives_outer_product() {
        let a = Tensor::from_real(&[2], &[1.0, 2.0]).unwrap();
        let b = Tensor::from_real(&[2], &[3.0, 4.0]).unwrap();
        let c = tensordot(&a, &b, &[], &[]).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.get(&[1, 0]), c64(6.0, 0.0));
        assert!(c.approx_eq(&a.outer(&b), 1e-14));
    }

    #[test]
    fn full_contraction_gives_scalar() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Tensor::random(&[2, 3], &mut rng);
        let b = Tensor::random(&[2, 3], &mut rng);
        let s = contract_all(&a, &b).unwrap();
        assert_eq!(s.ndim(), 0);
        let expected = a.conj().inner(&b).unwrap(); // plain bilinear sum
        assert!(s.item().approx_eq(expected, 1e-10));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(tensordot(&a, &b, &[1], &[0]).is_err());
        assert!(tensordot(&a, &b, &[1], &[0, 1]).is_err());
        assert!(tensordot(&a, &b, &[5], &[0]).is_err());
        assert!(tensordot(&a, &b, &[1, 1], &[0, 1]).is_err());
    }

    #[test]
    fn identity_contraction_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(13);
        let t = Tensor::random(&[3, 4], &mut rng);
        let eye = Tensor::eye(4);
        let out = tensordot(&t, &eye, &[1], &[0]).unwrap();
        assert!(out.approx_eq(&t, 1e-12));
    }

    #[test]
    fn sum_axis_matches_manual_sum() {
        let t = Tensor::from_real(&[2, 3], &[1., 2., 3., 4., 5., 6.]).unwrap();
        let s = sum_axis(&t, 1).unwrap();
        assert_eq!(s.shape(), &[2]);
        assert_eq!(s.get(&[0]), c64(6.0, 0.0));
        assert_eq!(s.get(&[1]), c64(15.0, 0.0));
        assert!(sum_axis(&t, 2).is_err());
    }

    #[test]
    fn contraction_order_of_free_axes() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = Tensor::random(&[2, 3, 4], &mut rng);
        let b = Tensor::random(&[3, 5], &mut rng);
        let c = tensordot(&a, &b, &[1], &[0]).unwrap();
        assert_eq!(c.shape(), &[2, 4, 5]);
        // Check one element against the definition.
        let mut acc = koala_linalg::C64::ZERO;
        for k in 0..3 {
            acc += a.get(&[1, k, 2]) * b.get(&[k, 3]);
        }
        assert!(c.get(&[1, 2, 3]).approx_eq(acc, 1e-12));
    }

    #[test]
    fn gemm_matrix_helper_roundtrip() {
        let m = Matrix::identity(3);
        let t = Tensor::from_matrix_2d(&m);
        let out = tensordot(&t, &t, &[1], &[0]).unwrap();
        assert!(out.to_matrix_2d().approx_eq(&m, 1e-14));
    }
}
