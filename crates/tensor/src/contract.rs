//! Pairwise tensor contraction (tensordot) implemented on top of GEMM.
//!
//! `tensordot` lowers a contraction to a single GEMM by viewing each operand
//! as a matrix over (free axes) x (contracted axes). The lowering is
//! zero-copy whenever the axis lists line up with the stored layout:
//!
//! * if the operand's axes are already ordered `free ++ contracted` (left) or
//!   `contracted ++ free` (right), its buffer is passed to the GEMM directly;
//! * if they are ordered the other way round, the *transposed* matricization
//!   is passed with [`Op::Transpose`], which the GEMM folds into operand
//!   packing — still no copy;
//! * only genuinely interleaved axis orders fall back to one `permute`.
//!
//! The GEMM output is written straight into the result tensor's buffer, so
//! already-matricized contractions perform zero intermediate allocations
//! beyond the result itself.
//!
//! Realness rides along structurally: when both operands carry the
//! [`Tensor::is_real`] hint the GEMM is dispatched to `koala-linalg`'s
//! real-only kernel ([`gemm_into_real`]) and the result tensor is marked
//! real, so a chain of contractions over real tensors (a TFI evolution
//! network) stays on the cheap kernel end to end without a single data scan.

use crate::shape::num_elements;
use crate::tensor::{Result, Tensor, TensorError};
use koala_linalg::gemm::{gemm_into, gemm_into_real, Op};
use koala_linalg::C64;

/// Contract `a` and `b` over the axis pairs `(axes_a[i], axes_b[i])`.
///
/// The result carries the uncontracted axes of `a` (in their original order)
/// followed by the uncontracted axes of `b`. This is the same convention as
/// NumPy's `tensordot`, which the original Koala library builds on.
///
/// Internally this builds a one-shot `PairPlan` and executes it; the einsum
/// planner ([`crate::plan`]) builds the same `PairPlan`s once per
/// `(spec, shapes)` key and replays them, so repeated contractions skip the
/// axis validation and matricization-layout analysis entirely.
pub fn tensordot(a: &Tensor, b: &Tensor, axes_a: &[usize], axes_b: &[usize]) -> Result<Tensor> {
    PairPlan::new(a.shape(), axes_a, b.shape(), axes_b)?.execute(a, b)
}

/// How one operand of a pairwise contraction is lowered to a GEMM input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum MatLayout {
    /// The stored buffer already is the requested matricization (possibly as
    /// its transpose, which the GEMM fuses into packing) — zero copy.
    Direct(Op),
    /// The axes genuinely interleave: one permuted copy is required.
    Permute(Vec<usize>),
}

/// The fully analysed lowering of one pairwise tensor contraction to a single
/// GEMM call: effective `(m, n, k)` dimensions, the matricization layout of
/// each operand, and the result shape. Valid only for operands of exactly the
/// shapes it was built for — the layout decisions depend on nothing else, so a
/// `PairPlan` can be reused across any number of executions with different
/// operand *values* (this is what [`crate::plan::Plan`] memoises per step).
#[derive(Debug, Clone)]
pub(crate) struct PairPlan {
    shape_a: Vec<usize>,
    shape_b: Vec<usize>,
    m: usize,
    n: usize,
    k: usize,
    a_layout: MatLayout,
    b_layout: MatLayout,
    out_shape: Vec<usize>,
}

impl PairPlan {
    /// Validate the contraction and analyse both matricization layouts.
    pub(crate) fn new(
        shape_a: &[usize],
        axes_a: &[usize],
        shape_b: &[usize],
        axes_b: &[usize],
    ) -> Result<PairPlan> {
        let (nda, ndb) = (shape_a.len(), shape_b.len());
        if axes_a.len() != axes_b.len() {
            return Err(TensorError::InvalidAxes {
                context: format!(
                    "tensordot: {} axes for left operand but {} for right",
                    axes_a.len(),
                    axes_b.len()
                ),
            });
        }
        for (&ia, &ib) in axes_a.iter().zip(axes_b.iter()) {
            if ia >= nda || ib >= ndb {
                return Err(TensorError::InvalidAxes {
                    context: format!(
                        "tensordot: axis pair ({ia},{ib}) out of range for ranks {nda} and {ndb}"
                    ),
                });
            }
            if shape_a[ia] != shape_b[ib] {
                return Err(TensorError::ShapeMismatch {
                    context: format!(
                        "tensordot: axis {ia} of left (dim {}) vs axis {ib} of right (dim {})",
                        shape_a[ia], shape_b[ib]
                    ),
                });
            }
        }
        let mut seen_a = vec![false; nda];
        for &ia in axes_a {
            if seen_a[ia] {
                return Err(TensorError::InvalidAxes {
                    context: format!("tensordot: duplicate left axis {ia}"),
                });
            }
            seen_a[ia] = true;
        }
        let mut seen_b = vec![false; ndb];
        for &ib in axes_b {
            if seen_b[ib] {
                return Err(TensorError::InvalidAxes {
                    context: format!("tensordot: duplicate right axis {ib}"),
                });
            }
            seen_b[ib] = true;
        }

        let free_a: Vec<usize> = (0..nda).filter(|i| !axes_a.contains(i)).collect();
        let free_b: Vec<usize> = (0..ndb).filter(|i| !axes_b.contains(i)).collect();

        let m: usize = free_a.iter().map(|&i| shape_a[i]).product();
        let k: usize = axes_a.iter().map(|&i| shape_a[i]).product();
        let n: usize = free_b.iter().map(|&i| shape_b[i]).product();

        // Left operand: matricize as (free axes) x (contracted axes); right
        // operand as (contracted axes) x (free axes).
        let a_layout = layout_for(&free_a, axes_a);
        let b_layout = layout_for(axes_b, &free_b);

        let mut out_shape: Vec<usize> = free_a.iter().map(|&i| shape_a[i]).collect();
        out_shape.extend(free_b.iter().map(|&i| shape_b[i]));
        Ok(PairPlan {
            shape_a: shape_a.to_vec(),
            shape_b: shape_b.to_vec(),
            m,
            n,
            k,
            a_layout,
            b_layout,
            out_shape,
        })
    }

    /// Shape of the contraction result.
    pub(crate) fn out_shape(&self) -> &[usize] {
        &self.out_shape
    }

    /// Run the planned contraction on concrete operands.
    pub(crate) fn execute(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        if a.shape() != self.shape_a || b.shape() != self.shape_b {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "contraction plan built for shapes {:?} x {:?} applied to {:?} x {:?}",
                    self.shape_a,
                    self.shape_b,
                    a.shape(),
                    b.shape()
                ),
            });
        }
        // Realness dispatch: permuted copies inherit their source's hint
        // (permute preserves realness), so checking the operands is enough.
        let real = a.is_real() && b.is_real();
        let (a_view, opa) = apply_layout(a, &self.a_layout)?;
        let (b_view, opb) = apply_layout(b, &self.b_layout)?;
        let mut out = vec![C64::ZERO; self.m * self.n];
        if real {
            gemm_into_real(
                opa,
                opb,
                self.m,
                self.n,
                self.k,
                a_view.data(),
                b_view.data(),
                &mut out,
            );
        } else {
            gemm_into(opa, opb, self.m, self.n, self.k, a_view.data(), b_view.data(), &mut out);
        }
        let mut out_t = Tensor::from_vec(&self.out_shape, out)?;
        if real {
            // The real kernel writes only real parts into the zeroed buffer.
            out_t.assume_real();
        }
        Ok(out_t)
    }
}

/// Decide how to matricize a tensor with `rows` axes indexing matrix rows and
/// `cols` axes indexing matrix columns. Zero-copy when the stored layout (or
/// its transpose) already matches; a single permutation otherwise.
fn layout_for(rows: &[usize], cols: &[usize]) -> MatLayout {
    if is_identity_order(rows, cols) {
        return MatLayout::Direct(Op::None);
    }
    if is_identity_order(cols, rows) {
        return MatLayout::Direct(Op::Transpose);
    }
    let mut perm: Vec<usize> = rows.to_vec();
    perm.extend_from_slice(cols);
    MatLayout::Permute(perm)
}

/// Materialize a planned matricization layout for a concrete operand.
fn apply_layout<'a>(t: &'a Tensor, layout: &MatLayout) -> Result<(MatView<'a>, Op)> {
    match layout {
        MatLayout::Direct(op) => Ok((MatView::Borrowed(t.data()), *op)),
        MatLayout::Permute(perm) => Ok((MatView::Owned(t.permute(perm)?.into_data()), Op::None)),
    }
}

/// A matricized view of a tensor: either the tensor's own buffer (zero-copy)
/// or a permuted copy when the axis order genuinely interleaves.
enum MatView<'a> {
    Borrowed(&'a [C64]),
    Owned(Vec<C64>),
}

impl MatView<'_> {
    fn data(&self) -> &[C64] {
        match self {
            MatView::Borrowed(d) => d,
            MatView::Owned(d) => d,
        }
    }
}

/// True if `first ++ second` is the identity permutation `0..n`.
fn is_identity_order(first: &[usize], second: &[usize]) -> bool {
    first.iter().chain(second.iter()).copied().eq(0..first.len() + second.len())
}

/// Contract every axis of `a` against every axis of `b` (full inner product
/// of identically shaped tensors, conjugating neither operand).
pub fn contract_all(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let axes: Vec<usize> = (0..a.ndim()).collect();
    tensordot(a, b, &axes, &axes)
}

/// Sum the tensor over one axis, removing it.
///
/// Implemented as a direct strided reduction — one pass over the data with
/// contiguous inner accumulation — rather than a contraction with a ones
/// tensor, which would allocate the ones vector and dispatch a full GEMM.
pub fn sum_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    if axis >= t.ndim() {
        return Err(TensorError::InvalidAxes {
            context: format!("sum_axis: axis {axis} out of range for rank {}", t.ndim()),
        });
    }
    let shape = t.shape();
    let outer: usize = shape[..axis].iter().product();
    let len = shape[axis];
    let inner: usize = shape[axis + 1..].iter().product();
    let mut new_shape = shape.to_vec();
    new_shape.remove(axis);
    let mut out = vec![C64::ZERO; num_elements(&new_shape)];
    let src = t.data();
    for o in 0..outer {
        let dst = &mut out[o * inner..(o + 1) * inner];
        let base = o * len * inner;
        for p in 0..len {
            let row = &src[base + p * inner..base + (p + 1) * inner];
            for (d, s) in dst.iter_mut().zip(row.iter()) {
                *d += *s;
            }
        }
    }
    let mut out_t = Tensor::from_vec(&new_shape, out)?;
    if t.is_real() {
        // A sum of real entries is real.
        out_t.assume_real();
    }
    Ok(out_t)
}

/// Naive element-wise reference contraction used by tests and property checks
/// in dependent crates. O(prod(all dims)) — only for small tensors.
pub fn tensordot_naive(
    a: &Tensor,
    b: &Tensor,
    axes_a: &[usize],
    axes_b: &[usize],
) -> Result<Tensor> {
    use crate::shape::{increment_index, num_elements};
    let free_a: Vec<usize> = (0..a.ndim()).filter(|i| !axes_a.contains(i)).collect();
    let free_b: Vec<usize> = (0..b.ndim()).filter(|i| !axes_b.contains(i)).collect();
    let mut out_shape: Vec<usize> = free_a.iter().map(|&i| a.dim(i)).collect();
    out_shape.extend(free_b.iter().map(|&i| b.dim(i)));
    let contracted_dims: Vec<usize> = axes_a.iter().map(|&i| a.dim(i)).collect();

    let mut out = Tensor::zeros(&out_shape);
    if num_elements(&out_shape) == 0 {
        return Ok(out);
    }
    let mut out_idx = vec![0usize; out_shape.len()];
    loop {
        let mut acc = koala_linalg::C64::ZERO;
        let mut k_idx = vec![0usize; contracted_dims.len()];
        loop {
            let mut ia = vec![0usize; a.ndim()];
            for (pos, &ax) in free_a.iter().enumerate() {
                ia[ax] = out_idx[pos];
            }
            for (pos, &ax) in axes_a.iter().enumerate() {
                ia[ax] = k_idx[pos];
            }
            let mut ib = vec![0usize; b.ndim()];
            for (pos, &ax) in free_b.iter().enumerate() {
                ib[ax] = out_idx[free_a.len() + pos];
            }
            for (pos, &ax) in axes_b.iter().enumerate() {
                ib[ax] = k_idx[pos];
            }
            acc = acc.mul_add(a.get(&ia), b.get(&ib));
            if contracted_dims.is_empty() || !increment_index(&mut k_idx, &contracted_dims) {
                break;
            }
        }
        out.set(&out_idx, acc);
        if out_shape.is_empty() || !increment_index(&mut out_idx, &out_shape) {
            break;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use koala_linalg::gemm::matmul;
    use koala_linalg::{c64, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matrix_product_special_case() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Tensor::random(&[4, 5], &mut rng);
        let b = Tensor::random(&[5, 3], &mut rng);
        let c = tensordot(&a, &b, &[1], &[0]).unwrap();
        let expected = matmul(&a.to_matrix_2d(), &b.to_matrix_2d());
        assert!(c.to_matrix_2d().approx_eq(&expected, 1e-11));
    }

    #[test]
    fn matches_naive_on_random_tensors() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::random(&[2, 3, 4], &mut rng);
        let b = Tensor::random(&[4, 3, 5], &mut rng);
        let fast = tensordot(&a, &b, &[2, 1], &[0, 1]).unwrap();
        let slow = tensordot_naive(&a, &b, &[2, 1], &[0, 1]).unwrap();
        assert_eq!(fast.shape(), &[2, 5]);
        assert!(fast.approx_eq(&slow, 1e-10));
    }

    #[test]
    fn no_contracted_axes_gives_outer_product() {
        let a = Tensor::from_real(&[2], &[1.0, 2.0]).unwrap();
        let b = Tensor::from_real(&[2], &[3.0, 4.0]).unwrap();
        let c = tensordot(&a, &b, &[], &[]).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.get(&[1, 0]), c64(6.0, 0.0));
        assert!(c.approx_eq(&a.outer(&b), 1e-14));
    }

    #[test]
    fn full_contraction_gives_scalar() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Tensor::random(&[2, 3], &mut rng);
        let b = Tensor::random(&[2, 3], &mut rng);
        let s = contract_all(&a, &b).unwrap();
        assert_eq!(s.ndim(), 0);
        let expected = a.conj().inner(&b).unwrap(); // plain bilinear sum
        assert!(s.item().approx_eq(expected, 1e-10));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(tensordot(&a, &b, &[1], &[0]).is_err());
        assert!(tensordot(&a, &b, &[1], &[0, 1]).is_err());
        assert!(tensordot(&a, &b, &[5], &[0]).is_err());
        assert!(tensordot(&a, &b, &[1, 1], &[0, 1]).is_err());
    }

    #[test]
    fn identity_contraction_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(13);
        let t = Tensor::random(&[3, 4], &mut rng);
        let eye = Tensor::eye(4);
        let out = tensordot(&t, &eye, &[1], &[0]).unwrap();
        assert!(out.approx_eq(&t, 1e-12));
    }

    #[test]
    fn sum_axis_matches_manual_sum() {
        let t = Tensor::from_real(&[2, 3], &[1., 2., 3., 4., 5., 6.]).unwrap();
        let s = sum_axis(&t, 1).unwrap();
        assert_eq!(s.shape(), &[2]);
        assert_eq!(s.get(&[0]), c64(6.0, 0.0));
        assert_eq!(s.get(&[1]), c64(15.0, 0.0));
        assert!(sum_axis(&t, 2).is_err());
    }

    #[test]
    fn contraction_order_of_free_axes() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = Tensor::random(&[2, 3, 4], &mut rng);
        let b = Tensor::random(&[3, 5], &mut rng);
        let c = tensordot(&a, &b, &[1], &[0]).unwrap();
        assert_eq!(c.shape(), &[2, 4, 5]);
        // Check one element against the definition.
        let mut acc = koala_linalg::C64::ZERO;
        for k in 0..3 {
            acc += a.get(&[1, k, 2]) * b.get(&[k, 3]);
        }
        assert!(c.get(&[1, 2, 3]).approx_eq(acc, 1e-12));
    }

    #[test]
    fn gemm_matrix_helper_roundtrip() {
        let m = Matrix::identity(3);
        let t = Tensor::from_matrix_2d(&m);
        let out = tensordot(&t, &t, &[1], &[0]).unwrap();
        assert!(out.to_matrix_2d().approx_eq(&m, 1e-14));
    }
}
