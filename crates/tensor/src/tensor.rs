//! Dense row-major complex tensor.

use crate::shape::{
    increment_index, invert_permutation, is_identity_perm, is_permutation, num_elements,
    permute_shape, ravel, strides_for, unravel,
};
use koala_linalg::{c64, Matrix, C64};
use rand::Rng;
use std::fmt;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Shape / size disagreement.
    ShapeMismatch {
        /// Description of the failed operation.
        context: String,
    },
    /// Invalid axis or permutation argument.
    InvalidAxes {
        /// Description of the failed operation.
        context: String,
    },
    /// Error bubbled up from the linear-algebra layer.
    Linalg(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            TensorError::InvalidAxes { context } => write!(f, "invalid axes: {context}"),
            TensorError::Linalg(msg) => write!(f, "linear algebra error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

impl From<TensorError> for koala_error::KoalaError {
    fn from(e: TensorError) -> Self {
        use koala_error::ErrorKind;
        let kind = match &e {
            TensorError::ShapeMismatch { .. } => ErrorKind::Shape,
            TensorError::InvalidAxes { .. } => ErrorKind::InvalidArgument,
            // The linalg layer stringifies before it reaches us; recover the
            // classification that matters for recovery policy from the text.
            TensorError::Linalg(msg) => {
                if msg.contains("non-finite") {
                    ErrorKind::NonFinite
                } else if msg.contains("did not converge") {
                    ErrorKind::NoConvergence
                } else {
                    ErrorKind::Numerical
                }
            }
        };
        koala_error::KoalaError::new(kind, e.to_string())
    }
}

impl From<koala_linalg::LinalgError> for TensorError {
    fn from(e: koala_linalg::LinalgError) -> Self {
        TensorError::Linalg(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Dense tensor of [`C64`] stored contiguously in row-major order.
///
/// # Realness hint
///
/// Like [`Matrix`], every tensor carries a structural `is_real` hint (`true`
/// guarantees all imaginary parts are exactly zero; `false` means unknown).
/// It is set by real constructors, survives the layout operations used by the
/// contraction pipeline (permute, reshape, matricization via
/// [`Tensor::unfold`] / [`Tensor::fold`], axis sums), combines as a logical
/// AND across binary operations, and is conservatively dropped by raw mutable
/// access. The pairwise contraction planner reads it to dispatch GEMMs of
/// real operands onto `koala-linalg`'s real-only microkernel and marks the
/// results real, so realness set once at construction (e.g. a TFI Trotter
/// gate) flows through whole einsum networks without ever rescanning data.
#[derive(Clone)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<C64>,
    /// Structural realness hint; see the type-level docs. Not observable
    /// through `PartialEq`.
    real: bool,
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

impl Tensor {
    /// Zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![C64::ZERO; num_elements(shape)], real: true }
    }

    /// Tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![C64::ONE; num_elements(shape)], real: true }
    }

    /// Rank-0 tensor holding a single scalar.
    pub fn scalar(value: C64) -> Self {
        Tensor { shape: vec![], data: vec![value], real: value.im == 0.0 }
    }

    /// Build from shape and row-major data.
    pub fn from_vec(shape: &[usize], data: Vec<C64>) -> Result<Self> {
        if data.len() != num_elements(shape) {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "from_vec: {} elements provided for shape {:?} ({} expected)",
                    data.len(),
                    shape,
                    num_elements(shape)
                ),
            });
        }
        // No realness scan: from_vec sits on hot paths (contraction outputs).
        // Callers that know better follow up with `assume_real`.
        Ok(Tensor { shape: shape.to_vec(), data, real: false })
    }

    /// Build from real-valued row-major data.
    pub fn from_real(shape: &[usize], data: &[f64]) -> Result<Self> {
        let cdata = data.iter().map(|&x| C64::from_real(x)).collect();
        let mut t = Tensor::from_vec(shape, cdata)?;
        t.real = true;
        Ok(t)
    }

    /// Tensor with independent entries uniform in `[-1,1]` (both components).
    pub fn random<R: Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Self {
        let data = (0..num_elements(shape))
            .map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        Tensor { shape: shape.to_vec(), data, real: false }
    }

    /// Random tensor with purely real entries.
    pub fn random_real<R: Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Self {
        let data = (0..num_elements(shape)).map(|_| c64(rng.gen_range(-1.0..1.0), 0.0)).collect();
        Tensor { shape: shape.to_vec(), data, real: true }
    }

    /// Identity "matrix" as a rank-2 tensor.
    pub fn eye(n: usize) -> Self {
        Tensor::from_matrix_2d(&Matrix::identity(n))
    }

    /// Shape of the tensor.
    #[inline(always)]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    #[inline(always)]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of one axis.
    #[inline(always)]
    pub fn dim(&self, axis: usize) -> usize {
        self.shape[axis]
    }

    /// Raw row-major data.
    #[inline(always)]
    pub fn data(&self) -> &[C64] {
        &self.data
    }

    /// Mutable raw row-major data. Drops the realness hint: the caller may
    /// write arbitrary complex values through the returned slice.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [C64] {
        self.real = false;
        &mut self.data
    }

    /// Consume into the raw data vector.
    pub fn into_data(self) -> Vec<C64> {
        self.data
    }

    /// Structural realness hint: `true` guarantees every imaginary part is
    /// exactly zero; `false` means unknown. See the type-level docs.
    #[inline(always)]
    pub fn is_real(&self) -> bool {
        self.real
    }

    /// Assert that every imaginary part is exactly zero, setting the realness
    /// hint without a scan in release builds. Verified by a full scan under
    /// `debug_assertions`; a wrong assertion makes later contractions
    /// silently drop imaginary parts.
    pub fn assume_real(&mut self) {
        debug_assert!(
            self.data.iter().all(|z| z.im == 0.0),
            "assume_real: tensor has nonzero imaginary parts"
        );
        self.real = true;
    }

    /// Scan the data and set the realness hint iff every imaginary part is
    /// exactly zero. Returns the resulting hint. O(len) — for construction
    /// points, not hot loops.
    pub fn mark_real_if_exact(&mut self) -> bool {
        self.real = self.data.iter().all(|z| z.im == 0.0);
        self.real
    }

    /// Element access by multi-index.
    pub fn get(&self, index: &[usize]) -> C64 {
        let strides = strides_for(&self.shape);
        self.data[ravel(index, &strides)]
    }

    /// Mutable element access by multi-index. The realness hint survives iff
    /// it was set and the written value is real.
    pub fn set(&mut self, index: &[usize], value: C64) {
        let strides = strides_for(&self.shape);
        let off = ravel(index, &strides);
        self.data[off] = value;
        self.real = self.real && value.im == 0.0;
    }

    /// The single element of a rank-0 (or single-element) tensor.
    pub fn item(&self) -> C64 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires exactly one element, shape {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Change the shape without moving data (sizes must match).
    pub fn reshape(&self, new_shape: &[usize]) -> Result<Tensor> {
        if num_elements(new_shape) != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "reshape: cannot view {:?} ({} elems) as {:?} ({} elems)",
                    self.shape,
                    self.data.len(),
                    new_shape,
                    num_elements(new_shape)
                ),
            });
        }
        Ok(Tensor { shape: new_shape.to_vec(), data: self.data.clone(), real: self.real })
    }

    /// Reshape consuming `self` (no data copy).
    pub fn into_reshape(self, new_shape: &[usize]) -> Result<Tensor> {
        if num_elements(new_shape) != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                context: format!("into_reshape: cannot view {:?} as {:?}", self.shape, new_shape),
            });
        }
        Ok(Tensor { shape: new_shape.to_vec(), data: self.data, real: self.real })
    }

    /// Permute (transpose) the axes: axis `i` of the result is axis `perm[i]`
    /// of the input.
    ///
    /// Identity permutations (and rank <= 1) return a straight copy without
    /// touching the gather machinery; other permutations run a cache-blocked
    /// kernel (see `permute_gather` in this module's source).
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        if perm.len() != self.ndim() || !is_permutation(perm) {
            return Err(TensorError::InvalidAxes {
                context: format!("permute: {:?} is not a permutation of 0..{}", perm, self.ndim()),
            });
        }
        let new_shape = permute_shape(&self.shape, perm);
        if self.ndim() <= 1 || is_identity_perm(perm) {
            return Ok(Tensor { shape: new_shape, data: self.data.clone(), real: self.real });
        }
        let mut out = vec![C64::ZERO; self.data.len()];
        permute_gather(&self.data, &self.shape, perm, &new_shape, &mut out);
        Ok(Tensor { shape: new_shape, data: out, real: self.real })
    }

    /// Inverse permutation convenience: undo `permute(perm)`.
    pub fn unpermute(&self, perm: &[usize]) -> Result<Tensor> {
        self.permute(&invert_permutation(perm))
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|z| z.conj()).collect(),
            real: self.real,
        }
    }

    /// Multiply every element by a scalar.
    ///
    /// The realness hint survives only for a *finite* real scalar: a
    /// non-finite `s.re` turns zero imaginary parts into `0.0 * inf = NaN`.
    pub fn scale(&self, s: C64) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&z| z * s).collect(),
            real: self.real && s.im == 0.0 && s.re.is_finite(),
        }
    }

    /// In-place scalar multiplication (hint rule as in [`Tensor::scale`]).
    pub fn scale_inplace(&mut self, s: C64) {
        self.real = self.real && s.im == 0.0 && s.re.is_finite();
        for z in &mut self.data {
            *z *= s;
        }
    }

    /// Element-wise sum (shapes must match).
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                context: format!("add: {:?} vs {:?}", self.shape, other.shape),
            });
        }
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| *a + *b).collect();
        Ok(Tensor { shape: self.shape.clone(), data, real: self.real && other.real })
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                context: format!("sub: {:?} vs {:?}", self.shape, other.shape),
            });
        }
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| *a - *b).collect();
        Ok(Tensor { shape: self.shape.clone(), data, real: self.real && other.real })
    }

    /// Frobenius (2-)norm of the tensor.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest element modulus.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Maximum element-wise deviation from another tensor of the same shape.
    pub fn max_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "max_diff: shape mismatch");
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max)
    }

    /// True if element-wise within `tol` of `other`.
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        self.shape == other.shape && self.max_diff(other) <= tol
    }

    /// Inner product `<self, other> = sum conj(self) * other`.
    pub fn inner(&self, other: &Tensor) -> Result<C64> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                context: format!("inner: {:?} vs {:?}", self.shape, other.shape),
            });
        }
        Ok(self.data.iter().zip(other.data.iter()).map(|(a, b)| a.conj() * *b).sum())
    }

    /// Matricization: view the tensor as a matrix whose rows are indexed by the
    /// first `split` axes and whose columns are indexed by the rest. The
    /// realness hint carries over.
    pub fn unfold(&self, split: usize) -> Matrix {
        assert!(split <= self.ndim(), "unfold: split {} exceeds rank {}", split, self.ndim());
        let rows: usize = self.shape[..split].iter().product();
        let cols: usize = self.shape[split..].iter().product();
        let mut m = Matrix::from_vec(rows, cols, self.data.clone())
            .unwrap_or_else(|_| unreachable!("unfold: rows*cols == len by construction"));
        if self.real {
            m.assume_real();
        }
        m
    }

    /// Inverse of [`Tensor::unfold`]: reinterpret a matrix as a tensor with the
    /// given row-axis and column-axis dimensions.
    pub fn fold(m: &Matrix, row_dims: &[usize], col_dims: &[usize]) -> Result<Tensor> {
        let rows: usize = row_dims.iter().product();
        let cols: usize = col_dims.iter().product();
        if m.nrows() != rows || m.ncols() != cols {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "fold: matrix {}x{} does not match row dims {:?} / col dims {:?}",
                    m.nrows(),
                    m.ncols(),
                    row_dims,
                    col_dims
                ),
            });
        }
        let mut shape = row_dims.to_vec();
        shape.extend_from_slice(col_dims);
        let mut t = Tensor::from_vec(&shape, m.data().to_vec())?;
        t.real = m.is_real();
        Ok(t)
    }

    /// View a matrix as a rank-2 tensor (the realness hint carries over).
    pub fn from_matrix_2d(m: &Matrix) -> Tensor {
        Tensor { shape: vec![m.nrows(), m.ncols()], data: m.data().to_vec(), real: m.is_real() }
    }

    /// Convert a rank-2 tensor into a matrix (the realness hint carries over).
    pub fn to_matrix_2d(&self) -> Matrix {
        assert_eq!(self.ndim(), 2, "to_matrix_2d: tensor rank is {}", self.ndim());
        let mut m = Matrix::from_vec(self.shape[0], self.shape[1], self.data.clone())
            .unwrap_or_else(|_| unreachable!("to_matrix_2d: rank-2 shape matches data"));
        if self.real {
            m.assume_real();
        }
        m
    }

    /// Outer (tensor) product.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        let mut shape = self.shape.clone();
        shape.extend_from_slice(&other.shape);
        let mut data = Vec::with_capacity(self.data.len() * other.data.len());
        for &a in &self.data {
            for &b in &other.data {
                data.push(a * b);
            }
        }
        Tensor { shape, data, real: self.real && other.real }
    }

    /// Slice the tensor by fixing `axis` to `index`, dropping that axis.
    pub fn select(&self, axis: usize, index: usize) -> Result<Tensor> {
        if axis >= self.ndim() || index >= self.shape[axis] {
            return Err(TensorError::InvalidAxes {
                context: format!(
                    "select: axis {axis} index {index} out of range for shape {:?}",
                    self.shape
                ),
            });
        }
        let mut new_shape = self.shape.clone();
        new_shape.remove(axis);
        let mut out = Tensor::zeros(&new_shape);
        let in_strides = strides_for(&self.shape);
        let mut idx = vec![0usize; new_shape.len()];
        let n = out.data.len();
        for flat in 0..n {
            // Build the full input index by inserting `index` at `axis`.
            let mut full = Vec::with_capacity(self.ndim());
            full.extend_from_slice(&idx[..axis]);
            full.push(index);
            full.extend_from_slice(&idx[axis..]);
            out.data[flat] = self.data[ravel(&full, &in_strides)];
            increment_index(&mut idx, &new_shape);
        }
        out.real = self.real;
        Ok(out)
    }

    /// Insert a new axis of size 1 at `axis`.
    pub fn expand_dims(&self, axis: usize) -> Tensor {
        assert!(axis <= self.ndim());
        let mut shape = self.shape.clone();
        shape.insert(axis, 1);
        Tensor { shape, data: self.data.clone(), real: self.real }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> C64 {
        self.data.iter().copied().sum()
    }

    /// Iterate over `(multi_index, value)` pairs in row-major order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = (Vec<usize>, C64)> + '_ {
        let shape = self.shape.clone();
        self.data.iter().enumerate().map(move |(off, &v)| (unravel(off, &shape), v))
    }
}

/// Cache-blocked gather kernel behind [`Tensor::permute`].
///
/// Walks the output in row-major order, reading input offsets through the
/// permuted strides. Two layouts cover every rank >= 2 permutation:
///
/// * if the output's innermost axis is also the input's innermost axis, the
///   data moves in contiguous runs (`copy_from_slice` per run);
/// * otherwise the output axis `t` that walks the input contiguously
///   (`perm[t] == ndim-1`) and the output's innermost axis form a 2-D
///   transpose, executed in `32 x 32` tiles so both the strided reads and
///   the contiguous writes stay cache-resident.
///
/// All per-element index arithmetic is incremental (odometer updates), not
/// the multiply-per-axis `ravel` of the previous implementation.
fn permute_gather(
    src: &[C64],
    in_shape: &[usize],
    perm: &[usize],
    out_shape: &[usize],
    out: &mut [C64],
) {
    let nd = out_shape.len();
    debug_assert!(nd >= 2);
    if out.is_empty() {
        return;
    }
    let in_strides = strides_for(in_shape);
    let out_strides = strides_for(out_shape);
    // Input stride of each *output* axis.
    let g: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
    let inner_len = out_shape[nd - 1];
    let inner_stride = g[nd - 1];

    if inner_stride == 1 {
        // Contiguous runs: odometer over the outer output axes, incremental
        // input base offset.
        let mut idx = vec![0usize; nd - 1];
        let mut base_in = 0usize;
        for run in out.chunks_exact_mut(inner_len) {
            run.copy_from_slice(&src[base_in..base_in + inner_len]);
            for ax in (0..nd - 1).rev() {
                idx[ax] += 1;
                base_in += g[ax];
                if idx[ax] < out_shape[ax] {
                    break;
                }
                base_in -= g[ax] * out_shape[ax];
                idx[ax] = 0;
            }
        }
        return;
    }

    // Blocked 2-D transpose path. Axis `t` of the output walks the input
    // contiguously (g[t] == 1); it exists and differs from the innermost
    // output axis because inner_stride != 1.
    const B: usize = 32;
    let t = perm
        .iter()
        .position(|&p| p == in_shape.len() - 1)
        .unwrap_or_else(|| unreachable!("permute: perm is a valid permutation"));
    let dim_t = out_shape[t];
    let ost_t = out_strides[t];
    let outer_axes: Vec<usize> = (0..nd - 1).filter(|&ax| ax != t).collect();
    let mut idx = vec![0usize; outer_axes.len()];
    let mut base_in = 0usize;
    let mut base_out = 0usize;
    loop {
        // Tile copy: out[base_out + i*ost_t + j] = src[base_in + i + j*inner_stride].
        for i0 in (0..dim_t).step_by(B) {
            let imax = (i0 + B).min(dim_t);
            for j0 in (0..inner_len).step_by(B) {
                let jmax = (j0 + B).min(inner_len);
                for i in i0..imax {
                    let orow = base_out + i * ost_t;
                    let irow = base_in + i;
                    for j in j0..jmax {
                        out[orow + j] = src[irow + j * inner_stride];
                    }
                }
            }
        }
        let mut wrapped = true;
        for (pos, &ax) in outer_axes.iter().enumerate().rev() {
            idx[pos] += 1;
            base_in += g[ax];
            base_out += out_strides[ax];
            if idx[pos] < out_shape[ax] {
                wrapped = false;
                break;
            }
            base_in -= g[ax] * out_shape[ax];
            base_out -= out_strides[ax] * out_shape[ax];
            idx[pos] = 0;
        }
        if wrapped {
            break;
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, norm={:.4e})", self.shape, self.norm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_real(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.dim(1), 3);
        assert_eq!(t.get(&[1, 2]), c64(6.0, 0.0));
        assert_eq!(t.get(&[0, 1]), c64(2.0, 0.0));
        let mut t2 = t.clone();
        t2.set(&[0, 0], c64(0.0, 9.0));
        assert_eq!(t2.get(&[0, 0]), c64(0.0, 9.0));
        assert!(Tensor::from_vec(&[2, 2], vec![C64::ONE; 3]).is_err());
    }

    #[test]
    fn scalar_tensor_item() {
        let s = Tensor::scalar(c64(2.0, -1.0));
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.item(), c64(2.0, -1.0));
    }

    #[test]
    fn reshape_preserves_data_order() {
        let t = Tensor::from_real(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.get(&[0, 1]), c64(2.0, 0.0));
        assert_eq!(r.get(&[2, 1]), c64(6.0, 0.0));
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn permute_matches_manual_transpose() {
        let t = Tensor::from_real(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let p = t.permute(&[1, 0]).unwrap();
        assert_eq!(p.shape(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.get(&[i, j]), p.get(&[j, i]));
            }
        }
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0]).is_err());
    }

    #[test]
    fn permute_roundtrip_higher_rank() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::random(&[2, 3, 4, 2], &mut rng);
        let perm = [2, 0, 3, 1];
        let p = t.permute(&perm).unwrap();
        assert_eq!(p.shape(), &[4, 2, 2, 3]);
        let back = p.unpermute(&perm).unwrap();
        assert!(back.approx_eq(&t, 0.0));
        // Spot-check an element mapping.
        assert_eq!(p.get(&[3, 1, 0, 2]), t.get(&[1, 2, 3, 0]));
    }

    #[test]
    fn unfold_fold_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::random(&[2, 3, 4], &mut rng);
        let m = t.unfold(1);
        assert_eq!(m.shape(), (2, 12));
        let back = Tensor::fold(&m, &[2], &[3, 4]).unwrap();
        assert!(back.approx_eq(&t, 0.0));
        let m2 = t.unfold(2);
        assert_eq!(m2.shape(), (6, 4));
        assert!(Tensor::fold(&m2, &[5], &[4]).is_err());
    }

    #[test]
    fn elementwise_ops_and_norm() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::random(&[3, 3], &mut rng);
        let b = Tensor::random(&[3, 3], &mut rng);
        let sum = a.add(&b).unwrap();
        assert!(sum.sub(&b).unwrap().approx_eq(&a, 1e-12));
        assert!(a.add(&Tensor::zeros(&[2, 2])).is_err());
        let scaled = a.scale(c64(0.0, 1.0));
        assert!((scaled.norm() - a.norm()).abs() < 1e-12);
        let n2: f64 = a.data().iter().map(|z| z.norm_sqr()).sum();
        assert!((a.norm() - n2.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn inner_product_is_conjugate_linear() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::random(&[2, 5], &mut rng);
        let b = Tensor::random(&[2, 5], &mut rng);
        let ab = a.inner(&b).unwrap();
        let ba = b.inner(&a).unwrap();
        assert!(ab.approx_eq(ba.conj(), 1e-12));
        let aa = a.inner(&a).unwrap();
        assert!(aa.im.abs() < 1e-12);
        assert!((aa.re - a.norm() * a.norm()).abs() < 1e-10);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let a = Tensor::from_real(&[2], &[1.0, 2.0]).unwrap();
        let b = Tensor::from_real(&[3], &[3.0, 4.0, 5.0]).unwrap();
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.get(&[1, 2]), c64(10.0, 0.0));
    }

    #[test]
    fn select_fixes_an_axis() {
        let t = Tensor::from_real(&[2, 2, 2], &[0., 1., 2., 3., 4., 5., 6., 7.]).unwrap();
        let s = t.select(1, 1).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.get(&[0, 0]), c64(2.0, 0.0));
        assert_eq!(s.get(&[1, 1]), c64(7.0, 0.0));
        assert!(t.select(3, 0).is_err());
        assert!(t.select(1, 2).is_err());
    }

    #[test]
    fn expand_dims_adds_singleton() {
        let t = Tensor::from_real(&[2, 3], &[1., 2., 3., 4., 5., 6.]).unwrap();
        let e = t.expand_dims(1);
        assert_eq!(e.shape(), &[2, 1, 3]);
        assert_eq!(e.get(&[1, 0, 2]), c64(6.0, 0.0));
    }

    #[test]
    fn eye_and_matrix_conversion() {
        let t = Tensor::eye(3);
        assert_eq!(t.get(&[1, 1]), C64::ONE);
        assert_eq!(t.get(&[1, 2]), C64::ZERO);
        let m = t.to_matrix_2d();
        assert!(m.approx_eq(&Matrix::identity(3), 0.0));
    }
}
