//! # koala-tensor
//!
//! Dense complex tensors and the `einsum` contraction layer for the koala-rs
//! reproduction of *"Efficient 2D Tensor Network Simulation of Quantum
//! Systems"* (SC 2020).
//!
//! The original Koala library manipulates site tensors through a thin
//! `tensorbackends` abstraction over NumPy / CuPy / Cyclops. This crate plays
//! the role of the dense in-memory backend: a row-major [`Tensor`] type,
//! permutation / reshaping / matricization utilities, pairwise contraction
//! ([`tensordot`]) lowered to the GEMM kernel of `koala-linalg`, a general
//! [`einsum`] for tensor-network contractions, and tensor-level factorizations
//! ([`qr_split`], [`svd_split`], [`rsvd_split`], [`gram_qr_split`]) used by
//! the MPS and PEPS layers.

#![warn(missing_docs)]

pub mod contract;
pub mod decomp;
pub mod einsum;
pub mod shape;
pub mod tensor;

pub use contract::{contract_all, sum_axis, tensordot, tensordot_naive};
pub use decomp::{
    gram_qr_split, materialize_op, qr_split, reassemble_split, rsvd_split, rsvd_split_implicit,
    scale_first_axis, scale_last_axis, svd_split, SplitSvd, Truncation,
};
pub use einsum::{einsum, einsum_spec, parse_spec, EinsumSpec};
pub use tensor::{Result, Tensor, TensorError};

// Re-export the scalar/matrix types so downstream crates need only one import path.
pub use koala_linalg::{c64, Matrix, C64};
