//! # koala-tensor
//!
//! Dense complex tensors and the `einsum` contraction layer for the koala-rs
//! reproduction of *"Efficient 2D Tensor Network Simulation of Quantum
//! Systems"* (SC 2020).
//!
//! The original Koala library manipulates site tensors through a thin
//! `tensorbackends` abstraction over NumPy / CuPy / Cyclops. This crate plays
//! the role of the dense in-memory backend: a row-major [`Tensor`] type,
//! permutation / reshaping / matricization utilities, pairwise contraction
//! ([`tensordot`]) lowered to the GEMM kernel of `koala-linalg`, a general
//! [`einsum`](fn@einsum) for tensor-network contractions backed by a memoised
//! contraction planner ([`plan`]), and tensor-level factorizations
//! ([`qr_split`], [`svd_split`], [`rsvd_split`], [`gram_qr_split`]) used by
//! the MPS and PEPS layers.
//!
//! # Example: contracting a small network with `einsum`
//!
//! Repeated calls with the same spec and operand shapes reuse one cached
//! contraction plan — the greedy ordering search runs exactly once:
//!
//! ```
//! use koala_tensor::{einsum, plan_stats, Tensor};
//!
//! let a = Tensor::from_real(&[2, 3], &[1., 2., 3., 4., 5., 6.]).unwrap();
//! let b = Tensor::from_real(&[3, 2], &[6., 5., 4., 3., 2., 1.]).unwrap();
//! // Matrix product with the output transposed, as one einsum.
//! let c = einsum("ij,jk->ki", &[&a, &b]).unwrap();
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.get(&[0, 0]).re, 1.0 * 6.0 + 2.0 * 4.0 + 3.0 * 2.0);
//!
//! let before = plan_stats();
//! let c2 = einsum("ij,jk->ki", &[&a, &b]).unwrap(); // plan-cache hit
//! assert!(c2.approx_eq(&c, 0.0));
//! assert!(plan_stats().hits > before.hits);
//! ```

#![warn(missing_docs)]
// Library code must not panic on fallible paths: failures become
// `TensorError` (bridged to the workspace `KoalaError`) so long-running
// drivers can recover instead of aborting.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod contract;
pub mod decomp;
pub mod einsum;
pub mod plan;
pub mod shape;
pub mod tensor;

pub use contract::{contract_all, sum_axis, tensordot, tensordot_naive};
pub use decomp::{
    gram_qr_split, materialize_op, qr_split, reassemble_split, rsvd_split, rsvd_split_implicit,
    scale_first_axis, scale_last_axis, svd_split, SplitSvd, Truncation,
};
pub use einsum::{einsum, einsum_spec, parse_spec, EinsumSpec};
pub use plan::{
    clear_plan_cache, contraction_plan, plan_stats, reset_plan_stats, set_plan_cache_capacity,
    Plan, PlanCell, PlanStats,
};
pub use tensor::{Result, Tensor, TensorError};

/// Poison-tolerant mutex lock for the process-wide caches: a panicked holder
/// cannot leave a cache permanently unusable (the data is a memo, so the
/// worst case after a poisoned write is a stale-but-valid entry).
pub(crate) fn lock_ignore_poison<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// Re-export the scalar/matrix types so downstream crates need only one import path.
pub use koala_linalg::{c64, Matrix, C64};
